package symbiosys

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// serialized "map" backend vs a concurrent one (does the Figure 10
// pathology disappear?), the Mercury eager-buffer size (how much
// metadata rides the internal RDMA path?), and the per-RPC cost of each
// SYMBIOSYS measurement stage.

import (
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/experiments"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// BenchmarkAblationBackend reruns the Figure 10 flood with the paper's
// serialized map backend and with a sharded concurrent backend. With
// parallel insertion the write-serialization signal (blocked ULTs) must
// collapse — confirming the paper's root-cause analysis.
func BenchmarkAblationBackend(b *testing.B) {
	var blockedMap, blockedSharded float64
	var execMap, execSharded float64
	for i := 0; i < b.N; i++ {
		cfg := scaledHEPnOS(experiments.C2, 2, 4)
		cfg.Backend = "map"
		rm := runHEPnOS(b, cfg)
		cfg.Backend = "shardedmap"
		rs := runHEPnOS(b, cfg)
		blockedMap = float64(rm.MaxBlocked())
		blockedSharded = float64(rs.MaxBlocked())
		execMap = float64(rm.CumTargetExec) / 1e6
		execSharded = float64(rs.CumTargetExec) / 1e6
	}
	b.ReportMetric(blockedMap, "max_blocked_map")
	b.ReportMetric(blockedSharded, "max_blocked_sharded")
	b.ReportMetric(execMap, "cum_exec_map_ms")
	b.ReportMetric(execSharded, "cum_exec_sharded_ms")
}

// BenchmarkAblationEagerLimit sweeps Mercury's eager buffer on the
// Sonata workload: a small buffer pushes nearly all metadata through
// internal RDMA, a large one none (the Figure 7 mechanism isolated).
func BenchmarkAblationEagerLimit(b *testing.B) {
	var rdmaSmall, rdmaDefault, rdmaHuge float64
	for i := 0; i < b.N; i++ {
		run := func(limit int) float64 {
			res, err := experiments.RunSonata(experiments.SonataConfig{
				Records: 2000, BatchSize: 200, RecordSize: 256, EagerLimit: limit,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.RDMAFraction()
		}
		rdmaSmall = run(1 << 10)
		rdmaDefault = run(4 << 10)
		rdmaHuge = run(1 << 20)
	}
	b.ReportMetric(rdmaSmall, "rdma_frac_eager_1k")
	b.ReportMetric(rdmaDefault, "rdma_frac_eager_4k")
	b.ReportMetric(rdmaHuge, "rdma_frac_eager_1m") // should be ~0
}

// BenchmarkAblationStageCost measures raw per-RPC latency at each
// measurement stage over the same echo workload — the microscopic view
// behind the Figure 13 result that instrumentation overhead is small.
func BenchmarkAblationStageCost(b *testing.B) {
	perStage := map[core.Stage]float64{}
	for i := 0; i < b.N; i++ {
		for _, stage := range []core.Stage{core.StageOff, core.StageInject, core.StageProfile, core.StageFull} {
			perStage[stage] = echoLatency(b, stage)
		}
	}
	b.ReportMetric(perStage[core.StageOff], "baseline_us_per_rpc")
	b.ReportMetric(perStage[core.StageInject], "stage1_us_per_rpc")
	b.ReportMetric(perStage[core.StageProfile], "stage2_us_per_rpc")
	b.ReportMetric(perStage[core.StageFull], "full_us_per_rpc")
}

// echoLatency runs a batch of sequential echo RPCs at the given stage
// and returns the mean microseconds per call.
func echoLatency(b *testing.B, stage core.Stage) float64 {
	b.Helper()
	fabric := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "srv", Fabric: fabric,
		HandlerStreams: 2, Stage: stage,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown()
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "cli", Fabric: fabric, Stage: stage,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Shutdown()
	srv.Register("echo_rpc", func(ctx *margo.Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("echo_rpc")

	const calls = 400
	var elapsed time.Duration
	u := cli.Run("bench", func(self *abt.ULT) {
		start := time.Now()
		for i := 0; i < calls; i++ {
			if err := cli.Forward(self, srv.Addr(), "echo_rpc", &mercury.Void{}, nil); err != nil {
				b.Error(err)
				return
			}
		}
		elapsed = time.Since(start)
	})
	if err := u.Join(nil); err != nil {
		b.Fatal(err)
	}
	return float64(elapsed.Microseconds()) / calls
}
