package symbiosys

// This file regenerates every table and figure of the paper's
// evaluation (§V–§VI). Each benchmark runs the corresponding experiment
// at a simulation-friendly scale and reports the paper's headline
// quantities through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports. Absolute numbers
// differ (simulated fabric, laptop host); EXPERIMENTS.md records the
// paper-vs-measured comparison and the shape checks.

import (
	"io"
	"testing"
	"time"

	"symbiosys/internal/core"
	"symbiosys/internal/experiments"
)

// scaledHEPnOS shrinks a Table IV configuration for bench runtime.
func scaledHEPnOS(cfg experiments.HEPnOSConfig, clientDiv, eventDiv int) experiments.HEPnOSConfig {
	if clientDiv > 1 && cfg.TotalClients > clientDiv {
		cfg.TotalClients /= clientDiv
		if cfg.ClientsPerNode > cfg.TotalClients {
			cfg.ClientsPerNode = cfg.TotalClients
		}
	}
	if eventDiv > 1 {
		cfg.EventsPerClient /= eventDiv
		if cfg.EventsPerClient < 64 {
			cfg.EventsPerClient = 64
		}
	}
	return cfg
}

func runHEPnOS(b *testing.B, cfg experiments.HEPnOSConfig) *experiments.HEPnOSResult {
	b.Helper()
	res, err := experiments.RunHEPnOS(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig05MobjectWriteTrace reproduces Figure 5: the distributed
// trace of a single mobject_write_op, which must decompose into 12
// discrete SDSKV/BAKE microservice calls.
func BenchmarkFig05MobjectWriteTrace(b *testing.B) {
	var nested, spans int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMobjectIOR(experiments.MobjectConfig{
			Clients: 10, Segments: 4, TransferSize: 16 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		nested = res.NestedWriteCalls()
		spans = len(res.Traces.Zipkin(res.WriteTraceRequestID))
		if err := res.Traces.WriteZipkin(io.Discard, res.WriteTraceRequestID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nested), "nested_calls") // paper: 12
	b.ReportMetric(float64(spans), "zipkin_spans")
}

// BenchmarkFig06MobjectCallpaths reproduces Figure 6: the top-5
// dominant callpaths of the ior+Mobject workload by cumulative latency,
// with mobject_read_op => sdskv_list_keyvals_rpc dominant among the
// nested hops.
func BenchmarkFig06MobjectCallpaths(b *testing.B) {
	var topCum, listShare float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMobjectIOR(experiments.MobjectConfig{
			Clients: 10, Segments: 4, TransferSize: 16 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows := res.Dominant
		if len(rows) == 0 {
			b.Fatal("no callpaths")
		}
		topCum = float64(rows[0].CumNanos) / 1e6
		// Share of the read op carried by the list_keyvals hop.
		var readCum, listCum uint64
		for _, r := range res.Profile.DominantCallpaths(0) {
			if r.Name == "mobject_read_op" {
				readCum = r.CumNanos
			}
			if r.Name == "mobject_read_op => sdskv_list_keyvals_rpc" {
				listCum = r.CumNanos
			}
		}
		if readCum > 0 {
			listShare = float64(listCum) / float64(readCum)
		}
	}
	b.ReportMetric(topCum, "top_callpath_cum_ms")
	b.ReportMetric(listShare, "list_share_of_read")
}

// BenchmarkFig07SonataBreakdown reproduces Figure 7: the breakdown of
// cumulative RPC execution time on the Sonata target for a 50,000-record
// JSON array stored in batches of 5,000 (scaled 1/10), where input
// deserialization accounts for ~27% and the internal RDMA transfer stays
// comparatively low.
func BenchmarkFig07SonataBreakdown(b *testing.B) {
	var deser, rdma float64
	var calls uint64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSonata(experiments.SonataConfig{
			Records: 5000, BatchSize: 500, RecordSize: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		deser = res.DeserFraction()
		rdma = res.RDMAFraction()
		calls = res.RPCCalls
	}
	b.ReportMetric(deser, "deser_fraction") // paper: ~0.27
	b.ReportMetric(rdma, "rdma_fraction")   // paper: low
	b.ReportMetric(float64(calls), "rpc_calls")
}

// BenchmarkFig09HandlerSaturation reproduces Figure 9: C1 (5 execution
// streams) suffers target-handler-pool delays — a large share of the
// cumulative target RPC execution time — which C2 (20 streams)
// remediates, improving the cumulative time (paper: 26.6% handler share,
// 53.3% improvement).
func BenchmarkFig09HandlerSaturation(b *testing.B) {
	var fracC1, fracC2, improvement float64
	for i := 0; i < b.N; i++ {
		r1 := runHEPnOS(b, scaledHEPnOS(experiments.C1, 1, 2))
		r2 := runHEPnOS(b, scaledHEPnOS(experiments.C2, 1, 2))
		fracC1 = r1.HandlerFraction()
		fracC2 = r2.HandlerFraction()
		improvement = 1 - float64(r2.CumTargetExec)/float64(r1.CumTargetExec)
	}
	b.ReportMetric(fracC1, "handler_frac_c1")     // paper: 0.266
	b.ReportMetric(fracC2, "handler_frac_c2")     // paper: 0.14
	b.ReportMetric(improvement, "c2_improvement") // paper: 0.533
}

// BenchmarkFig10DatabaseSerialization reproduces Figure 10: with 32
// databases per server (C2) the flood of small put_packed RPCs
// serializes on the map backend, visible as blocked-ULT spikes; C3 (8
// databases) reduces both the RPC count and the severity, improving RPC
// performance (paper: 28.5%).
func BenchmarkFig10DatabaseSerialization(b *testing.B) {
	var rpcsC2, rpcsC3, maxBlockedC2, maxBlockedC3, improvement float64
	for i := 0; i < b.N; i++ {
		r2 := runHEPnOS(b, scaledHEPnOS(experiments.C2, 1, 2))
		r3 := runHEPnOS(b, scaledHEPnOS(experiments.C3, 1, 2))
		rpcsC2 = float64(r2.Unaccounted.Count)
		rpcsC3 = float64(r3.Unaccounted.Count)
		maxBlockedC2 = float64(r2.MaxBlocked())
		maxBlockedC3 = float64(r3.MaxBlocked())
		improvement = 1 - float64(r3.CumTargetExec)/float64(r2.CumTargetExec)
	}
	b.ReportMetric(rpcsC2, "rpcs_c2")
	b.ReportMetric(rpcsC3, "rpcs_c3")
	b.ReportMetric(maxBlockedC2, "max_blocked_c2")
	b.ReportMetric(maxBlockedC3, "max_blocked_c3")
	b.ReportMetric(improvement, "c3_improvement") // paper: 0.285
}

// BenchmarkFig11BatchProgress reproduces Figure 11: batch size 1 (C5)
// is dramatically slower than batch 1024 (C4); raising OFI_max_events
// (C6) and dedicating a progress stream (C7) successively improve RPC
// performance and shrink the unaccounted time (paper: C4 ~475x C5;
// C6 +40% and -47% unaccounted; C7 +75% and -90% unaccounted).
func BenchmarkFig11BatchProgress(b *testing.B) {
	var speedup, c6Impr, c7Impr, unacc5, unacc6, unacc7 float64
	for i := 0; i < b.N; i++ {
		r4 := runHEPnOS(b, scaledHEPnOS(experiments.C4, 1, 2))
		r5 := runHEPnOS(b, scaledHEPnOS(experiments.C5, 1, 2))
		r6 := runHEPnOS(b, scaledHEPnOS(experiments.C6, 1, 2))
		r7 := runHEPnOS(b, scaledHEPnOS(experiments.C7, 1, 2))
		speedup = float64(r5.WallTime) / float64(r4.WallTime)
		mean := func(r *experiments.HEPnOSResult) float64 {
			if r.Unaccounted.Count == 0 {
				return 0
			}
			return float64(r.CumOriginExec) / float64(r.Unaccounted.Count)
		}
		c6Impr = 1 - mean(r6)/mean(r5)
		c7Impr = 1 - mean(r7)/mean(r6)
		unacc5 = float64(r5.Unaccounted.Unaccount) / 1e6
		unacc6 = float64(r6.Unaccounted.Unaccount) / 1e6
		unacc7 = float64(r7.Unaccounted.Unaccount) / 1e6
	}
	b.ReportMetric(speedup, "c4_vs_c5_speedup")  // paper: ~475 (scale-compressed)
	b.ReportMetric(c6Impr, "c6_rpc_improvement") // paper: >0.40
	b.ReportMetric(c7Impr, "c7_rpc_improvement") // paper: 0.75
	b.ReportMetric(unacc5, "unaccounted_c5_ms")
	b.ReportMetric(unacc6, "unaccounted_c6_ms") // paper: -47% vs C5
	b.ReportMetric(unacc7, "unaccounted_c7_ms") // paper: -90% vs C6
}

// BenchmarkFig12OFIEvents reproduces Figure 12: the num_ofi_events_read
// PVAR sampled at t14. C4's samples never hit the 16-event budget; C5's
// are pinned at it; C6 (budget 64) and C7 (dedicated progress stream)
// drain the queue.
func BenchmarkFig12OFIEvents(b *testing.B) {
	var atCap4, atCap5, atCap6, atCap7 float64
	for i := 0; i < b.N; i++ {
		atCap4 = runHEPnOS(b, scaledHEPnOS(experiments.C4, 1, 4)).OFIAtCapFraction()
		atCap5 = runHEPnOS(b, scaledHEPnOS(experiments.C5, 1, 4)).OFIAtCapFraction()
		atCap6 = runHEPnOS(b, scaledHEPnOS(experiments.C6, 1, 4)).OFIAtCapFraction()
		atCap7 = runHEPnOS(b, scaledHEPnOS(experiments.C7, 1, 4)).OFIAtCapFraction()
	}
	b.ReportMetric(atCap4, "at_cap_frac_c4")
	b.ReportMetric(atCap5, "at_cap_frac_c5") // paper: pinned at threshold
	b.ReportMetric(atCap6, "at_cap_frac_c6")
	b.ReportMetric(atCap7, "at_cap_frac_c7") // paper: queue no longer backed up
}

// BenchmarkFig13Overheads reproduces Figure 13: execution time of the
// data-loader with instrumentation at Baseline / Stage 1 / Stage 2 /
// Full Support. The paper finds the overheads indistinguishable from
// run-to-run variation.
func BenchmarkFig13Overheads(b *testing.B) {
	var base, s1, s2, full float64
	var samples int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOverheadStudy(experiments.OverheadConfig{
			Base: scaledHEPnOS(experiments.C4, 1, 4),
			Reps: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range res.Stages {
			ms := float64(st.Mean) / 1e6
			switch st.Stage {
			case core.StageOff:
				base = ms
			case core.StageInject:
				s1 = ms
			case core.StageProfile:
				s2 = ms
			case core.StageFull:
				full = ms
				samples = st.TraceSamples
			}
		}
	}
	b.ReportMetric(base, "baseline_ms")
	b.ReportMetric(s1, "stage1_ms")
	b.ReportMetric(s2, "stage2_ms")
	b.ReportMetric(full, "full_support_ms")
	b.ReportMetric(float64(samples), "trace_samples")
}

// BenchmarkFig13OverheadsTelemetry is the Figure 13 study with the live
// telemetry plane enabled on every process (100 ms sampler tick plus a
// scrapeable /metrics endpoint). Compare against BenchmarkFig13Overheads:
// the stage means must stay within run-to-run variation — sampling is
// periodic snapshot reads, never work on the RPC path.
func BenchmarkFig13OverheadsTelemetry(b *testing.B) {
	var base, full float64
	for i := 0; i < b.N; i++ {
		cfg := scaledHEPnOS(experiments.C4, 1, 4)
		cfg.MetricsAddr = "127.0.0.1:0"
		cfg.MetricsInterval = 100 * time.Millisecond
		res, err := experiments.RunOverheadStudy(experiments.OverheadConfig{
			Base: cfg,
			Reps: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range res.Stages {
			ms := float64(st.Mean) / 1e6
			switch st.Stage {
			case core.StageOff:
				base = ms
			case core.StageFull:
				full = ms
			}
		}
	}
	b.ReportMetric(base, "baseline_ms")
	b.ReportMetric(full, "full_support_ms")
}

// BenchmarkTableIVConfigs sweeps all seven Table IV configurations and
// reports each one's wall time, for the configuration-comparison view
// underlying Figures 9–12.
func BenchmarkTableIVConfigs(b *testing.B) {
	walls := make([]float64, 7)
	for i := 0; i < b.N; i++ {
		for j, cfg := range experiments.TableIV() {
			res := runHEPnOS(b, scaledHEPnOS(cfg, 2, 4))
			walls[j] = float64(res.WallTime) / 1e6
		}
	}
	names := []string{"c1_ms", "c2_ms", "c3_ms", "c4_ms", "c5_ms", "c6_ms", "c7_ms"}
	for j, n := range names {
		b.ReportMetric(walls[j], n)
	}
}

// BenchmarkTableVAnalysis reproduces Table V: the time taken by the
// three analysis scripts — profile summary, trace summary, and system
// statistics summary — over a run's collected performance data. The
// trace summary dominates, as in the paper.
func BenchmarkTableVAnalysis(b *testing.B) {
	// Generate one sizable dataset outside the timed region.
	res, err := experiments.RunHEPnOS(scaledHEPnOS(experiments.C2, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	// Re-run to hold the dumps (RunHEPnOS tears its cluster down, so
	// collect via a dedicated run preserving dumps).
	profiles, traces, err := experiments.CollectHEPnOSDumps(scaledHEPnOS(experiments.C2, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var t experiments.AnalysisTimings
	for i := 0; i < b.N; i++ {
		t = experiments.TimeAnalyses(profiles, traces, io.Discard)
	}
	b.ReportMetric(float64(t.ProfileSummary)/1e6, "profile_summary_ms") // paper: 35.1 s
	b.ReportMetric(float64(t.TraceSummary)/1e6, "trace_summary_ms")     // paper: 481.1 s (dominant)
	b.ReportMetric(float64(t.SystemStats)/1e6, "system_stats_ms")       // paper: 73.4 s
	b.ReportMetric(float64(t.TraceEvents), "trace_events")
}

var _ = time.Now // keep time imported for future tuning
