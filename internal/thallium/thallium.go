// Package thallium provides a typed veneer over Margo RPCs, playing the
// role Thallium plays in the Mochi stack (paper §III-B): where Margo
// exposes untyped Procable arguments, Thallium binds an RPC name to
// concrete request/response types once, and both the handler and the
// caller get fully typed signatures — no interface casts, no manual
// GetInput/Respond pairing.
//
//	var greet = thallium.Define[greetArgs, greetReply]("greet_rpc")
//	greet.Register(server, func(ctx *margo.Context, in *greetArgs) (*greetReply, error) {
//	    return &greetReply{Msg: "hello " + in.Name}, nil
//	})
//	out, err := greet.Call(client, self, server.Addr(), &greetArgs{Name: "x"})
package thallium

import (
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// procPtr constrains *T to implement the Mercury proc interface.
type procPtr[T any] interface {
	*T
	mercury.Procable
}

// RPC is one typed remote procedure. Define it once per RPC name and
// share the value between client and server code.
type RPC[In any, Out any, PIn procPtr[In], POut procPtr[Out]] struct {
	name string
}

// Define binds an RPC name to its request and response types.
func Define[In any, Out any, PIn procPtr[In], POut procPtr[Out]](name string) RPC[In, Out, PIn, POut] {
	return RPC[In, Out, PIn, POut]{name: name}
}

// Name returns the wire-level RPC name.
func (r RPC[In, Out, PIn, POut]) Name() string { return r.name }

// Handler is the typed server-side function: it receives the decoded
// input and returns the response or an error (which is sent to the
// origin as a handler failure).
type Handler[In any, Out any] func(ctx *margo.Context, in *In) (*Out, error)

// Register installs the typed handler on a Margo server. Input decoding
// and the respond/respond-error pairing are handled here, so handlers
// cannot forget to respond or double-respond.
func (r RPC[In, Out, PIn, POut]) Register(inst *margo.Instance, fn Handler[In, Out]) error {
	return inst.Register(r.name, func(ctx *margo.Context) {
		var in In
		if err := ctx.GetInput(PIn(&in)); err != nil {
			ctx.RespondError("%s: decode: %v", r.name, err)
			return
		}
		out, err := fn(ctx, &in)
		if err != nil {
			ctx.RespondError("%s: %v", r.name, err)
			return
		}
		if out == nil {
			ctx.Respond(mercury.Void{})
			return
		}
		ctx.Respond(POut(out))
	})
}

// RegisterClient declares the RPC on a client instance.
func (r RPC[In, Out, PIn, POut]) RegisterClient(inst *margo.Instance) error {
	return inst.RegisterClient(r.name)
}

// Call issues the typed RPC from a ULT and returns the decoded reply.
func (r RPC[In, Out, PIn, POut]) Call(inst *margo.Instance, self *abt.ULT, target string, in *In) (*Out, error) {
	var out Out
	if err := inst.Forward(self, target, r.name, PIn(in), POut(&out)); err != nil {
		return nil, err
	}
	return &out, nil
}

// CallTimeout is Call with a response deadline (see margo.ForwardTimeout).
func (r RPC[In, Out, PIn, POut]) CallTimeout(inst *margo.Instance, self *abt.ULT, target string, in *In, d time.Duration) (*Out, error) {
	var out Out
	if err := inst.ForwardTimeout(self, target, r.name, PIn(in), POut(&out), d); err != nil {
		return nil, err
	}
	return &out, nil
}
