package thallium

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

type sumArgs struct {
	A, B uint64
}

func (a *sumArgs) Proc(p *mercury.Proc) error {
	p.Uint64(&a.A)
	p.Uint64(&a.B)
	return p.Err()
}

type sumReply struct {
	Sum uint64
}

func (a *sumReply) Proc(p *mercury.Proc) error { return p.Uint64(&a.Sum) }

var sumRPC = Define[sumArgs, sumReply]("sum_rpc")

func newPair(t *testing.T) (*margo.Instance, *margo.Instance) {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "srv", Fabric: f, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "cli", Fabric: f, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	return srv, cli
}

func TestTypedCall(t *testing.T) {
	srv, cli := newPair(t)
	err := sumRPC.Register(srv, func(ctx *margo.Context, in *sumArgs) (*sumReply, error) {
		return &sumReply{Sum: in.A + in.B}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sumRPC.RegisterClient(cli); err != nil {
		t.Fatal(err)
	}
	var out *sumReply
	var callErr error
	u := cli.Run("t", func(self *abt.ULT) {
		out, callErr = sumRPC.Call(cli, self, srv.Addr(), &sumArgs{A: 40, B: 2})
	})
	u.Join(nil)
	if callErr != nil || out == nil || out.Sum != 42 {
		t.Fatalf("Call = %+v, %v", out, callErr)
	}
	if sumRPC.Name() != "sum_rpc" {
		t.Fatal("name wrong")
	}
}

func TestTypedHandlerError(t *testing.T) {
	srv, cli := newPair(t)
	failing := Define[sumArgs, sumReply]("fail_rpc")
	failing.Register(srv, func(ctx *margo.Context, in *sumArgs) (*sumReply, error) {
		return nil, fmt.Errorf("quota exceeded for %d", in.A)
	})
	failing.RegisterClient(cli)
	var callErr error
	u := cli.Run("t", func(self *abt.ULT) {
		_, callErr = failing.Call(cli, self, srv.Addr(), &sumArgs{A: 9})
	})
	u.Join(nil)
	if !errors.Is(callErr, mercury.ErrHandlerFail) || !strings.Contains(callErr.Error(), "quota exceeded for 9") {
		t.Fatalf("err = %v", callErr)
	}
}

func TestTypedCallTimeout(t *testing.T) {
	srv, cli := newPair(t)
	release := make(chan struct{})
	slow := Define[sumArgs, sumReply]("slow_rpc")
	slow.Register(srv, func(ctx *margo.Context, in *sumArgs) (*sumReply, error) {
		<-release
		return &sumReply{}, nil
	})
	defer close(release)
	slow.RegisterClient(cli)
	var callErr error
	u := cli.Run("t", func(self *abt.ULT) {
		_, callErr = slow.CallTimeout(cli, self, srv.Addr(), &sumArgs{}, 20*time.Millisecond)
	})
	u.Join(nil)
	if !errors.Is(callErr, mercury.ErrCanceled) {
		t.Fatalf("err = %v", callErr)
	}
}

func TestTypedBreadcrumbsStillWork(t *testing.T) {
	// The typed layer must not interfere with SYMBIOSYS: the callpath
	// profile records the typed RPC like any other.
	srv, cli := newPair(t)
	sumRPC.Register(srv, func(ctx *margo.Context, in *sumArgs) (*sumReply, error) {
		return &sumReply{Sum: in.A}, nil
	})
	sumRPC.RegisterClient(cli)
	u := cli.Run("t", func(self *abt.ULT) {
		sumRPC.Call(cli, self, srv.Addr(), &sumArgs{A: 1})
	})
	u.Join(nil)
	bc := core.Breadcrumb(0).Push("sum_rpc")
	if _, ok := cli.Profiler().OriginStats()[core.StatKey{BC: bc, Peer: srv.Addr()}]; !ok {
		t.Fatalf("typed call missing from profile: %+v", cli.Profiler().OriginStats())
	}
}
