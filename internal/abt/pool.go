package abt

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a FIFO queue of ready ULTs, the analogue of an ABT_pool. ULTs
// are created into a pool and return to it when they yield or are woken
// from a blocking primitive. XStreams attach to one or more pools and
// drain them.
//
// Pools publish the metrics SYMBIOSYS samples when generating trace
// events: the number of runnable ULTs currently queued, the number of
// ULTs created from the pool that are blocked on a primitive, and
// lifetime creation/execution counters.
type Pool struct {
	name string

	mu sync.Mutex
	q  []*ULT

	// subs holds the wake channels of attached XStreams; push notifies
	// them so an idle stream re-examines its pools.
	subs []chan struct{}

	// runnable mirrors len(q) so admission control and telemetry can
	// read the queue depth without taking the pool lock on every RPC.
	runnable atomic.Int64

	blocked  atomic.Int64
	created  atomic.Uint64
	executed atomic.Uint64
	sizeHWM  atomic.Int64
}

// NewPool returns an empty pool with the given debug name.
func NewPool(name string) *Pool {
	return &Pool{name: name}
}

// Name returns the pool's debug name.
func (p *Pool) Name() string { return p.name }

// Create spawns a new ULT running fn into the pool and returns its
// handle. The ULT begins executing when an attached XStream dequeues it.
func (p *Pool) Create(name string, fn Func) *ULT {
	u := &ULT{
		id:      nextULTID(),
		name:    name,
		fn:      fn,
		pool:    p,
		resume:  make(chan struct{}, 1),
		notify:  make(chan signal, 1),
		doneCh:  make(chan struct{}),
		spawned: time.Now(),
	}
	p.created.Add(1)
	p.push(u)
	return u
}

// push enqueues a ready ULT and wakes one idle subscriber per waiting
// stream (wake channels are buffered, so lost notifications cannot
// occur: a stream always rechecks its pools after draining its channel).
func (p *Pool) push(u *ULT) {
	u.state.Store(int32(StateReady))
	p.mu.Lock()
	p.q = append(p.q, u)
	n := int64(len(p.q))
	p.runnable.Store(n)
	if n > p.sizeHWM.Load() {
		p.sizeHWM.Store(n)
	}
	subs := p.subs
	p.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// pop dequeues the oldest ready ULT, or nil if the pool is empty.
func (p *Pool) pop() *ULT {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.q) == 0 {
		return nil
	}
	u := p.q[0]
	// Avoid retaining the popped ULT through the backing array.
	copy(p.q, p.q[1:])
	p.q[len(p.q)-1] = nil
	p.q = p.q[:len(p.q)-1]
	p.runnable.Store(int64(len(p.q)))
	return u
}

// subscribe registers an XStream wake channel.
func (p *Pool) subscribe(ch chan struct{}) {
	p.mu.Lock()
	p.subs = append(p.subs, ch)
	p.mu.Unlock()
}

// Len reports the number of runnable ULTs currently queued.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.q)
}

// Runnable reports the runnable-queue depth from a lock-free mirror of
// len(q). Admission control reads this on every incoming request, so it
// must not contend with the scheduler's push/pop path.
func (p *Pool) Runnable() int64 { return p.runnable.Load() }

// Blocked reports the number of ULTs created from this pool that are
// currently parked on a blocking primitive. This is the counter sampled
// for the paper's Figure 10 serialization study.
func (p *Pool) Blocked() int64 { return p.blocked.Load() }

// Created reports the lifetime number of ULTs created into the pool.
func (p *Pool) Created() uint64 { return p.created.Load() }

// Executed reports the lifetime number of ULTs that ran to completion.
func (p *Pool) Executed() uint64 { return p.executed.Load() }

// SizeHighWatermark reports the largest runnable-queue length observed.
func (p *Pool) SizeHighWatermark() int64 { return p.sizeHWM.Load() }

// Stats is a point-in-time snapshot of pool metrics.
type Stats struct {
	Runnable int
	Blocked  int64
	Created  uint64
	Executed uint64
	SizeHWM  int64
}

// Snapshot returns a consistent-enough view of the pool counters for
// trace-event annotation.
func (p *Pool) Snapshot() Stats {
	return Stats{
		Runnable: p.Len(),
		Blocked:  p.Blocked(),
		Created:  p.Created(),
		Executed: p.Executed(),
		SizeHWM:  p.SizeHighWatermark(),
	}
}
