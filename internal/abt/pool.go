package abt

import (
	"sync"
	"sync/atomic"
	"time"
)

// freeListCap bounds the per-pool free list of recycled detached ULT
// structs (each entry keeps a parked goroutine alive). Steady-state RPC
// service reuses these, so handler dispatch allocates no scheduler
// objects; overflow beyond the cap simply lets the goroutine exit.
const freeListCap = 1024

// Pool is a queue of ready ULTs, the analogue of an ABT_pool. ULTs are
// created into a pool and return to it when they yield or are woken from
// a blocking primitive.
//
// Structurally the pool is the shared inject/overflow queue of a
// work-stealing scheduler: attached XStreams drain it in batches into
// their private per-pool rings (see ring.go) and steal from each other's
// rings when both their ring and the inject queue are empty. The pool
// also tracks the parked-stream registry that implements the single-waker
// push policy, and the free list that recycles detached ULT structs.
//
// Pools publish the metrics SYMBIOSYS samples when generating trace
// events: the number of runnable ULTs (inject queue plus all local
// rings), the number of ULTs created from the pool that are blocked on a
// primitive, and lifetime creation/execution counters. All of them are
// lock-free mirrors — admission control and telemetry never contend with
// scheduling.
type Pool struct {
	name string

	mu sync.Mutex
	// q[qhead:] is the inject queue. Consumption advances qhead instead
	// of copying; the backing array is reset when the queue empties, so
	// dequeue is amortized O(1).
	q     []*ULT
	qhead int
	// attached lists the streams draining this pool — the steal victims.
	// It is copy-on-write: readers may hold a snapshot without the lock.
	attached []*XStream
	// idlers is a LIFO of streams parked waiting for this pool. Entries
	// are hints: a waker pops until it wins a stream's park-state CAS.
	idlers []*XStream

	freeMu sync.Mutex
	free   []*ULT
	closed bool

	// injected mirrors the inject-queue length (cheap "should I refill"
	// check for streams); runnable mirrors inject + every local ring.
	injected atomic.Int64
	runnable atomic.Int64

	blocked  atomic.Int64
	created  atomic.Uint64
	executed atomic.Uint64
	sizeHWM  atomic.Int64
}

// NewPool returns an empty pool with the given debug name.
func NewPool(name string) *Pool {
	return &Pool{name: name}
}

// Name returns the pool's debug name.
func (p *Pool) Name() string { return p.name }

// Create spawns a new ULT running fn into the pool and returns its
// handle. The ULT begins executing when an attached XStream dequeues it.
func (p *Pool) Create(name string, fn Func) *ULT {
	u := newULT(name, fn, p, false)
	p.created.Add(1)
	p.push(u)
	return u
}

// CreateDetached spawns a fire-and-forget ULT, recycling a pooled struct
// (and its goroutine) when one is free. No handle is returned: detached
// ULTs cannot be joined, and their identity is reused after termination.
// This is the RPC-handler spawn path — steady state allocates nothing.
func (p *Pool) CreateDetached(name string, fn Func) {
	u := p.takeFree()
	if u == nil {
		u = newULT(name, fn, p, true)
	} else {
		u.id = nextULTID()
		u.name = name
		u.fn = fn
		u.spawned = time.Now()
		u.firstRun = time.Time{}
	}
	p.created.Add(1)
	p.push(u)
}

// push enqueues a ready ULT on the inject queue and wakes one parked
// stream (single-waker policy: the woken stream wakes the next one if it
// finds more work, so a burst fans out without a thundering herd).
func (p *Pool) push(u *ULT) {
	u.state.Store(int32(StateReady))
	p.addRunnable(1)
	p.enqueue(u)
	p.wakeOne()
}

// enqueue appends to the inject queue without touching the runnable
// mirror — the entry point for ring flushes, whose ULTs are already
// counted.
func (p *Pool) enqueue(u *ULT) {
	p.mu.Lock()
	p.q = append(p.q, u)
	p.injected.Add(1)
	p.mu.Unlock()
}

// grab moves up to len(dst) ULTs from the inject queue into dst,
// returning how many. Runnable accounting is untouched: the caller is
// transferring them into its local ring, where they stay ready.
func (p *Pool) grab(dst []*ULT) int {
	p.mu.Lock()
	n := len(p.q) - p.qhead
	if n == 0 {
		p.mu.Unlock()
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = p.q[p.qhead]
		p.q[p.qhead] = nil
		p.qhead++
	}
	if p.qhead == len(p.q) {
		p.q = p.q[:0]
		p.qhead = 0
	}
	p.injected.Add(int64(-n))
	p.mu.Unlock()
	return n
}

// addRunnable maintains the lock-free depth mirror and its high
// watermark.
func (p *Pool) addRunnable(d int64) {
	n := p.runnable.Add(d)
	if d > 0 {
		for {
			cur := p.sizeHWM.Load()
			if n <= cur || p.sizeHWM.CompareAndSwap(cur, n) {
				return
			}
		}
	}
}

// wakeOne wakes at most one parked stream. Idler entries are hints;
// popping continues until a CAS transitions a stream parked→awake (the
// CAS is what guarantees one token per park) or the list empties.
func (p *Pool) wakeOne() {
	for {
		p.mu.Lock()
		n := len(p.idlers)
		if n == 0 {
			p.mu.Unlock()
			return
		}
		x := p.idlers[n-1]
		p.idlers[n-1] = nil
		p.idlers = p.idlers[:n-1]
		if i := x.poolIndex(p); i >= 0 {
			x.idlerReg[i] = false // guarded by p.mu, like the set
		}
		p.mu.Unlock()
		if x.parkState.CompareAndSwap(xsParked, xsAwake) {
			x.wakes.Add(1)
			x.parkSem.set()
			return
		}
	}
}

// addIdler registers a stream about to park. The caller must already
// have stored xsParked so a concurrent waker's CAS cannot miss it. The
// per-(stream, pool) flag — only ever touched under this pool's mutex —
// dedupes registration: a stream woken through one pool keeps its live
// entry in the others instead of accreting duplicates park after park.
func (p *Pool) addIdler(x *XStream, slot int) {
	p.mu.Lock()
	if !x.idlerReg[slot] {
		x.idlerReg[slot] = true
		p.idlers = append(p.idlers, x)
	}
	p.mu.Unlock()
}

// attach registers a stream as a drainer (and steal victim) of the pool.
func (p *Pool) attach(x *XStream) {
	p.mu.Lock()
	next := make([]*XStream, len(p.attached)+1)
	copy(next, p.attached)
	next[len(next)-1] = x
	p.attached = next
	p.mu.Unlock()
}

// detach removes a stopped stream from the steal-victim set. This is the
// counterpart subscribe never had: before it, elastic resize grew the
// wake list without bound and every push paid for dead streams.
func (p *Pool) detach(x *XStream) {
	p.mu.Lock()
	next := make([]*XStream, 0, len(p.attached))
	for _, v := range p.attached {
		if v != x {
			next = append(next, v)
		}
	}
	p.attached = next
	p.mu.Unlock()
}

// victims returns the current steal-victim snapshot without holding the
// lock during the steal scan (the slice is copy-on-write).
func (p *Pool) victims() []*XStream {
	p.mu.Lock()
	v := p.attached
	p.mu.Unlock()
	return v
}

// takeFree pops a recycled detached ULT, or nil.
func (p *Pool) takeFree() *ULT {
	p.freeMu.Lock()
	n := len(p.free)
	if n == 0 {
		p.freeMu.Unlock()
		return nil
	}
	u := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	p.freeMu.Unlock()
	return u
}

// recycle returns a terminated detached ULT to the free list, or lets
// its goroutine die when the list is full or the pool shut down. The
// caller has already cleared fn.
func (p *Pool) recycle(u *ULT) {
	p.freeMu.Lock()
	if p.closed || len(p.free) >= freeListCap {
		p.freeMu.Unlock()
		u.runGate.set() // worker sees fn == nil and exits
		return
	}
	p.free = append(p.free, u)
	p.freeMu.Unlock()
}

// drainFree releases every pooled worker goroutine (Runtime.Shutdown).
func (p *Pool) drainFree() {
	p.freeMu.Lock()
	p.closed = true
	free := p.free
	p.free = nil
	p.freeMu.Unlock()
	for _, u := range free {
		u.runGate.set()
	}
}

// FreeListLen reports how many recycled detached ULTs are pooled.
func (p *Pool) FreeListLen() int {
	p.freeMu.Lock()
	defer p.freeMu.Unlock()
	return len(p.free)
}

// Len reports the number of runnable ULTs currently queued (inject queue
// plus local rings), from the lock-free mirror.
func (p *Pool) Len() int { return int(p.runnable.Load()) }

// Runnable reports the runnable depth from a lock-free mirror. Admission
// control reads this on every incoming request, so it must not contend
// with the scheduler's push/pop path.
func (p *Pool) Runnable() int64 { return p.runnable.Load() }

// Blocked reports the number of ULTs created from this pool that are
// currently parked on a blocking primitive. This is the counter sampled
// for the paper's Figure 10 serialization study.
func (p *Pool) Blocked() int64 { return p.blocked.Load() }

// Created reports the lifetime number of ULTs created into the pool.
func (p *Pool) Created() uint64 { return p.created.Load() }

// Executed reports the lifetime number of ULTs that ran to completion.
func (p *Pool) Executed() uint64 { return p.executed.Load() }

// SizeHighWatermark reports the largest runnable depth observed.
func (p *Pool) SizeHighWatermark() int64 { return p.sizeHWM.Load() }

// Stats is a point-in-time snapshot of pool metrics.
type Stats struct {
	Runnable int
	Blocked  int64
	Created  uint64
	Executed uint64
	SizeHWM  int64
}

// Snapshot returns a consistent-enough view of the pool counters for
// trace-event annotation. Every field reads a lock-free mirror, so
// measurement never contends with scheduling.
func (p *Pool) Snapshot() Stats {
	return Stats{
		Runnable: int(p.runnable.Load()),
		Blocked:  p.Blocked(),
		Created:  p.Created(),
		Executed: p.Executed(),
		SizeHWM:  p.SizeHighWatermark(),
	}
}
