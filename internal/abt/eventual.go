package abt

import "sync"

// Eventual is a single-assignment synchronization object, the analogue of
// ABT_eventual: ULTs (or plain goroutines) wait until some other party
// sets a value. Waiting from a ULT is cooperative — the XStream is
// released while the ULT is parked — which is how Margo turns Mercury's
// callback completion model into blocking calls.
type Eventual struct {
	mu      sync.Mutex
	isSet   bool
	val     any
	waiters []*ULT
	extCh   chan struct{} // lazily created for non-ULT waiters
}

// NewEventual returns an unset eventual.
func NewEventual() *Eventual { return &Eventual{} }

// Set stores the value and wakes all waiters. Setting an already-set
// eventual panics, matching the single-assignment contract.
func (e *Eventual) Set(v any) {
	e.mu.Lock()
	if e.isSet {
		e.mu.Unlock()
		panic("abt: Eventual set twice")
	}
	e.isSet = true
	e.val = v
	waiters := e.waiters
	e.waiters = nil
	ext := e.extCh
	e.mu.Unlock()
	if ext != nil {
		close(ext)
	}
	for _, w := range waiters {
		w.ready()
	}
}

// TrySet stores the value if the eventual is still unset, reporting
// whether this call won. Use when multiple parties race to complete.
func (e *Eventual) TrySet(v any) bool {
	e.mu.Lock()
	if e.isSet {
		e.mu.Unlock()
		return false
	}
	e.isSet = true
	e.val = v
	waiters := e.waiters
	e.waiters = nil
	ext := e.extCh
	e.mu.Unlock()
	if ext != nil {
		close(ext)
	}
	for _, w := range waiters {
		w.ready()
	}
	return true
}

// IsSet reports whether the eventual has been set.
func (e *Eventual) IsSet() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.isSet
}

// Wait blocks until the eventual is set and returns its value. When
// called from a ULT, self must be that ULT so the wait parks
// cooperatively; from a plain goroutine pass self == nil.
func (e *Eventual) Wait(self *ULT) any {
	e.mu.Lock()
	if e.isSet {
		v := e.val
		e.mu.Unlock()
		return v
	}
	if self == nil {
		if e.extCh == nil {
			e.extCh = make(chan struct{})
		}
		ch := e.extCh
		e.mu.Unlock()
		<-ch
	} else {
		e.waiters = append(e.waiters, self)
		self.pool.blocked.Add(1)
		e.mu.Unlock()
		self.park()
	}
	e.mu.Lock()
	v := e.val
	e.mu.Unlock()
	return v
}
