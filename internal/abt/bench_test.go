package abt

import "testing"

// BenchmarkULTSpawnJoin measures the full create→run→join cycle.
func BenchmarkULTSpawnJoin(b *testing.B) {
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 1, p)
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := p.Create("w", func(self *ULT) {})
		u.Join(nil)
	}
}

// BenchmarkYield measures one cooperative yield (park + requeue + resume).
func BenchmarkYield(b *testing.B) {
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 1, p)
	defer rt.Shutdown()
	u := p.Create("y", func(self *ULT) {
		for i := 0; i < b.N; i++ {
			self.Yield()
		}
	})
	u.Join(nil)
}

// BenchmarkEventualRoundTrip measures park-on-wait plus wake-on-set.
func BenchmarkEventualRoundTrip(b *testing.B) {
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 2, p)
	defer rt.Shutdown()
	u := p.Create("pingpong", func(self *ULT) {
		for i := 0; i < b.N; i++ {
			ev := NewEventual()
			p.Create("setter", func(*ULT) { ev.Set(nil) })
			ev.Wait(self)
		}
	})
	u.Join(nil)
}

// BenchmarkMutexUncontended measures lock/unlock without waiters.
func BenchmarkMutexUncontended(b *testing.B) {
	m := NewMutex()
	for i := 0; i < b.N; i++ {
		m.Lock(nil)
		m.Unlock()
	}
}

// BenchmarkSemaphore measures acquire/release without blocking.
func BenchmarkSemaphore(b *testing.B) {
	s := NewSemaphore(1)
	for i := 0; i < b.N; i++ {
		s.Acquire(nil)
		s.Release()
	}
}

// BenchmarkPoolSnapshot measures the trace-annotation sampling cost.
func BenchmarkPoolSnapshot(b *testing.B) {
	p := NewPool("m")
	for i := 0; i < b.N; i++ {
		_ = p.Snapshot()
	}
}
