package abt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestRT builds a runtime with one pool and n streams and returns both
// plus a cleanup-registered shutdown.
func newTestRT(t *testing.T, n int) (*Runtime, *Pool) {
	t.Helper()
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", n, p)
	t.Cleanup(rt.Shutdown)
	return rt, p
}

func TestULTRunsAndJoins(t *testing.T) {
	_, p := newTestRT(t, 1)
	var ran atomic.Bool
	u := p.Create("w", func(self *ULT) { ran.Store(true) })
	if err := u.Join(nil); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !ran.Load() {
		t.Fatal("ULT did not run")
	}
	if got := u.State(); got != StateTerminated {
		t.Fatalf("state = %v, want terminated", got)
	}
}

func TestManyULTsAllComplete(t *testing.T) {
	_, p := newTestRT(t, 4)
	const n = 500
	var count atomic.Int64
	ults := make([]*ULT, n)
	for i := range ults {
		ults[i] = p.Create("w", func(self *ULT) { count.Add(1) })
	}
	for _, u := range ults {
		if err := u.Join(nil); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	if count.Load() != n {
		t.Fatalf("count = %d, want %d", count.Load(), n)
	}
	if p.Executed() != n {
		t.Fatalf("Executed = %d, want %d", p.Executed(), n)
	}
}

func TestSingleStreamRunsOneAtATime(t *testing.T) {
	_, p := newTestRT(t, 1)
	var inside, maxInside int64
	var mu sync.Mutex
	done := make([]*ULT, 0, 20)
	for i := 0; i < 20; i++ {
		done = append(done, p.Create("w", func(self *ULT) {
			// Within one quantum (no yield), a single stream admits
			// exactly one ULT.
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			hold(100 * time.Microsecond)
			mu.Lock()
			inside--
			mu.Unlock()
			self.Yield()
		}))
	}
	for _, u := range done {
		u.Join(nil)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent ULTs on one stream = %d, want 1", maxInside)
	}
}

func TestYieldInterleaves(t *testing.T) {
	_, p := newTestRT(t, 1)
	var order []int
	var mu sync.Mutex
	record := func(v int) {
		mu.Lock()
		order = append(order, v)
		mu.Unlock()
	}
	a := p.Create("a", func(self *ULT) {
		record(1)
		self.Yield()
		record(3)
	})
	b := p.Create("b", func(self *ULT) {
		record(2)
		self.Yield()
		record(4)
	})
	a.Join(nil)
	b.Join(nil)
	want := []int{1, 2, 3, 4}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventualCooperativeWait(t *testing.T) {
	_, p := newTestRT(t, 1)
	ev := NewEventual()
	var got any
	waiter := p.Create("waiter", func(self *ULT) { got = ev.Wait(self) })
	setter := p.Create("setter", func(self *ULT) { ev.Set(42) })
	setter.Join(nil)
	waiter.Join(nil)
	if got != 42 {
		t.Fatalf("Wait = %v, want 42", got)
	}
}

func TestEventualExternalWait(t *testing.T) {
	_, p := newTestRT(t, 1)
	ev := NewEventual()
	p.Create("setter", func(self *ULT) {
		self.Sleep(time.Millisecond)
		ev.Set("hello")
	})
	if got := ev.Wait(nil); got != "hello" {
		t.Fatalf("Wait = %v", got)
	}
	if !ev.IsSet() {
		t.Fatal("IsSet = false after Set")
	}
}

func TestEventualSetTwicePanics(t *testing.T) {
	ev := NewEventual()
	ev.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Set did not panic")
		}
	}()
	ev.Set(2)
}

func TestEventualWaitAfterSetReturnsImmediately(t *testing.T) {
	ev := NewEventual()
	ev.Set(7)
	if got := ev.Wait(nil); got != 7 {
		t.Fatalf("Wait = %v, want 7", got)
	}
}

func TestBlockedCountTracksEventualWaiters(t *testing.T) {
	_, p := newTestRT(t, 2)
	ev := NewEventual()
	const n = 8
	ults := make([]*ULT, n)
	for i := range ults {
		ults[i] = p.Create("w", func(self *ULT) { ev.Wait(self) })
	}
	// Wait for all to park.
	deadline := time.Now().Add(2 * time.Second)
	for p.Blocked() != n {
		if time.Now().After(deadline) {
			t.Fatalf("Blocked = %d, want %d", p.Blocked(), n)
		}
		time.Sleep(time.Millisecond)
	}
	ev.Set(nil)
	for _, u := range ults {
		u.Join(nil)
	}
	if p.Blocked() != 0 {
		t.Fatalf("Blocked after wake = %d, want 0", p.Blocked())
	}
}

func TestMutexSerializesCriticalSection(t *testing.T) {
	_, p := newTestRT(t, 4)
	m := NewMutex()
	var inside, maxInside, total int64
	var imu sync.Mutex
	const n = 40
	ults := make([]*ULT, n)
	for i := range ults {
		ults[i] = p.Create("w", func(self *ULT) {
			m.Lock(self)
			imu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			imu.Unlock()
			self.Yield() // widen the window
			imu.Lock()
			inside--
			total++
			imu.Unlock()
			m.Unlock()
		})
	}
	for _, u := range ults {
		u.Join(nil)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrency in critical section = %d, want 1", maxInside)
	}
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
}

func TestMutexTryLock(t *testing.T) {
	m := NewMutex()
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	m := NewMutex()
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked mutex did not panic")
		}
	}()
	m.Unlock()
}

func TestULTLocalStorage(t *testing.T) {
	_, p := newTestRT(t, 1)
	type key struct{}
	var got any
	var ok bool
	u := p.Create("w", func(self *ULT) {
		self.SetLocal(key{}, "breadcrumb")
		got, ok = self.Local(key{})
	})
	u.Join(nil)
	if !ok || got != "breadcrumb" {
		t.Fatalf("Local = %v, %v", got, ok)
	}
}

func TestULTLocalMissingKey(t *testing.T) {
	_, p := newTestRT(t, 1)
	u := p.Create("w", func(self *ULT) {
		if _, ok := self.Local("nope"); ok {
			t.Error("unexpected local value")
		}
	})
	u.Join(nil)
}

func TestPanicIsCapturedAsError(t *testing.T) {
	_, p := newTestRT(t, 1)
	u := p.Create("boom", func(self *ULT) { panic("kaboom") })
	err := u.Join(nil)
	if err == nil {
		t.Fatal("Join returned nil for panicked ULT")
	}
}

func TestJoinFromULT(t *testing.T) {
	_, p := newTestRT(t, 2)
	inner := p.Create("inner", func(self *ULT) { self.Sleep(2 * time.Millisecond) })
	var joined atomic.Bool
	outer := p.Create("outer", func(self *ULT) {
		inner.Join(self)
		joined.Store(true)
	})
	outer.Join(nil)
	if !joined.Load() {
		t.Fatal("outer did not observe inner completion")
	}
}

func TestJoinFromULTAlreadyDone(t *testing.T) {
	_, p := newTestRT(t, 1)
	inner := p.Create("inner", func(self *ULT) {})
	inner.Join(nil)
	outer := p.Create("outer", func(self *ULT) {
		if err := inner.Join(self); err != nil {
			t.Errorf("Join: %v", err)
		}
	})
	outer.Join(nil)
}

func TestSleepReleasesStream(t *testing.T) {
	_, p := newTestRT(t, 1)
	var other atomic.Bool
	sleeper := p.Create("sleeper", func(self *ULT) {
		self.Sleep(20 * time.Millisecond)
		if !other.Load() {
			t.Error("sleep did not release the stream")
		}
	})
	quick := p.Create("quick", func(self *ULT) { other.Store(true) })
	quick.Join(nil)
	sleeper.Join(nil)
}

func TestHandlerTimeGrowsWhenStreamsScarce(t *testing.T) {
	// With 1 stream and ULTs that each hold the stream ~2ms, later ULTs
	// wait in the pool — the paper's "target handler time" saturation.
	_, p := newTestRT(t, 1)
	const n = 6
	ults := make([]*ULT, n)
	for i := range ults {
		ults[i] = p.Create("w", func(self *ULT) {
			hold(2 * time.Millisecond)
		})
	}
	for _, u := range ults {
		u.Join(nil)
	}
	last := ults[n-1]
	wait := last.FirstRunTime().Sub(last.SpawnTime())
	if wait < 5*time.Millisecond {
		t.Fatalf("last ULT handler wait = %v, want >= 5ms under saturation", wait)
	}
}

func TestHandlerTimeShrinksWhenStreamsPlenty(t *testing.T) {
	// Compare total handler wait (spawn -> first run) under 1 stream vs
	// many streams; the scarce configuration must wait far longer. This
	// is the paper's Figure 9 effect at the runtime level.
	run := func(streams int) time.Duration {
		rt := NewRuntime()
		p := rt.AddPool("main")
		rt.AddXStreams("es", streams, p)
		defer rt.Shutdown()
		const n = 6
		ults := make([]*ULT, n)
		for i := range ults {
			ults[i] = p.Create("w", func(self *ULT) {
				hold(2 * time.Millisecond)
			})
		}
		var total time.Duration
		for _, u := range ults {
			u.Join(nil)
			total += u.FirstRunTime().Sub(u.SpawnTime())
		}
		return total
	}
	scarce := run(1)
	ample := run(8)
	if ample*2 >= scarce {
		t.Fatalf("handler wait: scarce=%v ample=%v, want ample << scarce", scarce, ample)
	}
}

func TestXStreamPoolPriority(t *testing.T) {
	rt := NewRuntime()
	hi := rt.AddPool("hi")
	lo := rt.AddPool("lo")
	defer rt.Shutdown()

	// Fill both pools before starting the stream, then verify the high
	// priority pool drains first.
	var order []string
	var mu sync.Mutex
	var ults []*ULT
	for i := 0; i < 3; i++ {
		ults = append(ults, lo.Create("lo", func(self *ULT) {
			mu.Lock()
			order = append(order, "lo")
			mu.Unlock()
		}))
	}
	for i := 0; i < 3; i++ {
		ults = append(ults, hi.Create("hi", func(self *ULT) {
			mu.Lock()
			order = append(order, "hi")
			mu.Unlock()
		}))
	}
	rt.AddXStreams("es", 1, hi, lo)
	for _, u := range ults {
		u.Join(nil)
	}
	for i := 0; i < 3; i++ {
		if order[i] != "hi" {
			t.Fatalf("order = %v, want hi first", order)
		}
	}
}

func TestRuntimeDuplicatePoolPanics(t *testing.T) {
	rt := NewRuntime()
	rt.AddPool("p")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate pool did not panic")
		}
	}()
	rt.AddPool("p")
}

func TestRuntimeShutdownIdempotent(t *testing.T) {
	rt := NewRuntime()
	p := rt.AddPool("p")
	rt.AddXStreams("es", 2, p)
	rt.Shutdown()
	rt.Shutdown()
}

func TestPoolSnapshot(t *testing.T) {
	_, p := newTestRT(t, 2)
	ev := NewEventual()
	u1 := p.Create("blocked", func(self *ULT) { ev.Wait(self) })
	deadline := time.Now().Add(2 * time.Second)
	for p.Blocked() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("ULT never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	s := p.Snapshot()
	if s.Blocked != 1 {
		t.Fatalf("Snapshot.Blocked = %d, want 1", s.Blocked)
	}
	if s.Created < 1 {
		t.Fatalf("Snapshot.Created = %d", s.Created)
	}
	ev.Set(nil)
	u1.Join(nil)
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateReady:      "ready",
		StateRunning:    "running",
		StateBlocked:    "blocked",
		StateTerminated: "terminated",
		State(99):       "state(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// hold models request execution work: it occupies the hosting stream
// for d (the ULT keeps its run token) without burning CPU, so N streams
// provide N-way work capacity even on a single-core test machine.
func hold(d time.Duration) {
	time.Sleep(d)
}

// TestPoolRunnableMirrorsQueue: the lock-free Runnable mirror must track
// len(q) through pushes and pops — admission control reads it on every
// incoming RPC and a stale depth would admit into a saturated pool.
func TestPoolRunnableMirrorsQueue(t *testing.T) {
	p := NewPool("mirror")
	if got := p.Runnable(); got != 0 {
		t.Fatalf("empty pool Runnable = %d", got)
	}
	gate := NewEventual()
	const n = 5
	for i := 0; i < n; i++ {
		p.Create("parked", func(self *ULT) { gate.Wait(self) })
	}
	// No XStream is attached: all n ULTs sit queued.
	if got := p.Runnable(); got != n {
		t.Fatalf("Runnable = %d with %d queued ULTs", got, n)
	}
	if got := p.SizeHighWatermark(); got != n {
		t.Fatalf("SizeHighWatermark = %d, want %d", got, n)
	}

	// Drain them with a stream; the mirror must return to zero.
	xs := NewXStream("drainer", p)
	gate.Set(nil)
	deadline := time.Now().Add(2 * time.Second)
	for p.Executed() != n {
		if time.Now().After(deadline) {
			t.Fatalf("executed %d of %d", p.Executed(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := p.Runnable(); got != 0 {
		t.Fatalf("Runnable = %d after drain", got)
	}
	xs.Stop()
}
