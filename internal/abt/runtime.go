package abt

import (
	"fmt"
	"sync"
)

// Runtime groups the pools and execution streams of one (virtual)
// process, mirroring an ABT_init'd Argobots instance. It exists for
// lifecycle management: services build their pool/stream topology through
// it and tear everything down with Shutdown.
type Runtime struct {
	mu       sync.Mutex
	pools    map[string]*Pool
	xstreams []*XStream
	stopped  bool
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{pools: make(map[string]*Pool)}
}

// AddPool creates a named pool. Pool names are unique within a runtime.
func (r *Runtime) AddPool(name string) *Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.pools[name]; dup {
		panic(fmt.Sprintf("abt: duplicate pool %q", name))
	}
	p := NewPool(name)
	r.pools[name] = p
	return p
}

// Pool returns the named pool, or nil.
func (r *Runtime) Pool(name string) *Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pools[name]
}

// Pools returns a snapshot of all pools in the runtime.
func (r *Runtime) Pools() []*Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Pool, 0, len(r.pools))
	for _, p := range r.pools {
		out = append(out, p)
	}
	return out
}

// AddXStreams starts n execution streams draining the given pools in
// priority order and returns them.
func (r *Runtime) AddXStreams(name string, n int, pools ...*Pool) []*XStream {
	xs := make([]*XStream, n)
	for i := range xs {
		xs[i] = NewXStream(fmt.Sprintf("%s-%d", name, i), pools...)
	}
	r.mu.Lock()
	r.xstreams = append(r.xstreams, xs...)
	r.mu.Unlock()
	return xs
}

// NumXStreams reports how many streams the runtime has started.
func (r *Runtime) NumXStreams() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.xstreams)
}

// Shutdown stops all execution streams. Work still queued or parked is
// abandoned; callers join their ULTs before shutting down.
func (r *Runtime) Shutdown() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	xs := r.xstreams
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x *XStream) {
			defer wg.Done()
			x.Stop()
		}(x)
	}
	wg.Wait()
}
