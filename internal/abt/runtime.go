package abt

import (
	"fmt"
	"sync"
)

// Runtime groups the pools and execution streams of one (virtual)
// process, mirroring an ABT_init'd Argobots instance. It exists for
// lifecycle management: services build their pool/stream topology through
// it and tear everything down with Shutdown.
type Runtime struct {
	mu       sync.Mutex
	pools    map[string]*Pool
	xstreams []*XStream
	stopped  bool
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{pools: make(map[string]*Pool)}
}

// AddPool creates a named pool. Pool names are unique within a runtime.
func (r *Runtime) AddPool(name string) *Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.pools[name]; dup {
		panic(fmt.Sprintf("abt: duplicate pool %q", name))
	}
	p := NewPool(name)
	r.pools[name] = p
	return p
}

// Pool returns the named pool, or nil.
func (r *Runtime) Pool(name string) *Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pools[name]
}

// Pools returns a snapshot of all pools in the runtime.
func (r *Runtime) Pools() []*Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Pool, 0, len(r.pools))
	for _, p := range r.pools {
		out = append(out, p)
	}
	return out
}

// AddXStreams starts n execution streams draining the given pools in
// priority order and returns them.
func (r *Runtime) AddXStreams(name string, n int, pools ...*Pool) []*XStream {
	xs := make([]*XStream, n)
	for i := range xs {
		xs[i] = NewXStream(fmt.Sprintf("%s-%d", name, i), pools...)
	}
	r.mu.Lock()
	r.xstreams = append(r.xstreams, xs...)
	r.mu.Unlock()
	return xs
}

// NumXStreams reports how many streams the runtime has started.
func (r *Runtime) NumXStreams() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.xstreams)
}

// Shutdown stops all execution streams and releases the pooled detached
// worker goroutines. Work still queued or parked is abandoned; callers
// join their ULTs before shutting down.
func (r *Runtime) Shutdown() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	xs := r.xstreams
	pools := make([]*Pool, 0, len(r.pools))
	for _, p := range r.pools {
		pools = append(pools, p)
	}
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x *XStream) {
			defer wg.Done()
			x.Stop()
		}(x)
	}
	wg.Wait()
	for _, p := range pools {
		p.drainFree()
	}
}

// SchedStats aggregates scheduler activity across the runtime's streams:
// the steal/park/wake transitions the telemetry plane exports so ES
// sizing (the paper's C1/C2 knob) is observable live.
type SchedStats struct {
	Quanta uint64 // scheduling quanta executed
	Steals uint64 // ULTs taken from sibling rings
	Parks  uint64 // times a stream slept waiting for work
	Wakes  uint64 // single-waker tokens delivered
}

// SchedStats sums the per-stream scheduler counters.
func (r *Runtime) SchedStats() SchedStats {
	r.mu.Lock()
	xs := r.xstreams
	r.mu.Unlock()
	var s SchedStats
	for _, x := range xs {
		s.Quanta += x.Quanta()
		s.Steals += x.Steals()
		s.Parks += x.Parks()
		s.Wakes += x.Wakes()
	}
	return s
}
