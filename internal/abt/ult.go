package abt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Func is the body of a user-level thread. The runtime passes the ULT's
// own handle so the body can yield, block, and reach ULT-local storage.
type Func func(self *ULT)

// ULT is a user-level thread: a unit of cooperative work created into a
// Pool and executed by XStreams. A ULT runs only while it holds the run
// token granted by an XStream; Yield, blocking primitives, and
// termination return the token.
//
// The token handoff is two counting event semaphores: runGate grants the
// token to the ULT goroutine, dispGate returns it to a hosting stream.
// Dispositions are context-free — a stream receiving a disposition signal
// does not need to know which quantum produced it. The only disposition
// requiring stream-side action, "requeue after yield", travels as a
// pending count claimed by CAS, so even when a waker requeues a parked
// ULT and a second stream starts the next quantum before the first stream
// consumed the park disposition, exactly one stream performs the requeue.
type ULT struct {
	id   uint64
	name string
	fn   Func
	pool *Pool

	runGate  evsem
	dispGate evsem
	// yieldPending counts yields awaiting a stream-side requeue; the
	// stream that wins the decrement CAS requeues.
	yieldPending atomic.Int32

	// detached ULTs have no handle, cannot be joined, and recycle their
	// struct and goroutine through the pool free list.
	detached bool

	started  atomic.Bool
	state    atomic.Int32
	spawned  time.Time
	firstRun time.Time

	doneCh chan struct{} // nil for detached ULTs
	panicV any

	// locals is ULT-local storage, the analogue of ABT_key. Recycled
	// detached ULTs keep the map allocation and clear the entries.
	localMu sync.Mutex
	locals  map[any]any

	// joiners are ULTs parked in Join waiting for this ULT to finish.
	joinMu  sync.Mutex
	joiners []*ULT
}

func newULT(name string, fn Func, p *Pool, detached bool) *ULT {
	u := &ULT{
		id:       nextULTID(),
		name:     name,
		fn:       fn,
		pool:     p,
		detached: detached,
		spawned:  time.Now(),
	}
	u.runGate.init()
	u.dispGate.init()
	if !detached {
		u.doneCh = make(chan struct{})
	}
	return u
}

// ID returns the runtime-unique identifier of the ULT.
func (u *ULT) ID() uint64 { return u.id }

// Name returns the debug name given at creation.
func (u *ULT) Name() string { return u.name }

// Pool returns the pool the ULT was created into (and returns to when it
// yields or is woken).
func (u *ULT) Pool() *Pool { return u.pool }

// State reports the current lifecycle state.
func (u *ULT) State() State { return State(u.state.Load()) }

// SpawnTime returns the instant the ULT was created into its pool (the
// paper's t4 for RPC handler ULTs).
func (u *ULT) SpawnTime() time.Time { return u.spawned }

// FirstRunTime returns the instant the ULT first began executing (t5).
// It is zero until the ULT has run.
func (u *ULT) FirstRunTime() time.Time { return u.firstRun }

// Done returns a channel closed when the ULT terminates. It is safe to
// wait on from plain goroutines.
func (u *ULT) Done() <-chan struct{} { return u.doneCh }

// Err returns a non-nil error if the ULT body panicked.
func (u *ULT) Err() error {
	select {
	case <-u.doneCh:
	default:
		return nil
	}
	if u.panicV != nil {
		return fmt.Errorf("abt: ULT %q panicked: %v", u.name, u.panicV)
	}
	return nil
}

// SetLocal stores a ULT-local value, the analogue of setting an ABT_key.
func (u *ULT) SetLocal(key, val any) {
	u.localMu.Lock()
	if u.locals == nil {
		u.locals = make(map[any]any)
	}
	u.locals[key] = val
	u.localMu.Unlock()
}

// Local retrieves a ULT-local value previously stored with SetLocal.
func (u *ULT) Local(key any) (any, bool) {
	u.localMu.Lock()
	defer u.localMu.Unlock()
	v, ok := u.locals[key]
	return v, ok
}

// Yield returns the run token to the hosting XStream and requeues the ULT
// on its pool, letting equal-priority work run.
func (u *ULT) Yield() {
	u.state.Store(int32(StateReady))
	u.yieldPending.Add(1)
	u.dispGate.set()
	u.runGate.wait()
	u.state.Store(int32(StateRunning))
}

// claimYield consumes one pending requeue-after-yield, reporting whether
// the calling stream won it.
func (u *ULT) claimYield() bool {
	for {
		n := u.yieldPending.Load()
		if n == 0 {
			return false
		}
		if u.yieldPending.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// park releases the XStream without requeueing; the caller must have
// arranged for a waker to call u.ready() exactly once.
func (u *ULT) park() {
	u.state.Store(int32(StateBlocked))
	u.dispGate.set()
	u.runGate.wait()
	u.state.Store(int32(StateRunning))
}

// ready requeues a parked ULT. Called exactly once per park by the
// primitive that woke it.
func (u *ULT) ready() {
	u.pool.blocked.Add(-1)
	u.pool.push(u)
}

// run executes the body, capturing panics.
func (u *ULT) run() {
	defer func() {
		if r := recover(); r != nil {
			u.panicV = r
		}
	}()
	u.fn(u)
}

// main is the goroutine body backing a joinable ULT. It waits for its
// first run token, executes fn once, and reports termination.
func (u *ULT) main() {
	u.runGate.wait()
	u.firstRun = time.Now()
	u.state.Store(int32(StateRunning))
	u.run()
	u.state.Store(int32(StateTerminated))
	u.pool.executed.Add(1)
	u.joinMu.Lock()
	joiners := u.joiners
	u.joiners = nil
	close(u.doneCh)
	u.joinMu.Unlock()
	for _, j := range joiners {
		j.ready()
	}
	u.dispGate.set()
}

// mainDetached backs a detached ULT: a persistent worker that runs one
// body per life, returns its struct to the pool free list, and parks for
// the next life's token. fn == nil is the shutdown poison pill.
func (u *ULT) mainDetached() {
	for {
		u.runGate.wait()
		if u.fn == nil {
			return
		}
		u.firstRun = time.Now()
		u.state.Store(int32(StateRunning))
		u.run()
		u.state.Store(int32(StateTerminated))
		pool := u.pool
		pool.executed.Add(1)
		u.fn = nil
		u.panicV = nil
		if u.locals != nil {
			clear(u.locals)
		}
		u.dispGate.set()
		pool.recycle(u)
	}
}

// Join blocks until u terminates. When called from inside another ULT,
// self must be that ULT so the wait is cooperative (the XStream is
// released); from a plain goroutine pass self == nil.
func (u *ULT) Join(self *ULT) error {
	if self == nil {
		<-u.doneCh
		return u.Err()
	}
	u.joinMu.Lock()
	select {
	case <-u.doneCh:
		u.joinMu.Unlock()
		return u.Err()
	default:
	}
	u.joiners = append(u.joiners, self)
	self.pool.blocked.Add(1)
	u.joinMu.Unlock()
	self.park()
	return u.Err()
}

// Sleep parks the ULT for at least d, releasing its XStream meanwhile.
func (u *ULT) Sleep(d time.Duration) {
	u.pool.blocked.Add(1)
	time.AfterFunc(d, u.ready)
	u.park()
}
