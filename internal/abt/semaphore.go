package abt

import "sync"

// Semaphore is a counting semaphore for ULTs, used to bound the number
// of asynchronous operations in flight (e.g. the HEPnOS async engine's
// outstanding put_packed window). Acquire parks the calling ULT
// cooperatively when no permits remain.
type Semaphore struct {
	mu      sync.Mutex
	permits int
	waiters []*ULT
}

// NewSemaphore returns a semaphore with n permits.
func NewSemaphore(n int) *Semaphore {
	if n < 1 {
		n = 1
	}
	return &Semaphore{permits: n}
}

// Acquire takes a permit, parking the ULT until one is available.
func (s *Semaphore) Acquire(self *ULT) {
	s.mu.Lock()
	if s.permits > 0 {
		s.permits--
		s.mu.Unlock()
		return
	}
	if self == nil {
		panic("abt: Semaphore.Acquire without permits requires a ULT")
	}
	s.waiters = append(s.waiters, self)
	self.pool.blocked.Add(1)
	s.mu.Unlock()
	self.park()
	// The releasing side transferred a permit directly to us.
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.permits == 0 {
		return false
	}
	s.permits--
	return true
}

// Release returns a permit, waking the oldest waiter if any.
func (s *Semaphore) Release() {
	s.mu.Lock()
	if len(s.waiters) == 0 {
		s.permits++
		s.mu.Unlock()
		return
	}
	w := s.waiters[0]
	copy(s.waiters, s.waiters[1:])
	s.waiters[len(s.waiters)-1] = nil
	s.waiters = s.waiters[:len(s.waiters)-1]
	s.mu.Unlock()
	w.ready()
}

// Available reports the current number of free permits.
func (s *Semaphore) Available() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.permits
}
