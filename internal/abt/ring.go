package abt

import "sync/atomic"

// ringSize is each XStream's per-pool local deque capacity. Power of two.
const ringSize = 256

// ring is a bounded single-producer multi-consumer FIFO of ready ULTs —
// one per (XStream, Pool) edge. The owning stream pushes at the tail
// (refills from the shared inject queue, local yield requeues); the owner
// and thieves alike consume from the head by CAS, so steals preserve the
// global oldest-first order that pool FIFO semantics promise.
//
// Correctness of pop: a consumer reads head, observes tail > head, reads
// the slot, then CASes head forward. head is monotonic, and the owner
// only overwrites a slot one full lap later — after head has advanced
// past it — so a successful CAS proves the value read was the current
// lap's. Consumed slots are deliberately not cleared: a consumer writing
// nil could clobber the owner's refill of the same slot. Each slot thus
// retains at most one stale *ULT until overwritten, which is fine because
// detached ULT structs are pooled anyway.
type ring struct {
	head  atomic.Uint64 // next index to consume (owner or thief, CAS)
	tail  atomic.Uint64 // next index to fill (owner only)
	slots [ringSize]atomic.Pointer[ULT]
}

// size reports the current occupancy (approximate under concurrency).
func (r *ring) size() int { return int(r.tail.Load() - r.head.Load()) }

// free reports remaining capacity as seen by the owner. Concurrent pops
// only grow it, so a push based on a stale value is always safe.
func (r *ring) free() int { return ringSize - int(r.tail.Load()-r.head.Load()) }

// push appends u at the tail. Owner only. Reports false when full.
func (r *ring) push(u *ULT) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= ringSize {
		return false
	}
	r.slots[t&(ringSize-1)].Store(u)
	r.tail.Store(t + 1)
	return true
}

// pop removes and returns the oldest entry, or nil when empty. Safe from
// any goroutine.
func (r *ring) pop() *ULT {
	for {
		h := r.head.Load()
		if h == r.tail.Load() {
			return nil
		}
		u := r.slots[h&(ringSize-1)].Load()
		if r.head.CompareAndSwap(h, h+1) {
			return u
		}
	}
}
