package abt

import "sync"

// Mutex is a ULT-aware mutual-exclusion lock, the analogue of ABT_mutex.
// A ULT that fails to acquire the lock parks cooperatively, releasing its
// XStream and raising its pool's blocked count — the signal SYMBIOSYS
// samples to diagnose backend serialization (paper §V-C3, Figure 10).
//
// Lock ownership transfers directly to the oldest waiter on Unlock, so
// the lock is FIFO-fair.
type Mutex struct {
	mu      sync.Mutex
	locked  bool
	waiters []*ULT
}

// NewMutex returns an unlocked mutex.
func NewMutex() *Mutex { return &Mutex{} }

// Lock acquires the mutex, parking the calling ULT if it is held.
func (m *Mutex) Lock(self *ULT) {
	m.mu.Lock()
	if !m.locked {
		m.locked = true
		m.mu.Unlock()
		return
	}
	if self == nil {
		panic("abt: Mutex.Lock on a contended mutex requires a ULT")
	}
	m.waiters = append(m.waiters, self)
	self.pool.blocked.Add(1)
	m.mu.Unlock()
	self.park()
	// Ownership was transferred to us by Unlock before we were woken.
}

// TryLock acquires the mutex without blocking, reporting success.
func (m *Mutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.locked {
		return false
	}
	m.locked = true
	return true
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock() {
	m.mu.Lock()
	if !m.locked {
		m.mu.Unlock()
		panic("abt: Unlock of unlocked Mutex")
	}
	if len(m.waiters) == 0 {
		m.locked = false
		m.mu.Unlock()
		return
	}
	w := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters[len(m.waiters)-1] = nil
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.mu.Unlock()
	// The lock stays held; w now owns it.
	w.ready()
}

// Waiters reports how many ULTs are parked waiting for the lock.
func (m *Mutex) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}
