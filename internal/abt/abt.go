// Package abt implements a cooperative user-level tasking runtime modeled
// on Argobots, the threading substrate of the Mochi stack.
//
// The runtime decouples units of work (user-level threads, ULTs) from the
// hardware resources that execute them (execution streams, XStreams). ULTs
// are created into Pools; each XStream repeatedly dequeues a ULT from its
// pools and runs it until the ULT yields, blocks, or terminates. At most
// one ULT runs on an XStream at any instant, which is the property that
// produces the scheduling phenomena SYMBIOSYS observes: handler-pool
// pileups when XStreams are scarce, blocked-ULT spikes on serialized
// backends, and progress-loop starvation on shared streams.
//
// Blocking primitives (Eventual, Mutex, Barrier, sleeping) park the
// calling ULT and release its XStream to run other work. Pools expose the
// instantaneous number of runnable and blocked ULTs, the counters the
// paper samples in its Figure 10 study.
//
// ULTs are implemented as goroutines gated by a run token: a parked ULT
// goroutine consumes no XStream. Because Go has no thread-local storage,
// every cooperative operation takes the current *ULT explicitly; handler
// functions receive it as their first argument.
package abt

import (
	"fmt"
	"sync/atomic"
)

// State describes the lifecycle position of a ULT.
type State int32

// ULT lifecycle states.
const (
	StateReady State = iota
	StateRunning
	StateBlocked
	StateTerminated
)

// String returns the lowercase name of the state.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

var ultIDs atomic.Uint64

func nextULTID() uint64 { return ultIDs.Add(1) }
