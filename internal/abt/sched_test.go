package abt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealParkStress exercises the three contended edges of the
// work-stealing scheduler at once: concurrent external pushes (inject
// queue), owner ring pops racing thief pops, and park/unpark cycles
// through Eventual. Run under -race (make check does) this is the
// primary memory-model check for the ring deque and evsem.
func TestStealParkStress(t *testing.T) {
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 4, p)
	defer rt.Shutdown()

	const spawners = 4
	const perSpawner = 150
	const total = spawners * perSpawner
	var ran atomic.Int64
	uch := make(chan *ULT, total)

	var wg sync.WaitGroup
	for s := 0; s < spawners; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSpawner; i++ {
				ev := NewEventual()
				uch <- p.Create("w", func(self *ULT) {
					self.Yield()      // owner-ring requeue
					_ = ev.Wait(self) // park
					self.Yield()      // requeue after wake
					ran.Add(1)
				})
				go ev.Set(nil) // unpark from an arbitrary goroutine
				if i%8 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	close(uch)
	for u := range uch {
		if err := joinTimeout(u, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := ran.Load(); got != total {
		t.Fatalf("ran = %d, want %d", got, total)
	}
}

// TestNoLostWakeup is the property test for the Dekker handshake
// between parking streams and pushers: repeatedly let every stream go
// idle (parked), then push a batch and require all of it to run. A
// lost wakeup leaves a ULT queued with every stream asleep, which the
// join timeout converts into a failure instead of a hang.
func TestNoLostWakeup(t *testing.T) {
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 4, p)
	defer rt.Shutdown()

	const rounds = 40
	const batch = 16
	for r := 0; r < rounds; r++ {
		// Give the streams time to drain and park; correctness must not
		// depend on them actually being parked, so no synchronization.
		time.Sleep(300 * time.Microsecond)
		ults := make([]*ULT, batch)
		for i := range ults {
			ults[i] = p.Create("w", func(self *ULT) { self.Yield() })
		}
		for i, u := range ults {
			if err := joinTimeout(u, 10*time.Second); err != nil {
				t.Fatalf("round %d ult %d: %v (lost wakeup?)", r, i, err)
			}
		}
	}
	if parks := rt.SchedStats().Parks; parks == 0 {
		t.Fatalf("streams never parked across %d idle rounds", rounds)
	}
}

// TestStealObserved forces the steal path: a single producer stream
// fills its own local ring via yield requeues while sibling streams
// sit idle; the siblings can only obtain work by stealing.
func TestStealObserved(t *testing.T) {
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 4, p)
	defer rt.Shutdown()

	const n = 64
	ults := make([]*ULT, n)
	for i := range ults {
		ults[i] = p.Create("w", func(self *ULT) {
			for j := 0; j < 50; j++ {
				self.Yield()
			}
		})
	}
	for _, u := range ults {
		if err := joinTimeout(u, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// With 64 yield-hot ULTs requeued into owner rings and 4 streams,
	// at least one successful steal is expected; its absence means the
	// steal path is dead code.
	if st := rt.SchedStats(); st.Steals == 0 {
		t.Fatalf("no steals recorded: %+v", st)
	}
}

// TestQuantumSwitchAllocFree pins the steady-state cost of the
// scheduler hot path: once the ULT free list and worker goroutines are
// warm, a detached spawn plus a burst of yields plus recycle performs
// zero heap allocations.
func TestQuantumSwitchAllocFree(t *testing.T) {
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 1, p)
	defer rt.Shutdown()

	done := make(chan struct{})
	body := func(self *ULT) {
		for i := 0; i < 64; i++ {
			self.Yield()
		}
		done <- struct{}{}
	}
	spawn := func() {
		p.CreateDetached("w", body)
		<-done
	}
	spawn() // warm free list + worker goroutine
	if n := testing.AllocsPerRun(20, spawn); n != 0 {
		t.Fatalf("quantum switch allocates %.1f objects per spawn+64 yields, want 0", n)
	}
}

// TestULTReuseAllocFree pins free-list recycling for detached ULTs:
// sequential spawn/run/recycle cycles reuse one ULT struct and one
// worker goroutine, allocating nothing.
func TestULTReuseAllocFree(t *testing.T) {
	rt := NewRuntime()
	p := rt.AddPool("main")
	rt.AddXStreams("es", 1, p)
	defer rt.Shutdown()

	done := make(chan struct{})
	body := func(self *ULT) { done <- struct{}{} }
	spawn := func() {
		p.CreateDetached("w", body)
		<-done
	}
	spawn()
	if n := testing.AllocsPerRun(50, spawn); n != 0 {
		t.Fatalf("detached spawn cycle allocates %.1f objects, want 0", n)
	}
	if p.FreeListLen() == 0 {
		t.Fatal("free list empty after recycling spawns")
	}
}

// joinTimeout joins u, failing instead of hanging when the scheduler
// loses it.
func joinTimeout(u *ULT, d time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- u.Join(nil) }()
	select {
	case err := <-errc:
		return err
	case <-time.After(d):
		return fmt.Errorf("join of %s timed out after %v", u.Name(), d)
	}
}
