package abt

import (
	"runtime"
	"sync/atomic"
)

// evsem is a counting event semaphore: the futex-style park/unpark
// primitive underneath every scheduler handoff (run-token grants, quantum
// dispositions, XStream idle parking). The fast path is a single atomic
// add; the channel is touched only when a waiter must actually sleep.
//
// Counting semantics matter: quantum dispositions can pile up when a
// waker requeues a parked ULT before the granting stream has consumed the
// park disposition, so a binary event would lose signals. state > 0 is
// pending signals; state < 0 is sleeping waiters.
type evsem struct {
	state atomic.Int64
	ch    chan struct{}
}

// waitSpins bounds the cooperative spin before a waiter commits to
// sleeping on the channel. On the common single-quantum handoff the
// signaler is already runnable, so yielding the processor once or twice
// lets it publish the signal and keeps the entire handoff channel-free.
const waitSpins = 2

func (e *evsem) init() { e.ch = make(chan struct{}, 4) }

// set publishes one signal, waking a sleeping waiter if there is one.
func (e *evsem) set() {
	if e.state.Add(1) <= 0 {
		e.ch <- struct{}{}
	}
}

// wait consumes one signal, sleeping until a set supplies it.
func (e *evsem) wait() {
	for i := 0; i < waitSpins; i++ {
		if e.tryAcquire() {
			return
		}
		runtime.Gosched()
	}
	if e.state.Add(-1) >= 0 {
		return
	}
	<-e.ch
}

// tryAcquire consumes a pending signal without committing to sleep.
func (e *evsem) tryAcquire() bool {
	for {
		s := e.state.Load()
		if s <= 0 {
			return false
		}
		if e.state.CompareAndSwap(s, s-1) {
			return true
		}
	}
}
