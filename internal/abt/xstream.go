package abt

import (
	"sync/atomic"
)

// XStream is an execution stream, the analogue of an ABT_xstream: a
// scheduler that repeatedly dequeues ULTs from its pools (in priority
// order) and runs each until it yields, blocks, or terminates. An
// XStream executes at most one ULT at a time.
type XStream struct {
	id    int
	name  string
	pools []*Pool

	wake chan struct{}
	quit chan struct{}
	done chan struct{}

	idle    atomic.Bool
	quanta  atomic.Uint64 // scheduling quanta executed
	current atomic.Pointer[ULT]
}

var xstreamIDs atomic.Int64

// NewXStream creates and starts an execution stream draining the given
// pools in order (earlier pools have priority). At least one pool is
// required.
func NewXStream(name string, pools ...*Pool) *XStream {
	if len(pools) == 0 {
		panic("abt: NewXStream requires at least one pool")
	}
	x := &XStream{
		id:    int(xstreamIDs.Add(1)),
		name:  name,
		pools: pools,
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, p := range pools {
		p.subscribe(x.wake)
	}
	go x.loop()
	return x
}

// ID returns the runtime-unique stream identifier.
func (x *XStream) ID() int { return x.id }

// Name returns the stream's debug name.
func (x *XStream) Name() string { return x.name }

// Idle reports whether the stream is currently waiting for work.
func (x *XStream) Idle() bool { return x.idle.Load() }

// Quanta reports the number of scheduling quanta the stream has run.
func (x *XStream) Quanta() uint64 { return x.quanta.Load() }

// Current returns the ULT occupying the stream, or nil when idle.
func (x *XStream) Current() *ULT { return x.current.Load() }

// Stop asks the stream to exit once it goes idle and waits for it.
// Ready ULTs still queued in its pools are left for other streams.
func (x *XStream) Stop() {
	close(x.quit)
	// A stream blocked hosting a ULT quantum exits after that quantum.
	select {
	case x.wake <- struct{}{}:
	default:
	}
	<-x.done
}

func (x *XStream) loop() {
	defer close(x.done)
	for {
		u := x.popAny()
		if u == nil {
			x.idle.Store(true)
			select {
			case <-x.wake:
				x.idle.Store(false)
				continue
			case <-x.quit:
				return
			}
		}
		x.runQuantum(u)
		select {
		case <-x.quit:
			return
		default:
		}
	}
}

// popAny tries the stream's pools in priority order.
func (x *XStream) popAny() *ULT {
	for _, p := range x.pools {
		if u := p.pop(); u != nil {
			return u
		}
	}
	return nil
}

// runQuantum grants the run token to u and processes its disposition.
//
// Concurrency note: when a ULT parks, its waker may requeue it before
// this stream has consumed the sigBlock, so another stream can begin the
// next quantum concurrently and two streams briefly wait on u.notify.
// That is benign because dispositions are context-free — whichever
// stream receives a given signal performs the same action (requeue on
// yield, nothing on block/done) — and token/notify counts always
// balance: every resume grant is followed by exactly one notify.
func (x *XStream) runQuantum(u *ULT) {
	x.current.Store(u)
	x.quanta.Add(1)
	if u.started.CompareAndSwap(false, true) {
		go u.main()
	}
	u.resume <- struct{}{}
	sig := <-u.notify
	x.current.Store(nil)
	switch sig {
	case sigYield:
		u.pool.push(u)
	case sigBlock, sigDone:
		// Parked ULTs are requeued by their waker; done ULTs are gone.
	}
}
