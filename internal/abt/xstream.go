package abt

import (
	"sync/atomic"
)

// Stream park states. Transitions: awake→parked (the stream, before it
// registers as an idler), parked→awake (exactly one waker via CAS, or
// the stream itself when its recheck finds work), anything→dead on exit.
const (
	xsAwake int32 = iota
	xsParked
	xsDead
)

// grabBatch bounds how many inject-queue ULTs one refill moves into the
// local ring, amortizing the pool lock over many quanta.
const grabBatch = 32

// XStream is an execution stream, the analogue of an ABT_xstream: a
// scheduler that repeatedly dequeues ULTs from its pools (in priority
// order) and runs each until it yields, blocks, or terminates. An
// XStream executes at most one ULT at a time.
//
// Each stream owns one local ring per pool. A scheduling pass refills
// the ring from the pool's shared inject queue in batches, pops locally,
// and — only when every ring and inject queue is empty — steals from
// sibling streams' rings before parking. Pool priority is preserved:
// pool i's ring and inject queue are always tried before pool i+1's.
type XStream struct {
	id    int
	name  string
	pools []*Pool
	rings []*ring
	// idlerReg[i] mirrors "this stream has a live entry in pools[i]'s
	// idler list"; each element is guarded by that pool's mutex.
	idlerReg []bool

	parkSem   evsem
	parkState atomic.Int32
	quitting  atomic.Bool
	done      chan struct{}

	grabBuf [grabBatch]*ULT

	idle    atomic.Bool
	quanta  atomic.Uint64 // scheduling quanta executed
	steals  atomic.Uint64 // ULTs taken from sibling rings
	parks   atomic.Uint64 // times the stream actually slept
	wakes   atomic.Uint64 // single-waker tokens aimed at this stream
	current atomic.Pointer[ULT]
}

var xstreamIDs atomic.Int64

// NewXStream creates and starts an execution stream draining the given
// pools in order (earlier pools have priority). At least one pool is
// required.
func NewXStream(name string, pools ...*Pool) *XStream {
	if len(pools) == 0 {
		panic("abt: NewXStream requires at least one pool")
	}
	x := &XStream{
		id:       int(xstreamIDs.Add(1)),
		name:     name,
		pools:    pools,
		rings:    make([]*ring, len(pools)),
		idlerReg: make([]bool, len(pools)),
		done:     make(chan struct{}),
	}
	x.parkSem.init()
	for i, p := range pools {
		x.rings[i] = &ring{}
		p.attach(x)
	}
	go x.loop()
	return x
}

// ID returns the runtime-unique stream identifier.
func (x *XStream) ID() int { return x.id }

// Name returns the stream's debug name.
func (x *XStream) Name() string { return x.name }

// Idle reports whether the stream is currently waiting for work.
func (x *XStream) Idle() bool { return x.idle.Load() }

// Quanta reports the number of scheduling quanta the stream has run.
func (x *XStream) Quanta() uint64 { return x.quanta.Load() }

// Steals reports ULTs this stream stole from sibling rings.
func (x *XStream) Steals() uint64 { return x.steals.Load() }

// Parks reports how many times the stream slept waiting for work.
func (x *XStream) Parks() uint64 { return x.parks.Load() }

// Wakes reports single-waker tokens delivered to this stream.
func (x *XStream) Wakes() uint64 { return x.wakes.Load() }

// Current returns the ULT occupying the stream, or nil when idle.
func (x *XStream) Current() *ULT { return x.current.Load() }

// Stop asks the stream to exit once its current quantum ends and waits
// for it. Ready ULTs still in its local rings are flushed back to their
// pools for other streams. Safe to call concurrently.
func (x *XStream) Stop() {
	x.quitting.Store(true)
	if x.parkState.CompareAndSwap(xsParked, xsAwake) {
		x.parkSem.set()
	}
	<-x.done
}

func (x *XStream) loop() {
	defer close(x.done)
	for {
		if x.quitting.Load() {
			x.exit()
			return
		}
		u, p := x.next()
		if u == nil {
			if !x.parkForWork() {
				x.exit()
				return
			}
			continue
		}
		// Wake propagation: if work remains after this claim, pass the
		// baton so a burst fans out one parked stream at a time.
		if p.runnable.Load() > 0 {
			p.wakeOne()
		}
		x.runQuantum(u)
	}
}

// next claims the next ULT honoring pool priority: for each pool, refill
// the local ring from the inject queue, then pop locally; only when all
// pools come up empty, try stealing from sibling rings.
func (x *XStream) next() (*ULT, *Pool) {
	for i, p := range x.pools {
		r := x.rings[i]
		if p.injected.Load() > 0 {
			if free := r.free(); free > 0 {
				n := p.grab(x.grabBuf[:min(free, grabBatch)])
				for j := 0; j < n; j++ {
					r.push(x.grabBuf[j])
					x.grabBuf[j] = nil
				}
			} else if p.grab(x.grabBuf[:1]) == 1 {
				// Ring full of requeued yielders: take injected work
				// directly so it cannot be starved.
				u := x.grabBuf[0]
				x.grabBuf[0] = nil
				p.addRunnable(-1)
				return u, p
			}
		}
		if u := r.pop(); u != nil {
			p.addRunnable(-1)
			return u, p
		}
	}
	for _, p := range x.pools {
		if u := x.steal(p); u != nil {
			p.addRunnable(-1)
			x.steals.Add(1)
			return u, p
		}
	}
	return nil, nil
}

// steal scans sibling streams attached to p for ring work.
func (x *XStream) steal(p *Pool) *ULT {
	for _, v := range p.victims() {
		if v == x {
			continue
		}
		if r := v.ringFor(p); r != nil {
			if u := r.pop(); u != nil {
				return u
			}
		}
	}
	return nil
}

// ringFor returns this stream's local ring for p, or nil.
func (x *XStream) ringFor(p *Pool) *ring {
	if i := x.poolIndex(p); i >= 0 {
		return x.rings[i]
	}
	return nil
}

// poolIndex returns p's priority slot in this stream, or -1.
func (x *XStream) poolIndex(p *Pool) int {
	for i, pp := range x.pools {
		if pp == p {
			return i
		}
	}
	return -1
}

// parkForWork sleeps until a waker delivers work, returning false when
// the stream should exit. The parked store precedes idler registration,
// which precedes the work recheck; a pusher increments the runnable
// mirror before scanning idlers. Both orders are sequentially
// consistent, so either the pusher sees this idler or the recheck sees
// the pushed work — a wakeup cannot be lost.
func (x *XStream) parkForWork() bool {
	x.parkState.Store(xsParked)
	for i, p := range x.pools {
		p.addIdler(x, i)
	}
	if x.quitting.Load() || x.haveWork() {
		if x.parkState.CompareAndSwap(xsParked, xsAwake) {
			return !x.quitting.Load()
		}
		// A waker claimed us between registration and recheck; its token
		// must be consumed to keep the semaphore balanced.
		x.parkSem.wait()
		return !x.quitting.Load()
	}
	x.idle.Store(true)
	x.parks.Add(1)
	x.parkSem.wait()
	x.idle.Store(false)
	return !x.quitting.Load()
}

// haveWork rechecks all pools through the runnable mirrors (inject
// queues plus every stream's rings, including stealable siblings').
func (x *XStream) haveWork() bool {
	for _, p := range x.pools {
		if p.runnable.Load() > 0 {
			return true
		}
	}
	return false
}

// exit flushes local rings back to their pools' inject queues and
// detaches, so queued work survives elastic scale-down and pushes stop
// paying for a dead stream.
func (x *XStream) exit() {
	x.parkState.Store(xsDead)
	for i, p := range x.pools {
		for {
			u := x.rings[i].pop()
			if u == nil {
				break
			}
			p.enqueue(u)
		}
		p.detach(x)
		if p.runnable.Load() > 0 {
			p.wakeOne()
		}
	}
}

// runQuantum grants the run token to u and processes its disposition.
//
// Concurrency note: when a ULT parks, its waker may requeue it before
// this stream has consumed the park disposition, so another stream can
// begin the next quantum concurrently and two streams briefly wait on
// u.dispGate. That is benign because dispositions are context-free —
// the only stream-side action, requeue-after-yield, is claimed by CAS so
// exactly one waiter performs it — and token/disposition counts always
// balance: every run-token grant is followed by exactly one disposition.
func (x *XStream) runQuantum(u *ULT) {
	x.current.Store(u)
	x.quanta.Add(1)
	if u.started.CompareAndSwap(false, true) {
		if u.detached {
			go u.mainDetached()
		} else {
			go u.main()
		}
	}
	u.runGate.set()
	u.dispGate.wait()
	x.current.Store(nil)
	if u.claimYield() {
		x.requeue(u)
	}
}

// requeue puts a yielded ULT back on the ready side: preferentially into
// this stream's local ring for its pool, overflowing to the shared
// inject queue.
func (x *XStream) requeue(u *ULT) {
	p := u.pool
	u.state.Store(int32(StateReady))
	p.addRunnable(1)
	if r := x.ringFor(p); r != nil && r.push(u) {
		return
	}
	p.enqueue(u)
	p.wakeOne()
}
