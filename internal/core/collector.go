package core

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultShards is the default number of collector shards. Shards are
// keyed by ULT/ES identifiers at the Margo instrumentation points, so a
// fixed power of two spreads concurrent execution streams across
// independent locks the way the paper's per-thread TAU storage does
// (§IV-A): two ULTs on different execution streams almost never touch
// the same shard, and the merge layer folds the shards back into one
// profile view at read time.
const DefaultShards = 8

// maxShards bounds the shard count to keep snapshots cheap.
const maxShards = 256

// collectorShard is one independently locked slice of the measurement
// state: local callpath maps plus a local trace ring. The pad keeps
// adjacent shards on separate cache lines so per-shard locking does not
// degenerate into false sharing.
type collectorShard struct {
	mu     sync.Mutex
	origin map[StatKey]*CallStats
	target map[StatKey]*CallStats
	trace  *Tracer
	_      [64]byte
}

// Collector is the sharded measurement pipeline behind a Profiler. Hot
// writers (RecordOrigin, RecordTarget, Emit) take only the lock of the
// shard their key maps to; readers (OriginStats, Events, Dump) fold all
// shards into the merged view on demand. Optional TraceSinks observe
// every emitted event in addition to the in-memory rings, turning
// exporters into consumers of the stream rather than owners of the
// buffers.
type Collector struct {
	shards []collectorShard
	mask   uint64

	sinks    atomic.Pointer[[]TraceSink]
	sinkErrs atomic.Uint64
	traceCap int
}

// roundPow2 rounds n up to the next power of two within [1, maxShards].
func roundPow2(n int) int {
	if n <= 1 {
		return 1
	}
	if n > maxShards {
		n = maxShards
	}
	return 1 << bits.Len(uint(n-1))
}

// NewCollector builds a collector with the given shard count (rounded up
// to a power of two; <=0 selects DefaultShards) and total trace
// capacity split evenly across the shard rings (<=0 selects
// DefaultTraceCapacity).
func NewCollector(shards, traceCapacity int) *Collector {
	if shards <= 0 {
		shards = DefaultShards
	}
	shards = roundPow2(shards)
	if traceCapacity <= 0 {
		traceCapacity = DefaultTraceCapacity
	}
	perShard := (traceCapacity + shards - 1) / shards
	c := &Collector{
		shards:   make([]collectorShard, shards),
		mask:     uint64(shards - 1),
		traceCap: perShard * shards,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.origin = make(map[StatKey]*CallStats)
		s.target = make(map[StatKey]*CallStats)
		s.trace = NewTracer(perShard)
	}
	return c
}

// NumShards reports the shard count (a power of two).
func (c *Collector) NumShards() int { return len(c.shards) }

// TraceCapacity reports the total trace-event capacity across shards.
func (c *Collector) TraceCapacity() int { return c.traceCap }

func (c *Collector) shard(key uint64) *collectorShard {
	return &c.shards[key&c.mask]
}

// RecordOrigin folds one completed RPC into the origin-side profile of
// the shard selected by key (callers pass their ULT/ES id so concurrent
// execution streams hit disjoint locks).
func (c *Collector) RecordOrigin(key uint64, bc Breadcrumb, peer string, total time.Duration, comps *[NumComponents]uint64) {
	sh := c.shard(key)
	sk := StatKey{BC: bc, Peer: peer}
	sh.mu.Lock()
	s := sh.origin[sk]
	if s == nil {
		s = &CallStats{}
		sh.origin[sk] = s
	}
	s.record(total, comps)
	sh.mu.Unlock()
}

// RecordTarget folds one serviced RPC into the target-side profile of
// the shard selected by key.
func (c *Collector) RecordTarget(key uint64, bc Breadcrumb, peer string, total time.Duration, comps *[NumComponents]uint64) {
	sh := c.shard(key)
	sk := StatKey{BC: bc, Peer: peer}
	sh.mu.Lock()
	s := sh.target[sk]
	if s == nil {
		s = &CallStats{}
		sh.target[sk] = s
	}
	s.record(total, comps)
	sh.mu.Unlock()
}

// Emit appends a trace event to the ring of the shard selected by key,
// stamping its wall-clock time if unset, and tees it to any attached
// sinks. Sinks observe every event including ones the bounded ring
// subsequently drops (a streaming sink has no capacity limit of ours to
// respect; its backpressure is its own).
func (c *Collector) Emit(key uint64, ev Event) {
	if ev.Timestamp == 0 {
		ev.Timestamp = time.Now().UnixNano()
	}
	if sinks := c.sinks.Load(); sinks != nil {
		for _, s := range *sinks {
			if err := s.WriteEvent(ev); err != nil {
				c.sinkErrs.Add(1)
			}
		}
	}
	c.shard(key).trace.Emit(ev)
}

// AddTraceSink attaches a sink that will observe every subsequently
// emitted event. Attach sinks at setup time, before hot-path traffic.
func (c *Collector) AddTraceSink(s TraceSink) {
	for {
		old := c.sinks.Load()
		var next []TraceSink
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, s)
		if c.sinks.CompareAndSwap(old, &next) {
			return
		}
	}
}

// FlushSinks flushes every attached sink, returning the first error.
// Flush failures count toward SinkErrors like per-event write failures,
// so the telemetry sink_errors stat covers both loss modes.
func (c *Collector) FlushSinks() error {
	var first error
	if sinks := c.sinks.Load(); sinks != nil {
		for _, s := range *sinks {
			if err := s.Flush(); err != nil {
				c.sinkErrs.Add(1)
				if first == nil {
					first = err
				}
			}
		}
	}
	return first
}

// SinkErrors reports events a sink failed to consume plus flushes that
// failed — the telemetry plane's sink_errors stat.
func (c *Collector) SinkErrors() uint64 { return c.sinkErrs.Load() }

// copySinksFrom carries sink attachments over from a prior collector
// (used when the trace capacity or shard count is reconfigured).
func (c *Collector) copySinksFrom(old *Collector) {
	if old == nil {
		return
	}
	if sinks := old.sinks.Load(); sinks != nil {
		c.sinks.Store(sinks)
	}
}

// OriginStats folds all shards into a merged copy of the origin-side
// profile — the same StatKey → CallStats view a single-map profiler
// would hold.
func (c *Collector) OriginStats() map[StatKey]CallStats { return c.mergeStats(true) }

// TargetStats folds all shards into a merged copy of the target-side
// profile.
func (c *Collector) TargetStats() map[StatKey]CallStats { return c.mergeStats(false) }

func (c *Collector) mergeStats(origin bool) map[StatKey]CallStats {
	out := make(map[StatKey]CallStats)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		src := sh.target
		if origin {
			src = sh.origin
		}
		for k, v := range src {
			merged := out[k]
			merged.Merge(v)
			out[k] = merged
		}
		sh.mu.Unlock()
	}
	return out
}

// Events returns a merged copy of all shard trace rings, ordered by
// timestamp then Lamport order (per-shard emission order is preserved;
// the cross-shard interleave is reconstructed the same way the offline
// analysis orders events).
func (c *Collector) Events() []Event {
	var out []Event
	for i := range c.shards {
		out = append(out, c.shards[i].trace.Events()...)
	}
	sortEvents(out)
	return out
}

// TraceLen reports the number of buffered trace events across shards.
func (c *Collector) TraceLen() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].trace.Len()
	}
	return n
}

// Dropped reports trace events discarded due to the capacity bound,
// summed across shards.
func (c *Collector) Dropped() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].trace.Dropped()
	}
	return n
}

// sortEvents orders a merged event slice by timestamp, breaking ties by
// Lamport order then request ID for determinism.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Timestamp != evs[j].Timestamp {
			return evs[i].Timestamp < evs[j].Timestamp
		}
		if evs[i].Order != evs[j].Order {
			return evs[i].Order < evs[j].Order
		}
		return evs[i].RequestID < evs[j].RequestID
	})
}

// Reset clears every shard's profile maps and trace ring (between
// experiment repetitions).
func (c *Collector) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.origin = make(map[StatKey]*CallStats)
		sh.target = make(map[StatKey]*CallStats)
		sh.mu.Unlock()
		sh.trace.Reset()
	}
}
