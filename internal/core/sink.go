package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceSink consumes trace events as the measurement pipeline emits
// them. The collector's in-memory shard rings are the default buffer; a
// sink attached via Collector.AddTraceSink additionally observes the
// live stream, so exporters (JSONL files, Zipkin/OTLP adapters) consume
// events instead of owning the buffers.
type TraceSink interface {
	// WriteEvent consumes one event. Implementations are called from
	// hot measurement paths and must be safe for concurrent use.
	WriteEvent(ev Event) error
	// Flush forces any buffered output out (end of run).
	Flush() error
}

// ProfileSink consumes merged per-process profile snapshots.
type ProfileSink interface {
	// WriteProfileDump consumes one process's merged profile.
	WriteProfileDump(d *ProfileDump) error
	// Flush forces any buffered output out.
	Flush() error
}

// Tracer is the default in-memory TraceSink: events accumulate in its
// bounded buffer for end-of-run snapshots.
var _ TraceSink = (*Tracer)(nil)

// WriteEvent implements TraceSink over the bounded in-memory buffer.
func (t *Tracer) WriteEvent(ev Event) error {
	t.Emit(ev)
	return nil
}

// Flush implements TraceSink; the in-memory buffer needs no flushing.
func (t *Tracer) Flush() error { return nil }

// JSONLTraceSink streams trace events as JSON Lines (one event object
// per line) to an io.Writer — the low-overhead on-line export format,
// ingestible with ReadEventsJSONL (and symtrace -jsonl). Writes are
// serialized by an internal mutex; the buffered encoder keeps the
// per-event cost to one marshal plus a memory copy.
//
// Write errors are sticky: the first failure is retained and reported by
// every subsequent WriteEvent and Flush, so an exporter that only checks
// the final Flush (e.g. margo's Shutdown) still observes mid-run losses.
type JSONLTraceSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLTraceSink wraps w in a streaming JSONL trace sink.
func NewJSONLTraceSink(w io.Writer) *JSONLTraceSink {
	bw := bufio.NewWriter(w)
	return &JSONLTraceSink{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteEvent appends one event as a JSON line.
func (s *JSONLTraceSink) WriteEvent(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(&ev); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Flush drains the buffered output to the underlying writer, returning
// the first error the sink has seen (including earlier write failures).
func (s *JSONLTraceSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Err reports the sink's sticky error, if any.
func (s *JSONLTraceSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadEventsJSONL parses a JSONL trace event stream (the JSONLTraceSink
// format) back into events. A truncated final line — the signature of a
// streaming sink cut off mid-write (SIGINT, crashed process, full disk)
// — is tolerated rather than fatal: the parsed prefix is returned along
// with the count of discarded trailing lines, so one interrupted stream
// does not abort a whole-run analysis. A malformed line that is NOT the
// last line of the stream still fails: that is corruption, not
// truncation.
func ReadEventsJSONL(r io.Reader) (events []Event, truncated int, err error) {
	sc := bufio.NewScanner(r)
	// Events with fused PVAR samples run long; size the line buffer
	// well past anything the sink emits.
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var pendingErr error
	var pendingLine int
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		line++
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line had complete lines after it: corruption.
			return nil, 0, fmt.Errorf("core: parse JSONL trace event at line %d: %w", pendingLine, pendingErr)
		}
		var ev Event
		if jerr := json.Unmarshal(raw, &ev); jerr != nil {
			// Hold the verdict: only fatal if more lines follow.
			pendingErr, pendingLine = jerr, line
			continue
		}
		events = append(events, ev)
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, fmt.Errorf("core: read JSONL trace stream: %w", serr)
	}
	if pendingErr != nil {
		truncated = 1
	}
	return events, truncated, nil
}

// JSONLProfileSink streams profile dumps as JSON Lines (one dump object
// per line) to an io.Writer. Like JSONLTraceSink, write errors are
// sticky and resurface from Flush.
type JSONLProfileSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLProfileSink wraps w in a streaming JSONL profile sink.
func NewJSONLProfileSink(w io.Writer) *JSONLProfileSink {
	bw := bufio.NewWriter(w)
	return &JSONLProfileSink{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteProfileDump appends one merged profile snapshot as a JSON line.
func (s *JSONLProfileSink) WriteProfileDump(d *ProfileDump) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(d); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Flush drains the buffered output to the underlying writer, returning
// the first error the sink has seen (including earlier write failures).
func (s *JSONLProfileSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Err reports the sink's sticky error, if any.
func (s *JSONLProfileSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
