package core

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBreadcrumbPushDepthHops(t *testing.T) {
	var b Breadcrumb
	if b.Depth() != 0 {
		t.Fatalf("empty depth = %d", b.Depth())
	}
	b1 := b.Push("mobject_write_op")
	b2 := b1.Push("sdskv_put_rpc")
	if b1.Depth() != 1 || b2.Depth() != 2 {
		t.Fatalf("depths = %d, %d", b1.Depth(), b2.Depth())
	}
	hops := b2.Hops()
	if len(hops) != 2 {
		t.Fatalf("hops = %v", hops)
	}
	if hops[0] != Hash16("mobject_write_op") || hops[1] != Hash16("sdskv_put_rpc") {
		t.Fatalf("hop order wrong: %v", hops)
	}
	if b2.Parent() != b1 {
		t.Fatal("Parent() != original")
	}
	if b2.Leaf() != Hash16("sdskv_put_rpc") {
		t.Fatal("Leaf() wrong")
	}
}

func TestBreadcrumbMaxDepthDropsOldest(t *testing.T) {
	names := []string{"a_rpc", "b_rpc", "c_rpc", "d_rpc", "e_rpc"}
	var b Breadcrumb
	for _, n := range names {
		b = b.Push(n)
	}
	if b.Depth() != MaxDepth {
		t.Fatalf("depth = %d, want %d", b.Depth(), MaxDepth)
	}
	hops := b.Hops()
	// Oldest (a_rpc) fell off; b..e remain in order.
	for i, n := range names[1:] {
		if hops[i] != Hash16(n) {
			t.Fatalf("hops = %v, want %v at %d", hops, Hash16(n), i)
		}
	}
}

func TestBreadcrumbPushParentInverseProperty(t *testing.T) {
	prop := func(seed uint64, name string) bool {
		if name == "" {
			return true
		}
		b := Breadcrumb(seed) & 0xFFFFFFFFFFFF // keep headroom for one push
		return b.Push(name).Parent() == b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash16NeverZero(t *testing.T) {
	prop := func(name string) bool { return Hash16(name) != 0 }
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNameRegistryFormat(t *testing.T) {
	r := NewNameRegistry()
	for _, n := range []string{"mobject_read_op", "sdskv_list_keyvals_rpc"} {
		if _, err := r.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	b := Breadcrumb(0).Push("mobject_read_op").Push("sdskv_list_keyvals_rpc")
	got := r.Format(b)
	want := "mobject_read_op => sdskv_list_keyvals_rpc"
	if got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
	if r.Format(Breadcrumb(0)) != "(root)" {
		t.Fatal("empty breadcrumb format")
	}
	// Unknown hop renders as hex.
	unknown := Breadcrumb(0).Push("never_registered_rpc")
	if got := r.Format(unknown); got == "" || got == "(root)" {
		t.Fatalf("unknown hop format = %q", got)
	}
	// FormatTable matches registry Format.
	if FormatTable(r.Names(), b) != want {
		t.Fatal("FormatTable mismatch")
	}
}

func TestNameRegistryIdempotentAndCollision(t *testing.T) {
	r := NewNameRegistry()
	h1, err := r.Register("same_rpc")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Register("same_rpc")
	if err != nil || h1 != h2 {
		t.Fatalf("re-register: %v %v %v", h1, h2, err)
	}
	if n, ok := r.Name(h1); !ok || n != "same_rpc" {
		t.Fatalf("Name = %q, %v", n, ok)
	}
}

func TestLamportMonotonic(t *testing.T) {
	var l Lamport
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		v := l.Tick()
		if v <= prev {
			t.Fatalf("Tick not monotonic: %d after %d", v, prev)
		}
		prev = v
	}
	if v := l.Merge(1000); v != 1001 {
		t.Fatalf("Merge(1000) = %d, want 1001", v)
	}
	if v := l.Merge(5); v != 1002 {
		t.Fatalf("Merge(5) = %d, want 1002 (max rule)", v)
	}
	if l.Now() != 1002 {
		t.Fatalf("Now = %d", l.Now())
	}
}

func TestLamportMergeProperty(t *testing.T) {
	prop := func(remotes []uint32) bool {
		var l Lamport
		prev := uint64(0)
		for _, r := range remotes {
			v := l.Merge(uint64(r))
			if v <= prev || v <= uint64(r) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLamportConcurrentMergeRaces(t *testing.T) {
	var l Lamport
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for j := uint64(0); j < 500; j++ {
				l.Merge(base + j)
			}
		}(uint64(i * 1000))
	}
	wg.Wait()
	if l.Now() < 7999 {
		t.Fatalf("final clock %d below max remote", l.Now())
	}
}

func TestCallStatsRecordAndMerge(t *testing.T) {
	var a CallStats
	comps := [NumComponents]uint64{}
	comps[CompHandler] = 10
	a.record(100*time.Nanosecond, &comps)
	a.record(50*time.Nanosecond, &comps)
	if a.Count != 2 || a.CumNanos != 150 || a.MinNanos != 50 || a.MaxNanos != 100 {
		t.Fatalf("stats = %+v", a)
	}
	if a.Components[CompHandler] != 20 {
		t.Fatalf("component sum = %d", a.Components[CompHandler])
	}
	if a.Mean() != 75*time.Nanosecond {
		t.Fatalf("Mean = %v", a.Mean())
	}

	var b CallStats
	b.record(200*time.Nanosecond, nil)
	a.Merge(&b)
	if a.Count != 3 || a.MaxNanos != 200 || a.MinNanos != 50 {
		t.Fatalf("merged = %+v", a)
	}
	var empty CallStats
	before := a
	a.Merge(&empty)
	if a != before {
		t.Fatal("merging empty changed stats")
	}
	var c CallStats
	c.Merge(&a)
	if c != a {
		t.Fatal("merge into empty != copy")
	}
}

func TestCallStatsMergeAssociativeProperty(t *testing.T) {
	mk := func(vals []uint16) CallStats {
		var s CallStats
		for _, v := range vals {
			s.record(time.Duration(v), nil)
		}
		return s
	}
	prop := func(x, y, z []uint16) bool {
		// (x+y)+z == x+(y+z)
		a, b, c := mk(x), mk(y), mk(z)
		l := a
		l.Merge(&b)
		l.Merge(&c)
		r2 := b
		r2.Merge(&c)
		r := a
		r.Merge(&r2)
		return reflect.DeepEqual(l, r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerStageGating(t *testing.T) {
	p := NewProfiler("node0/client", StageInject)
	p.RecordOrigin(1, "node1/server", time.Millisecond, nil)
	if len(p.OriginStats()) != 0 {
		t.Fatal("StageInject recorded a profile entry")
	}
	p.SetStage(StageProfile)
	p.RecordOrigin(1, "node1/server", time.Millisecond, nil)
	if len(p.OriginStats()) != 1 {
		t.Fatal("StageProfile did not record")
	}
}

func TestProfilerRequestIDsUnique(t *testing.T) {
	p1 := NewProfiler("a", StageFull)
	p2 := NewProfiler("b", StageFull)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		for _, p := range []*Profiler{p1, p2} {
			id := p.NewRequestID()
			if seen[id] {
				t.Fatalf("duplicate request ID %#x", id)
			}
			seen[id] = true
		}
	}
	if p1.PID() == p2.PID() {
		t.Fatal("PIDs collide")
	}
}

func TestProfilerDumpRoundTrip(t *testing.T) {
	p := NewProfiler("node0/p", StageFull)
	p.Names().Register("x_rpc")
	comps := [NumComponents]uint64{}
	comps[CompTargetExec] = 42
	p.RecordOrigin(Breadcrumb(0).Push("x_rpc"), "node1/s", time.Millisecond, &comps)
	p.RecordTarget(Breadcrumb(0).Push("x_rpc"), "node2/c", 2*time.Millisecond, nil)

	d := p.Dump()
	var buf bytes.Buffer
	if err := WriteProfile(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entity != "node0/p" || len(got.Origin) != 1 || len(got.Target) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Origin[0].Stats.Components[CompTargetExec] != 42 {
		t.Fatal("components lost in round trip")
	}
	if got.Names[Hash16("x_rpc")] != "x_rpc" {
		t.Fatal("name table lost")
	}
}

func TestTracerBoundsAndReset(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{RequestID: uint64(i)})
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len = %d dropped = %d", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].RequestID != 0 || evs[2].RequestID != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Timestamp == 0 {
		t.Fatal("timestamp not stamped")
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestTraceDumpRoundTrip(t *testing.T) {
	p := NewProfiler("node0/p", StageFull)
	p.Emit(Event{
		RequestID: 9, Order: 2, Kind: EvTargetStart, RPCName: "y_rpc",
		Sys:   SysSample{PoolBlocked: 7},
		PVars: &PVarSample{OFIEventsRead: 16},
	})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, p.DumpTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 {
		t.Fatalf("events = %d", len(got.Events))
	}
	ev := got.Events[0]
	if ev.Kind != EvTargetStart || ev.Sys.PoolBlocked != 7 || ev.PVars.OFIEventsRead != 16 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestStagePredicates(t *testing.T) {
	cases := []struct {
		s                        Stage
		injects, measures, pvars bool
		name                     string
	}{
		{StageOff, false, false, false, "Baseline"},
		{StageInject, true, false, false, "Stage 1"},
		{StageProfile, true, true, false, "Stage 2"},
		{StageFull, true, true, true, "Full Support"},
	}
	for _, c := range cases {
		if c.s.Injects() != c.injects || c.s.Measures() != c.measures ||
			c.s.SamplesPVars() != c.pvars || c.s.String() != c.name {
			t.Fatalf("stage %v predicates wrong", c.s)
		}
	}
}

func TestComponentTableMatchesPaperTableIII(t *testing.T) {
	// Table III rows: interval, t-start, t-end, strategy.
	want := []struct {
		c        Component
		start    string
		end      string
		strategy Strategy
	}{
		{CompOriginExec, "t1", "t14", StrategyULTLocal},
		{CompInputSer, "t2", "t3", StrategyPVar},
		{CompRDMA, "t3", "t4", StrategyPVar},
		{CompHandler, "t4", "t5", StrategyULTLocal},
		{CompInputDeser, "t6", "t7", StrategyPVar},
		{CompTargetExec, "t5", "t8", StrategyULTLocal},
		{CompOutputSer, "t9", "t10", StrategyPVar},
		{CompTargetCB, "t8", "t13", StrategyULTLocal},
		{CompOriginCB, "t12", "t14", StrategyPVar},
	}
	if len(want) != int(NumComponents) {
		t.Fatal("test table incomplete")
	}
	for _, w := range want {
		s, e := w.c.Interval()
		if s != w.start || e != w.end {
			t.Errorf("%s interval = %s→%s, want %s→%s", w.c.Name(), s, e, w.start, w.end)
		}
		if w.c.Strategy() != w.strategy {
			t.Errorf("%s strategy = %v, want %v", w.c.Name(), w.c.Strategy(), w.strategy)
		}
	}
	if len(Components()) != int(NumComponents) {
		t.Fatal("Components() incomplete")
	}
}

func TestSysSamplerCaches(t *testing.T) {
	s := NewSysSampler(time.Hour) // never refresh after first
	a := s.Sample()
	b := s.Sample()
	if a.Goroutines == 0 {
		t.Fatal("no goroutine count")
	}
	if a != b {
		t.Fatal("cached samples differ")
	}
}

func TestEventKindString(t *testing.T) {
	if EvOriginStart.String() != "origin_start" || EvOriginEnd.String() != "origin_end" ||
		EvTargetStart.String() != "target_start" || EvTargetEnd.String() != "target_end" ||
		EventKind(9).String() != "unknown" {
		t.Fatal("event kind names wrong")
	}
}

func TestCallStatsHistogramAndPercentiles(t *testing.T) {
	var s CallStats
	// 90 calls at ~1µs, 10 calls at ~1ms.
	for i := 0; i < 90; i++ {
		s.record(time.Microsecond, nil)
	}
	for i := 0; i < 10; i++ {
		s.record(time.Millisecond, nil)
	}
	p50 := s.Percentile(50)
	if p50 < 500*time.Nanosecond || p50 > 4*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	p99 := s.Percentile(99)
	if p99 < 100*time.Microsecond {
		t.Fatalf("p99 = %v, want ~1ms scale", p99)
	}
	if s.Percentile(0) != time.Duration(s.MinNanos) {
		t.Fatal("p0 != min")
	}
	if s.Percentile(100) != time.Duration(s.MaxNanos) {
		t.Fatal("p100 != max")
	}
	var empty CallStats
	if empty.Percentile(50) != 0 {
		t.Fatal("empty percentile != 0")
	}
}

func TestCallStatsHistogramMergeProperty(t *testing.T) {
	prop := func(a, b []uint32) bool {
		var x, y, both CallStats
		for _, v := range a {
			x.record(time.Duration(v), nil)
			both.record(time.Duration(v), nil)
		}
		for _, v := range b {
			y.record(time.Duration(v), nil)
			both.record(time.Duration(v), nil)
		}
		x.Merge(&y)
		return x.Hist == both.Hist && x.Count == both.Count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := map[uint64]int{
		// Underflow bucket: everything below 2^10.
		0: 0, 1: 0, 512: 0, 1023: 0,
		// Two buckets per octave: boundaries at 2^k and 3*2^(k-1).
		1024: 1, 1535: 1, 1536: 2, 2047: 2,
		2048: 3, 3071: 3, 3072: 4, 4095: 4,
		// Top of the tiled range and the overflow clamp.
		1 << 29: 39, 3 << 28: 40, 1 << 30: 41, 1 << 60: HistBuckets - 1,
	}
	for n, want := range cases {
		if got := HistBucket(n); got != want {
			t.Errorf("HistBucket(%d) = %d, want %d", n, got, want)
		}
	}
}
