package core

// Component identifies one interval of the Mochi RPC timeline (paper
// Figure 2 and Table III). Origin-side components are measured on the
// process that issued the RPC, target-side components on the process
// that serviced it.
type Component int

// RPC timeline components, in Table III order.
const (
	// CompOriginExec is the origin execution time, t1→t14 (ULT-local).
	CompOriginExec Component = iota
	// CompInputSer is the input serialization time, t2→t3 (PVAR).
	CompInputSer
	// CompRDMA is the target internal RDMA transfer time, t3→t4 (PVAR).
	CompRDMA
	// CompHandler is the target ULT handler time, t4→t5 (ULT-local):
	// the wait in the Argobots pool before an ES picks the ULT up.
	CompHandler
	// CompInputDeser is the input deserialization time, t6→t7 (PVAR).
	CompInputDeser
	// CompTargetExec is the target ULT execution time (exclusive),
	// t5→t8 (ULT-local).
	CompTargetExec
	// CompOutputSer is the output serialization time, t9→t10 (PVAR).
	CompOutputSer
	// CompTargetCB is the target ULT completion callback time, t8→t13
	// (ULT-local).
	CompTargetCB
	// CompOriginCB is the origin completion callback time, t12→t14
	// (PVAR).
	CompOriginCB

	// NumComponents sizes per-callpath component arrays.
	NumComponents
)

// Strategy is the instrumentation mechanism measuring a component
// (Table III, "Instrumentation Strategy").
type Strategy int

// Instrumentation strategies.
const (
	// StrategyULTLocal marks intervals measured through ULT-local keys
	// by Margo.
	StrategyULTLocal Strategy = iota
	// StrategyPVar marks intervals measured by Mercury PVARs.
	StrategyPVar
)

// String names the strategy as in Table III.
func (s Strategy) String() string {
	if s == StrategyPVar {
		return "Mercury PVAR"
	}
	return "ULT-local key"
}

type componentInfo struct {
	name     string
	start    string
	end      string
	strategy Strategy
	origin   bool // measured on the origin process
}

var componentTable = [NumComponents]componentInfo{
	CompOriginExec: {"Origin Execution Time", "t1", "t14", StrategyULTLocal, true},
	CompInputSer:   {"Input Serialization Time", "t2", "t3", StrategyPVar, true},
	CompRDMA:       {"Target Internal RDMA Transfer Time", "t3", "t4", StrategyPVar, false},
	CompHandler:    {"Target ULT Handler Time", "t4", "t5", StrategyULTLocal, false},
	CompInputDeser: {"Input Deserialization Time", "t6", "t7", StrategyPVar, false},
	CompTargetExec: {"Target ULT Execution Time (exclusive)", "t5", "t8", StrategyULTLocal, false},
	CompOutputSer:  {"Output Serialization Time", "t9", "t10", StrategyPVar, false},
	CompTargetCB:   {"Target ULT Completion Callback Time", "t8", "t13", StrategyULTLocal, false},
	CompOriginCB:   {"Origin Completion Callback Time", "t12", "t14", StrategyPVar, true},
}

// Name returns the Table III interval name.
func (c Component) Name() string { return componentTable[c].name }

// Interval returns the (start, end) timeline labels, e.g. ("t4", "t5").
func (c Component) Interval() (string, string) {
	return componentTable[c].start, componentTable[c].end
}

// Strategy returns the instrumentation mechanism for the component.
func (c Component) Strategy() Strategy { return componentTable[c].strategy }

// OriginSide reports whether the component is measured on the origin.
func (c Component) OriginSide() bool { return componentTable[c].origin }

// Components lists all components in Table III order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}
