package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ProfileDump is the serialized per-process callpath profile, the unit
// the SYMBIOSYS profile summary script ingests (one per process in the
// paper; the analysis package merges them globally).
type ProfileDump struct {
	Entity  string            `json:"entity"`
	PID     uint32            `json:"pid"`
	Stage   string            `json:"stage"`
	Started time.Time         `json:"started"`
	Names   map[uint16]string `json:"names"`
	// TraceDropped surfaces silent trace-ring truncation alongside the
	// profile so offline analysis can flag incomplete traces.
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
	// PVars carries the process's library-global performance-variable
	// totals at dump time (requests shed, deadline expiries, breaker
	// trips, retries, ...), when the owning layer installed a snapshot
	// provider (Profiler.SetPVarSnapshot).
	PVars  map[string]uint64 `json:"pvars,omitempty"`
	Origin []DumpEntry       `json:"origin"`
	Target []DumpEntry       `json:"target"`
}

// DumpEntry is one (callpath, peer) row of a profile dump.
type DumpEntry struct {
	BC    uint64    `json:"breadcrumb"`
	Peer  string    `json:"peer"`
	Stats CallStats `json:"stats"`
}

func (e *DumpEntry) less(o *DumpEntry) bool {
	if e.BC != o.BC {
		return e.BC < o.BC
	}
	return e.Peer < o.Peer
}

// WriteProfile serializes a dump as JSON.
func WriteProfile(w io.Writer, d *ProfileDump) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadProfile parses one JSON profile dump.
func ReadProfile(r io.Reader) (*ProfileDump, error) {
	var d ProfileDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: parse profile dump: %w", err)
	}
	return &d, nil
}

// TraceDump is the serialized per-process trace buffer.
type TraceDump struct {
	Entity  string  `json:"entity"`
	PID     uint32  `json:"pid"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// DumpTrace captures a profiler's merged trace rings for offline
// analysis; events come out ordered by timestamp then Lamport order.
func (p *Profiler) DumpTrace() *TraceDump {
	c := p.coll.Load()
	return &TraceDump{
		Entity:  p.entity,
		PID:     p.pid,
		Dropped: c.Dropped(),
		Events:  c.Events(),
	}
}

// WriteTrace serializes a trace dump as JSON.
func WriteTrace(w io.Writer, d *TraceDump) error {
	return json.NewEncoder(w).Encode(d)
}

// ReadTrace parses one JSON trace dump.
func ReadTrace(r io.Reader) (*TraceDump, error) {
	var d TraceDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: parse trace dump: %w", err)
	}
	return &d, nil
}
