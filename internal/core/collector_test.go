package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestCollectorShardMergeEquivalence is the shard-merge soundness
// property: recording a workload through any number of shards (keyed
// arbitrarily) and folding the shards back together yields exactly the
// CallStats (count/sum/min/max/hist/components) of recording serially
// into one map.
func TestCollectorShardMergeEquivalence(t *testing.T) {
	type op struct {
		Key  uint64
		BC   uint16
		Dur  uint32
		Comp uint16
	}
	prop := func(ops []op, shardSel uint8) bool {
		shards := 1 << (shardSel % 5) // 1..16
		c := NewCollector(shards, 64)
		serial := make(map[StatKey]*CallStats)
		for _, o := range ops {
			bc := Breadcrumb(o.BC)
			var comps [NumComponents]uint64
			comps[CompOriginExec] = uint64(o.Comp)
			d := time.Duration(o.Dur)
			c.RecordOrigin(o.Key, bc, "peer", d, &comps)
			c.RecordTarget(o.Key, bc, "peer", d, nil)

			sk := StatKey{BC: bc, Peer: "peer"}
			s := serial[sk]
			if s == nil {
				s = &CallStats{}
				serial[sk] = s
			}
			s.record(d, &comps)
		}
		merged := c.OriginStats()
		if len(merged) != len(serial) {
			return false
		}
		for k, v := range serial {
			if merged[k] != *v {
				return false
			}
		}
		// Target side saw the same durations without components.
		tgt := c.TargetStats()
		for k, v := range serial {
			got := tgt[k]
			if got.Count != v.Count || got.CumNanos != v.CumNanos ||
				got.MinNanos != v.MinNanos || got.MaxNanos != v.MaxNanos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorMergeOrderIndependence checks that folding the per-shard
// maps in any shard order produces identical stats: merge is
// associative and commutative over shards.
func TestCollectorMergeOrderIndependence(t *testing.T) {
	prop := func(durs []uint16, seed int64) bool {
		const shards = 8
		c := NewCollector(shards, 64)
		bc := Breadcrumb(0).Push("merge_rpc")
		for i, d := range durs {
			c.RecordOrigin(uint64(i), bc, "peer", time.Duration(d), nil)
		}
		// Fold shard maps manually in a random permutation and compare
		// with the collector's own merge.
		perm := rand.New(rand.NewSource(seed)).Perm(shards)
		shuffled := make(map[StatKey]CallStats)
		for _, idx := range perm {
			sh := &c.shards[idx]
			sh.mu.Lock()
			for k, v := range sh.origin {
				m := shuffled[k]
				m.Merge(v)
				shuffled[k] = m
			}
			sh.mu.Unlock()
		}
		return reflect.DeepEqual(shuffled, c.OriginStats())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorConcurrentCountsPreserved hammers the collector from
// many goroutines and verifies no recording is lost in the merge.
func TestCollectorConcurrentCountsPreserved(t *testing.T) {
	const (
		workers = 8
		perW    = 500
	)
	c := NewCollector(8, workers*perW)
	bc := Breadcrumb(0).Push("conc_rpc")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				c.RecordOrigin(key, bc, "peer", time.Microsecond, nil)
				c.Emit(key, Event{RequestID: key, Kind: EvOriginStart, RPCName: "conc_rpc"})
			}
		}(uint64(w))
	}
	wg.Wait()
	stats := c.OriginStats()[StatKey{BC: bc, Peer: "peer"}]
	if stats.Count != workers*perW {
		t.Fatalf("merged count = %d, want %d", stats.Count, workers*perW)
	}
	if got := c.TraceLen(); got != workers*perW {
		t.Fatalf("trace len = %d (dropped %d), want %d", got, c.Dropped(), workers*perW)
	}
	if c.Dropped() != 0 {
		t.Fatalf("dropped = %d", c.Dropped())
	}
}

// TestSetTraceCapacityConcurrent exercises the reconfiguration race the
// old bare-pointer write had: swapping the collector while other
// goroutines record must be safe (run under -race).
func TestSetTraceCapacityConcurrent(t *testing.T) {
	p := NewProfiler("race", StageFull)
	bc := Breadcrumb(0).Push("race_rpc")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.RecordOriginAt(key, bc, "peer", time.Microsecond, nil)
				p.EmitAt(key, Event{RequestID: key, Kind: EvOriginStart})
				_ = p.TraceLen()
			}
		}(uint64(w))
	}
	for i := 0; i < 50; i++ {
		p.SetTraceCapacity(1024 + i)
		p.SetShards(1 << (i % 5))
	}
	close(stop)
	wg.Wait()
	if p.Collector().NumShards() != 16 {
		t.Fatalf("final shards = %d", p.Collector().NumShards())
	}
}

func TestCollectorShardRounding(t *testing.T) {
	cases := map[int]int{-1: DefaultShards, 0: DefaultShards, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: maxShards}
	for in, want := range cases {
		if got := NewCollector(in, 16).NumShards(); got != want {
			t.Errorf("NewCollector(%d).NumShards() = %d, want %d", in, got, want)
		}
	}
}

// TestCollectorTraceCapacityBound verifies the total capacity bound
// holds across shards and drops are counted.
func TestCollectorTraceCapacityBound(t *testing.T) {
	c := NewCollector(4, 8) // 2 events per shard
	for i := 0; i < 40; i++ {
		c.Emit(0, Event{RequestID: uint64(i)}) // all to shard 0
	}
	if got := c.TraceLen(); got != 2 {
		t.Fatalf("trace len = %d, want 2 (per-shard bound)", got)
	}
	if got := c.Dropped(); got != 38 {
		t.Fatalf("dropped = %d, want 38", got)
	}
	c.Reset()
	if c.TraceLen() != 0 || c.Dropped() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// TestProfilerDumpSurfacesDropped checks the satellite requirement:
// silent trace truncation is visible in both dump kinds.
func TestProfilerDumpSurfacesDropped(t *testing.T) {
	p := NewProfiler("drop/p", StageFull)
	p.SetTraceCapacity(4)
	for i := 0; i < 20; i++ {
		p.EmitAt(0, Event{RequestID: uint64(i)})
	}
	if p.TraceDropped() == 0 {
		t.Fatal("no drops recorded")
	}
	if d := p.Dump(); d.TraceDropped != p.TraceDropped() {
		t.Fatalf("profile dump dropped = %d, want %d", d.TraceDropped, p.TraceDropped())
	}
	if d := p.DumpTrace(); d.Dropped != p.TraceDropped() {
		t.Fatalf("trace dump dropped = %d, want %d", d.Dropped, p.TraceDropped())
	}
}

// TestJSONLTraceSinkRoundTrip checks the streaming sink's output parses
// back into the events it consumed, and that sinks observe events the
// bounded rings drop.
func TestJSONLTraceSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector(2, 4) // 2 per shard: will drop
	c.AddTraceSink(NewJSONLTraceSink(&buf))
	for i := 0; i < 10; i++ {
		c.Emit(uint64(i), Event{RequestID: uint64(i), Kind: EvOriginStart, RPCName: "jsonl_rpc", Timestamp: int64(i + 1)})
	}
	if err := c.FlushSinks(); err != nil {
		t.Fatal(err)
	}
	evs, _, err := ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 10 {
		t.Fatalf("sink saw %d events, want 10 (must include ring-dropped ones)", len(evs))
	}
	for i, ev := range evs {
		if ev.RequestID != uint64(i) || ev.RPCName != "jsonl_rpc" {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if c.Dropped() == 0 {
		t.Fatal("expected ring drops with capacity 4")
	}
}

// TestTracerImplementsTraceSink pins the default in-memory buffer as a
// TraceSink implementation.
func TestTracerImplementsTraceSink(t *testing.T) {
	var sink TraceSink = NewTracer(4)
	if err := sink.WriteEvent(Event{RequestID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.(*Tracer).Len() != 1 {
		t.Fatal("event not buffered")
	}
}

// TestJSONLProfileSinkRoundTrip checks streamed profile dumps parse
// back (one JSON object per line).
func TestJSONLProfileSinkRoundTrip(t *testing.T) {
	p := NewProfiler("jsonl/p", StageFull)
	p.Names().Register("x_rpc")
	p.RecordOrigin(Breadcrumb(0).Push("x_rpc"), "peer", time.Millisecond, nil)

	var buf bytes.Buffer
	sink := NewJSONLProfileSink(&buf)
	if err := sink.WriteProfileDump(p.Dump()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entity != "jsonl/p" || len(got.Origin) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
}

// TestCollectorEventsOrdered verifies the merged snapshot comes out in
// timestamp-then-Lamport order regardless of shard placement.
func TestCollectorEventsOrdered(t *testing.T) {
	c := NewCollector(4, 64)
	// Emit out of order across different shards.
	stamps := []int64{50, 10, 30, 20, 40}
	for i, ts := range stamps {
		c.Emit(uint64(i), Event{RequestID: uint64(i), Timestamp: ts, Order: uint64(i)})
	}
	evs := c.Events()
	if len(evs) != len(stamps) {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Timestamp < evs[i-1].Timestamp {
			t.Fatalf("events unsorted: %v", evs)
		}
	}
}

// TestReadEventsJSONLTruncatedTail pins the SIGINT-mid-stream contract:
// a truncated final line is tolerated (parsed prefix + count returned),
// while a malformed line with complete lines after it is corruption and
// still fails.
func TestReadEventsJSONLTruncatedTail(t *testing.T) {
	line := func(id uint64) string {
		return fmt.Sprintf(`{"request_id":%d,"kind":1,"rpc":"r"}`, id)
	}
	t.Run("truncated final line", func(t *testing.T) {
		in := line(1) + "\n" + line(2) + "\n" + `{"request_id":3,"kind":1,"rp`
		evs, truncated, err := ReadEventsJSONL(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		if truncated != 1 {
			t.Fatalf("truncated = %d, want 1", truncated)
		}
		if len(evs) != 2 || evs[0].RequestID != 1 || evs[1].RequestID != 2 {
			t.Fatalf("events = %+v", evs)
		}
	})
	t.Run("clean stream reports no truncation", func(t *testing.T) {
		in := line(1) + "\n" + line(2) + "\n"
		evs, truncated, err := ReadEventsJSONL(strings.NewReader(in))
		if err != nil || truncated != 0 || len(evs) != 2 {
			t.Fatalf("evs=%d truncated=%d err=%v", len(evs), truncated, err)
		}
	})
	t.Run("trailing blank lines tolerated", func(t *testing.T) {
		in := line(1) + "\n\n  \n"
		evs, truncated, err := ReadEventsJSONL(strings.NewReader(in))
		if err != nil || truncated != 0 || len(evs) != 1 {
			t.Fatalf("evs=%d truncated=%d err=%v", len(evs), truncated, err)
		}
	})
	t.Run("mid-file corruption still fails", func(t *testing.T) {
		in := line(1) + "\n" + `{"request_id":2,"garbage` + "\n" + line(3) + "\n"
		_, _, err := ReadEventsJSONL(strings.NewReader(in))
		if err == nil {
			t.Fatal("mid-file corruption not reported")
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("error does not name the bad line: %v", err)
		}
	})
}
