package core

import "fmt"

// Stage selects how much of the SYMBIOSYS machinery is active, matching
// the overhead study of the paper (§VI-B, Figure 13).
type Stage int32

// Measurement stages.
const (
	// StageOff is the baseline: no metadata injected, nothing measured.
	StageOff Stage = iota
	// StageInject adds RPC callpath and trace ID information to the RPC
	// request but makes no measurements (the paper's Stage 1).
	StageInject
	// StageProfile enables callpath profiling, tracing, and system
	// statistic sampling, but not Mercury PVAR collection (Stage 2).
	StageProfile
	// StageFull additionally samples Mercury PVARs and fuses them into
	// the callpath profiles and traces on the fly (Full Support).
	StageFull
)

// String names the stage as in the paper.
func (s Stage) String() string {
	switch s {
	case StageOff:
		return "Baseline"
	case StageInject:
		return "Stage 1"
	case StageProfile:
		return "Stage 2"
	case StageFull:
		return "Full Support"
	default:
		return fmt.Sprintf("Stage(%d)", int32(s))
	}
}

// Injects reports whether request metadata is added at this stage.
func (s Stage) Injects() bool { return s >= StageInject }

// Measures reports whether profiles/traces are recorded at this stage.
func (s Stage) Measures() bool { return s >= StageProfile }

// SamplesPVars reports whether Mercury PVARs are collected.
func (s Stage) SamplesPVars() bool { return s >= StageFull }
