package core

import (
	"runtime"
	"sync"
	"time"
)

// SysSampler provides cheap OS/runtime statistics for trace-event
// annotation. Reading runtime memory statistics is too expensive to do
// per event, so samples are cached and refreshed at a bounded rate.
type SysSampler struct {
	mu        sync.Mutex
	last      time.Time
	cached    SysSample
	refresh   time.Duration
	refreshes uint64
}

// NewSysSampler returns a sampler refreshing at most every refresh
// interval (default 10ms when zero).
func NewSysSampler(refresh time.Duration) *SysSampler {
	if refresh <= 0 {
		refresh = 10 * time.Millisecond
	}
	return &SysSampler{refresh: refresh}
}

// RefreshInterval reports the configured minimum refresh interval.
func (s *SysSampler) RefreshInterval() time.Duration { return s.refresh }

// Refreshes reports how many times the cached sample has actually been
// recomputed — the telemetry plane exposes it so the cost of system
// sampling is itself observable (and tests assert the caching bound).
func (s *SysSampler) Refreshes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshes
}

// Sample returns the current (possibly cached) runtime statistics. Pool
// counters are filled in by the caller, which knows its Argobots pools.
func (s *SysSampler) Sample() SysSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refreshes == 0 || time.Since(s.last) >= s.refresh {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.cached = SysSample{
			HeapBytes:  ms.HeapAlloc,
			Goroutines: runtime.NumGoroutine(),
		}
		s.last = time.Now()
		s.refreshes++
	}
	return s.cached
}
