package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchContended measures concurrent RecordOrigin+Emit throughput with
// `workers` goroutines hammering a collector of `shards` shards, each
// worker keyed by its own id (the ULT/ES-id keying the Margo hot path
// uses). shards=1 is exactly the old single-mutex Profiler: every
// worker funnels through one lock. The per-op work is identical across
// shard counts, so the ratio isolates lock contention.
func benchContended(b *testing.B, shards, workers int) {
	// Give each worker an OS thread even on a small host: the paper's
	// contention story is N execution streams recording in parallel,
	// and (like the rest of this repo's simulation) oversubscribing a
	// 1-core VM reproduces the lock-holder preemption and futex
	// handoffs a real N-core deployment sees on a shared mutex.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(workers))
	c := NewCollector(shards, 1<<16)
	bc := Breadcrumb(0).Push("contended_rpc")
	var comps [NumComponents]uint64
	comps[CompOriginExec] = 1000

	var next atomic.Uint64
	per := b.N/workers + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := next.Add(1) // distinct ULT id per worker
			ev := Event{RequestID: key, Kind: EvOriginEnd, RPCName: "contended_rpc", Timestamp: 1}
			for i := 0; i < per; i++ {
				c.RecordOrigin(key, bc, "peer", time.Microsecond, &comps)
				c.Emit(key, ev)
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	ops := float64(workers*per) * 2 // one record + one emit per iteration
	b.ReportMetric(ops/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkContendedRecording is the collector-bottleneck study behind
// this repo's sharding decision: N concurrent recorders × {1, 8}
// shards. The single-shard case is the process-wide mutex the original
// Profiler had; the sharded case is what Margo's per-ULT keying hits.
func BenchmarkContendedRecording(b *testing.B) {
	for _, workers := range []int{1, 4, 8, 16} {
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("workers=%d/shards=%d", workers, shards), func(b *testing.B) {
				benchContended(b, shards, workers)
			})
		}
	}
}

// BenchmarkRecordOriginSharded measures the uncontended sharded path
// for comparison with BenchmarkRecordOrigin (the Profiler facade).
func BenchmarkRecordOriginSharded(b *testing.B) {
	c := NewCollector(8, 16)
	bc := Breadcrumb(0).Push("x_rpc")
	var comps [NumComponents]uint64
	comps[CompOriginExec] = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RecordOrigin(7, bc, "peer", time.Microsecond, &comps)
	}
}

// BenchmarkEmitSharded measures one trace-event append through the
// collector (shard select + ring append).
func BenchmarkEmitSharded(b *testing.B) {
	c := NewCollector(8, b.N+8)
	ev := Event{RequestID: 1, Kind: EvOriginStart, RPCName: "x_rpc", Timestamp: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Emit(7, ev)
	}
}
