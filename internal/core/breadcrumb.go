// Package core implements the SYMBIOSYS measurement model: distributed
// callpath breadcrumbs, the callpath profiler, the distributed request
// tracer with Lamport clocks, measurement stages, and the serialized
// profile/trace formats consumed by the analysis tools. It is the
// paper's primary contribution (§IV); the margo package hosts it at the
// RPC instrumentation points t1…t14.
package core

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// Breadcrumb is the 64-bit RPC callpath ancestry of the paper (§IV-A1):
// each hop contributes the 16-bit hash of its RPC name, with deeper
// calls occupying lower bits. Pushing a fifth hop shifts the oldest one
// out, bounding the encoded depth at four exactly as in Margo.
type Breadcrumb uint64

// MaxDepth is the number of hops a breadcrumb can encode.
const MaxDepth = 4

// Hash16 folds an RPC name to the 16-bit hop hash used in breadcrumbs.
func Hash16(name string) uint16 {
	h := fnv.New32a()
	h.Write([]byte(name))
	s := h.Sum32()
	v := uint16(s>>16) ^ uint16(s)
	if v == 0 {
		// Zero hops read as "absent"; remap.
		v = 1
	}
	return v
}

// Push extends the callpath with a downstream RPC: a 16-bit left shift
// followed by OR-ing the new hop into the low bits (paper §IV-A1).
func (b Breadcrumb) Push(rpcName string) Breadcrumb {
	return b<<16 | Breadcrumb(Hash16(rpcName))
}

// Depth reports how many hops the breadcrumb encodes (0 to MaxDepth).
func (b Breadcrumb) Depth() int {
	d := 0
	for v := b; v != 0; v >>= 16 {
		d++
	}
	return d
}

// Hops returns the hop hashes from root to leaf.
func (b Breadcrumb) Hops() []uint16 {
	d := b.Depth()
	hops := make([]uint16, d)
	for i := d - 1; i >= 0; i-- {
		hops[i] = uint16(b)
		b >>= 16
	}
	return hops
}

// Parent returns the breadcrumb with the leaf hop removed.
func (b Breadcrumb) Parent() Breadcrumb { return b >> 16 }

// Leaf returns the hash of the innermost hop.
func (b Breadcrumb) Leaf() uint16 { return uint16(b) }

// String formats the breadcrumb as hex.
func (b Breadcrumb) String() string { return fmt.Sprintf("%#x", uint64(b)) }

// NameRegistry maps 16-bit hop hashes back to RPC names so profiles can
// print human-readable callpaths, and detects hash collisions between
// distinct registered names.
type NameRegistry struct {
	mu    sync.RWMutex
	names map[uint16]string
}

// NewNameRegistry returns an empty registry.
func NewNameRegistry() *NameRegistry {
	return &NameRegistry{names: make(map[uint16]string)}
}

// Register records an RPC name, returning its hop hash. Registering two
// distinct names with colliding hashes returns an error (the profile
// would otherwise attribute time to the wrong callpath).
func (r *NameRegistry) Register(name string) (uint16, error) {
	h := Hash16(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.names[h]; ok && old != name {
		return h, fmt.Errorf("core: breadcrumb hash collision: %q vs %q", name, old)
	}
	r.names[h] = name
	return h, nil
}

// Name resolves a hop hash.
func (r *NameRegistry) Name(h uint16) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.names[h]
	return n, ok
}

// Names returns a copy of the full hash→name table.
func (r *NameRegistry) Names() map[uint16]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[uint16]string, len(r.names))
	for k, v := range r.names {
		out[k] = v
	}
	return out
}

// Format renders a breadcrumb as "a => b => c", substituting the hex
// hash for unknown hops.
func (r *NameRegistry) Format(b Breadcrumb) string {
	hops := b.Hops()
	if len(hops) == 0 {
		return "(root)"
	}
	parts := make([]string, len(hops))
	for i, h := range hops {
		if n, ok := r.Name(h); ok {
			parts[i] = n
		} else {
			parts[i] = fmt.Sprintf("%#04x", h)
		}
	}
	return strings.Join(parts, " => ")
}

// FormatTable renders a breadcrumb using a plain hash→name map (the
// deserialized form used by offline analysis).
func FormatTable(names map[uint16]string, b Breadcrumb) string {
	hops := b.Hops()
	if len(hops) == 0 {
		return "(root)"
	}
	parts := make([]string, len(hops))
	for i, h := range hops {
		if n, ok := names[h]; ok {
			parts[i] = n
		} else {
			parts[i] = fmt.Sprintf("%#04x", h)
		}
	}
	return strings.Join(parts, " => ")
}
