package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestHistBucketBoundsContiguous checks that the bucket ranges tile
// [0, MaxUint64] with no gaps or overlaps and that HistBucket agrees
// with the bounds at and just inside every boundary.
func TestHistBucketBoundsContiguous(t *testing.T) {
	var prevHi uint64
	for i := 0; i < HistBuckets; i++ {
		lo, hi := HistBucketBounds(i)
		if lo >= hi {
			t.Fatalf("bucket %d: lo %d >= hi %d", i, lo, hi)
		}
		if lo != prevHi {
			t.Fatalf("bucket %d: lo %d != previous hi %d (gap or overlap)", i, lo, prevHi)
		}
		if got := HistBucket(lo); got != i {
			t.Errorf("HistBucket(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := HistBucket(hi - 1); got != i {
			t.Errorf("HistBucket(hi-1=%d) = %d, want %d", hi-1, got, i)
		}
		prevHi = hi
	}
	if prevHi != math.MaxUint64 {
		t.Fatalf("last bucket hi = %d, want MaxUint64", prevHi)
	}
}

// TestHistBucketTwoPerOctave checks the advertised resolution: within
// the tiled range every bucket spans at most half an octave (hi <= 1.5*lo).
func TestHistBucketTwoPerOctave(t *testing.T) {
	for i := 1; i < HistBuckets-1; i++ {
		lo, hi := HistBucketBounds(i)
		if hi*2 > lo*3 { // hi > 1.5*lo
			t.Errorf("bucket %d [%d,%d) wider than half an octave", i, lo, hi)
		}
	}
}

// TestHistBucketMonotone checks bucket assignment is monotone in the
// latency for random pairs.
func TestHistBucketMonotone(t *testing.T) {
	prop := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return HistBucket(a) <= HistBucket(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCallStatsMergeAssociative checks (a⊕b)⊕c == a⊕(b⊕c) over full
// CallStats (counts, extrema, components, histogram) — the property
// that makes shard merging and cross-process profile aggregation
// order-independent.
func TestCallStatsMergeAssociative(t *testing.T) {
	build := func(vals []uint32) CallStats {
		var s CallStats
		var comps [NumComponents]uint64
		for _, v := range vals {
			comps[int(v)%int(NumComponents)] = uint64(v)
			s.record(time.Duration(v), &comps)
		}
		return s
	}
	prop := func(a, b, c []uint32) bool {
		sa, sb, sc := build(a), build(b), build(c)

		left := sa // (a⊕b)⊕c
		left.Merge(&sb)
		left.Merge(&sc)

		bc := sb // a⊕(b⊕c)
		bc.Merge(&sc)
		right := sa
		right.Merge(&bc)

		return left == right
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileWithinBucketWidth checks the quantile estimator's error
// bound: for a batch of known latencies, every estimated percentile lies
// within the width of the bucket holding the true order statistic.
func TestPercentileWithinBucketWidth(t *testing.T) {
	var s CallStats
	lats := []time.Duration{
		2 * time.Microsecond, 5 * time.Microsecond, 9 * time.Microsecond,
		40 * time.Microsecond, 200 * time.Microsecond, 900 * time.Microsecond,
		3 * time.Millisecond, 3500 * time.Microsecond, 9 * time.Millisecond,
		42 * time.Millisecond,
	}
	for _, l := range lats {
		s.record(l, nil)
	}
	for _, p := range []float64{50, 90, 95, 99} {
		est := s.Percentile(p)
		idx := int(p/100*float64(len(lats))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		truth := lats[idx]
		lo, hi := HistBucketBounds(HistBucket(uint64(truth)))
		width := time.Duration(hi - lo)
		diff := est - truth
		if diff < 0 {
			diff = -diff
		}
		if diff > width {
			t.Errorf("p%v = %v, true order stat %v, off by %v > bucket width %v",
				p, est, truth, diff, width)
		}
	}
}

// failWriter fails after n successful writes.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestJSONLSinkStickyErrors checks that write failures surface from
// Flush and are counted in the collector's sink_errors stat.
func TestJSONLSinkStickyErrors(t *testing.T) {
	boom := errors.New("disk full")
	sink := NewJSONLTraceSink(&failWriter{n: 0, err: boom})
	c := NewCollector(1, 16)
	c.AddTraceSink(sink)

	// Small events flow into bufio's buffer without error; the failure
	// must still surface at flush time and be counted.
	for i := 0; i < 4; i++ {
		c.Emit(0, Event{RequestID: uint64(i), Entity: "e"})
	}
	if err := c.FlushSinks(); !errors.Is(err, boom) {
		t.Fatalf("FlushSinks = %v, want %v", err, boom)
	}
	if got := c.SinkErrors(); got == 0 {
		t.Fatal("sink error not counted")
	}
	// The error is sticky: later writes and flushes keep reporting it.
	if err := sink.WriteEvent(Event{}); !errors.Is(err, boom) {
		t.Fatalf("WriteEvent after failure = %v, want sticky %v", err, boom)
	}
	if err := sink.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush after failure = %v, want sticky %v", err, boom)
	}

	ps := NewJSONLProfileSink(&failWriter{n: 0, err: boom})
	big := &ProfileDump{Entity: "x"}
	_ = ps.WriteProfileDump(big)
	if err := ps.Flush(); !errors.Is(err, boom) {
		t.Fatalf("profile Flush = %v, want %v", err, boom)
	}
}

// TestSysSamplerCachesWithinInterval checks that samples inside the
// refresh interval are served from cache (exactly one refresh) and that
// samples after the interval elapses trigger a recomputation.
func TestSysSamplerCachesWithinInterval(t *testing.T) {
	s := NewSysSampler(time.Hour)
	a := s.Sample()
	if a.Goroutines == 0 {
		t.Fatal("first sample empty")
	}
	for i := 0; i < 10; i++ {
		if b := s.Sample(); b != a {
			t.Fatalf("sample %d differs within refresh interval: %+v vs %+v", i, b, a)
		}
	}
	if got := s.Refreshes(); got != 1 {
		t.Fatalf("refreshes = %d, want 1 (stale-within-interval must serve cache)", got)
	}

	fast := NewSysSampler(time.Nanosecond)
	fast.Sample()
	time.Sleep(time.Millisecond)
	fast.Sample()
	if got := fast.Refreshes(); got != 2 {
		t.Fatalf("refreshes = %d, want 2 (refresh-after-interval must recompute)", got)
	}
}
