package core

import (
	"sync"
	"time"
)

// DefaultTraceCapacity bounds the per-process trace buffer; beyond it
// events are counted as dropped rather than grown without bound.
const DefaultTraceCapacity = 1 << 20

// EventKind marks which timeline point a trace event was generated at.
// Tracing emits events at t1 and t14 on the origin and t5 and t8 on the
// target (paper §IV-A2).
type EventKind int8

// Trace event kinds.
const (
	// EvOriginStart is t1: the origin issues the RPC.
	EvOriginStart EventKind = iota
	// EvTargetStart is t5: the handler ULT begins executing.
	EvTargetStart
	// EvTargetEnd is t8: the handler issues its response.
	EvTargetEnd
	// EvOriginEnd is t14: the origin completion callback runs.
	EvOriginEnd
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvOriginStart:
		return "origin_start"
	case EvTargetStart:
		return "target_start"
	case EvTargetEnd:
		return "target_end"
	case EvOriginEnd:
		return "origin_end"
	default:
		return "unknown"
	}
}

// PVarSample is the set of Mercury PVARs fused into trace events at Full
// stage (paper §IV-C).
type PVarSample struct {
	OFIEventsRead    uint64 `json:"ofi_events_read"`
	CompletionQueue  uint64 `json:"completion_queue_size"`
	PostedHandles    uint64 `json:"num_posted_handles"`
	InputSerNanos    uint64 `json:"input_serialization_ns,omitempty"`
	InputDeserNanos  uint64 `json:"input_deserialization_ns,omitempty"`
	OutputSerNanos   uint64 `json:"output_serialization_ns,omitempty"`
	RDMANanos        uint64 `json:"internal_rdma_ns,omitempty"`
	OriginCBNanos    uint64 `json:"origin_cb_ns,omitempty"`
	NetworkPending   uint64 `json:"network_pending,omitempty"`
	BulkBytesMoved   uint64 `json:"bulk_bytes,omitempty"`
	RPCsInvokedTotal uint64 `json:"rpcs_invoked_total,omitempty"`
}

// SysSample is the OS-layer data sampled when generating a trace event
// (paper §IV-C: memory usage and CPU utilization, here the Go-process
// equivalents plus the Argobots pool counters).
type SysSample struct {
	PoolRunnable int64  `json:"pool_runnable"`
	PoolBlocked  int64  `json:"pool_blocked"`
	HeapBytes    uint64 `json:"heap_bytes,omitempty"`
	Goroutines   int    `json:"goroutines,omitempty"`
}

// Event is one distributed-trace record.
type Event struct {
	RequestID  uint64    `json:"request_id"`
	Order      uint64    `json:"order"` // Lamport counter
	Kind       EventKind `json:"kind"`
	Timestamp  int64     `json:"ts_ns"` // local wall clock, ns since epoch
	Entity     string    `json:"entity"`
	Peer       string    `json:"peer,omitempty"`
	RPCName    string    `json:"rpc"`
	Breadcrumb uint64    `json:"breadcrumb"`
	Duration   int64     `json:"dur_ns,omitempty"` // span length for end events
	// BatchID groups the per-op spans of one coalesced (vectored)
	// forward: every member's chain shares the batch ID while keeping
	// its own request ID, so analysis can attribute time per logical op
	// and still see which ops traveled together. Zero means unbatched.
	BatchID uint64 `json:"batch_id,omitempty"`
	// Failed marks a terminal event whose attempt ended in an error:
	// a canceled/failed origin attempt, or a target span closed by a
	// handler panic or error response. Stitchers use it to close spans
	// without treating them as successful executions.
	Failed bool `json:"failed,omitempty"`
	// QueueNanos, on target-start (t5) events, is the handler-pool wait
	// the request's ULT spent spawned-but-unscheduled (t4→t5). It is the
	// per-request form of the CompHandler profile component, carried on
	// the event so critical-path extraction can attribute queueing
	// without consulting the aggregate profile.
	QueueNanos int64 `json:"queue_ns,omitempty"`
	// WindowNanos, on batched origin-end (t14) events, is how long the
	// op sat in the client-side coalescer window before its vectored
	// frame first left the process — the batch-window share of the
	// origin execution time.
	WindowNanos int64       `json:"window_ns,omitempty"`
	Sys         SysSample   `json:"sys"`
	PVars       *PVarSample `json:"pvars,omitempty"`

	// Components carries the per-interval breakdown on end events
	// (indexed by Component).
	Components *[NumComponents]uint64 `json:"components,omitempty"`
}

// Tracer is a bounded per-process trace buffer.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped uint64
}

// NewTracer returns a tracer that retains up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// Emit appends an event, stamping its wall-clock time if unset.
func (t *Tracer) Emit(ev Event) {
	if ev.Timestamp == 0 {
		ev.Timestamp = time.Now().UnixNano()
	}
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len reports the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports events discarded due to the capacity bound.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events in emission order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Reset clears the buffer (between experiment repetitions).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.dropped = 0
	t.mu.Unlock()
}
