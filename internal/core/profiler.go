package core

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Lamport is a logical clock (Lamport's algorithm, paper §IV-A2) used to
// order trace events across processes despite clock skew.
type Lamport struct{ c atomic.Uint64 }

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() uint64 { return l.c.Add(1) }

// Merge folds in a counter received with a message and returns the
// clock's new value: max(local, remote) + 1.
func (l *Lamport) Merge(remote uint64) uint64 {
	for {
		cur := l.c.Load()
		next := cur + 1
		if remote >= cur {
			next = remote + 1
		}
		if l.c.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Now reads the clock without advancing it.
func (l *Lamport) Now() uint64 { return l.c.Load() }

// StatKey identifies one profiled (callpath, peer) pair. On the origin
// side Peer is the target address; on the target side it is the origin
// address — giving the per-origin / per-target call distributions of the
// paper's profile summary (§V-A2).
type StatKey struct {
	BC   Breadcrumb
	Peer string
}

// HistBuckets is the number of log-scale latency buckets per callpath.
// Buckets are spaced two per octave (boundaries at 2^k and 3·2^(k-1)
// nanoseconds), giving ≤±25% relative error on quantile estimates —
// twice the resolution of plain log2 buckets for the same mergeability:
// bucket counts add element-wise, so Merge stays associative and
// order-independent (the shard-merge property of the collector).
//
// Bucket 0 is the underflow bucket [0, 2^histMinOctave); buckets
// 1..HistBuckets-2 tile [2^histMinOctave, 2^(histMinOctave+20)) — about
// 1µs through 1s — and the last bucket absorbs everything above.
const HistBuckets = 42

// histMinOctave is the exponent of the first two-per-octave boundary:
// latencies below 2^histMinOctave ns (≈1µs) land in the underflow
// bucket. RPC-scale latencies on the simulated fabric are ≥ microseconds,
// so resolution is spent where the distributions actually live.
const histMinOctave = 10

// CallStats accumulates timing for one StatKey, including the call-time
// distribution the paper's question 1 asks for.
type CallStats struct {
	Count      uint64
	CumNanos   uint64
	MinNanos   uint64
	MaxNanos   uint64
	Components [NumComponents]uint64
	Hist       [HistBuckets]uint32 `json:"Hist,omitempty"`
}

// HistBucket maps a latency in nanoseconds to its histogram bucket:
// 2·(log2(n)−histMinOctave)+half+1, where half selects the upper half
// of the octave (the 3·2^(k-1) boundary), clamped into the table.
func HistBucket(n uint64) int {
	if n < 1<<histMinOctave {
		return 0
	}
	o := bits.Len64(n) - 1 // floor(log2 n), o >= histMinOctave
	half := int(n >> (o - 1) & 1)
	idx := 2*(o-histMinOctave) + half + 1
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	return idx
}

// HistBucketBounds returns the [lo, hi) nanosecond range of bucket i.
// Bucket 0 is [0, 2^histMinOctave); the last bucket's hi is MaxUint64
// (it absorbs all latencies past the tiled range). Consumers exporting
// Prometheus histograms use hi as the bucket's `le` boundary.
func HistBucketBounds(i int) (lo, hi uint64) {
	lower := func(j int) uint64 {
		if j <= 0 {
			return 0
		}
		k := (j - 1) / 2
		half := uint64((j - 1) % 2)
		return (2 + half) << (histMinOctave + k - 1)
	}
	if i >= HistBuckets-1 {
		return lower(HistBuckets - 1), math.MaxUint64
	}
	return lower(i), lower(i + 1)
}

// record folds one call into the stats. total is the side's primary
// interval (origin execution time or target execution time).
func (s *CallStats) record(total time.Duration, comps *[NumComponents]uint64) {
	n := uint64(total)
	s.Count++
	s.CumNanos += n
	if s.Count == 1 || n < s.MinNanos {
		s.MinNanos = n
	}
	if n > s.MaxNanos {
		s.MaxNanos = n
	}
	s.Hist[HistBucket(n)]++
	if comps != nil {
		for i, v := range comps {
			s.Components[i] += v
		}
	}
}

// Record folds one standalone observation into the stats (no component
// breakdown). Scenario harnesses use it to build phase-local latency
// distributions with the same histogram/percentile machinery the
// collector uses for callpaths.
func (s *CallStats) Record(total time.Duration) {
	s.record(total, nil)
}

// Merge folds other into s (used by offline profile aggregation).
func (s *CallStats) Merge(other *CallStats) {
	if other.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = *other
		return
	}
	s.Count += other.Count
	s.CumNanos += other.CumNanos
	if other.MinNanos < s.MinNanos {
		s.MinNanos = other.MinNanos
	}
	if other.MaxNanos > s.MaxNanos {
		s.MaxNanos = other.MaxNanos
	}
	for i := range s.Components {
		s.Components[i] += other.Components[i]
	}
	for i := range s.Hist {
		s.Hist[i] += other.Hist[i]
	}
}

// Mean returns the average call latency.
func (s *CallStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.CumNanos / s.Count)
}

// Percentile estimates the p-th percentile latency (0 < p <= 100) from
// the two-per-octave histogram, interpolating linearly within the
// bucket. The unbounded top bucket is capped at the observed maximum
// before interpolating, so estimates never exceed MaxNanos.
func (s *CallStats) Percentile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return time.Duration(s.MinNanos)
	}
	if p >= 100 {
		return time.Duration(s.MaxNanos)
	}
	target := p / 100 * float64(s.Count)
	var seen float64
	for i, c := range s.Hist {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if next >= target {
			lo, hi := HistBucketBounds(i)
			if hi > s.MaxNanos {
				hi = s.MaxNanos
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - seen) / float64(c)
			est := float64(lo) + frac*(float64(hi)-float64(lo))
			// Clamp into the observed range.
			if est < float64(s.MinNanos) {
				est = float64(s.MinNanos)
			}
			if est > float64(s.MaxNanos) {
				est = float64(s.MaxNanos)
			}
			return time.Duration(est)
		}
		seen = next
	}
	return time.Duration(s.MaxNanos)
}

// Profiler is the per-process SYMBIOSYS measurement state: it owns the
// process identity, the measurement stage, the Lamport clock, request ID
// allocation, and the sharded measurement collector holding the callpath
// profiles and the trace rings.
type Profiler struct {
	entity string
	pid    uint32
	stage  atomic.Int32

	Clock  Lamport
	reqSeq atomic.Uint32

	names *NameRegistry

	// skew simulates this process's wall-clock offset from true time
	// (nanoseconds). Trace-event timestamps are stamped with it, which
	// is why cross-process ordering relies on the Lamport clock rather
	// than timestamps (paper §IV-A2).
	skew atomic.Int64

	// coll is the sharded measurement pipeline. It is replaced (not
	// mutated) on reconfiguration, so hot-path readers load it once per
	// operation without locking.
	coll atomic.Pointer[Collector]

	// pvarSnap, when set (SetPVarSnapshot), is called at Dump time so
	// profile dumps carry the owning layer's performance-variable
	// totals (shed/retry/breaker counters and the like) alongside the
	// callpath statistics.
	pvarSnap atomic.Pointer[func() map[string]uint64]

	start time.Time
}

var pidSeq atomic.Uint32

// NewProfiler creates the measurement state for one (virtual) process.
// entity is the process's fabric address.
func NewProfiler(entity string, stage Stage) *Profiler {
	p := &Profiler{
		entity: entity,
		pid:    pidSeq.Add(1),
		names:  NewNameRegistry(),
		start:  time.Now(),
	}
	p.coll.Store(NewCollector(DefaultShards, DefaultTraceCapacity))
	p.stage.Store(int32(stage))
	return p
}

// Entity returns the process address the profiler describes.
func (p *Profiler) Entity() string { return p.entity }

// PID returns the process's numeric id (the high half of request IDs).
func (p *Profiler) PID() uint32 { return p.pid }

// Stage returns the active measurement stage.
func (p *Profiler) Stage() Stage { return Stage(p.stage.Load()) }

// SetStage switches the measurement stage at runtime.
func (p *Profiler) SetStage(s Stage) { p.stage.Store(int32(s)) }

// Names returns the process's hop-hash name registry.
func (p *Profiler) Names() *NameRegistry { return p.names }

// Collector returns the process's sharded measurement pipeline.
func (p *Profiler) Collector() *Collector { return p.coll.Load() }

// SetTraceCapacity replaces the collector with one retaining up to n
// trace events (shard count and attached sinks carry over). The swap is
// atomic, so a late call is safe — but events already recorded are
// discarded, so configure capacity before traffic.
func (p *Profiler) SetTraceCapacity(n int) {
	old := p.coll.Load()
	nc := NewCollector(old.NumShards(), n)
	nc.copySinksFrom(old)
	p.coll.Store(nc)
}

// SetShards replaces the collector with one using n shards, rounded up
// to a power of two (trace capacity and attached sinks carry over).
// Like SetTraceCapacity, configure before traffic: recorded state is
// discarded.
func (p *Profiler) SetShards(n int) {
	old := p.coll.Load()
	nc := NewCollector(n, old.TraceCapacity())
	nc.copySinksFrom(old)
	p.coll.Store(nc)
}

// AddTraceSink attaches a streaming sink observing every subsequently
// emitted trace event.
func (p *Profiler) AddTraceSink(s TraceSink) { p.coll.Load().AddTraceSink(s) }

// FlushSinks flushes all attached trace sinks.
func (p *Profiler) FlushSinks() error { return p.coll.Load().FlushSinks() }

// SetClockSkew sets the simulated wall-clock offset of this process.
func (p *Profiler) SetClockSkew(d time.Duration) { p.skew.Store(int64(d)) }

// ClockSkew returns the simulated wall-clock offset.
func (p *Profiler) ClockSkew() time.Duration { return time.Duration(p.skew.Load()) }

// StampNanos converts a true instant into this process's (possibly
// skewed) wall-clock nanoseconds for trace-event timestamps.
func (p *Profiler) StampNanos(t time.Time) int64 {
	return t.UnixNano() + p.skew.Load()
}

// NewRequestID allocates a globally unique request ID: pid<<32 | seq
// (paper §IV-A2; end-clients call this at the root of each operation).
func (p *Profiler) NewRequestID() uint64 {
	return uint64(p.pid)<<32 | uint64(p.reqSeq.Add(1))
}

// RecordOrigin folds one completed RPC into the origin-side profile.
// total is the origin execution time (t1→t14); comps carries whichever
// components the origin measured. The recording shard is derived from
// the callpath; hot paths that know their execution stream should use
// RecordOriginAt.
func (p *Profiler) RecordOrigin(bc Breadcrumb, target string, total time.Duration, comps *[NumComponents]uint64) {
	p.RecordOriginAt(uint64(bc), bc, target, total, comps)
}

// RecordOriginAt is RecordOrigin recording into the shard selected by
// key — callers on the RPC fast path pass their ULT/ES id so concurrent
// execution streams take disjoint locks (the per-thread storage of the
// paper's TAU backend).
func (p *Profiler) RecordOriginAt(key uint64, bc Breadcrumb, target string, total time.Duration, comps *[NumComponents]uint64) {
	if !p.Stage().Measures() {
		return
	}
	p.coll.Load().RecordOrigin(key, bc, target, total, comps)
}

// RecordTarget folds one serviced RPC into the target-side profile.
// total is the target ULT execution time (t5→t8).
func (p *Profiler) RecordTarget(bc Breadcrumb, origin string, total time.Duration, comps *[NumComponents]uint64) {
	p.RecordTargetAt(uint64(bc), bc, origin, total, comps)
}

// RecordTargetAt is RecordTarget recording into the shard selected by
// key (the handler ULT's id on the RPC fast path).
func (p *Profiler) RecordTargetAt(key uint64, bc Breadcrumb, origin string, total time.Duration, comps *[NumComponents]uint64) {
	if !p.Stage().Measures() {
		return
	}
	p.coll.Load().RecordTarget(key, bc, origin, total, comps)
}

// Emit appends one trace event, sharded by its request ID. Hot paths
// that know their execution stream should use EmitAt.
func (p *Profiler) Emit(ev Event) { p.EmitAt(ev.RequestID, ev) }

// EmitAt appends one trace event into the shard selected by key (the
// emitting ULT's id on the RPC fast path).
func (p *Profiler) EmitAt(key uint64, ev Event) { p.coll.Load().Emit(key, ev) }

// TraceLen reports the number of buffered trace events.
func (p *Profiler) TraceLen() int { return p.coll.Load().TraceLen() }

// TraceDropped reports trace events discarded due to the capacity bound.
func (p *Profiler) TraceDropped() uint64 { return p.coll.Load().Dropped() }

// TraceEvents returns a merged copy of the buffered trace events,
// ordered by timestamp then Lamport order.
func (p *Profiler) TraceEvents() []Event { return p.coll.Load().Events() }

// ResetMeasurements clears the profile maps and trace rings (between
// experiment repetitions).
func (p *Profiler) ResetMeasurements() { p.coll.Load().Reset() }

// OriginStats returns a merged deep copy of the origin-side profile.
func (p *Profiler) OriginStats() map[StatKey]CallStats { return p.coll.Load().OriginStats() }

// TargetStats returns a merged deep copy of the target-side profile.
func (p *Profiler) TargetStats() map[StatKey]CallStats { return p.coll.Load().TargetStats() }

// Dump serializes the profiler state for offline analysis, folding all
// collector shards into the single merged per-process view the analysis
// tools ingest.
func (p *Profiler) Dump() *ProfileDump {
	c := p.coll.Load()
	d := &ProfileDump{
		Entity:       p.entity,
		PID:          p.pid,
		Stage:        p.Stage().String(),
		Started:      p.start,
		Names:        p.names.Names(),
		TraceDropped: c.Dropped(),
		Origin:       make([]DumpEntry, 0),
		Target:       make([]DumpEntry, 0),
	}
	for k, v := range c.OriginStats() {
		d.Origin = append(d.Origin, DumpEntry{BC: uint64(k.BC), Peer: k.Peer, Stats: v})
	}
	for k, v := range c.TargetStats() {
		d.Target = append(d.Target, DumpEntry{BC: uint64(k.BC), Peer: k.Peer, Stats: v})
	}
	sort.Slice(d.Origin, func(i, j int) bool { return d.Origin[i].less(&d.Origin[j]) })
	sort.Slice(d.Target, func(i, j int) bool { return d.Target[i].less(&d.Target[j]) })
	if fn := p.pvarSnap.Load(); fn != nil {
		d.PVars = (*fn)()
	}
	return d
}

// SetPVarSnapshot installs the provider of the PVar totals attached to
// profile dumps. The owning layer (margo) passes a closure reading its
// performance variables, so operational counters — requests shed,
// deadline expiries, breaker trips, retries — land in the same dump the
// analysis scripts ingest.
func (p *Profiler) SetPVarSnapshot(fn func() map[string]uint64) {
	p.pvarSnap.Store(&fn)
}
