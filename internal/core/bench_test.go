package core

import (
	"testing"
	"time"
)

// BenchmarkBreadcrumbPush measures extending the callpath ancestry —
// executed once per RPC on the hot path.
func BenchmarkBreadcrumbPush(b *testing.B) {
	bc := Breadcrumb(0).Push("outer_rpc")
	for i := 0; i < b.N; i++ {
		_ = bc.Push("inner_rpc")
	}
}

// BenchmarkRecordOrigin measures one profile update with components.
func BenchmarkRecordOrigin(b *testing.B) {
	p := NewProfiler("bench", StageFull)
	bc := Breadcrumb(0).Push("x_rpc")
	var comps [NumComponents]uint64
	comps[CompOriginExec] = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RecordOrigin(bc, "peer", time.Microsecond, &comps)
	}
}

// BenchmarkTracerEmit measures one trace-event append.
func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(b.N + 1)
	ev := Event{RequestID: 1, Kind: EvOriginStart, RPCName: "x_rpc", Timestamp: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}

// BenchmarkLamportTick measures the logical-clock advance.
func BenchmarkLamportTick(b *testing.B) {
	var l Lamport
	for i := 0; i < b.N; i++ {
		l.Tick()
	}
}

// BenchmarkSysSamplerCached measures the per-event OS sample (cached).
func BenchmarkSysSamplerCached(b *testing.B) {
	s := NewSysSampler(time.Hour)
	s.Sample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample()
	}
}

// BenchmarkPercentile measures histogram percentile estimation.
func BenchmarkPercentile(b *testing.B) {
	var s CallStats
	for i := 0; i < 10_000; i++ {
		s.record(time.Duration(i)*time.Microsecond, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Percentile(99)
	}
}
