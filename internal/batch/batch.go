// Package batch implements the coalescer's window state machine: the
// pure decision logic for when an adaptive batch window must flush and
// the bookkeeping that feeds the symbiosys_batch_* metrics. It is
// deliberately free of RPC, ULT, and clock dependencies — margo owns
// the timers and the vectored forwards; this package answers "is this
// window due, and why?" and keeps the occupancy/coalesce statistics the
// paper's methodology needs to attribute the C4 batching effect.
package batch

import (
	"sync/atomic"
	"time"
)

// Reason labels why a window flushed. The distribution of reasons is a
// primary tuning signal: ReasonFull-dominated flushes mean the window is
// too small, ReasonWindow-dominated ones mean the offered load is too
// thin to coalesce.
type Reason uint8

// Flush reasons.
const (
	// ReasonNone means the window is not due.
	ReasonNone Reason = iota
	// ReasonFull: the window reached Policy.MaxOps members.
	ReasonFull
	// ReasonBytes: the window reached Policy.MaxBytes encoded bytes.
	ReasonBytes
	// ReasonWindow: the adaptive delay elapsed with the window open.
	ReasonWindow
	// ReasonUrgent: a member's deadline forced an early flush.
	ReasonUrgent
	// ReasonDrain: the instance is draining; windows flush immediately.
	ReasonDrain
	// ReasonExplicit: the application forced a flush.
	ReasonExplicit
	numReasons
)

// String returns the short label used in metrics and reports.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonFull:
		return "full"
	case ReasonBytes:
		return "bytes"
	case ReasonWindow:
		return "window"
	case ReasonUrgent:
		return "urgent"
	case ReasonDrain:
		return "drain"
	case ReasonExplicit:
		return "explicit"
	default:
		return "unknown"
	}
}

// Policy tunes one coalescer. The zero value is usable: WithDefaults
// fills the paper-informed defaults (window 64 reproduces HEPnOS C1;
// window 1 degenerates to the C4 misconfiguration).
type Policy struct {
	// MaxOps flushes a window when it holds this many members.
	// Default 64.
	MaxOps int
	// MaxBytes flushes a window when its encoded payload reaches this
	// many bytes. It also bounds the vectored frame so batch frames
	// stay on the eager path. Default 128 KiB.
	MaxBytes int
	// MaxDelay is the longest a member waits for companions before the
	// window flushes anyway. Default 200µs.
	MaxDelay time.Duration
}

// WithDefaults returns the policy with unset fields filled in.
func (p Policy) WithDefaults() Policy {
	if p.MaxOps <= 0 {
		p.MaxOps = 64
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = 128 << 10
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 200 * time.Microsecond
	}
	return p
}

// Window tracks one open batch window. It is not synchronized; the
// owner (margo's coalescer) serializes access under its own lock.
type Window struct {
	ops      int
	bytes    int
	openedAt int64 // unix nanos of the first Add
	// minDeadline is the earliest member deadline (unix nanos);
	// zero when no member carries a deadline.
	minDeadline int64
}

// Open resets the window for a new batch starting at now.
func (w *Window) Open(now int64) {
	w.ops, w.bytes, w.openedAt, w.minDeadline = 0, 0, now, 0
}

// Add records one member with its encoded size and absolute deadline
// (zero for none).
func (w *Window) Add(nbytes int, deadlineNanos int64) {
	w.ops++
	w.bytes += nbytes
	if deadlineNanos != 0 && (w.minDeadline == 0 || deadlineNanos < w.minDeadline) {
		w.minDeadline = deadlineNanos
	}
}

// Ops reports the member count.
func (w *Window) Ops() int { return w.ops }

// Bytes reports the accumulated encoded payload size.
func (w *Window) Bytes() int { return w.bytes }

// OpenedAt reports when the first member arrived (unix nanos).
func (w *Window) OpenedAt() int64 { return w.openedAt }

// MinDeadline reports the earliest member deadline (zero for none).
func (w *Window) MinDeadline() int64 { return w.minDeadline }

// Due reports whether the window must flush immediately after an Add,
// based on size thresholds alone (time-based flushes come from FlushAt).
func (p Policy) Due(w *Window) Reason {
	if w.ops >= p.MaxOps {
		return ReasonFull
	}
	if w.bytes >= p.MaxBytes {
		return ReasonBytes
	}
	return ReasonNone
}

// FlushAt returns the instant the window's timer must fire and the
// reason that firing will carry: the adaptive window close, pulled
// earlier when a member's deadline would otherwise expire while the
// batch sits in the window. Deadlines already past clamp to "now"
// (the caller flushes immediately).
func (p Policy) FlushAt(w *Window) (int64, Reason) {
	at := w.openedAt + int64(p.MaxDelay)
	reason := ReasonWindow
	if w.minDeadline != 0 {
		// Leave half the remaining window as headroom for the wire
		// round-trip: flushing exactly at the deadline guarantees an
		// expired member.
		urgent := w.minDeadline - int64(p.MaxDelay)/2
		if urgent < at {
			at, reason = urgent, ReasonUrgent
		}
	}
	return at, reason
}

// Stats accumulates flush accounting across a coalescer's lifetime.
// All fields are updated atomically so samplers read them without
// coordinating with the flush path.
type Stats struct {
	flushes   atomic.Uint64
	ops       atomic.Uint64
	bytes     atomic.Uint64
	byReason  [numReasons]atomic.Uint64
	lastOccup atomic.Uint64
	occupHWM  atomic.Uint64
	retries   atomic.Uint64
}

// RecordFlush accounts one flushed window.
func (s *Stats) RecordFlush(reason Reason, ops, bytes int) {
	s.flushes.Add(1)
	s.ops.Add(uint64(ops))
	s.bytes.Add(uint64(bytes))
	if reason < numReasons {
		s.byReason[reason].Add(1)
	}
	occ := uint64(ops)
	s.lastOccup.Store(occ)
	for {
		hwm := s.occupHWM.Load()
		if occ <= hwm || s.occupHWM.CompareAndSwap(hwm, occ) {
			break
		}
	}
}

// RecordRetry accounts one batch-level retry attempt.
func (s *Stats) RecordRetry() { s.retries.Add(1) }

// Flushes reports the number of windows flushed.
func (s *Stats) Flushes() uint64 { return s.flushes.Load() }

// Ops reports the total members coalesced.
func (s *Stats) Ops() uint64 { return s.ops.Load() }

// Bytes reports the total encoded payload bytes flushed.
func (s *Stats) Bytes() uint64 { return s.bytes.Load() }

// ByReason reports the flush count for one reason.
func (s *Stats) ByReason(r Reason) uint64 {
	if r >= numReasons {
		return 0
	}
	return s.byReason[r].Load()
}

// Retries reports batch-level retry attempts.
func (s *Stats) Retries() uint64 { return s.retries.Load() }

// LastOccupancy reports the member count of the most recent flush.
func (s *Stats) LastOccupancy() uint64 { return s.lastOccup.Load() }

// OccupancyHWM reports the largest window ever flushed.
func (s *Stats) OccupancyHWM() uint64 { return s.occupHWM.Load() }

// CoalesceRatio reports mean ops per flush — the factor by which
// batching divided the per-op RPC overhead (1.0 means no coalescing).
func (s *Stats) CoalesceRatio() float64 {
	f := s.flushes.Load()
	if f == 0 {
		return 0
	}
	return float64(s.ops.Load()) / float64(f)
}

// Reasons enumerates every flush reason with its label, for reports.
func Reasons() []Reason {
	return []Reason{ReasonFull, ReasonBytes, ReasonWindow, ReasonUrgent, ReasonDrain, ReasonExplicit}
}
