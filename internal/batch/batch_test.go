package batch

import (
	"testing"
	"time"
)

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.MaxOps != 64 || p.MaxBytes != 128<<10 || p.MaxDelay != 200*time.Microsecond {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	keep := Policy{MaxOps: 8, MaxBytes: 1 << 10, MaxDelay: time.Millisecond}.WithDefaults()
	if keep.MaxOps != 8 || keep.MaxBytes != 1<<10 || keep.MaxDelay != time.Millisecond {
		t.Fatalf("WithDefaults overwrote explicit values: %+v", keep)
	}
}

func TestWindowDueFull(t *testing.T) {
	p := Policy{MaxOps: 3, MaxBytes: 1 << 20, MaxDelay: time.Second}
	var w Window
	w.Open(100)
	for i := 0; i < 2; i++ {
		w.Add(10, 0)
		if r := p.Due(&w); r != ReasonNone {
			t.Fatalf("window due %v after %d ops", r, i+1)
		}
	}
	w.Add(10, 0)
	if r := p.Due(&w); r != ReasonFull {
		t.Fatalf("want ReasonFull, got %v", r)
	}
}

func TestWindowDueBytes(t *testing.T) {
	p := Policy{MaxOps: 100, MaxBytes: 25, MaxDelay: time.Second}
	var w Window
	w.Open(0)
	w.Add(10, 0)
	if r := p.Due(&w); r != ReasonNone {
		t.Fatalf("premature flush: %v", r)
	}
	w.Add(20, 0)
	if r := p.Due(&w); r != ReasonBytes {
		t.Fatalf("want ReasonBytes, got %v", r)
	}
}

func TestFlushAtWindow(t *testing.T) {
	p := Policy{MaxOps: 100, MaxBytes: 1 << 20, MaxDelay: time.Millisecond}
	var w Window
	w.Open(1000)
	w.Add(1, 0)
	at, reason := p.FlushAt(&w)
	if at != 1000+int64(time.Millisecond) || reason != ReasonWindow {
		t.Fatalf("FlushAt = %d, %v", at, reason)
	}
}

func TestFlushAtUrgent(t *testing.T) {
	p := Policy{MaxOps: 100, MaxBytes: 1 << 20, MaxDelay: time.Millisecond}
	var w Window
	w.Open(1000)
	// A member whose deadline lands inside the window pulls the flush
	// earlier, leaving half the window as round-trip headroom.
	deadline := int64(1000 + int64(time.Millisecond)/4)
	w.Add(1, deadline)
	at, reason := p.FlushAt(&w)
	if reason != ReasonUrgent {
		t.Fatalf("want ReasonUrgent, got %v at %d", reason, at)
	}
	if at != deadline-int64(p.MaxDelay)/2 {
		t.Fatalf("urgent FlushAt = %d, want %d", at, deadline-int64(p.MaxDelay)/2)
	}
	// A deadline far beyond the window leaves the normal close.
	w.Open(1000)
	w.Add(1, 1000+10*int64(time.Millisecond))
	if _, reason := p.FlushAt(&w); reason != ReasonWindow {
		t.Fatalf("distant deadline should not force urgency, got %v", reason)
	}
}

func TestMinDeadlineTracksEarliest(t *testing.T) {
	var w Window
	w.Open(0)
	w.Add(1, 500)
	w.Add(1, 300)
	w.Add(1, 0) // no deadline leaves the minimum alone
	w.Add(1, 900)
	if w.MinDeadline() != 300 {
		t.Fatalf("MinDeadline = %d, want 300", w.MinDeadline())
	}
}

func TestStatsAccounting(t *testing.T) {
	var s Stats
	s.RecordFlush(ReasonFull, 64, 4096)
	s.RecordFlush(ReasonWindow, 2, 128)
	s.RecordFlush(ReasonFull, 32, 2048)
	s.RecordRetry()
	if s.Flushes() != 3 || s.Ops() != 98 || s.Bytes() != 6272 {
		t.Fatalf("totals: flushes=%d ops=%d bytes=%d", s.Flushes(), s.Ops(), s.Bytes())
	}
	if s.ByReason(ReasonFull) != 2 || s.ByReason(ReasonWindow) != 1 || s.ByReason(ReasonUrgent) != 0 {
		t.Fatalf("by-reason counts wrong")
	}
	if s.LastOccupancy() != 32 || s.OccupancyHWM() != 64 {
		t.Fatalf("occupancy: last=%d hwm=%d", s.LastOccupancy(), s.OccupancyHWM())
	}
	if got := s.CoalesceRatio(); got < 32.0 || got > 33.0 {
		t.Fatalf("CoalesceRatio = %v, want 98/3", got)
	}
	if s.Retries() != 1 {
		t.Fatalf("Retries = %d", s.Retries())
	}
}

func TestReasonStrings(t *testing.T) {
	for _, r := range Reasons() {
		if r.String() == "unknown" || r.String() == "none" {
			t.Fatalf("reason %d has no label", r)
		}
	}
	if Reason(200).String() != "unknown" {
		t.Fatalf("out-of-range reason should be unknown")
	}
}

// TestWindowAddAllocs pins the window bookkeeping itself to zero
// allocations: the coalescer calls Add for every forwarded op.
func TestWindowAddAllocs(t *testing.T) {
	p := Policy{}.WithDefaults()
	var w Window
	w.Open(0)
	n := testing.AllocsPerRun(1000, func() {
		w.Add(64, 0)
		if p.Due(&w) != ReasonNone {
			w.Open(0)
		}
	})
	if n != 0 {
		t.Fatalf("Window.Add allocates %v/op, want 0", n)
	}
}
