package kv

import (
	"fmt"
	"testing"
	"testing/quick"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node%02d/ekv", i)
	}
	return out
}

func ringKeys(k int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("dataset/run%04d/event%06d", i%7, i))
	}
	return out
}

func TestRingDeterministicAndCovering(t *testing.T) {
	r := NewRing(3, ringMembers(5))
	if r.Version() != 3 || r.Size() != 5 {
		t.Fatalf("ring = v%d size %d", r.Version(), r.Size())
	}
	prop := func(key []byte) bool {
		return r.Owner(key) == r.Owner(key) && r.Has(r.Owner(key))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	hit := map[string]int{}
	for _, k := range ringKeys(4096) {
		hit[r.Owner(k)]++
	}
	if len(hit) != 5 {
		t.Fatalf("owners covered %d of 5 members: %v", len(hit), hit)
	}
	// Rough balance: no member owns more than 2x its fair share.
	for m, n := range hit {
		if n > 2*4096/5 {
			t.Fatalf("member %s owns %d of 4096 keys", m, n)
		}
	}
	// Member order must not matter.
	rev := NewRing(3, []string{"node04/ekv", "node02/ekv", "node00/ekv", "node03/ekv", "node01/ekv"})
	for _, k := range ringKeys(64) {
		if r.Owner(k) != rev.Owner(k) {
			t.Fatalf("owner differs by input order for %q", k)
		}
	}
	empty := NewRing(0, nil)
	if empty.Owner([]byte("x")) != "" || empty.OwnerIndex([]byte("x")) != -1 {
		t.Fatal("empty ring returned an owner")
	}
}

// TestRingMinimalDisruption is the satellite property test: rendezvous
// routing moves only the keys it must. For a single join, every moved
// key moves TO the joiner; for a single leave, every moved key moves
// FROM the leaver — keys owned by unaffected members never change
// hands, which is the exact minimal-disruption property. The moved
// count is ceil(K/N) in expectation (it is precisely the affected
// member's holding, a Binomial(K, 1/N)), so the count assertion allows
// the bound a 3-sigma tail on top of ceil(K/N).
func TestRingMinimalDisruption(t *testing.T) {
	const K = 4096
	keys := ringKeys(K)
	for _, n := range []int{4, 8, 15} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			members := ringMembers(n)
			before := NewRing(1, members)

			// Join: add a fresh member.
			joined := NewRing(2, append(append([]string{}, members...), "node99/ekv"))
			moved := 0
			for _, k := range keys {
				ob, oa := before.Owner(k), joined.Owner(k)
				if ob == oa {
					continue
				}
				moved++
				if oa != "node99/ekv" {
					t.Fatalf("join moved %q from %s to %s (not the joiner)", k, ob, oa)
				}
			}
			fair := (K + n - 1) / n // ceil(K/N), the expected move count
			bound := fair + 3*isqrt(fair)
			if moved > bound {
				t.Fatalf("join moved %d keys, bound ceil(%d/%d)+3σ=%d", moved, K, n, bound)
			}
			if moved == 0 {
				t.Fatal("join moved no keys — joiner owns nothing")
			}

			// Leave: remove one existing member.
			leaver := members[n/2]
			rest := make([]string, 0, n-1)
			for _, m := range members {
				if m != leaver {
					rest = append(rest, m)
				}
			}
			after := NewRing(3, rest)
			moved, held := 0, 0
			for _, k := range keys {
				ob, oa := before.Owner(k), after.Owner(k)
				if ob == leaver {
					held++
				}
				if ob == oa {
					continue
				}
				moved++
				if ob != leaver {
					t.Fatalf("leave moved %q owned by survivor %s (to %s)", k, ob, oa)
				}
			}
			// Exact minimality: everything the leaver held moves,
			// nothing else does.
			if moved != held {
				t.Fatalf("leave moved %d keys but leaver held %d", moved, held)
			}
			if moved > bound {
				t.Fatalf("leave moved %d keys, bound %d", moved, bound)
			}
		})
	}
}

// isqrt is the integer square root (for the 3-sigma slack).
func isqrt(n int) int {
	x := n
	for y := (x + 1) / 2; y < x; y = (x + n/x) / 2 {
		x = y
	}
	return x
}

// TestRingOwnerZeroAlloc pins the routing hot path at zero allocations
// per lookup, alongside the shardFor pin, so bench-gate regressions on
// either path fail loudly.
func TestRingOwnerZeroAlloc(t *testing.T) {
	r := NewRing(1, ringMembers(16))
	key := []byte("dataset/run0001/event000042")
	if n := testing.AllocsPerRun(200, func() { _ = r.Owner(key) }); n != 0 {
		t.Fatalf("Ring.Owner allocates %.1f per call, want 0", n)
	}
}

// TestShardForZeroAlloc pins the shardedDB.shardFor bugfix: the old
// implementation allocated a hash.Hash32 per call on the Put/Get/Delete
// hot path.
func TestShardForZeroAlloc(t *testing.T) {
	d := newShardedDB("pin")
	key := []byte("dataset/run0001/event000042")
	if n := testing.AllocsPerRun(200, func() { _ = d.shardFor(key) }); n != 0 {
		t.Fatalf("shardFor allocates %.1f per call, want 0", n)
	}
	// And the routing stays stable: same key, same shard, all shards
	// reachable.
	hit := map[*shard]bool{}
	for _, k := range ringKeys(1024) {
		s := d.shardFor(k)
		if s != d.shardFor(k) {
			t.Fatal("shardFor not deterministic")
		}
		hit[s] = true
	}
	if len(hit) != numShards {
		t.Fatalf("shardFor covered %d of %d shards", len(hit), numShards)
	}
}
