package kv

import (
	"bytes"
	"sort"
	"sync"
)

// lsmDB is a simplified log-structured merge store: writes go to a
// sorted in-memory memtable; when the memtable exceeds its budget it is
// frozen into an immutable sorted run, and runs are compacted when too
// many accumulate. Reads merge the memtable and runs newest-first. This
// mirrors the write path shape of LevelDB (the paper's alternative SDSKV
// backend) at in-memory scale.
//
// Values are stored with a one-byte liveness prefix so deletions can be
// represented as tombstones that shadow older runs.
type lsmDB struct {
	name string

	mu       sync.RWMutex
	mem      *btree
	runs     []sortedRun // newest last
	closed   bool
	memLimit int
	maxRuns  int
}

type sortedRun struct {
	keys [][]byte
	vals [][]byte // wrapped values (liveness prefix)
}

const (
	markLive      byte = 0
	markTombstone byte = 1
)

func wrapLive(v []byte) []byte { return append([]byte{markLive}, v...) }

// unwrap returns the user value and whether the record is live.
func unwrap(w []byte) ([]byte, bool) {
	if len(w) == 0 || w[0] == markTombstone {
		return nil, false
	}
	return w[1:], true
}

func newLSMDB(name string) *lsmDB {
	return &lsmDB{
		name:     name,
		mem:      newBTree(),
		memLimit: 1024,
		maxRuns:  8,
	}
}

func (d *lsmDB) Name() string           { return d.name }
func (d *lsmDB) Backend() string        { return "leveldb" }
func (d *lsmDB) ConcurrentWrites() bool { return false }

func (d *lsmDB) Put(key, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.mem.put(key, wrapLive(value))
	if d.mem.size >= d.memLimit {
		d.freeze()
	}
	return nil
}

// freeze turns the memtable into an immutable run; compacts if needed.
// Caller holds the write lock.
func (d *lsmDB) freeze() {
	run := sortedRun{
		keys: make([][]byte, 0, d.mem.size),
		vals: make([][]byte, 0, d.mem.size),
	}
	d.mem.scan(nil, func(k, v []byte) bool {
		run.keys = append(run.keys, k)
		run.vals = append(run.vals, v)
		return true
	})
	d.runs = append(d.runs, run)
	d.mem = newBTree()
	d.maybeCompact()
}

// maybeCompact performs size-tiered compaction: whenever the newest
// runs include maxRuns of similar (within 2x) size, they are merged into
// one. Merging equals-sized tiers keeps the total write amplification
// O(log n) per key instead of the O(n) of merge-everything-every-time.
// Caller holds the write lock.
func (d *lsmDB) maybeCompact() {
	for {
		n := len(d.runs)
		if n <= d.maxRuns {
			return
		}
		// Find the longest suffix of runs whose sizes stay within 2x of
		// the (growing) tier size; merging the whole suffix absorbs any
		// smaller runs beneath newer merged ones, keeping run sizes
		// monotone oldest-largest.
		tier := len(d.runs[n-1].keys)
		lo := n - 1
		for lo > 0 && len(d.runs[lo-1].keys) <= 2*tier {
			lo--
			if t := len(d.runs[lo].keys); t > tier {
				tier = t
			}
		}
		if n-lo < 2 {
			return
		}
		merged := d.mergeRuns(d.runs[lo:], lo == 0)
		d.runs = append(d.runs[:lo], merged)
	}
}

// mergeRuns k-way merges runs (oldest first; newer entries shadow
// older). Tombstones are dropped only when merging down to the oldest
// level (dropBase), since deeper runs may still hold shadowed values.
func (d *lsmDB) mergeRuns(runs []sortedRun, dropBase bool) sortedRun {
	idx := make([]int, len(runs))
	out := sortedRun{}
	for {
		// Find the smallest key among run heads; newest run wins ties.
		var best []byte
		bestRun := -1
		for r := range runs {
			if idx[r] >= len(runs[r].keys) {
				continue
			}
			k := runs[r].keys[idx[r]]
			if best == nil || bytes.Compare(k, best) < 0 {
				best = k
				bestRun = r
			} else if bytes.Equal(k, best) && r > bestRun {
				bestRun = r
			}
		}
		if bestRun == -1 {
			return out
		}
		w := runs[bestRun].vals[idx[bestRun]]
		for r := range runs {
			if idx[r] < len(runs[r].keys) && bytes.Equal(runs[r].keys[idx[r]], best) {
				idx[r]++
			}
		}
		if _, live := unwrap(w); !live && dropBase {
			continue // tombstone reaching the base level: gone for good
		}
		out.keys = append(out.keys, best)
		out.vals = append(out.vals, w)
	}
}

func (r *sortedRun) find(key []byte) ([]byte, bool) {
	idx := sort.Search(len(r.keys), func(i int) bool {
		return bytes.Compare(r.keys[i], key) >= 0
	})
	if idx < len(r.keys) && bytes.Equal(r.keys[idx], key) {
		return r.vals[idx], true
	}
	return nil, false
}

// lookup returns the newest wrapped record for key, if any. Caller
// holds a lock.
func (d *lsmDB) lookup(key []byte) ([]byte, bool) {
	if w, ok := d.mem.get(key); ok {
		return w, true
	}
	for i := len(d.runs) - 1; i >= 0; i-- {
		if w, ok := d.runs[i].find(key); ok {
			return w, true
		}
	}
	return nil, false
}

func (d *lsmDB) Get(key []byte) ([]byte, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	w, ok := d.lookup(key)
	if !ok {
		return nil, false, nil
	}
	v, live := unwrap(w)
	if !live {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (d *lsmDB) Delete(key []byte) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	var existed bool
	if w, ok := d.lookup(key); ok {
		_, existed = unwrap(w)
	}
	d.mem.put(key, []byte{markTombstone})
	if d.mem.size >= d.memLimit {
		d.freeze()
	}
	return existed, nil
}

func (d *lsmDB) List(start []byte, max int) ([]Pair, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	if max <= 0 {
		return nil, nil
	}
	// Merge memtable and runs: newest source wins per key.
	seen := make(map[string][]byte)
	keys := make([]string, 0)
	add := func(k, w []byte) {
		s := string(k)
		if _, dup := seen[s]; !dup {
			keys = append(keys, s)
			seen[s] = w
		}
	}
	d.mem.scan(start, func(k, w []byte) bool { add(k, w); return true })
	for i := len(d.runs) - 1; i >= 0; i-- {
		run := &d.runs[i]
		idx := sort.Search(len(run.keys), func(j int) bool {
			return bytes.Compare(run.keys[j], start) >= 0
		})
		for ; idx < len(run.keys); idx++ {
			add(run.keys[idx], run.vals[idx])
		}
	}
	sort.Strings(keys)
	out := make([]Pair, 0, max)
	for _, s := range keys {
		v, live := unwrap(seen[s])
		if !live {
			continue
		}
		out = append(out, Pair{
			Key:   []byte(s),
			Value: append([]byte(nil), v...),
		})
		if len(out) == max {
			break
		}
	}
	return out, nil
}

func (d *lsmDB) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	seen := make(map[string][]byte)
	d.mem.scan(nil, func(k, w []byte) bool { seen[string(k)] = w; return true })
	for i := len(d.runs) - 1; i >= 0; i-- {
		run := &d.runs[i]
		for j, k := range run.keys {
			if _, dup := seen[string(k)]; !dup {
				seen[string(k)] = run.vals[j]
			}
		}
	}
	n := 0
	for _, w := range seen {
		if _, live := unwrap(w); live {
			n++
		}
	}
	return n
}

func (d *lsmDB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}
