package kv

import (
	"sort"
	"sync"
)

// shardedDB is a hash map partitioned across independently locked
// shards, so concurrent Put calls on different keys proceed in parallel.
// Listing is supported but requires a full sort, making it best for
// point workloads. It is the "parallel insertion capable" counterpoint
// to the map backend in the Figure 10 ablation.
type shardedDB struct {
	name   string
	shards [numShards]shard
	closed sync.Once
	dead   bool
	mu     sync.RWMutex // guards dead only
}

const numShards = 16

type shard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

func newShardedDB(name string) *shardedDB {
	d := &shardedDB{name: name}
	for i := range d.shards {
		d.shards[i].m = make(map[string][]byte)
	}
	return d
}

func (d *shardedDB) Name() string           { return d.name }
func (d *shardedDB) Backend() string        { return "shardedmap" }
func (d *shardedDB) ConcurrentWrites() bool { return true }

// shardFor maps a key to its shard with an inlined FNV-1a loop: this is
// on every Put/Get/Delete, and a hash.Hash32 allocated per call was the
// dominant allocation of the hot path (pinned at zero allocs by
// TestShardForZeroAlloc and the perfgate route_lookup scenario).
func (d *shardedDB) shardFor(key []byte) *shard {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return &d.shards[h%numShards]
}

func (d *shardedDB) isClosed() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dead
}

func (d *shardedDB) Put(key, value []byte) error {
	if d.isClosed() {
		return ErrClosed
	}
	s := d.shardFor(key)
	s.mu.Lock()
	s.m[string(key)] = append([]byte(nil), value...)
	s.mu.Unlock()
	return nil
}

func (d *shardedDB) Get(key []byte) ([]byte, bool, error) {
	if d.isClosed() {
		return nil, false, ErrClosed
	}
	s := d.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[string(key)]
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (d *shardedDB) Delete(key []byte) (bool, error) {
	if d.isClosed() {
		return false, ErrClosed
	}
	s := d.shardFor(key)
	s.mu.Lock()
	_, ok := s.m[string(key)]
	delete(s.m, string(key))
	s.mu.Unlock()
	return ok, nil
}

func (d *shardedDB) List(start []byte, max int) ([]Pair, error) {
	if d.isClosed() {
		return nil, ErrClosed
	}
	if max <= 0 {
		return nil, nil
	}
	keys := make([]string, 0)
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for k := range s.m {
			if k >= string(start) {
				keys = append(keys, k)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(keys)
	if len(keys) > max {
		keys = keys[:max]
	}
	out := make([]Pair, 0, len(keys))
	for _, k := range keys {
		s := d.shardFor([]byte(k))
		s.mu.RLock()
		v, ok := s.m[k]
		if ok {
			out = append(out, Pair{Key: []byte(k), Value: append([]byte(nil), v...)})
		}
		s.mu.RUnlock()
	}
	return out, nil
}

func (d *shardedDB) Len() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

func (d *shardedDB) Close() error {
	d.mu.Lock()
	d.dead = true
	d.mu.Unlock()
	return nil
}
