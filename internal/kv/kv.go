// Package kv provides the key-value storage backends used by the SDSKV
// microservice, standing in for the LevelDB / BerkeleyDB / std::map
// backends of the paper (§V-C). Three engines with different concurrency
// and ordering properties are provided:
//
//   - "map": an ordered in-memory store backed by a B-tree, like the
//     paper's std::map backend. It does not support concurrent writers —
//     the property behind the write-serialization pathology of the
//     paper's Figure 10 — so the service layer guards it with a single
//     ULT mutex.
//   - "leveldb": an LSM-flavored store (sorted memtable plus immutable
//     frozen runs merged on read), also single-writer.
//   - "shardedmap": a hash map sharded across independently locked
//     buckets, supporting parallel insertion; unordered listing. Used by
//     the ablation benchmarks to show the Figure 10 pathology vanish.
package kv

import (
	"errors"
	"fmt"
)

// Errors returned by backends.
var (
	ErrClosed         = errors.New("kv: database closed")
	ErrUnknownBackend = errors.New("kv: unknown backend")
)

// Pair is one key-value record.
type Pair struct {
	Key   []byte
	Value []byte
}

// DB is one key-value database instance.
type DB interface {
	// Name returns the database's instance name.
	Name() string
	// Backend returns the engine identifier ("map", "leveldb", ...).
	Backend() string
	// Put stores value under key, replacing any previous value.
	Put(key, value []byte) error
	// Get retrieves the value stored under key.
	Get(key []byte) (value []byte, found bool, err error)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) (bool, error)
	// List returns up to max pairs with keys >= start, in key order for
	// ordered engines (insertion-agnostic order for unordered ones).
	List(start []byte, max int) ([]Pair, error)
	// Len reports the number of stored pairs.
	Len() int
	// ConcurrentWrites reports whether parallel Put calls are safe
	// without external serialization.
	ConcurrentWrites() bool
	// Close releases the database.
	Close() error
}

// Open creates a database of the named backend.
func Open(backend, name string) (DB, error) {
	switch backend {
	case "map":
		return newBTreeDB(name, "map"), nil
	case "leveldb":
		return newLSMDB(name), nil
	case "shardedmap":
		return newShardedDB(name), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownBackend, backend)
	}
}

// Backends lists the available engine identifiers.
func Backends() []string { return []string{"map", "leveldb", "shardedmap"} }
