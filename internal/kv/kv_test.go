package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func allBackends(t *testing.T) []DB {
	t.Helper()
	var dbs []DB
	for _, b := range Backends() {
		db, err := Open(b, "test-"+b)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		dbs = append(dbs, db)
	}
	return dbs
}

func TestOpenUnknownBackend(t *testing.T) {
	if _, err := Open("bogus", "x"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestBasicPutGetDeleteAllBackends(t *testing.T) {
	for _, db := range allBackends(t) {
		t.Run(db.Backend(), func(t *testing.T) {
			if err := db.Put([]byte("a"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := db.Get([]byte("a"))
			if err != nil || !ok || string(v) != "1" {
				t.Fatalf("Get = %q %v %v", v, ok, err)
			}
			// Overwrite.
			db.Put([]byte("a"), []byte("2"))
			v, _, _ = db.Get([]byte("a"))
			if string(v) != "2" {
				t.Fatalf("overwrite failed: %q", v)
			}
			if db.Len() != 1 {
				t.Fatalf("Len = %d", db.Len())
			}
			// Missing key.
			if _, ok, _ := db.Get([]byte("zz")); ok {
				t.Fatal("missing key found")
			}
			// Delete.
			was, err := db.Delete([]byte("a"))
			if err != nil || !was {
				t.Fatalf("Delete = %v %v", was, err)
			}
			if _, ok, _ := db.Get([]byte("a")); ok {
				t.Fatal("deleted key still present")
			}
			if was, _ := db.Delete([]byte("a")); was {
				t.Fatal("double delete reported present")
			}
			if db.Len() != 0 {
				t.Fatalf("Len after delete = %d", db.Len())
			}
		})
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	for _, db := range allBackends(t) {
		v0 := []byte{}
		if err := db.Put([]byte("empty"), v0); err != nil {
			t.Fatal(err)
		}
		v, ok, err := db.Get([]byte("empty"))
		if err != nil || !ok || len(v) != 0 {
			t.Fatalf("%s: empty value: %q %v %v", db.Backend(), v, ok, err)
		}
	}
}

func TestListOrderedBackends(t *testing.T) {
	for _, db := range allBackends(t) {
		keys := []string{"b", "d", "a", "c", "e"}
		for _, k := range keys {
			db.Put([]byte(k), []byte("v"+k))
		}
		pairs, err := db.List([]byte("b"), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 3 {
			t.Fatalf("%s: List = %d pairs", db.Backend(), len(pairs))
		}
		want := []string{"b", "c", "d"}
		for i, p := range pairs {
			if string(p.Key) != want[i] {
				t.Fatalf("%s: List keys = %v", db.Backend(), pairs)
			}
			if string(p.Value) != "v"+want[i] {
				t.Fatalf("%s: value mismatch: %q", db.Backend(), p.Value)
			}
		}
		// max <= 0 returns nothing.
		if pairs, _ := db.List(nil, 0); pairs != nil {
			t.Fatalf("%s: List(0) = %v", db.Backend(), pairs)
		}
	}
}

func TestClosedBackendErrors(t *testing.T) {
	for _, b := range Backends() {
		db, _ := Open(b, "closing")
		db.Close()
		if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
			t.Fatalf("%s: Put after close = %v", b, err)
		}
		if _, _, err := db.Get([]byte("k")); err != ErrClosed {
			t.Fatalf("%s: Get after close = %v", b, err)
		}
		if _, err := db.Delete([]byte("k")); err != ErrClosed {
			t.Fatalf("%s: Delete after close = %v", b, err)
		}
		if _, err := db.List(nil, 1); err != ErrClosed {
			t.Fatalf("%s: List after close = %v", b, err)
		}
	}
}

// TestBackendsMatchModel drives every backend against a model map with a
// random operation sequence and demands identical visible state.
func TestBackendsMatchModel(t *testing.T) {
	for _, db := range allBackends(t) {
		t.Run(db.Backend(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			model := make(map[string]string)
			for op := 0; op < 5000; op++ {
				k := fmt.Sprintf("key-%03d", rng.Intn(300))
				switch rng.Intn(10) {
				case 0, 1: // delete
					was, err := db.Delete([]byte(k))
					if err != nil {
						t.Fatal(err)
					}
					_, inModel := model[k]
					if was != inModel {
						t.Fatalf("op %d: delete(%s) = %v, model %v", op, k, was, inModel)
					}
					delete(model, k)
				case 2, 3: // get
					v, ok, err := db.Get([]byte(k))
					if err != nil {
						t.Fatal(err)
					}
					mv, inModel := model[k]
					if ok != inModel || (ok && string(v) != mv) {
						t.Fatalf("op %d: get(%s) = %q/%v, model %q/%v", op, k, v, ok, mv, inModel)
					}
				default: // put
					v := fmt.Sprintf("val-%d", op)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				}
			}
			if db.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", db.Len(), len(model))
			}
			// Full listing matches sorted model contents.
			pairs, err := db.List(nil, len(model)+10)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != len(model) {
				t.Fatalf("List = %d, model %d", len(pairs), len(model))
			}
			keys := make([]string, 0, len(model))
			for k := range model {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for i, k := range keys {
				if string(pairs[i].Key) != k || string(pairs[i].Value) != model[k] {
					t.Fatalf("List[%d] = %q=%q, want %q=%q",
						i, pairs[i].Key, pairs[i].Value, k, model[k])
				}
			}
		})
	}
}

// TestBTreeSplitsDeep inserts enough ordered and reverse-ordered keys to
// force multiple levels of splits.
func TestBTreeSplitsDeep(t *testing.T) {
	for _, order := range []string{"asc", "desc", "rand"} {
		tr := newBTree()
		const n = 10_000
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		switch order {
		case "desc":
			for i := range perm {
				perm[i] = n - 1 - i
			}
		case "rand":
			rand.New(rand.NewSource(7)).Shuffle(n, func(i, j int) {
				perm[i], perm[j] = perm[j], perm[i]
			})
		}
		for _, i := range perm {
			k := []byte(fmt.Sprintf("%08d", i))
			tr.put(k, k)
		}
		if tr.size != n {
			t.Fatalf("%s: size = %d", order, tr.size)
		}
		for i := 0; i < n; i += 97 {
			k := []byte(fmt.Sprintf("%08d", i))
			v, ok := tr.get(k)
			if !ok || !bytes.Equal(v, k) {
				t.Fatalf("%s: get(%s) = %q %v", order, k, v, ok)
			}
		}
		// Ordered full scan.
		prev := []byte(nil)
		count := 0
		tr.scan(nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("%s: scan out of order: %q then %q", order, prev, k)
			}
			prev = append(prev[:0], k...)
			count++
			return true
		})
		if count != n {
			t.Fatalf("%s: scan visited %d", order, count)
		}
	}
}

func TestBTreePropertyAgainstMap(t *testing.T) {
	prop := func(ops []struct {
		Key byte
		Val uint16
		Del bool
	}) bool {
		tr := newBTree()
		model := map[byte][]byte{}
		for _, op := range ops {
			k := []byte{op.Key}
			if op.Del {
				tr.delete(k)
				delete(model, op.Key)
			} else {
				v := []byte(fmt.Sprint(op.Val))
				tr.put(k, v)
				model[op.Key] = v
			}
		}
		if tr.size != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tr.get([]byte{k})
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLSMFreezeAndCompact(t *testing.T) {
	db := newLSMDB("lsm")
	// Push far past the memtable limit to force freezes and compaction.
	const n = 20_000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("%06d", i))
		if err := db.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if len(db.runs) == 0 {
		t.Fatal("no runs frozen")
	}
	if db.Len() != n {
		t.Fatalf("Len = %d, want %d", db.Len(), n)
	}
	// Values visible across runs.
	for i := 0; i < n; i += 1313 {
		k := []byte(fmt.Sprintf("%06d", i))
		v, ok, _ := db.Get(k)
		if !ok || !bytes.Equal(v, k) {
			t.Fatalf("Get(%s) = %q %v", k, v, ok)
		}
	}
	// Delete a key that lives in an old run; tombstone must shadow it.
	victim := []byte("000000")
	if was, _ := db.Delete(victim); !was {
		t.Fatal("delete of frozen key reported absent")
	}
	if _, ok, _ := db.Get(victim); ok {
		t.Fatal("tombstone did not shadow old run")
	}
	if db.Len() != n-1 {
		t.Fatalf("Len after delete = %d", db.Len())
	}
}

func TestShardedConcurrentWriters(t *testing.T) {
	db := newShardedDB("conc")
	if !db.ConcurrentWrites() {
		t.Fatal("sharded map must report concurrent write support")
	}
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				if err := db.Put([]byte(k), []byte(k)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", db.Len(), writers*per)
	}
}

func TestSerialBackendsDeclareIt(t *testing.T) {
	for _, b := range []string{"map", "leveldb"} {
		db, _ := Open(b, "x")
		if db.ConcurrentWrites() {
			t.Fatalf("%s claims concurrent writes", b)
		}
		db.Close()
	}
}

func TestLSMSizeTieredCompaction(t *testing.T) {
	db := newLSMDB("tiers")
	// Insert well past several freeze cycles; size-tiered compaction
	// must keep the run count bounded (tiers of geometrically growing
	// size: O(maxRuns * log(n/memLimit)) runs).
	const n = 100_000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("%07d", i))
		if err := db.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	bound := db.maxRuns * 20 // generous log bound
	if len(db.runs) > bound {
		t.Fatalf("runs = %d, want <= %d (compaction not bounding tiers)", len(db.runs), bound)
	}
	if db.Len() != n {
		t.Fatalf("Len = %d, want %d", db.Len(), n)
	}
	// Runs grow roughly oldest-largest.
	for i := 0; i+1 < len(db.runs); i++ {
		if len(db.runs[i].keys) < len(db.runs[i+1].keys)/4 {
			t.Fatalf("run %d (%d keys) far smaller than newer run %d (%d keys)",
				i, len(db.runs[i].keys), i+1, len(db.runs[i+1].keys))
		}
	}
	// Tombstones survive intermediate merges and shadow correctly.
	victim := []byte("0000000")
	if was, _ := db.Delete(victim); !was {
		t.Fatal("delete reported absent")
	}
	for i := 0; i < 3000; i++ { // force more freezes/compactions
		k := []byte(fmt.Sprintf("x%06d", i))
		db.Put(k, k)
	}
	if _, ok, _ := db.Get(victim); ok {
		t.Fatal("deleted key resurfaced after tiered compaction")
	}
}
