package kv

import (
	"fmt"
	"testing"
)

func benchPut(b *testing.B, backend string) {
	db, err := Open(backend, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 128)
	b.SetBytes(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%09d", i))
		if err := db.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGet(b *testing.B, backend string) {
	db, err := Open(backend, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 10_000
	val := make([]byte, 128)
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%09d", i%n))
		if _, ok, err := db.Get(key); err != nil || !ok {
			b.Fatalf("get: %v %v", ok, err)
		}
	}
}

func BenchmarkMapPut(b *testing.B)     { benchPut(b, "map") }
func BenchmarkMapGet(b *testing.B)     { benchGet(b, "map") }
func BenchmarkLevelDBPut(b *testing.B) { benchPut(b, "leveldb") }
func BenchmarkLevelDBGet(b *testing.B) { benchGet(b, "leveldb") }
func BenchmarkShardedPut(b *testing.B) { benchPut(b, "shardedmap") }
func BenchmarkShardedGet(b *testing.B) { benchGet(b, "shardedmap") }

// BenchmarkMapList measures the prefix scan behind sdskv_list_keyvals.
func BenchmarkMapList(b *testing.B) {
	db, _ := Open("map", "bench")
	defer db.Close()
	for i := 0; i < 10_000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.List([]byte("key-000005"), 64); err != nil {
			b.Fatal(err)
		}
	}
}
