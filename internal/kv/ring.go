package kv

import "sort"

// Ring is a rendezvous-hash (highest-random-weight) routing table over
// a set of KV nodes. Every party that holds the same member set — the
// nodes themselves and every client — independently computes the same
// owner for a key, with no coordination and no token metadata to ship
// around. Rendezvous hashing is minimally disruptive under churn: when
// a node joins, only the keys it now wins move (≤ ~K/N of them); when a
// node leaves, only its own keys redistribute — the property the
// migration plane (services/ekv) and TestRingMinimalDisruption rely on.
//
// A Ring is immutable once built; routing under churn swaps whole rings
// (built from versioned ssg views), never mutates one in place.
type Ring struct {
	version uint64
	members []string // sorted
	seeds   []uint64 // precomputed per-member hash seed, same order
}

// NewRing builds a ring over the member addresses at a view version.
// The input slice is copied; order does not matter.
func NewRing(version uint64, members []string) *Ring {
	ms := append([]string{}, members...)
	sort.Strings(ms)
	r := &Ring{version: version, members: ms, seeds: make([]uint64, len(ms))}
	for i, m := range ms {
		r.seeds[i] = fnv64a(m)
	}
	return r
}

// Version is the membership-view version this ring was built from.
func (r *Ring) Version() uint64 { return r.version }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Members returns the sorted member list. Read-only: the slice is the
// ring's own immutable backing store.
func (r *Ring) Members() []string { return r.members }

// Has reports whether addr is a ring member.
func (r *Ring) Has(addr string) bool {
	i := sort.SearchStrings(r.members, addr)
	return i < len(r.members) && r.members[i] == addr
}

// Owner returns the member that owns key, or "" for an empty ring.
// Zero allocations: this sits on the routing hot path of every client
// op and every server-side ownership check.
func (r *Ring) Owner(key []byte) string {
	i := r.ownerIndex(key)
	if i < 0 {
		return ""
	}
	return r.members[i]
}

// OwnerIndex returns the owning member's index, or -1 for an empty
// ring.
func (r *Ring) OwnerIndex(key []byte) int { return r.ownerIndex(key) }

func (r *Ring) ownerIndex(key []byte) int {
	if len(r.members) == 0 {
		return -1
	}
	// FNV-1a over the key once, then mix with each member's
	// precomputed seed: score(m, k) = mix(seed(m) ^ hash(k)).
	var kh uint64 = 1469598103934665603
	for _, b := range key {
		kh ^= uint64(b)
		kh *= 1099511628211
	}
	best, bestScore := 0, mix64(r.seeds[0]^kh)
	for i := 1; i < len(r.seeds); i++ {
		if s := mix64(r.seeds[i] ^ kh); s > bestScore ||
			(s == bestScore && r.members[i] < r.members[best]) {
			best, bestScore = i, s
		}
	}
	return best
}

// fnv64a hashes a string with FNV-1a.
func fnv64a(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the SplitMix64 finalizer: breaks up FNV's weak low-bit
// avalanche so per-member scores are independent.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
