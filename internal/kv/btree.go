package kv

import (
	"bytes"
	"sync"
)

// btree is an in-memory B-tree keyed by byte slices. Fan-out is fixed;
// keys and values are copied on insertion so callers may reuse buffers.
type btree struct {
	root  *bnode
	size  int
	order int // max children per internal node
}

type bnode struct {
	// keys[i] separates children[i] (< keys[i]) from children[i+1].
	// Leaves have no children; keys and vals align.
	keys     [][]byte
	vals     [][]byte // leaves only
	children []*bnode
}

func (n *bnode) leaf() bool { return len(n.children) == 0 }

const defaultOrder = 32

func newBTree() *btree {
	return &btree{root: &bnode{}, order: defaultOrder}
}

// maxKeys is the split threshold for both leaves and internal nodes.
func (t *btree) maxKeys() int { return t.order - 1 }

// get returns the value for key.
func (t *btree) get(key []byte) ([]byte, bool) {
	n := t.root
	for {
		idx, eq := n.search(key)
		if n.leaf() {
			if eq {
				return n.vals[idx], true
			}
			return nil, false
		}
		if eq {
			idx++ // equal separator: key lives in the right subtree
		}
		n = n.children[idx]
	}
}

// search finds the first index with keys[idx] >= key; eq reports an
// exact match at idx.
func (n *bnode) search(key []byte) (idx int, eq bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	eq = lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
	return lo, eq
}

// put inserts or replaces, reporting whether a new key was added.
func (t *btree) put(key, value []byte) bool {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	if len(t.root.keys) > t.maxKeys() {
		t.growRoot()
	}
	added := t.insert(t.root, k, v)
	if len(t.root.keys) > t.maxKeys() {
		t.growRoot()
	}
	if added {
		t.size++
	}
	return added
}

// growRoot splits an overfull root, raising the tree height.
func (t *btree) growRoot() {
	old := t.root
	mid, left, right := split(old)
	t.root = &bnode{
		keys:     [][]byte{mid},
		children: []*bnode{left, right},
	}
}

// split divides an overfull node into two halves around its middle key.
// For leaves the middle key stays in the right half (B+-tree style, so
// its value is not lost); for internal nodes it moves up.
func split(n *bnode) (mid []byte, left, right *bnode) {
	m := len(n.keys) / 2
	mid = n.keys[m]
	if n.leaf() {
		left = &bnode{
			keys: append([][]byte(nil), n.keys[:m]...),
			vals: append([][]byte(nil), n.vals[:m]...),
		}
		right = &bnode{
			keys: append([][]byte(nil), n.keys[m:]...),
			vals: append([][]byte(nil), n.vals[m:]...),
		}
		return mid, left, right
	}
	left = &bnode{
		keys:     append([][]byte(nil), n.keys[:m]...),
		children: append([]*bnode(nil), n.children[:m+1]...),
	}
	right = &bnode{
		keys:     append([][]byte(nil), n.keys[m+1:]...),
		children: append([]*bnode(nil), n.children[m+1:]...),
	}
	return mid, left, right
}

// insert adds key/value beneath n, splitting children preemptively so a
// single downward pass suffices.
func (t *btree) insert(n *bnode, key, value []byte) bool {
	for {
		idx, eq := n.search(key)
		if n.leaf() {
			if eq {
				n.vals[idx] = value
				return false
			}
			n.keys = append(n.keys, nil)
			copy(n.keys[idx+1:], n.keys[idx:])
			n.keys[idx] = key
			n.vals = append(n.vals, nil)
			copy(n.vals[idx+1:], n.vals[idx:])
			n.vals[idx] = value
			return true
		}
		if eq {
			idx++
		}
		child := n.children[idx]
		if len(child.keys) > t.maxKeys() {
			mid, left, right := split(child)
			n.keys = append(n.keys, nil)
			copy(n.keys[idx+1:], n.keys[idx:])
			n.keys[idx] = mid
			n.children = append(n.children, nil)
			copy(n.children[idx+2:], n.children[idx+1:])
			n.children[idx] = left
			n.children[idx+1] = right
			if bytes.Compare(key, mid) >= 0 {
				idx++
			}
			child = n.children[idx]
		}
		n = child
	}
}

// delete removes key, reporting whether it was present. Nodes are not
// rebalanced on delete (acceptable for the workloads here: deletions are
// rare and lookups remain correct, only density degrades).
func (t *btree) delete(key []byte) bool {
	n := t.root
	for {
		idx, eq := n.search(key)
		if n.leaf() {
			if !eq {
				return false
			}
			n.keys = append(n.keys[:idx], n.keys[idx+1:]...)
			n.vals = append(n.vals[:idx], n.vals[idx+1:]...)
			t.size--
			return true
		}
		if eq {
			idx++
		}
		n = n.children[idx]
	}
}

// scan visits pairs with key >= start in order until fn returns false.
func (t *btree) scan(start []byte, fn func(k, v []byte) bool) {
	t.scanNode(t.root, start, fn)
}

func (t *btree) scanNode(n *bnode, start []byte, fn func(k, v []byte) bool) bool {
	idx, _ := n.search(start)
	if n.leaf() {
		for ; idx < len(n.keys); idx++ {
			if !fn(n.keys[idx], n.vals[idx]) {
				return false
			}
		}
		return true
	}
	for ; idx <= len(n.keys); idx++ {
		if idx < len(n.children) {
			if !t.scanNode(n.children[idx], start, fn) {
				return false
			}
		}
	}
	return true
}

// btreeDB wraps a btree behind the DB interface. It is internally
// thread-safe for Go-level correctness but declares ConcurrentWrites
// false: like std::map in SDSKV, writes are logically serialized (one
// writer makes progress at a time), which the service layer enforces
// with a ULT mutex so the serialization is visible to the tasking layer.
type btreeDB struct {
	name    string
	backend string
	mu      sync.RWMutex
	t       *btree
	closed  bool
}

func newBTreeDB(name, backend string) *btreeDB {
	return &btreeDB{name: name, backend: backend, t: newBTree()}
}

func (d *btreeDB) Name() string           { return d.name }
func (d *btreeDB) Backend() string        { return d.backend }
func (d *btreeDB) ConcurrentWrites() bool { return false }

func (d *btreeDB) Put(key, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.t.put(key, value)
	return nil
}

func (d *btreeDB) Get(key []byte) ([]byte, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	v, ok := d.t.get(key)
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (d *btreeDB) Delete(key []byte) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	return d.t.delete(key), nil
}

func (d *btreeDB) List(start []byte, max int) ([]Pair, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	if max <= 0 {
		return nil, nil
	}
	out := make([]Pair, 0, max)
	d.t.scan(start, func(k, v []byte) bool {
		out = append(out, Pair{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		return len(out) < max
	})
	return out, nil
}

func (d *btreeDB) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.size
}

func (d *btreeDB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}
