// Package na is a network abstraction layer modeled on the OpenFabrics
// Interfaces (OFI/libfabric) as used by Mercury. It provides addressable
// endpoints on a simulated fabric with a configurable latency/bandwidth
// cost model, two-sided messaging (expected and unexpected), one-sided
// RDMA get/put against registered memory, and per-endpoint completion
// queues drained in bounded batches.
//
// The fabric is in-process: "nodes" and "processes" are virtual, and the
// cost model charges lower latency between endpoints on the same node.
// This substitutes for the Cray Aries network of the paper's testbed; the
// phenomenon the paper studies at this layer — completion events backing
// up in the OFI queue when the progress loop is starved or its read batch
// (OFI_max_events) is too small — depends only on the bounded-batch
// draining discipline, which is preserved exactly.
package na

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by fabric operations.
var (
	ErrUnreachable = errors.New("na: endpoint unreachable")
	ErrClosed      = errors.New("na: endpoint closed")
	ErrBadMemory   = errors.New("na: invalid memory handle")
	ErrBounds      = errors.New("na: RDMA access out of bounds")
)

// Config is the fabric cost model.
type Config struct {
	// LatencyLocal is the one-way latency between endpoints on the same
	// node; LatencyRemote between endpoints on different nodes.
	LatencyLocal  time.Duration
	LatencyRemote time.Duration
	// Bandwidth is the payload streaming rate in bytes per second used
	// for both messages and RDMA. Zero means infinite.
	Bandwidth float64
	// CQDepth bounds each endpoint's completion queue. Zero means a
	// generous default. Overflow events are counted, not dropped
	// silently.
	CQDepth int
}

// DefaultConfig is a fabric resembling a modern HPC interconnect scaled
// for simulation: ~1.5us local, ~8us remote latency, 10 GB/s.
func DefaultConfig() Config {
	return Config{
		LatencyLocal:  1500 * time.Nanosecond,
		LatencyRemote: 8 * time.Microsecond,
		Bandwidth:     10e9,
		CQDepth:       1 << 16,
	}
}

// Fabric connects endpoints. It is safe for concurrent use.
type Fabric struct {
	cfg Config

	mu  sync.Mutex
	eps map[string]*Endpoint

	// faults is the hot-settable fault-injection plan (see fault.go);
	// nil means a healthy fabric with zero per-send overhead beyond the
	// pointer load.
	faults atomic.Pointer[faultState]

	// Fabric-wide injected-fault totals.
	faultDrops    atomic.Uint64
	faultDups     atomic.Uint64
	faultDelays   atomic.Uint64
	faultRefusals atomic.Uint64
}

// NewFabric creates a fabric with the given cost model.
func NewFabric(cfg Config) *Fabric {
	if cfg.CQDepth <= 0 {
		cfg.CQDepth = 1 << 16
	}
	return &Fabric{cfg: cfg, eps: make(map[string]*Endpoint)}
}

// Config returns the fabric cost model.
func (f *Fabric) Config() Config { return f.cfg }

// NewEndpoint registers an endpoint for a (virtual) process on a node.
// The returned endpoint's address is "node/name".
func (f *Fabric) NewEndpoint(node, name string) (*Endpoint, error) {
	addr := node + "/" + name
	ep := &Endpoint{
		fabric: f,
		addr:   addr,
		node:   node,
		cq:     newCompletionQueue(f.cfg.CQDepth),
		mem:    make(map[uint64][]byte),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.eps[addr]; dup {
		return nil, fmt.Errorf("na: duplicate endpoint %q", addr)
	}
	f.eps[addr] = ep
	return ep, nil
}

// lookup resolves an address to a live endpoint.
func (f *Fabric) lookup(addr string) (*Endpoint, error) {
	f.mu.Lock()
	ep := f.eps[addr]
	f.mu.Unlock()
	if ep == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	if ep.closed.Load() {
		return nil, fmt.Errorf("%w: %s", ErrClosed, addr)
	}
	return ep, nil
}

// delay computes the modeled transfer time for size bytes between nodes.
func (f *Fabric) delay(srcNode, dstNode string, size int) time.Duration {
	var d time.Duration
	if srcNode == dstNode {
		d = f.cfg.LatencyLocal
	} else {
		d = f.cfg.LatencyRemote
	}
	if f.cfg.Bandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / f.cfg.Bandwidth * float64(time.Second))
	}
	return d
}

// after schedules fn once the modeled delay has elapsed (RDMA path;
// message sends ride the per-destination sendChain instead). Work
// always goes through the runtime timer even for µs-scale modeled
// delays. On an idle host the timer wake granularity (~1ms) then acts
// as a *uniform* inflation of every hop's latency — a constant scale
// factor on the fabric, which preserves the relative behavior of the
// experiments. The alternative (immediate goroutine handoff for short
// delays) delivers faster but makes host scheduler contention, not the
// modeled fabric and progress-loop dynamics, the dominant effect on a
// small host — distorting exactly the phenomena the paper studies.
func after(d time.Duration, fn func()) {
	time.AfterFunc(d, fn)
}

// EventKind identifies a completion-queue event.
type EventKind int8

// Completion event kinds.
const (
	// EvRecv delivers an incoming message (request or response).
	EvRecv EventKind = iota
	// EvSendDone reports that a previously issued Send has completed.
	EvSendDone
	// EvRDMADone reports that a Get or Put initiated locally completed.
	EvRDMADone
	// EvError reports an asynchronous failure of a send or RDMA op.
	EvError
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvRecv:
		return "recv"
	case EvSendDone:
		return "send_done"
	case EvRDMADone:
		return "rdma_done"
	case EvError:
		return "error"
	default:
		return fmt.Sprintf("event(%d)", int8(k))
	}
}

// Message is a two-sided transfer unit.
type Message struct {
	From string
	To   string
	// Tag matches a message to a waiting operation on the receiver;
	// TagUnexpected marks a fresh request.
	Tag  uint64
	Data []byte
}

// TagUnexpected marks messages that start a new exchange (RPC requests).
const TagUnexpected = 0

// Event is a completion-queue entry.
type Event struct {
	Kind EventKind
	// Msg is set for EvRecv.
	Msg *Message
	// Ctx echoes the context value passed to Send/Get/Put for
	// EvSendDone, EvRDMADone and EvError.
	Ctx any
	// Err is set for EvError.
	Err error
	// Posted is when the event entered the queue; the residence time
	// until it is read is the t11->t12 gap of the paper.
	Posted time.Time
}

// Endpoint is one addressable fabric attachment.
type Endpoint struct {
	fabric *Fabric
	addr   string
	node   string
	closed atomic.Bool

	cq *completionQueue

	memMu  sync.Mutex
	mem    map[uint64][]byte
	nextID atomic.Uint64

	// chainMu guards per-destination delivery chains that preserve
	// point-to-point message ordering (as HPC fabrics do). Each chain
	// owns a FIFO of pending deliveries and one reusable timer, so a
	// steady-state send costs no timer, channel, or closure allocations.
	chainMu sync.Mutex
	chains  map[string]*sendChain

	sends atomic.Uint64
	recvs atomic.Uint64
	rdmas atomic.Uint64

	// Injected-fault counters, sender side (see fault.go accessors).
	faultDrops    atomic.Uint64
	faultDups     atomic.Uint64
	faultDelays   atomic.Uint64
	faultRefusals atomic.Uint64
}

// Addr returns the endpoint's fabric address ("node/name").
func (e *Endpoint) Addr() string { return e.addr }

// Node returns the node the endpoint lives on.
func (e *Endpoint) Node() string { return e.node }

// Close makes the endpoint unreachable; in-flight deliveries to it are
// dropped and subsequent sends fail with an EvError completion.
func (e *Endpoint) Close() { e.closed.Store(true) }

// Closed reports whether Close has been called.
func (e *Endpoint) Closed() bool { return e.closed.Load() }

// Sends reports the lifetime number of messages sent.
func (e *Endpoint) Sends() uint64 { return e.sends.Load() }

// Recvs reports the lifetime number of messages delivered.
func (e *Endpoint) Recvs() uint64 { return e.recvs.Load() }

// RDMAs reports the lifetime number of RDMA operations initiated.
func (e *Endpoint) RDMAs() uint64 { return e.rdmas.Load() }

// Send transmits data to the destination address. Delivery is
// asynchronous: after the modeled transfer delay the receiver gets an
// EvRecv event and the sender an EvSendDone (or EvError) carrying ctx.
// The data slice is captured; callers must not mutate it afterwards.
func (e *Endpoint) Send(to string, tag uint64, data []byte, ctx any) {
	e.sends.Add(1)
	dst, err := e.fabric.lookup(to)
	if err != nil {
		e.cq.post(Event{Kind: EvError, Ctx: ctx, Err: err})
		return
	}
	fault, refused := e.evalFaults(to, false)
	if refused {
		// Partitioned link: refuse like an unreachable peer, before any
		// chain entry is created.
		e.cq.post(Event{Kind: EvError, Ctx: ctx,
			Err: fmt.Errorf("%w: %s -> %s", ErrPartitioned, e.addr, to)})
		return
	}
	d := e.fabric.delay(e.node, dst.node, len(data)) + fault.delay
	msg := &Message{From: e.addr, To: to, Tag: tag, Data: data}
	e.chainFor(to).add(delivery{
		dst:  dst,
		msg:  msg,
		ctx:  ctx,
		due:  time.Now().Add(d),
		drop: fault.drop,
		dup:  fault.dup,
	})
}

// chainFor returns the delivery chain toward one destination address,
// creating it on first use.
func (e *Endpoint) chainFor(to string) *sendChain {
	e.chainMu.Lock()
	defer e.chainMu.Unlock()
	if e.chains == nil {
		e.chains = make(map[string]*sendChain)
	}
	sc := e.chains[to]
	if sc == nil {
		sc = &sendChain{src: e}
		sc.pumpFn = sc.pump
		e.chains[to] = sc
	}
	return sc
}

// delivery is one in-flight message awaiting its modeled transfer delay.
type delivery struct {
	dst  *Endpoint
	msg  *Message
	ctx  any
	due  time.Time
	drop bool
	dup  bool
}

// sendChain serializes deliveries from one endpoint to one destination
// address so point-to-point ordering holds (as HPC fabrics guarantee):
// entry i is delivered at max(its modeled arrival time, delivery of
// entry i-1). A single timer is re-armed for the head of the FIFO —
// the per-message timer+channel+closure trio this replaces dominated
// the allocation profile of the RPC hot path.
//
// Deliveries still always ride the runtime timer, even for µs-scale
// modeled delays. On an idle host the timer wake granularity then acts
// as a *uniform* inflation of every hop's latency — a constant scale
// factor on the fabric, preserving the relative behavior of the
// experiments — while a spinning progress engine on the receiving side
// absorbs it entirely (see margo's progress loop).
type sendChain struct {
	src    *Endpoint
	mu     sync.Mutex
	q      []delivery
	qhead  int
	timer  *time.Timer
	armed  bool
	pumpFn func() // == pump; bound once so re-arming never allocates
}

func (sc *sendChain) add(d delivery) {
	sc.mu.Lock()
	sc.q = append(sc.q, d)
	if !sc.armed {
		sc.armed = true
		wait := time.Until(d.due)
		if sc.timer == nil {
			sc.timer = time.AfterFunc(wait, sc.pumpFn)
		} else {
			sc.timer.Reset(wait)
		}
	}
	sc.mu.Unlock()
}

// pump delivers every due entry in FIFO order, then either re-arms the
// timer for the head of the remaining queue or goes idle. Runs in the
// timer goroutine; cq.post never blocks, so holding mu across delivery
// is safe and keeps ordering trivially correct.
func (sc *sendChain) pump() {
	sc.mu.Lock()
	for sc.qhead < len(sc.q) {
		d := sc.q[sc.qhead]
		if wait := time.Until(d.due); wait > 0 {
			sc.timer.Reset(wait)
			sc.mu.Unlock()
			return
		}
		sc.q[sc.qhead] = delivery{}
		sc.qhead++
		sc.src.deliver(d)
	}
	sc.q = sc.q[:0]
	sc.qhead = 0
	sc.armed = false
	sc.mu.Unlock()
}

// deliver completes one chained send: receiver EvRecv (unless dropped
// or the destination closed) and sender EvSendDone.
func (e *Endpoint) deliver(d delivery) {
	if d.dst.closed.Load() {
		e.cq.post(Event{Kind: EvError, Ctx: d.ctx, Err: fmt.Errorf("%w: %s", ErrClosed, d.msg.To)})
		return
	}
	if !d.drop {
		d.dst.recvs.Add(1)
		d.dst.cq.post(Event{Kind: EvRecv, Msg: d.msg})
		if d.dup {
			d.dst.recvs.Add(1)
			d.dst.cq.post(Event{Kind: EvRecv, Msg: d.msg})
		}
	}
	// A dropped message still completes on the sender: the NIC
	// reported the send done; the loss is the receiver's silence.
	e.cq.post(Event{Kind: EvSendDone, Ctx: d.ctx})
}

// MemHandle names a registered memory region for one-sided access.
type MemHandle struct {
	Addr string // owning endpoint address
	ID   uint64
	Len  int
}

// RegisterMemory exposes buf for one-sided RDMA and returns its handle.
func (e *Endpoint) RegisterMemory(buf []byte) MemHandle {
	id := e.nextID.Add(1)
	e.memMu.Lock()
	e.mem[id] = buf
	e.memMu.Unlock()
	return MemHandle{Addr: e.addr, ID: id, Len: len(buf)}
}

// DeregisterMemory revokes a handle returned by RegisterMemory.
func (e *Endpoint) DeregisterMemory(h MemHandle) {
	e.memMu.Lock()
	delete(e.mem, h.ID)
	e.memMu.Unlock()
}

func (e *Endpoint) memRegion(id uint64) ([]byte, bool) {
	e.memMu.Lock()
	defer e.memMu.Unlock()
	b, ok := e.mem[id]
	return b, ok
}

// Get reads remote[off:off+len(local)] into local (one-sided; the remote
// CPU is not involved). Completion is posted to the initiator's queue as
// EvRDMADone (or EvError) carrying ctx.
func (e *Endpoint) Get(remote MemHandle, off int, local []byte, ctx any) {
	e.rdma(remote, off, local, ctx, false)
}

// Put writes local into remote[off:off+len(local)] (one-sided).
func (e *Endpoint) Put(remote MemHandle, off int, local []byte, ctx any) {
	e.rdma(remote, off, local, ctx, true)
}

func (e *Endpoint) rdma(remote MemHandle, off int, local []byte, ctx any, put bool) {
	e.rdmas.Add(1)
	dst, err := e.fabric.lookup(remote.Addr)
	if err != nil {
		e.cq.post(Event{Kind: EvError, Ctx: ctx, Err: err})
		return
	}
	fault, refused := e.evalFaults(remote.Addr, true)
	if refused {
		e.cq.post(Event{Kind: EvError, Ctx: ctx,
			Err: fmt.Errorf("%w: %s -> %s", ErrPartitioned, e.addr, remote.Addr)})
		return
	}
	d := e.fabric.delay(e.node, dst.node, len(local)) + fault.delay
	after(d, func() {
		buf, ok := dst.memRegion(remote.ID)
		if !ok {
			e.cq.post(Event{Kind: EvError, Ctx: ctx, Err: ErrBadMemory})
			return
		}
		if off < 0 || off+len(local) > len(buf) {
			e.cq.post(Event{Kind: EvError, Ctx: ctx, Err: ErrBounds})
			return
		}
		if put {
			copy(buf[off:], local)
		} else {
			copy(local, buf[off:])
		}
		e.cq.post(Event{Kind: EvRDMADone, Ctx: ctx})
	})
}

// Poll drains up to max completion events without blocking, returning
// them in arrival order. This is the bounded read that Mercury performs
// per progress iteration; the batch size is the paper's OFI_max_events.
func (e *Endpoint) Poll(max int) []Event {
	return e.cq.poll(max)
}

// PollInto is Poll draining into the caller's reusable buffer; the
// returned slice aliases buf when it has capacity. Mercury's progress
// loop uses this so the per-iteration bounded read is allocation-free.
func (e *Endpoint) PollInto(buf []Event, max int) []Event {
	return e.cq.pollInto(buf, max)
}

// Wait blocks until at least one completion event is pending or the
// timeout elapses, reporting whether events are pending.
func (e *Endpoint) Wait(timeout time.Duration) bool {
	return e.cq.wait(timeout)
}

// Pending reports the instantaneous completion-queue length.
func (e *Endpoint) Pending() int { return e.cq.len() }

// CQDepth reports the instantaneous completion-queue length (alias of
// Pending under the name the telemetry plane exports it as).
func (e *Endpoint) CQDepth() int { return e.cq.len() }

// EventsRead reports the cumulative number of completion events drained
// by Poll — the na-layer counter behind the num_ofi_events_read PVAR.
func (e *Endpoint) EventsRead() uint64 { return e.cq.read.Load() }

// EventsPosted reports the cumulative number of completion events
// successfully enqueued (overflowed events are not counted here).
func (e *Endpoint) EventsPosted() uint64 { return e.cq.posted.Load() }

// CQDepthHWM reports the completion queue's length high-water mark.
func (e *Endpoint) CQDepthHWM() int { return int(e.cq.lenHWM.Load()) }

// Overflows reports how many events could not be queued because the
// completion queue was at capacity.
func (e *Endpoint) Overflows() uint64 { return e.cq.overflows.Load() }
