package na

import (
	"errors"
	"testing"
	"time"
)

// fastFabric returns a fabric with negligible modeled latency so fault
// tests run quickly.
func fastFabric() *Fabric {
	return NewFabric(Config{LatencyLocal: time.Microsecond, LatencyRemote: time.Microsecond})
}

func pair(t *testing.T, f *Fabric) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := f.NewEndpoint("n0", "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.NewEndpoint("n1", "b")
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// drain polls ep until want events arrive or the deadline passes.
func drain(t *testing.T, ep *Endpoint, want int, d time.Duration) []Event {
	t.Helper()
	deadline := time.Now().Add(d)
	var evs []Event
	for len(evs) < want && time.Now().Before(deadline) {
		ep.Wait(time.Millisecond)
		evs = append(evs, ep.Poll(16)...)
	}
	return evs
}

func TestFaultPartitionRefusesSend(t *testing.T) {
	f := fastFabric()
	a, b := pair(t, f)
	f.SetFaultPlan(NewFaultPlan(1).PartitionOneWay(a.Addr(), b.Addr()))

	a.Send(b.Addr(), TagUnexpected, []byte("x"), "ctx")
	evs := drain(t, a, 1, time.Second)
	if len(evs) != 1 || evs[0].Kind != EvError {
		t.Fatalf("events = %+v, want one EvError", evs)
	}
	if !errors.Is(evs[0].Err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", evs[0].Err)
	}
	if got := drain(t, b, 1, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("receiver saw %+v across a partition", got)
	}
	if a.FaultRefusals() != 1 || f.FaultStats().Refusals != 1 {
		t.Fatalf("refusals: ep=%d fabric=%d, want 1/1", a.FaultRefusals(), f.FaultStats().Refusals)
	}

	// One-way: the reverse direction still flows.
	b.Send(a.Addr(), TagUnexpected, []byte("y"), nil)
	if evs := drain(t, a, 1, time.Second); len(evs) == 0 || evs[0].Kind != EvRecv {
		t.Fatalf("reverse direction blocked: %+v", evs)
	}
}

func TestFaultDropIsSilentLoss(t *testing.T) {
	f := fastFabric()
	a, b := pair(t, f)
	plan := NewFaultPlan(7)
	plan.SetLink(a.Addr(), b.Addr(), FaultRule{DropProb: 1})
	f.SetFaultPlan(plan)

	a.Send(b.Addr(), TagUnexpected, []byte("x"), "ctx")
	// Sender still completes (silent loss), receiver sees nothing.
	evs := drain(t, a, 1, time.Second)
	if len(evs) != 1 || evs[0].Kind != EvSendDone {
		t.Fatalf("sender events = %+v, want EvSendDone", evs)
	}
	if got := drain(t, b, 1, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("dropped message delivered: %+v", got)
	}
	if a.FaultDrops() != 1 {
		t.Fatalf("FaultDrops = %d, want 1", a.FaultDrops())
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	f := fastFabric()
	a, b := pair(t, f)
	plan := NewFaultPlan(7)
	plan.SetLink(a.Addr(), b.Addr(), FaultRule{DupProb: 1})
	f.SetFaultPlan(plan)

	a.Send(b.Addr(), TagUnexpected, []byte("x"), nil)
	evs := drain(t, b, 2, time.Second)
	if len(evs) != 2 || evs[0].Kind != EvRecv || evs[1].Kind != EvRecv {
		t.Fatalf("receiver events = %+v, want two EvRecv", evs)
	}
	if a.FaultDups() != 1 {
		t.Fatalf("FaultDups = %d, want 1", a.FaultDups())
	}
}

func TestFaultDelayInflatesLatency(t *testing.T) {
	f := fastFabric()
	a, b := pair(t, f)
	plan := NewFaultPlan(7)
	plan.SetLink(a.Addr(), b.Addr(), FaultRule{DelayProb: 1, Delay: 30 * time.Millisecond})
	f.SetFaultPlan(plan)

	start := time.Now()
	a.Send(b.Addr(), TagUnexpected, []byte("x"), nil)
	evs := drain(t, b, 1, 2*time.Second)
	if len(evs) != 1 {
		t.Fatalf("no delivery: %+v", evs)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delivered in %v, want >= 30ms injected delay", elapsed)
	}
	if a.FaultDelays() != 1 {
		t.Fatalf("FaultDelays = %d, want 1", a.FaultDelays())
	}
}

func TestFaultPlanHotSwapHealsPartition(t *testing.T) {
	f := fastFabric()
	a, b := pair(t, f)
	f.SetFaultPlan(NewFaultPlan(1).Partition(a.Addr(), b.Addr()))
	a.Send(b.Addr(), TagUnexpected, []byte("x"), nil)
	if evs := drain(t, a, 1, time.Second); len(evs) != 1 || evs[0].Kind != EvError {
		t.Fatalf("partitioned send = %+v", evs)
	}

	// Heal at runtime; traffic flows again.
	f.SetFaultPlan(nil)
	if f.FaultPlan() != nil {
		t.Fatal("plan still installed after heal")
	}
	a.Send(b.Addr(), TagUnexpected, []byte("y"), nil)
	if evs := drain(t, b, 1, time.Second); len(evs) != 1 || evs[0].Kind != EvRecv {
		t.Fatalf("healed send = %+v", evs)
	}
}

func TestFaultDecisionsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		f := fastFabric()
		a, b := pair(t, f)
		plan := NewFaultPlan(seed)
		plan.SetLink(a.Addr(), b.Addr(), FaultRule{DropProb: 0.5})
		f.SetFaultPlan(plan)
		const n = 64
		outcomes := make([]bool, 0, n)
		for i := 0; i < n; i++ {
			before := a.FaultDrops()
			a.Send(b.Addr(), TagUnexpected, []byte("x"), nil)
			outcomes = append(outcomes, a.FaultDrops() > before)
		}
		return outcomes
	}
	a1, a2, b1 := run(42), run(42), run(43)
	if len(a1) != len(a2) {
		t.Fatal("length mismatch")
	}
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("same seed produced different fault schedules")
	}
	diff := false
	for i := range a1 {
		if a1[i] != b1[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fault schedules")
	}
	drops := 0
	for _, d := range a1 {
		if d {
			drops++
		}
	}
	if drops == 0 || drops == len(a1) {
		t.Fatalf("drop count %d/%d not probabilistic", drops, len(a1))
	}
}

func TestFaultRuleWildcardMatching(t *testing.T) {
	p := NewFaultPlan(1)
	p.Default = FaultRule{DelayProb: 0.1, Delay: time.Millisecond}
	p.SetLink("n0/a", "n1/b", FaultRule{DropProb: 0.9})
	p.SetLink("n0/a", "", FaultRule{DupProb: 0.5})
	p.SetLink("", "n1/c", FaultRule{DelayProb: 1, Delay: time.Second})

	if r := p.RuleFor("n0/a", "n1/b"); r.DropProb != 0.9 {
		t.Fatalf("exact match lost: %+v", r)
	}
	if r := p.RuleFor("n0/a", "n9/z"); r.DupProb != 0.5 {
		t.Fatalf("from-wildcard lost: %+v", r)
	}
	if r := p.RuleFor("n9/z", "n1/c"); r.Delay != time.Second {
		t.Fatalf("to-wildcard lost: %+v", r)
	}
	if r := p.RuleFor("n9/z", "n9/y"); r.Delay != time.Millisecond {
		t.Fatalf("default lost: %+v", r)
	}
}

func TestFaultRDMAIgnoresDropTakesDelayAndPartition(t *testing.T) {
	f := fastFabric()
	a, b := pair(t, f)
	buf := make([]byte, 8)
	h := b.RegisterMemory(buf)

	plan := NewFaultPlan(3)
	plan.SetLink(a.Addr(), b.Addr(), FaultRule{DropProb: 1})
	f.SetFaultPlan(plan)
	a.Put(h, 0, []byte{1, 2, 3, 4}, "rdma")
	evs := drain(t, a, 1, time.Second)
	if len(evs) != 1 || evs[0].Kind != EvRDMADone {
		t.Fatalf("rdma under drop plan = %+v, want EvRDMADone (drops do not apply)", evs)
	}

	f.SetFaultPlan(NewFaultPlan(3).PartitionOneWay(a.Addr(), b.Addr()))
	a.Put(h, 0, []byte{5, 6, 7, 8}, "rdma")
	evs = drain(t, a, 1, time.Second)
	if len(evs) != 1 || evs[0].Kind != EvError || !errors.Is(evs[0].Err, ErrPartitioned) {
		t.Fatalf("rdma across partition = %+v, want ErrPartitioned", evs)
	}
}
