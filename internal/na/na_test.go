package na

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func newPair(t *testing.T, cfg Config) (*Fabric, *Endpoint, *Endpoint) {
	t.Helper()
	f := NewFabric(cfg)
	a, err := f.NewEndpoint("node0", "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.NewEndpoint("node1", "b")
	if err != nil {
		t.Fatal(err)
	}
	return f, a, b
}

// waitEvents polls ep until n events arrive or the deadline passes.
func waitEvents(t *testing.T, ep *Endpoint, n int) []Event {
	t.Helper()
	var out []Event
	deadline := time.Now().Add(2 * time.Second)
	for len(out) < n {
		if !ep.Wait(time.Until(deadline)) {
			t.Fatalf("timed out: got %d/%d events", len(out), n)
		}
		out = append(out, ep.Poll(n-len(out))...)
	}
	return out
}

func TestSendDelivers(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	a.Send(b.Addr(), TagUnexpected, []byte("hello"), "ctx1")

	evs := waitEvents(t, b, 1)
	if evs[0].Kind != EvRecv {
		t.Fatalf("kind = %v, want recv", evs[0].Kind)
	}
	msg := evs[0].Msg
	if string(msg.Data) != "hello" || msg.From != a.Addr() || msg.Tag != TagUnexpected {
		t.Fatalf("msg = %+v", msg)
	}

	sevs := waitEvents(t, a, 1)
	if sevs[0].Kind != EvSendDone || sevs[0].Ctx != "ctx1" {
		t.Fatalf("send completion = %+v", sevs[0])
	}
	if a.Sends() != 1 || b.Recvs() != 1 {
		t.Fatalf("counters: sends=%d recvs=%d", a.Sends(), b.Recvs())
	}
}

func TestSendToUnknownAddressFails(t *testing.T) {
	f := NewFabric(DefaultConfig())
	a, _ := f.NewEndpoint("n", "a")
	a.Send("n/ghost", 1, nil, "x")
	evs := waitEvents(t, a, 1)
	if evs[0].Kind != EvError || !errors.Is(evs[0].Err, ErrUnreachable) {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestSendToClosedEndpointFails(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	b.Close()
	if !b.Closed() {
		t.Fatal("Closed() = false")
	}
	a.Send(b.Addr(), 1, []byte("x"), "c")
	evs := waitEvents(t, a, 1)
	if evs[0].Kind != EvError || !errors.Is(evs[0].Err, ErrClosed) {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestCloseDropsInflight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LatencyRemote = 20 * time.Millisecond
	_, a, b := newPair(t, cfg)
	a.Send(b.Addr(), 1, []byte("x"), "c")
	b.Close() // before delivery
	evs := waitEvents(t, a, 1)
	if evs[0].Kind != EvError {
		t.Fatalf("event = %+v, want error for dropped delivery", evs[0])
	}
	if b.Pending() != 0 {
		t.Fatal("closed endpoint received a message")
	}
}

func TestDuplicateEndpointRejected(t *testing.T) {
	f := NewFabric(DefaultConfig())
	if _, err := f.NewEndpoint("n", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.NewEndpoint("n", "a"); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestRDMAGet(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	src := []byte("0123456789")
	h := b.RegisterMemory(src)
	dst := make([]byte, 4)
	a.Get(h, 3, dst, "get1")
	evs := waitEvents(t, a, 1)
	if evs[0].Kind != EvRDMADone || evs[0].Ctx != "get1" {
		t.Fatalf("event = %+v", evs[0])
	}
	if !bytes.Equal(dst, []byte("3456")) {
		t.Fatalf("dst = %q", dst)
	}
}

func TestRDMAPut(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	buf := make([]byte, 8)
	h := b.RegisterMemory(buf)
	a.Put(h, 2, []byte("XY"), nil)
	waitEvents(t, a, 1)
	if !bytes.Equal(buf, []byte{0, 0, 'X', 'Y', 0, 0, 0, 0}) {
		t.Fatalf("buf = %q", buf)
	}
}

func TestRDMABadHandle(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	h := b.RegisterMemory(make([]byte, 4))
	b.DeregisterMemory(h)
	a.Get(h, 0, make([]byte, 1), nil)
	evs := waitEvents(t, a, 1)
	if evs[0].Kind != EvError || !errors.Is(evs[0].Err, ErrBadMemory) {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestRDMAOutOfBounds(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	h := b.RegisterMemory(make([]byte, 4))
	a.Get(h, 2, make([]byte, 8), nil)
	evs := waitEvents(t, a, 1)
	if evs[0].Kind != EvError || !errors.Is(evs[0].Err, ErrBounds) {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestPollBatchBounded(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	const n = 20
	for i := 0; i < n; i++ {
		a.Send(b.Addr(), TagUnexpected, []byte{byte(i)}, nil)
	}
	// Wait for all to land.
	deadline := time.Now().Add(2 * time.Second)
	for b.Pending() < n {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d", b.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	batch := b.Poll(16)
	if len(batch) != 16 {
		t.Fatalf("poll(16) = %d events", len(batch))
	}
	rest := b.Poll(16)
	if len(rest) != 4 {
		t.Fatalf("second poll = %d events", len(rest))
	}
	// FIFO order.
	for i, ev := range append(batch, rest...) {
		if ev.Msg.Data[0] != byte(i) {
			t.Fatalf("event %d out of order: %d", i, ev.Msg.Data[0])
		}
	}
}

func TestPollZeroAndEmpty(t *testing.T) {
	_, a, _ := newPair(t, DefaultConfig())
	if evs := a.Poll(16); evs != nil {
		t.Fatalf("poll on empty queue = %v", evs)
	}
	if evs := a.Poll(0); evs != nil {
		t.Fatalf("poll(0) = %v", evs)
	}
}

func TestWaitTimeout(t *testing.T) {
	_, a, _ := newPair(t, DefaultConfig())
	start := time.Now()
	if a.Wait(10 * time.Millisecond) {
		t.Fatal("Wait reported events on empty queue")
	}
	if time.Since(start) < 8*time.Millisecond {
		t.Fatal("Wait returned too early")
	}
}

func TestWaitZeroNonBlocking(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	if a.Wait(0) {
		t.Fatal("Wait(0) true on empty queue")
	}
	b.Send(a.Addr(), 1, nil, nil)
	waitEvents(t, a, 1)
}

func TestLatencyModel(t *testing.T) {
	cfg := Config{LatencyLocal: time.Millisecond, LatencyRemote: 30 * time.Millisecond}
	f := NewFabric(cfg)
	a, _ := f.NewEndpoint("node0", "a")
	b, _ := f.NewEndpoint("node0", "b")
	c, _ := f.NewEndpoint("node1", "c")

	start := time.Now()
	a.Send(b.Addr(), 1, nil, nil)
	waitEvents(t, b, 1)
	local := time.Since(start)

	start = time.Now()
	a.Send(c.Addr(), 1, nil, nil)
	waitEvents(t, c, 1)
	remote := time.Since(start)

	if remote < 25*time.Millisecond {
		t.Fatalf("remote latency = %v, want >= ~30ms", remote)
	}
	if local >= remote {
		t.Fatalf("local (%v) not faster than remote (%v)", local, remote)
	}
}

func TestBandwidthModel(t *testing.T) {
	cfg := Config{LatencyLocal: 0, LatencyRemote: 0, Bandwidth: 1e6} // 1 MB/s
	f := NewFabric(cfg)
	d := f.delay("a", "b", 50_000) // 50 KB at 1 MB/s = 50ms
	if d < 45*time.Millisecond || d > 80*time.Millisecond {
		t.Fatalf("delay = %v, want ~50ms", d)
	}
}

func TestCQOverflowCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CQDepth = 4
	_, a, b := newPair(t, cfg)
	for i := 0; i < 10; i++ {
		a.Send(b.Addr(), 1, nil, nil)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Pending() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d", b.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	// Give stragglers time to overflow.
	time.Sleep(20 * time.Millisecond)
	if b.Overflows() == 0 {
		t.Fatal("no overflow recorded on tiny CQ")
	}
}

func TestEventResidenceTimestamp(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	a.Send(b.Addr(), 1, nil, nil)
	deadline := time.Now().Add(2 * time.Second)
	for b.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no event")
		}
	}
	time.Sleep(5 * time.Millisecond) // let it sit in the queue
	ev := b.Poll(1)[0]
	if res := time.Since(ev.Posted); res < 4*time.Millisecond {
		t.Fatalf("residence = %v, want >= 4ms", res)
	}
}

func TestEventKindString(t *testing.T) {
	names := map[EventKind]string{
		EvRecv: "recv", EvSendDone: "send_done",
		EvRDMADone: "rdma_done", EvError: "error", EventKind(9): "event(9)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

func TestPerPairOrderingProperty(t *testing.T) {
	// Messages between one (src,dst) pair must arrive in send order
	// regardless of payload sizes (which perturb modeled delays).
	prop := func(sizes []uint16) bool {
		_, a, b := newPair(t, DefaultConfig())
		n := len(sizes)
		if n == 0 {
			return true
		}
		if n > 64 {
			sizes = sizes[:64]
			n = 64
		}
		for i, sz := range sizes {
			data := make([]byte, int(sz)%2048+4)
			data[0] = byte(i)
			a.Send(b.Addr(), TagUnexpected, data, nil)
		}
		got := waitEvents(t, b, n)
		for i, ev := range got {
			if ev.Msg.Data[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCQAccessors(t *testing.T) {
	_, a, b := newPair(t, DefaultConfig())
	const n = 5
	for i := 0; i < n; i++ {
		a.Send(b.Addr(), TagUnexpected, []byte("x"), i)
	}
	// Wait for all deliveries without draining b yet.
	deadline := time.Now().Add(2 * time.Second)
	for b.CQDepth() < n {
		if time.Now().After(deadline) {
			t.Fatalf("CQDepth = %d, want %d", b.CQDepth(), n)
		}
		time.Sleep(time.Millisecond)
	}
	if got := b.EventsPosted(); got != n {
		t.Fatalf("EventsPosted = %d, want %d", got, n)
	}
	if got := b.EventsRead(); got != 0 {
		t.Fatalf("EventsRead before poll = %d, want 0", got)
	}
	if hwm := b.CQDepthHWM(); hwm < n {
		t.Fatalf("CQDepthHWM = %d, want >= %d", hwm, n)
	}
	waitEvents(t, b, n)
	if got := b.EventsRead(); got != n {
		t.Fatalf("EventsRead after poll = %d, want %d", got, n)
	}
	if got := b.CQDepth(); got != 0 {
		t.Fatalf("CQDepth after drain = %d, want 0", got)
	}
}
