package na

import (
	"sync"
	"sync/atomic"
	"time"
)

// completionQueue is a bounded FIFO of completion events with a
// wait/notify facility for progress loops.
type completionQueue struct {
	mu    sync.Mutex
	q     []Event
	cap   int
	notif chan struct{}

	overflows atomic.Uint64
	posted    atomic.Uint64
	read      atomic.Uint64
	lenHWM    atomic.Int64
}

func newCompletionQueue(capacity int) *completionQueue {
	return &completionQueue{cap: capacity, notif: make(chan struct{}, 1)}
}

func (c *completionQueue) post(ev Event) {
	ev.Posted = time.Now()
	c.mu.Lock()
	if len(c.q) >= c.cap {
		c.mu.Unlock()
		c.overflows.Add(1)
		return
	}
	c.q = append(c.q, ev)
	if n := int64(len(c.q)); n > c.lenHWM.Load() {
		c.lenHWM.Store(n)
	}
	c.mu.Unlock()
	c.posted.Add(1)
	select {
	case c.notif <- struct{}{}:
	default:
	}
}

func (c *completionQueue) poll(max int) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.q) == 0 || max <= 0 {
		return nil
	}
	n := max
	if n > len(c.q) {
		n = len(c.q)
	}
	out := make([]Event, n)
	copy(out, c.q[:n])
	rest := copy(c.q, c.q[n:])
	for i := rest; i < len(c.q); i++ {
		c.q[i] = Event{}
	}
	c.q = c.q[:rest]
	c.read.Add(uint64(n))
	return out
}

func (c *completionQueue) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.q)
}

// wait blocks until an event is pending or timeout elapses. A zero
// timeout is a non-blocking check.
func (c *completionQueue) wait(timeout time.Duration) bool {
	if c.len() > 0 {
		return true
	}
	if timeout <= 0 {
		return false
	}
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return c.len() > 0
		}
		t := time.NewTimer(remain)
		select {
		case <-c.notif:
			t.Stop()
			if c.len() > 0 {
				return true
			}
			// Notification raced with a concurrent poll; keep waiting.
		case <-t.C:
			return c.len() > 0
		}
	}
}
