package na

import (
	"sync"
	"sync/atomic"
	"time"
)

// completionQueue is a bounded FIFO of completion events with a
// wait/notify facility for progress loops.
type completionQueue struct {
	mu    sync.Mutex
	q     []Event
	cap   int
	notif chan struct{}

	// timer is reused across wait calls: the adaptive progress engine
	// parks here on every idle backoff, and a fresh time.Timer per park
	// would put an allocation on the scheduler's idle path. Guarded by
	// timerMu — wait may be called from concurrent progress loops.
	timerMu sync.Mutex
	timer   *time.Timer

	overflows atomic.Uint64
	posted    atomic.Uint64
	read      atomic.Uint64
	lenHWM    atomic.Int64
}

func newCompletionQueue(capacity int) *completionQueue {
	return &completionQueue{cap: capacity, notif: make(chan struct{}, 1)}
}

func (c *completionQueue) post(ev Event) {
	ev.Posted = time.Now()
	c.mu.Lock()
	if len(c.q) >= c.cap {
		c.mu.Unlock()
		c.overflows.Add(1)
		return
	}
	c.q = append(c.q, ev)
	if n := int64(len(c.q)); n > c.lenHWM.Load() {
		c.lenHWM.Store(n)
	}
	c.mu.Unlock()
	c.posted.Add(1)
	select {
	case c.notif <- struct{}{}:
	default:
	}
}

func (c *completionQueue) poll(max int) []Event {
	return c.pollInto(nil, max)
}

// pollInto is poll writing into the caller's buffer (reused across
// progress iterations so the steady-state drain does not allocate).
// A nil buf falls back to allocating.
func (c *completionQueue) pollInto(buf []Event, max int) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.q) == 0 || max <= 0 {
		return nil
	}
	n := max
	if n > len(c.q) {
		n = len(c.q)
	}
	var out []Event
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]Event, n)
	}
	copy(out, c.q[:n])
	rest := copy(c.q, c.q[n:])
	for i := rest; i < len(c.q); i++ {
		c.q[i] = Event{}
	}
	c.q = c.q[:rest]
	c.read.Add(uint64(n))
	return out
}

func (c *completionQueue) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.q)
}

// wait blocks until an event is pending or timeout elapses. A zero
// timeout is a non-blocking check.
func (c *completionQueue) wait(timeout time.Duration) bool {
	if c.len() > 0 {
		return true
	}
	if timeout <= 0 {
		return false
	}
	c.timerMu.Lock()
	defer c.timerMu.Unlock()
	if c.timer == nil {
		c.timer = time.NewTimer(timeout)
	} else {
		c.timer.Reset(timeout)
	}
	deadline := time.Now().Add(timeout)
	for {
		if time.Until(deadline) <= 0 {
			c.stopTimer()
			return c.len() > 0
		}
		select {
		case <-c.notif:
			if c.len() > 0 {
				c.stopTimer()
				return true
			}
			// Notification raced with a concurrent poll; keep waiting.
		case <-c.timer.C:
			return c.len() > 0
		}
	}
}

// stopTimer quiesces the shared timer so the next Reset starts clean.
// Called with timerMu held and the timer non-nil.
func (c *completionQueue) stopTimer() {
	if !c.timer.Stop() {
		select {
		case <-c.timer.C:
		default:
		}
	}
}
