package na

import (
	"errors"
	"hash/fnv"
	"sync"
	"time"
)

// ErrPartitioned reports a send refused because the fault plan
// partitions the link between the two endpoints.
var ErrPartitioned = errors.New("na: link partitioned")

// LinkKey names one directed link of the fabric for fault-plan rules.
// An empty From or To acts as a wildcard when rules are matched.
type LinkKey struct {
	From string
	To   string
}

// FaultRule is the fault behaviour of one link (or the plan default).
// Probabilities are per message; decisions are drawn from the plan's
// seeded generator so a run is reproducible given the same send order
// on each link.
type FaultRule struct {
	// DropProb silently discards the message: the sender still observes
	// EvSendDone (as a NIC would report), the receiver sees nothing, and
	// recovery is the origin's timeout. Applies to two-sided messaging
	// only — a silently lost one-sided transfer would strand the
	// initiator with no peer to time out, so RDMA ignores it.
	DropProb float64
	// DupProb delivers the message twice (receiver-side duplication, as
	// retransmission-based fabrics can produce).
	DupProb float64
	// DelayProb adds Delay to the modeled transfer latency. Because
	// per-destination ordering chains hold later deliveries behind
	// earlier ones, a delayed message models a genuinely slow link, not
	// reordering.
	DelayProb float64
	Delay     time.Duration
	// Partition refuses the operation outright: the sender gets an
	// immediate EvError wrapping ErrPartitioned. Set it on one direction
	// for a one-way partition, on both for a full partition.
	Partition bool
}

// active reports whether the rule can affect traffic at all.
func (r FaultRule) active() bool {
	return r.Partition || r.DropProb > 0 || r.DupProb > 0 || (r.DelayProb > 0 && r.Delay > 0)
}

// FaultPlan is a deterministic fault-injection configuration for a
// fabric: a seeded default rule plus per-link overrides. Install it
// with Fabric.SetFaultPlan; it is hot-settable at runtime, so tests and
// chaos runs can open and heal partitions mid-workload.
//
// Rule matching is most-specific-first: exact (From,To), then
// (From,*), then (*,To), then the Default.
type FaultPlan struct {
	Seed    uint64
	Default FaultRule
	Links   map[LinkKey]FaultRule
}

// NewFaultPlan returns an empty plan with the given seed.
func NewFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{Seed: seed, Links: make(map[LinkKey]FaultRule)}
}

// SetLink installs a per-link rule (wildcards allowed via empty
// endpoints) and returns the plan for chaining.
func (p *FaultPlan) SetLink(from, to string, r FaultRule) *FaultPlan {
	if p.Links == nil {
		p.Links = make(map[LinkKey]FaultRule)
	}
	p.Links[LinkKey{From: from, To: to}] = r
	return p
}

// PartitionOneWay refuses traffic from -> to (the reverse direction
// still flows).
func (p *FaultPlan) PartitionOneWay(from, to string) *FaultPlan {
	r := p.ruleAt(from, to)
	r.Partition = true
	return p.SetLink(from, to, r)
}

// Partition refuses traffic in both directions between a and b.
func (p *FaultPlan) Partition(a, b string) *FaultPlan {
	return p.PartitionOneWay(a, b).PartitionOneWay(b, a)
}

// ruleAt returns the existing exact rule for editing helpers.
func (p *FaultPlan) ruleAt(from, to string) FaultRule {
	if p.Links != nil {
		if r, ok := p.Links[LinkKey{From: from, To: to}]; ok {
			return r
		}
	}
	return FaultRule{}
}

// RuleFor resolves the rule governing one directed link.
func (p *FaultPlan) RuleFor(from, to string) FaultRule {
	if p.Links != nil {
		if r, ok := p.Links[LinkKey{From: from, To: to}]; ok {
			return r
		}
		if r, ok := p.Links[LinkKey{From: from}]; ok {
			return r
		}
		if r, ok := p.Links[LinkKey{To: to}]; ok {
			return r
		}
	}
	return p.Default
}

// FaultStats aggregates injected faults across the fabric.
type FaultStats struct {
	Drops    uint64
	Dups     uint64
	Delays   uint64
	Refusals uint64
}

// faultState pairs an installed plan with its per-link sequence
// counters. Swapping the plan resets the counters, so every install is
// a fresh deterministic schedule.
type faultState struct {
	plan *FaultPlan

	mu  sync.Mutex
	seq map[LinkKey]uint64
}

// faultDecision is what one message drew from the plan.
type faultDecision struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// decide draws the next deterministic decision for one link.
func (fs *faultState) decide(from, to string, r FaultRule) faultDecision {
	k := LinkKey{From: from, To: to}
	fs.mu.Lock()
	seq := fs.seq[k]
	fs.seq[k] = seq + 1
	fs.mu.Unlock()

	x := splitmix64(fs.plan.Seed ^ linkHash(from, to) ^ (seq+1)*0x9e3779b97f4a7c15)
	var d faultDecision
	d.drop = unitFloat(x) < r.DropProb
	x = splitmix64(x)
	d.dup = !d.drop && unitFloat(x) < r.DupProb
	x = splitmix64(x)
	if unitFloat(x) < r.DelayProb {
		d.delay = r.Delay
	}
	return d
}

// linkHash folds a directed link into the decision stream seed.
func linkHash(from, to string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	return h.Sum64()
}

// splitmix64 is the SplitMix64 output function: a cheap, well-mixed
// stateless generator step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unitFloat maps a 64-bit draw onto [0,1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}

// SetFaultPlan installs (or, with nil, removes) the fabric's fault
// plan. Hot-settable: in-flight deliveries already scheduled keep their
// original fate; subsequent sends follow the new plan.
func (f *Fabric) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		f.faults.Store(nil)
		return
	}
	f.faults.Store(&faultState{plan: p, seq: make(map[LinkKey]uint64)})
}

// FaultPlan returns the installed plan, or nil when none is active.
func (f *Fabric) FaultPlan() *FaultPlan {
	if fs := f.faults.Load(); fs != nil {
		return fs.plan
	}
	return nil
}

// FaultStats reports fabric-wide injected-fault totals.
func (f *Fabric) FaultStats() FaultStats {
	return FaultStats{
		Drops:    f.faultDrops.Load(),
		Dups:     f.faultDups.Load(),
		Delays:   f.faultDelays.Load(),
		Refusals: f.faultRefusals.Load(),
	}
}

// evalFaults draws the fault outcome for one send from e to `to`,
// counting what it injects. refused reports a partition; the zero
// decision means the message passes untouched.
func (e *Endpoint) evalFaults(to string, rdma bool) (d faultDecision, refused bool) {
	fs := e.fabric.faults.Load()
	if fs == nil {
		return faultDecision{}, false
	}
	r := fs.plan.RuleFor(e.addr, to)
	if !r.active() {
		return faultDecision{}, false
	}
	if r.Partition {
		e.faultRefusals.Add(1)
		e.fabric.faultRefusals.Add(1)
		return faultDecision{}, true
	}
	if rdma {
		// One-sided transfers take only the delay fault: silent loss
		// would strand the initiator (no peer times out for it), and
		// duplication of an idempotent memory copy is unobservable.
		r.DropProb, r.DupProb = 0, 0
	}
	d = fs.decide(e.addr, to, r)
	if d.drop {
		e.faultDrops.Add(1)
		e.fabric.faultDrops.Add(1)
	}
	if d.dup {
		e.faultDups.Add(1)
		e.fabric.faultDups.Add(1)
	}
	if d.delay > 0 {
		e.faultDelays.Add(1)
		e.fabric.faultDelays.Add(1)
	}
	return d, false
}

// Per-endpoint injected-fault counters (sender side: the endpoint that
// issued the affected operation).

// FaultDrops reports messages this endpoint sent that the plan dropped.
func (e *Endpoint) FaultDrops() uint64 { return e.faultDrops.Load() }

// FaultDups reports messages this endpoint sent that were duplicated.
func (e *Endpoint) FaultDups() uint64 { return e.faultDups.Load() }

// FaultDelays reports operations that drew an injected delay.
func (e *Endpoint) FaultDelays() uint64 { return e.faultDelays.Load() }

// FaultRefusals reports operations refused by a partition.
func (e *Endpoint) FaultRefusals() uint64 { return e.faultRefusals.Load() }
