package experiments

import (
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/services/sonata"
)

// SonataConfig reproduces the paper's §V-B benchmark: one origin and one
// target on separate compute nodes; a fixed-length JSON record array is
// stored through repeated sonata_store_multi_json calls in batches.
type SonataConfig struct {
	Records    int // paper: 50,000
	BatchSize  int // paper: 5,000
	RecordSize int // bytes per JSON record
	EagerLimit int // Mercury eager buffer
	Stage      core.Stage
}

func (c SonataConfig) withDefaults() SonataConfig {
	if c.Records == 0 {
		c.Records = 50_000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 5_000
	}
	if c.RecordSize == 0 {
		c.RecordSize = 256
	}
	if c.EagerLimit == 0 {
		c.EagerLimit = 4096
	}
	if c.Stage == 0 {
		c.Stage = core.StageFull
	}
	return c
}

// SonataResult carries the Figure 7 breakdown: how the cumulative RPC
// execution time on the target maps to individual steps.
type SonataResult struct {
	Config   SonataConfig
	WallTime time.Duration
	RPCCalls uint64

	// Cumulative target-side nanoseconds per step.
	TargetExec    uint64 // t5→t8 total
	InputDeser    uint64
	OutputSer     uint64
	RDMA          uint64
	Handler       uint64
	ExecExclusive uint64 // target exec minus (de)serialization

	Profile *analysis.MergedProfile
}

// DeserFraction is the paper's headline number: input deserialization
// as a share of overall execution time on the target (≈27% in Fig 7).
func (r *SonataResult) DeserFraction() float64 {
	total := r.Handler + r.RDMA + r.TargetExec
	if total == 0 {
		return 0
	}
	return float64(r.InputDeser) / float64(total)
}

// RDMAFraction is the internal RDMA share of the same total.
func (r *SonataResult) RDMAFraction() float64 {
	total := r.Handler + r.RDMA + r.TargetExec
	if total == 0 {
		return 0
	}
	return float64(r.RDMA) / float64(total)
}

// RunSonata reproduces the batch-store benchmark.
func RunSonata(cfg SonataConfig) (*SonataResult, error) {
	cfg = cfg.withDefaults()
	cluster := NewCluster(DefaultFabric())
	defer cluster.Shutdown()

	srv, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeServer, Node: "node1", Name: "sonata",
		HandlerStreams: 4, Stage: cfg.Stage, EagerLimit: cfg.EagerLimit,
	})
	if err != nil {
		return nil, err
	}
	if _, err := sonata.RegisterProvider(srv, sonata.Config{
		StoreCostPerDoc: 8 * time.Microsecond,
	}); err != nil {
		return nil, err
	}
	cli, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeClient, Node: "node0", Name: "bench",
		Stage: cfg.Stage, EagerLimit: cfg.EagerLimit,
	})
	if err != nil {
		return nil, err
	}
	client, err := sonata.NewClient(cli)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	var runErr error
	u := cli.Run("sonata-bench", func(self *abt.ULT) {
		if err := client.CreateCollection(self, srv.Addr(), "records"); err != nil {
			runErr = err
			return
		}
		batch := make([][]byte, 0, cfg.BatchSize)
		for i := 0; i < cfg.Records; i++ {
			batch = append(batch, sonata.GenerateRecord(i, cfg.RecordSize))
			if len(batch) == cfg.BatchSize {
				if _, err := client.StoreMultiJSON(self, srv.Addr(), "records", batch); err != nil {
					runErr = err
					return
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if _, runErr = client.StoreMultiJSON(self, srv.Addr(), "records", batch); runErr != nil {
				return
			}
		}
	})
	if err := u.Join(nil); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	wall := time.Since(start)
	cluster.WaitIdle(10 * time.Second)
	time.Sleep(20 * time.Millisecond)

	merged, _ := cluster.Analyze()
	res := &SonataResult{Config: cfg, WallTime: wall, Profile: merged}
	bc := core.Breadcrumb(0).Push(sonata.RPCStoreMultiJSON)
	for key, s := range merged.Target {
		if key.BC != bc {
			continue
		}
		res.RPCCalls += s.Count
		res.TargetExec += s.Components[core.CompTargetExec]
		res.InputDeser += s.Components[core.CompInputDeser]
		res.OutputSer += s.Components[core.CompOutputSer]
		res.RDMA += s.Components[core.CompRDMA]
		res.Handler += s.Components[core.CompHandler]
	}
	if sub := res.InputDeser + res.OutputSer; sub < res.TargetExec {
		res.ExecExclusive = res.TargetExec - sub
	}
	return res, nil
}
