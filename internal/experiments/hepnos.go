package experiments

import (
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
	"symbiosys/internal/services/hepnos"
	"symbiosys/internal/services/sdskv"
	"symbiosys/internal/telemetry"
	"symbiosys/internal/workload/dataloader"
)

// HEPnOSConfig is one row of the paper's Table IV plus the workload
// knobs of the scaled-down reproduction.
type HEPnOSConfig struct {
	Name string

	// Table IV columns.
	TotalClients         int
	ClientsPerNode       int
	TotalServers         int
	ServersPerNode       int
	BatchSize            int
	Threads              int // handler execution streams per server
	Databases            int // databases per server process
	ClientProgressThread bool
	OFIMaxEvents         int
	// ServerOFIMaxEvents overrides the servers' progress read budget
	// when non-zero (isolation experiments); the paper's knob is the
	// client-side budget.
	ServerOFIMaxEvents int

	// Workload shape (scaled for the simulated platform).
	EventsPerClient  int
	EventSize        int
	IssuersPerClient int
	// MaxInflight bounds the async flush engine's outstanding RPCs per
	// issuer (the HEPnOS async engine window).
	MaxInflight int
	// PutCostPerKey is the modeled backend insert cost. The paper's
	// batches hold ~1024 events; the scaled workload holds far fewer
	// per batch, so the per-key cost is raised to keep per-RPC service
	// times in the same regime.
	PutCostPerKey time.Duration
	// IssueCost is the modeled client-side request-preparation cost per
	// put_packed RPC.
	IssueCost time.Duration

	Backend string
	Stage   core.Stage

	// MetricsAddr, when non-empty, enables live telemetry on every
	// process of the run and serves /metrics + /snapshot there for its
	// duration (":0" picks a free port; see HEPnOSResult.MetricsAddr
	// for the bound address). MetricsInterval overrides the default
	// 100ms sampling tick.
	MetricsAddr     string
	MetricsInterval time.Duration

	// Faults, when non-nil, is installed on the cluster fabric before the
	// workload starts (chaos runs). Retry, when non-nil, is applied to
	// every client process and sdskv_put_packed is marked idempotent so
	// timed-out puts are re-issued.
	Faults *na.FaultPlan
	Retry  *margo.RetryPolicy
}

func (c HEPnOSConfig) withDefaults() HEPnOSConfig {
	if c.EventsPerClient == 0 {
		c.EventsPerClient = 2048
	}
	if c.EventSize == 0 {
		c.EventSize = 512
	}
	if c.IssuersPerClient == 0 {
		c.IssuersPerClient = 1
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 32
	}
	if c.PutCostPerKey == 0 {
		c.PutCostPerKey = 10 * time.Microsecond
	}
	if c.IssueCost == 0 {
		c.IssueCost = 25 * time.Microsecond
	}
	if c.Backend == "" {
		c.Backend = "map"
	}
	return c
}

// The seven service configurations of Table IV. Client/server counts
// are the paper's; the workload is scaled so each run completes in
// seconds on the simulated platform.
var (
	// C1: too few execution streams (5 threads). The workload is the
	// paper's shape scaled down: each client loads 2048 events through
	// the async flush engine, so the 4 servers receive bursts of
	// put_packed RPCs whose service demand exceeds 5 streams.
	C1 = HEPnOSConfig{Name: "C1", TotalClients: 32, ClientsPerNode: 16,
		TotalServers: 4, ServersPerNode: 2, BatchSize: 1024, Threads: 5,
		Databases: 32, OFIMaxEvents: 16, EventsPerClient: 2048, MaxInflight: 64,
		Stage: core.StageFull}
	// C2: C1 with 15 additional execution streams.
	C2 = HEPnOSConfig{Name: "C2", TotalClients: 32, ClientsPerNode: 16,
		TotalServers: 4, ServersPerNode: 2, BatchSize: 1024, Threads: 20,
		Databases: 32, OFIMaxEvents: 16, EventsPerClient: 2048, MaxInflight: 64,
		Stage: core.StageFull}
	// C3: C2 with 8 databases instead of 32 — fewer, larger put_packed
	// batches reach each server.
	C3 = HEPnOSConfig{Name: "C3", TotalClients: 32, ClientsPerNode: 16,
		TotalServers: 4, ServersPerNode: 2, BatchSize: 1024, Threads: 20,
		Databases: 8, OFIMaxEvents: 16, EventsPerClient: 2048, MaxInflight: 64,
		Stage: core.StageFull}
	// C4: small deployment, healthy batch size. The batched loader has
	// little reason to keep many RPCs in flight (each carries a large
	// batch), so its async window stays shallow — which is also what
	// keeps its OFI samples under the threshold in Figure 12a.
	C4 = HEPnOSConfig{Name: "C4", TotalClients: 2, ClientsPerNode: 1,
		TotalServers: 4, ServersPerNode: 2, BatchSize: 1024, Threads: 16,
		Databases: 8, OFIMaxEvents: 16, EventsPerClient: 8192, MaxInflight: 6,
		Stage: core.StageFull}
	// C5: batch size 1 — the pathological configuration: every event is
	// its own put_packed RPC, flooding the client's shared progress ES.
	C5 = HEPnOSConfig{Name: "C5", TotalClients: 2, ClientsPerNode: 1,
		TotalServers: 4, ServersPerNode: 2, BatchSize: 1, Threads: 16,
		Databases: 8, OFIMaxEvents: 16, EventsPerClient: 8192, MaxInflight: 64,
		Stage: core.StageFull}
	// C6: C5 with OFI_max_events raised to 64.
	C6 = HEPnOSConfig{Name: "C6", TotalClients: 2, ClientsPerNode: 1,
		TotalServers: 4, ServersPerNode: 2, BatchSize: 1, Threads: 16,
		Databases: 8, OFIMaxEvents: 64, EventsPerClient: 8192, MaxInflight: 64,
		Stage: core.StageFull}
	// C7: C6 with a dedicated client progress execution stream.
	C7 = HEPnOSConfig{Name: "C7", TotalClients: 2, ClientsPerNode: 1,
		TotalServers: 4, ServersPerNode: 2, BatchSize: 1, Threads: 16,
		Databases: 8, ClientProgressThread: true, OFIMaxEvents: 64,
		EventsPerClient: 8192, MaxInflight: 64, Stage: core.StageFull}
)

// TableIV lists the seven configurations in order.
func TableIV() []HEPnOSConfig {
	return []HEPnOSConfig{C1, C2, C3, C4, C5, C6, C7}
}

// HEPnOSResult is everything the Figures 9–12 analyses need from one
// configuration run.
type HEPnOSResult struct {
	Config       HEPnOSConfig
	WallTime     time.Duration
	EventsStored uint64

	// CumTargetExec and Components aggregate the sdskv_put_packed
	// target-side profile (Figure 9's stacked bar).
	CumTargetExec time.Duration
	Components    [core.NumComponents]uint64

	// CumOriginExec is the origin-side cumulative latency; Unaccounted
	// is the Figure 11 residual.
	CumOriginExec time.Duration
	Unaccounted   analysis.UnaccountedReport

	// BlockedSeries is the Figure 10 scatter; OFISeries the Figure 12
	// samples (client-side).
	BlockedSeries []analysis.BlockedSample
	OFISeries     []analysis.OFISample

	// TraceSamples counts trace events collected across processes;
	// TraceDropped counts events lost to per-process capacity bounds.
	TraceSamples int
	TraceDropped uint64

	Profile *analysis.MergedProfile

	// MetricsAddr is the bound live-telemetry address when the run was
	// started with Config.MetricsAddr set (empty otherwise).
	MetricsAddr string

	// Resilience counters summed over every process, plus the fabric's
	// injected-fault totals — nonzero only under a fault plan / retry
	// policy (chaos runs).
	Retries   uint64
	Timeouts  uint64
	Exhausted uint64
	Cancels   uint64
	Faults    na.FaultStats
}

// HandlerFraction returns the target-handler share of cumulative target
// execution (the paper's 26.6% diagnosis for C1).
func (r *HEPnOSResult) HandlerFraction() float64 {
	if r.CumTargetExec == 0 {
		return 0
	}
	return float64(r.Components[core.CompHandler]) / float64(r.CumTargetExec)
}

// MaxBlocked returns the peak blocked-ULT count of the run.
func (r *HEPnOSResult) MaxBlocked() int64 {
	var m int64
	for _, s := range r.BlockedSeries {
		if s.Blocked > m {
			m = s.Blocked
		}
	}
	return m
}

// OFIAtCapFraction returns the share of progress passes that read the
// full OFI_max_events budget (Figure 12's pinned-at-threshold signal).
func (r *HEPnOSResult) OFIAtCapFraction() float64 {
	if len(r.OFISeries) == 0 {
		return 0
	}
	atCap := 0
	for _, s := range r.OFISeries {
		if s.EventsRead >= uint64(r.Config.OFIMaxEvents) {
			atCap++
		}
	}
	return float64(atCap) / float64(len(r.OFISeries))
}

// RunHEPnOS deploys one Table IV configuration, runs the data-loader
// workload, and returns the analyzed result.
func RunHEPnOS(cfg HEPnOSConfig) (*HEPnOSResult, error) {
	res, _, _, err := runHEPnOSInternal(cfg)
	return res, err
}

// CollectHEPnOSDumps runs one configuration and returns the raw
// per-process profile and trace dumps — the inputs the analysis scripts
// ingest (used by the Table V benchmark and the cmd tools).
func CollectHEPnOSDumps(cfg HEPnOSConfig) ([]*core.ProfileDump, []*core.TraceDump, error) {
	_, profiles, traces, err := runHEPnOSInternal(cfg)
	return profiles, traces, err
}

func runHEPnOSInternal(cfg HEPnOSConfig) (*HEPnOSResult, []*core.ProfileDump, []*core.TraceDump, error) {
	cfg = cfg.withDefaults()
	cluster := NewCluster(DefaultFabric())
	defer cluster.Shutdown()
	if cfg.Faults != nil {
		cluster.Fabric.SetFaultPlan(cfg.Faults)
	}

	var metricsAddr string
	if cfg.MetricsAddr != "" {
		cluster.EnableTelemetry(telemetry.Options{Interval: cfg.MetricsInterval})
		addr, err := cluster.ServeMetrics(cfg.MetricsAddr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("experiments: serve metrics: %w", err)
		}
		metricsAddr = addr
	}

	// Servers, ServersPerNode per virtual node.
	var infos []hepnos.ServerInfo
	var servers []*hepnos.Server
	for i := 0; i < cfg.TotalServers; i++ {
		node := fmt.Sprintf("server-node%d", i/maxInt(cfg.ServersPerNode, 1))
		inst, err := cluster.Start(ProcessOptions{
			Mode: margo.ModeServer, Node: node,
			Name:           fmt.Sprintf("hepnos%d", i),
			HandlerStreams: cfg.Threads,
			Stage:          cfg.Stage,
			OFIMaxEvents:   serverOFI(cfg),
		})
		if err != nil {
			return nil, nil, nil, err
		}
		srv, err := hepnos.NewServer(inst, cfg.Databases, cfg.Backend,
			sdskv.Config{PutCostPerKey: cfg.PutCostPerKey})
		if err != nil {
			return nil, nil, nil, err
		}
		servers = append(servers, srv)
		infos = append(infos, hepnos.ServerInfo{Addr: srv.Addr(), DBIDs: srv.DBIDs})
	}

	// Clients, ClientsPerNode per virtual node.
	var clients []*margo.Instance
	for i := 0; i < cfg.TotalClients; i++ {
		node := fmt.Sprintf("client-node%d", i/maxInt(cfg.ClientsPerNode, 1))
		inst, err := cluster.Start(ProcessOptions{
			Mode: margo.ModeClient, Node: node,
			Name:                fmt.Sprintf("loader%d", i),
			DedicatedProgressES: cfg.ClientProgressThread,
			Stage:               cfg.Stage,
			OFIMaxEvents:        cfg.OFIMaxEvents,
			Retry:               cfg.Retry,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		if cfg.Retry != nil {
			// put_packed overwrites the same keys on re-execution, so a
			// timed-out attempt is safe to re-issue.
			inst.MarkIdempotent(sdskv.RPCPutPacked)
		}
		clients = append(clients, inst)
	}

	// Run every client's loader concurrently and wait.
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(clients))
	stored := make([]uint64, len(clients))
	for i, inst := range clients {
		wg.Add(1)
		go func(i int, inst *margo.Instance) {
			defer wg.Done()
			stored[i], errs[i] = dataloader.Run(inst, dataloader.Config{
				Events:      cfg.EventsPerClient,
				EventSize:   cfg.EventSize,
				BatchSize:   cfg.BatchSize,
				MaxInflight: cfg.MaxInflight,
				IssueCost:   cfg.IssueCost,
				Issuers:     cfg.IssuersPerClient,
				Servers:     infos,
				Seed:        uint64(i + 1),
			})
		}(i, inst)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, nil, nil, fmt.Errorf("client %d: %w", i, err)
		}
	}
	cluster.WaitIdle(10 * time.Second)
	// Let target-side completion callbacks land.
	time.Sleep(20 * time.Millisecond)

	res := &HEPnOSResult{Config: cfg, WallTime: wall, MetricsAddr: metricsAddr}
	for _, s := range stored {
		res.EventsStored += s
	}
	for _, inst := range cluster.Instances() {
		rs := inst.RetryStats()
		res.Retries += rs.Retries
		res.Timeouts += rs.Timeouts
		res.Exhausted += rs.Exhausted
		res.Cancels += rs.Cancels
	}
	res.Faults = cluster.Fabric.FaultStats()
	profiles, traceDumps := cluster.Collect()
	merged := analysis.Merge(profiles)
	traces := analysis.MergeTraces(traceDumps)
	res.Profile = merged
	res.TraceSamples = len(traces.Events)
	res.TraceDropped = traces.Dropped

	bc := core.Breadcrumb(0).Push(sdskv.RPCPutPacked)
	total, comps := merged.CumulativeTargetExecution(bc)
	res.CumTargetExec = total
	res.Components = comps
	for key, s := range merged.Origin {
		if key.BC == bc {
			res.CumOriginExec += time.Duration(s.Components[core.CompOriginExec])
		}
	}
	res.Unaccounted = merged.Unaccounted(bc, NominalRTT(cluster.Fabric.Config()))
	res.BlockedSeries = traces.BlockedULTSeries(sdskv.RPCPutPacked)
	res.OFISeries = traces.OFIEventsReadSeries("")
	return res, profiles, traceDumps, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// serverOFI picks the server-side progress read budget.
func serverOFI(cfg HEPnOSConfig) int {
	if cfg.ServerOFIMaxEvents > 0 {
		return cfg.ServerOFIMaxEvents
	}
	return cfg.OFIMaxEvents
}
