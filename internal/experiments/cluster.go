// Package experiments builds the paper's experimental setups on the
// simulated platform and reruns every case study: the ior+Mobject
// dominant-callpath and trace studies (Figures 5–6), the Sonata
// serialization breakdown (Figure 7), the HEPnOS configuration studies
// C1–C7 (Table IV, Figures 9–12), and the overhead evaluation
// (Figure 13, Table V). Each runner returns a structured Result that
// the cmd tools print and bench_test.go reports.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/batch"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
	"symbiosys/internal/telemetry"
)

// Cluster is one virtual deployment: a fabric plus the Margo instances
// of every (virtual) process, tracked for teardown and dump collection.
type Cluster struct {
	Fabric    *na.Fabric
	instances []*margo.Instance

	// telemetry, when set via EnableTelemetry, is applied to every
	// subsequently started process; exposer aggregates their samplers.
	telemetry *telemetry.Options
	exposer   *telemetry.Exposer
}

// NewCluster creates a cluster over a fabric with the given cost model.
func NewCluster(cfg na.Config) *Cluster {
	c := &Cluster{Fabric: na.NewFabric(cfg)}
	registerCluster(c)
	return c
}

// ProcessOptions describes one virtual process to start.
type ProcessOptions struct {
	Mode                margo.Mode
	Node                string
	Name                string
	HandlerStreams      int
	DedicatedProgressES bool
	Stage               core.Stage
	EagerLimit          int
	OFIMaxEvents        int
	// Retry installs a client-side resilience policy on the process
	// (margo.Options.Retry); nil keeps single-attempt forwards.
	Retry *margo.RetryPolicy
	// Overload installs server-side admission control on the process
	// (margo.Options.Overload); nil admits unconditionally.
	Overload *margo.OverloadPolicy
	// Batch installs the client-side coalescer (margo.Options.Batch);
	// nil makes ForwardBatched/ForwardMany degrade to plain Forwards.
	Batch *batch.Policy
}

// Start launches a virtual process on the cluster.
func (c *Cluster) Start(opts ProcessOptions) (*margo.Instance, error) {
	inst, err := margo.New(margo.Options{
		Mode:   opts.Mode,
		Node:   opts.Node,
		Name:   opts.Name,
		Fabric: c.Fabric,
		Mercury: mercury.Config{
			EagerLimit:   opts.EagerLimit,
			OFIMaxEvents: opts.OFIMaxEvents,
		},
		HandlerStreams:      opts.HandlerStreams,
		DedicatedProgressES: opts.DedicatedProgressES,
		Stage:               opts.Stage,
		Telemetry:           c.telemetry,
		Retry:               opts.Retry,
		Overload:            opts.Overload,
		Batch:               opts.Batch,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: start %s/%s: %w", opts.Node, opts.Name, err)
	}
	c.instances = append(c.instances, inst)
	if c.exposer != nil && inst.Sampler() != nil {
		c.exposer.Register(inst.Sampler())
	}
	return inst, nil
}

// EnableTelemetry attaches a live sampler (with the given options) to
// every process started after this call and aggregates them under the
// cluster's exposer. Call before Start; then ServeMetrics to scrape.
func (c *Cluster) EnableTelemetry(opts telemetry.Options) {
	c.telemetry = &opts
	if c.exposer == nil {
		c.exposer = telemetry.NewExposer()
	}
}

// Exposer returns the cluster's telemetry exposer (nil until
// EnableTelemetry).
func (c *Cluster) Exposer() *telemetry.Exposer { return c.exposer }

// ServeMetrics starts the cluster's /metrics + /snapshot endpoint on
// addr (":0" picks a free port), returning the bound address. Requires
// EnableTelemetry first.
func (c *Cluster) ServeMetrics(addr string) (string, error) {
	if c.exposer == nil {
		return "", fmt.Errorf("experiments: ServeMetrics before EnableTelemetry")
	}
	return c.exposer.Serve(addr)
}

// Instances returns every process started on the cluster.
func (c *Cluster) Instances() []*margo.Instance { return c.instances }

// Shutdown tears down every process (and the metrics endpoint, if
// serving), returning the first teardown or sink-flush error.
func (c *Cluster) Shutdown() error {
	var first error
	if c.exposer != nil {
		if err := c.exposer.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, inst := range c.instances {
		if err := inst.Shutdown(); err != nil && first == nil {
			first = err
		}
	}
	unregisterCluster(c)
	return first
}

// Drain gracefully quiesces the cluster: every instance stops admitting
// new requests (clients first, so their in-flight forwards complete
// against still-serving providers, then servers), waits up to timeout
// for in-flight work, and tears down. The metrics endpoint stays up
// until the last instance has drained so the draining gauge is
// scrapeable during the window. Returns the first drain error (a
// context deadline means the drain was dirty: in-flight work was
// abandoned).
func (c *Cluster) Drain(timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var first error
	// Reverse start order: experiments start servers before clients, so
	// this drains clients first — their in-flight forwards complete
	// against still-serving providers — then quiesces the servers.
	for i := len(c.instances) - 1; i >= 0; i-- {
		if err := c.instances[i].Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	if c.exposer != nil {
		if err := c.exposer.Close(); err != nil && first == nil {
			first = err
		}
	}
	unregisterCluster(c)
	return first
}

// Cluster registry: live clusters are tracked so process-level signal
// handlers (hepnos-bench, symmon) can drain whatever is running when
// SIGINT/SIGTERM arrives, without threading the cluster through every
// call chain.
var (
	activeMu       sync.Mutex
	activeClusters []*Cluster
)

func registerCluster(c *Cluster) {
	activeMu.Lock()
	activeClusters = append(activeClusters, c)
	activeMu.Unlock()
}

func unregisterCluster(c *Cluster) {
	activeMu.Lock()
	for i, ac := range activeClusters {
		if ac == c {
			activeClusters = append(activeClusters[:i], activeClusters[i+1:]...)
			break
		}
	}
	activeMu.Unlock()
}

// DrainActive drains every live cluster (newest first, so nested or
// later deployments quiesce before the ones they depend on), returning
// the first error. Intended for signal handlers.
func DrainActive(timeout time.Duration) error {
	activeMu.Lock()
	clusters := make([]*Cluster, len(activeClusters))
	copy(clusters, activeClusters)
	activeMu.Unlock()
	var first error
	for i := len(clusters) - 1; i >= 0; i-- {
		if err := clusters[i].Drain(timeout); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitIdle blocks until no process has RPCs in flight.
func (c *Cluster) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for _, inst := range c.instances {
		remain := time.Until(deadline)
		if remain <= 0 || !inst.WaitIdle(remain) {
			return false
		}
	}
	return true
}

// Collect gathers every process's profile and trace dumps — the files
// the SYMBIOSYS analysis scripts would ingest after a run.
func (c *Cluster) Collect() ([]*core.ProfileDump, []*core.TraceDump) {
	profiles := make([]*core.ProfileDump, 0, len(c.instances))
	traces := make([]*core.TraceDump, 0, len(c.instances))
	for _, inst := range c.instances {
		profiles = append(profiles, inst.Profiler().Dump())
		traces = append(traces, inst.Profiler().DumpTrace())
	}
	return profiles, traces
}

// Export streams every process's merged profile snapshot and trace
// events into the given sinks (either may be nil) — the pipeline-native
// alternative to Collect for exporters that consume rather than own the
// measurement buffers.
func (c *Cluster) Export(ps core.ProfileSink, ts core.TraceSink) error {
	for _, inst := range c.instances {
		if ps != nil {
			if err := ps.WriteProfileDump(inst.Profiler().Dump()); err != nil {
				return fmt.Errorf("experiments: export profile for %s: %w", inst.Addr(), err)
			}
		}
		if ts != nil {
			for _, ev := range inst.Profiler().TraceEvents() {
				if err := ts.WriteEvent(ev); err != nil {
					return fmt.Errorf("experiments: export trace for %s: %w", inst.Addr(), err)
				}
			}
		}
	}
	if ps != nil {
		if err := ps.Flush(); err != nil {
			return err
		}
	}
	if ts != nil {
		return ts.Flush()
	}
	return nil
}

// Analyze merges the cluster's dumps into the offline analysis views.
func (c *Cluster) Analyze() (*analysis.MergedProfile, *analysis.TraceSet) {
	profiles, traces := c.Collect()
	return analysis.Merge(profiles), analysis.MergeTraces(traces)
}

// DefaultFabric is the cost model used by all experiments: a scaled HPC
// interconnect (1.5µs local, 8µs remote, 10 GB/s).
func DefaultFabric() na.Config { return na.DefaultConfig() }

// NominalRTT estimates one request+response transit for the unaccounted
// computation (Figure 11): two one-way remote latencies.
func NominalRTT(cfg na.Config) time.Duration { return 2 * cfg.LatencyRemote }
