package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/services/ekv"
	"symbiosys/internal/ssg"
	"symbiosys/internal/telemetry"
)

// elasticGroup is the SSG group name the elastic KV nodes join.
const elasticGroup = "ekv"

// ElasticConfig shapes one elastic scale-out run: an ekv cluster scaled
// StartNodes → PeakNodes → EndNodes under a sustained client load, with
// live shard migration streaming the moving ranges between phases and
// the acked-op audit holding the zero-loss bar throughout.
type ElasticConfig struct {
	// StartNodes → PeakNodes → EndNodes is the churn schedule. Defaults
	// 4 → 16 → 8 (the ISSUE 8 acceptance shape).
	StartNodes int
	PeakNodes  int
	EndNodes   int

	// Clients and IssuersPerClient set the sustained load's concurrency.
	// Client processes run in server mode so membership deltas are
	// pushed to their routing tables. Defaults 2 and 4.
	Clients          int
	IssuersPerClient int
	// OpsPerPhase is operations per issuer in each of the five phases
	// (steady / scale-out / steady / scale-in / steady). Default 60.
	OpsPerPhase int

	// JoinStagger / RetireStagger space the membership changes out so
	// the load overlaps genuinely concurrent migration rounds.
	// Defaults 3ms.
	JoinStagger   time.Duration
	RetireStagger time.Duration

	// Retry is the per-process resilience policy (clients and nodes
	// alike: peer migration traffic rides the same machinery). The
	// default uses short per-try timeouts so stale routes fail over
	// quickly.
	Retry *margo.RetryPolicy

	Stage core.Stage

	// MetricsAddr, when non-empty, serves live telemetry; the result
	// carries a /metrics exposition rendered before the drain with the
	// symbiosys_pvar_elastic_* families.
	MetricsAddr string

	// DrainTimeout bounds the graceful drain ending the run. Default 5s.
	DrainTimeout time.Duration

	// Report, when enabled, renders the run's dominant-critical-path
	// flame (migration segments alongside the serving path).
	Report ReportConfig
}

func (c ElasticConfig) withDefaults() ElasticConfig {
	if c.StartNodes == 0 {
		c.StartNodes = 4
	}
	if c.PeakNodes == 0 {
		c.PeakNodes = 16
	}
	if c.EndNodes == 0 {
		c.EndNodes = 8
	}
	if c.Clients == 0 {
		c.Clients = 2
	}
	if c.IssuersPerClient == 0 {
		c.IssuersPerClient = 4
	}
	if c.OpsPerPhase == 0 {
		c.OpsPerPhase = 60
	}
	if c.JoinStagger == 0 {
		c.JoinStagger = 3 * time.Millisecond
	}
	if c.RetireStagger == 0 {
		c.RetireStagger = 3 * time.Millisecond
	}
	if c.Retry == nil {
		c.Retry = &margo.RetryPolicy{
			MaxAttempts:    6,
			PerTryTimeout:  75 * time.Millisecond,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     16 * time.Millisecond,
			Budget:         -1,
		}
	}
	if c.Stage == 0 {
		c.Stage = core.StageFull
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// ElasticPhase is one load phase's outcome.
type ElasticPhase struct {
	Name  string
	Nodes int // target node count while the phase ran
	Ops   uint64
	Acked uint64
	P99   time.Duration
}

// ElasticResult is the scale-out campaign report.
type ElasticResult struct {
	Config   ElasticConfig
	WallTime time.Duration

	// Phases in order: steady-start, scale-out, steady-peak, scale-in,
	// steady-end.
	Phases []ElasticPhase

	// LostAcked counts acked puts whose keys were missing or wrong at
	// the audit — the acceptance bar is zero.
	LostAcked int64

	// Aggregated node-side migration counters.
	KeysMigratedOut uint64
	KeysMigratedIn  uint64
	WrongRoutes     uint64
	DualWrites      uint64
	ReadThroughs    uint64
	// Redirects is the client-side refresh-and-retry count.
	Redirects uint64

	// FinalSpread is pairs held per live node after the last settle.
	FinalSpread map[string]int

	// MigrateSpans counts ekv_migrate_* spans in the merged trace — the
	// migration segments as symtrace reconstructs them.
	MigrateSpans int

	// MetricsAddr/MetricsText capture the live-telemetry surface when
	// Config.MetricsAddr was set.
	MetricsAddr string
	MetricsText string

	// DrainErr is the graceful drain's outcome.
	DrainErr error

	// ReportPaths lists the analysis reports written for the run.
	ReportPaths []string
}

// SteadyP99 returns the worst steady-phase p99; MigrationP99 the worst
// churn-phase p99. Their ratio is the migration inflation.
func (r *ElasticResult) SteadyP99() time.Duration {
	var worst time.Duration
	for _, p := range r.Phases {
		if strings.HasPrefix(p.Name, "steady") && p.P99 > worst {
			worst = p.P99
		}
	}
	return worst
}

// MigrationP99 returns the worst churn-phase (scale-out/in) p99.
func (r *ElasticResult) MigrationP99() time.Duration {
	var worst time.Duration
	for _, p := range r.Phases {
		if strings.HasPrefix(p.Name, "scale") && p.P99 > worst {
			worst = p.P99
		}
	}
	return worst
}

// ackedOp is one acknowledged put for the audit.
type ackedOp struct {
	key, value string
}

// RunElastic drives the elastic scale-out campaign: load an ekv cluster
// at StartNodes, grow it to PeakNodes under sustained load, shrink to
// EndNodes under load, and audit that no acked op was lost and the
// migration is visible in traces and metrics.
func RunElastic(cfg ElasticConfig) (*ElasticResult, error) {
	cfg = cfg.withDefaults()
	if cfg.PeakNodes < cfg.StartNodes || cfg.EndNodes > cfg.PeakNodes || cfg.EndNodes < 1 {
		return nil, fmt.Errorf("experiments: elastic schedule %d→%d→%d is not a scale-out/scale-in",
			cfg.StartNodes, cfg.PeakNodes, cfg.EndNodes)
	}
	cluster := NewCluster(DefaultFabric())
	shutdown := true
	defer func() {
		if shutdown {
			cluster.Shutdown()
		}
	}()

	res := &ElasticResult{Config: cfg, FinalSpread: make(map[string]int)}

	if cfg.MetricsAddr != "" {
		cluster.EnableTelemetry(telemetry.Options{})
		addr, err := cluster.ServeMetrics(cfg.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("experiments: serve metrics: %w", err)
		}
		res.MetricsAddr = addr
	}

	// The SSG root hosting the service group.
	rootInst, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeServer, Node: "elastic-root", Name: "root", Stage: cfg.Stage,
	})
	if err != nil {
		return nil, err
	}
	host, err := ssg.NewHost(rootInst)
	if err != nil {
		return nil, err
	}
	if _, err := host.Create(elasticGroup, false); err != nil {
		return nil, err
	}
	root := rootInst.Addr()

	// All PeakNodes processes exist from the start; membership (and
	// therefore ownership) is what churns.
	var nodes []*ekv.Node
	var nodeInsts []*margo.Instance
	for i := 0; i < cfg.PeakNodes; i++ {
		inst, err := cluster.Start(ProcessOptions{
			Mode: margo.ModeServer, Node: fmt.Sprintf("elastic-kv%d", i),
			Name: fmt.Sprintf("ekv%d", i), Stage: cfg.Stage, Retry: cfg.Retry,
		})
		if err != nil {
			return nil, err
		}
		n, err := ekv.NewNode(inst, root, elasticGroup)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
		nodeInsts = append(nodeInsts, inst)
	}
	join := func(i int) error {
		var jerr error
		u := nodeInsts[i].Run("join", func(self *abt.ULT) { jerr = nodes[i].Join(self) })
		u.Join(nil)
		return jerr
	}
	retire := func(i int) error {
		var rerr error
		u := nodeInsts[i].Run("retire", func(self *abt.ULT) { rerr = nodes[i].Retire(self) })
		u.Join(nil)
		return rerr
	}
	for i := 0; i < cfg.StartNodes; i++ {
		if err := join(i); err != nil {
			return nil, err
		}
	}

	// Server-mode client processes: their routing tables refresh from
	// pushed membership deltas, falling back to Observe on redirects.
	var clients []*margo.Instance
	var ekvClients []*ekv.Client
	for i := 0; i < cfg.Clients; i++ {
		inst, err := cluster.Start(ProcessOptions{
			Mode: margo.ModeServer, Node: fmt.Sprintf("elastic-client%d", i),
			Name: "load", Stage: cfg.Stage, Retry: cfg.Retry,
		})
		if err != nil {
			return nil, err
		}
		c, err := ekv.NewClient(inst, root, elasticGroup)
		if err != nil {
			return nil, err
		}
		var aerr error
		u := inst.Run("attach", func(self *abt.ULT) { aerr = c.Attach(self) })
		u.Join(nil)
		if aerr != nil {
			return nil, aerr
		}
		clients = append(clients, inst)
		ekvClients = append(ekvClients, c)
	}

	live := func(from, to int) []*ekv.Node { return nodes[from:to] }
	settle := func(ns []*ekv.Node) error {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			done := true
			for _, n := range ns {
				if !n.Settled() {
					done = false
					break
				}
			}
			if done {
				return nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		return fmt.Errorf("experiments: elastic cluster did not settle")
	}

	var (
		ackedMu sync.Mutex
		acked   []ackedOp
	)
	start := time.Now()

	// loadPhase drives OpsPerPhase unique-key puts per issuer while
	// churn (if any) runs concurrently, recording ack latencies.
	loadPhase := func(name string, targetNodes int, churn func() error) error {
		ps := &phaseStats{}
		churnDone := make(chan error, 1)
		if churn != nil {
			go func() { churnDone <- churn() }()
		} else {
			churnDone <- nil
		}
		var firstErr error
		var errMu sync.Mutex
		runPhase(clients, cfg.IssuersPerClient, name, func(self *abt.ULT, inst *margo.Instance, issuer int) {
			ci := 0
			for k, c := range clients {
				if c == inst {
					ci = k
					break
				}
			}
			c := ekvClients[ci]
			for op := 0; op < cfg.OpsPerPhase; op++ {
				key := fmt.Sprintf("elastic/%s/c%d/i%d/op%06d", name, ci, issuer, op)
				val := fmt.Sprintf("v-%s-%d-%d", name, issuer, op)
				t0 := time.Now()
				err := c.Put(self, []byte(key), []byte(val))
				ok := err == nil
				ps.record(key, ok, time.Since(t0))
				if ok {
					ackedMu.Lock()
					acked = append(acked, ackedOp{key: key, value: val})
					ackedMu.Unlock()
				} else {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiments: %s put: %w", name, err)
					}
					errMu.Unlock()
				}
			}
		})
		if cerr := <-churnDone; cerr != nil && firstErr == nil {
			firstErr = cerr
		}
		res.Phases = append(res.Phases, ElasticPhase{
			Name: name, Nodes: targetNodes,
			Ops: ps.ops, Acked: uint64(len(ps.acked)), P99: ps.lat.Percentile(99),
		})
		return firstErr
	}

	// Phase 1 — steady at StartNodes.
	if err := loadPhase("steady-start", cfg.StartNodes, nil); err != nil {
		return nil, err
	}
	// Phase 2 — scale out to PeakNodes under load.
	if err := loadPhase("scale-out", cfg.PeakNodes, func() error {
		for i := cfg.StartNodes; i < cfg.PeakNodes; i++ {
			if err := join(i); err != nil {
				return fmt.Errorf("experiments: join node %d: %w", i, err)
			}
			time.Sleep(cfg.JoinStagger)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := settle(live(0, cfg.PeakNodes)); err != nil {
		return nil, err
	}
	// Phase 3 — steady at PeakNodes.
	if err := loadPhase("steady-peak", cfg.PeakNodes, nil); err != nil {
		return nil, err
	}
	// Phase 4 — scale in to EndNodes under load: the highest-indexed
	// nodes retire one by one, each streaming its shards to survivors.
	if err := loadPhase("scale-in", cfg.EndNodes, func() error {
		for i := cfg.PeakNodes - 1; i >= cfg.EndNodes; i-- {
			if err := retire(i); err != nil {
				return fmt.Errorf("experiments: retire node %d: %w", i, err)
			}
			time.Sleep(cfg.RetireStagger)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := settle(live(0, cfg.EndNodes)); err != nil {
		return nil, err
	}
	// Phase 5 — steady at EndNodes.
	if err := loadPhase("steady-end", cfg.EndNodes, nil); err != nil {
		return nil, err
	}

	cluster.WaitIdle(10 * time.Second)
	time.Sleep(20 * time.Millisecond)
	res.WallTime = time.Since(start)

	// Never-lie audit: every acked put must read back with its value
	// from the final cluster, through a freshly refreshed route.
	auditClient := ekvClients[0]
	var auditErr error
	u := clients[0].Run("audit", func(self *abt.ULT) {
		if err := auditClient.Refresh(self); err != nil {
			auditErr = err
			return
		}
		ackedMu.Lock()
		ops := append([]ackedOp{}, acked...)
		ackedMu.Unlock()
		for _, op := range ops {
			v, found, err := auditClient.Get(self, []byte(op.key))
			if err != nil {
				auditErr = fmt.Errorf("experiments: audit get %s: %w", op.key, err)
				return
			}
			if !found || string(v) != op.value {
				res.LostAcked++
			}
		}
	})
	u.Join(nil)
	if auditErr != nil {
		return nil, auditErr
	}

	for i, n := range nodes {
		st := n.Stats()
		res.KeysMigratedOut += st.KeysMigratedOut
		res.KeysMigratedIn += st.KeysMigratedIn
		res.WrongRoutes += st.WrongRoutes
		res.DualWrites += st.DualWrites
		res.ReadThroughs += st.ReadThroughs
		if i < cfg.EndNodes {
			res.FinalSpread[n.Addr()] = n.Len()
		}
	}
	for _, c := range ekvClients {
		res.Redirects += c.Redirects()
	}

	if res.MetricsAddr != "" {
		for _, s := range cluster.Exposer().Samplers() {
			s.SampleOnce()
		}
		var b strings.Builder
		cluster.Exposer().WriteMetrics(&b)
		res.MetricsText = b.String()
	}

	// Trace visibility: migration segments appear as ekv_migrate_* spans
	// in the merged trace set.
	_, traceDumps := cluster.Collect()
	ts := analysis.MergeTraces(traceDumps)
	for id, evs := range ts.Requests() {
		for _, sp := range analysis.SpansOf(id, evs) {
			if strings.HasPrefix(sp.RPCName, "ekv_migrate_") {
				res.MigrateSpans++
			}
		}
	}
	if cfg.Report.enabled() {
		path, err := cfg.Report.writeFlame("elastic-flame",
			"Elastic scale-out: dominant critical paths under migration", traceDumps)
		if err != nil {
			return nil, err
		}
		res.ReportPaths = append(res.ReportPaths, path)
	}

	// Stop the ekv machinery before the drain: the run's handoffs are
	// done (retired nodes already streamed out), so the drain hooks
	// no-op and the teardown stays orderly.
	for _, n := range nodes {
		n.Close()
	}
	host.Close()
	res.DrainErr = cluster.Drain(cfg.DrainTimeout)
	shutdown = false
	return res, nil
}
