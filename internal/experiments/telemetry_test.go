package experiments

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/telemetry"
)

// scrape fetches one /metrics exposition from addr ("" on error).
func scrape(addr string) (string, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics = %d", resp.StatusCode)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<22), 1<<22)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return sb.String(), sc.Err()
}

// assertWellFormedExposition checks every line is a comment or a
// "name{labels} value" sample with a declared TYPE.
func assertWellFormedExposition(t *testing.T, body string) {
	t.Helper()
	types := make(map[string]string)
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if types[name] == "" && types[base] == "" {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		n++
	}
	if n == 0 {
		t.Fatal("exposition has no samples")
	}
}

// freePort reserves then releases a loopback port for the run to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestSmokeMetrics is the `make smoke-metrics` target: a scaled C1 run
// with live telemetry, scraped WHILE the workload executes, asserting
// the exposition is well-formed and carries the signals the live plane
// promises — per-pool blocked gauges, num_ofi_events_read, trace-drop
// counters, and at least one per-callpath latency histogram whose
// percentiles agree with the end-of-run profile dump within one bucket
// width.
func TestSmokeMetrics(t *testing.T) {
	cfg := scaled(C1, 16)
	cfg.TotalClients = 2
	cfg.ClientsPerNode = 2
	cfg.MetricsAddr = freePort(t)
	cfg.MetricsInterval = 10 * time.Millisecond

	type outcome struct {
		res *HEPnOSResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunHEPnOS(cfg)
		done <- outcome{res, err}
	}()

	// Scrape during the run: retry until the endpoint is up and the
	// exposition carries a callpath histogram (RPC traffic observed).
	var body string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		b, err := scrape(cfg.MetricsAddr)
		if err == nil {
			body = b
			if strings.Contains(b, "symbiosys_callpath_latency_seconds_bucket") {
				break
			}
		}
		select {
		case out := <-done:
			// Run finished before we saw a histogram; fail below on the
			// static checks if the last scrape was empty.
			if out.err != nil {
				t.Fatal(out.err)
			}
			done <- out
			deadline = time.Now() // stop retrying
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	if body == "" {
		t.Fatal("never scraped a live exposition")
	}
	assertWellFormedExposition(t, body)
	for _, want := range []string{
		"symbiosys_pool_blocked{",
		"symbiosys_pvar_num_ofi_events_read{",
		"symbiosys_trace_dropped{",
		"symbiosys_sink_errors{",
		"symbiosys_callpath_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("live exposition missing %q", want)
		}
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.MetricsAddr != cfg.MetricsAddr {
		t.Fatalf("result metrics addr = %q, want %q", out.res.MetricsAddr, cfg.MetricsAddr)
	}

	// Percentile cross-check: the dominant callpath's percentiles from
	// the merged profile must sit inside (± one width of) the histogram
	// bucket the exposition renders them from.
	rows := out.res.Profile.DominantCallpaths(1)
	if len(rows) == 0 {
		t.Fatal("run produced no target callpaths")
	}
	row := rows[0]
	for _, p := range []float64{50, 95, 99} {
		est := row.Percentile(p)
		b := core.HistBucket(uint64(est))
		lo, hi := core.HistBucketBounds(b)
		width := float64(hi - lo)
		if hi == math.MaxUint64 {
			width = float64(row.MaxNanos - lo)
		}
		if float64(est) < float64(lo)-width || float64(est) > float64(hi)+width {
			t.Errorf("p%v = %v outside bucket %d [%d,%d) ± one width", p, est, b, lo, hi)
		}
	}
}

// TestClusterTelemetryLifecycle checks EnableTelemetry/ServeMetrics
// ordering rules and that Shutdown closes the endpoint.
func TestClusterTelemetryLifecycle(t *testing.T) {
	cl := NewCluster(DefaultFabric())
	if _, err := cl.ServeMetrics("127.0.0.1:0"); err == nil {
		t.Fatal("ServeMetrics before EnableTelemetry accepted")
	}
	cl.EnableTelemetry(telemetry.Options{Interval: 5 * time.Millisecond})
	addr, err := cl.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Start(ProcessOptions{Mode: margo.ModeClient, Node: "n0",
		Name: "c0", Stage: core.StageFull}); err != nil {
		t.Fatal(err)
	}
	if len(cl.Exposer().Samplers()) != 1 {
		t.Fatalf("samplers = %d, want 1", len(cl.Exposer().Samplers()))
	}
	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("metrics endpoint still serving after Shutdown")
	}
}
