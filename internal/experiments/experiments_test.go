package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/core"
	"symbiosys/internal/services/mobject"
	"symbiosys/internal/services/sdskv"
)

// scaled shrinks a Table IV configuration for test runtime.
func scaled(cfg HEPnOSConfig, div int) HEPnOSConfig {
	cfg.EventsPerClient = maxInt(cfg.withDefaults().EventsPerClient/div, 64)
	if cfg.TotalClients > 8 {
		cfg.TotalClients = 8
		cfg.ClientsPerNode = 4
	}
	return cfg
}

func TestTableIVHasSevenConfigs(t *testing.T) {
	cfgs := TableIV()
	if len(cfgs) != 7 {
		t.Fatalf("TableIV = %d configs", len(cfgs))
	}
	// Spot-check the paper's values.
	if cfgs[0].Threads != 5 || cfgs[1].Threads != 20 {
		t.Fatal("C1/C2 thread counts wrong")
	}
	if cfgs[1].Databases != 32 || cfgs[2].Databases != 8 {
		t.Fatal("C2/C3 database counts wrong")
	}
	if cfgs[3].BatchSize != 1024 || cfgs[4].BatchSize != 1 {
		t.Fatal("C4/C5 batch sizes wrong")
	}
	if cfgs[5].OFIMaxEvents != 64 || cfgs[4].OFIMaxEvents != 16 {
		t.Fatal("C5/C6 OFI_max_events wrong")
	}
	if !cfgs[6].ClientProgressThread || cfgs[5].ClientProgressThread {
		t.Fatal("C6/C7 progress thread flags wrong")
	}
}

func TestRunHEPnOSStoresAllEvents(t *testing.T) {
	cfg := scaled(C1, 8)
	res, err := RunHEPnOS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(cfg.TotalClients * cfg.EventsPerClient)
	if res.EventsStored != want {
		t.Fatalf("stored %d events, want %d", res.EventsStored, want)
	}
	if res.CumTargetExec == 0 || res.CumOriginExec == 0 {
		t.Fatal("no execution time recorded")
	}
	if res.TraceSamples == 0 {
		t.Fatal("no trace samples at Full stage")
	}
	if len(res.BlockedSeries) == 0 {
		t.Fatal("no blocked-ULT samples")
	}
	if len(res.OFISeries) == 0 {
		t.Fatal("no OFI samples")
	}
	if res.HandlerFraction() <= 0 || res.HandlerFraction() >= 1 {
		t.Fatalf("handler fraction = %f", res.HandlerFraction())
	}
}

func TestFig9HandlerSaturationShape(t *testing.T) {
	// C1 (5 streams) must show a larger handler-time share than C2 (20
	// streams), and C2's cumulative target execution must be lower —
	// the paper's Figure 9 result.
	r1, err := RunHEPnOS(scaled(C1, 4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunHEPnOS(scaled(C2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r1.HandlerFraction() <= r2.HandlerFraction() {
		t.Fatalf("handler fraction C1=%.3f <= C2=%.3f",
			r1.HandlerFraction(), r2.HandlerFraction())
	}
	if r2.CumTargetExec >= r1.CumTargetExec {
		t.Fatalf("cumulative target exec C2=%v >= C1=%v",
			r2.CumTargetExec, r1.CumTargetExec)
	}
}

func TestFig10DatabaseSerializationShape(t *testing.T) {
	// C2 (32 dbs/server) floods the service with more, smaller RPCs
	// than C3 (8 dbs/server): C3 must be faster with fewer, larger
	// put_packed calls (paper §V-C3).
	r2, err := RunHEPnOS(scaled(C2, 4))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := RunHEPnOS(scaled(C3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Unaccounted.Count >= r2.Unaccounted.Count {
		t.Fatalf("RPC count C3=%d >= C2=%d", r3.Unaccounted.Count, r2.Unaccounted.Count)
	}
	if r3.CumTargetExec >= r2.CumTargetExec {
		t.Fatalf("cumulative target exec C3=%v >= C2=%v", r3.CumTargetExec, r2.CumTargetExec)
	}
	if r2.MaxBlocked() == 0 {
		t.Fatal("C2 shows no blocked ULTs — serialization signal missing")
	}
}

func TestFig11BatchAndProgressShape(t *testing.T) {
	// C5 (batch 1) must be far slower than C4 (batch 1024) in wall
	// time; C6 and C7 must successively reduce per-RPC origin latency
	// and the unaccounted share (paper §V-C4).
	run := func(cfg HEPnOSConfig) *HEPnOSResult {
		r, err := RunHEPnOS(scaled(cfg, 8))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r4, r5, r6, r7 := run(C4), run(C5), run(C6), run(C7)

	if r5.WallTime < 2*r4.WallTime {
		t.Fatalf("batch-1 wall %v not much slower than batch-1024 %v",
			r5.WallTime, r4.WallTime)
	}
	mean := func(r *HEPnOSResult) time.Duration {
		if r.Unaccounted.Count == 0 {
			return 0
		}
		return r.CumOriginExec / time.Duration(r.Unaccounted.Count)
	}
	if mean(r6) >= mean(r5) {
		t.Fatalf("per-RPC origin exec C6=%v >= C5=%v", mean(r6), mean(r5))
	}
	if mean(r7) >= mean(r6) {
		t.Fatalf("per-RPC origin exec C7=%v >= C6=%v", mean(r7), mean(r6))
	}
	if r7.Unaccounted.UnaccountedFraction() >= r5.Unaccounted.UnaccountedFraction() {
		t.Fatalf("unaccounted fraction C7=%.3f >= C5=%.3f",
			r7.Unaccounted.UnaccountedFraction(), r5.Unaccounted.UnaccountedFraction())
	}
}

func TestFig12OFISeriesShape(t *testing.T) {
	// C5's progress loop must hit its 16-event budget almost always;
	// C7's must never (paper Figure 12).
	r5, err := RunHEPnOS(scaled(C5, 8))
	if err != nil {
		t.Fatal(err)
	}
	r7, err := RunHEPnOS(scaled(C7, 8))
	if err != nil {
		t.Fatal(err)
	}
	if r5.OFIAtCapFraction() < 0.5 {
		t.Fatalf("C5 at-cap fraction = %.3f, want >= 0.5", r5.OFIAtCapFraction())
	}
	if r7.OFIAtCapFraction() > 0.05 {
		t.Fatalf("C7 at-cap fraction = %.3f, want ~0", r7.OFIAtCapFraction())
	}
}

func TestMobjectStudy(t *testing.T) {
	res, err := RunMobjectIOR(MobjectConfig{Clients: 4, Segments: 3, TransferSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dominant) == 0 {
		t.Fatal("no dominant callpaths")
	}
	// The top callpath must be one of the mobject ops, and the nested
	// write structure must show the 12 discrete calls of Figure 5.
	top := res.Dominant[0].Name
	if !strings.Contains(top, "mobject_") {
		t.Fatalf("top callpath = %q", top)
	}
	if res.WriteTraceRequestID == 0 {
		t.Fatal("no write_op trace captured")
	}
	if n := res.NestedWriteCalls(); n != 12 {
		t.Fatalf("nested write calls = %d, want 12", n)
	}
	// Zipkin export of that request parses and has spans.
	var buf bytes.Buffer
	if err := res.Traces.WriteZipkin(&buf, res.WriteTraceRequestID); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mobject_write_op") {
		t.Fatal("zipkin export missing write_op span")
	}
}

func TestMobjectReadListDominant(t *testing.T) {
	// Figure 6: within mobject_read_op, the sdskv_list_keyvals_rpc hop
	// carries the dominant share of nested time.
	res, err := RunMobjectIOR(MobjectConfig{Clients: 4, Segments: 4, TransferSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	readBC := core.Breadcrumb(0).Push(mobject.RPCReadOp)
	listBC := readBC.Push(sdskv.RPCListKeyvals)
	var listCum, otherCum uint64
	for _, row := range res.Profile.DominantCallpaths(0) {
		if row.BC.Parent() != readBC {
			continue
		}
		if row.BC == listBC {
			listCum = row.CumNanos
		} else if row.CumNanos > otherCum {
			otherCum = row.CumNanos
		}
	}
	if listCum == 0 {
		t.Fatal("no list_keyvals callpath under read_op")
	}
	if listCum < otherCum {
		t.Fatalf("list_keyvals cum %v below another nested hop %v",
			time.Duration(listCum), time.Duration(otherCum))
	}
}

func TestSonataStudy(t *testing.T) {
	res, err := RunSonata(SonataConfig{Records: 5000, BatchSize: 500, RecordSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.RPCCalls != 10 {
		t.Fatalf("RPC calls = %d, want 10", res.RPCCalls)
	}
	// Figure 7 shape: deserialization is a significant share; the
	// internal RDMA transfer is comparatively low but nonzero (batches
	// overflow the eager buffer).
	if f := res.DeserFraction(); f < 0.05 {
		t.Fatalf("deser fraction = %.3f, want significant", f)
	}
	if res.RDMA == 0 {
		t.Fatal("no internal RDMA time despite oversized metadata")
	}
	if res.RDMAFraction() > res.DeserFraction() {
		t.Fatalf("RDMA fraction %.3f exceeds deser fraction %.3f",
			res.RDMAFraction(), res.DeserFraction())
	}
}

func TestOverheadStudyStagesComparable(t *testing.T) {
	base := scaled(C4, 16)
	res, err := RunOverheadStudy(OverheadConfig{Base: base, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 4 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	// Full-support overhead must stay within run-to-run variation
	// territory (paper: indistinguishable; we allow 2x headroom for the
	// noisy test host).
	if ovh := res.OverheadVsBaseline(core.StageFull); ovh > 2.0 {
		t.Fatalf("full-support overhead = %.2fx baseline", ovh)
	}
	// Baseline must collect no trace samples; Full must collect some.
	for _, st := range res.Stages {
		if st.Stage == core.StageOff && st.TraceSamples != 0 {
			t.Fatalf("baseline collected %d samples", st.TraceSamples)
		}
		if st.Stage == core.StageFull && st.TraceSamples == 0 {
			t.Fatal("full support collected no samples")
		}
	}
}

func TestTimeAnalyses(t *testing.T) {
	res, err := RunHEPnOS(scaled(C1, 8))
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Re-run a small cluster to gather dumps directly.
	cluster := NewCluster(DefaultFabric())
	defer cluster.Shutdown()
	profiles, traces := cluster.Collect()
	timings := TimeAnalyses(profiles, traces, io.Discard)
	if timings.ProfileSummary <= 0 || timings.TraceSummary < 0 || timings.SystemStats < 0 {
		t.Fatalf("timings = %+v", timings)
	}
}
