package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/telemetry"
)

// RPCStormPut is the storm scenario's RPC: store one key, burning a
// configurable backend cost on the handler's execution stream.
const RPCStormPut = "storm_put"

// OverloadConfig shapes one overload-storm run: a deliberately
// undersized provider (few execution streams, slow handler) driven past
// saturation by an unpaced client storm, with the full overload-control
// plane engaged — admission watermarks on the server, deadline
// propagation on the wire, circuit breakers + retries on the clients —
// followed by a paced recovery phase that must see goodput return as
// breakers half-open and close.
type OverloadConfig struct {
	// Clients and IssuersPerClient set the storm's concurrency:
	// Clients×IssuersPerClient unpaced issuers. Defaults 6 and 4.
	Clients          int
	IssuersPerClient int
	// StormOps / RecoveryOps are operations per issuer in each phase.
	// Defaults 40 and 20.
	StormOps    int
	RecoveryOps int

	// HandlerStreams and HandlerCost size the provider: capacity is
	// HandlerStreams/HandlerCost ops/sec. Defaults 2 and 300µs — ~6.7k
	// ops/sec, far under the storm's demand.
	HandlerStreams int
	HandlerCost    time.Duration

	// Overload is the server's admission policy. The default uses
	// MaxInFlight 8 (soft 4 / hard 8), so the handler queue is provably
	// bounded regardless of drain speed.
	Overload *margo.OverloadPolicy
	// Retry is the clients' policy; the default enables the breaker
	// (threshold 3, 20ms cooldown), 5 attempts with backoffs whose sum
	// exceeds the cooldown (so recovery-phase retries ride out an open
	// circuit instead of exhausting under it), and no budget bucket so
	// the run is deterministic.
	Retry *margo.RetryPolicy

	// StormDeadline is the absolute per-op deadline stamped on storm
	// requests (ForwardEx). Default 5ms.
	StormDeadline time.Duration
	// RecoveryPace is the inter-op sleep during recovery. Default 10ms
	// (24 issuers at 10ms ≈ 2.4k ops/s, well under the default ~6.7k
	// ops/s capacity, so recovery demand is genuinely sustainable).
	RecoveryPace time.Duration

	Stage core.Stage

	// MetricsAddr, when non-empty, serves live telemetry for the run;
	// the result carries a /metrics exposition rendered right before
	// the drain so callers can assert on the symbiosys_overload_*
	// families.
	MetricsAddr string

	// DrainTimeout bounds the graceful drain ending the run. Default 2s.
	DrainTimeout time.Duration

	// Report, when enabled, renders the run's dominant-critical-path
	// report (queue and backoff segments under saturation) as the storm
	// ends.
	Report ReportConfig
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Clients == 0 {
		c.Clients = 6
	}
	if c.IssuersPerClient == 0 {
		c.IssuersPerClient = 4
	}
	if c.StormOps == 0 {
		c.StormOps = 40
	}
	if c.RecoveryOps == 0 {
		c.RecoveryOps = 20
	}
	if c.HandlerStreams == 0 {
		c.HandlerStreams = 2
	}
	if c.HandlerCost == 0 {
		c.HandlerCost = 300 * time.Microsecond
	}
	if c.Overload == nil {
		c.Overload = &margo.OverloadPolicy{
			SoftWatermark: 4,
			HardWatermark: 8,
			MaxInFlight:   8,
		}
	}
	if c.Retry == nil {
		c.Retry = &margo.RetryPolicy{
			MaxAttempts:    5,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     16 * time.Millisecond,
			Budget:         -1, // deterministic: no token bucket
			Breaker: &margo.BreakerPolicy{
				Threshold: 3,
				Cooldown:  20 * time.Millisecond,
			},
		}
	}
	if c.StormDeadline == 0 {
		c.StormDeadline = 5 * time.Millisecond
	}
	if c.RecoveryPace == 0 {
		c.RecoveryPace = 10 * time.Millisecond
	}
	if c.Stage == 0 {
		c.Stage = core.StageFull
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 2 * time.Second
	}
	return c
}

// stormArgs is the storm_put request payload.
type stormArgs struct {
	Key string
	Val []byte
}

// Proc implements mercury.Procable.
func (a *stormArgs) Proc(p *mercury.Proc) error {
	p.String(&a.Key)
	p.Bytes(&a.Val)
	return p.Err()
}

// stormStore is the provider's backend: a map guarded by an abt mutex
// so concurrent handler ULTs serialize like a real embedded KV store.
type stormStore struct {
	mu   abt.Mutex
	keys map[string]bool
}

func (s *stormStore) put(self *abt.ULT, key string) {
	s.mu.Lock(self)
	s.keys[key] = true
	s.mu.Unlock()
}

// phaseStats accumulates one phase's per-op outcomes across issuers,
// keeping the acknowledged keys for the never-lie audit.
type phaseStats struct {
	mu    sync.Mutex
	ops   uint64
	acked []string
	lat   core.CallStats // acknowledged-op latency distribution
}

func (ps *phaseStats) record(key string, ok bool, d time.Duration) {
	ps.mu.Lock()
	ps.ops++
	if ok {
		ps.acked = append(ps.acked, key)
		ps.lat.Record(d)
	}
	ps.mu.Unlock()
}

// OverloadResult is the storm report.
type OverloadResult struct {
	Config   OverloadConfig
	WallTime time.Duration

	// Per-phase op counts and acknowledged-op latencies.
	StormOps      uint64
	StormAcked    uint64
	RecoveryOps   uint64
	RecoveryAcked uint64
	StormP99      time.Duration
	RecoveryP99   time.Duration

	// LostAcked counts operations the clients saw acknowledged whose
	// keys are missing from the store — the never-lie-to-the-client
	// invariant; the acceptance bar is zero.
	LostAcked int64

	// QueueHWM is the server handler pool's size high-watermark; the
	// MaxInFlight admission cap bounds it.
	QueueHWM int64

	// Server-side decisions and client-side breaker activity.
	Shed             uint64
	Expired          uint64
	BreakerTrips     uint64
	BreakerFastFails uint64
	Retries          uint64
	Exhausted        uint64

	// FailedServerSpans counts Failed target-side spans in the merged
	// trace — shed and expired decisions as symtrace reconstructs them
	// (each rejection must close as one Failed SERVER span, not dangle).
	FailedServerSpans int

	// ServerPVars is the server's profile-dump PVar block (shed,
	// expired, and breaker counters as the offline analysis scripts
	// read them).
	ServerPVars map[string]uint64

	// MetricsAddr/MetricsText capture the live-telemetry surface when
	// Config.MetricsAddr was set: the bound address and a /metrics
	// exposition rendered just before the drain.
	MetricsAddr string
	MetricsText string

	// DrainErr is the graceful drain's outcome (nil means every
	// in-flight handler finished inside Config.DrainTimeout).
	DrainErr error

	// ReportPaths lists the analysis reports written for the run (empty
	// unless Config.Report is enabled).
	ReportPaths []string
}

// StormSuccessRate is acked/issued for the storm phase.
func (r *OverloadResult) StormSuccessRate() float64 {
	if r.StormOps == 0 {
		return 0
	}
	return float64(r.StormAcked) / float64(r.StormOps)
}

// RecoverySuccessRate is acked/issued for the recovery phase.
func (r *OverloadResult) RecoverySuccessRate() float64 {
	if r.RecoveryOps == 0 {
		return 0
	}
	return float64(r.RecoveryAcked) / float64(r.RecoveryOps)
}

// RunOverload drives the storm scenario: saturate, shed, trip breakers,
// recover, drain. See OverloadConfig for the knobs and OverloadResult
// for the facts the smoke test asserts on.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	cfg = cfg.withDefaults()
	cluster := NewCluster(DefaultFabric())
	shutdown := true
	defer func() {
		if shutdown {
			cluster.Shutdown()
		}
	}()

	res := &OverloadResult{Config: cfg}

	if cfg.MetricsAddr != "" {
		cluster.EnableTelemetry(telemetry.Options{})
		addr, err := cluster.ServeMetrics(cfg.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("experiments: serve metrics: %w", err)
		}
		res.MetricsAddr = addr
	}

	// One deliberately undersized provider.
	server, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeServer, Node: "overload-server", Name: "provider",
		HandlerStreams: cfg.HandlerStreams,
		Stage:          cfg.Stage,
		Overload:       cfg.Overload,
	})
	if err != nil {
		return nil, err
	}
	store := &stormStore{keys: make(map[string]bool)}
	if err := server.Register(RPCStormPut, func(ctx *margo.Context) {
		var args stormArgs
		if err := ctx.GetInput(&args); err != nil {
			ctx.RespondError("storm_put: %v", err)
			return
		}
		ctx.Compute(cfg.HandlerCost)
		store.put(ctx.Self, args.Key)
		ctx.Respond(mercury.Void{})
	}); err != nil {
		return nil, err
	}

	var clients []*margo.Instance
	for i := 0; i < cfg.Clients; i++ {
		inst, err := cluster.Start(ProcessOptions{
			Mode: margo.ModeClient,
			Node: fmt.Sprintf("overload-client%d", i), Name: "storm",
			Stage: cfg.Stage,
			Retry: cfg.Retry,
		})
		if err != nil {
			return nil, err
		}
		if err := inst.RegisterClient(RPCStormPut); err != nil {
			return nil, err
		}
		clients = append(clients, inst)
	}

	target := server.Addr()
	start := time.Now()

	// Phase 1 — storm: every issuer fires back-to-back deadline-stamped
	// puts. Demand exceeds capacity several times over, so admission
	// control must shed, deadlines must expire, and breakers must trip.
	storm := &phaseStats{}
	runPhase(clients, cfg.IssuersPerClient, "storm", func(self *abt.ULT, inst *margo.Instance, issuer int) {
		for op := 0; op < cfg.StormOps; op++ {
			key := fmt.Sprintf("storm/%s/%d/%d", inst.Addr(), issuer, op)
			t0 := time.Now()
			err := inst.ForwardEx(self, target, RPCStormPut,
				&stormArgs{Key: key, Val: []byte("v")}, nil,
				margo.ForwardOpts{Deadline: t0.Add(cfg.StormDeadline)})
			storm.record(key, err == nil, time.Since(t0))
		}
	})
	res.StormOps = storm.ops
	res.StormAcked = uint64(len(storm.acked))
	res.StormP99 = storm.lat.Percentile(99)

	// Phase 2 — recovery: the storm stops and issuers pace themselves.
	// Open breakers fast-fail the first few ops, cooldowns elapse,
	// half-open probes succeed against the now-idle provider, circuits
	// close, and goodput returns.
	recovery := &phaseStats{}
	runPhase(clients, cfg.IssuersPerClient, "recovery", func(self *abt.ULT, inst *margo.Instance, issuer int) {
		for op := 0; op < cfg.RecoveryOps; op++ {
			key := fmt.Sprintf("recovery/%s/%d/%d", inst.Addr(), issuer, op)
			t0 := time.Now()
			err := inst.Forward(self, target, RPCStormPut,
				&stormArgs{Key: key, Val: []byte("v")}, nil)
			recovery.record(key, err == nil, time.Since(t0))
			self.Sleep(cfg.RecoveryPace)
		}
	})
	res.RecoveryOps = recovery.ops
	res.RecoveryAcked = uint64(len(recovery.acked))
	res.RecoveryP99 = recovery.lat.Percentile(99)

	cluster.WaitIdle(10 * time.Second)
	time.Sleep(20 * time.Millisecond) // let target completion callbacks land
	res.WallTime = time.Since(start)

	// Never-lie audit: every key a client saw acknowledged must be in
	// the store. An ack only leaves the handler after the put committed,
	// so any miss here is an acked-then-lost bug. (The cluster is idle;
	// the map is quiescent.)
	for _, key := range storm.acked {
		if !store.keys[key] {
			res.LostAcked++
		}
	}
	for _, key := range recovery.acked {
		if !store.keys[key] {
			res.LostAcked++
		}
	}

	// Decision counters, gathered while everything is still up.
	st := server.OverloadStats()
	res.Shed, res.Expired = st.Shed, st.Expired
	res.QueueHWM = server.HandlerPool().SizeHighWatermark()
	for _, inst := range clients {
		cs := inst.OverloadStats()
		res.BreakerTrips += cs.BreakerTrips
		res.BreakerFastFails += cs.BreakerFastFails
		rs := inst.RetryStats()
		res.Retries += rs.Retries
		res.Exhausted += rs.Exhausted
	}

	if res.MetricsAddr != "" {
		// Force a fresh sample on every instance, then render the
		// exposition so the scrape reflects the post-storm counters.
		for _, s := range cluster.Exposer().Samplers() {
			s.SampleOnce()
		}
		var b strings.Builder
		cluster.Exposer().WriteMetrics(&b)
		res.MetricsText = b.String()
	}

	// Profile and trace visibility of the decisions.
	profiles, traceDumps := cluster.Collect()
	for _, p := range profiles {
		if p.Entity == target {
			res.ServerPVars = p.PVars
		}
	}
	ts := analysis.MergeTraces(traceDumps)
	for id, evs := range ts.Requests() {
		for _, sp := range analysis.SpansOf(id, evs) {
			if sp.Kind == "SERVER" && sp.Failed {
				res.FailedServerSpans++
			}
		}
	}
	if cfg.Report.enabled() {
		path, err := cfg.Report.writeFlame("overload-flame",
			"Overload storm: dominant critical paths", traceDumps)
		if err != nil {
			return nil, err
		}
		res.ReportPaths = append(res.ReportPaths, path)
	}

	// Graceful drain ends the run: clients quiesce first, then the
	// provider stops admitting, finishes in-flight handlers, flushes
	// sinks, and tears down.
	res.DrainErr = cluster.Drain(cfg.DrainTimeout)
	shutdown = false
	return res, nil
}

// runPhase runs fn on every (client, issuer) pair as application ULTs
// and joins them.
func runPhase(clients []*margo.Instance, issuers int, name string, fn func(self *abt.ULT, inst *margo.Instance, issuer int)) {
	var wg sync.WaitGroup
	for _, inst := range clients {
		for k := 0; k < issuers; k++ {
			wg.Add(1)
			inst, k := inst, k
			inst.Run(fmt.Sprintf("%s-%d", name, k), func(self *abt.ULT) {
				defer wg.Done()
				fn(self, inst, k)
			})
		}
	}
	wg.Wait()
}
