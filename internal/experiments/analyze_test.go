package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/analysis/report"
)

// TestAnalyzeSmoke is the `make analyze-smoke` target: the from-run-to-
// report pipeline end to end. A small chaos campaign (clean baseline +
// faulted run) emits its reports automatically; the dominant-path
// report must carry a non-empty dominant path, and the same trace set
// must render in all three output modes.
func TestAnalyzeSmoke(t *testing.T) {
	dir := t.TempDir()
	base := scaled(C2, 32)
	base.TotalClients = 2
	base.ClientsPerNode = 2
	base.BatchSize = 8

	res, err := RunChaos(ChaosConfig{
		Base:         base,
		DropProb:     0.02,
		DelayProb:    0.2,
		Delay:        5 * time.Millisecond,
		Seed:         7,
		CompareClean: true,
		Report:       ReportConfig{Dir: dir, Mode: "cli"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReportPaths) != 2 {
		t.Fatalf("report paths = %v, want flame + diff", res.ReportPaths)
	}

	flamePath := filepath.Join(dir, "chaos-flame.txt")
	flameTxt, err := os.ReadFile(flamePath)
	if err != nil {
		t.Fatal(err)
	}
	// Non-empty dominant path: the top shape section renders with at
	// least one attributed segment bar.
	if !strings.Contains(string(flameTxt), "#1 ") {
		t.Fatalf("flame report has no dominant path:\n%s", flameTxt)
	}
	if !strings.Contains(string(flameTxt), ".exec") {
		t.Fatalf("flame report has no exec segment:\n%s", flameTxt)
	}

	diffTxt, err := os.ReadFile(filepath.Join(dir, "chaos-diff.txt"))
	if err != nil {
		t.Fatal(err)
	}
	// The clean-vs-chaos diff must localize the injected faults: retry
	// chains appear as structural NEW shapes carrying backoff or
	// unmatched segments, or drift shows a dominant regression verdict.
	diffStr := string(diffTxt)
	if !strings.Contains(diffStr, "backoff") && !strings.Contains(diffStr, "unmatched") &&
		!strings.Contains(diffStr, "dominant regression") {
		t.Fatalf("diff report does not localize the fault:\n%s", diffStr)
	}

	// All three renderers over the faulted run's report model.
	_, _, traces, err := runHEPnOSInternal(base)
	if err != nil {
		t.Fatal(err)
	}
	f := analysis.BuildFlame(analysis.MergeTraces(traces))
	if len(f.Paths) == 0 {
		t.Fatal("no path shapes extracted from smoke run")
	}
	model := report.FromFlame("analyze smoke", f, 5)
	model.Generated = "smoke"
	for _, mode := range []report.Mode{report.ModeCLI, report.ModeTUI, report.ModeHTML} {
		var buf bytes.Buffer
		if err := report.Render(&buf, mode, model); err != nil {
			t.Fatalf("%v render: %v", mode, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%v render produced no output", mode)
		}
		if !strings.Contains(buf.String(), "analyze smoke") {
			t.Fatalf("%v render missing title", mode)
		}
	}
}

// TestBatchSweepReports exercises the sweep's automatic reporting: the
// per-window flames plus the lo-vs-hi diff land on disk, and the large
// window's paths are marked batched (the batch_window segment is the
// C4 effect per request).
func TestBatchSweepReports(t *testing.T) {
	dir := t.TempDir()
	res, err := RunBatchSweep(BatchSweepConfig{
		Windows:      []int{1, 8},
		Issuers:      2,
		OpsPerIssuer: 64,
		Report:       ReportConfig{Dir: dir, Mode: "cli", Top: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReportPaths) != 3 {
		t.Fatalf("report paths = %v, want w1 + w8 + diff", res.ReportPaths)
	}
	w8, err := os.ReadFile(filepath.Join(dir, "batchsweep-w8.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(w8), "#1 ") {
		t.Fatalf("window-8 report has no dominant path:\n%s", w8)
	}
}
