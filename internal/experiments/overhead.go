package experiments

import (
	"io"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
)

// OverheadConfig drives the Figure 13 overhead study: the same HEPnOS
// data-loader workload executed at each measurement stage, several
// repetitions each.
type OverheadConfig struct {
	Base HEPnOSConfig // deployment/workload shape (stage is overridden)
	Reps int          // paper: 5
}

// StageTiming is one stage's measured execution times.
type StageTiming struct {
	Stage        core.Stage
	Times        []time.Duration
	Mean         time.Duration
	Min          time.Duration
	Max          time.Duration
	TraceSamples int
}

// OverheadResult is the Figure 13 dataset.
type OverheadResult struct {
	Stages []StageTiming
}

// OverheadVsBaseline returns stage s's mean slowdown relative to the
// baseline mean (1.0 = no overhead).
func (r *OverheadResult) OverheadVsBaseline(s core.Stage) float64 {
	var base, stage time.Duration
	for _, st := range r.Stages {
		if st.Stage == core.StageOff {
			base = st.Mean
		}
		if st.Stage == s {
			stage = st.Mean
		}
	}
	if base == 0 {
		return 0
	}
	return float64(stage) / float64(base)
}

// RunOverheadStudy executes the workload at all four stages.
func RunOverheadStudy(cfg OverheadConfig) (*OverheadResult, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	out := &OverheadResult{}
	for _, stage := range []core.Stage{core.StageOff, core.StageInject, core.StageProfile, core.StageFull} {
		st := StageTiming{Stage: stage}
		for rep := 0; rep < cfg.Reps; rep++ {
			c := cfg.Base
			c.Stage = stage
			res, err := RunHEPnOS(c)
			if err != nil {
				return nil, err
			}
			st.Times = append(st.Times, res.WallTime)
			if res.TraceSamples > st.TraceSamples {
				st.TraceSamples = res.TraceSamples
			}
		}
		for i, t := range st.Times {
			st.Mean += t
			if i == 0 || t < st.Min {
				st.Min = t
			}
			if t > st.Max {
				st.Max = t
			}
		}
		st.Mean /= time.Duration(len(st.Times))
		out.Stages = append(out.Stages, st)
	}
	return out, nil
}

// AnalysisTimings is the Table V dataset: how long each analysis script
// takes on a run's collected performance data.
type AnalysisTimings struct {
	ProfileSummary time.Duration
	TraceSummary   time.Duration
	SystemStats    time.Duration

	Profiles    int
	TraceEvents int
	Requests    int
	SpansBuilt  int
}

// TimeAnalyses runs the three analysis passes over collected dumps and
// measures each (Table V). The trace summary — stitching every request
// into spans — dominates, as in the paper.
func TimeAnalyses(profiles []*core.ProfileDump, traces []*core.TraceDump, sink io.Writer) AnalysisTimings {
	var t AnalysisTimings
	t.Profiles = len(profiles)

	start := time.Now()
	merged := analysis.Merge(profiles)
	merged.RenderSummary(sink, 10)
	t.ProfileSummary = time.Since(start)

	start = time.Now()
	ts := analysis.MergeTraces(traces)
	t.TraceEvents = len(ts.Events)
	reqs := ts.Requests()
	t.Requests = len(reqs)
	for id, evs := range reqs {
		t.SpansBuilt += len(analysis.SpansOf(id, evs))
	}
	t.TraceSummary = time.Since(start)

	start = time.Now()
	stats := analysis.SystemStats(ts, 16)
	analysis.RenderSystemStats(sink, stats)
	t.SystemStats = time.Since(start)
	return t
}
