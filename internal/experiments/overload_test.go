package experiments

import (
	"strings"
	"testing"

	"symbiosys/internal/margo"
)

// TestOverloadSmoke is the `make overload-smoke` acceptance gate: the
// storm must be shed without lying to clients, the handler queue must
// stay bounded by the admission cap, breakers must trip under the storm
// and heal during recovery, and the decisions must be visible on every
// measurement surface (live /metrics, profile PVars, trace spans).
func TestOverloadSmoke(t *testing.T) {
	cfg := OverloadConfig{MetricsAddr: "127.0.0.1:0"}
	if testing.Short() {
		cfg.StormOps = 12
		cfg.RecoveryOps = 12
	}
	res, err := RunOverload(cfg)
	if err != nil {
		t.Fatalf("RunOverload: %v", err)
	}
	full := res.Config

	// Never lie to the client: zero acknowledged-then-lost operations.
	if res.LostAcked != 0 {
		t.Errorf("acked-then-lost ops = %d, want 0", res.LostAcked)
	}

	// The admission cap bounds the handler queue even though demand
	// exceeded capacity several times over.
	if max := int64(full.Overload.MaxInFlight); res.QueueHWM > max {
		t.Errorf("handler queue high-watermark %d exceeds MaxInFlight %d",
			res.QueueHWM, max)
	}

	// The storm must actually have overloaded the server and tripped
	// client breakers; otherwise the scenario is not exercising the
	// control plane.
	if res.Shed == 0 {
		t.Error("storm shed no requests; scenario not saturating")
	}
	if res.BreakerTrips == 0 {
		t.Error("no breaker trips during the storm")
	}

	// Goodput must recover once the storm stops: half-open probes
	// succeed against the idle provider and circuits close.
	if got := res.RecoverySuccessRate(); got < 0.9 {
		t.Errorf("recovery success rate %.3f, want >= 0.9", got)
	}
	if res.RecoverySuccessRate() <= res.StormSuccessRate() {
		t.Errorf("recovery success rate %.3f not above storm rate %.3f",
			res.RecoverySuccessRate(), res.StormSuccessRate())
	}

	// The graceful drain must complete inside its timeout.
	if res.DrainErr != nil {
		t.Errorf("drain: %v", res.DrainErr)
	}

	// Shed decisions surface on the live telemetry plane...
	if !strings.Contains(res.MetricsText, "symbiosys_overload_shed_total") {
		t.Error("/metrics exposition missing symbiosys_overload_shed_total")
	}
	// ...in the server's profile dump PVars...
	if res.ServerPVars == nil {
		t.Fatal("server profile dump carries no PVar block")
	}
	if res.ServerPVars[margo.PVarNumRequestsShed] == 0 {
		t.Error("profile PVars show zero shed requests")
	}
	// ...and as Failed target-side spans in the reconstructed trace.
	if res.FailedServerSpans == 0 {
		t.Error("no Failed server spans in the merged trace")
	}
}
