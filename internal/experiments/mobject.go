package experiments

import (
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/services/mobject"
	"symbiosys/internal/workload/ior"
)

// MobjectConfig reproduces the paper's §V-A setup: a single Mobject
// provider node and colocated ior clients on the same physical node.
type MobjectConfig struct {
	Clients      int // paper: 10
	Segments     int // objects written+read per client
	TransferSize int // bytes per object
	Backend      string
	Stage        core.Stage
}

func (c MobjectConfig) withDefaults() MobjectConfig {
	if c.Clients == 0 {
		c.Clients = 10
	}
	if c.Segments == 0 {
		c.Segments = 8
	}
	if c.TransferSize == 0 {
		c.TransferSize = 16 << 10
	}
	if c.Backend == "" {
		c.Backend = "map"
	}
	if c.Stage == 0 {
		c.Stage = core.StageFull
	}
	return c
}

// MobjectResult carries the Figure 5 and Figure 6 artifacts.
type MobjectResult struct {
	Config   MobjectConfig
	WallTime time.Duration

	// Top callpaths by cumulative latency (Figure 6).
	Dominant []analysis.CallpathRow

	// WriteTraceRequestID identifies one complete mobject_write_op
	// request; WriteSpans are its reconstructed spans and ZipkinJSON the
	// exported visualization file (Figure 5).
	WriteTraceRequestID uint64
	WriteSpans          []analysis.Span
	Traces              *analysis.TraceSet
	Profile             *analysis.MergedProfile

	// Raw per-process dumps for the offline tools.
	ProfileDumps []*core.ProfileDump
	TraceDumps   []*core.TraceDump
}

// NestedWriteCalls counts the discrete microservice calls inside the
// traced write op (the paper finds 12).
func (r *MobjectResult) NestedWriteCalls() int {
	n := 0
	for _, s := range r.WriteSpans {
		if s.Kind == "SERVER" && s.RPCName != mobject.RPCWriteOp {
			n++
		}
	}
	return n
}

// RunMobjectIOR reproduces the ior+Mobject study.
func RunMobjectIOR(cfg MobjectConfig) (*MobjectResult, error) {
	cfg = cfg.withDefaults()
	cluster := NewCluster(DefaultFabric())
	defer cluster.Shutdown()

	// One provider node hosting the three colocated providers.
	srv, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeServer, Node: "node0", Name: "mobject",
		HandlerStreams: 16, Stage: cfg.Stage,
	})
	if err != nil {
		return nil, err
	}
	if _, err := mobject.RegisterProviderNode(srv, cfg.Backend); err != nil {
		return nil, err
	}

	// ior clients colocated on the same physical node (paper §V-A2).
	clients := make([]*margo.Instance, cfg.Clients)
	for i := range clients {
		inst, err := cluster.Start(ProcessOptions{
			Mode: margo.ModeClient, Node: "node0",
			Name: fmt.Sprintf("ior%d", i), Stage: cfg.Stage,
		})
		if err != nil {
			return nil, err
		}
		clients[i] = inst
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	for i, inst := range clients {
		wg.Add(1)
		go func(i int, inst *margo.Instance) {
			defer wg.Done()
			_, errs[i] = ior.Run(inst, ior.Config{
				Target:       srv.Addr(),
				Rank:         i,
				Segments:     cfg.Segments,
				TransferSize: cfg.TransferSize,
				ReadBack:     true,
			})
		}(i, inst)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ior client %d: %w", i, err)
		}
	}
	cluster.WaitIdle(10 * time.Second)
	time.Sleep(20 * time.Millisecond)

	profiles, traceDumps := cluster.Collect()
	merged := analysis.Merge(profiles)
	traces := analysis.MergeTraces(traceDumps)
	res := &MobjectResult{
		Config:       cfg,
		WallTime:     wall,
		Dominant:     merged.DominantCallpaths(5),
		Traces:       traces,
		Profile:      merged,
		ProfileDumps: profiles,
		TraceDumps:   traceDumps,
	}

	// Pick one complete mobject_write_op request for the Figure 5 trace.
	for _, ev := range traces.Events {
		if ev.Kind == core.EvOriginEnd && ev.RPCName == mobject.RPCWriteOp {
			res.WriteTraceRequestID = ev.RequestID
			break
		}
	}
	if res.WriteTraceRequestID != 0 {
		res.WriteSpans = traces.Spans(res.WriteTraceRequestID)
	}
	return res, nil
}
