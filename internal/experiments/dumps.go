package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"symbiosys/internal/core"
)

// WriteDumps persists per-process profile and trace dumps into dir as
// <entity>.profile.json and <entity>.trace.json — the on-disk layout
// the symprof / symtrace / symstats tools ingest.
func WriteDumps(dir string, profiles []*core.ProfileDump, traces []*core.TraceDump) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range profiles {
		path := filepath.Join(dir, sanitize(p.Entity)+".profile.json")
		if err := writeJSON(path, func(f *os.File) error { return core.WriteProfile(f, p) }); err != nil {
			return err
		}
	}
	for _, t := range traces {
		path := filepath.Join(dir, sanitize(t.Entity)+".trace.json")
		if err := writeJSON(path, func(f *os.File) error { return core.WriteTrace(f, t) }); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

// sanitize turns a fabric address into a filesystem-safe name.
func sanitize(entity string) string {
	return strings.NewReplacer("/", "_", ":", "_").Replace(entity)
}
