package experiments

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/services/hepnos"
	"symbiosys/internal/services/mobject"
	"symbiosys/internal/services/sdskv"
	"symbiosys/internal/services/sonata"
	"symbiosys/internal/workload/dataloader"
	"symbiosys/internal/workload/ior"
)

// TestMixedServiceSoak deploys all three case-study services on one
// fabric and drives them concurrently: a Mobject provider node under
// ior, a HEPnOS deployment under the data-loader, and a Sonata store
// under a JSON batch writer. It verifies (a) every workload completes,
// (b) the merged profile attributes callpaths to the right services
// without cross-talk, and (c) the trace set stitches cleanly.
func TestMixedServiceSoak(t *testing.T) {
	cluster := NewCluster(DefaultFabric())
	defer cluster.Shutdown()

	// Mobject provider node + ior client.
	mobSrv, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeServer, Node: "node0", Name: "mobject",
		HandlerStreams: 8, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mobject.RegisterProviderNode(mobSrv, "map"); err != nil {
		t.Fatal(err)
	}
	iorCli, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeClient, Node: "node0", Name: "ior", Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}

	// HEPnOS servers + loader client.
	var infos []hepnos.ServerInfo
	for i := 0; i < 2; i++ {
		inst, err := cluster.Start(ProcessOptions{
			Mode: margo.ModeServer, Node: fmt.Sprintf("node%d", i+1),
			Name: "hepnos", HandlerStreams: 4, Stage: core.StageFull,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := hepnos.NewServer(inst, 4, "map", sdskv.Config{})
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, hepnos.ServerInfo{Addr: srv.Addr(), DBIDs: srv.DBIDs})
	}
	loaderCli, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeClient, Node: "node3", Name: "loader", Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sonata server + client.
	sonSrv, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeServer, Node: "node4", Name: "sonata",
		HandlerStreams: 2, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sonata.RegisterProvider(sonSrv, sonata.Config{}); err != nil {
		t.Fatal(err)
	}
	sonCli, err := cluster.Start(ProcessOptions{
		Mode: margo.ModeClient, Node: "node5", Name: "writer", Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	sonClient, err := sonata.NewClient(sonCli)
	if err != nil {
		t.Fatal(err)
	}

	// Drive all three concurrently.
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		_, errs[0] = ior.Run(iorCli, ior.Config{
			Target: mobSrv.Addr(), Rank: 0, Segments: 6,
			TransferSize: 8 << 10, ReadBack: true,
		})
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = dataloader.Run(loaderCli, dataloader.Config{
			Events: 512, EventSize: 256, BatchSize: 16,
			MaxInflight: 8, Issuers: 2, Servers: infos,
		})
	}()
	go func() {
		defer wg.Done()
		u := sonCli.Run("sonata-writer", func(self *abt.ULT) {
			if err := sonClient.CreateCollection(self, sonSrv.Addr(), "soak"); err != nil {
				errs[2] = err
				return
			}
			batch := make([][]byte, 0, 100)
			for i := 0; i < 500; i++ {
				batch = append(batch, sonata.GenerateRecord(i, 128))
				if len(batch) == 100 {
					if _, err := sonClient.StoreMultiJSON(self, sonSrv.Addr(), "soak", batch); err != nil {
						errs[2] = err
						return
					}
					batch = batch[:0]
				}
			}
			// Query the stored documents while other services run.
			ids, _, err := sonClient.ExecQuery(self, sonSrv.Addr(), "soak", `energy >= 0`, 0)
			if err != nil {
				errs[2] = err
				return
			}
			if len(ids) != 500 {
				errs[2] = fmt.Errorf("query matched %d of 500", len(ids))
			}
		})
		u.Join(nil)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("workload %d: %v", i, err)
		}
	}
	if !cluster.WaitIdle(10 * time.Second) {
		t.Fatal("cluster did not go idle")
	}
	time.Sleep(20 * time.Millisecond)

	merged, traces := cluster.Analyze()

	// Every service's signature callpath must be present and correctly
	// attributed — no cross-talk between services sharing the fabric.
	rows := merged.DominantCallpaths(0)
	want := map[string]bool{
		"mobject_write_op":            false,
		"mobject_read_op":             false,
		"sdskv_put_packed_rpc":        false,
		"sonata_store_multi_json_rpc": false,
		"sonata_exec_query_rpc":       false,
	}
	for _, r := range rows {
		if _, tracked := want[r.Name]; tracked {
			want[r.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("callpath %q missing from merged profile", name)
		}
	}

	// The loader's put_packed calls must all target HEPnOS servers.
	bc := core.Breadcrumb(0).Push(sdskv.RPCPutPacked)
	for key := range merged.Origin {
		if key.BC == bc {
			found := false
			for _, info := range infos {
				if key.Peer == info.Addr {
					found = true
				}
			}
			if !found {
				t.Errorf("put_packed attributed to non-HEPnOS peer %s", key.Peer)
			}
		}
	}

	// Traces stitch: every request's spans pair up and the gap view is
	// well-formed.
	reqs := traces.Requests()
	if len(reqs) == 0 {
		t.Fatal("no requests traced")
	}
	spansSeen := 0
	for id, evs := range reqs {
		spans := analysis.SpansOf(id, evs)
		spansSeen += len(spans)
		if f := analysis.UncoveredFraction(spans); f < 0 || f > 1 {
			t.Fatalf("request %#x uncovered fraction %f", id, f)
		}
	}
	if spansSeen == 0 {
		t.Fatal("no spans reconstructed")
	}
}
