package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// TestChaosSmoke is the `make chaos-smoke` target: a short C2-shaped
// run under the seeded 1% drop + 5ms delay plan. It asserts the
// acceptance bar of the failure-path hardening — zero lost client
// operations (every injected loss absorbed by a retry), retries
// actually happening and visible in the live /metrics exposition, and
// a clean shutdown.
func TestChaosSmoke(t *testing.T) {
	base := scaled(C2, 16)
	// Smaller batches mean more request/response messages, so the 1%
	// plan reliably bites even in a short run.
	base.BatchSize = 4
	base.MetricsAddr = freePort(t)
	base.MetricsInterval = 10 * time.Millisecond

	cfg := ChaosConfig{
		Base:      base,
		DropProb:  0.01,
		DelayProb: 0.05,
		Delay:     5 * time.Millisecond,
		Seed:      42,
	}

	type outcome struct {
		res *ChaosResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunChaos(cfg)
		done <- outcome{res, err}
	}()

	// Scrape while the workload runs: the resilience families must be
	// part of the live exposition, not only the end-of-run report.
	var body string
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := scrape(base.MetricsAddr); err == nil {
			body = b
			if strings.Contains(b, "symbiosys_rpc_retries_total") &&
				strings.Contains(b, "symbiosys_fault_drops_total") {
				break
			}
		}
		select {
		case out := <-done:
			if out.err != nil {
				t.Fatal(out.err)
			}
			done <- out
			deadline = time.Now() // endpoint is gone; judge the last scrape
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"symbiosys_rpc_retries_total",
		"symbiosys_rpc_timeouts_total",
		"symbiosys_fault_drops_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("live exposition missing %q", want)
		}
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res

	if res.LostEvents != 0 {
		t.Fatalf("lost %d of %d client operations under the fault plan",
			res.LostEvents, res.ExpectedEvents)
	}
	if res.Faulted.Faults.Drops == 0 {
		t.Fatal("fault plan injected no drops; smoke run has no teeth (seed/workload changed?)")
	}
	if res.Faulted.Retries == 0 {
		t.Fatalf("injected %d drops but recorded no retries", res.Faulted.Faults.Drops)
	}
	if res.Faulted.Exhausted != 0 {
		t.Fatalf("%d forwards exhausted their retries at 1%% drop", res.Faulted.Exhausted)
	}
	if res.RetryAmplification <= 1 {
		t.Errorf("retry amplification = %v, want > 1 with retries recorded", res.RetryAmplification)
	}
	if res.GoodputEventsPerSec <= 0 {
		t.Errorf("goodput = %v events/s", res.GoodputEventsPerSec)
	}
	if res.P99Chaos <= 0 {
		t.Errorf("no chaos p99 recorded")
	}
}

// TestChaosCompareClean exercises the clean-baseline path on a tiny
// workload: both runs complete, and the p99 inflation is computable.
func TestChaosCompareClean(t *testing.T) {
	base := scaled(C2, 32)
	base.TotalClients = 2
	base.ClientsPerNode = 2
	base.BatchSize = 8

	res, err := RunChaos(ChaosConfig{
		Base:         base,
		DropProb:     0.02,
		DelayProb:    0.2,
		Delay:        5 * time.Millisecond,
		Seed:         7,
		CompareClean: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean == nil {
		t.Fatal("CompareClean did not produce a baseline run")
	}
	if res.Clean.Retries != 0 || res.Clean.Faults.Drops != 0 {
		t.Fatalf("clean baseline saw faults: %+v retries=%d", res.Clean.Faults, res.Clean.Retries)
	}
	if res.LostEvents != 0 {
		t.Fatalf("lost %d events", res.LostEvents)
	}
	if res.P99Clean <= 0 || res.P99Chaos <= 0 {
		t.Fatalf("p99s not recorded: clean=%v chaos=%v", res.P99Clean, res.P99Chaos)
	}
	if res.P99Inflation() <= 0 {
		t.Fatalf("p99 inflation = %v", res.P99Inflation())
	}
}

// TestClusterDrainWithInflightUnderFaults: Cluster.Drain during live
// traffic on a faulty fabric must finish clean — clients drain first
// (their in-flight forwards, including fault-triggered retries, run to
// completion against a still-serving provider), then the server — and
// no completed forward may be lost.
func TestClusterDrainWithInflightUnderFaults(t *testing.T) {
	cluster := NewCluster(DefaultFabric())
	shutdown := true
	defer func() {
		if shutdown {
			cluster.Shutdown()
		}
	}()

	plan := na.NewFaultPlan(7)
	plan.Default = na.FaultRule{DelayProb: 0.5, Delay: 2 * time.Millisecond}
	cluster.Fabric.SetFaultPlan(plan)

	srv, err := cluster.Start(ProcessOptions{Mode: margo.ModeServer, Node: "dn1", Name: "srv"})
	if err != nil {
		t.Fatal(err)
	}
	pol := margo.DefaultRetryPolicy()
	cli, err := cluster.Start(ProcessOptions{Mode: margo.ModeClient, Node: "dn0", Name: "cli",
		Retry: &pol})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("drain_rpc", func(ctx *margo.Context) {
		ctx.Compute(5 * time.Millisecond)
		ctx.Respond(mercury.Void{})
	}); err != nil {
		t.Fatal(err)
	}
	if err := cli.RegisterClient("drain_rpc"); err != nil {
		t.Fatal(err)
	}

	const inflight = 6
	errs := make([]error, inflight)
	var wg sync.WaitGroup
	for k := 0; k < inflight; k++ {
		k := k
		wg.Add(1)
		cli.Run("drainer", func(self *abt.ULT) {
			defer wg.Done()
			errs[k] = cli.Forward(self, srv.Addr(), "drain_rpc", &mercury.Void{}, nil)
		})
	}
	// Drain while the forwards are mid-flight; the drain must wait for
	// them rather than cutting the fabric out from under the retries.
	for cli.InFlight() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if err := cluster.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain with in-flight traffic: %v", err)
	}
	shutdown = false
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Errorf("forward %d across drain: %v", k, err)
		}
	}
}
