package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestElasticSmoke scales an in-process ekv service 3 → 6 → 4 under a
// sustained write load and holds the acceptance bars from ISSUE 8:
// zero acked-then-lost ops, migration visible in traces and metrics,
// and a bounded churn-phase p99.
func TestElasticSmoke(t *testing.T) {
	res, err := RunElastic(ElasticConfig{
		StartNodes:       3,
		PeakNodes:        6,
		EndNodes:         4,
		Clients:          2,
		IssuersPerClient: 2,
		OpsPerPhase:      25,
		MetricsAddr:      "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostAcked != 0 {
		t.Errorf("lost %d acked ops, want 0", res.LostAcked)
	}
	if len(res.Phases) != 5 {
		t.Fatalf("got %d phases, want 5", len(res.Phases))
	}
	for _, p := range res.Phases {
		if p.Acked != p.Ops || p.Ops == 0 {
			t.Errorf("phase %s: acked %d of %d ops", p.Name, p.Acked, p.Ops)
		}
	}
	if res.KeysMigratedOut == 0 || res.KeysMigratedIn == 0 {
		t.Errorf("no migration recorded: out=%d in=%d", res.KeysMigratedOut, res.KeysMigratedIn)
	}
	// The final cluster must actually be EndNodes wide with keys spread.
	if len(res.FinalSpread) != 4 {
		t.Errorf("final spread covers %d nodes, want 4", len(res.FinalSpread))
	}
	total := 0
	for addr, n := range res.FinalSpread {
		if n == 0 {
			t.Errorf("surviving node %s holds no keys", addr)
		}
		total += n
	}
	var acked int
	for _, p := range res.Phases {
		acked += int(p.Acked)
	}
	if total != acked {
		t.Errorf("survivors hold %d pairs, want %d (residual copies or losses)", total, acked)
	}
	// Migration must be visible in the trace plane...
	if res.MigrateSpans == 0 {
		t.Error("no ekv_migrate_* spans in merged traces")
	}
	// ...and on /metrics via the registered service pvars.
	for _, family := range []string{
		"symbiosys_pvar_elastic_keys_migrated_out",
		"symbiosys_pvar_elastic_keys_migrated_in",
		"symbiosys_pvar_elastic_migrations_completed",
	} {
		if !strings.Contains(res.MetricsText, family) {
			t.Errorf("metrics exposition missing %s", family)
		}
	}
	// Churn-phase p99 must stay bounded: migration may inflate tails,
	// but a stale route must fail over in a handful of short tries, not
	// hang. The absolute ceiling is generous for -race CI boxes.
	if mig := res.MigrationP99(); mig > 3*time.Second {
		t.Errorf("migration-phase p99 %v exceeds 3s ceiling", mig)
	}
	if res.DrainErr != nil {
		t.Errorf("drain: %v", res.DrainErr)
	}
	t.Logf("steady p99 %v, migration p99 %v, migrated out=%d in=%d, dual=%d readthrough=%d redirects=%d, migrate spans=%d",
		res.SteadyP99(), res.MigrationP99(), res.KeysMigratedOut, res.KeysMigratedIn,
		res.DualWrites, res.ReadThroughs, res.Redirects, res.MigrateSpans)
}
