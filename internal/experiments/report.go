package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/analysis/report"
	"symbiosys/internal/core"
)

// ReportConfig opts an experiment run into automatic analysis-plane
// reports: when Dir is set, the driver renders its trace dumps into
// dominant-path (and, where a baseline exists, diff) reports as the run
// ends — from run to report without invoking the CLIs by hand.
type ReportConfig struct {
	// Dir is the directory reports are written into (created if
	// missing); empty disables reporting.
	Dir string
	// Mode is the output mode: cli, tui, or html. Default html — the
	// self-contained artifact to attach to a run.
	Mode string
	// Top bounds path shapes per report (default 10).
	Top int
}

func (rc ReportConfig) enabled() bool { return rc.Dir != "" }

func (rc ReportConfig) mode() (report.Mode, error) {
	if rc.Mode == "" {
		return report.ModeHTML, nil
	}
	return report.ParseMode(rc.Mode)
}

func (rc ReportConfig) top() int {
	if rc.Top > 0 {
		return rc.Top
	}
	return 10
}

// writeFlame renders the dominant-path report over one run's trace
// dumps and returns the written path.
func (rc ReportConfig) writeFlame(name, title string, dumps []*core.TraceDump) (string, error) {
	mode, err := rc.mode()
	if err != nil {
		return "", err
	}
	f := analysis.BuildFlame(analysis.MergeTraces(dumps))
	m := report.FromFlame(title, f, rc.top())
	m.Generated = time.Now().Format(time.RFC3339)
	return rc.write(name, mode, m)
}

// writeDiff renders the two-run critical-path comparison and returns
// the written path.
func (rc ReportConfig) writeDiff(name, title string, before, after []*core.TraceDump) (string, error) {
	mode, err := rc.mode()
	if err != nil {
		return "", err
	}
	d := analysis.DiffFlames(
		analysis.BuildFlame(analysis.MergeTraces(before)),
		analysis.BuildFlame(analysis.MergeTraces(after)),
	)
	m := report.FromFlameDiff(title, d, rc.top())
	m.Generated = time.Now().Format(time.RFC3339)
	return rc.write(name, mode, m)
}

func (rc ReportConfig) write(name string, mode report.Mode, m *report.Model) (string, error) {
	if err := os.MkdirAll(rc.Dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(rc.Dir, name+mode.Ext())
	if err := report.WriteFile(path, mode, m); err != nil {
		return "", fmt.Errorf("experiments: write report %s: %w", path, err)
	}
	return path, nil
}
