package experiments

import "testing"

// TestBatchSweepC4Effect runs a scaled-down window sweep and checks the
// paper's C4 shape: batched windows beat the plain-Forward baseline by
// a widening margin, with the coalescer accounting to prove the ops
// actually traveled in vectored frames.
func TestBatchSweepC4Effect(t *testing.T) {
	res, err := RunBatchSweep(BatchSweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points, want 3", len(res.Points))
	}
	const total = 2 * 512
	for _, p := range res.Points {
		if p.Ops != total {
			t.Fatalf("window %d completed %d ops, want %d", p.Window, p.Ops, total)
		}
		if p.Window == 1 {
			if p.Flushes != 0 {
				t.Fatalf("baseline recorded %d flushes, want none", p.Flushes)
			}
			continue
		}
		if p.Flushes == 0 || p.CoalesceRatio < 2 {
			t.Fatalf("window %d: flushes=%d coalesce=%.1f — ops did not coalesce",
				p.Window, p.Flushes, p.CoalesceRatio)
		}
	}
	// The acceptance bar is 3x at window 64; the simulated fabric gives
	// far more. Assert with margin so scheduler noise cannot flake.
	if s := res.Speedup(64); s < 3 {
		t.Fatalf("window-64 speedup %.1fx, want >= 3x", s)
	}
	if s8, s64 := res.Speedup(8), res.Speedup(64); s64 <= s8 {
		t.Fatalf("speedup not monotone: w8 %.1fx, w64 %.1fx", s8, s64)
	}
}
