package experiments

import (
	"fmt"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/batch"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// This file reruns the paper's C4 effect — batching amortizes the
// per-RPC overhead — as a standalone microstudy over the coalescer:
// the same multi-op workload is driven through ForwardMany at several
// batch windows, window 1 being the plain-Forward baseline. On the
// simulated fabric each wire exchange costs one runtime-timer hop, so
// the throughput curve over the window mirrors the paper's put_packed
// batch-size knob.

// BatchSweepConfig parameterizes one sweep.
type BatchSweepConfig struct {
	// Windows lists the coalescer windows to measure; window 1 runs
	// without a batch policy (plain Forwards). Default {1, 8, 64}.
	Windows []int
	// Issuers is the number of concurrent client ULTs (default 2);
	// OpsPerIssuer the operations each issues (default 512). The
	// default keeps client concurrency low so the unbatched baseline
	// pays the per-RPC wire cost serially, the regime where the
	// paper's C4 batching knob matters; high issuer counts pipeline
	// RPCs and hide it.
	Issuers      int
	OpsPerIssuer int
	// ValueSize is the per-op payload in bytes (default 64).
	ValueSize int
	// MaxDelay bounds how long a non-full window may park (default
	// 500µs).
	MaxDelay time.Duration

	// Report, when enabled, turns on full-stage measurement for the
	// sweep (normally it runs unmeasured) and renders per-window
	// dominant-path reports plus a smallest-vs-largest-window diff —
	// the batch-window segment appearing is the C4 effect, per request.
	Report ReportConfig
}

func (c *BatchSweepConfig) fillDefaults() {
	if len(c.Windows) == 0 {
		c.Windows = []int{1, 8, 64}
	}
	if c.Issuers <= 0 {
		c.Issuers = 2
	}
	if c.OpsPerIssuer <= 0 {
		c.OpsPerIssuer = 512
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 500 * time.Microsecond
	}
}

// BatchSweepPoint is the measurement at one window.
type BatchSweepPoint struct {
	Window    int
	WallTime  time.Duration
	Ops       int
	OpsPerSec float64
	// Coalescer accounting for the run (all zero at window 1, which
	// runs without a batch policy).
	Flushes       uint64
	CoalesceRatio float64
	Retries       uint64
	FlushReasons  map[string]uint64
}

// BatchSweepResult is the full sweep.
type BatchSweepResult struct {
	Config BatchSweepConfig
	Points []BatchSweepPoint
	// ReportPaths lists the analysis reports written for the sweep
	// (empty unless Config.Report is enabled).
	ReportPaths []string
}

// Speedup reports a window's throughput relative to the window-1
// baseline (zero when either point is missing).
func (r *BatchSweepResult) Speedup(window int) float64 {
	var base, at float64
	for _, p := range r.Points {
		if p.Window == 1 {
			base = p.OpsPerSec
		}
		if p.Window == window {
			at = p.OpsPerSec
		}
	}
	if base == 0 {
		return 0
	}
	return at / base
}

// sweepArgs is the per-op payload of the sweep workload.
type sweepArgs struct {
	Key   string
	Value []byte
}

func (a *sweepArgs) Proc(p *mercury.Proc) error {
	p.String(&a.Key)
	p.Bytes(&a.Value)
	return p.Err()
}

// RunBatchSweep measures the same workload at every configured window.
func RunBatchSweep(cfg BatchSweepConfig) (*BatchSweepResult, error) {
	cfg.fillDefaults()
	res := &BatchSweepResult{Config: cfg}
	tracesByWindow := make(map[int][]*core.TraceDump)
	for _, w := range cfg.Windows {
		if w < 1 {
			return nil, fmt.Errorf("experiments: batch window %d", w)
		}
		point, traces, err := runBatchSweepPoint(cfg, w)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, point)
		tracesByWindow[w] = traces
	}
	if cfg.Report.enabled() {
		for _, w := range cfg.Windows {
			path, err := cfg.Report.writeFlame(fmt.Sprintf("batchsweep-w%d", w),
				fmt.Sprintf("Batch sweep: dominant critical paths at window %d", w),
				tracesByWindow[w])
			if err != nil {
				return nil, err
			}
			res.ReportPaths = append(res.ReportPaths, path)
		}
		if len(cfg.Windows) >= 2 {
			lo, hi := cfg.Windows[0], cfg.Windows[len(cfg.Windows)-1]
			path, err := cfg.Report.writeDiff("batchsweep-diff",
				fmt.Sprintf("Batch sweep: window %d vs window %d critical paths", lo, hi),
				tracesByWindow[lo], tracesByWindow[hi])
			if err != nil {
				return nil, err
			}
			res.ReportPaths = append(res.ReportPaths, path)
		}
	}
	return res, nil
}

func runBatchSweepPoint(cfg BatchSweepConfig, window int) (BatchSweepPoint, []*core.TraceDump, error) {
	cluster := NewCluster(DefaultFabric())
	defer cluster.Shutdown()

	// The sweep normally runs unmeasured (StageOff): its numbers are
	// throughput, and measurement would tax the hot path it studies.
	// Reporting needs per-request traces, so it flips on full staging.
	var stage core.Stage
	if cfg.Report.enabled() {
		stage = core.StageFull
	}

	srv, err := cluster.Start(ProcessOptions{Mode: margo.ModeServer, Node: "n1", Name: "store", Stage: stage})
	if err != nil {
		return BatchSweepPoint{}, nil, err
	}
	var pol *batch.Policy
	if window > 1 {
		pol = &batch.Policy{MaxOps: window, MaxDelay: cfg.MaxDelay}
	}
	cli, err := cluster.Start(ProcessOptions{Mode: margo.ModeClient, Node: "n0", Name: "loader", Batch: pol, Stage: stage})
	if err != nil {
		return BatchSweepPoint{}, nil, err
	}

	if err := srv.Register("sweep_put", func(ctx *margo.Context) {
		var in sweepArgs
		if err := ctx.GetInput(&in); err != nil {
			ctx.RespondError("decode: %v", err)
			return
		}
		ctx.Respond(mercury.Void{})
	}); err != nil {
		return BatchSweepPoint{}, nil, err
	}
	if err := cli.RegisterClient("sweep_put"); err != nil {
		return BatchSweepPoint{}, nil, err
	}

	total := cfg.Issuers * cfg.OpsPerIssuer
	errsByIssuer := make([][]error, cfg.Issuers)
	ults := make([]*abt.ULT, cfg.Issuers)
	start := time.Now()
	for i := 0; i < cfg.Issuers; i++ {
		i := i
		ults[i] = cli.Run("sweep-issuer", func(self *abt.ULT) {
			for done := 0; done < cfg.OpsPerIssuer; done += window {
				n := window
				if rest := cfg.OpsPerIssuer - done; n > rest {
					n = rest
				}
				ins := make([]mercury.Procable, n)
				for k := range ins {
					ins[k] = &sweepArgs{
						Key:   fmt.Sprintf("i%02d-op%04d", i, done+k),
						Value: make([]byte, cfg.ValueSize),
					}
				}
				errsByIssuer[i] = append(errsByIssuer[i], cli.ForwardMany(self, srv.Addr(), "sweep_put", ins, nil)...)
			}
		})
	}
	for _, u := range ults {
		u.Join(nil)
	}
	wall := time.Since(start)
	for i, errs := range errsByIssuer {
		for k, err := range errs {
			if err != nil {
				return BatchSweepPoint{}, nil, fmt.Errorf("experiments: sweep window %d, issuer %d op %d: %w", window, i, k, err)
			}
		}
	}
	if !cluster.WaitIdle(10 * time.Second) {
		return BatchSweepPoint{}, nil, fmt.Errorf("experiments: sweep window %d did not quiesce", window)
	}

	var traces []*core.TraceDump
	if cfg.Report.enabled() {
		_, traces = cluster.Collect()
	}
	bs := cli.BatchStats()
	return BatchSweepPoint{
		Window:        window,
		WallTime:      wall,
		Ops:           total,
		OpsPerSec:     float64(total) / wall.Seconds(),
		Flushes:       bs.Flushes,
		CoalesceRatio: bs.CoalesceRatio,
		Retries:       bs.Retries,
		FlushReasons:  bs.FlushReasons,
	}, traces, nil
}
