package experiments

import (
	"time"

	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
	"symbiosys/internal/services/sdskv"
)

// ChaosConfig shapes one fault-campaign run: the C2 HEPnOS workload
// replayed under a seeded fault plan with the margo retry policy
// absorbing the injected failures.
type ChaosConfig struct {
	// Base is the service configuration to stress. Default C2.
	Base HEPnOSConfig

	// Fault plan knobs, applied as the plan's default rule so every link
	// of the deployment takes them. Defaults: 1% drop, 5ms delay on 5% of
	// messages, no duplication.
	DropProb  float64
	DupProb   float64
	DelayProb float64
	Delay     time.Duration
	// Seed drives the plan's deterministic fault schedule. Default 42.
	Seed uint64

	// Retry is the client-side policy absorbing the faults. Default
	// margo.DefaultRetryPolicy().
	Retry *margo.RetryPolicy

	// Scale divides EventsPerClient (floor 64) so smoke tests finish
	// quickly; 1 (or 0) runs the full workload.
	Scale int

	// CompareClean additionally runs the identical workload without the
	// fault plan, for the p99-inflation baseline.
	CompareClean bool

	// Report, when enabled, renders the run's critical-path reports as
	// the campaign ends: the faulted run's dominant-path flame, and —
	// with CompareClean — the clean-vs-chaos diff localizing the
	// injected fault's segment.
	Report ReportConfig
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Base.Name == "" {
		c.Base = C2
	}
	if c.DropProb == 0 {
		c.DropProb = 0.01
	}
	if c.DelayProb == 0 {
		c.DelayProb = 0.05
	}
	if c.Delay == 0 {
		c.Delay = 5 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Retry == nil {
		pol := margo.DefaultRetryPolicy()
		c.Retry = &pol
	}
	if c.Scale < 1 {
		c.Scale = 1
	}
	return c
}

// Plan materializes the config's fault plan.
func (c ChaosConfig) Plan() *na.FaultPlan {
	p := na.NewFaultPlan(c.Seed)
	p.Default = na.FaultRule{
		DropProb:  c.DropProb,
		DupProb:   c.DupProb,
		DelayProb: c.DelayProb,
		Delay:     c.Delay,
	}
	return p
}

// ChaosResult reports how the workload behaved under the fault plan.
type ChaosResult struct {
	Config  ChaosConfig
	Faulted *HEPnOSResult
	// Clean is the no-fault baseline run (nil unless CompareClean).
	Clean *HEPnOSResult

	// ExpectedEvents is what the workload should have stored;
	// LostEvents is the shortfall (the acceptance bar is zero).
	ExpectedEvents uint64
	LostEvents     int64

	// RetryAmplification is attempts per logical request: total origin
	// attempts divided by first attempts, 1.0 when nothing retried.
	RetryAmplification float64

	// GoodputEventsPerSec is successfully stored events over wall time
	// under faults.
	GoodputEventsPerSec float64

	// P99Chaos (and P99Clean when CompareClean) are the put_packed
	// origin-side 99th percentiles; their ratio is the p99 inflation.
	P99Chaos time.Duration
	P99Clean time.Duration

	// ReportPaths lists the analysis reports written for the run (empty
	// unless Config.Report is enabled).
	ReportPaths []string
}

// P99Inflation returns P99Chaos/P99Clean (0 without a clean baseline).
func (r *ChaosResult) P99Inflation() float64 {
	if r.P99Clean <= 0 {
		return 0
	}
	return float64(r.P99Chaos) / float64(r.P99Clean)
}

// putPackedOriginP99 merges the put_packed origin stats across peers
// and returns the 99th percentile latency. Retried attempts each record
// their own profile entry, so the distribution includes failed tries.
func putPackedOriginP99(res *HEPnOSResult) time.Duration {
	if res.Profile == nil {
		return 0
	}
	bc := core.Breadcrumb(0).Push(sdskv.RPCPutPacked)
	var agg core.CallStats
	for key, st := range res.Profile.Origin {
		if key.BC == bc {
			agg.Merge(st)
		}
	}
	return agg.Percentile(99)
}

// RunChaos replays the configured HEPnOS workload under the fault plan
// (and optionally clean) and derives the campaign report.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()

	base := cfg.Base.withDefaults()
	if cfg.Scale > 1 {
		base.EventsPerClient = maxInt(base.EventsPerClient/cfg.Scale, 64)
	}

	res := &ChaosResult{Config: cfg}
	res.ExpectedEvents = uint64(base.TotalClients) * uint64(base.EventsPerClient)

	var cleanTraces []*core.TraceDump
	if cfg.CompareClean {
		clean, _, traces, err := runHEPnOSInternal(base)
		if err != nil {
			return nil, err
		}
		res.Clean = clean
		res.P99Clean = putPackedOriginP99(clean)
		cleanTraces = traces
	}

	faulted := base
	faulted.Faults = cfg.Plan()
	faulted.Retry = cfg.Retry
	fr, _, chaosTraces, err := runHEPnOSInternal(faulted)
	if err != nil {
		return nil, err
	}
	res.Faulted = fr
	res.LostEvents = int64(res.ExpectedEvents) - int64(fr.EventsStored)
	res.P99Chaos = putPackedOriginP99(fr)
	if fr.WallTime > 0 {
		res.GoodputEventsPerSec = float64(fr.EventsStored) / fr.WallTime.Seconds()
	}

	// Every attempt (first or retried) records one origin profile entry
	// under the put_packed breadcrumb; first attempts are attempts minus
	// recorded retries.
	bc := core.Breadcrumb(0).Push(sdskv.RPCPutPacked)
	var attempts uint64
	if fr.Profile != nil {
		for key, st := range fr.Profile.Origin {
			if key.BC == bc {
				attempts += st.Count
			}
		}
	}
	if first := attempts - fr.Retries; attempts > 0 && first > 0 && fr.Retries < attempts {
		res.RetryAmplification = float64(attempts) / float64(first)
	} else if attempts > 0 {
		res.RetryAmplification = 1
	}

	if cfg.Report.enabled() {
		path, err := cfg.Report.writeFlame("chaos-flame",
			"Chaos campaign: dominant critical paths under faults", chaosTraces)
		if err != nil {
			return nil, err
		}
		res.ReportPaths = append(res.ReportPaths, path)
		if cfg.CompareClean {
			// The clean run is the baseline: the diff localizes the
			// injected fault to its path segment (backoff/unmatched
			// waits dominate the delta) without manual trace reading.
			path, err := cfg.Report.writeDiff("chaos-diff",
				"Chaos campaign: clean vs faulted critical paths", cleanTraces, chaosTraces)
			if err != nil {
				return nil, err
			}
			res.ReportPaths = append(res.ReportPaths, path)
		}
	}
	return res, nil
}
