// Package margo reimplements Margo, the Mochi layer that fuses the
// Mercury RPC library with the Argobots tasking runtime and presents
// blocking RPC calls to microservices. As in the paper (§IV-A), Margo is
// where SYMBIOSYS lives: it is the gateway between services and the
// communication library, so it hosts the callpath profiling, distributed
// tracing, and PVAR sampling at the instrumentation points t1…t14 of the
// Mochi RPC execution model (Figure 2).
//
// An Instance is one virtual process: a fabric endpoint, a Mercury
// class, an Argobots runtime with a main execution stream (running the
// progress ULT and, on clients, the application ULTs), an optional
// dedicated progress stream, and on servers a handler pool with a
// configurable number of execution streams (the "Threads (ESs)" column
// of the paper's Table IV).
package margo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/batch"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
	"symbiosys/internal/mercury/pvar"
	"symbiosys/internal/na"
	"symbiosys/internal/telemetry"
)

// Margo-level resilience PVARs, exported alongside the Mercury library
// variables so the same session plumbing reaches them.
const (
	PVarNumRPCRetries          = "num_rpc_retries"
	PVarNumRPCTimeouts         = "num_rpc_timeouts"
	PVarNumRPCRetriesExhausted = "num_rpc_retries_exhausted"
	PVarNumRequestsShed        = "num_requests_shed"
	PVarNumRequestsExpired     = "num_requests_expired"
	PVarNumBreakerTrips        = "num_breaker_trips"
	// Progress-engine transitions (spin-then-park adaptive loop), exposed
	// so the policy engine can actuate the spin budget later.
	PVarNumProgressSpinPolls = "num_progress_spin_polls"
	PVarNumProgressParks     = "num_progress_parks"
)

// Mode selects client or server behaviour for an instance.
type Mode int

// Instance modes.
const (
	// ModeClient runs application ULTs and the progress ULT.
	ModeClient Mode = iota
	// ModeServer additionally spawns handler ULTs for incoming RPCs.
	ModeServer
)

// Options configures an Instance.
type Options struct {
	Mode   Mode
	Node   string // virtual node name (colocated endpoints share it)
	Name   string // process name within the node
	Fabric *na.Fabric

	// Mercury holds the RPC-library tuning (eager limit, OFI_max_events).
	Mercury mercury.Config

	// HandlerStreams is the number of execution streams draining the
	// handler pool on servers — Table IV's "Threads (ESs)". Default 4.
	HandlerStreams int

	// DedicatedProgressES gives the progress ULT its own execution
	// stream instead of sharing the main one — Table IV's "Client
	// Progress Thread?" remediation (paper §V-C4). Default false.
	DedicatedProgressES bool

	// Stage is the SYMBIOSYS measurement stage. Default StageFull.
	Stage core.Stage

	// ProgressTimeout bounds how long an idle progress pass blocks
	// waiting for network events — the ceiling of the idle backoff.
	// Default 500µs.
	ProgressTimeout time.Duration

	// ProgressSpin is how many consecutive empty poll-and-yield passes
	// the progress loop spins through before it starts parking in
	// blocking waits. Spinning keeps completion latency at poll
	// granularity while traffic flows; the budget bounds the CPU an
	// idle instance burns before backing off. Default 256.
	ProgressSpin int

	// TriggerBatch bounds callbacks executed per progress pass.
	// Default 256.
	TriggerBatch int

	// TraceCapacity bounds the in-memory trace buffer. Default 1<<20.
	TraceCapacity int

	// MeasurementShards is the number of collector shards the
	// measurement pipeline spreads concurrent recordings over (rounded
	// up to a power of two). Default core.DefaultShards; raise it for
	// servers with many handler streams.
	MeasurementShards int

	// TraceSinks are streaming consumers attached to the measurement
	// pipeline at startup; each observes every trace event the instance
	// emits (e.g. a core.JSONLTraceSink for on-line export).
	TraceSinks []core.TraceSink

	// Telemetry, when non-nil, attaches a live telemetry sampler that
	// snapshots PVARs, pool occupancy, completion-queue state, and
	// collector health on the configured tick. Nil (the default) means
	// no sampler goroutine and no per-tick cost.
	Telemetry *telemetry.Options

	// Retry, when non-nil, applies client-side resilience to every
	// Forward/ForwardTimeout: failed sends are re-issued under the
	// policy's backoff, and per-try timeouts are retried for RPCs opted
	// in via MarkIdempotent. Nil (the default) keeps the historical
	// single-attempt semantics.
	Retry *RetryPolicy

	// Overload, when non-nil, enables server-side admission control:
	// requests arriving while the handler pool is past the policy's
	// watermarks (or while the instance drains) are shed at dispatch
	// with mercury.ErrOverloaded instead of queueing unboundedly. Nil
	// (the default) admits unconditionally.
	Overload *OverloadPolicy

	// Batch, when non-nil, enables the client-side coalescer:
	// ForwardBatched/ForwardMany calls sharing a (target, RPC) pair
	// merge into vectored forwards under the policy's window. Nil (the
	// default) makes those calls degrade to plain Forwards.
	Batch *batch.Policy
}

func (o *Options) fillDefaults() {
	if o.HandlerStreams <= 0 {
		o.HandlerStreams = 4
	}
	if o.ProgressTimeout <= 0 {
		o.ProgressTimeout = 500 * time.Microsecond
	}
	if o.ProgressSpin <= 0 {
		o.ProgressSpin = 256
	}
	if o.TriggerBatch <= 0 {
		o.TriggerBatch = 256
	}
}

// Instance is one Margo-managed virtual process.
type Instance struct {
	opts Options
	hg   *mercury.Class
	ep   *na.Endpoint
	rt   *abt.Runtime

	mainPool     *abt.Pool
	progressPool *abt.Pool // == mainPool unless DedicatedProgressES
	handlerPool  *abt.Pool // servers only; == mainPool on clients

	prof *core.Profiler
	sys  *core.SysSampler

	// Margo's PVAR session into Mercury (paper Figure 3), opened at
	// initialization with handles pre-allocated for every variable it
	// fuses into profiles and traces.
	session     *pvar.Session
	pvarMu      sync.Mutex // RegisterServicePVar mutates pvarGlobals while the sampler reads it
	pvarGlobals map[string]*pvar.Handle
	pvarBound   map[string]*pvar.Handle

	progressULT *abt.ULT
	stopping    atomic.Bool

	// Progress-engine state: lifetime spin-poll and park counters
	// (exported as PVARs and telemetry series).
	progressSpinsTotal atomic.Uint64
	progressParksTotal atomic.Uint64

	rpcsInFlight atomic.Int64
	// idleCh, when non-nil, is closed by the forward that drives
	// rpcsInFlight to zero; WaitIdle parks on it instead of polling.
	idleMu sync.Mutex
	idleCh chan struct{}

	// Client-side resilience state (Options.Retry) and its lifetime
	// counters, also exported as PVARs and telemetry series.
	retry          *retryState
	idemMu         sync.Mutex
	idem           map[string]bool
	retriesTotal   atomic.Uint64
	timeoutsTotal  atomic.Uint64
	exhaustedTotal atomic.Uint64
	cancelsTotal   atomic.Uint64

	// handlerStreams is read by monitors while AddHandlerStreams grows
	// it from policy goroutines, so it lives outside opts.
	handlerStreams atomic.Int64

	// Server-side overload-control state (Options.Overload): the
	// admission policy, the draining flag Drain raises, the
	// admitted-but-unfinished handler count, and the shed/expired
	// lifetime counters exported as PVARs and telemetry series.
	overload         *OverloadPolicy
	draining         atomic.Bool
	handlersInFlight atomic.Int64
	shedTotal        atomic.Uint64
	expiredTotal     atomic.Uint64

	// Drain hooks (OnDrain): services park last-chance work here — e.g.
	// handing owned KV shards to peers before the endpoint closes.
	drainMu    sync.Mutex
	drainHooks []func(context.Context) error

	// Client-side circuit breakers (RetryPolicy.Breaker), one per
	// (target, RPC) pair, with their lifetime counters.
	breakerMu             sync.Mutex
	breakers              map[breakerKey]*breaker
	breakerTripsTotal     atomic.Uint64
	breakerFastFailsTotal atomic.Uint64

	// Client-side coalescer state (Options.Batch): one window per
	// (target, RPC) pair plus the shared flush accounting.
	batchPol   *batch.Policy
	coalMu     sync.Mutex
	coals      map[breakerKey]*coalescer
	batchSeq   atomic.Uint64
	batchStats batch.Stats

	sampler *telemetry.Sampler
}

// ULT-local key types for metadata propagation (paper §IV-A1: the
// callpath ancestry and request identity travel in keys local to the ULT
// servicing a request so downstream RPCs extend the chain).
type (
	keyBreadcrumb struct{}
	keyRequestID  struct{}
	// keyDeadline / keyPriority carry the overload-control fields across
	// hops the same way: a handler servicing a deadline-stamped request
	// stamps the same absolute deadline onto its nested forwards.
	keyDeadline struct{}
	keyPriority struct{}
)

// New creates and starts an instance: endpoint, Mercury class, Argobots
// topology, PVAR session, and the progress ULT.
func New(opts Options) (*Instance, error) {
	opts.fillDefaults()
	if opts.Fabric == nil {
		return nil, fmt.Errorf("margo: Options.Fabric is required")
	}
	ep, err := opts.Fabric.NewEndpoint(opts.Node, opts.Name)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		opts: opts,
		ep:   ep,
		hg:   mercury.NewClass(ep, opts.Mercury),
		rt:   abt.NewRuntime(),
		sys:  core.NewSysSampler(0),
	}
	inst.prof = core.NewProfiler(ep.Addr(), opts.Stage)
	if opts.MeasurementShards > 0 {
		inst.prof.SetShards(opts.MeasurementShards)
	}
	if opts.TraceCapacity > 0 {
		inst.prof.SetTraceCapacity(opts.TraceCapacity)
	}
	for _, s := range opts.TraceSinks {
		inst.prof.AddTraceSink(s)
	}

	inst.mainPool = inst.rt.AddPool("main")
	inst.rt.AddXStreams("main-es", 1, inst.mainPool)

	inst.progressPool = inst.mainPool
	if opts.DedicatedProgressES {
		inst.progressPool = inst.rt.AddPool("progress")
		inst.rt.AddXStreams("progress-es", 1, inst.progressPool)
	}

	inst.handlerPool = inst.mainPool
	if opts.Mode == ModeServer {
		inst.handlerPool = inst.rt.AddPool("handlers")
		inst.rt.AddXStreams("handler-es", opts.HandlerStreams, inst.handlerPool)
	}

	inst.handlerStreams.Store(int64(opts.HandlerStreams))
	if opts.Retry != nil {
		inst.retry = newRetryState(*opts.Retry)
	}
	if opts.Overload != nil {
		pol := opts.Overload.withDefaults()
		inst.overload = &pol
	}
	if opts.Batch != nil {
		pol := opts.Batch.WithDefaults()
		inst.batchPol = &pol
	}
	// Export margo's own resilience counters through the same PVAR
	// registry as the Mercury library variables, so they reach tools via
	// the session interface and the telemetry sampler alike.
	inst.hg.PVars().RegisterGlobal(PVarNumRPCRetries,
		"forward attempts re-issued by the margo retry policy",
		pvar.ClassCounter, inst.retriesTotal.Load)
	inst.hg.PVars().RegisterGlobal(PVarNumRPCTimeouts,
		"forward attempts canceled by their per-try deadline",
		pvar.ClassCounter, inst.timeoutsTotal.Load)
	inst.hg.PVars().RegisterGlobal(PVarNumRPCRetriesExhausted,
		"forwards abandoned after exhausting attempts, deadline, or retry budget",
		pvar.ClassCounter, inst.exhaustedTotal.Load)
	inst.hg.PVars().RegisterGlobal(PVarNumRequestsShed,
		"incoming requests shed by admission control (watermarks or draining)",
		pvar.ClassCounter, inst.shedTotal.Load)
	inst.hg.PVars().RegisterGlobal(PVarNumRequestsExpired,
		"incoming requests rejected because their propagated deadline passed",
		pvar.ClassCounter, inst.expiredTotal.Load)
	inst.hg.PVars().RegisterGlobal(PVarNumBreakerTrips,
		"circuit breaker closed-to-open transitions on the client side",
		pvar.ClassCounter, inst.breakerTripsTotal.Load)
	inst.hg.PVars().RegisterGlobal(PVarNumProgressSpinPolls,
		"empty non-blocking polls the adaptive progress loop spun through",
		pvar.ClassCounter, inst.progressSpinsTotal.Load)
	inst.hg.PVars().RegisterGlobal(PVarNumProgressParks,
		"blocking completion-queue waits the progress loop parked in",
		pvar.ClassCounter, inst.progressParksTotal.Load)
	inst.hg.PVars().RegisterGlobal(PVarNumBatchesFlushed,
		"coalescer windows flushed as vectored forwards",
		pvar.ClassCounter, inst.batchStats.Flushes)
	inst.hg.PVars().RegisterGlobal(PVarNumBatchedOps,
		"forwards that traveled inside vectored frames",
		pvar.ClassCounter, inst.batchStats.Ops)
	inst.hg.PVars().RegisterGlobal(PVarNumBatchRetries,
		"batch-level retry attempts of vectored forwards",
		pvar.ClassCounter, inst.batchStats.Retries)
	inst.hg.PVars().RegisterGlobal(PVarBatchOccupancy,
		"member count of the most recently flushed batch window",
		pvar.ClassLevel, inst.batchStats.LastOccupancy)
	inst.initPVarSession()
	// Profile dumps carry the resilience/overload totals alongside the
	// callpath stats. The closure reads the atomics directly (not the
	// PVAR session) so dumps taken after Shutdown finalized the session
	// still see the final values.
	inst.prof.SetPVarSnapshot(func() map[string]uint64 {
		return map[string]uint64{
			PVarNumRPCRetries:          inst.retriesTotal.Load(),
			PVarNumRPCTimeouts:         inst.timeoutsTotal.Load(),
			PVarNumRPCRetriesExhausted: inst.exhaustedTotal.Load(),
			PVarNumRequestsShed:        inst.shedTotal.Load(),
			PVarNumRequestsExpired:     inst.expiredTotal.Load(),
			PVarNumBreakerTrips:        inst.breakerTripsTotal.Load(),
			PVarNumBatchesFlushed:      inst.batchStats.Flushes(),
			PVarNumBatchedOps:          inst.batchStats.Ops(),
			PVarNumBatchRetries:        inst.batchStats.Retries(),
		}
	})
	inst.progressULT = inst.progressPool.Create("margo-progress", inst.progressLoop)
	if opts.Telemetry != nil {
		inst.sampler = telemetry.NewSampler(inst, *opts.Telemetry)
		inst.sampler.Start()
	}
	return inst, nil
}

// Addr returns the instance's fabric address.
func (i *Instance) Addr() string { return i.ep.Addr() }

// Mode reports whether the instance was initialized as a server or a
// client (servers can register handlers and receive pushes).
func (i *Instance) Mode() Mode { return i.opts.Mode }

// Profiler returns the instance's SYMBIOSYS measurement state.
func (i *Instance) Profiler() *core.Profiler { return i.prof }

// Mercury returns the underlying RPC library instance.
func (i *Instance) Mercury() *mercury.Class { return i.hg }

// MainPool returns the pool running application/progress ULTs.
func (i *Instance) MainPool() *abt.Pool { return i.mainPool }

// HandlerPool returns the pool running RPC handler ULTs.
func (i *Instance) HandlerPool() *abt.Pool { return i.handlerPool }

// Stage returns the active measurement stage.
func (i *Instance) Stage() core.Stage { return i.prof.Stage() }

// SetStage switches the measurement stage at runtime.
func (i *Instance) SetStage(s core.Stage) { i.prof.SetStage(s) }

// progressLoop is the Mercury progress ULT (paper §V-C4): it reads up to
// OFI_max_events completion events per pass, fires completion callbacks,
// and yields so colocated ULTs can run.
//
// The engine is adaptive, spin-then-park: while events flow (or other
// ULTs wait for this stream) every pass is a non-blocking poll plus a
// yield, which keeps completion latency at poll granularity instead of
// timer granularity. Only after ProgressSpin consecutive empty passes
// does the loop start blocking inside the na completion-queue wait, with
// the timeout backing off exponentially to ProgressTimeout so an idle
// instance releases the CPU. Any delivered event or runnable neighbor
// snaps it back to spinning. The spin/park transitions are exported as
// PVARs (num_progress_spin_polls, num_progress_parks) so the policy
// engine can observe and later actuate the budget.
func (i *Instance) progressLoop(self *abt.ULT) {
	spin := 0
	backoff := i.opts.ProgressTimeout
	for !i.stopping.Load() {
		shared := i.progressPool.Runnable() > 0
		timeout := time.Duration(0)
		if !shared && spin >= i.opts.ProgressSpin {
			// Idle past the spin budget: park in the completion-queue
			// wait, doubling toward the ProgressTimeout ceiling.
			backoff *= 2
			if backoff > i.opts.ProgressTimeout {
				backoff = i.opts.ProgressTimeout
			}
			timeout = backoff
			i.progressParksTotal.Add(1)
		}
		moved := i.hg.Progress(timeout)
		moved += i.hg.Trigger(i.opts.TriggerBatch)
		if moved > 0 || shared {
			spin = 0
			backoff = i.opts.ProgressTimeout / 16
		} else if spin < i.opts.ProgressSpin {
			spin++
			i.progressSpinsTotal.Add(1)
		}
		self.Yield()
	}
}

// Run starts an application ULT on the main pool (client workloads).
func (i *Instance) Run(name string, fn func(self *abt.ULT)) *abt.ULT {
	return i.mainPool.Create(name, fn)
}

// AddHandlerStreams grows the server's handler pool by n execution
// streams at runtime — the remediation of the paper's C1→C2 move,
// applied live by the policy engine (paper §VII future work).
func (i *Instance) AddHandlerStreams(n int) error {
	if i.opts.Mode != ModeServer {
		return fmt.Errorf("margo: AddHandlerStreams requires ModeServer")
	}
	if n <= 0 {
		return fmt.Errorf("margo: AddHandlerStreams(%d)", n)
	}
	i.rt.AddXStreams("handler-es-extra", n, i.handlerPool)
	i.handlerStreams.Add(int64(n))
	return nil
}

// HandlerStreams reports the current handler execution stream count.
func (i *Instance) HandlerStreams() int { return int(i.handlerStreams.Load()) }

// OFIMaxEvents reports the progress loop's completion read budget.
func (i *Instance) OFIMaxEvents() int { return i.hg.Config().OFIMaxEvents }

// SetOFIMaxEvents adjusts the read budget at runtime (the C5→C6 move).
func (i *Instance) SetOFIMaxEvents(n int) { i.hg.SetOFIMaxEvents(n) }

// InFlight reports RPCs this instance has forwarded but not completed.
func (i *Instance) InFlight() int64 { return i.rpcsInFlight.Load() }

// WaitIdle blocks until no RPCs are in flight or the timeout expires,
// reporting whether the instance went idle. The wait parks on the
// in-flight-count event the completing forward signals — no polling, no
// latency jitter from sleep quantization.
func (i *Instance) WaitIdle(timeout time.Duration) bool {
	if i.rpcsInFlight.Load() == 0 {
		return true
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		i.idleMu.Lock()
		if i.idleCh == nil {
			i.idleCh = make(chan struct{})
		}
		ch := i.idleCh
		i.idleMu.Unlock()
		// Recheck after registering: the closing decrement either sees
		// the channel (and closes it) or happened before this load.
		if i.rpcsInFlight.Load() == 0 {
			return true
		}
		select {
		case <-ch:
			if i.rpcsInFlight.Load() == 0 {
				return true
			}
		case <-deadline.C:
			return i.rpcsInFlight.Load() == 0
		}
	}
}

// rpcDone releases one in-flight slot and, on the transition to zero,
// wakes WaitIdle parkers.
func (i *Instance) rpcDone() {
	if i.rpcsInFlight.Add(-1) != 0 {
		return
	}
	i.idleMu.Lock()
	if i.idleCh != nil {
		close(i.idleCh)
		i.idleCh = nil
	}
	i.idleMu.Unlock()
}

// AddTraceSink attaches a streaming consumer of this instance's trace
// events at runtime (attached sinks also survive Shutdown's flush).
func (i *Instance) AddTraceSink(s core.TraceSink) { i.prof.AddTraceSink(s) }

// Sampler returns the instance's telemetry sampler, or nil when
// Options.Telemetry was not set.
func (i *Instance) Sampler() *telemetry.Sampler { return i.sampler }

// Shutdown stops the telemetry sampler and progress loop, flushes any
// attached trace sinks, and tears down the runtime. It returns the
// first sink flush error, so exporters learn about lost events.
func (i *Instance) Shutdown() error {
	if !i.stopping.CompareAndSwap(false, true) {
		return nil
	}
	if i.sampler != nil {
		i.sampler.Stop()
	}
	i.progressULT.Join(nil)
	err := i.prof.FlushSinks()
	if i.session != nil {
		i.session.Finalize()
	}
	i.ep.Close()
	i.rt.Shutdown()
	return err
}

// initPVarSession opens Margo's sampling session with Mercury and
// allocates handles for every PVAR it fuses into measurements, mirroring
// the initialization handshake of the paper's Figure 3.
func (i *Instance) initPVarSession() {
	i.session = i.hg.PVars().InitSession()
	i.pvarGlobals = make(map[string]*pvar.Handle)
	i.pvarBound = make(map[string]*pvar.Handle)
	for _, name := range []string{
		mercury.PVarNumOFIEventsRead,
		mercury.PVarCompletionQueueSize,
		mercury.PVarNumPostedHandles,
		mercury.PVarNumRPCsInvoked,
		mercury.PVarBulkBytesTransferred,
		PVarNumRPCRetries,
		PVarNumRPCTimeouts,
		PVarNumRPCRetriesExhausted,
		PVarNumRequestsShed,
		PVarNumRequestsExpired,
		PVarNumBreakerTrips,
		PVarNumProgressSpinPolls,
		PVarNumProgressParks,
	} {
		h, err := i.session.AllocHandleByName(name)
		if err != nil {
			panic(fmt.Sprintf("margo: alloc global pvar %s: %v", name, err))
		}
		i.pvarGlobals[name] = h
	}
	for _, name := range []string{
		mercury.PVarInputSerTime,
		mercury.PVarInputDeserTime,
		mercury.PVarOutputSerTime,
		mercury.PVarInternalRDMATime,
		mercury.PVarOriginCBTime,
	} {
		h, err := i.session.AllocHandleByName(name)
		if err != nil {
			panic(fmt.Sprintf("margo: alloc bound pvar %s: %v", name, err))
		}
		i.pvarBound[name] = h
	}
}

// RegisterServicePVar exposes a service-level variable through the same
// PVAR plumbing as the library counters: it enters the Mercury
// registry, gets a session handle, and is fused into telemetry samples
// — so a service counter reaches /metrics as symbiosys_pvar_<name>
// with no exporter-side wiring. Callable at any point after New; read
// must be safe for concurrent use (an atomic load).
func (i *Instance) RegisterServicePVar(name, desc string, class pvar.Class, read func() uint64) error {
	i.hg.PVars().RegisterGlobal(name, desc, class, read)
	h, err := i.session.AllocHandleByName(name)
	if err != nil {
		return fmt.Errorf("margo: alloc service pvar %s: %w", name, err)
	}
	i.pvarMu.Lock()
	i.pvarGlobals[name] = h
	i.pvarMu.Unlock()
	return nil
}

// globalPVarHandle fetches a global PVAR handle under the lock that
// RegisterServicePVar mutates the map under.
func (i *Instance) globalPVarHandle(name string) *pvar.Handle {
	i.pvarMu.Lock()
	defer i.pvarMu.Unlock()
	return i.pvarGlobals[name]
}

// readGlobalPVar samples one library-global PVAR, returning 0 on error.
func (i *Instance) readGlobalPVar(name string) uint64 {
	h := i.globalPVarHandle(name)
	if h == nil {
		return 0
	}
	v, err := i.session.Read(h, nil)
	if err != nil {
		return 0
	}
	return v
}

// readBoundPVar samples one handle-bound PVAR off mh.
func (i *Instance) readBoundPVar(name string, mh *mercury.Handle) uint64 {
	h := i.pvarBound[name]
	if h == nil {
		return 0
	}
	v, err := i.session.Read(h, mh)
	if err != nil {
		return 0
	}
	return v
}

// samplePVars builds the PVAR annotation for a trace event (Full stage).
func (i *Instance) samplePVars(mh *mercury.Handle) *core.PVarSample {
	s := &core.PVarSample{
		OFIEventsRead:    i.readGlobalPVar(mercury.PVarNumOFIEventsRead),
		CompletionQueue:  i.readGlobalPVar(mercury.PVarCompletionQueueSize),
		PostedHandles:    i.readGlobalPVar(mercury.PVarNumPostedHandles),
		RPCsInvokedTotal: i.readGlobalPVar(mercury.PVarNumRPCsInvoked),
		BulkBytesMoved:   i.readGlobalPVar(mercury.PVarBulkBytesTransferred),
		NetworkPending:   uint64(i.hg.NetworkPending()),
	}
	if mh != nil {
		s.InputSerNanos = i.readBoundPVar(mercury.PVarInputSerTime, mh)
		s.InputDeserNanos = i.readBoundPVar(mercury.PVarInputDeserTime, mh)
		s.OutputSerNanos = i.readBoundPVar(mercury.PVarOutputSerTime, mh)
		s.RDMANanos = i.readBoundPVar(mercury.PVarInternalRDMATime, mh)
		s.OriginCBNanos = i.readBoundPVar(mercury.PVarOriginCBTime, mh)
	}
	return s
}

// sysSample annotates a trace event with pool and runtime statistics.
// pool is the pool whose saturation matters at the sampling point (the
// handler pool on targets, the main pool on origins).
func (i *Instance) sysSample(pool *abt.Pool) core.SysSample {
	s := i.sys.Sample()
	s.PoolRunnable = pool.Runnable()
	s.PoolBlocked = pool.Blocked()
	return s
}
