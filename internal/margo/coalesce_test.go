package margo

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/batch"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// registerBatchEcho installs an echo handler for the coalescer tests:
// the response mirrors the request so entry cross-wiring is detectable.
func registerBatchEcho(t *testing.T, srv, cli *Instance, rpc string) {
	t.Helper()
	if err := srv.Register(rpc, func(ctx *Context) {
		var in kvArgs
		if err := ctx.GetInput(&in); err != nil {
			ctx.RespondError("decode: %v", err)
			return
		}
		ctx.Respond(&in)
	}); err != nil {
		t.Fatal(err)
	}
	if err := cli.RegisterClient(rpc); err != nil {
		t.Fatal(err)
	}
}

// TestForwardBatchedConcurrentULTs: many ULTs issue single logical RPCs
// through the coalescer. Every op must complete with its own response
// (no cross-wiring between window slots), the ops must coalesce into
// fewer wire exchanges, and each op's trace chain must close with an
// EvOriginEnd stamped with the batch ID it traveled under.
func TestForwardBatchedConcurrentULTs(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull,
		Batch: &batch.Policy{MaxOps: 8, MaxDelay: 2 * time.Millisecond}})
	registerBatchEcho(t, srv, cli, "batch_echo")

	const ops = 32
	errs := make([]error, ops)
	outs := make([]kvArgs, ops)
	ults := make([]*abt.ULT, ops)
	for k := 0; k < ops; k++ {
		k := k
		ults[k] = cli.Run("issuer", func(self *abt.ULT) {
			in := kvArgs{Key: fmt.Sprintf("k%02d", k), Value: []byte(fmt.Sprintf("v%02d", k))}
			errs[k] = cli.ForwardBatched(self, srv.Addr(), "batch_echo", &in, &outs[k])
		})
	}
	for k, u := range ults {
		if err := u.Join(nil); err != nil {
			t.Fatalf("issuer %d: %v", k, err)
		}
		if errs[k] != nil {
			t.Fatalf("op %d: %v", k, errs[k])
		}
		if want := fmt.Sprintf("k%02d", k); outs[k].Key != want {
			t.Fatalf("op %d got entry for %q: window slots cross-wired", k, outs[k].Key)
		}
	}
	if !cli.WaitIdle(5 * time.Second) {
		t.Fatalf("InFlight stuck at %d", cli.InFlight())
	}

	bs := cli.BatchStats()
	if bs.Ops != ops {
		t.Fatalf("BatchStats.Ops = %d, want %d", bs.Ops, ops)
	}
	if bs.Flushes == 0 || bs.Flushes >= ops {
		t.Fatalf("Flushes = %d for %d ops: no coalescing", bs.Flushes, ops)
	}

	// Trace stitching: one origin chain per logical op, each end event
	// carrying a batch ID shared with its window companions.
	evs := cli.Profiler().TraceEvents()
	ends := 0
	batchIDs := map[uint64]bool{}
	reqIDs := map[uint64]bool{}
	for _, e := range evs {
		if e.RPCName != "batch_echo" || e.Kind != core.EvOriginEnd {
			continue
		}
		ends++
		if e.Failed {
			t.Fatalf("successful batched op recorded Failed end: %+v", e)
		}
		if e.BatchID == 0 {
			t.Fatalf("EvOriginEnd without batch ID: %+v", e)
		}
		batchIDs[e.BatchID] = true
		reqIDs[e.RequestID] = true
	}
	if ends != ops || len(reqIDs) != ops {
		t.Fatalf("%d origin ends over %d request IDs, want %d/%d", ends, len(reqIDs), ops, ops)
	}
	if uint64(len(batchIDs)) != bs.Flushes {
		t.Fatalf("%d distinct batch IDs vs %d flushes", len(batchIDs), bs.Flushes)
	}
}

// TestBatchFlushOnDrain: ops parked in a long-delay window must not
// stall a graceful drain — Drain flushes open windows immediately and
// every member completes normally.
func TestBatchFlushOnDrain(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli",
		Batch: &batch.Policy{MaxOps: 1024, MaxDelay: 500 * time.Millisecond}})
	registerBatchEcho(t, srv, cli, "drain_echo")

	const ops = 8
	errs := make([]error, ops)
	ults := make([]*abt.ULT, ops)
	for k := 0; k < ops; k++ {
		k := k
		ults[k] = cli.Run("issuer", func(self *abt.ULT) {
			errs[k] = cli.ForwardBatched(self, srv.Addr(), "drain_echo",
				&kvArgs{Key: "k", Value: []byte("v")}, nil)
		})
	}
	time.Sleep(20 * time.Millisecond) // let the ops park in the window

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cli.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for k, u := range ults {
		u.Join(nil)
		if errs[k] != nil {
			t.Fatalf("op %d lost to drain: %v", k, errs[k])
		}
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("drain waited %v: open window was not flushed", elapsed)
	}
	bs := cli.BatchStats()
	if bs.FlushReasons["drain"] == 0 {
		t.Fatalf("no drain-reason flush recorded: %+v", bs.FlushReasons)
	}
	if bs.Ops != ops {
		t.Fatalf("Ops = %d, want %d", bs.Ops, ops)
	}
}

// TestBreakerTripsMidBatch: a batch that fails on the wire records once
// against the breaker; once open, the next whole window fast-fails
// locally with ErrCircuitOpen, and a healed link closes the circuit
// through a batched half-open probe.
func TestBreakerTripsMidBatch(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli",
		Retry: noJitter(RetryPolicy{MaxAttempts: 1,
			Breaker: &BreakerPolicy{Threshold: 1, Cooldown: 50 * time.Millisecond}}),
		Batch: &batch.Policy{MaxOps: 4, MaxDelay: time.Millisecond}})
	registerBatchEcho(t, srv, cli, "trip_echo")

	many := func() []error {
		ins := make([]mercury.Procable, 4)
		for k := range ins {
			ins[k] = &kvArgs{Key: "k", Value: []byte("v")}
		}
		var errs []error
		if err := call(t, cli, func(self *abt.ULT) error {
			errs = cli.ForwardMany(self, srv.Addr(), "trip_echo", ins, nil)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return errs
	}

	// Partitioned send fails the whole window and trips the breaker.
	c.fabric.SetFaultPlan(na.NewFaultPlan(1).PartitionOneWay(cli.Addr(), srv.Addr()))
	for k, err := range many() {
		if !errors.Is(err, na.ErrPartitioned) {
			t.Fatalf("member %d under partition: %v, want ErrPartitioned", k, err)
		}
	}
	if st := cli.BreakerState(srv.Addr(), "trip_echo"); st != "open" {
		t.Fatalf("breaker %s after failed batch, want open", st)
	}

	// Open circuit: the next window fast-fails without touching the wire.
	for k, err := range many() {
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("member %d on open circuit: %v, want ErrCircuitOpen", k, err)
		}
	}
	if ff := cli.OverloadStats().BreakerFastFails; ff == 0 {
		t.Fatal("open circuit did not record a fast-fail")
	}

	// Healed link + cooldown: the batched probe closes the circuit.
	c.fabric.SetFaultPlan(nil)
	time.Sleep(60 * time.Millisecond)
	for k, err := range many() {
		if err != nil {
			t.Fatalf("member %d after heal: %v", k, err)
		}
	}
	if st := cli.BreakerState(srv.Addr(), "trip_echo"); st != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
	if !cli.WaitIdle(5 * time.Second) {
		t.Fatalf("InFlight stuck at %d", cli.InFlight())
	}
}

// TestBatchDeadlineExpiredMember: a deadline-stamped op whose deadline
// passes in transit is rejected by the target's admission check, while
// the healthy member of the same vectored frame succeeds — per-entry
// verdicts, not per-frame.
func TestBatchDeadlineExpiredMember(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli",
		Batch: &batch.Policy{MaxOps: 16, MaxDelay: 30 * time.Millisecond}})
	registerBatchEcho(t, srv, cli, "dl_echo")

	// Requests take 60ms on the wire; responses are unaffected.
	plan := na.NewFaultPlan(7)
	plan.SetLink(cli.Addr(), srv.Addr(), na.FaultRule{DelayProb: 1, Delay: 60 * time.Millisecond})
	c.fabric.SetFaultPlan(plan)

	var healthyErr, expiredErr error
	healthy := cli.Run("healthy", func(self *abt.ULT) {
		healthyErr = cli.ForwardBatched(self, srv.Addr(), "dl_echo",
			&kvArgs{Key: "h", Value: []byte("v")}, nil)
	})
	time.Sleep(5 * time.Millisecond) // the healthy op opens the window
	expired := cli.Run("expired", func(self *abt.ULT) {
		// 20ms of budget: alive at enqueue and flush, dead on arrival.
		self.SetLocal(keyDeadline{}, time.Now().Add(20*time.Millisecond).UnixNano())
		expiredErr = cli.ForwardBatched(self, srv.Addr(), "dl_echo",
			&kvArgs{Key: "e", Value: []byte("v")}, nil)
	})
	healthy.Join(nil)
	expired.Join(nil)

	if healthyErr != nil {
		t.Fatalf("healthy member: %v", healthyErr)
	}
	if !errors.Is(expiredErr, mercury.ErrDeadlineExpired) {
		t.Fatalf("expired member: %v, want ErrDeadlineExpired", expiredErr)
	}
	bs := cli.BatchStats()
	if bs.Flushes != 1 || bs.Ops != 2 {
		t.Fatalf("flushes=%d ops=%d, want both members in one frame", bs.Flushes, bs.Ops)
	}
	if bs.FlushReasons["urgent"] != 1 {
		t.Fatalf("deadline member did not pull the flush early: %+v", bs.FlushReasons)
	}
	if exp := srv.OverloadStats().Expired; exp != 1 {
		t.Fatalf("server Expired = %d, want 1", exp)
	}
}

// TestBatchFaultInjectedNoAckedThenLost: under a seeded lossy link with
// idempotent retries, an op that reports success must be applied at the
// target — a dropped frame or dropped reply may fail ops or re-execute
// them, but never acknowledge work that did not happen.
func TestBatchFaultInjectedNoAckedThenLost(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli",
		Retry: noJitter(RetryPolicy{MaxAttempts: 6, PerTryTimeout: 50 * time.Millisecond,
			InitialBackoff: 2 * time.Millisecond, Multiplier: 2}),
		Batch: &batch.Policy{MaxOps: 16, MaxDelay: 2 * time.Millisecond}})

	store := map[string]bool{}
	var mu abt.Mutex
	if err := srv.Register("lossy_put", func(ctx *Context) {
		var in kvArgs
		if err := ctx.GetInput(&in); err != nil {
			ctx.RespondError("decode: %v", err)
			return
		}
		mu.Lock(ctx.Self)
		store[in.Key] = true
		mu.Unlock()
		ctx.Respond(mercury.Void{})
	}); err != nil {
		t.Fatal(err)
	}
	if err := cli.RegisterClientIdempotent("lossy_put"); err != nil {
		t.Fatal(err)
	}

	plan := na.NewFaultPlan(3)
	plan.SetLink(cli.Addr(), srv.Addr(), na.FaultRule{DropProb: 0.5})
	plan.SetLink(srv.Addr(), cli.Addr(), na.FaultRule{DropProb: 0.5})
	c.fabric.SetFaultPlan(plan)

	const rounds, perRound = 3, 16
	var ackedKeys []string
	for r := 0; r < rounds; r++ {
		ins := make([]mercury.Procable, perRound)
		keys := make([]string, perRound)
		for k := range ins {
			keys[k] = fmt.Sprintf("r%d-k%02d", r, k)
			ins[k] = &kvArgs{Key: keys[k], Value: []byte("v")}
		}
		var errs []error
		if err := call(t, cli, func(self *abt.ULT) error {
			errs = cli.ForwardMany(self, srv.Addr(), "lossy_put", ins, nil)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for k, err := range errs {
			if err == nil { // failed ops may or may not have executed
				ackedKeys = append(ackedKeys, keys[k])
			}
		}
	}
	if len(ackedKeys) == 0 {
		t.Fatal("every op failed: retries never carried a batch through the lossy link")
	}
	// The seeded plan is deterministic: drops must have forced at least
	// one batch retry, or the test is not exercising the loss path.
	if cli.BatchStats().Retries == 0 {
		t.Fatal("no batch retries recorded: fault plan never dropped a frame")
	}
	if !cli.WaitIdle(5 * time.Second) {
		t.Fatalf("InFlight stuck at %d", cli.InFlight())
	}
	// All client calls resolved and the fabric is quiet: no handler can
	// still be mutating the store, so it is safe to read directly.
	time.Sleep(20 * time.Millisecond)
	for _, key := range ackedKeys {
		if !store[key] {
			t.Fatalf("op %s acked but not applied: acked-then-lost", key)
		}
	}
	t.Logf("acked %d/%d ops, %d batch retries", len(ackedKeys), rounds*perRound, cli.BatchStats().Retries)
}

// rawKV is the bytes-only twin of kvArgs for the zero-alloc pin:
// string fields inherently allocate on encode ([]byte conversion), and
// the wire layout of String and Bytes is identical, so the server's
// kvArgs handler decodes it unchanged.
type rawKV struct {
	Key, Value []byte
}

func (a *rawKV) Proc(p *mercury.Proc) error {
	p.Bytes(&a.Key)
	p.Bytes(&a.Value)
	return p.Err()
}

// TestCoalescerEnqueueSteadyStateAllocs pins the coalesced-forward
// enqueue path at measurement-off stage to zero allocations once the
// pools are warm (ISSUE 6 satellite c). The flush/fan-out halves are
// covered as an amortized bound by the perfgate scenarios.
func TestCoalescerEnqueueSteadyStateAllocs(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageOff})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageOff,
		Batch: &batch.Policy{MaxOps: 1 << 20, MaxBytes: 1 << 30, MaxDelay: time.Hour}})
	registerBatchEcho(t, srv, cli, "alloc_echo")

	const runs = 200
	if err := call(t, cli, func(self *abt.ULT) error {
		co := cli.coalescerFor(srv.Addr(), "alloc_echo")
		in := &rawKV{Key: []byte("k"), Value: make([]byte, 64)}
		errs := make([]error, runs+1)

		// Warm the op pool, builder arena, and ops slice to full window
		// size, twice, so the measured round reuses everything.
		for round := 0; round < 2; round++ {
			g := &opGroup{ev: abt.NewEventual()}
			g.remaining.Store(runs + 1)
			for k := 0; k <= runs; k++ {
				if err := co.enqueue(self, in, nil, &errs[k], g); err != nil {
					return err
				}
			}
			cli.FlushBatches()
			g.ev.Wait(self)
			for k, err := range errs {
				if err != nil {
					return fmt.Errorf("warm op %d: %w", k, err)
				}
			}
		}

		g := &opGroup{ev: abt.NewEventual()}
		g.remaining.Store(runs + 1)
		k := 0
		n := testing.AllocsPerRun(runs, func() {
			if err := co.enqueue(self, in, nil, &errs[k], g); err != nil {
				t.Errorf("enqueue: %v", err)
				g.done()
			}
			k++
		})
		cli.FlushBatches()
		g.ev.Wait(self)
		if n != 0 {
			t.Errorf("coalescer enqueue allocates %v/op on the steady path, want 0", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
