package margo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/batch"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
)

// This file is the client-side coalescer (ISSUE 6 tentpole, layer 2):
// same-(target, RPC) forwards accumulate in an adaptive batch window
// and leave as one vectored mercury.ForwardBatch; the per-entry reply
// statuses fan back out to the waiting ULTs. The window flushes when it
// fills (ops or bytes), when its adaptive delay elapses, when a
// member's propagated deadline makes waiting dangerous, or when the
// instance drains. Retry semantics are batch-aware: failures the fabric
// reported before delivery retry the whole batch, ambiguous failures
// (per-try timeouts) retry only when the RPC is idempotent — a window
// only ever holds one RPC name, so "retry the idempotent members"
// reduces to a per-window decision — and per-entry verdicts from the
// target (shed, expired, handler error) are final. The breaker is
// consulted once per flush: an open circuit fast-fails the entire
// window, and one outcome per attempt feeds the circuit.

// Batch-coalescer PVAR names, exported like the resilience counters.
const (
	PVarNumBatchesFlushed = "num_batches_flushed"
	PVarNumBatchedOps     = "num_batched_ops"
	PVarNumBatchRetries   = "num_batch_retries"
	PVarBatchOccupancy    = "batch_window_occupancy"
)

// batchOp is one coalesced forward waiting for its window to complete.
// Ops are pooled; everything here is overwritten on acquire.
type batchOp struct {
	out   mercury.Procable
	res   *error   // caller's per-op error slot
	group *opGroup // completion group of the issuing call

	// Per-op trace identity (one t1–t14 chain per logical op).
	ultID   uint64
	reqID   uint64
	bc      core.Breadcrumb
	order   uint64
	t1      time.Time
	dlNanos int64
	prio    uint8
}

var batchOpPool = sync.Pool{New: func() any { return new(batchOp) }}

// opGroup completes one ForwardBatched/ForwardMany call: the issuing
// ULT parks on ev until every member op has fanned back in.
type opGroup struct {
	ev        *abt.Eventual
	remaining atomic.Int32
}

// done retires one member; the last one wakes the issuer.
func (g *opGroup) done() {
	if g.remaining.Add(-1) == 0 {
		g.ev.Set(nil)
	}
}

// opsSlicePool recycles the per-window member slices.
var opsSlicePool = sync.Pool{New: func() any {
	s := make([]*batchOp, 0, 64)
	return &s
}}

// coalescer owns one (target, RPC) batch window.
type coalescer struct {
	i      *Instance
	target string
	rpc    string

	mu      sync.Mutex
	win     batch.Window
	builder *mercury.BatchBuilder
	ops     []*batchOp
	opsBox  *[]*batchOp
	timer   *time.Timer
	timerAt int64  // unix nanos the armed timer fires at (0 = unarmed)
	gen     uint64 // window generation, invalidates stale timer fires
}

// coalescerFor returns (lazily creating) the window for one (target,
// RPC) pair. Callers have already checked that batching is enabled.
func (i *Instance) coalescerFor(target, rpcName string) *coalescer {
	key := breakerKey{target: target, rpc: rpcName}
	i.coalMu.Lock()
	defer i.coalMu.Unlock()
	if i.coals == nil {
		i.coals = make(map[breakerKey]*coalescer)
	}
	co := i.coals[key]
	if co == nil {
		co = &coalescer{i: i, target: target, rpc: rpcName}
		i.coals[key] = co
	}
	return co
}

// Batching reports whether the instance coalesces batched forwards
// (Options.Batch was set).
func (i *Instance) Batching() bool { return i.batchPol != nil }

// ForwardBatched issues one RPC through the coalescer: the call blocks
// like Forward, but the request travels inside a vectored frame with
// whatever companions share its window. Without Options.Batch it
// degrades to a plain Forward.
func (i *Instance) ForwardBatched(self *abt.ULT, target, rpcName string, in, out mercury.Procable) error {
	if self == nil {
		return fmt.Errorf("margo: ForwardBatched requires the calling ULT")
	}
	if i.batchPol == nil {
		return i.Forward(self, target, rpcName, in, out)
	}
	group := &opGroup{ev: abt.NewEventual()}
	group.remaining.Store(1)
	var err error
	if eerr := i.coalescerFor(target, rpcName).enqueue(self, in, out, &err, group); eerr != nil {
		return eerr
	}
	group.ev.Wait(self)
	return err
}

// ForwardMany issues a multi-op workload through the coalescer and
// returns one error per op (nil on success). outs may be nil (no
// decoding) or must have one (possibly nil) entry per input. The call
// blocks until every member completed. Without Options.Batch the ops
// are forwarded sequentially — same results, none of the coalescing.
func (i *Instance) ForwardMany(self *abt.ULT, target, rpcName string, ins, outs []mercury.Procable) []error {
	errs := make([]error, len(ins))
	if len(ins) == 0 {
		return errs
	}
	if outs != nil && len(outs) != len(ins) {
		for k := range errs {
			errs[k] = fmt.Errorf("margo: ForwardMany outs length %d != ins length %d", len(outs), len(ins))
		}
		return errs
	}
	if self == nil {
		for k := range errs {
			errs[k] = fmt.Errorf("margo: ForwardMany requires the calling ULT")
		}
		return errs
	}
	if i.batchPol == nil {
		for k := range ins {
			var out mercury.Procable
			if outs != nil {
				out = outs[k]
			}
			errs[k] = i.Forward(self, target, rpcName, ins[k], out)
		}
		return errs
	}
	co := i.coalescerFor(target, rpcName)
	group := &opGroup{ev: abt.NewEventual()}
	group.remaining.Store(int32(len(ins)))
	for k := range ins {
		var out mercury.Procable
		if outs != nil {
			out = outs[k]
		}
		if eerr := co.enqueue(self, ins[k], out, &errs[k], group); eerr != nil {
			errs[k] = eerr
			group.done()
		}
	}
	group.ev.Wait(self)
	return errs
}

// enqueue adds one op to the open window, opening a fresh one if
// needed, and flushes inline when the window fills. On the steady path
// (warm pools, window already open) it performs no allocations: the op
// comes from a pool, the builder's arena grows in place, and the window
// timer is reused via Reset. A returned error means the op was NOT
// enqueued and the caller owns the group accounting.
func (co *coalescer) enqueue(self *abt.ULT, in, out mercury.Procable, res *error, group *opGroup) error {
	i := co.i
	stage := i.prof.Stage()

	// Resolve the per-op identity exactly like forward(): breadcrumb
	// ancestry, request ID, and the PR-4 deadline/priority locals.
	var parent core.Breadcrumb
	if v, ok := self.Local(keyBreadcrumb{}); ok {
		parent = v.(core.Breadcrumb)
	}
	bc := parent.Push(co.rpc)
	var reqID uint64
	if v, ok := self.Local(keyRequestID{}); ok {
		reqID = v.(uint64)
	} else if stage.Injects() {
		reqID = i.prof.NewRequestID()
	}
	var dlNanos int64
	if v, ok := self.Local(keyDeadline{}); ok {
		dlNanos = v.(int64)
	}
	var prio uint8
	if v, ok := self.Local(keyPriority{}); ok {
		prio = v.(uint8)
	}
	if dlNanos != 0 && time.Now().UnixNano() > dlNanos {
		// Already expired: fail without occupying a window slot.
		i.exhaustedTotal.Add(1)
		return fmt.Errorf("%w: %s", mercury.ErrDeadlineExpired, co.rpc)
	}

	op := batchOpPool.Get().(*batchOp)
	op.out, op.res, op.group = out, res, group
	op.ultID, op.reqID, op.bc = self.ID(), reqID, bc
	op.dlNanos, op.prio = dlNanos, prio

	meta := mercury.Meta{DeadlineNanos: dlNanos, Priority: prio}
	if stage.Injects() {
		meta.HasTrace = true
		meta.Breadcrumb = uint64(bc)
		meta.RequestID = reqID
		meta.Order = i.prof.Clock.Tick()
	}
	op.order = meta.Order

	op.t1 = time.Now()
	if stage.Measures() {
		// t1 for this logical op: it enters the coalescer window. The
		// matching EvOriginEnd (stamped with the batch ID at fan-out)
		// closes the chain.
		i.prof.EmitAt(self.ID(), core.Event{
			RequestID:  reqID,
			Order:      meta.Order,
			Kind:       core.EvOriginStart,
			Timestamp:  i.prof.StampNanos(op.t1),
			Entity:     i.Addr(),
			Peer:       co.target,
			RPCName:    co.rpc,
			Breadcrumb: uint64(bc),
			Sys:        i.sysSample(i.mainPool),
		})
	}

	pol := *i.batchPol
	co.mu.Lock()
	if co.builder == nil {
		co.builder = mercury.AcquireBatch()
		box := opsSlicePool.Get().(*[]*batchOp)
		co.opsBox, co.ops = box, (*box)[:0]
		co.win.Open(op.t1.UnixNano())
	}
	preBytes := co.builder.Bytes()
	if err := co.builder.Add(in, meta); err != nil {
		// Add rolled the builder back; the window keeps its other members.
		co.mu.Unlock()
		batchOpPool.Put(op)
		return fmt.Errorf("margo: encode batched input for %s: %w", co.rpc, err)
	}
	co.ops = append(co.ops, op)
	co.win.Add(co.builder.Bytes()-preBytes, dlNanos)
	i.rpcsInFlight.Add(1)

	if reason := pol.Due(&co.win); reason != batch.ReasonNone {
		fl := co.takeLocked(reason)
		co.mu.Unlock()
		i.sendBatch(fl, 0)
		return nil
	}
	co.armTimerLocked(pol)
	co.mu.Unlock()
	return nil
}

// armTimerLocked (re)schedules the window timer for the policy's flush
// instant. Reuses one timer per coalescer so steady-state enqueues do
// not allocate.
func (co *coalescer) armTimerLocked(pol batch.Policy) {
	at, _ := pol.FlushAt(&co.win)
	if co.timerAt != 0 && at >= co.timerAt {
		return // already armed at least as early
	}
	d := time.Duration(at - time.Now().UnixNano())
	if d < 0 {
		d = 0
	}
	if co.timer == nil {
		co.timer = time.AfterFunc(d, co.onTimer)
	} else {
		co.timer.Reset(d)
	}
	co.timerAt = at
}

// onTimer flushes the window whose arming generation is still current.
// It runs on a runtime timer goroutine, outside any ULT.
func (co *coalescer) onTimer() {
	co.mu.Lock()
	if co.builder == nil || co.builder.Count() == 0 {
		co.timerAt = 0
		co.mu.Unlock()
		return
	}
	_, reason := (*co.i.batchPol).FlushAt(&co.win)
	fl := co.takeLocked(reason)
	co.mu.Unlock()
	co.i.sendBatch(fl, 0)
}

// batchFlight is one in-flight vectored forward: the frozen window
// contents plus retry state. The builder stays alive (its bytes are
// re-sent on retry) until the flight fans out.
type batchFlight struct {
	co      *coalescer
	builder *mercury.BatchBuilder
	ops     []*batchOp
	opsBox  *[]*batchOp
	batchID uint64
	reason  batch.Reason
	// sentNanos is when the frame first left the process (or was
	// fast-failed by an open breaker): the end of the members'
	// batch-window wait, stamped as WindowNanos on their t14 events.
	sentNanos int64
}

// takeLocked freezes the open window into a flight and resets the
// coalescer for the next one.
func (co *coalescer) takeLocked(reason batch.Reason) *batchFlight {
	fl := &batchFlight{
		co:      co,
		builder: co.builder,
		ops:     co.ops,
		opsBox:  co.opsBox,
		batchID: co.i.batchSeq.Add(1),
		reason:  reason,
	}
	co.builder, co.ops, co.opsBox = nil, nil, nil
	co.gen++
	co.timerAt = 0
	if co.timer != nil {
		co.timer.Stop()
	}
	co.i.batchStats.RecordFlush(reason, fl.builder.Count(), fl.builder.Bytes())
	return fl
}

// sendBatch issues one attempt of a flight. It may be called from an
// application ULT (inline size flush), a timer goroutine (window
// flush), or the progress ULT (retry); none of them block.
func (i *Instance) sendBatch(fl *batchFlight, attempt int) {
	now := time.Now()
	if fl.sentNanos == 0 {
		fl.sentNanos = now.UnixNano()
	}
	br := i.breakerFor(fl.co.target, fl.co.rpc)
	if br != nil && !br.allow(now) {
		// Open circuit: the entire window fast-fails locally. The error
		// is final for these members — unlike the forward() loop there
		// is no ULT here to park through a cooldown backoff, and the
		// members' issuers are already parked expecting one verdict.
		i.breakerFastFailsTotal.Add(1)
		fl.complete(fmt.Errorf("%w: %s to %s", ErrCircuitOpen, fl.co.rpc, fl.co.target), now)
		return
	}
	mh, err := i.hg.Create(fl.co.target, fl.co.rpc)
	if err != nil {
		fl.complete(err, time.Now())
		return
	}
	var timerFired atomic.Bool
	var tryTimer *time.Timer
	if i.retry != nil && i.retry.pol.PerTryTimeout > 0 {
		tryTimer = time.AfterFunc(i.retry.pol.PerTryTimeout, func() {
			timerFired.Store(true)
			mh.Cancel()
		})
	}
	err = mh.ForwardBatch(fl.batchID, fl.builder, func(h *mercury.Handle, err error) {
		// Runs at t14 in the progress ULT's Trigger pass.
		if tryTimer != nil {
			tryTimer.Stop()
		}
		t14 := time.Now()
		if err == nil {
			if br != nil {
				br.record(t14, false, false)
			}
			if i.retry != nil {
				i.retry.success()
			}
			fl.fanOut(h, t14)
			h.Destroy()
			return
		}
		timedOut := timerFired.Load() && errors.Is(err, mercury.ErrCanceled)
		if timedOut {
			i.timeoutsTotal.Add(1)
		} else if errors.Is(err, mercury.ErrCanceled) {
			i.cancelsTotal.Add(1)
		}
		if br != nil && br.record(t14, true, overloadClass(err, timedOut)) {
			i.breakerTripsTotal.Add(1)
		}
		h.Destroy()
		if i.retryBatch(fl, attempt, err, timedOut) {
			return
		}
		fl.complete(err, t14)
	})
	if err != nil {
		if tryTimer != nil {
			tryTimer.Stop()
		}
		if br != nil && br.record(time.Now(), true, overloadClass(err, false)) {
			i.breakerTripsTotal.Add(1)
		}
		mh.Destroy()
		if i.retryBatch(fl, attempt, err, false) {
			return
		}
		fl.complete(err, time.Now())
	}
}

// retryBatch decides whether a failed attempt re-sends the flight and,
// if so, schedules it after the policy backoff. Ambiguous failures
// (timeouts: the batch may have executed) retry only when the window's
// RPC is idempotent; a window holds exactly one RPC name, so the
// ISSUE's "retry only the idempotent members" is a whole-window
// decision. Per-entry target verdicts never reach here — they arrive
// inside a successful exchange.
func (i *Instance) retryBatch(fl *batchFlight, attempt int, err error, timedOut bool) bool {
	rs := i.retry
	if rs == nil {
		return false
	}
	if !i.retryable(err, timedOut, fl.co.rpc) {
		return false
	}
	if attempt+1 >= rs.pol.MaxAttempts {
		i.exhaustedTotal.Add(1)
		return false
	}
	if !rs.allow() {
		i.exhaustedTotal.Add(1)
		return false
	}
	i.retriesTotal.Add(1)
	i.batchStats.RecordRetry()
	backoff := rs.backoff(attempt)
	if backoff <= 0 {
		backoff = time.Microsecond
	}
	time.AfterFunc(backoff, func() { i.sendBatch(fl, attempt+1) })
	return true
}

// fanOut distributes a successful exchange's per-entry verdicts to the
// waiting members: decode outputs, map per-entry statuses to the errors
// an unbatched Forward would return, stitch the per-op trace chains,
// and wake the issuers.
func (fl *batchFlight) fanOut(h *mercury.Handle, t14 time.Time) {
	i := fl.co.i
	if h.BatchLen() != len(fl.ops) {
		fl.complete(fmt.Errorf("margo: batch reply carries %d entries for %d ops", h.BatchLen(), len(fl.ops)), t14)
		return
	}
	stage := i.prof.Stage()
	for k, op := range fl.ops {
		err := h.BatchEntryErr(k)
		if stage.Injects() {
			if ord := h.BatchEntryOrder(k); ord != 0 {
				i.prof.Clock.Merge(ord)
			}
		}
		if err == nil && op.out != nil {
			err = h.BatchEntryOutput(k, op.out)
		}
		fl.completeOp(op, err, t14, stage)
	}
	fl.release()
}

// complete fails every member with the same transport-level error.
func (fl *batchFlight) complete(err error, t14 time.Time) {
	i := fl.co.i
	stage := i.prof.Stage()
	for _, op := range fl.ops {
		operr := err
		fl.completeOp(op, operr, t14, stage)
	}
	fl.release()
}

// completeOp finishes one member: trace end event (carrying the batch
// ID), callpath attribution, the caller's error slot, and the group
// countdown. The op returns to its pool.
func (fl *batchFlight) completeOp(op *batchOp, err error, t14 time.Time, stage core.Stage) {
	i := fl.co.i
	if stage.Measures() {
		originExec := t14.Sub(op.t1)
		var comps [core.NumComponents]uint64
		comps[core.CompOriginExec] = uint64(originExec)
		i.prof.RecordOriginAt(op.ultID, op.bc, fl.co.target, originExec, &comps)
		endOrder := op.order
		if stage.Injects() {
			endOrder = i.prof.Clock.Tick()
		}
		var window int64
		if fl.sentNanos > 0 {
			if w := fl.sentNanos - op.t1.UnixNano(); w > 0 {
				window = w
			}
		}
		i.prof.EmitAt(op.ultID, core.Event{
			RequestID:   op.reqID,
			Order:       endOrder,
			Kind:        core.EvOriginEnd,
			Timestamp:   i.prof.StampNanos(t14),
			Entity:      i.Addr(),
			Peer:        fl.co.target,
			RPCName:     fl.co.rpc,
			Breadcrumb:  uint64(op.bc),
			Duration:    int64(originExec),
			Failed:      err != nil,
			BatchID:     fl.batchID,
			WindowNanos: window,
			Sys:         i.sysSample(i.mainPool),
			Components:  &comps,
		})
	}
	*op.res = err
	group := op.group
	op.out, op.res, op.group = nil, nil, nil
	batchOpPool.Put(op)
	i.rpcDone()
	group.done()
}

// release returns the flight's window resources to their pools.
func (fl *batchFlight) release() {
	fl.builder.Release()
	for k := range fl.ops {
		fl.ops[k] = nil
	}
	*fl.opsBox = fl.ops[:0]
	opsSlicePool.Put(fl.opsBox)
	fl.builder, fl.ops, fl.opsBox = nil, nil, nil
}

// FlushBatches force-flushes every open window (reason "explicit").
// Drain uses it (reason "drain" internally) so parked issuers get
// verdicts instead of waiting out window timers.
func (i *Instance) FlushBatches() int { return i.flushAll(batch.ReasonExplicit) }

func (i *Instance) flushAll(reason batch.Reason) int {
	if i.batchPol == nil {
		return 0
	}
	i.coalMu.Lock()
	cos := make([]*coalescer, 0, len(i.coals))
	for _, co := range i.coals {
		cos = append(cos, co)
	}
	i.coalMu.Unlock()
	flushed := 0
	for _, co := range cos {
		co.mu.Lock()
		if co.builder == nil || co.builder.Count() == 0 {
			co.mu.Unlock()
			continue
		}
		fl := co.takeLocked(reason)
		co.mu.Unlock()
		i.sendBatch(fl, 0)
		flushed++
	}
	return flushed
}

// BatchStats is a snapshot of the instance's coalescer accounting.
type BatchStats struct {
	// Flushes counts vectored forwards sent; Ops the members they
	// carried; Bytes their encoded payload.
	Flushes uint64
	Ops     uint64
	Bytes   uint64
	// Retries counts batch-level re-sends.
	Retries uint64
	// CoalesceRatio is mean ops per flush (1.0 = no coalescing).
	CoalesceRatio float64
	// LastOccupancy and OccupancyHWM describe window fill at flush.
	LastOccupancy uint64
	OccupancyHWM  uint64
	// FlushReasons maps reason label → flush count.
	FlushReasons map[string]uint64
}

// BatchStats reports the coalescer counters (zero value when batching
// is disabled).
func (i *Instance) BatchStats() BatchStats {
	s := BatchStats{
		Flushes:       i.batchStats.Flushes(),
		Ops:           i.batchStats.Ops(),
		Bytes:         i.batchStats.Bytes(),
		Retries:       i.batchStats.Retries(),
		CoalesceRatio: i.batchStats.CoalesceRatio(),
		LastOccupancy: i.batchStats.LastOccupancy(),
		OccupancyHWM:  i.batchStats.OccupancyHWM(),
		FlushReasons:  make(map[string]uint64, 6),
	}
	for _, r := range batch.Reasons() {
		if n := i.batchStats.ByReason(r); n > 0 {
			s.FlushReasons[r.String()] = n
		}
	}
	return s
}

// BatchPolicy returns a copy of the active coalescer policy, or nil
// when batching is disabled.
func (i *Instance) BatchPolicy() *batch.Policy {
	if i.batchPol == nil {
		return nil
	}
	pol := *i.batchPol
	return &pol
}
