package margo

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
)

// RegisterClient declares RPC names this instance will forward, wiring
// them into Mercury and the breadcrumb name registry.
func (i *Instance) RegisterClient(rpcNames ...string) error {
	for _, name := range rpcNames {
		if err := i.hg.Register(name, nil); err != nil {
			return err
		}
		if _, err := i.prof.Names().Register(name); err != nil {
			return err
		}
	}
	return nil
}

// forwardResult carries the completion of a Forward from the progress
// ULT back to the issuing ULT.
type forwardResult struct {
	err error
	t14 time.Time
}

// Forward issues one blocking RPC from the calling ULT: it serializes
// in, sends the request, parks the ULT until the response callback
// fires, and decodes the response into out (pass nil to skip decoding).
//
// This is the origin half of the paper's Figure 2 pipeline. Margo
// records t1 before handing the request to Mercury and captures t14
// inside the completion callback; the difference is the origin execution
// time, attributed to the callpath breadcrumb. At Full stage the
// origin-side PVARs (input serialization, origin completion callback
// delay) are sampled off the Mercury handle at t14 and fused into the
// same profile entry (paper §IV-C).
func (i *Instance) Forward(self *abt.ULT, target, rpcName string, in, out mercury.Procable) error {
	return i.forward(self, target, rpcName, in, out, ForwardOpts{})
}

// ForwardTimeout is Forward with a deadline: if no response arrives
// within d the handle is canceled and the call returns
// mercury.ErrCanceled. Use it against services that may have failed
// after receiving the request (a send failure is already reported
// without a timeout). The timeout stays client-side: nothing extra is
// stamped on the wire (use ForwardEx to propagate a deadline).
func (i *Instance) ForwardTimeout(self *abt.ULT, target, rpcName string, in, out mercury.Procable, d time.Duration) error {
	return i.forward(self, target, rpcName, in, out, ForwardOpts{Timeout: d})
}

// ForwardOpts carries the per-call options of ForwardEx.
type ForwardOpts struct {
	// Timeout bounds the whole call client-side (like ForwardTimeout).
	Timeout time.Duration
	// Deadline, when non-zero, is stamped into the wire header as the
	// request's absolute deadline: the target rejects the request with
	// mercury.ErrDeadlineExpired if it passes before a handler runs,
	// and handlers propagate it onto their nested forwards. It also
	// bounds the call client-side, like Timeout.
	Deadline time.Time
	// Priority is the request's admission class (see
	// OverloadPolicy.HighPriority); zero inherits the servicing
	// handler's priority, if any.
	Priority uint8
}

// ForwardEx is Forward with explicit overload-control options: a
// propagated absolute deadline and an admission priority. A handler
// issuing nested forwards inherits its own request's deadline and
// priority automatically even through plain Forward; ForwardEx is how
// the first hop stamps them.
func (i *Instance) ForwardEx(self *abt.ULT, target, rpcName string, in, out mercury.Procable, opts ForwardOpts) error {
	return i.forward(self, target, rpcName, in, out, opts)
}

func (i *Instance) forward(self *abt.ULT, target, rpcName string, in, out mercury.Procable, opts ForwardOpts) error {
	if self == nil {
		return fmt.Errorf("margo: Forward requires the calling ULT")
	}
	stage := i.prof.Stage()

	// Extend the callpath ancestry: parent breadcrumb comes from the
	// ULT-local key when this call is made from inside a handler
	// (paper §IV-A1), and the request ID is propagated the same way.
	// Both are fixed before the attempt loop so every retry of this
	// forward carries the same request ID — retried attempts stitch into
	// one trace instead of appearing as unrelated requests.
	var parent core.Breadcrumb
	if v, ok := self.Local(keyBreadcrumb{}); ok {
		parent = v.(core.Breadcrumb)
	}
	bc := parent.Push(rpcName)
	var reqID uint64
	if v, ok := self.Local(keyRequestID{}); ok {
		reqID = v.(uint64)
	} else if stage.Injects() {
		reqID = i.prof.NewRequestID()
	}

	// Resolve the wire deadline and priority: explicit options win, then
	// the ULT-local values a servicing handler inherited from its own
	// request — so a multi-tier request carries one absolute deadline
	// across every hop.
	var dlNanos int64
	if !opts.Deadline.IsZero() {
		dlNanos = opts.Deadline.UnixNano()
	} else if v, ok := self.Local(keyDeadline{}); ok {
		dlNanos = v.(int64)
	}
	prio := opts.Priority
	if prio == 0 {
		if v, ok := self.Local(keyPriority{}); ok {
			prio = v.(uint8)
		}
	}

	// One in-flight slot per logical forward, however many attempts it
	// takes; the deferred decrement cannot be lost to an early return.
	i.rpcsInFlight.Add(1)
	defer i.rpcDone()

	timeout := opts.Timeout
	if dlNanos != 0 {
		// The propagated deadline also bounds the call client-side:
		// waiting past it can only return an expiry.
		remaining := time.Until(time.Unix(0, dlNanos))
		if timeout <= 0 || remaining < timeout {
			timeout = remaining
		}
		if timeout <= 0 {
			i.exhaustedTotal.Add(1)
			return exhausted(ErrDeadlineExceeded, rpcName, target, 0, mercury.ErrDeadlineExpired)
		}
	}

	rs := i.retry
	if rs == nil {
		err, _ := i.forwardOnce(self, target, rpcName, in, out, timeout, stage, bc, reqID, dlNanos, prio)
		return err
	}

	var deadline time.Time
	if timeout > 0 {
		// Under a retry policy a ForwardTimeout deadline bounds the whole
		// attempt sequence; PerTryTimeout bounds each attempt within it.
		deadline = time.Now().Add(timeout)
	}
	br := i.breakerFor(target, rpcName)
	var lastErr error
	for attempt := 0; ; attempt++ {
		tryTimeout := rs.pol.PerTryTimeout
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				i.exhaustedTotal.Add(1)
				return exhausted(ErrDeadlineExceeded, rpcName, target, attempt, lastErr)
			}
			if tryTimeout <= 0 || remaining < tryTimeout {
				tryTimeout = remaining
			}
		}
		var err error
		var timedOut bool
		if br != nil && !br.allow(time.Now()) {
			// Open circuit: refuse locally without touching the network.
			// The error is retryable, so the backoff below waits out the
			// cooldown and a later attempt becomes the half-open probe.
			i.breakerFastFailsTotal.Add(1)
			err = fmt.Errorf("%w: %s to %s", ErrCircuitOpen, rpcName, target)
		} else {
			err, timedOut = i.forwardOnce(self, target, rpcName, in, out, tryTimeout, stage, bc, reqID, dlNanos, prio)
			if br != nil && br.record(time.Now(), err != nil, overloadClass(err, timedOut)) {
				i.breakerTripsTotal.Add(1)
			}
		}
		if err == nil {
			rs.success()
			return nil
		}
		lastErr = err
		if !i.retryable(err, timedOut, rpcName) {
			return err
		}
		if attempt+1 >= rs.pol.MaxAttempts {
			i.exhaustedTotal.Add(1)
			return exhausted(ErrDeadlineExceeded, rpcName, target, attempt+1, lastErr)
		}
		if !rs.allow() {
			i.exhaustedTotal.Add(1)
			return exhausted(ErrRetryBudgetExhausted, rpcName, target, attempt+1, lastErr)
		}
		backoff := rs.backoff(attempt)
		if !deadline.IsZero() {
			if remaining := time.Until(deadline); backoff > remaining {
				backoff = remaining
			}
		}
		if backoff > 0 {
			self.Sleep(backoff)
		}
		i.retriesTotal.Add(1)
	}
}

// forwardOnce issues a single attempt of a forward. timedOut reports
// that this attempt's own per-try timer (not an external CancelPosted)
// canceled the handle — the disambiguation the retry classifier needs,
// since both surface as mercury.ErrCanceled.
func (i *Instance) forwardOnce(self *abt.ULT, target, rpcName string, in, out mercury.Procable, timeout time.Duration, stage core.Stage, bc core.Breadcrumb, reqID uint64, dlNanos int64, prio uint8) (error, bool) {
	mh, err := i.hg.Create(target, rpcName)
	if err != nil {
		return err, false
	}
	defer mh.Destroy()

	meta := mercury.Meta{}
	if stage.Injects() {
		meta = mercury.Meta{
			HasTrace:   true,
			Breadcrumb: uint64(bc),
			RequestID:  reqID,
			Order:      i.prof.Clock.Tick(),
		}
	}
	// Deadline and priority are control-plane state, stamped regardless
	// of the measurement stage.
	meta.DeadlineNanos = dlNanos
	meta.Priority = prio

	t1 := time.Now()
	if stage.Measures() {
		ev := core.Event{
			RequestID:  reqID,
			Order:      meta.Order,
			Kind:       core.EvOriginStart,
			Timestamp:  i.prof.StampNanos(t1),
			Entity:     i.Addr(),
			Peer:       target,
			RPCName:    rpcName,
			Breadcrumb: uint64(bc),
			Sys:        i.sysSample(i.mainPool),
		}
		if stage.SamplesPVars() {
			ev.PVars = i.samplePVars(nil)
		}
		// Record into the calling ULT's collector shard: concurrent
		// application ULTs on different execution streams take disjoint
		// locks (t1).
		i.prof.EmitAt(self.ID(), ev)
	}

	ev := abt.NewEventual()
	err = mh.Forward(in, meta, func(h *mercury.Handle, err error) {
		// Runs at t14 in the progress ULT's Trigger pass.
		ev.Set(forwardResult{err: err, t14: time.Now()})
	})
	if err != nil {
		return err, false
	}
	// timerFired disambiguates this forward's own deadline from an
	// external cancellation: the store happens before Cancel enqueues the
	// completion, so when the wait observes ErrCanceled caused by the
	// timer, the flag is already visible. If a genuine response races the
	// timer, completeForward's CAS lets exactly one of them win — a late
	// timer then cancels an already-completed handle, which is a no-op.
	var timerFired atomic.Bool
	if timeout > 0 {
		timer := time.AfterFunc(timeout, func() {
			timerFired.Store(true)
			mh.Cancel()
		})
		defer timer.Stop()
	}
	res := ev.Wait(self).(forwardResult)
	timedOut := timerFired.Load() && errors.Is(res.err, mercury.ErrCanceled)
	if timedOut {
		i.timeoutsTotal.Add(1)
	} else if errors.Is(res.err, mercury.ErrCanceled) {
		i.cancelsTotal.Add(1)
	}

	if stage.Injects() {
		if rm := mh.RespMeta(); rm.HasTrace {
			i.prof.Clock.Merge(rm.Order)
		}
	}

	if res.err == nil && out != nil {
		res.err = mh.GetOutput(out)
	}

	if stage.Measures() {
		originExec := res.t14.Sub(t1)
		var comps [core.NumComponents]uint64
		comps[core.CompOriginExec] = uint64(originExec)
		var pv *core.PVarSample
		if stage.SamplesPVars() {
			pv = i.samplePVars(mh)
			comps[core.CompInputSer] = pv.InputSerNanos
			comps[core.CompOriginCB] = pv.OriginCBNanos
		}
		i.prof.RecordOriginAt(self.ID(), bc, target, originExec, &comps)
		endOrder := meta.Order
		if stage.Injects() {
			endOrder = i.prof.Clock.Tick()
		}
		i.prof.EmitAt(self.ID(), core.Event{
			RequestID:  reqID,
			Order:      endOrder,
			Kind:       core.EvOriginEnd,
			Timestamp:  i.prof.StampNanos(res.t14),
			Entity:     i.Addr(),
			Peer:       target,
			RPCName:    rpcName,
			Breadcrumb: uint64(bc),
			Duration:   int64(originExec),
			Failed:     res.err != nil,
			Sys:        i.sysSample(i.mainPool),
			PVars:      pv,
			Components: &comps,
		})
	}
	return res.err, timedOut
}

// BulkCreate exposes buf for one-sided transfers.
func (i *Instance) BulkCreate(buf []byte) mercury.Bulk { return i.hg.BulkCreate(buf) }

// BulkFree revokes a bulk descriptor.
func (i *Instance) BulkFree(b mercury.Bulk) { i.hg.BulkFree(b) }

// BulkPull blocks the calling ULT while pulling remote[off:off+len(buf)]
// into buf — the target-side path of sdskv_put_packed and BAKE writes.
func (i *Instance) BulkPull(self *abt.ULT, remote mercury.Bulk, off int, buf []byte) error {
	return i.bulkWait(self, remote, off, buf, false)
}

// BulkPush blocks the calling ULT while pushing buf to the remote
// region — the path of BAKE reads back to client memory.
func (i *Instance) BulkPush(self *abt.ULT, remote mercury.Bulk, off int, buf []byte) error {
	return i.bulkWait(self, remote, off, buf, true)
}

func (i *Instance) bulkWait(self *abt.ULT, remote mercury.Bulk, off int, buf []byte, push bool) error {
	ev := abt.NewEventual()
	cb := func(err error) {
		if err == nil {
			ev.Set(nil)
		} else {
			ev.Set(err)
		}
	}
	var err error
	if push {
		err = i.hg.BulkPush(remote, off, buf, cb)
	} else {
		err = i.hg.BulkPull(remote, off, buf, cb)
	}
	if err != nil {
		return err
	}
	if v := ev.Wait(self); v != nil {
		return v.(error)
	}
	return nil
}
