package margo

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// ErrDeadlineExceeded marks a Forward that ran out of deadline or
// attempts. The returned error also wraps the last attempt's failure,
// so errors.Is(err, mercury.ErrCanceled) still holds for timeouts.
var ErrDeadlineExceeded = errors.New("margo: forward deadline exceeded")

// ErrRetryBudgetExhausted marks a retryable failure abandoned because
// the instance's retry budget ran dry (retry-storm protection).
var ErrRetryBudgetExhausted = errors.New("margo: retry budget exhausted")

// RetryPolicy is the client-side resilience configuration applied to
// every Forward/ForwardTimeout of an instance (Options.Retry). Send
// failures the fabric reports before delivery (unreachable, closed,
// partitioned links) are always retried; per-try timeouts are retried
// only for RPCs opted in as idempotent (MarkIdempotent), because a
// timed-out request may have executed at the target.
type RetryPolicy struct {
	// MaxAttempts bounds total tries including the first. Default 4.
	MaxAttempts int
	// InitialBackoff is the sleep before the first retry; each further
	// retry multiplies it by Multiplier, capped at MaxBackoff.
	// Defaults: 1ms initial, 2.0 multiplier, 100ms cap.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	Multiplier     float64
	// Jitter is the uniform random fraction (0..1) added to each
	// backoff, drawn from the seeded generator. Default 0.2.
	Jitter float64
	// PerTryTimeout cancels each attempt that has not completed within
	// it, also for plain Forward calls (a ForwardTimeout deadline
	// additionally bounds the whole sequence). Zero means attempts only
	// time out under a ForwardTimeout deadline.
	PerTryTimeout time.Duration
	// Budget is the token bucket protecting against retry storms: each
	// retry spends one token, each success refills BudgetRefill tokens
	// (capped at Budget). Defaults: 64 tokens, 0.5 refill. A negative
	// Budget disables the bucket.
	Budget       float64
	BudgetRefill float64
	// Seed drives the deterministic jitter stream. Default 1.
	Seed uint64
	// Breaker, when non-nil, adds a per-(target, RPC) circuit breaker
	// in front of every attempt: consecutive overload-class failures
	// (sheds, deadline rejections, timeouts, fabric partitions) trip it
	// open, after which attempts fast-fail locally with ErrCircuitOpen
	// until a half-open probe succeeds. Nil (the default) disables it.
	Breaker *BreakerPolicy
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	if p.Budget == 0 {
		p.Budget = 64
	}
	if p.BudgetRefill <= 0 {
		p.BudgetRefill = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// DefaultRetryPolicy is the policy the chaos experiments install:
// 4 attempts, 1ms..100ms exponential backoff with 20% jitter, and a
// 1s per-try timeout to recover from silently dropped messages. The
// timeout is deliberately generous: it only has to beat a silent drop,
// and a value near genuine response latency would burn the retry
// budget on spurious timeouts under load.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{PerTryTimeout: time.Second}.withDefaults()
}

// retryState is the per-instance runtime of a RetryPolicy: the token
// bucket and the seeded jitter stream.
type retryState struct {
	pol RetryPolicy

	mu     sync.Mutex
	tokens float64
	rng    uint64
}

func newRetryState(pol RetryPolicy) *retryState {
	pol = pol.withDefaults()
	return &retryState{pol: pol, tokens: pol.Budget, rng: pol.Seed}
}

// allow spends one retry token, reporting whether the retry may go.
func (rs *retryState) allow() bool {
	if rs.pol.Budget < 0 {
		return true
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.tokens < 1 {
		return false
	}
	rs.tokens--
	return true
}

// success refills the bucket after a completed forward.
func (rs *retryState) success() {
	if rs.pol.Budget < 0 {
		return
	}
	rs.mu.Lock()
	rs.tokens += rs.pol.BudgetRefill
	if rs.tokens > rs.pol.Budget {
		rs.tokens = rs.pol.Budget
	}
	rs.mu.Unlock()
}

// backoff returns the sleep before retry number `retry` (0-based),
// capped exponential with seeded jitter.
func (rs *retryState) backoff(retry int) time.Duration {
	d := float64(rs.pol.InitialBackoff)
	for i := 0; i < retry; i++ {
		d *= rs.pol.Multiplier
		if d >= float64(rs.pol.MaxBackoff) {
			d = float64(rs.pol.MaxBackoff)
			break
		}
	}
	if rs.pol.Jitter > 0 {
		rs.mu.Lock()
		rs.rng = splitmixMargo(rs.rng)
		u := float64(rs.rng>>11) / float64(uint64(1)<<53)
		rs.mu.Unlock()
		d *= 1 + rs.pol.Jitter*u
	}
	if d > float64(rs.pol.MaxBackoff) {
		d = float64(rs.pol.MaxBackoff)
	}
	return time.Duration(d)
}

// splitmixMargo is the SplitMix64 step used for jitter determinism.
func splitmixMargo(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MarkIdempotent opts RPC names into timeout retries: a per-try
// deadline on these RPCs is treated as recoverable because re-executing
// the request at the target is safe (e.g. sdskv_put_packed overwrites
// the same keys).
func (i *Instance) MarkIdempotent(rpcNames ...string) {
	i.idemMu.Lock()
	if i.idem == nil {
		i.idem = make(map[string]bool, len(rpcNames))
	}
	for _, n := range rpcNames {
		i.idem[n] = true
	}
	i.idemMu.Unlock()
}

// RegisterClientIdempotent is RegisterClient plus MarkIdempotent.
func (i *Instance) RegisterClientIdempotent(rpcNames ...string) error {
	if err := i.RegisterClient(rpcNames...); err != nil {
		return err
	}
	i.MarkIdempotent(rpcNames...)
	return nil
}

// Idempotent reports whether an RPC name is opted into timeout retries.
func (i *Instance) Idempotent(rpcName string) bool {
	i.idemMu.Lock()
	defer i.idemMu.Unlock()
	return i.idem[rpcName]
}

// retryable classifies one failed attempt. timedOut marks a failure
// produced by this forward's own per-try timer (as opposed to an
// external CancelPosted, which is never retried).
func (i *Instance) retryable(err error, timedOut bool, rpcName string) bool {
	if timedOut {
		// The request may have reached (and executed at) the target;
		// only re-issue when re-execution is declared safe.
		return i.Idempotent(rpcName)
	}
	// Overload sheds happen before any handler ran, so the request had
	// no effect and any RPC may retry; an open breaker is retryable for
	// the same reason (nothing was sent), letting the backoff wait out
	// the cooldown. Deadline expiries are NOT retryable: the deadline is
	// absolute, so a retry would only be rejected again.
	if errors.Is(err, mercury.ErrOverloaded) || errors.Is(err, ErrCircuitOpen) {
		return true
	}
	// Send-path failures the fabric reported before delivery: the target
	// never saw the request, so retrying is safe for any RPC.
	return errors.Is(err, na.ErrPartitioned) ||
		errors.Is(err, na.ErrUnreachable) ||
		errors.Is(err, na.ErrClosed)
}

// RetryStats is the instance's lifetime resilience counters.
type RetryStats struct {
	// Retries counts re-issued attempts (attempts beyond each forward's
	// first).
	Retries uint64
	// Timeouts counts per-try deadlines that canceled an attempt.
	Timeouts uint64
	// Exhausted counts forwards abandoned with retryable errors
	// (attempts, deadline, or budget ran out).
	Exhausted uint64
	// Cancels counts attempts completed by an external cancellation
	// (CancelPosted), which is never retried.
	Cancels uint64
}

// RetryStats reports the instance's resilience counters.
func (i *Instance) RetryStats() RetryStats {
	return RetryStats{
		Retries:   i.retriesTotal.Load(),
		Timeouts:  i.timeoutsTotal.Load(),
		Exhausted: i.exhaustedTotal.Load(),
		Cancels:   i.cancelsTotal.Load(),
	}
}

// Retry returns a copy of the active policy, or nil when the instance
// forwards without retries.
func (i *Instance) Retry() *RetryPolicy {
	if i.retry == nil {
		return nil
	}
	pol := i.retry.pol
	return &pol
}

// exhausted wraps the final retryable error once the loop gives up.
func exhausted(kind error, rpcName, target string, attempts int, last error) error {
	return fmt.Errorf("%w: %s to %s after %d attempt(s): %w", kind, rpcName, target, attempts, last)
}

var _ = mercury.ErrCanceled // see forward.go: timeouts surface as ErrCanceled
