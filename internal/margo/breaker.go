package margo

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// ErrCircuitOpen marks a forward attempt refused locally because the
// (target, RPC) circuit breaker is open: recent attempts kept hitting
// overload-class failures, so further traffic would only feed the
// saturated provider. The error is retryable — the retry loop's backoff
// waits out the cooldown and a half-open probe decides whether the
// circuit closes again.
var ErrCircuitOpen = errors.New("margo: circuit breaker open")

// BreakerPolicy configures the client-side circuit breaker
// (RetryPolicy.Breaker). One breaker exists per (target, RPC) pair; it
// trips after Threshold consecutive overload-class failures —
// ErrOverloaded sheds, deadline rejections, per-try timeouts, and
// fabric partition errors — then fast-fails locally for Cooldown before
// letting a single probe through (half-open). ProbeSuccesses successive
// probe completions close it again; a failed probe re-opens it.
type BreakerPolicy struct {
	// Threshold is the consecutive overload-class failure count that
	// trips the breaker. Default 5.
	Threshold int
	// Cooldown is how long an open breaker fast-fails before admitting
	// a half-open probe. Default 50ms.
	Cooldown time.Duration
	// ProbeSuccesses is how many consecutive half-open probes must
	// succeed to close the breaker. Default 1.
	ProbeSuccesses int
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold <= 0 {
		p.Threshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 50 * time.Millisecond
	}
	if p.ProbeSuccesses <= 0 {
		p.ProbeSuccesses = 1
	}
	return p
}

// breakerState is the circuit's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// breakerKey identifies one circuit.
type breakerKey struct {
	target string
	rpc    string
}

// breaker is one (target, RPC) circuit. All fields are guarded by mu;
// the forward path takes it twice per attempt (allow + record), which
// is cheap next to an RPC round trip.
type breaker struct {
	mu        sync.Mutex
	pol       BreakerPolicy
	state     breakerState
	failures  int       // consecutive overload-class failures (closed)
	successes int       // consecutive probe successes (half-open)
	openedAt  time.Time // when the circuit last opened
	probing   bool      // a half-open probe is in flight
}

// allow reports whether an attempt may proceed. In the open state it
// fast-fails until the cooldown elapses, then admits exactly one probe
// at a time (half-open). tripped reports a state observation the caller
// counts as a fast-fail.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.pol.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.successes = 0
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record folds one attempt outcome into the circuit. overloadClass
// marks failures that indicate provider saturation or partition (the
// ones that should trip the breaker); other errors reset the streak —
// the provider answered, however unhappily. tripped reports a
// closed→open or half-open→open transition (for the trips counter).
func (b *breaker) record(now time.Time, failed, overloadClass bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if failed && overloadClass {
			b.failures++
			if b.failures >= b.pol.Threshold {
				b.state = breakerOpen
				b.openedAt = now
				b.failures = 0
				return true
			}
			return false
		}
		b.failures = 0
	case breakerHalfOpen:
		b.probing = false
		if failed && overloadClass {
			b.state = breakerOpen
			b.openedAt = now
			b.successes = 0
			return true
		}
		if !failed {
			b.successes++
			if b.successes >= b.pol.ProbeSuccesses {
				b.state = breakerClosed
				b.failures = 0
			}
		}
	case breakerOpen:
		// A straggler attempt admitted before the trip completed; its
		// outcome does not move an already-open circuit.
	}
	return false
}

func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerFor returns (lazily creating) the circuit for one (target,
// RPC) pair, or nil when no breaker policy is configured.
func (i *Instance) breakerFor(target, rpcName string) *breaker {
	if i.retry == nil || i.retry.pol.Breaker == nil {
		return nil
	}
	key := breakerKey{target: target, rpc: rpcName}
	i.breakerMu.Lock()
	defer i.breakerMu.Unlock()
	if i.breakers == nil {
		i.breakers = make(map[breakerKey]*breaker)
	}
	b := i.breakers[key]
	if b == nil {
		b = &breaker{pol: i.retry.pol.Breaker.withDefaults()}
		i.breakers[key] = b
	}
	return b
}

// openBreakers counts circuits currently not closed.
func (i *Instance) openBreakers() int {
	i.breakerMu.Lock()
	defer i.breakerMu.Unlock()
	n := 0
	for _, b := range i.breakers {
		if b.currentState() != breakerClosed {
			n++
		}
	}
	return n
}

// BreakerState reports one circuit's state as a string ("closed",
// "open", "half-open"); "closed" for circuits that never saw traffic.
func (i *Instance) BreakerState(target, rpcName string) string {
	i.breakerMu.Lock()
	b := i.breakers[breakerKey{target: target, rpc: rpcName}]
	i.breakerMu.Unlock()
	if b == nil {
		return breakerClosed.String()
	}
	return b.currentState().String()
}

// overloadClass classifies a failed attempt for the breaker: provider
// saturation (sheds, deadline rejections), per-try timeouts, and fabric
// partition/unreachability (na EvError path) all count — each means the
// provider is not usefully absorbing traffic right now. Handler errors
// and cancellations do not: the provider is up and answering.
func overloadClass(err error, timedOut bool) bool {
	return timedOut ||
		errors.Is(err, mercury.ErrOverloaded) ||
		errors.Is(err, mercury.ErrDeadlineExpired) ||
		errors.Is(err, na.ErrPartitioned) ||
		errors.Is(err, na.ErrUnreachable) ||
		errors.Is(err, na.ErrClosed)
}
