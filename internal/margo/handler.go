package margo

import (
	"fmt"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
)

// HandlerFunc services one RPC inside a dedicated handler ULT.
// Implementations read arguments with Context.GetInput, perform their
// work (Compute models backend execution occupying the stream, and
// nested Context.Forward calls extend the distributed callpath), and
// finish with Respond or RespondError.
type HandlerFunc func(ctx *Context)

// Context is the target-side view of one RPC being serviced.
type Context struct {
	inst *Instance
	mh   *mercury.Handle
	// Self is the handler ULT, used for all cooperative operations.
	Self *abt.ULT

	rpcName   string
	bc        core.Breadcrumb
	reqID     uint64
	t5        time.Time
	responded bool
}

// Instance returns the hosting Margo instance.
func (c *Context) Instance() *Instance { return c.inst }

// RPCName returns the RPC being serviced.
func (c *Context) RPCName() string { return c.rpcName }

// Origin returns the fabric address of the calling entity.
func (c *Context) Origin() string { return c.mh.Peer() }

// Breadcrumb returns the callpath ancestry carried by the request.
func (c *Context) Breadcrumb() core.Breadcrumb { return c.bc }

// RequestID returns the distributed request ID carried by the request.
func (c *Context) RequestID() uint64 { return c.reqID }

// Deadline returns the absolute deadline propagated with the request,
// or the zero time when none was stamped.
func (c *Context) Deadline() time.Time {
	if dl := c.mh.Meta().DeadlineNanos; dl != 0 {
		return time.Unix(0, dl)
	}
	return time.Time{}
}

// Priority returns the request's admission priority class.
func (c *Context) Priority() uint8 { return c.mh.Meta().Priority }

// GetInput decodes the request arguments (charging the
// input_deserialization_time PVAR, t6→t7).
func (c *Context) GetInput(v mercury.Procable) error { return c.mh.GetInput(v) }

// InputSize reports the serialized request payload size.
func (c *Context) InputSize() int { return c.mh.InputSize() }

// Compute models request execution work: it occupies the handler's
// execution stream for d without consuming host CPU (see abt). Backend
// costs in the service implementations are expressed through it.
func (c *Context) Compute(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Forward issues a nested RPC from within the handler; the callpath
// breadcrumb and request ID stored in the handler ULT's local keys
// propagate automatically (paper §IV-A1).
func (c *Context) Forward(target, rpcName string, in, out mercury.Procable) error {
	return c.inst.Forward(c.Self, target, rpcName, in, out)
}

// BulkPull pulls remote data into buf, blocking the handler ULT.
func (c *Context) BulkPull(remote mercury.Bulk, off int, buf []byte) error {
	return c.inst.BulkPull(c.Self, remote, off, buf)
}

// BulkPush pushes buf into the remote region, blocking the handler ULT.
func (c *Context) BulkPush(remote mercury.Bulk, off int, buf []byte) error {
	return c.inst.BulkPush(c.Self, remote, off, buf)
}

// Respond sends the RPC response (t8) and completes the target-side
// measurements when Mercury reports the response handed to the network
// (t13): the target completion callback interval, the PVAR fusion, and
// the callpath profile entry.
func (c *Context) Respond(out mercury.Procable) error {
	return c.finish(false, func(meta mercury.Meta, cb func(error)) error {
		return c.mh.Respond(out, meta, cb)
	})
}

// RespondError reports a handler failure to the origin. The terminal
// trace event carries Failed=true, so spans closed by an error response
// (including the panic-recovery path) stitch as failed executions
// rather than dangling or reading as successes.
func (c *Context) RespondError(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return c.finish(true, func(meta mercury.Meta, cb func(error)) error {
		return c.mh.RespondError(msg, meta, cb)
	})
}

func (c *Context) finish(failed bool, send func(mercury.Meta, func(error)) error) error {
	if c.responded {
		return fmt.Errorf("margo: double response for %s", c.rpcName)
	}
	c.responded = true
	i := c.inst
	stage := i.prof.Stage()

	t8 := time.Now()
	targetExec := t8.Sub(c.t5)
	handlerWait := c.Self.FirstRunTime().Sub(c.Self.SpawnTime())

	meta := mercury.Meta{}
	if stage.Injects() {
		meta = mercury.Meta{HasTrace: true, Order: i.prof.Clock.Tick()}
	}

	// ult keys this request's measurements to the handler ULT's shard:
	// handlers running concurrently on different execution streams
	// record without contending (t8, t13).
	ult := c.Self.ID()

	if stage.Measures() {
		i.prof.EmitAt(ult, core.Event{
			RequestID:  c.reqID,
			Order:      meta.Order,
			Kind:       core.EvTargetEnd,
			Timestamp:  i.prof.StampNanos(t8),
			Entity:     i.Addr(),
			Peer:       c.mh.Peer(),
			RPCName:    c.rpcName,
			Breadcrumb: uint64(c.bc),
			Duration:   int64(targetExec),
			Failed:     failed,
			Sys:        i.sysSample(i.handlerPool),
		})
	}

	bc, origin, mh := c.bc, c.mh.Peer(), c.mh
	return send(meta, func(err error) {
		// t13: the response has been handed to the network. The profile
		// entry is recorded even when the send failed (e.g. the reverse
		// link partitioned): the handler did execute, and dropping its
		// measurement would hide exactly the requests a fault campaign
		// cares about.
		if !stage.Measures() {
			return
		}
		targetCB := time.Since(t8)
		var comps [core.NumComponents]uint64
		comps[core.CompTargetExec] = uint64(targetExec)
		comps[core.CompHandler] = uint64(handlerWait)
		comps[core.CompTargetCB] = uint64(targetCB)
		if stage.SamplesPVars() {
			pv := i.samplePVars(mh)
			comps[core.CompInputDeser] = pv.InputDeserNanos
			comps[core.CompOutputSer] = pv.OutputSerNanos
			comps[core.CompRDMA] = pv.RDMANanos
		}
		i.prof.RecordTargetAt(ult, bc, origin, targetExec, &comps)
	})
}

// Register installs a server-side RPC handler. Each incoming request
// spawns a new ULT into the handler pool (t4); the delay until an
// execution stream picks it up is the target ULT handler time (t4→t5),
// the saturation signal of the paper's Figure 9.
func (i *Instance) Register(rpcName string, fn HandlerFunc) error {
	if i.opts.Mode != ModeServer {
		return fmt.Errorf("margo: Register requires ModeServer")
	}
	if _, err := i.prof.Names().Register(rpcName); err != nil {
		return err
	}
	return i.hg.Register(rpcName, func(mh *mercury.Handle) {
		// Running in the progress ULT's Trigger pass. Admission control
		// happens here, before a handler ULT exists: the progress ULT is
		// the single spawner, so the verdict and the in-flight increment
		// cannot race with another admission. Refused requests are
		// answered immediately (t4) instead of queueing.
		if v := i.admitVerdict(mh.Meta()); v != admitOK {
			i.rejectRequest(mh, rpcName, v)
			return
		}
		i.handlersInFlight.Add(1)
		// Spawn the handler ULT (t4) detached and return immediately:
		// nothing joins handler ULTs, so the scheduler recycles their
		// structs and goroutines — steady-state dispatch allocates only
		// this closure.
		i.handlerPool.CreateDetached(rpcName, func(self *abt.ULT) {
			defer i.handlersInFlight.Add(-1)
			i.runHandler(self, mh, rpcName, fn)
		})
	})
}

// runHandler is the handler ULT body: t5 onward.
func (i *Instance) runHandler(self *abt.ULT, mh *mercury.Handle, rpcName string, fn HandlerFunc) {
	stage := i.prof.Stage()
	meta := mh.Meta()

	ctx := &Context{
		inst:    i,
		mh:      mh,
		Self:    self,
		rpcName: rpcName,
		bc:      core.Breadcrumb(meta.Breadcrumb),
		reqID:   meta.RequestID,
		t5:      time.Now(),
	}

	if meta.HasTrace {
		// Store the callpath ancestry and request identity in ULT-local
		// keys so RPCs issued by this handler extend the chain.
		self.SetLocal(keyBreadcrumb{}, ctx.bc)
		self.SetLocal(keyRequestID{}, ctx.reqID)
		i.prof.Clock.Merge(meta.Order)
	}
	if meta.DeadlineNanos != 0 {
		// Propagate the absolute deadline (and priority) to nested
		// forwards, so every hop of a multi-tier request can make the
		// same drop/serve decision against the same clock.
		self.SetLocal(keyDeadline{}, meta.DeadlineNanos)
	}
	if meta.Priority != 0 {
		self.SetLocal(keyPriority{}, meta.Priority)
	}

	if stage.Measures() {
		ev := core.Event{
			RequestID:  ctx.reqID,
			Order:      i.prof.Clock.Now(),
			Kind:       core.EvTargetStart,
			Timestamp:  i.prof.StampNanos(ctx.t5),
			Entity:     i.Addr(),
			Peer:       mh.Peer(),
			RPCName:    rpcName,
			Breadcrumb: uint64(ctx.bc),
			// The t4→t5 pool wait rides the t5 event so per-request
			// analysis can attribute queueing (the critical-path
			// "queue" segment) without the aggregate profile.
			QueueNanos: int64(self.FirstRunTime().Sub(self.SpawnTime())),
			Sys:        i.sysSample(i.handlerPool),
		}
		if stage.SamplesPVars() {
			ev.PVars = i.samplePVars(mh)
		}
		// The handler ULT's shard receives the t5 event and, in finish,
		// the t8/t13 measurements — the PVAR samples fused above ride
		// the same shard rather than a side channel.
		i.prof.EmitAt(self.ID(), ev)
	}

	if meta.DeadlineNanos != 0 && time.Now().UnixNano() > meta.DeadlineNanos {
		// The deadline passed while the request waited in the handler
		// pool (t4→t5): the origin has given up, so executing the
		// handler would burn the execution stream on doomed work. The
		// EvTargetStart above plus finish's Failed EvTargetEnd close the
		// span, showing the queue wait that killed the request.
		i.expiredTotal.Add(1)
		_ = ctx.finish(true, func(m mercury.Meta, cb func(error)) error {
			return mh.RespondExpired(m, cb)
		})
		return
	}

	func() {
		defer func() {
			if r := recover(); r != nil && !ctx.responded {
				// A panicking handler must still answer the origin, or
				// its ULT would stay parked forever.
				ctx.RespondError("margo: handler for %s panicked: %v", rpcName, r)
			}
		}()
		fn(ctx)
	}()

	if !ctx.responded {
		// A handler that forgot to respond would leave the origin
		// parked forever; fail loudly instead.
		ctx.RespondError("margo: handler for %s returned without responding", rpcName)
	}
}
