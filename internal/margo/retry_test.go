package margo

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// noJitter returns a deterministic test policy: zero jitter (an
// explicit 0 survives withDefaults) and a short default backoff.
func noJitter(p RetryPolicy) *RetryPolicy {
	p.Jitter = 0
	if p.InitialBackoff == 0 {
		p.InitialBackoff = 5 * time.Millisecond
	}
	return &p
}

// TestRetryHealsAfterPartition: a partitioned link fails sends with an
// immediate EvError; the retry policy re-issues across backoffs and the
// forward succeeds once the partition heals mid-sequence. The retried
// attempts must share one request ID so the trace stitches.
func TestRetryHealsAfterPartition(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull,
		Retry: noJitter(RetryPolicy{MaxAttempts: 6, InitialBackoff: 20 * time.Millisecond, Multiplier: 2})})

	srv.Register("healed_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("healed_rpc")

	c.fabric.SetFaultPlan(na.NewFaultPlan(1).PartitionOneWay(cli.Addr(), srv.Addr()))
	heal := time.AfterFunc(50*time.Millisecond, func() { c.fabric.SetFaultPlan(nil) })
	defer heal.Stop()

	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "healed_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatalf("forward across healing partition: %v", err)
	}
	rs := cli.RetryStats()
	if rs.Retries == 0 {
		t.Fatal("partition healed without any recorded retries")
	}
	if cli.InFlight() != 0 {
		t.Fatalf("InFlight = %d", cli.InFlight())
	}

	// Every attempt's trace events carry the same request ID: the
	// retried request stitches into one trace, with the failed attempts
	// visible as Failed client spans and exactly one successful span.
	evs := cli.Profiler().TraceEvents()
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	reqID := evs[0].RequestID
	starts := 0
	for _, e := range evs {
		if e.RequestID != reqID {
			t.Fatalf("attempt recorded under request %d, want %d", e.RequestID, reqID)
		}
		if e.Kind == core.EvOriginStart {
			starts++
		}
	}
	if starts < 2 {
		t.Fatalf("%d origin starts, want >= 2 (retried attempts)", starts)
	}
	spans := analysis.SpansOf(reqID, evs)
	if len(spans) != starts {
		t.Fatalf("%d spans from %d attempts: retries left dangling starts", len(spans), starts)
	}
	okSpans, failedSpans := 0, 0
	for _, s := range spans {
		if s.Failed {
			failedSpans++
		} else {
			okSpans++
		}
	}
	if okSpans != 1 || failedSpans != starts-1 {
		t.Fatalf("spans ok=%d failed=%d, want 1/%d", okSpans, failedSpans, starts-1)
	}
}

// TestRetryTimeoutGatedOnIdempotency: per-try timeouts are only retried
// for RPCs opted in via MarkIdempotent — a timed-out request may have
// executed at the target.
func TestRetryTimeoutGatedOnIdempotency(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli",
		Retry: noJitter(RetryPolicy{MaxAttempts: 3, PerTryTimeout: 30 * time.Millisecond,
			InitialBackoff: time.Millisecond})})

	release := make(chan struct{})
	handler := func(ctx *Context) {
		<-release
		ctx.Respond(mercury.Void{})
	}
	defer close(release)
	srv.Register("stuck_plain", handler)
	srv.Register("stuck_idem", handler)
	cli.RegisterClient("stuck_plain")
	if err := cli.RegisterClientIdempotent("stuck_idem"); err != nil {
		t.Fatal(err)
	}
	if !cli.Idempotent("stuck_idem") || cli.Idempotent("stuck_plain") {
		t.Fatal("idempotency registry wrong")
	}

	// Non-idempotent: one attempt, not retried, surfaces ErrCanceled.
	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "stuck_plain", &mercury.Void{}, nil)
	})
	if !errors.Is(err, mercury.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	rs := cli.RetryStats()
	if rs.Retries != 0 || rs.Timeouts != 1 {
		t.Fatalf("stats after non-idempotent timeout = %+v", rs)
	}

	// Idempotent: retried to exhaustion; the final error still reports
	// the timeout (ErrCanceled) wrapped in the exhaustion marker.
	err = call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "stuck_idem", &mercury.Void{}, nil)
	})
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, mercury.ErrCanceled) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded wrapping ErrCanceled", err)
	}
	rs = cli.RetryStats()
	if rs.Retries != 2 || rs.Timeouts != 4 || rs.Exhausted != 1 {
		t.Fatalf("stats after idempotent exhaustion = %+v", rs)
	}
	if cli.InFlight() != 0 {
		t.Fatalf("InFlight = %d", cli.InFlight())
	}
}

// TestRetryBudgetExhaustion: the token bucket stops retry storms — once
// drained, a retryable failure is surfaced instead of re-issued.
func TestRetryBudgetExhaustion(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli",
		Retry: noJitter(RetryPolicy{MaxAttempts: 10, Budget: 2, BudgetRefill: 0.1,
			InitialBackoff: time.Millisecond})})
	srv.Register("never_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("never_rpc")
	c.fabric.SetFaultPlan(na.NewFaultPlan(1).PartitionOneWay(cli.Addr(), srv.Addr()))

	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "never_rpc", &mercury.Void{}, nil)
	})
	if !errors.Is(err, ErrRetryBudgetExhausted) || !errors.Is(err, na.ErrPartitioned) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted wrapping ErrPartitioned", err)
	}
	rs := cli.RetryStats()
	if rs.Retries != 2 || rs.Exhausted != 1 {
		t.Fatalf("stats = %+v, want 2 retries (budget) and 1 exhausted", rs)
	}
}

// TestForwardTimeoutRTTHammer hammers ForwardTimeout with the deadline
// set at ≈RTT, so the cancel timer and genuine response delivery race on
// nearly every call. The regression bar: no double completion (panic),
// no lost in-flight decrement, and every call resolves to success or
// ErrCanceled — nothing else.
func TestForwardTimeoutRTTHammer(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("echo_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("echo_rpc")

	// Measure the RTT once, warm.
	start := time.Now()
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "echo_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)

	const calls = 200
	errs := make([]error, calls)
	ults := make([]*abt.ULT, calls)
	for k := 0; k < calls; k++ {
		idx := k
		ults[k] = cli.Run("hammer", func(self *abt.ULT) {
			errs[idx] = cli.ForwardTimeout(self, srv.Addr(), "echo_rpc", &mercury.Void{}, nil, rtt)
		})
	}
	var canceled, succeeded int
	for k, u := range ults {
		u.Join(nil)
		switch {
		case errs[k] == nil:
			succeeded++
		case errors.Is(errs[k], mercury.ErrCanceled):
			canceled++
		default:
			t.Fatalf("call %d: unexpected error %v", k, errs[k])
		}
	}
	t.Logf("rtt=%v: %d succeeded, %d canceled", rtt, succeeded, canceled)
	if !cli.WaitIdle(5 * time.Second) {
		t.Fatalf("InFlight stuck at %d after hammer", cli.InFlight())
	}
	// The service still works afterwards.
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "echo_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatalf("post-hammer rpc: %v", err)
	}
}

// TestPanickingHandlerClosesTrace: the panic-recovery response must emit
// the terminal EvTargetEnd with the error flag, so stitching closes the
// t5→t8 span instead of leaving it dangling in an open trace.
func TestPanickingHandlerClosesTrace(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})
	srv.Register("boom_trace", func(ctx *Context) { panic("measured explosion") })
	cli.RegisterClient("boom_trace")

	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "boom_trace", &mercury.Void{}, nil)
	})
	if !errors.Is(err, mercury.ErrHandlerFail) {
		t.Fatalf("err = %v", err)
	}
	time.Sleep(10 * time.Millisecond) // let t13 callbacks land

	ts := analysis.MergeTraces([]*core.TraceDump{
		cli.Profiler().DumpTrace(), srv.Profiler().DumpTrace(),
	})
	var reqID uint64
	for _, e := range ts.Events {
		if e.RPCName == "boom_trace" {
			reqID = e.RequestID
			break
		}
	}
	if reqID == 0 {
		t.Fatal("no trace events for the panicking RPC")
	}
	spans := ts.Spans(reqID)
	var client, server *analysis.Span
	for i := range spans {
		switch spans[i].Kind {
		case "CLIENT":
			client = &spans[i]
		case "SERVER":
			server = &spans[i]
		}
	}
	if server == nil {
		t.Fatal("panicking handler left no closed SERVER span (t5->t8 gap)")
	}
	if !server.Failed {
		t.Fatal("SERVER span of a panicking handler not marked Failed")
	}
	if client == nil {
		t.Fatal("origin span did not close")
	}
	if !client.Failed {
		t.Fatal("CLIENT span of a failed RPC not marked Failed")
	}
}

// TestStaleResponseAfterCancel: a response arriving after the origin
// canceled the handle is dropped as stale — no double completion, no
// Lamport merge from the dead response, in-flight back to zero, and the
// drop observable via the num_stale_responses PVAR.
func TestStaleResponseAfterCancel(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})
	release := make(chan struct{})
	srv.Register("late_rpc", func(ctx *Context) {
		<-release
		ctx.Respond(mercury.Void{})
	})
	cli.RegisterClient("late_rpc")

	sess := cli.Mercury().PVars().InitSession()
	defer sess.Finalize()
	stale, err := sess.AllocHandleByName(mercury.PVarNumStaleResponses)
	if err != nil {
		t.Fatal(err)
	}
	readStale := func() uint64 {
		v, err := sess.Read(stale, nil)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	err = call(t, cli, func(self *abt.ULT) error {
		return cli.ForwardTimeout(self, srv.Addr(), "late_rpc", &mercury.Void{}, nil, 20*time.Millisecond)
	})
	if !errors.Is(err, mercury.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := readStale(); got != 0 {
		t.Fatalf("stale responses before release = %d", got)
	}
	clockBefore := cli.Profiler().Clock.Now()

	// Release the handler: its response reaches a client that no longer
	// has the handle posted.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for readStale() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late response never counted as stale")
		}
		time.Sleep(time.Millisecond)
	}
	if got := cli.Profiler().Clock.Now(); got != clockBefore {
		t.Fatalf("stale response moved the Lamport clock %d -> %d", clockBefore, got)
	}
	if cli.InFlight() != 0 {
		t.Fatalf("InFlight = %d", cli.InFlight())
	}
	// The client still services traffic (the handle was not corrupted).
	srv.Register("after_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("after_rpc")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "after_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatalf("post-stale rpc: %v", err)
	}
}

// TestCanceledForwardReachesSinksOnce: a canceled RPC's events reach an
// attached streaming sink exactly once per attempt — one start and one
// Failed end for a single-attempt timeout, and no duplicated events when
// a retry policy re-issues under the same request ID.
func TestCanceledForwardReachesSinksOnce(t *testing.T) {
	var buf bytes.Buffer
	sink := core.NewJSONLTraceSink(&buf)

	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull,
		TraceSinks: []core.TraceSink{sink},
		Retry: noJitter(RetryPolicy{MaxAttempts: 2, PerTryTimeout: 25 * time.Millisecond,
			InitialBackoff: time.Millisecond})})
	release := make(chan struct{})
	srv.Register("sink_rpc", func(ctx *Context) {
		<-release
		ctx.Respond(mercury.Void{})
	})
	defer close(release)
	if err := cli.RegisterClientIdempotent("sink_rpc"); err != nil {
		t.Fatal(err)
	}

	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "sink_rpc", &mercury.Void{}, nil)
	})
	if !errors.Is(err, mercury.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if err := cli.Profiler().FlushSinks(); err != nil {
		t.Fatal(err)
	}
	evs, _, err := core.ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Two attempts, each exactly one start + one Failed end, all under
	// one request ID.
	var starts, ends int
	var reqID uint64
	for _, e := range evs {
		if reqID == 0 {
			reqID = e.RequestID
		}
		if e.RequestID != reqID {
			t.Fatalf("sink saw request %d and %d, want one", reqID, e.RequestID)
		}
		switch e.Kind {
		case core.EvOriginStart:
			starts++
		case core.EvOriginEnd:
			ends++
			if !e.Failed {
				t.Fatal("canceled attempt's end event not marked Failed")
			}
		}
	}
	if starts != 2 || ends != 2 {
		t.Fatalf("sink saw %d starts / %d ends, want exactly 2/2 (one per attempt)", starts, ends)
	}

	// Sticky sink-error path: a sink that fails keeps failing, the
	// collector counts it, and Shutdown surfaces it.
	boom := errors.New("sink full")
	cli2 := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli2", Stage: core.StageFull,
		TraceSinks: []core.TraceSink{failSink{err: boom}}})
	cli2.RegisterClient("sink_rpc")
	errRPC := call(t, cli2, func(self *abt.ULT) error {
		return cli2.ForwardTimeout(self, srv.Addr(), "sink_rpc", &mercury.Void{}, nil, 10*time.Millisecond)
	})
	if !errors.Is(errRPC, mercury.ErrCanceled) {
		t.Fatalf("err = %v", errRPC)
	}
	if got := cli2.Profiler().Collector().SinkErrors(); got == 0 {
		t.Fatal("failing sink not counted")
	}
	if err := cli2.Shutdown(); !errors.Is(err, boom) {
		t.Fatalf("Shutdown = %v, want the sticky sink error", err)
	}
}

// failSink always fails, for the sticky-error path.
type failSink struct{ err error }

func (f failSink) WriteEvent(core.Event) error { return f.err }
func (f failSink) Flush() error                { return f.err }

// TestBreakerTripsOnPartition: fabric partition errors (the na EvError
// path) count toward the circuit breaker exactly like ErrOverloaded
// sheds — Threshold consecutive partitioned sends trip it open, further
// forwards fast-fail locally with ErrCircuitOpen, and after the cooldown
// a half-open probe against the healed link closes it again.
func TestBreakerTripsOnPartition(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli",
		Retry: noJitter(RetryPolicy{
			MaxAttempts: 1, // one attempt per Forward: each call is one breaker record
			Breaker:     &BreakerPolicy{Threshold: 3, Cooldown: 40 * time.Millisecond},
		})})

	srv.Register("part_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("part_rpc")

	fwd := func() error {
		return call(t, cli, func(self *abt.ULT) error {
			return cli.Forward(self, srv.Addr(), "part_rpc", &mercury.Void{}, nil)
		})
	}

	// Healthy baseline keeps the circuit closed.
	if err := fwd(); err != nil {
		t.Fatalf("clean forward: %v", err)
	}
	if st := cli.BreakerState(srv.Addr(), "part_rpc"); st != "closed" {
		t.Fatalf("breaker %s after success, want closed", st)
	}

	// Threshold consecutive partition failures trip the circuit.
	c.fabric.SetFaultPlan(na.NewFaultPlan(1).PartitionOneWay(cli.Addr(), srv.Addr()))
	for i := 0; i < 3; i++ {
		if err := fwd(); !errors.Is(err, na.ErrPartitioned) {
			t.Fatalf("forward %d under partition: %v, want ErrPartitioned", i, err)
		}
	}
	if st := cli.BreakerState(srv.Addr(), "part_rpc"); st != "open" {
		t.Fatalf("breaker %s after %d partition failures, want open", st, 3)
	}
	if trips := cli.OverloadStats().BreakerTrips; trips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", trips)
	}

	// While open, forwards fast-fail locally without touching the wire.
	if err := fwd(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("forward on open circuit: %v, want ErrCircuitOpen", err)
	}
	if ff := cli.OverloadStats().BreakerFastFails; ff == 0 {
		t.Fatal("no fast-fails recorded on an open circuit")
	}

	// Heal the link; after the cooldown a half-open probe closes it.
	c.fabric.SetFaultPlan(nil)
	time.Sleep(50 * time.Millisecond)
	if err := fwd(); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if st := cli.BreakerState(srv.Addr(), "part_rpc"); st != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
}

// TestRetryWhileBreakerHalfOpen: with the circuit open and the provider
// healthy again, concurrent forwards race into the half-open window.
// Exactly one becomes the probe; the others fast-fail locally
// (ErrCircuitOpen is retryable) and succeed on a later attempt once the
// probe closes the circuit. Nobody gets stuck and nobody bypasses the
// single-probe gate.
func TestRetryWhileBreakerHalfOpen(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli",
		Retry: noJitter(RetryPolicy{
			MaxAttempts:    8,
			InitialBackoff: 10 * time.Millisecond,
			MaxBackoff:     20 * time.Millisecond,
			Breaker:        &BreakerPolicy{Threshold: 2, Cooldown: 30 * time.Millisecond},
		})})

	srv.Register("half_open_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("half_open_rpc")

	// Trip the breaker with partition failures, then heal immediately:
	// the provider is fine, only the circuit stands in the way.
	c.fabric.SetFaultPlan(na.NewFaultPlan(1).PartitionOneWay(cli.Addr(), srv.Addr()))
	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "half_open_rpc", &mercury.Void{}, nil)
	})
	if err == nil {
		t.Fatal("forward under partition succeeded")
	}
	if st := cli.BreakerState(srv.Addr(), "half_open_rpc"); st != "open" {
		t.Fatalf("breaker %s after partition failures, want open", st)
	}
	c.fabric.SetFaultPlan(nil)

	// Race several forwards into the cooldown/half-open window. The
	// retry loop must carry every one of them across the fast-fails.
	const racers = 4
	errs := make([]error, racers)
	ults := make([]*abt.ULT, racers)
	for k := 0; k < racers; k++ {
		k := k
		ults[k] = cli.Run("racer", func(self *abt.ULT) {
			errs[k] = cli.Forward(self, srv.Addr(), "half_open_rpc", &mercury.Void{}, nil)
		})
	}
	for _, u := range ults {
		if err := u.Join(nil); err != nil {
			t.Fatalf("racer ULT: %v", err)
		}
	}
	for k, err := range errs {
		if err != nil {
			t.Errorf("racer %d: %v", k, err)
		}
	}
	if st := cli.BreakerState(srv.Addr(), "half_open_rpc"); st != "closed" {
		t.Fatalf("breaker %s after recovery, want closed", st)
	}
	if ff := cli.OverloadStats().BreakerFastFails; ff == 0 {
		t.Fatal("no fast-fails: racers never hit the open/half-open gate")
	}
}
