package margo

import (
	"context"
	"time"

	"symbiosys/internal/batch"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
)

// OverloadPolicy is the server-side admission-control configuration
// (Options.Overload). The paper's C2 configuration saturates because an
// undersized handler pool queues requests unboundedly; this policy
// bounds that queue: when the handler pool's runnable depth or the
// in-flight handler count crosses a watermark, new requests are shed at
// dispatch (t4) with a typed, retryable rejection instead of being
// buried in the queue. Shedding happens to the *newest* requests first
// (the ones just arriving), CoDel-style: requests already admitted keep
// their execution streams and drain the backlog.
type OverloadPolicy struct {
	// SoftWatermark is the handler-pool runnable depth at which requests
	// below HighPriority are shed. Default 64.
	SoftWatermark int
	// HardWatermark is the depth at which all requests are shed
	// regardless of priority. Default 2×SoftWatermark.
	HardWatermark int
	// MaxInFlight caps admitted-but-unfinished handlers; at or above the
	// cap every new request is shed. Zero means no cap. This is the
	// deterministic knob tests use: unlike queue depth it does not race
	// with how fast execution streams drain.
	MaxInFlight int
	// HighPriority is the priority class that survives the soft
	// watermark (only the hard watermark sheds it). Default 128.
	HighPriority uint8
}

func (p OverloadPolicy) withDefaults() OverloadPolicy {
	if p.SoftWatermark <= 0 {
		p.SoftWatermark = 64
	}
	if p.HardWatermark <= 0 {
		p.HardWatermark = 2 * p.SoftWatermark
	}
	if p.HighPriority == 0 {
		p.HighPriority = 128
	}
	return p
}

// DefaultOverloadPolicy is the policy the overload experiments install.
func DefaultOverloadPolicy() OverloadPolicy {
	return OverloadPolicy{}.withDefaults()
}

// admission is the dispatch-time verdict for one incoming request.
type admission int

const (
	admitOK admission = iota
	admitShed
	admitExpired
)

// admitVerdict decides, in the progress ULT at dispatch time (t4),
// whether an incoming request gets a handler ULT. Draining instances
// shed everything; expired deadlines are rejected before any queueing;
// otherwise the overload policy's watermarks apply.
func (i *Instance) admitVerdict(meta mercury.Meta) admission {
	if i.draining.Load() {
		return admitShed
	}
	if meta.DeadlineNanos != 0 && time.Now().UnixNano() > meta.DeadlineNanos {
		return admitExpired
	}
	ol := i.overload
	if ol == nil {
		return admitOK
	}
	if ol.MaxInFlight > 0 && i.handlersInFlight.Load() >= int64(ol.MaxInFlight) {
		return admitShed
	}
	depth := int(i.handlerPool.Runnable())
	if depth >= ol.HardWatermark {
		return admitShed
	}
	if depth >= ol.SoftWatermark && meta.Priority < ol.HighPriority {
		return admitShed
	}
	return admitOK
}

// rejectRequest answers a request the admission check refused, without
// spawning a handler ULT. It runs in the progress ULT's Trigger pass.
// The decision is visible three ways: the shed/expired counter (PVAR +
// telemetry), a start/end trace-event pair with Failed set (so symtrace
// spans show *why* the request died instead of dangling), and the typed
// response status the origin maps back to ErrOverloaded /
// ErrDeadlineExpired.
func (i *Instance) rejectRequest(mh *mercury.Handle, rpcName string, verdict admission) {
	meta := mh.Meta()
	stage := i.prof.Stage()

	respMeta := mercury.Meta{}
	if stage.Injects() && meta.HasTrace {
		i.prof.Clock.Merge(meta.Order)
		respMeta = mercury.Meta{HasTrace: true, Order: i.prof.Clock.Tick()}
	}

	if stage.Measures() {
		now := time.Now()
		base := core.Event{
			RequestID:  meta.RequestID,
			Order:      respMeta.Order,
			Kind:       core.EvTargetStart,
			Timestamp:  i.prof.StampNanos(now),
			Entity:     i.Addr(),
			Peer:       mh.Peer(),
			RPCName:    rpcName,
			Breadcrumb: meta.Breadcrumb,
			Sys:        i.sysSample(i.handlerPool),
		}
		// Both halves of the span are emitted here: SpansOf pairs a
		// start with an end per (entity, breadcrumb, side), so a lone
		// Failed end event would be dropped as unmatched.
		i.prof.EmitAt(meta.RequestID, base)
		end := base
		end.Kind = core.EvTargetEnd
		end.Duration = 0
		end.Failed = true
		i.prof.EmitAt(meta.RequestID, end)
	}

	switch verdict {
	case admitExpired:
		i.expiredTotal.Add(1)
		_ = mh.RespondExpired(respMeta, nil)
	default:
		i.shedTotal.Add(1)
		_ = mh.RespondOverloaded(respMeta, nil)
	}
}

// Overload returns a copy of the active admission policy, or nil when
// the instance admits unconditionally.
func (i *Instance) Overload() *OverloadPolicy {
	if i.overload == nil {
		return nil
	}
	pol := *i.overload
	return &pol
}

// Draining reports whether the instance has stopped admitting requests.
func (i *Instance) Draining() bool { return i.draining.Load() }

// HandlersInFlight reports admitted-but-unfinished handler ULTs.
func (i *Instance) HandlersInFlight() int64 { return i.handlersInFlight.Load() }

// OverloadStats is the instance's lifetime overload-control counters.
type OverloadStats struct {
	// Shed counts requests rejected by admission control (watermarks,
	// in-flight cap, or draining).
	Shed uint64
	// Expired counts requests rejected because their propagated
	// deadline had passed (at dispatch or at handler start).
	Expired uint64
	// BreakerTrips counts client-side circuit-breaker closed→open
	// transitions.
	BreakerTrips uint64
	// BreakerFastFails counts forward attempts refused locally by an
	// open breaker without touching the network.
	BreakerFastFails uint64
	// OpenBreakers is the number of (target, RPC) breakers currently
	// not closed.
	OpenBreakers int
}

// OverloadStats reports the instance's overload-control counters.
func (i *Instance) OverloadStats() OverloadStats {
	return OverloadStats{
		Shed:             i.shedTotal.Load(),
		Expired:          i.expiredTotal.Load(),
		BreakerTrips:     i.breakerTripsTotal.Load(),
		BreakerFastFails: i.breakerFastFailsTotal.Load(),
		OpenBreakers:     i.openBreakers(),
	}
}

// OnDrain registers a hook that Drain invokes after the instance stops
// admitting requests but before it waits out in-flight work and shuts
// down — the window where a service can run last outbound RPCs (the
// endpoint still forwards and receives responses) to hand its state to
// peers. Hooks run in registration order on the draining goroutine;
// the first hook error is reported by Drain after shutdown completes.
func (i *Instance) OnDrain(fn func(ctx context.Context) error) {
	i.drainMu.Lock()
	i.drainHooks = append(i.drainHooks, fn)
	i.drainMu.Unlock()
}

// Drain gracefully quiesces the instance: it stops admitting new
// requests (incoming RPCs are shed with ErrOverloaded so origins fail
// over), runs any OnDrain hooks, waits for in-flight handlers and
// outbound forwards to finish, then runs the full Shutdown sequence —
// sink flush, sampler stop, PVAR session finalize, endpoint close. If
// ctx expires first the instance is torn down anyway (in-flight work is
// abandoned) and ctx's error is returned so callers know the drain was
// dirty.
func (i *Instance) Drain(ctx context.Context) error {
	i.draining.Store(true)
	// Open coalescer windows flush immediately: their members count in
	// rpcsInFlight, so the wait below would otherwise idle out a window
	// timer per (target, RPC) before making progress.
	i.flushAll(batch.ReasonDrain)
	i.drainMu.Lock()
	hooks := append([]func(context.Context) error{}, i.drainHooks...)
	i.drainMu.Unlock()
	var hookErr error
	for _, fn := range hooks {
		if err := fn(ctx); err != nil && hookErr == nil {
			hookErr = err
		}
	}
	for i.handlersInFlight.Load() != 0 || i.rpcsInFlight.Load() != 0 {
		select {
		case <-ctx.Done():
			serr := i.Shutdown()
			if serr != nil {
				return serr
			}
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
	if err := i.Shutdown(); err != nil {
		return err
	}
	return hookErr
}
