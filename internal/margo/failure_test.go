package margo

import (
	"errors"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
)

func TestPanickingHandlerStillResponds(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("boom_rpc", func(ctx *Context) {
		panic("handler exploded")
	})
	cli.RegisterClient("boom_rpc")
	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "boom_rpc", &mercury.Void{}, nil)
	})
	if !errors.Is(err, mercury.ErrHandlerFail) || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
	// The service keeps working after the panic.
	srv.Register("ok_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("ok_rpc")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "ok_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatalf("follow-up rpc: %v", err)
	}
}

func TestPanicAfterRespondDoesNotDoubleRespond(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("late_boom", func(ctx *Context) {
		ctx.Respond(mercury.Void{})
		panic("after responding")
	})
	cli.RegisterClient("late_boom")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "late_boom", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatalf("err = %v, want success (respond happened before panic)", err)
	}
}

func TestForwardTimeoutFiresOnSilentServer(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	release := make(chan struct{})
	srv.Register("stuck_rpc", func(ctx *Context) {
		<-release // simulates a hung backend
		ctx.Respond(mercury.Void{})
	})
	defer close(release)
	cli.RegisterClient("stuck_rpc")

	start := time.Now()
	err := call(t, cli, func(self *abt.ULT) error {
		return cli.ForwardTimeout(self, srv.Addr(), "stuck_rpc", &mercury.Void{}, nil, 30*time.Millisecond)
	})
	if !errors.Is(err, mercury.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The late response is dropped as stale, not delivered.
	time.Sleep(10 * time.Millisecond)
	if cli.InFlight() != 0 {
		t.Fatalf("InFlight = %d after timeout", cli.InFlight())
	}
}

func TestForwardTimeoutNotFiredOnFastServer(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("fast_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("fast_rpc")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.ForwardTimeout(self, srv.Addr(), "fast_rpc", &mercury.Void{}, nil, 5*time.Second)
	}); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestClockSkewPreservesLamportOrder(t *testing.T) {
	// Skew the client's clock far into the past: raw timestamps now
	// disorder the events across processes, but the Lamport orders must
	// stay causal — the paper's reason for implementing Lamport clocks.
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})
	cli.Profiler().SetClockSkew(-time.Hour)
	if cli.Profiler().ClockSkew() != -time.Hour {
		t.Fatal("skew not applied")
	}
	srv.Register("skewed_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("skewed_rpc")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "skewed_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatal(err)
	}

	find := func(evs []core.Event, k core.EventKind) core.Event {
		for _, e := range evs {
			if e.Kind == k {
				return e
			}
		}
		t.Fatalf("missing %v", k)
		return core.Event{}
	}
	t1 := find(cli.Profiler().TraceEvents(), core.EvOriginStart)
	t5 := find(srv.Profiler().TraceEvents(), core.EvTargetStart)
	// Wall clocks disagree wildly...
	if t1.Timestamp >= t5.Timestamp-int64(30*time.Minute) {
		t.Fatalf("expected skewed timestamps: t1=%d t5=%d", t1.Timestamp, t5.Timestamp)
	}
	// ...but causal order holds.
	if !(t1.Order < t5.Order) {
		t.Fatalf("lamport order broken: %d >= %d", t1.Order, t5.Order)
	}
}

func TestCancelPostedSweepsTarget(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	release := make(chan struct{})
	srv.Register("hang_rpc", func(ctx *Context) {
		<-release
		ctx.Respond(mercury.Void{})
	})
	defer close(release)
	cli.RegisterClient("hang_rpc")

	errs := make([]error, 3)
	ults := make([]*abt.ULT, 3)
	for i := range ults {
		idx := i
		ults[i] = cli.Run("w", func(self *abt.ULT) {
			errs[idx] = cli.Forward(self, srv.Addr(), "hang_rpc", &mercury.Void{}, nil)
		})
	}
	// Wait for all three to be posted, then sweep.
	deadline := time.Now().Add(5 * time.Second)
	for cli.InFlight() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight = %d", cli.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the sends post the handles
	if n := cli.Mercury().CancelPosted(srv.Addr()); n != 3 {
		t.Fatalf("CancelPosted = %d, want 3", n)
	}
	for i, u := range ults {
		u.Join(nil)
		if !errors.Is(errs[i], mercury.ErrCanceled) {
			t.Fatalf("rpc %d err = %v", i, errs[i])
		}
	}
}
