package margo

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
)

func TestPanickingHandlerStillResponds(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("boom_rpc", func(ctx *Context) {
		panic("handler exploded")
	})
	cli.RegisterClient("boom_rpc")
	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "boom_rpc", &mercury.Void{}, nil)
	})
	if !errors.Is(err, mercury.ErrHandlerFail) || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
	// The service keeps working after the panic.
	srv.Register("ok_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("ok_rpc")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "ok_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatalf("follow-up rpc: %v", err)
	}
}

func TestPanicAfterRespondDoesNotDoubleRespond(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("late_boom", func(ctx *Context) {
		ctx.Respond(mercury.Void{})
		panic("after responding")
	})
	cli.RegisterClient("late_boom")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "late_boom", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatalf("err = %v, want success (respond happened before panic)", err)
	}
}

func TestForwardTimeoutFiresOnSilentServer(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	release := make(chan struct{})
	srv.Register("stuck_rpc", func(ctx *Context) {
		<-release // simulates a hung backend
		ctx.Respond(mercury.Void{})
	})
	defer close(release)
	cli.RegisterClient("stuck_rpc")

	start := time.Now()
	err := call(t, cli, func(self *abt.ULT) error {
		return cli.ForwardTimeout(self, srv.Addr(), "stuck_rpc", &mercury.Void{}, nil, 30*time.Millisecond)
	})
	if !errors.Is(err, mercury.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The late response is dropped as stale, not delivered.
	time.Sleep(10 * time.Millisecond)
	if cli.InFlight() != 0 {
		t.Fatalf("InFlight = %d after timeout", cli.InFlight())
	}
}

func TestForwardTimeoutNotFiredOnFastServer(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("fast_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("fast_rpc")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.ForwardTimeout(self, srv.Addr(), "fast_rpc", &mercury.Void{}, nil, 5*time.Second)
	}); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestClockSkewPreservesLamportOrder(t *testing.T) {
	// Skew the client's clock far into the past: raw timestamps now
	// disorder the events across processes, but the Lamport orders must
	// stay causal — the paper's reason for implementing Lamport clocks.
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})
	cli.Profiler().SetClockSkew(-time.Hour)
	if cli.Profiler().ClockSkew() != -time.Hour {
		t.Fatal("skew not applied")
	}
	srv.Register("skewed_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("skewed_rpc")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "skewed_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatal(err)
	}

	find := func(evs []core.Event, k core.EventKind) core.Event {
		for _, e := range evs {
			if e.Kind == k {
				return e
			}
		}
		t.Fatalf("missing %v", k)
		return core.Event{}
	}
	t1 := find(cli.Profiler().TraceEvents(), core.EvOriginStart)
	t5 := find(srv.Profiler().TraceEvents(), core.EvTargetStart)
	// Wall clocks disagree wildly...
	if t1.Timestamp >= t5.Timestamp-int64(30*time.Minute) {
		t.Fatalf("expected skewed timestamps: t1=%d t5=%d", t1.Timestamp, t5.Timestamp)
	}
	// ...but causal order holds.
	if !(t1.Order < t5.Order) {
		t.Fatalf("lamport order broken: %d >= %d", t1.Order, t5.Order)
	}
}

func TestCancelPostedSweepsTarget(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	release := make(chan struct{})
	srv.Register("hang_rpc", func(ctx *Context) {
		<-release
		ctx.Respond(mercury.Void{})
	})
	defer close(release)
	cli.RegisterClient("hang_rpc")

	errs := make([]error, 3)
	ults := make([]*abt.ULT, 3)
	for i := range ults {
		idx := i
		ults[i] = cli.Run("w", func(self *abt.ULT) {
			errs[idx] = cli.Forward(self, srv.Addr(), "hang_rpc", &mercury.Void{}, nil)
		})
	}
	// Wait for all three to be posted, then sweep.
	deadline := time.Now().Add(5 * time.Second)
	for cli.InFlight() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight = %d", cli.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the sends post the handles
	if n := cli.Mercury().CancelPosted(srv.Addr()); n != 3 {
		t.Fatalf("CancelPosted = %d, want 3", n)
	}
	for i, u := range ults {
		u.Join(nil)
		if !errors.Is(errs[i], mercury.ErrCanceled) {
			t.Fatalf("rpc %d err = %v", i, errs[i])
		}
	}
}

// TestDrainWaitsForInflightAndShedsNew: Drain must stop admitting new
// requests immediately (they shed with ErrOverloaded) while the
// in-flight handler runs to completion and gets its response out — the
// graceful half of graceful drain.
func TestDrainWaitsForInflightAndShedsNew(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})

	gate := abt.NewEventual()
	srv.Register("slow_rpc", func(ctx *Context) {
		gate.Wait(ctx.Self)
		ctx.Respond(mercury.Void{})
	})
	cli.RegisterClient("slow_rpc")

	// Park one handler mid-request.
	var inflightErr error
	inflight := cli.Run("inflight", func(self *abt.ULT) {
		inflightErr = cli.Forward(self, srv.Addr(), "slow_rpc", &mercury.Void{}, nil)
	})
	waitFor(t, func() bool { return srv.HandlersInFlight() == 1 })

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	waitFor(t, func() bool { return srv.Draining() })

	// A request arriving during the drain is shed, not queued.
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "slow_rpc", &mercury.Void{}, nil)
	}); !errors.Is(err, mercury.ErrOverloaded) {
		t.Fatalf("forward during drain: %v, want ErrOverloaded", err)
	}

	// The drain must still be waiting on the parked handler.
	select {
	case err := <-drainDone:
		t.Fatalf("drain completed with handler in flight: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	// Release the handler: the in-flight request completes successfully
	// and the drain finishes clean.
	gate.Set(nil)
	if err := inflight.Join(nil); err != nil {
		t.Fatalf("inflight ULT: %v", err)
	}
	if inflightErr != nil {
		t.Fatalf("in-flight forward across drain: %v", inflightErr)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not complete after handler finished")
	}
}

// TestHandlerPanicDuringDrain: a handler that panics while the instance
// is draining must not wedge the drain — the panic-recovery path still
// responds (an error, flagged Failed), the in-flight count drops, and
// Drain completes.
func TestHandlerPanicDuringDrain(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})

	gate := abt.NewEventual()
	srv.Register("doomed_rpc", func(ctx *Context) {
		gate.Wait(ctx.Self)
		panic("backend exploded mid-drain")
	})
	cli.RegisterClient("doomed_rpc")

	var fwdErr error
	fwd := cli.Run("doomed", func(self *abt.ULT) {
		fwdErr = cli.Forward(self, srv.Addr(), "doomed_rpc", &mercury.Void{}, nil)
	})
	waitFor(t, func() bool { return srv.HandlersInFlight() == 1 })

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	waitFor(t, func() bool { return srv.Draining() })

	gate.Set(nil) // handler resumes and panics while draining
	if err := fwd.Join(nil); err != nil {
		t.Fatalf("client ULT: %v", err)
	}
	if fwdErr == nil || !strings.Contains(fwdErr.Error(), "panicked") {
		t.Fatalf("forward to panicking handler: %v, want handler-panic error", fwdErr)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain after handler panic: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain wedged by panicking handler")
	}
}

// TestShedRequestStitchesSingleFailedTrace: a shed decision must close
// its trace span — exactly one Failed SERVER span per shed request, no
// dangling EvTargetStart — so symtrace renders rejections instead of
// losing them.
func TestShedRequestStitchesSingleFailedTrace(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull,
		Overload: &OverloadPolicy{MaxInFlight: 1, SoftWatermark: 100, HardWatermark: 200}})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})

	gate := abt.NewEventual()
	srv.Register("occupied_rpc", func(ctx *Context) {
		gate.Wait(ctx.Self)
		ctx.Respond(mercury.Void{})
	})
	cli.RegisterClient("occupied_rpc")

	// Occupy the single admission slot, then let a second request hit
	// the MaxInFlight cap deterministically.
	occupied := cli.Run("occupier", func(self *abt.ULT) {
		cli.Forward(self, srv.Addr(), "occupied_rpc", &mercury.Void{}, nil)
	})
	waitFor(t, func() bool { return srv.HandlersInFlight() == 1 })
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "occupied_rpc", &mercury.Void{}, nil)
	}); !errors.Is(err, mercury.ErrOverloaded) {
		t.Fatalf("forward over MaxInFlight: %v, want ErrOverloaded", err)
	}
	gate.Set(nil)
	if err := occupied.Join(nil); err != nil {
		t.Fatalf("occupier ULT: %v", err)
	}

	// Merge both sides' events and find the shed request: it has a
	// Failed SERVER span on the target.
	evs := append(cli.Profiler().TraceEvents(), srv.Profiler().TraceEvents()...)
	byReq := make(map[uint64][]core.Event)
	for _, e := range evs {
		byReq[e.RequestID] = append(byReq[e.RequestID], e)
	}
	shedReqs := 0
	for id, revs := range byReq {
		sort.SliceStable(revs, func(i, j int) bool { return revs[i].Order < revs[j].Order })
		starts, ends, failedEnds := 0, 0, 0
		for _, e := range revs {
			switch e.Kind {
			case core.EvTargetStart:
				starts++
			case core.EvTargetEnd:
				ends++
				if e.Failed {
					failedEnds++
				}
			}
		}
		if failedEnds == 0 {
			continue
		}
		shedReqs++
		// The rejection pairs exactly: one start, one Failed end.
		if starts != 1 || ends != 1 {
			t.Errorf("request %d: %d target starts / %d ends, want 1/1", id, starts, ends)
		}
		spans := analysis.SpansOf(id, revs)
		server := 0
		for _, sp := range spans {
			if sp.Kind == "SERVER" {
				server++
				if !sp.Failed {
					t.Errorf("request %d: shed SERVER span not Failed", id)
				}
			}
		}
		if server != 1 {
			t.Errorf("request %d: %d SERVER spans, want exactly 1", id, server)
		}
	}
	if shedReqs != 1 {
		t.Fatalf("%d requests with Failed server spans, want 1 (the shed one)", shedReqs)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
