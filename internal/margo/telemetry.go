package margo

import (
	"sort"
	"time"

	"symbiosys/internal/core"
	"symbiosys/internal/mercury/pvar"
	"symbiosys/internal/telemetry"
)

// margo.Instance implements telemetry.Source: the sampler pulls one
// Sample per tick through the same PVAR session Margo opened at
// initialization (paper Figure 3), so live monitoring reads exactly the
// variables the measurement pipeline fuses into traces.
var _ telemetry.Source = (*Instance)(nil)

// TelemetrySample snapshots the instance's live state for the
// telemetry sampler: every library-global PVAR, per-pool occupancy,
// na-layer completion-queue counters, and collector health.
func (i *Instance) TelemetrySample() telemetry.Sample {
	s := telemetry.Sample{
		UnixNanos:      time.Now().UnixNano(),
		CQDepth:        i.ep.CQDepth(),
		EventsRead:     i.ep.EventsRead(),
		EventsPosted:   i.ep.EventsPosted(),
		CQOverflows:    i.ep.Overflows(),
		OFIMaxEvents:   i.hg.OFIMaxEvents(),
		HandlerStreams: i.HandlerStreams(),
		RPCsInFlight:   i.rpcsInFlight.Load(),
		SysRefreshes:   i.sys.Refreshes(),
		RPCRetries:     i.retriesTotal.Load(),
		RPCTimeouts:    i.timeoutsTotal.Load(),
		RPCExhausted:   i.exhaustedTotal.Load(),
		RPCCancels:     i.cancelsTotal.Load(),
		FaultDrops:     i.ep.FaultDrops(),
		FaultDups:      i.ep.FaultDups(),
		FaultDelays:    i.ep.FaultDelays(),
		FaultRefusals:  i.ep.FaultRefusals(),

		OverloadShed:     i.shedTotal.Load(),
		OverloadExpired:  i.expiredTotal.Load(),
		BreakerTrips:     i.breakerTripsTotal.Load(),
		BreakerFastFails: i.breakerFastFailsTotal.Load(),
		BreakerOpen:      i.openBreakers(),
		AdmissionDepth:   i.handlersInFlight.Load(),
		Draining:         i.draining.Load(),
	}

	if i.batchPol != nil {
		bs := i.BatchStats()
		s.BatchFlushes = bs.Flushes
		s.BatchOps = bs.Ops
		s.BatchBytes = bs.Bytes
		s.BatchRetries = bs.Retries
		s.BatchCoalesceRatio = bs.CoalesceRatio
		s.BatchOccupancy = bs.LastOccupancy
		s.BatchOccupancyHWM = bs.OccupancyHWM
		s.BatchFlushReasons = bs.FlushReasons
	}

	sched := i.rt.SchedStats()
	s.SchedQuanta = sched.Quanta
	s.SchedSteals = sched.Steals
	s.SchedParks = sched.Parks
	s.SchedWakes = sched.Wakes
	s.ProgressSpinPolls = i.progressSpinsTotal.Load()
	s.ProgressParks = i.progressParksTotal.Load()

	sys := i.sys.Sample()
	s.HeapBytes = sys.HeapBytes
	s.Goroutines = sys.Goroutines

	coll := i.prof.Collector()
	s.TraceLen = coll.TraceLen()
	s.TraceDropped = coll.Dropped()
	s.SinkErrors = coll.SinkErrors()
	var handler, total uint64
	for _, st := range coll.OriginStats() {
		s.OriginCalls += st.Count
	}
	for _, st := range coll.TargetStats() {
		s.TargetCalls += st.Count
		handler += st.Components[core.CompHandler]
		total += st.CumNanos
	}
	s.TargetHandlerNanos = handler
	s.TargetTotalNanos = total

	if infos, err := i.session.Query(); err == nil {
		for _, info := range infos {
			if info.Binding != pvar.BindNoObject {
				continue // handle-bound PVARs have no instance-wide value
			}
			h := i.globalPVarHandle(info.Name)
			if h == nil {
				continue // Margo only holds handles for the fused set
			}
			v, err := i.session.Read(h, nil)
			if err != nil {
				continue
			}
			s.PVars = append(s.PVars, telemetry.PVarValue{
				Name:    info.Name,
				Counter: info.Class == pvar.ClassCounter,
				Value:   v,
			})
		}
	}

	pools := i.rt.Pools()
	sort.Slice(pools, func(a, b int) bool { return pools[a].Name() < pools[b].Name() })
	for _, p := range pools {
		st := p.Snapshot()
		s.Pools = append(s.Pools, telemetry.PoolStat{
			Name:     p.Name(),
			Runnable: int64(st.Runnable),
			Blocked:  st.Blocked,
			Created:  st.Created,
			Executed: st.Executed,
		})
	}
	return s
}

// CallpathStats exports the per-callpath latency statistics with
// human-readable paths (hop hashes resolved through the instance's name
// registry), both sides of the RPC.
func (i *Instance) CallpathStats() []telemetry.CallpathStat {
	names := i.prof.Names()
	coll := i.prof.Collector()
	var out []telemetry.CallpathStat
	for side, stats := range map[string]map[core.StatKey]core.CallStats{
		"origin": coll.OriginStats(),
		"target": coll.TargetStats(),
	} {
		for k, st := range stats {
			out = append(out, telemetry.CallpathStat{
				Side:  side,
				Path:  names.Format(k.BC),
				Peer:  k.Peer,
				Stats: st,
			})
		}
	}
	return out
}
