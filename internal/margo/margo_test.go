package margo

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

// cluster is a small virtual deployment for tests.
type cluster struct {
	fabric *na.Fabric
	insts  []*Instance
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	c := &cluster{fabric: na.NewFabric(na.DefaultConfig())}
	t.Cleanup(func() {
		for _, i := range c.insts {
			i.Shutdown()
		}
	})
	return c
}

func (c *cluster) add(t *testing.T, opts Options) *Instance {
	t.Helper()
	opts.Fabric = c.fabric
	inst, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.insts = append(c.insts, inst)
	return inst
}

type kvArgs struct {
	Key   string
	Value []byte
}

func (a *kvArgs) Proc(p *mercury.Proc) error {
	p.String(&a.Key)
	p.Bytes(&a.Value)
	return p.Err()
}

// call runs fn inside a fresh client ULT and waits for it.
func call(t *testing.T, inst *Instance, fn func(self *abt.ULT) error) error {
	t.Helper()
	var err error
	u := inst.Run("test-client", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		t.Fatalf("client ULT: %v", jerr)
	}
	return err
}

func TestForwardEndToEnd(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})

	store := map[string][]byte{}
	var mu abt.Mutex
	if err := srv.Register("kv_put", func(ctx *Context) {
		var in kvArgs
		if err := ctx.GetInput(&in); err != nil {
			ctx.RespondError("decode: %v", err)
			return
		}
		mu.Lock(ctx.Self)
		store[in.Key] = in.Value
		mu.Unlock()
		ctx.Respond(mercury.Void{})
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("kv_get", func(ctx *Context) {
		var in kvArgs
		ctx.GetInput(&in)
		mu.Lock(ctx.Self)
		v := store[in.Key]
		mu.Unlock()
		out := kvArgs{Key: in.Key, Value: v}
		ctx.Respond(&out)
	}); err != nil {
		t.Fatal(err)
	}
	if err := cli.RegisterClient("kv_put", "kv_get"); err != nil {
		t.Fatal(err)
	}

	err := call(t, cli, func(self *abt.ULT) error {
		if err := cli.Forward(self, srv.Addr(), "kv_put", &kvArgs{Key: "k", Value: []byte("v1")}, nil); err != nil {
			return err
		}
		var out kvArgs
		if err := cli.Forward(self, srv.Addr(), "kv_get", &kvArgs{Key: "k"}, &out); err != nil {
			return err
		}
		if string(out.Value) != "v1" {
			t.Errorf("get = %q", out.Value)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForwardErrorFromHandler(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("boom", func(ctx *Context) { ctx.RespondError("no capacity") })
	cli.RegisterClient("boom")

	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "boom", &mercury.Void{}, nil)
	})
	if !errors.Is(err, mercury.ErrHandlerFail) || !strings.Contains(err.Error(), "no capacity") {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerWithoutRespondFailsLoudly(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("lazy", func(ctx *Context) {})
	cli.RegisterClient("lazy")
	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "lazy", &mercury.Void{}, nil)
	})
	if !errors.Is(err, mercury.ErrHandlerFail) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterOnClientRejected(t *testing.T) {
	c := newCluster(t)
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	if err := cli.Register("x", func(*Context) {}); err == nil {
		t.Fatal("Register on client accepted")
	}
}

func TestBreadcrumbChainsAcrossProcesses(t *testing.T) {
	// client -> mid (handler forwards) -> leaf; the leaf must observe a
	// depth-2 breadcrumb ending in its own RPC.
	c := newCluster(t)
	leaf := c.add(t, Options{Mode: ModeServer, Node: "n2", Name: "leaf", Stage: core.StageFull})
	mid := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "mid", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})

	var leafBC core.Breadcrumb
	var leafReqID uint64
	leaf.Register("leaf_rpc", func(ctx *Context) {
		leafBC = ctx.Breadcrumb()
		leafReqID = ctx.RequestID()
		ctx.Respond(mercury.Void{})
	})
	mid.Register("mid_rpc", func(ctx *Context) {
		if err := ctx.Forward(leaf.Addr(), "leaf_rpc", &mercury.Void{}, nil); err != nil {
			ctx.RespondError("leaf: %v", err)
			return
		}
		ctx.Respond(mercury.Void{})
	})
	mid.RegisterClient("leaf_rpc")
	cli.RegisterClient("mid_rpc")

	err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, mid.Addr(), "mid_rpc", &mercury.Void{}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	want := core.Breadcrumb(0).Push("mid_rpc").Push("leaf_rpc")
	if leafBC != want {
		t.Fatalf("leaf breadcrumb = %v, want %v", leafBC, want)
	}
	if leafReqID == 0 {
		t.Fatal("request ID did not propagate")
	}

	// The mid profile must hold an origin entry for mid_rpc=>leaf_rpc.
	found := false
	for k := range mid.Profiler().OriginStats() {
		if k.BC == want && k.Peer == leaf.Addr() {
			found = true
		}
	}
	if !found {
		t.Fatalf("mid origin stats missing chained callpath: %+v", mid.Profiler().OriginStats())
	}
}

func TestProfileComponentsRecorded(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})
	srv.Register("work_rpc", func(ctx *Context) {
		var in kvArgs
		if err := ctx.GetInput(&in); err != nil {
			ctx.RespondError("decode: %v", err)
			return
		}
		ctx.Compute(2 * time.Millisecond)
		ctx.Respond(mercury.Void{})
	})
	cli.RegisterClient("work_rpc")

	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "work_rpc", &kvArgs{Key: "k", Value: make([]byte, 512)}, nil)
	}); err != nil {
		t.Fatal(err)
	}
	// Target-side completion measurements land after t13; wait briefly.
	time.Sleep(20 * time.Millisecond)

	bc := core.Breadcrumb(0).Push("work_rpc")
	ostats := cli.Profiler().OriginStats()
	o, ok := ostats[core.StatKey{BC: bc, Peer: srv.Addr()}]
	if !ok {
		t.Fatalf("origin stats missing: %+v", ostats)
	}
	if o.Count != 1 || o.Components[core.CompOriginExec] < uint64(2*time.Millisecond) {
		t.Fatalf("origin stats = %+v", o)
	}

	tstats := srv.Profiler().TargetStats()
	tg, ok := tstats[core.StatKey{BC: bc, Peer: cli.Addr()}]
	if !ok {
		t.Fatalf("target stats missing: %+v", tstats)
	}
	if tg.Components[core.CompTargetExec] < uint64(2*time.Millisecond) {
		t.Fatalf("target exec = %v", tg.Components[core.CompTargetExec])
	}
	if tg.Components[core.CompInputDeser] == 0 {
		t.Fatal("input deserialization PVAR not fused at Full stage")
	}
}

func TestTraceEventsEmittedAtFourPoints(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})
	srv.Register("traced_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("traced_rpc")

	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "traced_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatal(err)
	}

	cliEvs := cli.Profiler().TraceEvents()
	srvEvs := srv.Profiler().TraceEvents()
	kinds := map[core.EventKind]int{}
	var reqID uint64
	for _, e := range append(cliEvs, srvEvs...) {
		kinds[e.Kind]++
		if reqID == 0 {
			reqID = e.RequestID
		} else if e.RequestID != reqID {
			t.Fatalf("request IDs differ across events: %#x vs %#x", e.RequestID, reqID)
		}
	}
	for _, k := range []core.EventKind{core.EvOriginStart, core.EvTargetStart, core.EvTargetEnd, core.EvOriginEnd} {
		if kinds[k] != 1 {
			t.Fatalf("event kinds = %v, want one of each", kinds)
		}
	}
	// Lamport order must increase along the causal chain t1<t5<=t8<t14.
	get := func(evs []core.Event, k core.EventKind) core.Event {
		for _, e := range evs {
			if e.Kind == k {
				return e
			}
		}
		t.Fatalf("missing event %v", k)
		return core.Event{}
	}
	t1 := get(cliEvs, core.EvOriginStart)
	t5 := get(srvEvs, core.EvTargetStart)
	t8 := get(srvEvs, core.EvTargetEnd)
	t14 := get(cliEvs, core.EvOriginEnd)
	if !(t1.Order < t5.Order && t5.Order <= t8.Order && t8.Order < t14.Order) {
		t.Fatalf("lamport orders not causal: %d %d %d %d", t1.Order, t5.Order, t8.Order, t14.Order)
	}
	if t14.Components == nil || t14.Components[core.CompOriginExec] == 0 {
		t.Fatal("origin end event missing component breakdown")
	}
	if t14.PVars == nil {
		t.Fatal("origin end event missing PVAR sample at Full stage")
	}
}

func TestStageGatingBehaviour(t *testing.T) {
	for _, tc := range []struct {
		stage       core.Stage
		wantTrace   bool
		wantProfile bool
		wantPVars   bool
	}{
		{core.StageOff, false, false, false},
		{core.StageInject, false, false, false},
		{core.StageProfile, true, true, false},
		{core.StageFull, true, true, true},
	} {
		t.Run(tc.stage.String(), func(t *testing.T) {
			c := newCluster(t)
			srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: tc.stage})
			cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: tc.stage})
			srv.Register("gated_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
			cli.RegisterClient("gated_rpc")
			if err := call(t, cli, func(self *abt.ULT) error {
				return cli.Forward(self, srv.Addr(), "gated_rpc", &mercury.Void{}, nil)
			}); err != nil {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)

			if got := cli.Profiler().TraceLen() > 0; got != tc.wantTrace {
				t.Errorf("trace emitted = %v, want %v", got, tc.wantTrace)
			}
			if got := len(cli.Profiler().OriginStats()) > 0; got != tc.wantProfile {
				t.Errorf("profile recorded = %v, want %v", got, tc.wantProfile)
			}
			if tc.wantProfile {
				for _, s := range cli.Profiler().OriginStats() {
					if got := s.Components[core.CompInputSer] > 0; got != tc.wantPVars {
						t.Errorf("pvar fusion = %v, want %v", got, tc.wantPVars)
					}
				}
			}
		})
	}
}

func TestHandlerSaturationVisibleInHandlerTime(t *testing.T) {
	// One handler stream and parallel 3ms requests: later requests wait
	// in the pool, so cumulative handler time is significant (Fig 9).
	run := func(streams int) time.Duration {
		c := newCluster(t)
		srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv",
			Stage: core.StageFull, HandlerStreams: streams})
		cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull})
		srv.Register("slow_rpc", func(ctx *Context) {
			ctx.Compute(3 * time.Millisecond)
			ctx.Respond(mercury.Void{})
		})
		cli.RegisterClient("slow_rpc")

		const n = 8
		ults := make([]*abt.ULT, n)
		for k := 0; k < n; k++ {
			ults[k] = cli.Run("issuer", func(self *abt.ULT) {
				cli.Forward(self, srv.Addr(), "slow_rpc", &mercury.Void{}, nil)
			})
		}
		for _, u := range ults {
			u.Join(nil)
		}
		time.Sleep(20 * time.Millisecond)
		var handler time.Duration
		for _, s := range srv.Profiler().TargetStats() {
			handler += time.Duration(s.Components[core.CompHandler])
		}
		for _, i := range c.insts {
			i.Shutdown()
		}
		return handler
	}
	scarce := run(1)
	ample := run(8)
	if scarce < 3*time.Millisecond {
		t.Fatalf("scarce handler time = %v, want >= 3ms", scarce)
	}
	if ample*2 >= scarce {
		t.Fatalf("handler time scarce=%v ample=%v, want ample << scarce", scarce, ample)
	}
}

func TestWaitIdle(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	srv.Register("idle_rpc", func(ctx *Context) {
		ctx.Compute(2 * time.Millisecond)
		ctx.Respond(mercury.Void{})
	})
	cli.RegisterClient("idle_rpc")
	u := cli.Run("c", func(self *abt.ULT) {
		cli.Forward(self, srv.Addr(), "idle_rpc", &mercury.Void{}, nil)
	})
	if !cli.WaitIdle(5 * time.Second) {
		t.Fatal("WaitIdle timed out")
	}
	u.Join(nil)
	if cli.InFlight() != 0 {
		t.Fatalf("InFlight = %d", cli.InFlight())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	c := newCluster(t)
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})
	cli.Shutdown()
	cli.Shutdown()
}

func TestDuplicateEndpointNameFails(t *testing.T) {
	c := newCluster(t)
	c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "dup"})
	if _, err := New(Options{Mode: ModeClient, Node: "n0", Name: "dup", Fabric: c.fabric}); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestMissingFabricRejected(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("nil fabric accepted")
	}
}

func TestBulkThroughMargo(t *testing.T) {
	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli"})

	// Server pulls the client's exposed region, doubles each byte, and
	// pushes it back — exercising both directions inside a handler ULT.
	srv.Register("transform", func(ctx *Context) {
		var b mercury.Bulk
		if err := ctx.GetInput(&b); err != nil {
			ctx.RespondError("decode: %v", err)
			return
		}
		buf := make([]byte, b.Size())
		if err := ctx.BulkPull(b, 0, buf); err != nil {
			ctx.RespondError("pull: %v", err)
			return
		}
		for i := range buf {
			buf[i] *= 2
		}
		if err := ctx.BulkPush(b, 0, buf); err != nil {
			ctx.RespondError("push: %v", err)
			return
		}
		ctx.Respond(mercury.Void{})
	})
	cli.RegisterClient("transform")

	data := []byte{1, 2, 3, 4}
	bulk := cli.BulkCreate(data)
	defer cli.BulkFree(bulk)
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "transform", &bulk, nil)
	}); err != nil {
		t.Fatal(err)
	}
	want := []byte{2, 4, 6, 8}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("data = %v, want %v", data, want)
		}
	}
}

func TestDedicatedProgressESOption(t *testing.T) {
	c := newCluster(t)
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", DedicatedProgressES: true})
	if cli.rt.NumXStreams() != 2 {
		t.Fatalf("xstreams = %d, want 2 (main + dedicated progress)", cli.rt.NumXStreams())
	}
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv"})
	srv.Register("ok_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("ok_rpc")
	if err := call(t, cli, func(self *abt.ULT) error {
		return cli.Forward(self, srv.Addr(), "ok_rpc", &mercury.Void{}, nil)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMeasurementShardsAndTraceSink checks the sharded-pipeline wiring:
// MeasurementShards configures the collector, a streaming sink attached
// via Options observes every event the instance emits, and the merged
// snapshot matches what the sink consumed.
func TestMeasurementShardsAndTraceSink(t *testing.T) {
	var sinkBuf bytes.Buffer
	sink := core.NewJSONLTraceSink(&sinkBuf)

	c := newCluster(t)
	srv := c.add(t, Options{Mode: ModeServer, Node: "n1", Name: "srv", Stage: core.StageFull,
		MeasurementShards: 3}) // rounds up to 4
	cli := c.add(t, Options{Mode: ModeClient, Node: "n0", Name: "cli", Stage: core.StageFull,
		TraceSinks: []core.TraceSink{sink}})

	if got := srv.Profiler().Collector().NumShards(); got != 4 {
		t.Fatalf("server shards = %d, want 4", got)
	}

	srv.Register("sharded_rpc", func(ctx *Context) { ctx.Respond(mercury.Void{}) })
	cli.RegisterClient("sharded_rpc")
	const calls = 5
	for k := 0; k < calls; k++ {
		if err := call(t, cli, func(self *abt.ULT) error {
			return cli.Forward(self, srv.Addr(), "sharded_rpc", &mercury.Void{}, nil)
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv.WaitIdle(2 * time.Second)
	time.Sleep(10 * time.Millisecond) // let t13 callbacks land

	// The client ring holds t1+t14 per call; the sink saw the same
	// stream (origin side only — it is attached to the client).
	if got := cli.Profiler().TraceLen(); got != 2*calls {
		t.Fatalf("client trace len = %d, want %d", got, 2*calls)
	}
	if err := cli.Profiler().FlushSinks(); err != nil {
		t.Fatal(err)
	}
	evs, _, err := core.ReadEventsJSONL(&sinkBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2*calls {
		t.Fatalf("sink saw %d events, want %d", len(evs), 2*calls)
	}

	// Target-side profile merged across handler-ULT shards: all calls
	// present exactly once.
	var total uint64
	for _, s := range srv.Profiler().TargetStats() {
		total += s.Count
	}
	if total != calls {
		t.Fatalf("merged target count = %d, want %d", total, calls)
	}
}
