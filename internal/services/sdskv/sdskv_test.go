package sdskv

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/batch"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
)

type env struct {
	srv, cli *margo.Instance
	prov     *Provider
	client   *Client
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "sdskv", Fabric: f, HandlerStreams: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{Mode: margo.ModeClient, Node: "n0", Name: "cli", Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	prov, err := RegisterProvider(srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(cli)
	if err != nil {
		t.Fatal(err)
	}
	return &env{srv: srv, cli: cli, prov: prov, client: client}
}

func (e *env) run(t *testing.T, fn func(self *abt.ULT) error) error {
	t.Helper()
	var err error
	u := e.cli.Run("t", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		t.Fatal(jerr)
	}
	return err
}

// newBatchEnv is newEnv with a client-side coalescer installed.
func newBatchEnv(t *testing.T, cfg Config, pol batch.Policy) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "sdskv", Fabric: f, HandlerStreams: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "cli", Fabric: f, Batch: &pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	prov, err := RegisterProvider(srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(cli)
	if err != nil {
		t.Fatal(err)
	}
	return &env{srv: srv, cli: cli, prov: prov, client: client}
}

func TestPutMultiGetMultiBatched(t *testing.T) {
	e := newBatchEnv(t, Config{}, batch.Policy{MaxOps: 16, MaxDelay: 500 * time.Microsecond})
	const n = 48
	err := e.run(t, func(self *abt.ULT) error {
		db, err := e.client.Open(self, e.srv.Addr(), "multi", "map")
		if err != nil {
			return err
		}
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("mk-%03d", i))
			vals[i] = []byte(fmt.Sprintf("mv-%03d", i))
		}
		for i, err := range e.client.PutMulti(self, e.srv.Addr(), db, keys, vals) {
			if err != nil {
				t.Errorf("PutMulti[%d]: %v", i, err)
			}
		}
		// A miss in the middle must come back found=false, not an error.
		probe := append(append([][]byte{}, keys[:3]...), []byte("absent"))
		probe = append(probe, keys[3:]...)
		got, found, errs := e.client.GetMulti(self, e.srv.Addr(), db, probe)
		for i := range probe {
			if errs[i] != nil {
				t.Errorf("GetMulti[%d]: %v", i, errs[i])
				continue
			}
			if string(probe[i]) == "absent" {
				if found[i] {
					t.Error("absent key reported found")
				}
				continue
			}
			want := "mv-" + string(probe[i][3:])
			if !found[i] || string(got[i]) != want {
				t.Errorf("GetMulti[%d] = %q %v, want %q", i, got[i], found[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bs := e.cli.BatchStats()
	if bs.Flushes == 0 || bs.Ops < 2*n {
		t.Fatalf("coalescer idle: %+v", bs)
	}
	if bs.CoalesceRatio < 2 {
		t.Fatalf("multi-op workload did not coalesce: ratio %.2f", bs.CoalesceRatio)
	}
}

func TestPutMultiFallsBackWithoutPolicy(t *testing.T) {
	e := newEnv(t, Config{}) // no Options.Batch: sequential Forwards
	err := e.run(t, func(self *abt.ULT) error {
		db, err := e.client.Open(self, e.srv.Addr(), "plain", "map")
		if err != nil {
			return err
		}
		keys := [][]byte{[]byte("a"), []byte("b")}
		vals := [][]byte{[]byte("1"), []byte("2")}
		for i, err := range e.client.PutMulti(self, e.srv.Addr(), db, keys, vals) {
			if err != nil {
				t.Errorf("PutMulti[%d]: %v", i, err)
			}
		}
		got, found, errs := e.client.GetMulti(self, e.srv.Addr(), db, keys)
		for i := range keys {
			if errs[i] != nil || !found[i] || string(got[i]) != string(vals[i]) {
				t.Errorf("GetMulti[%d] = %q %v %v", i, got[i], found[i], errs[i])
			}
		}
		for _, err := range e.client.PutMulti(self, e.srv.Addr(), db, keys, vals[:1]) {
			if err == nil {
				t.Error("length mismatch accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs := e.cli.BatchStats(); bs.Flushes != 0 {
		t.Fatalf("unbatched instance recorded flushes: %+v", bs)
	}
}

func TestOpenPutGetEraseOverRPC(t *testing.T) {
	e := newEnv(t, Config{})
	err := e.run(t, func(self *abt.ULT) error {
		db, err := e.client.Open(self, e.srv.Addr(), "db0", "map")
		if err != nil {
			return err
		}
		if err := e.client.Put(self, e.srv.Addr(), db, []byte("k1"), []byte("v1")); err != nil {
			return err
		}
		v, found, err := e.client.Get(self, e.srv.Addr(), db, []byte("k1"))
		if err != nil || !found || string(v) != "v1" {
			t.Errorf("Get = %q %v %v", v, found, err)
		}
		if _, found, _ := e.client.Get(self, e.srv.Addr(), db, []byte("nope")); found {
			t.Error("missing key found")
		}
		n, err := e.client.Length(self, e.srv.Addr(), db)
		if err != nil || n != 1 {
			t.Errorf("Length = %d %v", n, err)
		}
		if err := e.client.Erase(self, e.srv.Addr(), db, []byte("k1")); err != nil {
			return err
		}
		if _, found, _ := e.client.Get(self, e.srv.Addr(), db, []byte("k1")); found {
			t.Error("erased key still found")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenDuplicateAndUnknownBackend(t *testing.T) {
	e := newEnv(t, Config{})
	err := e.run(t, func(self *abt.ULT) error {
		if _, err := e.client.Open(self, e.srv.Addr(), "dup", "map"); err != nil {
			return err
		}
		if _, err := e.client.Open(self, e.srv.Addr(), "dup", "map"); err == nil {
			t.Error("duplicate open accepted")
		}
		if _, err := e.client.Open(self, e.srv.Addr(), "x", "rocksdb"); err == nil {
			t.Error("unknown backend accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownDatabaseErrors(t *testing.T) {
	e := newEnv(t, Config{})
	err := e.run(t, func(self *abt.ULT) error {
		if err := e.client.Put(self, e.srv.Addr(), 42, []byte("k"), []byte("v")); err == nil {
			t.Error("put to unknown db accepted")
		} else if !strings.Contains(err.Error(), "unknown database") {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutPackedRoundTrip(t *testing.T) {
	e := newEnv(t, Config{})
	const n = 200
	err := e.run(t, func(self *abt.ULT) error {
		db, err := e.client.Open(self, e.srv.Addr(), "packed", "map")
		if err != nil {
			return err
		}
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%04d", i))
			vals[i] = []byte(fmt.Sprintf("val-%04d", i))
		}
		if err := e.client.PutPacked(self, e.srv.Addr(), db, keys, vals); err != nil {
			return err
		}
		cnt, err := e.client.Length(self, e.srv.Addr(), db)
		if err != nil || cnt != n {
			t.Errorf("Length = %d %v", cnt, err)
		}
		v, found, err := e.client.Get(self, e.srv.Addr(), db, []byte("key-0123"))
		if err != nil || !found || string(v) != "val-0123" {
			t.Errorf("Get packed = %q %v %v", v, found, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestListKeyvalsOrdered(t *testing.T) {
	e := newEnv(t, Config{})
	err := e.run(t, func(self *abt.ULT) error {
		db, err := e.client.Open(self, e.srv.Addr(), "listdb", "map")
		if err != nil {
			return err
		}
		for _, k := range []string{"e", "a", "c", "b", "d"} {
			if err := e.client.Put(self, e.srv.Addr(), db, []byte(k), []byte("v"+k)); err != nil {
				return err
			}
		}
		keys, vals, err := e.client.ListKeyvals(self, e.srv.Addr(), db, []byte("b"), 3)
		if err != nil {
			return err
		}
		want := []string{"b", "c", "d"}
		if len(keys) != 3 {
			t.Fatalf("keys = %v", keys)
		}
		for i := range want {
			if string(keys[i]) != want[i] || string(vals[i]) != "v"+want[i] {
				t.Errorf("list[%d] = %s=%s", i, keys[i], vals[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSerialBackendBlocksConcurrentPuts(t *testing.T) {
	// The map backend serializes writers through a ULT mutex; concurrent
	// puts must pile up as blocked ULTs in the handler pool — the
	// paper's Figure 10 signal.
	cfg := Config{PutCostPerKey: 3 * time.Millisecond}
	e := newEnv(t, cfg)
	var db uint32
	if err := e.run(t, func(self *abt.ULT) error {
		var err error
		db, err = e.client.Open(self, e.srv.Addr(), "serial", "map")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	const writers = 6
	done := make([]*abt.ULT, writers)
	for i := 0; i < writers; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		done[i] = e.cli.Run("w", func(self *abt.ULT) {
			e.client.Put(self, e.srv.Addr(), db, k, []byte("v"))
		})
	}
	// While the writers contend, the handler pool must report blocked
	// ULTs at some point.
	deadline := time.Now().Add(5 * time.Second)
	sawBlocked := false
	for time.Now().Before(deadline) && !sawBlocked {
		if e.srv.HandlerPool().Blocked() >= 2 {
			sawBlocked = true
		}
		time.Sleep(time.Millisecond)
	}
	for _, u := range done {
		u.Join(nil)
	}
	if !sawBlocked {
		t.Fatal("no blocked handler ULTs observed under serialized backend contention")
	}
	if e.prov.NumDatabases() != 1 {
		t.Fatalf("databases = %d", e.prov.NumDatabases())
	}
}

func TestShardedBackendDoesNotSerialize(t *testing.T) {
	cfg := Config{PutCostPerKey: 2 * time.Millisecond}
	e := newEnv(t, cfg)
	var db uint32
	if err := e.run(t, func(self *abt.ULT) error {
		var err error
		db, err = e.client.Open(self, e.srv.Addr(), "conc", "shardedmap")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const writers = 4
	done := make([]*abt.ULT, writers)
	for i := 0; i < writers; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		done[i] = e.cli.Run("w", func(self *abt.ULT) {
			e.client.Put(self, e.srv.Addr(), db, k, []byte("v"))
		})
	}
	for _, u := range done {
		u.Join(nil)
	}
	elapsed := time.Since(start)
	// 4 writers x 2ms on 4 handler streams should overlap: well under
	// the 8ms serial floor.
	if elapsed > 7*time.Millisecond*writers {
		t.Fatalf("concurrent puts took %v, looks serialized", elapsed)
	}
}
