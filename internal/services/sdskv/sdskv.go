// Package sdskv reimplements SDSKV, the Mochi microservice exposing
// RPC-based access to multiple key-value databases (paper §III-A, §V-C).
// A provider hosts any number of named databases, each on one of the kv
// backends; clients address databases by id. Writes to backends that do
// not support parallel insertion (the "map" backend of the paper) are
// serialized through a ULT mutex per database, so contention surfaces as
// blocked ULTs in the Argobots pool — exactly the saturation signature
// SYMBIOSYS samples in the paper's Figure 10.
//
// sdskv_put_packed mirrors the HEPnOS hot path: the client packs a batch
// of key-value pairs into one buffer, sends only its bulk descriptor,
// and the target pulls the content one-sidedly before inserting.
package sdskv

import (
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/kv"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// RPC names exported by the SDSKV provider.
const (
	RPCOpen        = "sdskv_open_rpc"
	RPCPut         = "sdskv_put_rpc"
	RPCGet         = "sdskv_get_rpc"
	RPCPutPacked   = "sdskv_put_packed_rpc"
	RPCListKeyvals = "sdskv_list_keyvals_rpc"
	RPCLength      = "sdskv_length_rpc"
	RPCErase       = "sdskv_erase_rpc"
	RPCListDBs     = "sdskv_list_databases_rpc"
)

// RPCNames lists every SDSKV RPC (for client registration).
func RPCNames() []string {
	return []string{RPCOpen, RPCPut, RPCGet, RPCPutPacked, RPCListKeyvals, RPCLength, RPCErase, RPCListDBs}
}

// Config models backend insertion costs.
type Config struct {
	// PutCostPerKey is the modeled backend insert time per key-value
	// pair. It is charged while holding the database write lock on
	// serial backends, which is what makes a flood of small puts to the
	// same database serialize (paper §V-C3). Default 4µs.
	PutCostPerKey time.Duration
	// GetCostPerKey is the modeled lookup time. Default 1µs.
	GetCostPerKey time.Duration
	// ListCostPerItem is the modeled per-returned-item scan cost.
	// Default 1µs.
	ListCostPerItem time.Duration
}

func (c *Config) fillDefaults() {
	if c.PutCostPerKey <= 0 {
		c.PutCostPerKey = 4 * time.Microsecond
	}
	if c.GetCostPerKey <= 0 {
		c.GetCostPerKey = time.Microsecond
	}
	if c.ListCostPerItem <= 0 {
		c.ListCostPerItem = time.Microsecond
	}
}

// Provider is an SDSKV target hosting multiple databases.
type Provider struct {
	cfg Config

	mu     sync.Mutex
	dbs    map[uint32]*database
	byName map[string]uint32
	nextID uint32
}

type database struct {
	db kv.DB
	// wlock serializes writers on backends without parallel insertion;
	// nil when the backend supports concurrent writes.
	wlock *abt.Mutex
}

// RegisterProvider installs an SDSKV provider on a Margo server.
func RegisterProvider(inst *margo.Instance, cfg Config) (*Provider, error) {
	cfg.fillDefaults()
	p := &Provider{
		cfg:    cfg,
		dbs:    make(map[uint32]*database),
		byName: make(map[string]uint32),
	}
	handlers := map[string]margo.HandlerFunc{
		RPCOpen:        p.handleOpen,
		RPCPut:         p.handlePut,
		RPCGet:         p.handleGet,
		RPCPutPacked:   p.handlePutPacked,
		RPCListKeyvals: p.handleList,
		RPCLength:      p.handleLength,
		RPCErase:       p.handleErase,
		RPCListDBs:     p.handleListDBs,
	}
	for name, fn := range handlers {
		if err := inst.Register(name, fn); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// OpenLocal creates a database directly on the provider (server setup
// path, avoiding an RPC for the provider's own initialization).
func (p *Provider) OpenLocal(name, backend string) (uint32, error) {
	db, err := kv.Open(backend, name)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, dup := p.byName[name]; dup {
		db.Close()
		return id, fmt.Errorf("sdskv: database %q already open", name)
	}
	p.nextID++
	id := p.nextID
	d := &database{db: db}
	if !db.ConcurrentWrites() {
		d.wlock = abt.NewMutex()
	}
	p.dbs[id] = d
	p.byName[name] = id
	return id, nil
}

// LocalLength reports the pair count of a database without an RPC
// (server-side validation path).
func (p *Provider) LocalLength(id uint32) (int, error) {
	d, ok := p.database(id)
	if !ok {
		return 0, fmt.Errorf("sdskv: unknown database %d", id)
	}
	return d.db.Len(), nil
}

// NumDatabases reports how many databases the provider hosts.
func (p *Provider) NumDatabases() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.dbs)
}

func (p *Provider) database(id uint32) (*database, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.dbs[id]
	return d, ok
}

// Wire types.

type openArgs struct {
	Name    string
	Backend string
}

func (a *openArgs) Proc(pr *mercury.Proc) error {
	pr.String(&a.Name)
	pr.String(&a.Backend)
	return pr.Err()
}

type openResp struct{ DBID uint32 }

func (a *openResp) Proc(pr *mercury.Proc) error { return pr.Uint32(&a.DBID) }

type putArgs struct {
	DBID  uint32
	Key   []byte
	Value []byte
}

func (a *putArgs) Proc(pr *mercury.Proc) error {
	pr.Uint32(&a.DBID)
	pr.Bytes(&a.Key)
	pr.Bytes(&a.Value)
	return pr.Err()
}

type getArgs struct {
	DBID uint32
	Key  []byte
}

func (a *getArgs) Proc(pr *mercury.Proc) error {
	pr.Uint32(&a.DBID)
	pr.Bytes(&a.Key)
	return pr.Err()
}

type getResp struct {
	Found bool
	Value []byte
}

func (a *getResp) Proc(pr *mercury.Proc) error {
	pr.Bool(&a.Found)
	pr.Bytes(&a.Value)
	return pr.Err()
}

type putPackedArgs struct {
	DBID    uint32
	NumKeys uint32
	Bulk    mercury.Bulk
	Size    uint64
}

func (a *putPackedArgs) Proc(pr *mercury.Proc) error {
	pr.Uint32(&a.DBID)
	pr.Uint32(&a.NumKeys)
	a.Bulk.Proc(pr)
	pr.Uint64(&a.Size)
	return pr.Err()
}

type listArgs struct {
	DBID     uint32
	StartKey []byte
	MaxKeys  uint32
}

func (a *listArgs) Proc(pr *mercury.Proc) error {
	pr.Uint32(&a.DBID)
	pr.Bytes(&a.StartKey)
	pr.Uint32(&a.MaxKeys)
	return pr.Err()
}

type listResp struct {
	Keys   [][]byte
	Values [][]byte
}

func (a *listResp) Proc(pr *mercury.Proc) error {
	pr.BytesSlice(&a.Keys)
	pr.BytesSlice(&a.Values)
	return pr.Err()
}

type lengthResp struct{ N uint64 }

func (a *lengthResp) Proc(pr *mercury.Proc) error { return pr.Uint64(&a.N) }

// packedBatch is the packed put payload pulled over bulk.
type packedBatch struct {
	Keys   [][]byte
	Values [][]byte
}

func (b *packedBatch) Proc(pr *mercury.Proc) error {
	pr.BytesSlice(&b.Keys)
	pr.BytesSlice(&b.Values)
	return pr.Err()
}

// Handlers.

func (p *Provider) handleOpen(ctx *margo.Context) {
	var in openArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sdskv: %v", err)
		return
	}
	id, err := p.OpenLocal(in.Name, in.Backend)
	if err != nil {
		ctx.RespondError("sdskv: %v", err)
		return
	}
	ctx.Respond(&openResp{DBID: id})
}

// withWriteLock runs fn with the database's write serialization held
// (when the backend needs it), making backend contention visible as
// blocked ULTs.
func (d *database) withWriteLock(self *abt.ULT, fn func()) {
	if d.wlock != nil {
		d.wlock.Lock(self)
		defer d.wlock.Unlock()
	}
	fn()
}

func (p *Provider) handlePut(ctx *margo.Context) {
	var in putArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sdskv: %v", err)
		return
	}
	d, ok := p.database(in.DBID)
	if !ok {
		ctx.RespondError("sdskv: unknown database %d", in.DBID)
		return
	}
	var err error
	d.withWriteLock(ctx.Self, func() {
		ctx.Compute(p.cfg.PutCostPerKey)
		err = d.db.Put(in.Key, in.Value)
	})
	if err != nil {
		ctx.RespondError("sdskv: put: %v", err)
		return
	}
	ctx.Respond(mercury.Void{})
}

func (p *Provider) handleGet(ctx *margo.Context) {
	var in getArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sdskv: %v", err)
		return
	}
	d, ok := p.database(in.DBID)
	if !ok {
		ctx.RespondError("sdskv: unknown database %d", in.DBID)
		return
	}
	ctx.Compute(p.cfg.GetCostPerKey)
	v, found, err := d.db.Get(in.Key)
	if err != nil {
		ctx.RespondError("sdskv: get: %v", err)
		return
	}
	ctx.Respond(&getResp{Found: found, Value: v})
}

func (p *Provider) handlePutPacked(ctx *margo.Context) {
	var in putPackedArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sdskv: %v", err)
		return
	}
	d, ok := p.database(in.DBID)
	if !ok {
		ctx.RespondError("sdskv: unknown database %d", in.DBID)
		return
	}
	// Pull the packed key-value content from client memory (the bulk
	// transfer of Figure 2's execution phase).
	buf := make([]byte, in.Size)
	if err := ctx.BulkPull(in.Bulk, 0, buf); err != nil {
		ctx.RespondError("sdskv: bulk pull: %v", err)
		return
	}
	var batch packedBatch
	if err := mercury.Decode(buf, &batch); err != nil {
		ctx.RespondError("sdskv: unpack: %v", err)
		return
	}
	if len(batch.Keys) != len(batch.Values) || uint32(len(batch.Keys)) != in.NumKeys {
		ctx.RespondError("sdskv: packed batch shape mismatch")
		return
	}
	var err error
	d.withWriteLock(ctx.Self, func() {
		ctx.Compute(time.Duration(len(batch.Keys)) * p.cfg.PutCostPerKey)
		for i := range batch.Keys {
			if err = d.db.Put(batch.Keys[i], batch.Values[i]); err != nil {
				return
			}
		}
	})
	if err != nil {
		ctx.RespondError("sdskv: put packed: %v", err)
		return
	}
	ctx.Respond(mercury.Void{})
}

func (p *Provider) handleList(ctx *margo.Context) {
	var in listArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sdskv: %v", err)
		return
	}
	d, ok := p.database(in.DBID)
	if !ok {
		ctx.RespondError("sdskv: unknown database %d", in.DBID)
		return
	}
	pairs, err := d.db.List(in.StartKey, int(in.MaxKeys))
	if err != nil {
		ctx.RespondError("sdskv: list: %v", err)
		return
	}
	ctx.Compute(time.Duration(len(pairs)) * p.cfg.ListCostPerItem)
	out := listResp{
		Keys:   make([][]byte, len(pairs)),
		Values: make([][]byte, len(pairs)),
	}
	for i, pr := range pairs {
		out.Keys[i] = pr.Key
		out.Values[i] = pr.Value
	}
	ctx.Respond(&out)
}

func (p *Provider) handleLength(ctx *margo.Context) {
	var in openResp // just the db id
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sdskv: %v", err)
		return
	}
	d, ok := p.database(in.DBID)
	if !ok {
		ctx.RespondError("sdskv: unknown database %d", in.DBID)
		return
	}
	ctx.Respond(&lengthResp{N: uint64(d.db.Len())})
}

type listDBsResp struct {
	IDs   []uint64
	Names []string
}

func (a *listDBsResp) Proc(pr *mercury.Proc) error {
	pr.Uint64Slice(&a.IDs)
	pr.StringSlice(&a.Names)
	return pr.Err()
}

// handleListDBs enumerates the provider's databases — the discovery
// path HEPnOS clients use after resolving a server through SSG.
func (p *Provider) handleListDBs(ctx *margo.Context) {
	p.mu.Lock()
	out := listDBsResp{}
	for name, id := range p.byName {
		out.IDs = append(out.IDs, uint64(id))
		out.Names = append(out.Names, name)
	}
	p.mu.Unlock()
	// Sort by id for a stable view.
	for i := 1; i < len(out.IDs); i++ {
		for j := i; j > 0 && out.IDs[j-1] > out.IDs[j]; j-- {
			out.IDs[j-1], out.IDs[j] = out.IDs[j], out.IDs[j-1]
			out.Names[j-1], out.Names[j] = out.Names[j], out.Names[j-1]
		}
	}
	ctx.Respond(&out)
}

func (p *Provider) handleErase(ctx *margo.Context) {
	var in getArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sdskv: %v", err)
		return
	}
	d, ok := p.database(in.DBID)
	if !ok {
		ctx.RespondError("sdskv: unknown database %d", in.DBID)
		return
	}
	var err error
	d.withWriteLock(ctx.Self, func() {
		_, err = d.db.Delete(in.Key)
	})
	if err != nil {
		ctx.RespondError("sdskv: erase: %v", err)
		return
	}
	ctx.Respond(mercury.Void{})
}
