package sdskv

import (
	"fmt"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// Client is the origin-side SDSKV API.
type Client struct {
	inst *margo.Instance
}

// NewClient wires SDSKV RPCs into a Margo instance and returns a client.
func NewClient(inst *margo.Instance) (*Client, error) {
	if err := inst.RegisterClient(RPCNames()...); err != nil {
		return nil, err
	}
	return &Client{inst: inst}, nil
}

// Open creates (or errors on duplicate) a named database at the target.
func (c *Client) Open(self *abt.ULT, target, name, backend string) (uint32, error) {
	var out openResp
	err := c.inst.Forward(self, target, RPCOpen, &openArgs{Name: name, Backend: backend}, &out)
	if err != nil {
		return 0, err
	}
	return out.DBID, nil
}

// Put stores one key-value pair.
func (c *Client) Put(self *abt.ULT, target string, db uint32, key, value []byte) error {
	return c.inst.Forward(self, target, RPCPut, &putArgs{DBID: db, Key: key, Value: value}, nil)
}

// Get retrieves the value stored under key.
func (c *Client) Get(self *abt.ULT, target string, db uint32, key []byte) ([]byte, bool, error) {
	var out getResp
	if err := c.inst.Forward(self, target, RPCGet, &getArgs{DBID: db, Key: key}, &out); err != nil {
		return nil, false, err
	}
	return out.Value, out.Found, nil
}

// PutMulti stores n pairs, one logical RPC each, through the margo
// coalescer: pairs issued together share a vectored frame when the
// instance batches (margo.Options.Batch), with per-pair status in the
// reply. Returns one error per pair. Unlike PutPacked the pairs stay
// independent RPCs — a shed or expired member fails alone.
func (c *Client) PutMulti(self *abt.ULT, target string, db uint32, keys, values [][]byte) []error {
	if len(keys) != len(values) {
		errs := make([]error, len(keys))
		for i := range errs {
			errs[i] = fmt.Errorf("sdskv: PutMulti keys/values length mismatch (%d != %d)", len(keys), len(values))
		}
		return errs
	}
	ins := make([]mercury.Procable, len(keys))
	for i := range keys {
		ins[i] = &putArgs{DBID: db, Key: keys[i], Value: values[i]}
	}
	return c.inst.ForwardMany(self, target, RPCPut, ins, nil)
}

// GetMulti retrieves n keys through the coalescer, one logical RPC
// each. values[i]/found[i] are valid iff errs[i] is nil.
func (c *Client) GetMulti(self *abt.ULT, target string, db uint32, keys [][]byte) (values [][]byte, found []bool, errs []error) {
	ins := make([]mercury.Procable, len(keys))
	outs := make([]mercury.Procable, len(keys))
	resps := make([]getResp, len(keys))
	for i := range keys {
		ins[i] = &getArgs{DBID: db, Key: keys[i]}
		outs[i] = &resps[i]
	}
	errs = c.inst.ForwardMany(self, target, RPCGet, ins, outs)
	values = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	for i := range resps {
		if errs[i] == nil {
			values[i] = resps[i].Value
			found[i] = resps[i].Found
		}
	}
	return values, found, errs
}

// PutPacked stores a batch of pairs with a single RPC: the pairs are
// packed into one buffer exposed for the target's bulk pull — the
// HEPnOS data-loader hot path (paper §V-C1).
func (c *Client) PutPacked(self *abt.ULT, target string, db uint32, keys, values [][]byte) error {
	batch := packedBatch{Keys: keys, Values: values}
	buf, err := mercury.Encode(&batch)
	if err != nil {
		return err
	}
	bulk := c.inst.BulkCreate(buf)
	defer c.inst.BulkFree(bulk)
	args := putPackedArgs{
		DBID:    db,
		NumKeys: uint32(len(keys)),
		Bulk:    bulk,
		Size:    uint64(len(buf)),
	}
	return c.inst.Forward(self, target, RPCPutPacked, &args, nil)
}

// ListKeyvals returns up to max pairs with keys >= start.
func (c *Client) ListKeyvals(self *abt.ULT, target string, db uint32, start []byte, max int) ([][]byte, [][]byte, error) {
	var out listResp
	args := listArgs{DBID: db, StartKey: start, MaxKeys: uint32(max)}
	if err := c.inst.Forward(self, target, RPCListKeyvals, &args, &out); err != nil {
		return nil, nil, err
	}
	return out.Keys, out.Values, nil
}

// Length reports the number of pairs in the database.
func (c *Client) Length(self *abt.ULT, target string, db uint32) (uint64, error) {
	var out lengthResp
	if err := c.inst.Forward(self, target, RPCLength, &openResp{DBID: db}, &out); err != nil {
		return 0, err
	}
	return out.N, nil
}

// ListDatabases enumerates the databases a provider hosts, in id order.
func (c *Client) ListDatabases(self *abt.ULT, target string) (ids []uint32, names []string, err error) {
	var out listDBsResp
	if err := c.inst.Forward(self, target, RPCListDBs, &mercury.Void{}, &out); err != nil {
		return nil, nil, err
	}
	ids = make([]uint32, len(out.IDs))
	for i, id := range out.IDs {
		ids[i] = uint32(id)
	}
	return ids, out.Names, nil
}

// Erase removes a key.
func (c *Client) Erase(self *abt.ULT, target string, db uint32, key []byte) error {
	return c.inst.Forward(self, target, RPCErase, &getArgs{DBID: db, Key: key}, nil)
}
