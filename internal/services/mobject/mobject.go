// Package mobject reimplements Mobject, the composed Mochi object store
// of the paper's §V-A: a distributed service exposing a RADOS-like
// write_op/read_op API. Each Mobject provider node hosts three
// colocated providers — the client-facing Mobject sequencer, a BAKE
// provider for object data, and an SDSKV provider for metadata (paper
// Figure 4). The sequencer translates every object operation into a
// chain of BAKE and SDSKV RPCs issued to its own node, so control always
// returns to the sequencer between steps and the distributed callpath
// profile shows mobject_*_op => {bake,sdskv}_*_rpc chains.
//
// One mobject_write_op decomposes into exactly 12 discrete microservice
// calls (3 BAKE data-path calls, 6 SDSKV metadata puts/gets, a version
// read-modify-write and an index scan), matching the request structure
// SYMBIOSYS discovers in the paper's Figure 5 trace; one mobject_read_op
// decomposes into 4 calls dominated by the omap extent listing, matching
// the dominant callpath of Figure 6.
package mobject

import (
	"fmt"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/services/bake"
	"symbiosys/internal/services/sdskv"
)

// RPC names exported by the Mobject sequencer provider.
const (
	RPCWriteOp = "mobject_write_op"
	RPCReadOp  = "mobject_read_op"
)

// RPCNames lists the Mobject RPCs (for client registration).
func RPCNames() []string { return []string{RPCWriteOp, RPCReadOp} }

// Databases opened by the sequencer on its colocated SDSKV provider.
const (
	oidDB  = "mobject-oid"  // object name -> numeric oid
	omapDB = "mobject-omap" // per-object metadata: extents, size, version
)

// ProviderNode is one Mobject provider process: sequencer + BAKE +
// SDSKV, all registered on a single Margo server instance.
type ProviderNode struct {
	inst  *margo.Instance
	bakeP *bake.Provider
	kvP   *sdskv.Provider

	// Clients the sequencer uses for its nested calls (to itself).
	bakeC *bake.Client
	kvC   *sdskv.Client

	oidID  uint32
	omapID uint32
}

// RegisterProviderNode installs the three providers on inst and opens
// the sequencer's metadata databases on the given kv backend.
func RegisterProviderNode(inst *margo.Instance, backend string) (*ProviderNode, error) {
	n := &ProviderNode{inst: inst}
	var err error
	if n.bakeP, err = bake.RegisterProvider(inst, bake.Config{}); err != nil {
		return nil, err
	}
	// The omap listing cost models RADOS-style iteration over object
	// maps: each returned entry pays a scan+copy cost, which is what
	// makes mobject_read_op => sdskv_list_keyvals_rpc the dominant
	// callpath of the paper's Figure 6.
	if n.kvP, err = sdskv.RegisterProvider(inst, sdskv.Config{
		ListCostPerItem: 4 * time.Microsecond,
	}); err != nil {
		return nil, err
	}
	if n.bakeC, err = bake.NewClient(inst); err != nil {
		return nil, err
	}
	if n.kvC, err = sdskv.NewClient(inst); err != nil {
		return nil, err
	}
	if n.oidID, err = n.kvP.OpenLocal(oidDB, backend); err != nil {
		return nil, err
	}
	if n.omapID, err = n.kvP.OpenLocal(omapDB, backend); err != nil {
		return nil, err
	}
	if err := inst.Register(RPCWriteOp, n.handleWriteOp); err != nil {
		return nil, err
	}
	if err := inst.Register(RPCReadOp, n.handleReadOp); err != nil {
		return nil, err
	}
	return n, nil
}

// Wire types.

type writeOpArgs struct {
	Object string
	Bulk   mercury.Bulk // client memory window holding the object data
	Size   uint64
}

func (a *writeOpArgs) Proc(pr *mercury.Proc) error {
	pr.String(&a.Object)
	a.Bulk.Proc(pr)
	pr.Uint64(&a.Size)
	return pr.Err()
}

type readOpArgs struct {
	Object string
	Bulk   mercury.Bulk // client memory window to push the data into
	Size   uint64
}

func (a *readOpArgs) Proc(pr *mercury.Proc) error {
	pr.String(&a.Object)
	a.Bulk.Proc(pr)
	pr.Uint64(&a.Size)
	return pr.Err()
}

type readOpResp struct{ Size uint64 }

func (a *readOpResp) Proc(pr *mercury.Proc) error { return pr.Uint64(&a.Size) }

// extentMeta is the omap value describing where an object's data lives.
type extentMeta struct {
	RID  uint64
	Size uint64
}

func (e *extentMeta) Proc(pr *mercury.Proc) error {
	pr.Uint64(&e.RID)
	pr.Uint64(&e.Size)
	return pr.Err()
}

// omap key helpers.
func extentKey(obj string) []byte  { return []byte("omap/" + obj + "/extent/0") }
func sizeKey(obj string) []byte    { return []byte("omap/" + obj + "/size") }
func mtimeKey(obj string) []byte   { return []byte("omap/" + obj + "/mtime") }
func versionKey(obj string) []byte { return []byte("omap/" + obj + "/version") }
func omapPrefix(obj string) []byte { return []byte("omap/" + obj + "/") }

// handleWriteOp services one RADOS-like write: the 12-step sequence the
// paper's trace study discovers. Step numbering is in the comments.
func (n *ProviderNode) handleWriteOp(ctx *margo.Context) {
	var in writeOpArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("mobject: %v", err)
		return
	}
	self := n.inst.Addr()

	// 1. sdskv_get_rpc: resolve the object's oid in the name index.
	oidRaw, found, err := n.kvC.Get(ctx.Self, self, n.oidID, []byte(in.Object))
	if err != nil {
		ctx.RespondError("mobject: oid lookup: %v", err)
		return
	}
	oid := fmt.Sprintf("%x", oidHash(in.Object))
	_ = oidRaw
	_ = found

	// 2. sdskv_put_rpc: create or refresh the name-index entry.
	if err := n.kvC.Put(ctx.Self, self, n.oidID, []byte(in.Object), []byte(oid)); err != nil {
		ctx.RespondError("mobject: oid put: %v", err)
		return
	}

	// 3. bake_create_rpc: allocate a region for the object data.
	rid, err := n.bakeC.Create(ctx.Self, self, in.Size)
	if err != nil {
		ctx.RespondError("mobject: bake create: %v", err)
		return
	}

	// 4. bake_write_rpc: BAKE pulls the data straight from client
	//    memory (RDMA between BAKE and the end-client, paper §V-A1).
	if err := n.writeFromClient(ctx, rid, in); err != nil {
		ctx.RespondError("mobject: bake write: %v", err)
		return
	}

	// 5. bake_persist_rpc: flush the region.
	if err := n.bakeC.Persist(ctx.Self, self, rid); err != nil {
		ctx.RespondError("mobject: bake persist: %v", err)
		return
	}

	// 6. bake_get_size_rpc: confirm the stored extent length.
	storedSize, err := n.bakeC.GetSize(ctx.Self, self, rid)
	if err != nil {
		ctx.RespondError("mobject: bake get_size: %v", err)
		return
	}

	// 7. sdskv_put_rpc: record the extent mapping in the omap.
	ext := extentMeta{RID: rid, Size: storedSize}
	extBuf, _ := mercury.Encode(&ext)
	if err := n.kvC.Put(ctx.Self, self, n.omapID, extentKey(in.Object), extBuf); err != nil {
		ctx.RespondError("mobject: omap extent put: %v", err)
		return
	}

	// 8. sdskv_put_rpc: record the object size.
	if err := n.kvC.Put(ctx.Self, self, n.omapID, sizeKey(in.Object),
		[]byte(fmt.Sprint(storedSize))); err != nil {
		ctx.RespondError("mobject: omap size put: %v", err)
		return
	}

	// 9. sdskv_put_rpc: record the modification time.
	if err := n.kvC.Put(ctx.Self, self, n.omapID, mtimeKey(in.Object),
		[]byte("mtime")); err != nil {
		ctx.RespondError("mobject: omap mtime put: %v", err)
		return
	}

	// 10. sdskv_get_rpc: read the object version.
	verRaw, _, err := n.kvC.Get(ctx.Self, self, n.omapID, versionKey(in.Object))
	if err != nil {
		ctx.RespondError("mobject: version get: %v", err)
		return
	}
	version := len(verRaw) + 1 // monotonically growing marker

	// 11. sdskv_put_rpc: bump the version.
	if err := n.kvC.Put(ctx.Self, self, n.omapID, versionKey(in.Object),
		make([]byte, version)); err != nil {
		ctx.RespondError("mobject: version put: %v", err)
		return
	}

	// 12. sdskv_list_keyvals_rpc: scan the object's omap entries to
	//     refresh the sequencer's view (the index-verification step).
	if _, _, err := n.kvC.ListKeyvals(ctx.Self, self, n.omapID, omapPrefix(in.Object), 16); err != nil {
		ctx.RespondError("mobject: omap scan: %v", err)
		return
	}

	ctx.Respond(mercury.Void{})
}

// writeFromClient performs the real step-4 transfer: BAKE pulls in.Size
// bytes from the client's bulk window into the region.
func (n *ProviderNode) writeFromClient(ctx *margo.Context, rid uint64, in writeOpArgs) error {
	// Forward the client's bulk descriptor to the colocated BAKE
	// provider; BAKE's handler pulls from client memory one-sidedly.
	args := struct {
		RID       uint64
		RegionOff uint64
		Bulk      mercury.Bulk
		BulkOff   uint64
		Size      uint64
	}{RID: rid, Bulk: in.Bulk, Size: in.Size}
	wire := bakeWriteArgs(args)
	return ctx.Forward(n.inst.Addr(), bake.RPCWrite, &wire, nil)
}

// bakeWriteArgs mirrors bake's write wire format (the descriptor shape
// is part of BAKE's public protocol).
type bakeWriteArgs struct {
	RID       uint64
	RegionOff uint64
	Bulk      mercury.Bulk
	BulkOff   uint64
	Size      uint64
}

func (a *bakeWriteArgs) Proc(pr *mercury.Proc) error {
	pr.Uint64(&a.RID)
	pr.Uint64(&a.RegionOff)
	a.Bulk.Proc(pr)
	pr.Uint64(&a.BulkOff)
	pr.Uint64(&a.Size)
	return pr.Err()
}

// handleReadOp services one RADOS-like read: 4 discrete calls with the
// omap listing dominant (paper Figure 6).
func (n *ProviderNode) handleReadOp(ctx *margo.Context) {
	var in readOpArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("mobject: %v", err)
		return
	}
	self := n.inst.Addr()

	// 1. sdskv_get_rpc: resolve the oid.
	if _, found, err := n.kvC.Get(ctx.Self, self, n.oidID, []byte(in.Object)); err != nil {
		ctx.RespondError("mobject: oid lookup: %v", err)
		return
	} else if !found {
		ctx.RespondError("mobject: no such object %q", in.Object)
		return
	}

	// 2. sdskv_list_keyvals_rpc: list the object's omap entries to find
	//    its extents — the dominant step of mobject_read_op.
	keys, vals, err := n.kvC.ListKeyvals(ctx.Self, self, n.omapID, omapPrefix(in.Object), 64)
	if err != nil {
		ctx.RespondError("mobject: omap list: %v", err)
		return
	}
	var ext extentMeta
	foundExt := false
	for i, k := range keys {
		if string(k) == string(extentKey(in.Object)) {
			if err := mercury.Decode(vals[i], &ext); err != nil {
				ctx.RespondError("mobject: extent decode: %v", err)
				return
			}
			foundExt = true
			break
		}
	}
	if !foundExt {
		ctx.RespondError("mobject: object %q has no extents", in.Object)
		return
	}

	// 3. bake_read_rpc: BAKE pushes the data into client memory.
	size := ext.Size
	if in.Size < size {
		size = in.Size
	}
	rargs := bakeWriteArgs{RID: ext.RID, Bulk: in.Bulk, Size: size}
	if err := ctx.Forward(self, bake.RPCRead, &rargs, nil); err != nil {
		ctx.RespondError("mobject: bake read: %v", err)
		return
	}

	// 4. sdskv_get_rpc: fetch the object size for the reply.
	if _, _, err := n.kvC.Get(ctx.Self, self, n.omapID, sizeKey(in.Object)); err != nil {
		ctx.RespondError("mobject: size get: %v", err)
		return
	}

	ctx.Respond(&readOpResp{Size: size})
}

func oidHash(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Client is the origin-side Mobject API (the ior benchmark links this).
type Client struct {
	inst *margo.Instance
}

// NewClient wires the Mobject RPCs into a Margo instance.
func NewClient(inst *margo.Instance) (*Client, error) {
	if err := inst.RegisterClient(RPCNames()...); err != nil {
		return nil, err
	}
	return &Client{inst: inst}, nil
}

// WriteOp stores an object: data is exposed for BAKE's one-sided pull.
func (c *Client) WriteOp(self *abt.ULT, target, object string, data []byte) error {
	bulk := c.inst.BulkCreate(data)
	defer c.inst.BulkFree(bulk)
	args := writeOpArgs{Object: object, Bulk: bulk, Size: uint64(len(data))}
	return c.inst.Forward(self, target, RPCWriteOp, &args, nil)
}

// ReadOp reads an object into buf, returning the bytes filled.
func (c *Client) ReadOp(self *abt.ULT, target, object string, buf []byte) (uint64, error) {
	bulk := c.inst.BulkCreate(buf)
	defer c.inst.BulkFree(bulk)
	args := readOpArgs{Object: object, Bulk: bulk, Size: uint64(len(buf))}
	var out readOpResp
	if err := c.inst.Forward(self, target, RPCReadOp, &args, &out); err != nil {
		return 0, err
	}
	return out.Size, nil
}
