package mobject

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
)

type env struct {
	srv, cli *margo.Instance
	node     *ProviderNode
	client   *Client
}

func newEnv(t *testing.T) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "mobject", Fabric: f,
		HandlerStreams: 8, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "ior", Fabric: f, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	node, err := RegisterProviderNode(srv, "map")
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(cli)
	if err != nil {
		t.Fatal(err)
	}
	return &env{srv: srv, cli: cli, node: node, client: client}
}

func (e *env) run(t *testing.T, fn func(self *abt.ULT) error) error {
	t.Helper()
	var err error
	u := e.cli.Run("t", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		t.Fatal(jerr)
	}
	return err
}

func TestWriteThenReadObject(t *testing.T) {
	e := newEnv(t)
	data := bytes.Repeat([]byte("0123456789abcdef"), 64) // 1 KiB
	err := e.run(t, func(self *abt.ULT) error {
		if err := e.client.WriteOp(self, e.srv.Addr(), "obj-A", data); err != nil {
			return err
		}
		buf := make([]byte, len(data))
		n, err := e.client.ReadOp(self, e.srv.Addr(), "obj-A", buf)
		if err != nil {
			return err
		}
		if n != uint64(len(data)) || !bytes.Equal(buf, data) {
			t.Errorf("read = %d bytes, equal=%v", n, bytes.Equal(buf, data))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadMissingObjectFails(t *testing.T) {
	e := newEnv(t)
	err := e.run(t, func(self *abt.ULT) error {
		_, err := e.client.ReadOp(self, e.srv.Addr(), "ghost", make([]byte, 8))
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "no such object") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteOpProduces12DiscreteSubCalls(t *testing.T) {
	// The paper's Figure 5 discovers 12 discrete SDSKV/BAKE calls per
	// mobject_write_op. Count nested origin-profile entries under the
	// mobject_write_op breadcrumb on the provider node.
	e := newEnv(t)
	if err := e.run(t, func(self *abt.ULT) error {
		return e.client.WriteOp(self, e.srv.Addr(), "obj-X", []byte("payload"))
	}); err != nil {
		t.Fatal(err)
	}
	e.srv.WaitIdle(2 * time.Second)
	time.Sleep(20 * time.Millisecond)

	parent := core.Breadcrumb(0).Push(RPCWriteOp)
	var calls uint64
	perRPC := map[string]uint64{}
	names := e.srv.Profiler().Names()
	for k, s := range e.srv.Profiler().OriginStats() {
		if k.BC.Parent() == parent {
			calls += s.Count
			if n, ok := names.Name(k.BC.Leaf()); ok {
				perRPC[n] += s.Count
			}
		}
	}
	if calls != 12 {
		t.Fatalf("write_op produced %d sub-calls (%v), want 12", calls, perRPC)
	}
	// Structure: 3 BAKE calls + put/get/list mix on SDSKV.
	if perRPC["bake_create_rpc"] != 1 || perRPC["bake_write_rpc"] != 1 ||
		perRPC["bake_persist_rpc"] != 1 || perRPC["bake_get_size_rpc"] != 1 {
		t.Fatalf("bake call mix wrong: %v", perRPC)
	}
	if perRPC["sdskv_put_rpc"] != 5 || perRPC["sdskv_get_rpc"] != 2 ||
		perRPC["sdskv_list_keyvals_rpc"] != 1 {
		t.Fatalf("sdskv call mix wrong: %v", perRPC)
	}
}

func TestReadOpProduces4SubCalls(t *testing.T) {
	e := newEnv(t)
	if err := e.run(t, func(self *abt.ULT) error {
		if err := e.client.WriteOp(self, e.srv.Addr(), "obj-R", []byte("data")); err != nil {
			return err
		}
		_, err := e.client.ReadOp(self, e.srv.Addr(), "obj-R", make([]byte, 4))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	e.srv.WaitIdle(2 * time.Second)
	time.Sleep(20 * time.Millisecond)

	parent := core.Breadcrumb(0).Push(RPCReadOp)
	var calls uint64
	for k, s := range e.srv.Profiler().OriginStats() {
		if k.BC.Parent() == parent {
			calls += s.Count
		}
	}
	if calls != 4 {
		t.Fatalf("read_op produced %d sub-calls, want 4", calls)
	}
}

func TestTraceContainsFullRequestStructure(t *testing.T) {
	// A single write_op trace must contain target events for all 12
	// sub-calls sharing the top-level request ID (the Figure 5 Gantt).
	e := newEnv(t)
	if err := e.run(t, func(self *abt.ULT) error {
		return e.client.WriteOp(self, e.srv.Addr(), "obj-T", []byte("x"))
	}); err != nil {
		t.Fatal(err)
	}
	e.srv.WaitIdle(2 * time.Second)

	var reqID uint64
	for _, ev := range e.cli.Profiler().TraceEvents() {
		if ev.Kind == core.EvOriginStart && ev.RPCName == RPCWriteOp {
			reqID = ev.RequestID
		}
	}
	if reqID == 0 {
		t.Fatal("no origin start event for write_op")
	}
	nested := 0
	for _, ev := range e.srv.Profiler().TraceEvents() {
		if ev.RequestID == reqID && ev.Kind == core.EvTargetStart && ev.RPCName != RPCWriteOp {
			nested++
		}
	}
	if nested != 12 {
		t.Fatalf("trace shows %d nested target starts, want 12", nested)
	}
}

func TestConcurrentClients(t *testing.T) {
	e := newEnv(t)
	const n = 8
	ults := make([]*abt.ULT, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		idx := i
		obj := string(rune('a' + i))
		ults[i] = e.cli.Run("w", func(self *abt.ULT) {
			errs[idx] = e.client.WriteOp(self, e.srv.Addr(), obj, []byte(obj))
		})
	}
	for i, u := range ults {
		u.Join(nil)
		if errs[i] != nil {
			t.Fatalf("writer %d: %v", i, errs[i])
		}
	}
	// All objects readable.
	err := e.run(t, func(self *abt.ULT) error {
		for i := 0; i < n; i++ {
			obj := string(rune('a' + i))
			buf := make([]byte, 1)
			if _, err := e.client.ReadOp(self, e.srv.Addr(), obj, buf); err != nil {
				return err
			}
			if buf[0] != obj[0] {
				t.Errorf("object %s read %q", obj, buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
