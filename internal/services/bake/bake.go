// Package bake reimplements BAKE, the Mochi microservice for storing and
// retrieving bulk object blobs (paper §III-A). Object data moves through
// Mercury's bulk interface — the target pulls from client memory on
// writes and pushes into it on reads — while only small descriptors ride
// in the RPC metadata, the access pattern the paper attributes to BAKE.
//
// Regions model NVM-backed extents: they are created with a fixed size,
// written at offsets, persisted (with a modeled flush cost), and read
// back. The provider registers its handlers on a Margo server instance;
// Client is the origin-side API.
package bake

import (
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// RPC names exported by the BAKE provider.
const (
	RPCCreate  = "bake_create_rpc"
	RPCWrite   = "bake_write_rpc"
	RPCPersist = "bake_persist_rpc"
	RPCRead    = "bake_read_rpc"
	RPCGetSize = "bake_get_size_rpc"
	RPCRemove  = "bake_remove_rpc"
)

// RPCNames lists every BAKE RPC (for client registration).
func RPCNames() []string {
	return []string{RPCCreate, RPCWrite, RPCPersist, RPCRead, RPCGetSize, RPCRemove}
}

// Config models the provider's storage costs.
type Config struct {
	// PersistCostPerKB is the modeled flush-to-NVM time charged by
	// bake_persist per KiB of region data. Default 2µs.
	PersistCostPerKB time.Duration
	// WriteCostPerKB is the modeled media write time per KiB. Default 1µs.
	WriteCostPerKB time.Duration
}

func (c *Config) fillDefaults() {
	if c.PersistCostPerKB <= 0 {
		c.PersistCostPerKB = 2 * time.Microsecond
	}
	if c.WriteCostPerKB <= 0 {
		c.WriteCostPerKB = time.Microsecond
	}
}

// Provider is a BAKE target: a set of in-memory regions.
type Provider struct {
	cfg Config

	mu      sync.Mutex
	regions map[uint64]*region
	nextID  uint64
}

type region struct {
	data      []byte
	persisted bool
}

// RegisterProvider installs a BAKE provider on a Margo server.
func RegisterProvider(inst *margo.Instance, cfg Config) (*Provider, error) {
	cfg.fillDefaults()
	p := &Provider{cfg: cfg, regions: make(map[uint64]*region)}
	handlers := map[string]margo.HandlerFunc{
		RPCCreate:  p.handleCreate,
		RPCWrite:   p.handleWrite,
		RPCPersist: p.handlePersist,
		RPCRead:    p.handleRead,
		RPCGetSize: p.handleGetSize,
		RPCRemove:  p.handleRemove,
	}
	for name, fn := range handlers {
		if err := inst.Register(name, fn); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// NumRegions reports how many regions the provider holds.
func (p *Provider) NumRegions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.regions)
}

func (p *Provider) region(id uint64) (*region, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.regions[id]
	return r, ok
}

// createArgs / sizeResp / writeArgs / readArgs are the wire types.

type createArgs struct{ Size uint64 }

func (a *createArgs) Proc(pr *mercury.Proc) error { return pr.Uint64(&a.Size) }

type regionResp struct{ RID uint64 }

func (a *regionResp) Proc(pr *mercury.Proc) error { return pr.Uint64(&a.RID) }

type writeArgs struct {
	RID       uint64
	RegionOff uint64
	Bulk      mercury.Bulk
	BulkOff   uint64
	Size      uint64
}

func (a *writeArgs) Proc(pr *mercury.Proc) error {
	pr.Uint64(&a.RID)
	pr.Uint64(&a.RegionOff)
	a.Bulk.Proc(pr)
	pr.Uint64(&a.BulkOff)
	pr.Uint64(&a.Size)
	return pr.Err()
}

type sizeResp struct{ Size uint64 }

func (a *sizeResp) Proc(pr *mercury.Proc) error { return pr.Uint64(&a.Size) }

func (p *Provider) handleCreate(ctx *margo.Context) {
	var in createArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("bake: %v", err)
		return
	}
	p.mu.Lock()
	p.nextID++
	id := p.nextID
	p.regions[id] = &region{data: make([]byte, in.Size)}
	p.mu.Unlock()
	ctx.Respond(&regionResp{RID: id})
}

func (p *Provider) handleWrite(ctx *margo.Context) {
	var in writeArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("bake: %v", err)
		return
	}
	r, ok := p.region(in.RID)
	if !ok {
		ctx.RespondError("bake: unknown region %d", in.RID)
		return
	}
	if in.RegionOff+in.Size > uint64(len(r.data)) {
		ctx.RespondError("bake: write beyond region end")
		return
	}
	// Pull object data straight from client memory (one-sided).
	if err := ctx.BulkPull(in.Bulk, int(in.BulkOff), r.data[in.RegionOff:in.RegionOff+in.Size]); err != nil {
		ctx.RespondError("bake: bulk pull: %v", err)
		return
	}
	ctx.Compute(time.Duration(in.Size) * p.cfg.WriteCostPerKB / 1024)
	ctx.Respond(mercury.Void{})
}

func (p *Provider) handlePersist(ctx *margo.Context) {
	var in regionResp
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("bake: %v", err)
		return
	}
	r, ok := p.region(in.RID)
	if !ok {
		ctx.RespondError("bake: unknown region %d", in.RID)
		return
	}
	ctx.Compute(time.Duration(len(r.data)) * p.cfg.PersistCostPerKB / 1024)
	p.mu.Lock()
	r.persisted = true
	p.mu.Unlock()
	ctx.Respond(mercury.Void{})
}

func (p *Provider) handleRead(ctx *margo.Context) {
	var in writeArgs // same shape: region window + client bulk window
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("bake: %v", err)
		return
	}
	r, ok := p.region(in.RID)
	if !ok {
		ctx.RespondError("bake: unknown region %d", in.RID)
		return
	}
	if in.RegionOff+in.Size > uint64(len(r.data)) {
		ctx.RespondError("bake: read beyond region end")
		return
	}
	if err := ctx.BulkPush(in.Bulk, int(in.BulkOff), r.data[in.RegionOff:in.RegionOff+in.Size]); err != nil {
		ctx.RespondError("bake: bulk push: %v", err)
		return
	}
	ctx.Respond(mercury.Void{})
}

func (p *Provider) handleGetSize(ctx *margo.Context) {
	var in regionResp
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("bake: %v", err)
		return
	}
	r, ok := p.region(in.RID)
	if !ok {
		ctx.RespondError("bake: unknown region %d", in.RID)
		return
	}
	ctx.Respond(&sizeResp{Size: uint64(len(r.data))})
}

func (p *Provider) handleRemove(ctx *margo.Context) {
	var in regionResp
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("bake: %v", err)
		return
	}
	p.mu.Lock()
	_, ok := p.regions[in.RID]
	delete(p.regions, in.RID)
	p.mu.Unlock()
	if !ok {
		ctx.RespondError("bake: unknown region %d", in.RID)
		return
	}
	ctx.Respond(mercury.Void{})
}

// Persisted reports whether a region has been persisted (tests).
func (p *Provider) Persisted(rid uint64) bool {
	r, ok := p.region(rid)
	return ok && r.persisted
}

// Client is the origin-side BAKE API.
type Client struct {
	inst *margo.Instance
}

// NewClient wires BAKE RPCs into a Margo instance and returns a client.
func NewClient(inst *margo.Instance) (*Client, error) {
	if err := inst.RegisterClient(RPCNames()...); err != nil {
		return nil, err
	}
	return &Client{inst: inst}, nil
}

// Create allocates a region of the given size at the target.
func (c *Client) Create(self *abt.ULT, target string, size uint64) (uint64, error) {
	var out regionResp
	if err := c.inst.Forward(self, target, RPCCreate, &createArgs{Size: size}, &out); err != nil {
		return 0, err
	}
	return out.RID, nil
}

// Write transfers data into the region at off via target-side bulk pull.
func (c *Client) Write(self *abt.ULT, target string, rid, off uint64, data []byte) error {
	bulk := c.inst.BulkCreate(data)
	defer c.inst.BulkFree(bulk)
	args := writeArgs{RID: rid, RegionOff: off, Bulk: bulk, Size: uint64(len(data))}
	return c.inst.Forward(self, target, RPCWrite, &args, nil)
}

// Persist flushes the region to stable storage.
func (c *Client) Persist(self *abt.ULT, target string, rid uint64) error {
	return c.inst.Forward(self, target, RPCPersist, &regionResp{RID: rid}, nil)
}

// Read fills buf from the region at off via target-side bulk push.
func (c *Client) Read(self *abt.ULT, target string, rid, off uint64, buf []byte) error {
	bulk := c.inst.BulkCreate(buf)
	defer c.inst.BulkFree(bulk)
	args := writeArgs{RID: rid, RegionOff: off, Bulk: bulk, Size: uint64(len(buf))}
	return c.inst.Forward(self, target, RPCRead, &args, nil)
}

// GetSize returns the region's allocated size.
func (c *Client) GetSize(self *abt.ULT, target string, rid uint64) (uint64, error) {
	var out sizeResp
	if err := c.inst.Forward(self, target, RPCGetSize, &regionResp{RID: rid}, &out); err != nil {
		return 0, err
	}
	return out.Size, nil
}

// Remove deletes the region.
func (c *Client) Remove(self *abt.ULT, target string, rid uint64) error {
	if err := c.inst.Forward(self, target, RPCRemove, &regionResp{RID: rid}, nil); err != nil {
		return fmt.Errorf("bake: remove %d: %w", rid, err)
	}
	return nil
}
