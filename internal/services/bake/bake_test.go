package bake

import (
	"bytes"
	"strings"
	"testing"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
)

type env struct {
	srv, cli *margo.Instance
	prov     *Provider
	client   *Client
}

func newEnv(t *testing.T) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{Mode: margo.ModeServer, Node: "n1", Name: "bake", Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{Mode: margo.ModeClient, Node: "n0", Name: "cli", Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	prov, err := RegisterProvider(srv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(cli)
	if err != nil {
		t.Fatal(err)
	}
	return &env{srv: srv, cli: cli, prov: prov, client: client}
}

// run executes fn in a client ULT and propagates its error.
func (e *env) run(t *testing.T, fn func(self *abt.ULT) error) error {
	t.Helper()
	var err error
	u := e.cli.Run("t", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		t.Fatal(jerr)
	}
	return err
}

func TestCreateWritePersistRead(t *testing.T) {
	e := newEnv(t)
	data := bytes.Repeat([]byte("abcdefgh"), 512) // 4 KiB
	err := e.run(t, func(self *abt.ULT) error {
		rid, err := e.client.Create(self, e.srv.Addr(), uint64(len(data)))
		if err != nil {
			return err
		}
		if err := e.client.Write(self, e.srv.Addr(), rid, 0, data); err != nil {
			return err
		}
		if err := e.client.Persist(self, e.srv.Addr(), rid); err != nil {
			return err
		}
		if !e.prov.Persisted(rid) {
			t.Error("region not marked persisted")
		}
		size, err := e.client.GetSize(self, e.srv.Addr(), rid)
		if err != nil {
			return err
		}
		if size != uint64(len(data)) {
			t.Errorf("size = %d", size)
		}
		back := make([]byte, len(data))
		if err := e.client.Read(self, e.srv.Addr(), rid, 0, back); err != nil {
			return err
		}
		if !bytes.Equal(back, data) {
			t.Error("read-back mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartialWindowedIO(t *testing.T) {
	e := newEnv(t)
	err := e.run(t, func(self *abt.ULT) error {
		rid, err := e.client.Create(self, e.srv.Addr(), 100)
		if err != nil {
			return err
		}
		if err := e.client.Write(self, e.srv.Addr(), rid, 10, []byte("HELLO")); err != nil {
			return err
		}
		buf := make([]byte, 5)
		if err := e.client.Read(self, e.srv.Addr(), rid, 10, buf); err != nil {
			return err
		}
		if string(buf) != "HELLO" {
			t.Errorf("windowed read = %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorsOutOfBoundsAndUnknownRegion(t *testing.T) {
	e := newEnv(t)
	err := e.run(t, func(self *abt.ULT) error {
		rid, err := e.client.Create(self, e.srv.Addr(), 16)
		if err != nil {
			return err
		}
		if err := e.client.Write(self, e.srv.Addr(), rid, 10, make([]byte, 16)); err == nil {
			t.Error("out-of-bounds write accepted")
		} else if !strings.Contains(err.Error(), "beyond region end") {
			t.Errorf("err = %v", err)
		}
		if err := e.client.Read(self, e.srv.Addr(), rid, 10, make([]byte, 16)); err == nil {
			t.Error("out-of-bounds read accepted")
		}
		if err := e.client.Persist(self, e.srv.Addr(), 999); err == nil {
			t.Error("unknown region persist accepted")
		}
		if _, err := e.client.GetSize(self, e.srv.Addr(), 999); err == nil {
			t.Error("unknown region get_size accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	e := newEnv(t)
	err := e.run(t, func(self *abt.ULT) error {
		rid, err := e.client.Create(self, e.srv.Addr(), 8)
		if err != nil {
			return err
		}
		if e.prov.NumRegions() != 1 {
			t.Errorf("regions = %d", e.prov.NumRegions())
		}
		if err := e.client.Remove(self, e.srv.Addr(), rid); err != nil {
			return err
		}
		if e.prov.NumRegions() != 0 {
			t.Errorf("regions after remove = %d", e.prov.NumRegions())
		}
		if err := e.client.Remove(self, e.srv.Addr(), rid); err == nil {
			t.Error("double remove accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
