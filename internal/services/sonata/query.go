package sonata

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// This file implements the filter-expression engine standing in for the
// Jx9 scripts of UnQLite-backed Sonata (paper §V-B). Expressions select
// JSON documents by comparing dotted field paths against literals:
//
//	energy > 40.5 && detector.name == "endcap" || !(runs >= 3)
//
// Grammar (precedence low to high):
//
//	expr   := or
//	or     := and ( "||" and )*
//	and    := unary ( "&&" unary )*
//	unary  := "!" unary | "(" expr ")" | cmp
//	cmp    := path op literal
//	op     := == | != | < | <= | > | >=
//	literal:= number | "string" | true | false | null
//
// Missing fields make a comparison false (never an error), matching the
// permissive semantics of document-store filters.

// Expr is a compiled filter expression.
type Expr struct {
	root node
	src  string
}

// String returns the source text of the expression.
func (e *Expr) String() string { return e.src }

// Eval applies the expression to a decoded JSON document.
func (e *Expr) Eval(doc map[string]any) bool { return e.root.eval(doc) }

// Compile parses a filter expression.
func Compile(src string) (*Expr, error) {
	p := &parser{toks: lex(src)}
	n, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("sonata: compile %q: %w", src, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("sonata: compile %q: trailing input at %q", src, p.peek().text)
	}
	return &Expr{root: n, src: src}, nil
}

// MustCompile is Compile for known-good expressions (tests, examples).
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ---- lexer ----

type tokKind int8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // == != < <= > >=
	tokAnd    // &&
	tokOr     // ||
	tokNot    // !
	tokLParen // (
	tokRParen // )
	tokBad
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case strings.HasPrefix(src[i:], "&&"):
			toks = append(toks, token{tokAnd, "&&"})
			i += 2
		case strings.HasPrefix(src[i:], "||"):
			toks = append(toks, token{tokOr, "||"})
			i += 2
		case strings.HasPrefix(src[i:], "=="), strings.HasPrefix(src[i:], "!="),
			strings.HasPrefix(src[i:], "<="), strings.HasPrefix(src[i:], ">="):
			toks = append(toks, token{tokOp, src[i : i+2]})
			i += 2
		case c == '<' || c == '>':
			toks = append(toks, token{tokOp, string(c)})
			i++
		case c == '!':
			toks = append(toks, token{tokNot, "!"})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				toks = append(toks, token{tokBad, "unterminated string"})
				return toks
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case c == '-' || c == '.' || unicode.IsDigit(rune(c)):
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' ||
				src[j] == 'E' || src[j] == '+' || (src[j] == '-' && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) ||
				src[j] == '_' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			toks = append(toks, token{tokBad, string(c)})
			return toks
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

type node interface{ eval(doc map[string]any) bool }

type orNode struct{ kids []node }

func (n *orNode) eval(d map[string]any) bool {
	for _, k := range n.kids {
		if k.eval(d) {
			return true
		}
	}
	return false
}

type andNode struct{ kids []node }

func (n *andNode) eval(d map[string]any) bool {
	for _, k := range n.kids {
		if !k.eval(d) {
			return false
		}
	}
	return true
}

type notNode struct{ kid node }

func (n *notNode) eval(d map[string]any) bool { return !n.kid.eval(d) }

type cmpNode struct {
	path []string
	op   string
	lit  any // float64, string, bool, or nil
}

func (p *parser) parseExpr() (node, error) { return p.parseOr() }

func (p *parser) parseOr() (node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []node{first}
	for p.peek().kind == tokOr {
		p.next()
		n, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, n)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return &orNode{kids: kids}, nil
}

func (p *parser) parseAnd() (node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []node{first}
	for p.peek().kind == tokAnd {
		p.next()
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, n)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return &andNode{kids: kids}, nil
}

func (p *parser) parseUnary() (node, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notNode{kid: kid}, nil
	case tokLParen:
		p.next()
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("expected ')', got %q", p.peek().text)
		}
		p.next()
		return n, nil
	default:
		return p.parseCmp()
	}
}

func (p *parser) parseCmp() (node, error) {
	id := p.next()
	if id.kind != tokIdent {
		return nil, fmt.Errorf("expected field path, got %q", id.text)
	}
	op := p.next()
	if op.kind != tokOp {
		return nil, fmt.Errorf("expected comparison operator, got %q", op.text)
	}
	lit := p.next()
	n := &cmpNode{path: strings.Split(id.text, "."), op: op.text}
	switch lit.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(lit.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", lit.text)
		}
		n.lit = f
	case tokString:
		n.lit = lit.text
	case tokIdent:
		switch lit.text {
		case "true":
			n.lit = true
		case "false":
			n.lit = false
		case "null":
			n.lit = nil
		default:
			return nil, fmt.Errorf("expected literal, got %q", lit.text)
		}
	default:
		return nil, fmt.Errorf("expected literal, got %q", lit.text)
	}
	return n, nil
}

// lookup walks the dotted path through nested JSON objects.
func lookup(doc map[string]any, path []string) (any, bool) {
	var cur any = doc
	for _, seg := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[seg]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

func (n *cmpNode) eval(doc map[string]any) bool {
	v, ok := lookup(doc, n.path)
	if !ok {
		return false
	}
	switch lit := n.lit.(type) {
	case float64:
		f, ok := v.(float64)
		if !ok {
			return false
		}
		return cmpFloat(f, lit, n.op)
	case string:
		s, ok := v.(string)
		if !ok {
			return false
		}
		return cmpString(s, lit, n.op)
	case bool:
		b, ok := v.(bool)
		if !ok {
			return false
		}
		switch n.op {
		case "==":
			return b == lit
		case "!=":
			return b != lit
		}
		return false
	case nil:
		switch n.op {
		case "==":
			return v == nil
		case "!=":
			return v != nil
		}
		return false
	}
	return false
}

func cmpFloat(a, b float64, op string) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func cmpString(a, b, op string) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}
