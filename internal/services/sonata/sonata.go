// Package sonata reimplements Sonata, the Mochi microservice for
// remotely storing and querying JSON documents (paper §V-B). Unlike BAKE
// and SDSKV, Sonata is optimized for document storage with in-place
// queries; its UnQLite/Jx9 engine is substituted by an in-memory
// collection store plus the filter-expression engine in query.go.
//
// Crucially for the paper's Figure 7 experiment, sonata_store_multi_json
// transfers the document array as RPC *metadata*, not as a bulk region:
// when a batch exceeds Mercury's eager buffer the remainder moves via an
// internal RDMA transfer, and deserializing the large input accounts for
// a significant share of the target-side execution time.
package sonata

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// RPC names exported by the Sonata provider.
const (
	RPCCreateCollection = "sonata_create_collection_rpc"
	RPCStoreMultiJSON   = "sonata_store_multi_json_rpc"
	RPCFetch            = "sonata_fetch_rpc"
	RPCExecQuery        = "sonata_exec_query_rpc"
	RPCCollectionSize   = "sonata_collection_size_rpc"
)

// RPCNames lists every Sonata RPC (for client registration).
func RPCNames() []string {
	return []string{RPCCreateCollection, RPCStoreMultiJSON, RPCFetch, RPCExecQuery, RPCCollectionSize}
}

// Config models document-store costs.
type Config struct {
	// StoreCostPerDoc is the modeled UnQLite insert time per document.
	// Default 2µs.
	StoreCostPerDoc time.Duration
	// QueryCostPerDoc is the modeled Jx9 evaluation time per scanned
	// document. Default 500ns.
	QueryCostPerDoc time.Duration
}

func (c *Config) fillDefaults() {
	if c.StoreCostPerDoc <= 0 {
		c.StoreCostPerDoc = 2 * time.Microsecond
	}
	if c.QueryCostPerDoc <= 0 {
		c.QueryCostPerDoc = 500 * time.Nanosecond
	}
}

// Provider is a Sonata target hosting named collections.
type Provider struct {
	cfg Config

	mu    sync.Mutex
	colls map[string]*collection
}

type collection struct {
	// raw documents in insertion order; ids are indices.
	docs [][]byte
	// parsed holds the document objects reconstructed during input
	// deserialization, ready for querying.
	parsed []map[string]any
	wlock  *abt.Mutex
}

// RegisterProvider installs a Sonata provider on a Margo server.
func RegisterProvider(inst *margo.Instance, cfg Config) (*Provider, error) {
	cfg.fillDefaults()
	p := &Provider{cfg: cfg, colls: make(map[string]*collection)}
	handlers := map[string]margo.HandlerFunc{
		RPCCreateCollection: p.handleCreate,
		RPCStoreMultiJSON:   p.handleStoreMulti,
		RPCFetch:            p.handleFetch,
		RPCExecQuery:        p.handleQuery,
		RPCCollectionSize:   p.handleSize,
	}
	for name, fn := range handlers {
		if err := inst.Register(name, fn); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (p *Provider) collection(name string) (*collection, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.colls[name]
	return c, ok
}

// Wire types.

type collArgs struct{ Name string }

func (a *collArgs) Proc(pr *mercury.Proc) error { return pr.String(&a.Name) }

type storeMultiArgs struct {
	Coll string
	Docs [][]byte // JSON documents as RPC metadata (deliberately)

	// Parsed is populated on the decode side: deserializing the input
	// reconstructs the document objects, as Mercury proc callbacks do
	// for the serialized objects of real Mochi services. The cost is
	// therefore charged to input_deserialization_time, the quantity the
	// paper's Figure 7 examines.
	Parsed []map[string]any
}

func (a *storeMultiArgs) Proc(pr *mercury.Proc) error {
	pr.String(&a.Coll)
	pr.BytesSlice(&a.Docs)
	if pr.Op() == mercury.OpDecode && pr.Err() == nil {
		a.Parsed = make([]map[string]any, len(a.Docs))
		for i, d := range a.Docs {
			if err := json.Unmarshal(d, &a.Parsed[i]); err != nil {
				return fmt.Errorf("sonata: record %d: %w", i, err)
			}
		}
	}
	return pr.Err()
}

type storeMultiResp struct{ FirstID uint64 }

func (a *storeMultiResp) Proc(pr *mercury.Proc) error { return pr.Uint64(&a.FirstID) }

type fetchArgs struct {
	Coll string
	ID   uint64
}

func (a *fetchArgs) Proc(pr *mercury.Proc) error {
	pr.String(&a.Coll)
	pr.Uint64(&a.ID)
	return pr.Err()
}

type fetchResp struct {
	Found bool
	Doc   []byte
}

func (a *fetchResp) Proc(pr *mercury.Proc) error {
	pr.Bool(&a.Found)
	pr.Bytes(&a.Doc)
	return pr.Err()
}

type queryArgs struct {
	Coll string
	Expr string
	Max  uint32
}

func (a *queryArgs) Proc(pr *mercury.Proc) error {
	pr.String(&a.Coll)
	pr.String(&a.Expr)
	pr.Uint32(&a.Max)
	return pr.Err()
}

type queryResp struct {
	IDs  []uint64
	Docs [][]byte
}

func (a *queryResp) Proc(pr *mercury.Proc) error {
	pr.Uint64Slice(&a.IDs)
	pr.BytesSlice(&a.Docs)
	return pr.Err()
}

type sizeResp struct{ N uint64 }

func (a *sizeResp) Proc(pr *mercury.Proc) error { return pr.Uint64(&a.N) }

// Handlers.

func (p *Provider) handleCreate(ctx *margo.Context) {
	var in collArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sonata: %v", err)
		return
	}
	p.mu.Lock()
	if _, dup := p.colls[in.Name]; dup {
		p.mu.Unlock()
		ctx.RespondError("sonata: collection %q exists", in.Name)
		return
	}
	p.colls[in.Name] = &collection{wlock: abt.NewMutex()}
	p.mu.Unlock()
	ctx.Respond(mercury.Void{})
}

func (p *Provider) handleStoreMulti(ctx *margo.Context) {
	var in storeMultiArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sonata: %v", err)
		return
	}
	c, ok := p.collection(in.Coll)
	if !ok {
		ctx.RespondError("sonata: unknown collection %q", in.Coll)
		return
	}
	var first uint64
	c.wlock.Lock(ctx.Self)
	first = uint64(len(c.docs))
	c.docs = append(c.docs, in.Docs...)
	c.parsed = append(c.parsed, in.Parsed...)
	c.wlock.Unlock()
	ctx.Compute(time.Duration(len(in.Docs)) * p.cfg.StoreCostPerDoc)
	ctx.Respond(&storeMultiResp{FirstID: first})
}

func (p *Provider) handleFetch(ctx *margo.Context) {
	var in fetchArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sonata: %v", err)
		return
	}
	c, ok := p.collection(in.Coll)
	if !ok {
		ctx.RespondError("sonata: unknown collection %q", in.Coll)
		return
	}
	c.wlock.Lock(ctx.Self)
	var doc []byte
	found := in.ID < uint64(len(c.docs))
	if found {
		doc = c.docs[in.ID]
	}
	c.wlock.Unlock()
	ctx.Respond(&fetchResp{Found: found, Doc: doc})
}

func (p *Provider) handleQuery(ctx *margo.Context) {
	var in queryArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sonata: %v", err)
		return
	}
	expr, err := Compile(in.Expr)
	if err != nil {
		ctx.RespondError("%v", err)
		return
	}
	c, ok := p.collection(in.Coll)
	if !ok {
		ctx.RespondError("sonata: unknown collection %q", in.Coll)
		return
	}
	c.wlock.Lock(ctx.Self)
	docs := c.parsed
	raws := c.docs
	c.wlock.Unlock()

	ctx.Compute(time.Duration(len(docs)) * p.cfg.QueryCostPerDoc)
	out := queryResp{}
	for i, d := range docs {
		if expr.Eval(d) {
			out.IDs = append(out.IDs, uint64(i))
			out.Docs = append(out.Docs, raws[i])
			if in.Max > 0 && uint32(len(out.IDs)) >= in.Max {
				break
			}
		}
	}
	ctx.Respond(&out)
}

func (p *Provider) handleSize(ctx *margo.Context) {
	var in collArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("sonata: %v", err)
		return
	}
	c, ok := p.collection(in.Name)
	if !ok {
		ctx.RespondError("sonata: unknown collection %q", in.Name)
		return
	}
	c.wlock.Lock(ctx.Self)
	n := uint64(len(c.docs))
	c.wlock.Unlock()
	ctx.Respond(&sizeResp{N: n})
}

// Client is the origin-side Sonata API.
type Client struct {
	inst *margo.Instance
}

// NewClient wires Sonata RPCs into a Margo instance.
func NewClient(inst *margo.Instance) (*Client, error) {
	if err := inst.RegisterClient(RPCNames()...); err != nil {
		return nil, err
	}
	return &Client{inst: inst}, nil
}

// CreateCollection creates a named collection at the target.
func (c *Client) CreateCollection(self *abt.ULT, target, name string) error {
	return c.inst.Forward(self, target, RPCCreateCollection, &collArgs{Name: name}, nil)
}

// StoreMultiJSON stores a batch of JSON records in one RPC, carrying the
// records as request metadata (paper §V-B2). It returns the id of the
// first stored record; subsequent records follow consecutively.
func (c *Client) StoreMultiJSON(self *abt.ULT, target, coll string, docs [][]byte) (uint64, error) {
	var out storeMultiResp
	err := c.inst.Forward(self, target, RPCStoreMultiJSON, &storeMultiArgs{Coll: coll, Docs: docs}, &out)
	if err != nil {
		return 0, err
	}
	return out.FirstID, nil
}

// Fetch retrieves one document by id.
func (c *Client) Fetch(self *abt.ULT, target, coll string, id uint64) ([]byte, bool, error) {
	var out fetchResp
	if err := c.inst.Forward(self, target, RPCFetch, &fetchArgs{Coll: coll, ID: id}, &out); err != nil {
		return nil, false, err
	}
	return out.Doc, out.Found, nil
}

// ExecQuery runs a filter expression remotely, returning matching ids
// and documents (max 0 = unlimited).
func (c *Client) ExecQuery(self *abt.ULT, target, coll, expr string, max int) ([]uint64, [][]byte, error) {
	var out queryResp
	args := queryArgs{Coll: coll, Expr: expr, Max: uint32(max)}
	if err := c.inst.Forward(self, target, RPCExecQuery, &args, &out); err != nil {
		return nil, nil, err
	}
	return out.IDs, out.Docs, nil
}

// CollectionSize reports the number of stored documents.
func (c *Client) CollectionSize(self *abt.ULT, target, coll string) (uint64, error) {
	var out sizeResp
	if err := c.inst.Forward(self, target, RPCCollectionSize, &collArgs{Name: coll}, &out); err != nil {
		return 0, err
	}
	return out.N, nil
}

// GenerateRecord builds a synthetic particle-physics-flavoured JSON
// record of roughly the requested size, used by the Figure 7 benchmark
// and the examples.
func GenerateRecord(id int, approxBytes int) []byte {
	pad := approxBytes - 120
	if pad < 0 {
		pad = 0
	}
	padding := make([]byte, pad)
	for i := range padding {
		padding[i] = 'a' + byte((id+i)%26)
	}
	doc := map[string]any{
		"id":       id,
		"energy":   float64(id%1000) / 10.0,
		"detector": map[string]any{"name": fmt.Sprintf("det-%d", id%4), "layer": id % 7},
		"valid":    id%2 == 0,
		"payload":  string(padding),
	}
	b, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return b
}
