package sonata

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

func doc(s string) map[string]any {
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		panic(err)
	}
	return m
}

func TestQueryCompileAndEval(t *testing.T) {
	d := doc(`{"energy": 42.5, "detector": {"name": "endcap", "layer": 3},
	            "valid": true, "tag": null}`)
	cases := []struct {
		expr string
		want bool
	}{
		{`energy > 40`, true},
		{`energy > 42.5`, false},
		{`energy >= 42.5`, true},
		{`energy < 100 && detector.name == "endcap"`, true},
		{`energy < 100 && detector.name == "barrel"`, false},
		{`detector.layer == 3`, true},
		{`detector.layer != 3`, false},
		{`valid == true`, true},
		{`valid != true`, false},
		{`tag == null`, true},
		{`tag != null`, false},
		{`missing > 1`, false},
		{`missing.deeper == 1`, false},
		{`!(energy > 100)`, true},
		{`energy > 100 || detector.name == "endcap"`, true},
		{`(energy > 100 || energy < 50) && valid == true`, true},
		{`detector.name >= "e"`, true},
		{`detector.name < "e"`, false},
		{`energy == 42.5 && detector.layer < 4 && valid == true`, true},
	}
	for _, c := range cases {
		e, err := Compile(c.expr)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.expr, err)
		}
		if got := e.Eval(d); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.expr, got, c.want)
		}
		if e.String() != c.expr {
			t.Errorf("String() = %q", e.String())
		}
	}
}

func TestQueryCompileErrors(t *testing.T) {
	for _, expr := range []string{
		``, `energy >`, `energy > > 1`, `> 5`, `energy ~ 5`,
		`(energy > 5`, `energy > 5 extra`, `energy == "unterminated`,
		`energy == notaliteral`, `energy > 1 &&`, `#`,
	} {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) accepted", expr)
		}
	}
}

func TestQueryTypeMismatchIsFalse(t *testing.T) {
	d := doc(`{"s": "x", "n": 5, "b": true}`)
	for _, expr := range []string{`s > 3`, `n == "x"`, `b > 1`, `b == "true"`, `s == true`} {
		if MustCompile(expr).Eval(d) {
			t.Errorf("%q matched across types", expr)
		}
	}
}

type env struct {
	srv, cli *margo.Instance
	client   *Client
}

func newEnv(t *testing.T) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "sonata", Fabric: f,
		Mercury: mercury.Config{EagerLimit: 2048}, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "cli", Fabric: f,
		Mercury: mercury.Config{EagerLimit: 2048}, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	if _, err := RegisterProvider(srv, Config{}); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(cli)
	if err != nil {
		t.Fatal(err)
	}
	return &env{srv: srv, cli: cli, client: client}
}

func (e *env) run(t *testing.T, fn func(self *abt.ULT) error) error {
	t.Helper()
	var err error
	u := e.cli.Run("t", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		t.Fatal(jerr)
	}
	return err
}

func TestStoreFetchQueryOverRPC(t *testing.T) {
	e := newEnv(t)
	err := e.run(t, func(self *abt.ULT) error {
		if err := e.client.CreateCollection(self, e.srv.Addr(), "events"); err != nil {
			return err
		}
		docs := [][]byte{
			[]byte(`{"id": 0, "energy": 10.0}`),
			[]byte(`{"id": 1, "energy": 55.5}`),
			[]byte(`{"id": 2, "energy": 90.0}`),
		}
		first, err := e.client.StoreMultiJSON(self, e.srv.Addr(), "events", docs)
		if err != nil {
			return err
		}
		if first != 0 {
			t.Errorf("first id = %d", first)
		}
		n, err := e.client.CollectionSize(self, e.srv.Addr(), "events")
		if err != nil || n != 3 {
			t.Errorf("size = %d %v", n, err)
		}
		d, found, err := e.client.Fetch(self, e.srv.Addr(), "events", 1)
		if err != nil || !found || string(d) != string(docs[1]) {
			t.Errorf("fetch = %q %v %v", d, found, err)
		}
		if _, found, _ := e.client.Fetch(self, e.srv.Addr(), "events", 99); found {
			t.Error("out-of-range fetch found")
		}
		ids, matched, err := e.client.ExecQuery(self, e.srv.Addr(), "events", `energy > 50`, 0)
		if err != nil {
			return err
		}
		if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 || len(matched) != 2 {
			t.Errorf("query = %v", ids)
		}
		// Max limits results.
		ids, _, _ = e.client.ExecQuery(self, e.srv.Addr(), "events", `energy > 50`, 1)
		if len(ids) != 1 {
			t.Errorf("limited query = %v", ids)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStoreMultiErrors(t *testing.T) {
	e := newEnv(t)
	err := e.run(t, func(self *abt.ULT) error {
		if _, err := e.client.StoreMultiJSON(self, e.srv.Addr(), "ghost", [][]byte{[]byte(`{}`)}); err == nil {
			t.Error("store to unknown collection accepted")
		}
		if err := e.client.CreateCollection(self, e.srv.Addr(), "c"); err != nil {
			return err
		}
		if err := e.client.CreateCollection(self, e.srv.Addr(), "c"); err == nil {
			t.Error("duplicate collection accepted")
		}
		if _, err := e.client.StoreMultiJSON(self, e.srv.Addr(), "c", [][]byte{[]byte(`{bad json`)}); err == nil {
			t.Error("malformed JSON accepted")
		}
		if _, _, err := e.client.ExecQuery(self, e.srv.Addr(), "c", `>>>`, 0); err == nil {
			t.Error("malformed query accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeBatchTriggersInternalRDMA(t *testing.T) {
	// A batch far beyond the 2 KiB eager limit must move the metadata
	// remainder through the internal RDMA path and charge measurable
	// deserialization time at the target — the setting of Figure 7.
	e := newEnv(t)
	const numDocs, docSize = 200, 256
	err := e.run(t, func(self *abt.ULT) error {
		if err := e.client.CreateCollection(self, e.srv.Addr(), "big"); err != nil {
			return err
		}
		docs := make([][]byte, numDocs)
		for i := range docs {
			docs[i] = GenerateRecord(i, docSize)
		}
		if _, err := e.client.StoreMultiJSON(self, e.srv.Addr(), "big", docs); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	e.cli.WaitIdle(2 * time.Second)
	time.Sleep(20 * time.Millisecond)

	bc := core.Breadcrumb(0).Push(RPCStoreMultiJSON)
	stats := e.srv.Profiler().TargetStats()
	s, ok := stats[core.StatKey{BC: bc, Peer: e.cli.Addr()}]
	if !ok {
		t.Fatalf("no target stats for store_multi: %+v", stats)
	}
	if s.Components[core.CompRDMA] == 0 {
		t.Fatal("internal RDMA transfer time is zero for oversized metadata")
	}
	if s.Components[core.CompInputDeser] == 0 {
		t.Fatal("input deserialization time is zero")
	}
}

func TestGenerateRecordShape(t *testing.T) {
	for _, size := range []int{64, 256, 2048} {
		b := GenerateRecord(7, size)
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if m["id"].(float64) != 7 {
			t.Fatal("id lost")
		}
		if size > 200 && (len(b) < size/2 || len(b) > size*2) {
			t.Fatalf("size %d produced %d bytes", size, len(b))
		}
	}
	// Deterministic for the same inputs.
	if string(GenerateRecord(3, 300)) != string(GenerateRecord(3, 300)) {
		t.Fatal("GenerateRecord not deterministic")
	}
	_ = fmt.Sprintf
}

func TestCompileNeverPanicsProperty(t *testing.T) {
	// Arbitrary input must produce either a compiled expression or an
	// error — never a panic — and compiled expressions must evaluate
	// against arbitrary documents without panicking.
	doc := map[string]any{"a": 1.0, "b": "x", "c": map[string]any{"d": true}}
	prop := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		e, err := Compile(src)
		if err == nil {
			e.Eval(doc)
			e.Eval(nil)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Also fuzz near-valid inputs built from grammar fragments.
	frag := []string{"a", "b.c", "==", "!=", "<", ">=", "&&", "||", "!",
		"(", ")", `"s"`, "1.5", "true", "null", " "}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		var sb strings.Builder
		for j := 0; j < rng.Intn(8); j++ {
			sb.WriteString(frag[rng.Intn(len(frag))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Compile(%q) panicked: %v", src, r)
				}
			}()
			if e, err := Compile(src); err == nil {
				e.Eval(doc)
			}
		}()
	}
}
