// Package hepnos reimplements HEPnOS, the Mochi storage service for
// high-energy-physics event data (paper §V-C). Data is arranged in a
// hierarchy of datasets, runs, subruns, and events; each service
// provider node hosts one BAKE provider for bulk object data and one
// SDSKV provider with several databases for event metadata (paper
// Figure 8). Clients contact the providers directly: the data-loader
// batches serialized events per destination database and ships each
// batch with a single sdskv_put_packed RPC — the only dominant callpath
// of the loader, as the paper observes.
//
// Database selection follows the paper's client-side hashing scheme: the
// event key is hashed against the total number of databases across all
// servers to pick the (server, database) destination, so more databases
// spread the same events across more, smaller RPCs (§V-C3).
package hepnos

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/services/bake"
	"symbiosys/internal/services/sdskv"
)

// EventKey names one event in the dataset/run/subrun hierarchy.
type EventKey struct {
	DataSet string
	Run     uint64
	SubRun  uint64
	Event   uint64
}

// String renders the canonical storage key.
func (k EventKey) String() string {
	return fmt.Sprintf("%s/%012d/%012d/%012d", k.DataSet, k.Run, k.SubRun, k.Event)
}

// Bytes returns the storage key as a byte slice.
func (k EventKey) Bytes() []byte { return []byte(k.String()) }

// Server is one HEPnOS service provider process: a Margo server with a
// BAKE provider and an SDSKV provider hosting `databases` event DBs.
type Server struct {
	Inst  *margo.Instance
	Bake  *bake.Provider
	Sdskv *sdskv.Provider
	DBIDs []uint32
}

// NewServer installs the HEPnOS providers on inst, opening `databases`
// event databases on the given kv backend. kvCfg tunes the modeled
// backend costs (zero values select the sdskv defaults).
func NewServer(inst *margo.Instance, databases int, backend string, kvCfg sdskv.Config) (*Server, error) {
	s := &Server{Inst: inst}
	var err error
	if s.Bake, err = bake.RegisterProvider(inst, bake.Config{}); err != nil {
		return nil, err
	}
	if s.Sdskv, err = sdskv.RegisterProvider(inst, kvCfg); err != nil {
		return nil, err
	}
	for i := 0; i < databases; i++ {
		id, err := s.Sdskv.OpenLocal(fmt.Sprintf("hepnos-events-%d", i), backend)
		if err != nil {
			return nil, err
		}
		s.DBIDs = append(s.DBIDs, id)
	}
	return s, nil
}

// Addr returns the server's fabric address.
func (s *Server) Addr() string { return s.Inst.Addr() }

// StoredEvents reports the total number of events across the server's
// databases (test/validation support; queried locally, not via RPC).
func (s *Server) StoredEvents() int {
	total := 0
	for _, id := range s.DBIDs {
		total += s.dbLen(id)
	}
	return total
}

func (s *Server) dbLen(id uint32) int {
	n, err := s.Sdskv.LocalLength(id)
	if err != nil {
		return 0
	}
	return n
}

// Discover builds the client's view of a HEPnOS deployment from a list
// of server addresses (typically obtained by observing an SSG group):
// each server is asked to enumerate its event databases.
func Discover(inst *margo.Instance, self *abt.ULT, addrs []string) ([]ServerInfo, error) {
	kvc, err := sdskv.NewClient(inst)
	if err != nil {
		return nil, err
	}
	infos := make([]ServerInfo, 0, len(addrs))
	for _, addr := range addrs {
		ids, _, err := kvc.ListDatabases(self, addr)
		if err != nil {
			return nil, fmt.Errorf("hepnos: discover %s: %w", addr, err)
		}
		infos = append(infos, ServerInfo{Addr: addr, DBIDs: ids})
	}
	return infos, nil
}

// ServerInfo is a client's view of one HEPnOS server.
type ServerInfo struct {
	Addr  string
	DBIDs []uint32
}

// Client is the HEPnOS client API used by the data-loader. It batches
// events per destination database and flushes each batch as one
// sdskv_put_packed RPC when it reaches BatchSize. A Client is owned by
// a single issuing ULT (like a per-thread HEPnOS C++ client).
//
// With MaxInflight > 1 the client behaves like HEPnOS's asynchronous
// engine: each flush is issued from its own ULT, up to MaxInflight
// outstanding at once, and Flush waits for all of them. This is what
// produces the bursty RPC floods of the paper's §V-C3/§V-C4 studies.
type Client struct {
	inst      *margo.Instance
	kv        *sdskv.Client
	servers   []ServerInfo
	batchSize int
	totalDBs  int

	pending []batch
	stored  uint64

	issueCost time.Duration
	// issueDebt accumulates modeled issue cost and is paid in coarse
	// slices: host timers make many tiny sleeps far more expensive than
	// their nominal duration, which would distort the model.
	issueDebt time.Duration

	// Async engine state.
	maxInflight int
	window      *abt.Semaphore
	outstanding []*abt.ULT
	asyncErrMu  sync.Mutex
	asyncErr    error
}

type batch struct {
	keys [][]byte
	vals [][]byte
}

// Options tunes a loader client.
type Options struct {
	// BatchSize is the paper's "Batch Size" knob (Table IV).
	BatchSize int
	// MaxInflight > 1 enables the asynchronous flush engine with that
	// many outstanding put_packed RPCs; 0 or 1 issues synchronously.
	MaxInflight int
	// IssueCost models the client-side CPU work of preparing one
	// put_packed request (packing, hashing, memory registration). It
	// occupies the issuing ULT's execution stream, which is what the
	// Mercury progress ULT competes with in the paper's §V-C4 study.
	IssueCost time.Duration
}

// NewClient wires the SDSKV (and BAKE) RPCs into the instance and
// returns a loader client.
func NewClient(inst *margo.Instance, servers []ServerInfo, opts Options) (*Client, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1
	}
	kvc, err := sdskv.NewClient(inst)
	if err != nil {
		return nil, err
	}
	if _, err := bake.NewClient(inst); err != nil {
		return nil, err
	}
	total := 0
	for _, s := range servers {
		total += len(s.DBIDs)
	}
	if total == 0 {
		return nil, fmt.Errorf("hepnos: no databases configured")
	}
	c := &Client{
		inst:        inst,
		kv:          kvc,
		servers:     servers,
		batchSize:   opts.BatchSize,
		totalDBs:    total,
		pending:     make([]batch, total),
		maxInflight: opts.MaxInflight,
		issueCost:   opts.IssueCost,
	}
	if c.maxInflight > 1 {
		c.window = abt.NewSemaphore(c.maxInflight)
	}
	return c, nil
}

// TotalDatabases reports the number of databases across all servers.
func (c *Client) TotalDatabases() int { return c.totalDBs }

// Stored reports how many events this client has flushed so far.
func (c *Client) Stored() uint64 { return c.stored }

// dbFor hashes an event key to a global database index (paper §V-C3).
// FNV's low bits correlate for near-sequential keys, so the hash is
// passed through a murmur-style finalizer before the modulo.
func (c *Client) dbFor(key []byte) int {
	h := fnv.New64a()
	h.Write(key)
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return int(v % uint64(c.totalDBs))
}

// locate maps a global database index to (server address, db id).
func (c *Client) locate(global int) (string, uint32) {
	for _, s := range c.servers {
		if global < len(s.DBIDs) {
			return s.Addr, s.DBIDs[global]
		}
		global -= len(s.DBIDs)
	}
	panic("hepnos: database index out of range")
}

// StoreEvent queues one serialized event; when its destination batch
// reaches BatchSize the batch is flushed with a single sdskv_put_packed
// RPC from the calling ULT.
func (c *Client) StoreEvent(self *abt.ULT, key EventKey, data []byte) error {
	kb := key.Bytes()
	idx := c.dbFor(kb)
	b := &c.pending[idx]
	b.keys = append(b.keys, kb)
	b.vals = append(b.vals, data)
	if len(b.keys) >= c.batchSize {
		return c.flushDB(self, idx)
	}
	return nil
}

// Flush ships every non-empty batch and, in async mode, waits for all
// outstanding flushes to complete.
func (c *Client) Flush(self *abt.ULT) error {
	for idx := range c.pending {
		if len(c.pending[idx].keys) > 0 {
			if err := c.flushDB(self, idx); err != nil {
				return err
			}
		}
	}
	return c.waitOutstanding(self)
}

func (c *Client) flushDB(self *abt.ULT, idx int) error {
	b := &c.pending[idx]
	addr, dbID := c.locate(idx)
	keys, vals := b.keys, b.vals
	b.keys = nil
	b.vals = nil
	n := len(keys)
	if c.issueCost > 0 {
		// Modeled request-preparation CPU: holds the stream, as the
		// real packing work would. Paid in coarse slices (see issueDebt).
		c.issueDebt += c.issueCost
		if c.issueDebt >= 200*time.Microsecond {
			time.Sleep(c.issueDebt)
			c.issueDebt = 0
		}
	}
	if c.window == nil {
		if err := c.kv.PutPacked(self, addr, dbID, keys, vals); err != nil {
			return fmt.Errorf("hepnos: put_packed to %s db %d: %w", addr, dbID, err)
		}
		c.stored += uint64(n)
		return nil
	}
	// Async engine: issue from a fresh ULT, bounded by the window.
	c.window.Acquire(self)
	u := c.inst.Run("hepnos-flush", func(flusher *abt.ULT) {
		defer c.window.Release()
		if err := c.kv.PutPacked(flusher, addr, dbID, keys, vals); err != nil {
			c.asyncErrMu.Lock()
			if c.asyncErr == nil {
				c.asyncErr = fmt.Errorf("hepnos: put_packed to %s db %d: %w", addr, dbID, err)
			}
			c.asyncErrMu.Unlock()
		}
	})
	c.outstanding = append(c.outstanding, u)
	c.stored += uint64(n)
	return c.takeAsyncErr()
}

// waitOutstanding joins every in-flight async flush.
func (c *Client) waitOutstanding(self *abt.ULT) error {
	for _, u := range c.outstanding {
		u.Join(self)
	}
	c.outstanding = c.outstanding[:0]
	return c.takeAsyncErr()
}

func (c *Client) takeAsyncErr() error {
	c.asyncErrMu.Lock()
	defer c.asyncErrMu.Unlock()
	return c.asyncErr
}

// LoadEvent fetches one event back (validation path).
func (c *Client) LoadEvent(self *abt.ULT, key EventKey) ([]byte, bool, error) {
	kb := key.Bytes()
	addr, dbID := c.locate(c.dbFor(kb))
	return c.kv.Get(self, addr, dbID, kb)
}
