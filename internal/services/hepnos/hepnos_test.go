package hepnos

import (
	"fmt"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
	"symbiosys/internal/services/sdskv"
	"symbiosys/internal/ssg"
)

type env struct {
	cli     *margo.Instance
	servers []*Server
	infos   []ServerInfo
}

func newEnv(t *testing.T, numServers, dbsPerServer int) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	e := &env{}
	for i := 0; i < numServers; i++ {
		inst, err := margo.New(margo.Options{
			Mode: margo.ModeServer, Node: fmt.Sprintf("sn%d", i),
			Name: "hepnos", Fabric: f, HandlerStreams: 4, Stage: core.StageFull,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(inst, dbsPerServer, "map", sdskv.Config{})
		if err != nil {
			t.Fatal(err)
		}
		e.servers = append(e.servers, srv)
		e.infos = append(e.infos, ServerInfo{Addr: srv.Addr(), DBIDs: srv.DBIDs})
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "cn0", Name: "loader", Fabric: f, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.cli = cli
	t.Cleanup(func() {
		cli.Shutdown()
		for _, s := range e.servers {
			s.Inst.Shutdown()
		}
	})
	return e
}

func (e *env) run(t *testing.T, fn func(self *abt.ULT) error) error {
	t.Helper()
	var err error
	u := e.cli.Run("t", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		t.Fatal(jerr)
	}
	return err
}

func TestEventKeyFormat(t *testing.T) {
	k := EventKey{DataSet: "nova", Run: 1, SubRun: 2, Event: 3}
	want := "nova/000000000001/000000000002/000000000003"
	if k.String() != want {
		t.Fatalf("key = %q", k.String())
	}
}

func TestStoreAndLoadEvents(t *testing.T) {
	e := newEnv(t, 2, 4)
	const events = 100
	err := e.run(t, func(self *abt.ULT) error {
		c, err := NewClient(e.cli, e.infos, Options{BatchSize: 16})
		if err != nil {
			return err
		}
		if c.TotalDatabases() != 8 {
			t.Errorf("TotalDatabases = %d", c.TotalDatabases())
		}
		for i := 0; i < events; i++ {
			k := EventKey{DataSet: "nova", Run: 1, SubRun: uint64(i / 10), Event: uint64(i)}
			if err := c.StoreEvent(self, k, []byte(fmt.Sprintf("event-%d", i))); err != nil {
				return err
			}
		}
		if err := c.Flush(self); err != nil {
			return err
		}
		if c.Stored() != events {
			t.Errorf("Stored = %d", c.Stored())
		}
		// Read a few back.
		for i := 0; i < events; i += 17 {
			k := EventKey{DataSet: "nova", Run: 1, SubRun: uint64(i / 10), Event: uint64(i)}
			v, found, err := c.LoadEvent(self, k)
			if err != nil {
				return err
			}
			if !found || string(v) != fmt.Sprintf("event-%d", i) {
				t.Errorf("event %d = %q found=%v", i, v, found)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range e.servers {
		total += s.StoredEvents()
	}
	if total != events {
		t.Fatalf("servers hold %d events, want %d", total, events)
	}
}

func TestEventsSpreadAcrossDatabases(t *testing.T) {
	e := newEnv(t, 2, 4)
	err := e.run(t, func(self *abt.ULT) error {
		c, err := NewClient(e.cli, e.infos, Options{BatchSize: 8})
		if err != nil {
			return err
		}
		for i := 0; i < 400; i++ {
			k := EventKey{DataSet: "ds", Run: uint64(i), SubRun: 0, Event: uint64(i)}
			if err := c.StoreEvent(self, k, []byte("x")); err != nil {
				return err
			}
		}
		return c.Flush(self)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every database should have received a share.
	for si, s := range e.servers {
		for _, id := range s.DBIDs {
			n, err := s.Sdskv.LocalLength(id)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Errorf("server %d db %d received no events", si, id)
			}
		}
	}
}

func TestBatchSizeControlsRPCCount(t *testing.T) {
	// With one database, storing N events at batch size B issues about
	// N/B put_packed RPCs; batch size 1 issues N.
	countRPCs := func(batchSize int) uint64 {
		e := newEnv(t, 1, 1)
		const events = 64
		if err := e.run(t, func(self *abt.ULT) error {
			c, err := NewClient(e.cli, e.infos, Options{BatchSize: batchSize})
			if err != nil {
				return err
			}
			for i := 0; i < events; i++ {
				k := EventKey{DataSet: "b", Event: uint64(i)}
				if err := c.StoreEvent(self, k, []byte("v")); err != nil {
					return err
				}
			}
			return c.Flush(self)
		}); err != nil {
			t.Fatal(err)
		}
		e.cli.WaitIdle(2 * time.Second)
		time.Sleep(10 * time.Millisecond)
		bc := core.Breadcrumb(0).Push(sdskv.RPCPutPacked)
		var count uint64
		for k, s := range e.cli.Profiler().OriginStats() {
			if k.BC == bc {
				count += s.Count
			}
		}
		return count
	}
	if got := countRPCs(64); got != 1 {
		t.Fatalf("batch 64: %d RPCs, want 1", got)
	}
	if got := countRPCs(1); got != 64 {
		t.Fatalf("batch 1: %d RPCs, want 64", got)
	}
}

func TestClientRequiresDatabases(t *testing.T) {
	e := newEnv(t, 1, 1)
	if _, err := NewClient(e.cli, nil, Options{BatchSize: 4}); err == nil {
		t.Fatal("client with no servers accepted")
	}
	_ = mercury.Void{}
}

func TestDiscoverViaSSG(t *testing.T) {
	// Bootstrap a client from an SSG group instead of hand-wired
	// ServerInfo: servers join the group, the client observes it and
	// asks each member to enumerate its databases.
	e := newEnv(t, 2, 3)

	// Host the group on the first server and have both servers join.
	host, err := ssg.NewHost(e.servers[0].Inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := host.Create("hepnos", true); err != nil {
		t.Fatal(err)
	}
	joiner, err := ssg.NewClient(e.servers[1].Inst)
	if err != nil {
		t.Fatal(err)
	}
	ju := e.servers[1].Inst.Run("join", func(self *abt.ULT) {
		if _, _, err := joiner.Join(self, e.servers[0].Addr(), "hepnos", ""); err != nil {
			t.Errorf("join: %v", err)
		}
	})
	ju.Join(nil)

	// Client: observe the group, discover databases, store events.
	obsClient, err := ssg.NewClient(e.cli)
	if err != nil {
		t.Fatal(err)
	}
	err = e.run(t, func(self *abt.ULT) error {
		view, err := obsClient.Observe(self, e.servers[0].Addr(), "hepnos")
		if err != nil {
			return err
		}
		if view.Size() != 2 {
			t.Errorf("view size = %d", view.Size())
		}
		infos, err := Discover(e.cli, self, view.Addrs())
		if err != nil {
			return err
		}
		total := 0
		for _, info := range infos {
			total += len(info.DBIDs)
		}
		if total != 6 {
			t.Errorf("discovered %d databases, want 6", total)
		}
		c, err := NewClient(e.cli, infos, Options{BatchSize: 8})
		if err != nil {
			return err
		}
		for i := 0; i < 40; i++ {
			k := EventKey{DataSet: "disc", Event: uint64(i)}
			if err := c.StoreEvent(self, k, []byte("v")); err != nil {
				return err
			}
		}
		return c.Flush(self)
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range e.servers {
		total += s.StoredEvents()
	}
	if total != 40 {
		t.Fatalf("stored %d events via discovered deployment", total)
	}
}
