package ekv

import (
	"context"
	"fmt"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
	"symbiosys/internal/ssg"
)

const testGroup = "ekv"

type env struct {
	t      *testing.T
	fabric *na.Fabric
	root   *margo.Instance
	host   *ssg.Host
	nodes  []*Node
	insts  []*margo.Instance
	cliIn  *margo.Instance
	cli    *Client
}

func newTestEnv(t *testing.T, nodes int) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	e := &env{t: t, fabric: f}
	var err error
	e.root, err = margo.New(margo.Options{Mode: margo.ModeServer, Node: "root", Name: "root", Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	e.host, err = ssg.NewHost(e.root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.host.Create(testGroup, false); err != nil {
		t.Fatal(err)
	}
	// A snappier policy than the default: dropped messages under the
	// lossy-link plan should time out in tens of milliseconds, not the
	// default 1s per try, so chaos runs stay fast.
	retry := margo.DefaultRetryPolicy()
	retry.MaxAttempts = 6
	retry.PerTryTimeout = 75 * time.Millisecond
	retry.InitialBackoff = 2 * time.Millisecond
	for i := 0; i < nodes; i++ {
		e.addNode(retry)
	}
	// A server-mode client instance, so it receives pushed view deltas.
	e.cliIn, err = margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "cli", Name: "cli", Fabric: f, Retry: &retry,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.cli, err = NewClient(e.cliIn, e.root.Addr(), testGroup)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range e.nodes {
			n.Close()
		}
		for _, in := range e.insts {
			in.Shutdown()
		}
		e.cliIn.Shutdown()
		e.host.Close()
		e.root.Shutdown()
	})
	return e
}

// addNode creates (but does not join) one more node process.
func (e *env) addNode(retry margo.RetryPolicy) *Node {
	e.t.Helper()
	i := len(e.insts)
	inst, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: fmt.Sprintf("kv%d", i),
		Name: fmt.Sprintf("ekv%d", i), Fabric: e.fabric, Retry: &retry,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	n, err := NewNode(inst, e.root.Addr(), testGroup)
	if err != nil {
		e.t.Fatal(err)
	}
	e.insts = append(e.insts, inst)
	e.nodes = append(e.nodes, n)
	return n
}

// joinAll joins nodes [from, to) to the group.
func (e *env) joinAll(from, to int) {
	e.t.Helper()
	for i := from; i < to; i++ {
		i := i
		e.runOn(e.insts[i], func(self *abt.ULT) error { return e.nodes[i].Join(self) })
	}
}

func (e *env) runOn(inst *margo.Instance, fn func(self *abt.ULT) error) {
	e.t.Helper()
	var err error
	u := inst.Run("t", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		e.t.Fatal(jerr)
	}
	if err != nil {
		e.t.Fatal(err)
	}
}

func (e *env) run(fn func(self *abt.ULT) error) {
	e.t.Helper()
	e.runOn(e.cliIn, fn)
}

// settleAll waits until every live joined node has finished rebalancing
// its newest ring.
func (e *env) settleAll(live []*Node) {
	e.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		allDone := true
		for _, n := range live {
			if !n.Settled() {
				allDone = false
				break
			}
		}
		if allDone {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.t.Fatal("cluster did not settle")
}

func testKey(i int) []byte   { return []byte(fmt.Sprintf("dataset/run%02d/event%06d", i%5, i)) }
func testValue(i int) []byte { return []byte(fmt.Sprintf("payload-%06d", i)) }

// verifyAll asserts every acked key reads back with its value.
func (e *env) verifyAll(nkeys int) {
	e.t.Helper()
	e.run(func(self *abt.ULT) error {
		if err := e.cli.Refresh(self); err != nil {
			return err
		}
		for i := 0; i < nkeys; i++ {
			v, found, err := e.cli.Get(self, testKey(i))
			if err != nil {
				return fmt.Errorf("get %d: %w", i, err)
			}
			if !found {
				return fmt.Errorf("acked key %q lost", testKey(i))
			}
			if string(v) != string(testValue(i)) {
				return fmt.Errorf("key %q = %q, want %q", testKey(i), v, testValue(i))
			}
		}
		return nil
	})
}

// TestRoutingAndSpread: basic routing — every node ends up owning part
// of the keyspace, every key reads back.
func TestRoutingAndSpread(t *testing.T) {
	e := newTestEnv(t, 3)
	e.joinAll(0, 3)
	const nkeys = 300
	e.run(func(self *abt.ULT) error {
		if err := e.cli.Attach(self); err != nil {
			return err
		}
		for i := 0; i < nkeys; i++ {
			if err := e.cli.Put(self, testKey(i), testValue(i)); err != nil {
				return err
			}
		}
		return nil
	})
	e.settleAll(e.nodes)
	total := 0
	for _, n := range e.nodes {
		if n.Len() == 0 {
			t.Errorf("node %s owns no keys", n.Addr())
		}
		total += n.Len()
	}
	if total != nkeys {
		t.Errorf("cluster holds %d pairs, want %d", total, nkeys)
	}
	e.verifyAll(nkeys)
}

// TestScaleOutMigratesKeys: join two more nodes after loading; the
// moving ranges must stream over, residual copies must be deleted, and
// every key must survive.
func TestScaleOutMigratesKeys(t *testing.T) {
	e := newTestEnv(t, 4)
	e.joinAll(0, 2)
	const nkeys = 400
	e.run(func(self *abt.ULT) error {
		if err := e.cli.Attach(self); err != nil {
			return err
		}
		for i := 0; i < nkeys; i++ {
			if err := e.cli.Put(self, testKey(i), testValue(i)); err != nil {
				return err
			}
		}
		return nil
	})
	e.joinAll(2, 4)
	e.settleAll(e.nodes)

	var out, in uint64
	total := 0
	for i, n := range e.nodes {
		total += n.Len()
		out += n.keysOut.Load()
		in += n.keysIn.Load()
		if i >= 2 && n.Len() == 0 {
			t.Errorf("joined node %s received no keys", n.Addr())
		}
	}
	if total != nkeys {
		t.Errorf("cluster holds %d pairs after scale-out, want %d (residuals not deleted?)", total, nkeys)
	}
	if out == 0 || in == 0 {
		t.Errorf("no migration recorded: out=%d in=%d", out, in)
	}
	e.verifyAll(nkeys)
}

// TestDrainDuringRebalance is the satellite regression test: draining a
// node mid-migration must hand off its shards — including in-flight
// transfer residue — instead of stranding them. A fourth node joins
// (starting a rebalance) and one of the loaded nodes drains while that
// round is still running; every acked key must remain readable.
func TestDrainDuringRebalance(t *testing.T) {
	e := newTestEnv(t, 4)
	e.joinAll(0, 3)
	const nkeys = 500
	e.run(func(self *abt.ULT) error {
		if err := e.cli.Attach(self); err != nil {
			return err
		}
		for i := 0; i < nkeys; i++ {
			if err := e.cli.Put(self, testKey(i), testValue(i)); err != nil {
				return err
			}
		}
		return nil
	})
	// Kick a rebalance (node 3 joins) and drain node 1 while the round
	// runs. Drain's OnDrain hook must retire the node: stream every
	// local pair to its surviving owner, then leave the group.
	e.joinAll(3, 4)
	victim := e.insts[1]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := victim.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := e.nodes[1].Len(); n != 0 {
		t.Errorf("drained node still holds %d pairs", n)
	}
	live := []*Node{e.nodes[0], e.nodes[2], e.nodes[3]}
	e.settleAll(live)
	total := 0
	for _, n := range live {
		total += n.Len()
	}
	if total != nkeys {
		t.Errorf("survivors hold %d pairs, want %d", total, nkeys)
	}
	e.verifyAll(nkeys)
}

// TestLossyLinkMigrationNoAckedLost is the satellite chaos test: a
// seeded fault plan drops and delays traffic on every link while the
// cluster scales from 2 to 4 nodes under a continuing write load. The
// bar: zero acked-then-lost ops — whatever the client saw acked must
// read back after the dust settles.
func TestLossyLinkMigrationNoAckedLost(t *testing.T) {
	e := newTestEnv(t, 4)
	e.joinAll(0, 2)

	plan := na.NewFaultPlan(1234)
	plan.Default = na.FaultRule{
		DropProb:  0.02,
		DelayProb: 0.05,
		Delay:     2 * time.Millisecond,
	}
	e.fabric.SetFaultPlan(plan)

	const nkeys = 400
	acked := 0
	e.run(func(self *abt.ULT) error {
		if err := e.cli.Attach(self); err != nil {
			return err
		}
		for i := 0; i < nkeys; i++ {
			// Scale out mid-load: the second half of the writes lands
			// while the moving ranges stream under the lossy plan.
			if i == nkeys/2 {
				e.joinAll(2, 4)
			}
			if err := e.cli.Put(self, testKey(i), testValue(i)); err != nil {
				return fmt.Errorf("put %d under faults: %w", i, err)
			}
			acked++
		}
		return nil
	})
	if acked != nkeys {
		t.Fatalf("acked %d of %d puts", acked, nkeys)
	}
	e.settleAll(e.nodes)
	// Heal the fabric for the audit so a dropped response cannot mask a
	// truly stored pair as lost (the audit checks state, not the link).
	e.fabric.SetFaultPlan(nil)
	if e.fabric.FaultStats().Drops == 0 {
		t.Error("fault plan injected no drops — test exercised nothing")
	}
	e.verifyAll(nkeys)
}
