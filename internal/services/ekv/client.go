package ekv

import (
	"fmt"
	"sync"

	"symbiosys/internal/abt"
	"symbiosys/internal/kv"
	"symbiosys/internal/margo"
	"symbiosys/internal/ssg"
)

// maxRouteRetries bounds the refresh-and-retry loop per op. Each
// iteration is one full margo forward (with its own retry/breaker
// machinery underneath); iterations are only spent on redirects and
// transport failures, so hitting the cap means membership churned
// faster than the client could chase it.
const maxRouteRetries = 8

// Client routes ops over the elastic group: it keeps a rendezvous ring
// built from the freshest membership view it has seen and sends every
// op to the ring's owner, refreshing the view and retrying when the
// response is a redirect or the owner is unreachable. On a server-mode
// instance the client also subscribes to pushed membership deltas, so
// routing tables usually refresh ahead of the first redirect.
type Client struct {
	inst  *margo.Instance
	ssgc  *ssg.Client
	agent *ssg.Agent // nil on pull-only (client-mode) instances
	root  string
	group string

	mu   sync.Mutex
	ring *kv.Ring

	redirects atomic64
}

// atomic64 is a tiny counter alias to keep the struct flat.
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add() {
	a.mu.Lock()
	a.v++
	a.mu.Unlock()
}

func (a *atomic64) load() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// NewClient wires the elastic KV client RPCs into a Margo instance.
// root is the SSG host rooting the service group. Call Attach before
// the first op to load the initial view.
func NewClient(inst *margo.Instance, root, group string) (*Client, error) {
	// Client ops are idempotent (put is an overwrite; get is pure), so
	// the margo retry machinery may re-issue timed-out attempts.
	if err := inst.RegisterClientIdempotent(ClientRPCNames()...); err != nil {
		return nil, err
	}
	c := &Client{inst: inst, root: root, group: group}
	var err error
	if inst.Mode() == margo.ModeServer {
		// Server-mode callers can service ssg_notify pushes: subscribe
		// for deltas so the ring refreshes proactively under churn.
		c.agent, err = ssg.NewAgent(inst)
		if err != nil {
			return nil, err
		}
		c.agent.OnEvent(group, func(ev ssg.Event) {
			if ev.Type == ssg.EventSuspect {
				return
			}
			c.applyView(ev.View)
		})
		c.ssgc = c.agent.Client()
	} else {
		c.ssgc, err = ssg.NewClient(inst)
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Attach loads the initial membership view (and, on server-mode
// instances, subscribes for pushed deltas).
func (c *Client) Attach(self *abt.ULT) error {
	if c.agent != nil {
		v, err := c.agent.Watch(self, c.root, c.group)
		if err != nil {
			return err
		}
		c.applyView(v)
		return nil
	}
	return c.Refresh(self)
}

// Refresh re-pulls the view from the root and rebuilds the ring if it
// is newer.
func (c *Client) Refresh(self *abt.ULT) error {
	v, err := c.ssgc.Observe(self, c.root, c.group)
	if err != nil {
		return err
	}
	c.applyView(v)
	return nil
}

func (c *Client) applyView(v ssg.View) {
	c.mu.Lock()
	if c.ring == nil || v.Version > c.ring.Version() {
		c.ring = kv.NewRing(v.Version, v.Addrs())
	}
	c.mu.Unlock()
}

func (c *Client) snapshot() *kv.Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// Redirects reports how many ops were re-routed after a stale-view
// redirect or an unreachable owner.
func (c *Client) Redirects() uint64 { return c.redirects.load() }

// Put stores one pair at the key's owner, chasing membership churn as
// needed. An acked Put is durable at the owner (or dual-written to it).
func (c *Client) Put(self *abt.ULT, key, value []byte) error {
	for attempt := 0; attempt < maxRouteRetries; attempt++ {
		r := c.snapshot()
		if r == nil || r.Size() == 0 {
			if err := c.Refresh(self); err != nil {
				return err
			}
			continue
		}
		owner := r.Owner(key)
		var out opResp
		err := c.inst.Forward(self, owner, RPCPut, &putArgs{Key: key, Value: value, Version: r.Version()}, &out)
		if err != nil {
			// Owner unreachable (departed, drained, partitioned): pick
			// up the newest view and re-route through the margo
			// breaker machinery.
			c.redirects.add()
			_ = c.Refresh(self)
			continue
		}
		if out.Status == statusWrongOwner {
			c.redirects.add()
			_ = c.Refresh(self)
			continue
		}
		return nil
	}
	return fmt.Errorf("ekv: put %q: routing did not converge after %d attempts", key, maxRouteRetries)
}

// Get fetches the value for key from its owner.
func (c *Client) Get(self *abt.ULT, key []byte) ([]byte, bool, error) {
	for attempt := 0; attempt < maxRouteRetries; attempt++ {
		r := c.snapshot()
		if r == nil || r.Size() == 0 {
			if err := c.Refresh(self); err != nil {
				return nil, false, err
			}
			continue
		}
		owner := r.Owner(key)
		var out getResp
		err := c.inst.Forward(self, owner, RPCGet, &getArgs{Key: key, Version: r.Version()}, &out)
		if err != nil {
			c.redirects.add()
			_ = c.Refresh(self)
			continue
		}
		if out.Status == statusWrongOwner {
			c.redirects.add()
			_ = c.Refresh(self)
			continue
		}
		return out.Value, out.Found, nil
	}
	return nil, false, fmt.Errorf("ekv: get %q: routing did not converge after %d attempts", key, maxRouteRetries)
}
