// Package ekv is the elastic key-value service: sdskv's storage model
// behind a dynamic membership plane. Nodes join an SSG group; every
// party routes keys with the same rendezvous ring over the group view
// (internal/kv.Ring), so a view change moves only the keys the ring
// says must move. Nodes react to pushed membership deltas by streaming
// the moving ranges to their new owners over the bulk path while
// dual-writing in-flight ops, so a scale-out or scale-in under load
// loses no acked operation (the ISSUE 8 tentpole; protocol in
// DESIGN.md §11).
package ekv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/kv"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/mercury/pvar"
	"symbiosys/internal/ssg"
)

// Service-level PVARs. Registered through margo.RegisterServicePVar,
// they ride the same session plumbing as the library counters and
// surface in /metrics as symbiosys_pvar_elastic_*.
const (
	PVarKeysMigratedOut     = "elastic_keys_migrated_out"
	PVarKeysMigratedIn      = "elastic_keys_migrated_in"
	PVarMigrationsStarted   = "elastic_migrations_started"
	PVarMigrationsCompleted = "elastic_migrations_completed"
	PVarWrongRoutes         = "elastic_wrong_routes"
	PVarDualWrites          = "elastic_dual_writes"
	PVarReadThroughs        = "elastic_read_throughs"
)

// migrateChunk pairs per bulk push while streaming a moving range.
const migrateChunk = 128

// roundRetryLimit bounds re-runs of a failing rebalance round before
// the node gives up and relies on residual grace serving + read-through
// for correctness.
const roundRetryLimit = 10

// Node is one elastic KV node: a storage provider plus the membership
// agent and migration engine.
type Node struct {
	inst  *margo.Instance
	agent *ssg.Agent
	root  string
	group string
	db    kv.DB

	// mu guards the routing state. It is never held across a Forward —
	// handlers snapshot under the lock, release, then act. The inbound
	// migration handlers (peer_put, migrate_push) do hold it across
	// their local db writes: that orders them against Retire's
	// set-retiring, so a handoff can never slip in behind a retiring
	// node's final sweep and strand acked pairs.
	mu        sync.Mutex
	ring      *kv.Ring
	lastRound uint64            // newest ring version fully rebalanced
	doneFrom  map[string]uint64 // peer addr -> newest round it settled
	dirty     map[string]uint64 // key -> round of last direct/dual write here
	retiring  bool
	closed    bool

	sem    *abt.Semaphore // kicks the rebalance worker
	worker *abt.ULT

	// Lifetime counters, exported as service PVARs.
	keysOut      atomic.Uint64
	keysIn       atomic.Uint64
	migStarted   atomic.Uint64
	migCompleted atomic.Uint64
	wrongRoutes  atomic.Uint64
	dualWrites   atomic.Uint64
	readThroughs atomic.Uint64
}

// NewNode installs an elastic KV node on a Margo server. root is the
// address of the SSG host rooting the group; the node does not join
// until Join is called (so a cluster can start all processes before
// churning membership). The node hands its shards off automatically
// when its instance drains.
func NewNode(inst *margo.Instance, root, group string) (*Node, error) {
	agent, err := ssg.NewAgent(inst)
	if err != nil {
		return nil, err
	}
	db, err := kv.Open("shardedmap", "ekv-"+inst.Addr())
	if err != nil {
		return nil, err
	}
	n := &Node{
		inst: inst, agent: agent, root: root, group: group, db: db,
		doneFrom: make(map[string]uint64),
		dirty:    make(map[string]uint64),
	}
	handlers := map[string]margo.HandlerFunc{
		RPCPut:         n.handlePut,
		RPCGet:         n.handleGet,
		RPCPeerPut:     n.handlePeerPut,
		RPCPeerGet:     n.handlePeerGet,
		RPCMigratePush: n.handleMigratePush,
		RPCMigrateDone: n.handleMigrateDone,
	}
	for name, fn := range handlers {
		if err := inst.Register(name, fn); err != nil {
			return nil, err
		}
	}
	// Peer ops are idempotent (puts are last-writer-wins overwrites,
	// pushes are dirty-guarded snapshots), so timed-out forwards may be
	// re-issued by the margo retry machinery.
	if err := inst.RegisterClientIdempotent(PeerRPCNames()...); err != nil {
		return nil, err
	}
	for _, pv := range []struct {
		name, desc string
		read       func() uint64
	}{
		{PVarKeysMigratedOut, "keys streamed out to new owners during rebalancing", n.keysOut.Load},
		{PVarKeysMigratedIn, "keys received from old owners during rebalancing", n.keysIn.Load},
		{PVarMigrationsStarted, "rebalance rounds started", n.migStarted.Load},
		{PVarMigrationsCompleted, "rebalance rounds completed", n.migCompleted.Load},
		{PVarWrongRoutes, "client ops redirected for routing with a stale view", n.wrongRoutes.Load},
		{PVarDualWrites, "stale-routed writes served locally and forwarded to the owner", n.dualWrites.Load},
		{PVarReadThroughs, "owner-side misses resolved by asking pending donors", n.readThroughs.Load},
	} {
		if err := inst.RegisterServicePVar(pv.name, pv.desc, pvar.ClassCounter, pv.read); err != nil {
			return nil, err
		}
	}
	n.sem = abt.NewSemaphore(1)
	n.sem.Acquire(nil) // start with zero permits: pure kick queue
	n.worker = inst.Run("ekv-rebalance", n.rebalanceLoop)
	n.agent.OnEvent(group, n.onEvent)
	inst.OnDrain(n.drainHook)
	return n, nil
}

// Addr returns the node's fabric address.
func (n *Node) Addr() string { return n.inst.Addr() }

// Len reports the local pair count (validation path).
func (n *Node) Len() int { return n.db.Len() }

// Settled reports whether the node has fully rebalanced its newest ring
// (a retired node is trivially settled — it owes nothing).
func (n *Node) Settled() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.retiring || n.closed {
		return true
	}
	return n.ring != nil && n.lastRound >= n.ring.Version()
}

// Stats is a snapshot of the node's lifetime migration counters.
type Stats struct {
	KeysMigratedOut     uint64
	KeysMigratedIn      uint64
	MigrationsStarted   uint64
	MigrationsCompleted uint64
	WrongRoutes         uint64
	DualWrites          uint64
	ReadThroughs        uint64
}

// Stats reports the node's migration counters.
func (n *Node) Stats() Stats {
	return Stats{
		KeysMigratedOut:     n.keysOut.Load(),
		KeysMigratedIn:      n.keysIn.Load(),
		MigrationsStarted:   n.migStarted.Load(),
		MigrationsCompleted: n.migCompleted.Load(),
		WrongRoutes:         n.wrongRoutes.Load(),
		DualWrites:          n.dualWrites.Load(),
		ReadThroughs:        n.readThroughs.Load(),
	}
}

// Join enters the service group and installs the first ring.
func (n *Node) Join(self *abt.ULT) error {
	_, v, err := n.agent.Join(self, n.root, n.group)
	if err != nil {
		return err
	}
	n.applyView(v)
	return nil
}

// onEvent reacts to a pushed membership delta: install the new ring and
// kick the rebalance worker. Suspicion changes nothing (the member is
// still in the view); join/leave/fail all carry a new view.
func (n *Node) onEvent(ev ssg.Event) {
	if ev.Type == ssg.EventSuspect {
		return
	}
	n.applyView(ev.View)
}

// applyView swaps in a ring built from a (possibly newer) view.
func (n *Node) applyView(v ssg.View) {
	n.mu.Lock()
	if n.retiring || n.closed || (n.ring != nil && v.Version <= n.ring.Version()) {
		n.mu.Unlock()
		return
	}
	n.ring = kv.NewRing(v.Version, v.Addrs())
	n.mu.Unlock()
	n.sem.Release()
}

// route snapshots the routing state for one request.
func (n *Node) route(key []byte) (owner string, version uint64, unsettled bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ring == nil {
		return "", 0, false
	}
	owner = n.ring.Owner(key)
	version = n.ring.Version()
	// Unsettled: a rebalance round is pending or running, or the node is
	// shedding its shards. Stale-routed writes are served with a
	// dual-write during this window instead of being redirected.
	unsettled = n.retiring || n.lastRound < version
	return owner, version, unsettled
}

// markDirty records a direct or dual write landing at this node during
// an unsettled round, so a migrated snapshot of the same key cannot
// clobber it.
func (n *Node) markDirty(key []byte, version uint64) {
	n.mu.Lock()
	if v, ok := n.dirty[string(key)]; !ok || version > v {
		n.dirty[string(key)] = version
	}
	n.mu.Unlock()
}

// pendingDonors lists peers that have not yet declared round `version`
// settled — an owner-side miss may still be in their residual state.
func (n *Node) pendingDonors(version uint64) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ring == nil {
		return nil
	}
	var out []string
	for _, m := range n.ring.Members() {
		if m == n.inst.Addr() {
			continue
		}
		if n.doneFrom[m] < version {
			out = append(out, m)
		}
	}
	return out
}

// Client-facing handlers.

func (n *Node) handlePut(ctx *margo.Context) {
	var in putArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ekv: %v", err)
		return
	}
	owner, version, unsettled := n.route(in.Key)
	switch {
	case owner == n.inst.Addr():
		if err := n.db.Put(in.Key, in.Value); err != nil {
			ctx.RespondError("ekv: put: %v", err)
			return
		}
		if unsettled {
			n.markDirty(in.Key, version)
		}
		ctx.Respond(&opResp{Status: statusOK, Version: version})
	case owner != "" && unsettled:
		// Stale-routed write mid-migration: serve it rather than bounce
		// the client — store locally (residual grace for readers still
		// routed here) and synchronously dual-write to the owner before
		// acking, so the ack never depends on state only this node holds.
		if err := n.db.Put(in.Key, in.Value); err != nil {
			ctx.RespondError("ekv: put: %v", err)
			return
		}
		err := ctx.Forward(owner, RPCPeerPut, &putArgs{Key: in.Key, Value: in.Value, Version: version}, nil)
		if err != nil {
			// Owner unreachable: do not ack a write we may not be able
			// to hand off. Redirect; the client refreshes and retries.
			n.wrongRoutes.Add(1)
			ctx.Respond(&opResp{Status: statusWrongOwner, Version: version})
			return
		}
		n.dualWrites.Add(1)
		ctx.Respond(&opResp{Status: statusOK, Version: version})
	default:
		n.wrongRoutes.Add(1)
		ctx.Respond(&opResp{Status: statusWrongOwner, Version: version})
	}
}

func (n *Node) handleGet(ctx *margo.Context) {
	var in getArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ekv: %v", err)
		return
	}
	// Residual grace: whatever the ring says, a locally held value is
	// served — mid-migration the old owner keeps answering for keys it
	// still holds, so stale-routed readers never stall on a handoff.
	v, found, err := n.db.Get(in.Key)
	if err != nil {
		ctx.RespondError("ekv: get: %v", err)
		return
	}
	owner, version, _ := n.route(in.Key)
	if found {
		ctx.Respond(&getResp{Status: statusOK, Version: version, Found: true, Value: v})
		return
	}
	if owner != n.inst.Addr() {
		n.wrongRoutes.Add(1)
		ctx.Respond(&getResp{Status: statusWrongOwner, Version: version})
		return
	}
	// Owner-side miss while donors are still streaming: the pair may be
	// in flight. Read through to every peer that has not settled this
	// round yet; first hit wins.
	for _, donor := range n.pendingDonors(version) {
		var out peerGetResp
		if err := ctx.Forward(donor, RPCPeerGet, &peerGetArgs{Key: in.Key}, &out); err != nil {
			continue
		}
		if out.Found {
			n.readThroughs.Add(1)
			ctx.Respond(&getResp{Status: statusOK, Version: version, Found: true, Value: out.Value})
			return
		}
	}
	ctx.Respond(&getResp{Status: statusOK, Version: version})
}

// Peer handlers (migration protocol).

func (n *Node) handlePeerPut(ctx *margo.Context) {
	var in putArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ekv: %v", err)
		return
	}
	// A retiring node refuses handoffs: accepting one after its final
	// sweep would strand the pair on a departing member while the sender
	// acks the client. The sender redirects instead.
	n.mu.Lock()
	if n.retiring || n.closed {
		n.mu.Unlock()
		ctx.RespondError("ekv: node retiring")
		return
	}
	// A dual-written value is authoritative: apply and mark dirty so a
	// slower migrated snapshot of the same key is discarded. Both happen
	// under mu so they order against Retire's set-retiring.
	if v, ok := n.dirty[string(in.Key)]; !ok || in.Version > v {
		n.dirty[string(in.Key)] = in.Version
	}
	err := n.db.Put(in.Key, in.Value)
	n.mu.Unlock()
	if err != nil {
		ctx.RespondError("ekv: peer put: %v", err)
		return
	}
	ctx.Respond(mercury.Void{})
}

func (n *Node) handlePeerGet(ctx *margo.Context) {
	var in peerGetArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ekv: %v", err)
		return
	}
	v, found, err := n.db.Get(in.Key)
	if err != nil {
		ctx.RespondError("ekv: peer get: %v", err)
		return
	}
	ctx.Respond(&peerGetResp{Found: found, Value: v})
}

func (n *Node) handleMigratePush(ctx *margo.Context) {
	var in migratePushArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ekv: %v", err)
		return
	}
	buf := make([]byte, in.Size)
	if err := ctx.BulkPull(in.Bulk, 0, buf); err != nil {
		ctx.RespondError("ekv: migrate pull: %v", err)
		return
	}
	var pairs packedPairs
	if err := mercury.Decode(buf, &pairs); err != nil {
		ctx.RespondError("ekv: migrate unpack: %v", err)
		return
	}
	if len(pairs.Keys) != len(pairs.Values) || uint32(len(pairs.Keys)) != in.NumPairs {
		ctx.RespondError("ekv: migrate chunk shape mismatch")
		return
	}
	// Refuse the chunk outright when retiring: an ack here would let the
	// donor delete pairs this node is about to walk away from. The whole
	// apply runs under mu so it orders against Retire's set-retiring and
	// cannot land behind the retiring node's final sweep.
	n.mu.Lock()
	if n.retiring || n.closed {
		n.mu.Unlock()
		ctx.RespondError("ekv: node retiring")
		return
	}
	applied := uint64(0)
	var applyErr error
	for i := range pairs.Keys {
		// Dirty-guard: a key directly or dual-written here during this
		// round is newer than any snapshot a donor streamed.
		if n.dirty[string(pairs.Keys[i])] >= in.Version {
			continue
		}
		if applyErr = n.db.Put(pairs.Keys[i], pairs.Values[i]); applyErr != nil {
			break
		}
		applied++
	}
	n.mu.Unlock()
	if applyErr != nil {
		ctx.RespondError("ekv: migrate apply: %v", applyErr)
		return
	}
	n.keysIn.Add(applied)
	ctx.Respond(mercury.Void{})
}

func (n *Node) handleMigrateDone(ctx *margo.Context) {
	var in migrateDoneArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ekv: %v", err)
		return
	}
	n.mu.Lock()
	if n.doneFrom[in.From] < in.Version {
		n.doneFrom[in.From] = in.Version
	}
	// Settlement: once every current peer has declared this round done,
	// no snapshot for it is still in flight — the dirty set for the
	// round can be dropped.
	if n.ring != nil {
		settled, version := true, n.ring.Version()
		for _, m := range n.ring.Members() {
			if m != n.inst.Addr() && n.doneFrom[m] < version {
				settled = false
				break
			}
		}
		if settled {
			for k, v := range n.dirty {
				if v <= version {
					delete(n.dirty, k)
				}
			}
		}
	}
	n.mu.Unlock()
	ctx.Respond(mercury.Void{})
}

// Rebalancing.

// rebalanceLoop is the migration engine: each kick re-runs rounds until
// the newest ring version is fully streamed and settled. A failing
// round (unreachable peer) is retried with backoff up to
// roundRetryLimit, then abandoned — residual grace serving and
// read-through keep the data reachable even when a handoff cannot
// complete.
func (n *Node) rebalanceLoop(self *abt.ULT) {
	attempts := 0
	for {
		n.sem.Acquire(self)
		for {
			n.mu.Lock()
			if n.closed || n.retiring {
				n.mu.Unlock()
				if n.closed {
					return
				}
				break
			}
			r := n.ring
			if r == nil || n.lastRound >= r.Version() {
				n.mu.Unlock()
				break
			}
			n.mu.Unlock()
			if n.runRound(self, r) {
				n.mu.Lock()
				if n.lastRound < r.Version() {
					n.lastRound = r.Version()
				}
				n.mu.Unlock()
				attempts = 0
				continue
			}
			attempts++
			if attempts >= roundRetryLimit {
				n.mu.Lock()
				if n.lastRound < r.Version() {
					n.lastRound = r.Version()
				}
				n.mu.Unlock()
				attempts = 0
				continue
			}
			self.Sleep(2 * time.Millisecond)
		}
	}
}

// runRound streams every locally held pair the ring assigns elsewhere
// to its owner, then broadcasts the round-done marker. Scanning repeats
// until a sweep finds nothing to move (writes landing mid-round are
// picked up by the next sweep). Reports whether the round fully
// succeeded.
func (n *Node) runRound(self *abt.ULT, r *kv.Ring) bool {
	n.migStarted.Add(1)
	ok := true
	for sweep := 0; sweep < 8; sweep++ {
		moved, err := n.sweepOnce(self, r)
		if err != nil {
			ok = false
			break
		}
		if moved == 0 {
			break
		}
	}
	if !ok {
		// A failed sweep means misplaced pairs may still sit here. Do NOT
		// claim the round done — owners would stop reading through to us
		// while we still hold their keys. The retry re-sweeps first.
		return false
	}
	// Round-done markers go to every member — even after a zero-key
	// round — so owners can retire their read-through fan-out to us.
	done := migrateDoneArgs{Version: r.Version(), From: n.inst.Addr()}
	for _, m := range r.Members() {
		if m == n.inst.Addr() {
			continue
		}
		if err := n.inst.ForwardTimeout(self, m, RPCMigrateDone, &done, nil, time.Second); err != nil {
			ok = false
		}
	}
	if ok {
		n.migCompleted.Add(1)
	}
	return ok
}

// sweepOnce scans the local store and streams one batch of misplaced
// pairs per destination, deleting local copies only after the
// destination acked the chunk. Returns how many pairs moved.
func (n *Node) sweepOnce(self *abt.ULT, r *kv.Ring) (int, error) {
	pairs, err := n.db.List(nil, n.db.Len()+migrateChunk)
	if err != nil {
		return 0, err
	}
	byDest := make(map[string]*packedPairs)
	selfAddr := n.inst.Addr()
	for _, pr := range pairs {
		dest := r.Owner(pr.Key)
		if dest == selfAddr || dest == "" {
			continue
		}
		c := byDest[dest]
		if c == nil {
			c = &packedPairs{}
			byDest[dest] = c
		}
		c.Keys = append(c.Keys, pr.Key)
		c.Values = append(c.Values, pr.Value)
	}
	moved := 0
	for dest, all := range byDest {
		for off := 0; off < len(all.Keys); off += migrateChunk {
			end := off + migrateChunk
			if end > len(all.Keys) {
				end = len(all.Keys)
			}
			chunk := packedPairs{Keys: all.Keys[off:end], Values: all.Values[off:end]}
			if err := n.pushChunk(self, dest, r.Version(), &chunk); err != nil {
				return moved, err
			}
			// Acked: the destination holds the pairs (or newer dual-
			// written values). Drop the residual copies.
			for _, k := range chunk.Keys {
				if _, err := n.db.Delete(k); err != nil {
					return moved, err
				}
			}
			moved += len(chunk.Keys)
			n.keysOut.Add(uint64(len(chunk.Keys)))
		}
	}
	return moved, nil
}

// pushChunk ships one packed chunk over the bulk path.
func (n *Node) pushChunk(self *abt.ULT, dest string, version uint64, chunk *packedPairs) error {
	buf, err := mercury.Encode(chunk)
	if err != nil {
		return err
	}
	bulk := n.inst.BulkCreate(buf)
	defer n.inst.BulkFree(bulk)
	args := migratePushArgs{
		Version:  version,
		NumPairs: uint32(len(chunk.Keys)),
		Bulk:     bulk,
		Size:     uint64(len(buf)),
	}
	return n.inst.Forward(self, dest, RPCMigratePush, &args, nil)
}

// Scale-in.

// Retire hands every locally held pair to the surviving members and
// leaves the group: the controlled scale-in path. After Retire the node
// answers every routed op with a redirect. Safe to call at most once;
// subsequent calls are no-ops.
func (n *Node) Retire(self *abt.ULT) error {
	n.mu.Lock()
	if n.retiring || n.closed {
		n.mu.Unlock()
		return nil
	}
	n.retiring = true
	r := n.ring
	var shrunk *kv.Ring
	var rest []string
	if r != nil && r.Has(n.inst.Addr()) {
		// Route by the survivor set immediately, atomically with the
		// retiring flag: our own view of the ring drops self before the
		// root even processes the leave, so no op routed here after this
		// point sees this node as owner — it dual-writes outward or
		// redirects instead.
		rest = make([]string, 0, r.Size()-1)
		for _, m := range r.Members() {
			if m != n.inst.Addr() {
				rest = append(rest, m)
			}
		}
		shrunk = kv.NewRing(r.Version()+1, rest)
		n.ring = shrunk
	}
	n.mu.Unlock()
	if shrunk == nil {
		return n.agent.Leave(self, n.root, n.group)
	}

	// Stream everything out. A failed sweep usually means a push target
	// itself left or began retiring after our snapshot — refresh the
	// membership from the root, recompute the survivor ring, and retry,
	// so cascaded scale-ins hand off along the live chain instead of
	// pushing at ghosts. Data is left behind only if survivors stay
	// persistently unreachable through every retry — the same bar a
	// crashed node sets, and the reason Drain invokes this while the
	// endpoint can still forward.
	var lastErr error
	failures := 0
	for attempt := 0; attempt < 10*roundRetryLimit; attempt++ {
		moved, err := n.sweepOnce(self, shrunk)
		if err == nil {
			lastErr = nil
			if moved == 0 {
				break
			}
			failures = 0
			continue
		}
		lastErr = err
		failures++
		if failures >= roundRetryLimit {
			break
		}
		if v, rerr := n.agent.Refresh(self, n.root, n.group); rerr == nil {
			rest = rest[:0]
			for _, m := range v.Addrs() {
				if m != n.inst.Addr() {
					rest = append(rest, m)
				}
			}
			if len(rest) > 0 {
				shrunk = kv.NewRing(v.Version+1, rest)
				n.mu.Lock()
				n.ring = shrunk
				n.mu.Unlock()
			}
		}
		self.Sleep(2 * time.Millisecond)
	}
	if lastErr != nil && n.db.Len() > 0 {
		// The handoff did not complete: keep group membership (and the
		// read-through path to us) alive rather than walking away with
		// acked pairs. The caller may retry or escalate.
		n.mu.Lock()
		n.retiring = false
		n.mu.Unlock()
		return lastErr
	}
	done := migrateDoneArgs{Version: shrunk.Version(), From: n.inst.Addr()}
	for _, m := range shrunk.Members() {
		_ = n.inst.ForwardTimeout(self, m, RPCMigrateDone, &done, nil, time.Second)
	}
	if err := n.agent.Leave(self, n.root, n.group); err != nil && lastErr == nil {
		lastErr = err
	}
	return lastErr
}

// drainHook is the margo OnDrain hook: a node drained mid-migration
// hands off its shards (including any in-flight transfer residue)
// instead of stranding them. Runs on the draining goroutine; the
// handoff itself needs a ULT for its forwards.
func (n *Node) drainHook(ctx context.Context) error {
	var err error
	u := n.inst.Run("ekv-drain-handoff", func(self *abt.ULT) {
		err = n.Retire(self)
	})
	join := make(chan struct{})
	go func() { u.Join(nil); close(join) }()
	select {
	case <-join:
	case <-ctx.Done():
		return fmt.Errorf("ekv: drain handoff interrupted: %w", ctx.Err())
	}
	n.stopWorker()
	return err
}

// stopWorker terminates the rebalance ULT.
func (n *Node) stopWorker() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.sem.Release()
	n.worker.Join(nil)
}

// Close stops the rebalance worker and the local store. The margo
// instance is not touched.
func (n *Node) Close() error {
	n.stopWorker()
	return n.db.Close()
}
