package ekv

import "symbiosys/internal/mercury"

// RPC names exported by an elastic KV node. Client-facing ops carry the
// caller's ring version so the node can detect stale routing; peer ops
// implement the migration protocol (§DESIGN 11.3).
const (
	RPCPut         = "ekv_put_rpc"
	RPCGet         = "ekv_get_rpc"
	RPCPeerPut     = "ekv_peer_put_rpc"
	RPCPeerGet     = "ekv_peer_get_rpc"
	RPCMigratePush = "ekv_migrate_push_rpc"
	RPCMigrateDone = "ekv_migrate_done_rpc"
)

// ClientRPCNames lists the client-facing RPCs.
func ClientRPCNames() []string { return []string{RPCPut, RPCGet} }

// PeerRPCNames lists the node-to-node migration RPCs.
func PeerRPCNames() []string {
	return []string{RPCPeerPut, RPCPeerGet, RPCMigratePush, RPCMigrateDone}
}

// Op statuses. A wrong-owner reply is a routing redirect, not a
// failure: the client refreshes its view and retries the new owner.
const (
	statusOK         = uint8(0)
	statusWrongOwner = uint8(1)
)

type putArgs struct {
	Key     []byte
	Value   []byte
	Version uint64 // ring version the caller routed with
}

func (a *putArgs) Proc(p *mercury.Proc) error {
	p.Bytes(&a.Key)
	p.Bytes(&a.Value)
	p.Uint64(&a.Version)
	return p.Err()
}

type opResp struct {
	Status  uint8
	Version uint64 // responder's ring version (refresh hint on redirect)
}

func (a *opResp) Proc(p *mercury.Proc) error {
	p.Uint8(&a.Status)
	p.Uint64(&a.Version)
	return p.Err()
}

type getArgs struct {
	Key     []byte
	Version uint64
}

func (a *getArgs) Proc(p *mercury.Proc) error {
	p.Bytes(&a.Key)
	p.Uint64(&a.Version)
	return p.Err()
}

type getResp struct {
	Status  uint8
	Version uint64
	Found   bool
	Value   []byte
}

func (a *getResp) Proc(p *mercury.Proc) error {
	p.Uint8(&a.Status)
	p.Uint64(&a.Version)
	p.Bool(&a.Found)
	p.Bytes(&a.Value)
	return p.Err()
}

type peerGetArgs struct {
	Key []byte
}

func (a *peerGetArgs) Proc(p *mercury.Proc) error {
	p.Bytes(&a.Key)
	return p.Err()
}

type peerGetResp struct {
	Found bool
	Value []byte
}

func (a *peerGetResp) Proc(p *mercury.Proc) error {
	p.Bool(&a.Found)
	p.Bytes(&a.Value)
	return p.Err()
}

// migratePushArgs ships one chunk of a moving range: the pairs are
// packed into one buffer exposed for the destination's bulk pull —
// the same one-sided path the sdskv put_packed hot path uses.
type migratePushArgs struct {
	Version  uint64 // rebalance round (ring version) this chunk belongs to
	NumPairs uint32
	Bulk     mercury.Bulk
	Size     uint64
}

func (a *migratePushArgs) Proc(p *mercury.Proc) error {
	p.Uint64(&a.Version)
	p.Uint32(&a.NumPairs)
	a.Bulk.Proc(p)
	p.Uint64(&a.Size)
	return p.Err()
}

// packedPairs is the bulk payload of one migration chunk.
type packedPairs struct {
	Keys   [][]byte
	Values [][]byte
}

func (a *packedPairs) Proc(p *mercury.Proc) error {
	p.BytesSlice(&a.Keys)
	p.BytesSlice(&a.Values)
	return p.Err()
}

// migrateDoneArgs is the round-settlement marker: the sender has
// finished streaming everything it owed for ring version Version.
// Every member sends one to every other member each round — including
// zero-key rounds — so receivers can retire their read-through fan-out.
type migrateDoneArgs struct {
	Version uint64
	From    string
}

func (a *migrateDoneArgs) Proc(p *mercury.Proc) error {
	p.Uint64(&a.Version)
	p.String(&a.From)
	return p.Err()
}
