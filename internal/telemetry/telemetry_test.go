package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"symbiosys/internal/core"
)

// fakeSource is a scripted Source for driving the sampler without a
// full Margo stack.
type fakeSource struct {
	addr  string
	ticks atomic.Uint64
	cps   []CallpathStat
}

func (f *fakeSource) Addr() string { return f.addr }

func (f *fakeSource) TelemetrySample() Sample {
	n := f.ticks.Add(1)
	return Sample{
		UnixNanos:  int64(n) * int64(time.Second),
		CQDepth:    int(n % 7),
		EventsRead: 10 * n,
		TraceLen:   int(n),
		PVars: []PVarValue{
			{Name: "num_ofi_events_read", Counter: true, Value: 10 * n},
			{Name: "completion_queue_size", Value: n % 7},
		},
		Pools: []PoolStat{
			{Name: "handlers", Runnable: int64(n), Blocked: 2, Executed: 5 * n},
		},
	}
}

func (f *fakeSource) CallpathStats() []CallpathStat { return f.cps }

func makeCallpath() CallpathStat {
	var st core.CallStats
	st.Count = 100
	st.CumNanos = 100 * 50_000
	st.MinNanos = 10_000
	st.MaxNanos = 900_000
	st.Hist[core.HistBucket(50_000)] = 100
	return CallpathStat{Side: "target", Path: "put", Peer: "node0/c0", Stats: st}
}

func TestSeriesRingAndRates(t *testing.T) {
	s := NewSeries(Counter, 4)
	for i := 1; i <= 6; i++ {
		s.Push(int64(i)*int64(time.Second), float64(10*i))
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4 (bounded ring)", s.Len())
	}
	pts := s.Points()
	if pts[0].Value != 30 || pts[3].Value != 60 {
		t.Fatalf("window = %+v, want values 30..60", pts)
	}
	if d := s.Delta(); d != 10 {
		t.Fatalf("delta = %v, want 10", d)
	}
	if r := s.Rate(); r != 10 {
		t.Fatalf("rate = %v, want 10/s", r)
	}
	if wr := s.WindowRate(); wr != 10 {
		t.Fatalf("window rate = %v, want 10/s", wr)
	}
	if last, ok := s.Last(); !ok || last.Value != 60 {
		t.Fatalf("last = %+v %v", last, ok)
	}
}

func TestSamplerSeriesDerivation(t *testing.T) {
	src := &fakeSource{addr: "node0/s0", cps: []CallpathStat{makeCallpath()}}
	sp := NewSampler(src, Options{WindowPoints: 16})
	for i := 0; i < 3; i++ {
		sp.SampleOnce()
	}
	if sp.Ticks() != 3 {
		t.Fatalf("ticks = %d, want 3", sp.Ticks())
	}
	if r := sp.Rate("events_read"); r != 10 {
		t.Fatalf("events_read rate = %v, want 10/s", r)
	}
	if d := sp.Delta("pvar/num_ofi_events_read"); d != 10 {
		t.Fatalf("pvar delta = %v, want 10", d)
	}
	kind, pts, ok := sp.SeriesSnapshot("pool/handlers/blocked")
	if !ok || kind != Gauge || len(pts) != 3 || pts[2].Value != 2 {
		t.Fatalf("pool blocked series = %v %v %v", kind, pts, ok)
	}
	if _, _, ok := sp.SeriesSnapshot("no_such"); ok {
		t.Fatal("unknown series reported ok")
	}
	last, ok := sp.Last()
	if !ok || last.EventsRead != 30 {
		t.Fatalf("last = %+v %v", last, ok)
	}
}

func TestSamplerStartStop(t *testing.T) {
	src := &fakeSource{addr: "node0/s0"}
	sp := NewSampler(src, Options{Interval: time.Millisecond})
	sp.Start()
	deadline := time.Now().Add(2 * time.Second)
	for sp.Ticks() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sp.Stop()
	if sp.Ticks() < 3 {
		t.Fatalf("ticks = %d, want >= 3", sp.Ticks())
	}
	n := sp.Ticks()
	time.Sleep(5 * time.Millisecond)
	if sp.Ticks() != n {
		t.Fatal("sampler kept ticking after Stop")
	}
	// Stop without Start must not hang; double Stop must be safe.
	sp2 := NewSampler(src, Options{})
	sp2.Stop()
	sp2.Stop()
}

// checkExposition parses Prometheus text exposition, asserting every
// line is a comment or a well-formed sample, and returns the samples.
func checkExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	samples := make(map[string]string)
	types := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := types[base]; !ok && types[name] == "" {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		samples[key] = val
	}
	return samples
}

func TestExposerMetricsAndSnapshot(t *testing.T) {
	src := &fakeSource{addr: "node0/s0", cps: []CallpathStat{makeCallpath()}}
	sp := NewSampler(src, Options{WindowPoints: 8})
	sp.SampleOnce()
	sp.SampleOnce()

	ex := NewExposer()
	ex.Register(sp)
	addr, err := ex.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	body := sb.String()
	samples := checkExposition(t, body)

	for _, want := range []string{
		`symbiosys_cq_depth{instance="node0/s0"}`,
		`symbiosys_pvar_num_ofi_events_read{instance="node0/s0"}`,
		`symbiosys_pool_blocked{instance="node0/s0",pool="handlers"}`,
		`symbiosys_callpath_latency_seconds_count{instance="node0/s0",side="target",path="put",peer="node0/c0"}`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("missing sample %q in exposition:\n%s", want, body)
		}
	}
	// The +Inf bucket must equal the count.
	inf := `symbiosys_callpath_latency_seconds_bucket{instance="node0/s0",side="target",path="put",peer="node0/c0",le="+Inf"}`
	if samples[inf] != "100" {
		t.Errorf("+Inf bucket = %q, want 100", samples[inf])
	}

	// Histogram buckets must be cumulative and non-decreasing.
	prev := -1.0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "symbiosys_callpath_latency_seconds_bucket") {
			var v float64
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v)
			if v < prev {
				t.Fatalf("bucket counts decreased at %q", line)
			}
			prev = v
		}
	}

	snapResp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer snapResp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(snapResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Instances) != 1 || snap.Instances[0].Addr != "node0/s0" {
		t.Fatalf("snapshot instances = %+v", snap.Instances)
	}
	if snap.Instances[0].Ticks != 2 {
		t.Fatalf("snapshot ticks = %d, want 2", snap.Instances[0].Ticks)
	}
	if len(snap.Instances[0].Callpaths) != 1 {
		t.Fatalf("snapshot callpaths = %+v", snap.Instances[0].Callpaths)
	}
	if _, ok := snap.Instances[0].Series["events_read"]; !ok {
		t.Fatal("snapshot missing events_read series")
	}
}

func TestHistogramPercentileMatchesProfile(t *testing.T) {
	// The histogram the exposer renders and the profile-dump percentile
	// must agree within one bucket width (the ISSUE acceptance bound).
	cp := makeCallpath()
	p95 := cp.Stats.Percentile(95)
	lo, hi := core.HistBucketBounds(core.HistBucket(uint64(p95)))
	if uint64(p95) < lo || uint64(p95) >= hi {
		t.Fatalf("p95 %v outside its own bucket [%d,%d)", p95, lo, hi)
	}
	rows := renderCallpathHistograms("i", []CallpathStat{cp})
	// Find the first bucket whose cumulative count reaches 95% of 100.
	var bucketLe float64
	for _, r := range rows {
		if !strings.Contains(r, "_bucket") || strings.Contains(r, `le="+Inf"`) {
			continue
		}
		var cum float64
		fmt.Sscanf(r[strings.LastIndexByte(r, ' ')+1:], "%g", &cum)
		if cum >= 95 {
			i := strings.Index(r, `le="`)
			fmt.Sscanf(r[i+4:], "%g", &bucketLe)
			break
		}
	}
	if bucketLe == 0 {
		t.Fatal("no bucket reaches the 95th percentile")
	}
	// The le boundary is the upper edge of the bucket holding p95.
	if got := p95.Seconds(); got > bucketLe || bucketLe > 2*float64(hi)/1e9 {
		t.Fatalf("p95 %v vs bucket le %v: disagree by more than a bucket", got, bucketLe)
	}
}

// TestExposerCloseReleasesServer: Close must actually shut the HTTP
// server down — the listener stops accepting, the serve goroutine has
// exited by the time Close returns, the port is immediately reusable,
// and a second Close is a no-op. Regression test for the exposer
// leaking its server until process exit.
func TestExposerCloseReleasesServer(t *testing.T) {
	src := &fakeSource{addr: "node0/s0"}
	sp := NewSampler(src, Options{WindowPoints: 4})
	sp.SampleOnce()

	ex := NewExposer()
	ex.Register(sp)
	addr, err := ex.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape before close: %v", err)
	}
	resp.Body.Close()

	if err := ex.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after Close")
	}
	// The goroutine released the port: rebinding the same address works.
	ex2 := NewExposer()
	ex2.Register(sp)
	if _, err := ex2.Serve(addr); err != nil {
		t.Fatalf("rebind %s after close: %v", addr, err)
	}
	defer ex2.Close()

	// Idempotent: closing again (or an exposer that never served) is a
	// clean no-op.
	if err := ex.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := NewExposer().Close(); err != nil {
		t.Fatalf("close without serve: %v", err)
	}
}
