// Package telemetry is the live observation plane over the SYMBIOSYS
// measurement pipeline. Where the profiling and tracing layers
// (internal/core) accumulate state for end-of-run analysis, telemetry
// samples that state on a periodic tick into bounded time-series rings
// and exposes the result over HTTP — Prometheus text exposition on
// /metrics and a JSON snapshot on /snapshot — so an operator (or the
// policy engine) can watch a run while it executes instead of waiting
// for the post-mortem profile dump.
//
// The package sits below margo in the import order: it defines the
// Source interface that margo.Instance implements, so it never imports
// the layers it observes.
package telemetry

// Kind classifies a series for exposition: gauges go up and down
// (queue depths, pool occupancy), counters only accumulate (events
// read, trace drops) and are meaningful as deltas and rates.
type Kind int

// Series kinds.
const (
	Gauge Kind = iota
	Counter
)

// String names the kind using Prometheus type vocabulary.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Point is one timestamped observation.
type Point struct {
	UnixNanos int64   `json:"t"`
	Value     float64 `json:"v"`
}

// Series is a bounded ring of observations of one metric. Pushing past
// capacity evicts the oldest point, so a sampler running forever holds
// a sliding window rather than growing without bound. Series is not
// internally synchronized; the owning Sampler serializes access.
type Series struct {
	kind Kind
	buf  []Point
	head int // index of oldest point
	n    int
}

// NewSeries creates a ring holding up to capacity points (minimum 2, so
// deltas and rates are always derivable once two ticks have elapsed).
func NewSeries(kind Kind, capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{kind: kind, buf: make([]Point, capacity)}
}

// Kind reports whether the series is a gauge or a counter.
func (s *Series) Kind() Kind { return s.kind }

// Len reports the number of buffered points.
func (s *Series) Len() int { return s.n }

// Push appends an observation, evicting the oldest when full.
func (s *Series) Push(unixNanos int64, v float64) {
	i := (s.head + s.n) % len(s.buf)
	s.buf[i] = Point{UnixNanos: unixNanos, Value: v}
	if s.n < len(s.buf) {
		s.n++
	} else {
		s.head = (s.head + 1) % len(s.buf)
	}
}

// Points returns a chronological copy of the buffered window.
func (s *Series) Points() []Point {
	out := make([]Point, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.head+i)%len(s.buf)]
	}
	return out
}

// Last returns the newest point, if any.
func (s *Series) Last() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	return s.buf[(s.head+s.n-1)%len(s.buf)], true
}

// First returns the oldest buffered point, if any.
func (s *Series) First() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	return s.buf[s.head], true
}

// Delta returns newest minus previous value — the per-tick increment
// for counters (zero until two points exist).
func (s *Series) Delta() float64 {
	if s.n < 2 {
		return 0
	}
	last := s.buf[(s.head+s.n-1)%len(s.buf)]
	prev := s.buf[(s.head+s.n-2)%len(s.buf)]
	return last.Value - prev.Value
}

// Rate returns the per-second rate of change between the two newest
// points (zero until two points exist or if time stood still).
func (s *Series) Rate() float64 {
	if s.n < 2 {
		return 0
	}
	last := s.buf[(s.head+s.n-1)%len(s.buf)]
	prev := s.buf[(s.head+s.n-2)%len(s.buf)]
	dt := float64(last.UnixNanos-prev.UnixNanos) / 1e9
	if dt <= 0 {
		return 0
	}
	return (last.Value - prev.Value) / dt
}

// WindowRate returns the per-second rate over the entire buffered
// window — smoother than Rate for bursty counters.
func (s *Series) WindowRate() float64 {
	if s.n < 2 {
		return 0
	}
	first := s.buf[s.head]
	last := s.buf[(s.head+s.n-1)%len(s.buf)]
	dt := float64(last.UnixNanos-first.UnixNanos) / 1e9
	if dt <= 0 {
		return 0
	}
	return (last.Value - first.Value) / dt
}
