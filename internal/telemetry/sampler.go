package telemetry

import (
	"sort"
	"sync"
	"time"

	"symbiosys/internal/core"
)

// PVarValue is one performance variable read through the instance's
// PVAR session at sampling time (the paper's Figure 3 handshake, driven
// on a timer instead of per-request).
type PVarValue struct {
	Name string `json:"name"`
	// Counter marks monotone variables; the rest are exported as gauges.
	Counter bool   `json:"counter,omitempty"`
	Value   uint64 `json:"value"`
}

// PoolStat is one Argobots pool's occupancy at sampling time.
type PoolStat struct {
	Name     string `json:"name"`
	Runnable int64  `json:"runnable"`
	Blocked  int64  `json:"blocked"`
	Created  uint64 `json:"created"`
	Executed uint64 `json:"executed"`
}

// Sample is one tick's snapshot of an instance: PVARs, pool occupancy,
// na-layer completion-queue state, collector health, and runtime stats.
// Cumulative counters stay cumulative here; the sampler's series derive
// deltas and rates.
type Sample struct {
	UnixNanos int64 `json:"unix_nanos"`

	PVars []PVarValue `json:"pvars,omitempty"`
	Pools []PoolStat  `json:"pools,omitempty"`

	// na completion-queue state (the t11→t12 backlog of the paper).
	CQDepth      int    `json:"cq_depth"`
	EventsRead   uint64 `json:"events_read"`
	EventsPosted uint64 `json:"events_posted"`
	CQOverflows  uint64 `json:"cq_overflows"`

	// Collector health.
	TraceLen     int    `json:"trace_len"`
	TraceDropped uint64 `json:"trace_dropped"`
	SinkErrors   uint64 `json:"sink_errors"`
	OriginCalls  uint64 `json:"origin_calls"`
	TargetCalls  uint64 `json:"target_calls"`

	// Cumulative handler/total nanos on the target side; the policy
	// engine's live feed derives windowed handler fractions from their
	// series deltas.
	TargetHandlerNanos uint64 `json:"target_handler_nanos"`
	TargetTotalNanos   uint64 `json:"target_total_nanos"`

	// Client-side resilience counters (margo retry policy) and the
	// fabric's injected-fault totals, so a failing link and the retries
	// absorbing it are visible live in /metrics and symmon.
	RPCRetries    uint64 `json:"rpc_retries"`
	RPCTimeouts   uint64 `json:"rpc_timeouts"`
	RPCExhausted  uint64 `json:"rpc_exhausted"`
	RPCCancels    uint64 `json:"rpc_cancels"`
	FaultDrops    uint64 `json:"fault_drops"`
	FaultDups     uint64 `json:"fault_dups"`
	FaultDelays   uint64 `json:"fault_delays"`
	FaultRefusals uint64 `json:"fault_refusals"`

	// Overload-control plane: server-side shed/expired totals, the
	// client-side circuit breaker counters, and the admission state
	// (in-flight handlers, draining flag).
	OverloadShed     uint64 `json:"overload_shed"`
	OverloadExpired  uint64 `json:"overload_expired"`
	BreakerTrips     uint64 `json:"breaker_trips"`
	BreakerFastFails uint64 `json:"breaker_fastfails"`
	BreakerOpen      int    `json:"breaker_open"`
	AdmissionDepth   int64  `json:"admission_depth"`
	Draining         bool   `json:"draining"`

	// Client-side coalescer (batched forwards): cumulative flush, op,
	// byte, and retry counters, per-flush-reason counts, and window
	// occupancy, so the paper's C4 batching effect is observable live
	// (coalesce ratio = ops per vectored forward).
	BatchFlushes       uint64            `json:"batch_flushes,omitempty"`
	BatchOps           uint64            `json:"batch_ops,omitempty"`
	BatchBytes         uint64            `json:"batch_bytes,omitempty"`
	BatchRetries       uint64            `json:"batch_retries,omitempty"`
	BatchCoalesceRatio float64           `json:"batch_coalesce_ratio,omitempty"`
	BatchOccupancy     uint64            `json:"batch_occupancy,omitempty"`
	BatchOccupancyHWM  uint64            `json:"batch_occupancy_hwm,omitempty"`
	BatchFlushReasons  map[string]uint64 `json:"batch_flush_reasons,omitempty"`

	// Scheduler-core activity (work-stealing ULT runtime) and the
	// adaptive progress engine's spin/park transitions: together they
	// show whether ES capacity matches load (paper C1/C2) and whether
	// the progress loop is running hot or parked (C5/C6).
	SchedQuanta       uint64 `json:"sched_quanta"`
	SchedSteals       uint64 `json:"sched_steals"`
	SchedParks        uint64 `json:"sched_parks"`
	SchedWakes        uint64 `json:"sched_wakes"`
	ProgressSpinPolls uint64 `json:"progress_spin_polls"`
	ProgressParks     uint64 `json:"progress_parks"`

	// Instance tuning knobs, exported so remediations show up in the
	// series the moment a policy applies them.
	OFIMaxEvents   int   `json:"ofi_max_events"`
	HandlerStreams int   `json:"handler_streams"`
	RPCsInFlight   int64 `json:"rpcs_in_flight"`

	// Runtime stats (from core.SysSampler) plus its refresh counter, so
	// the cost of system sampling is itself observable.
	HeapBytes    uint64 `json:"heap_bytes"`
	Goroutines   int    `json:"goroutines"`
	SysRefreshes uint64 `json:"sys_refreshes"`
}

// CallpathStat is one callpath's accumulated latency statistics,
// fetched on demand at scrape time (histograms are not ring-buffered
// per tick; CallStats is already cumulative and merge-friendly).
type CallpathStat struct {
	Side  string         `json:"side"` // "origin" or "target"
	Path  string         `json:"path"` // human-readable breadcrumb
	Peer  string         `json:"peer"`
	Stats core.CallStats `json:"stats"`
}

// Source is the sampling surface an observed instance exposes.
// margo.Instance implements it; tests substitute fakes.
type Source interface {
	// Addr identifies the instance (its fabric address).
	Addr() string
	// TelemetrySample snapshots the instance's live state.
	TelemetrySample() Sample
	// CallpathStats returns the per-callpath latency statistics.
	CallpathStats() []CallpathStat
}

// Options configures a Sampler.
type Options struct {
	// Interval is the sampling tick. Default 100ms.
	Interval time.Duration
	// WindowPoints bounds each series ring. Default 600 (one minute of
	// history at the default tick).
	WindowPoints int
}

func (o *Options) fillDefaults() {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.WindowPoints <= 0 {
		o.WindowPoints = 600
	}
}

// Sampler periodically snapshots one Source into named time-series
// rings. It is safe for concurrent use: the tick goroutine writes under
// the same mutex scrapers read under.
type Sampler struct {
	src  Source
	opts Options

	mu     sync.Mutex
	series map[string]*Series
	order  []string // insertion order, for stable exposition
	last   Sample
	ticks  uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler builds a sampler over src. Call Start to begin ticking, or
// SampleOnce to drive it manually (tests, symmon-style pull models).
func NewSampler(src Source, opts Options) *Sampler {
	opts.fillDefaults()
	return &Sampler{
		src:    src,
		opts:   opts,
		series: make(map[string]*Series),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Source returns the observed instance.
func (s *Sampler) Source() Source { return s.src }

// Interval reports the configured tick.
func (s *Sampler) Interval() time.Duration { return s.opts.Interval }

// Start launches the periodic tick goroutine. Safe to call once.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.opts.Interval)
			defer t.Stop()
			s.SampleOnce()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.SampleOnce()
				}
			}
		}()
	})
}

// Stop halts the tick goroutine and waits for it to exit. Safe to call
// without Start and safe to call twice.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: unblock Stop
	<-s.done
}

// SampleOnce takes one snapshot and folds it into the series rings.
func (s *Sampler) SampleOnce() Sample {
	sm := s.src.TelemetrySample()
	if sm.UnixNanos == 0 {
		sm.UnixNanos = time.Now().UnixNano()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = sm
	s.ticks++
	t := sm.UnixNanos
	s.push(t, "cq_depth", Gauge, float64(sm.CQDepth))
	s.push(t, "events_read", Counter, float64(sm.EventsRead))
	s.push(t, "events_posted", Counter, float64(sm.EventsPosted))
	s.push(t, "cq_overflows", Counter, float64(sm.CQOverflows))
	s.push(t, "trace_len", Gauge, float64(sm.TraceLen))
	s.push(t, "trace_dropped", Counter, float64(sm.TraceDropped))
	s.push(t, "sink_errors", Counter, float64(sm.SinkErrors))
	s.push(t, "origin_calls", Counter, float64(sm.OriginCalls))
	s.push(t, "target_calls", Counter, float64(sm.TargetCalls))
	s.push(t, "target_handler_nanos", Counter, float64(sm.TargetHandlerNanos))
	s.push(t, "target_total_nanos", Counter, float64(sm.TargetTotalNanos))
	s.push(t, "rpc_retries_total", Counter, float64(sm.RPCRetries))
	s.push(t, "rpc_timeouts_total", Counter, float64(sm.RPCTimeouts))
	s.push(t, "rpc_exhausted_total", Counter, float64(sm.RPCExhausted))
	s.push(t, "rpc_cancels_total", Counter, float64(sm.RPCCancels))
	s.push(t, "fault_drops_total", Counter, float64(sm.FaultDrops))
	s.push(t, "fault_dups_total", Counter, float64(sm.FaultDups))
	s.push(t, "fault_delays_total", Counter, float64(sm.FaultDelays))
	s.push(t, "fault_refusals_total", Counter, float64(sm.FaultRefusals))
	s.push(t, "overload_shed_total", Counter, float64(sm.OverloadShed))
	s.push(t, "overload_expired_total", Counter, float64(sm.OverloadExpired))
	s.push(t, "overload_breaker_trips_total", Counter, float64(sm.BreakerTrips))
	s.push(t, "overload_breaker_fastfail_total", Counter, float64(sm.BreakerFastFails))
	s.push(t, "overload_breaker_open", Gauge, float64(sm.BreakerOpen))
	s.push(t, "overload_admission_depth", Gauge, float64(sm.AdmissionDepth))
	draining := 0.0
	if sm.Draining {
		draining = 1
	}
	s.push(t, "overload_draining", Gauge, draining)
	s.push(t, "batch_flushes_total", Counter, float64(sm.BatchFlushes))
	s.push(t, "batch_ops_total", Counter, float64(sm.BatchOps))
	s.push(t, "batch_bytes_total", Counter, float64(sm.BatchBytes))
	s.push(t, "batch_retries_total", Counter, float64(sm.BatchRetries))
	s.push(t, "batch_coalesce_ratio", Gauge, sm.BatchCoalesceRatio)
	s.push(t, "batch_window_occupancy", Gauge, float64(sm.BatchOccupancy))
	s.push(t, "batch_window_occupancy_hwm", Gauge, float64(sm.BatchOccupancyHWM))
	if len(sm.BatchFlushReasons) > 0 {
		// Sorted so series registration (first-seen order) is stable
		// across runs regardless of map iteration.
		reasons := make([]string, 0, len(sm.BatchFlushReasons))
		for r := range sm.BatchFlushReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			s.push(t, "batch_flush_reason/"+r, Counter, float64(sm.BatchFlushReasons[r]))
		}
	}
	s.push(t, "sched_quanta_total", Counter, float64(sm.SchedQuanta))
	s.push(t, "sched_steals_total", Counter, float64(sm.SchedSteals))
	s.push(t, "sched_parks_total", Counter, float64(sm.SchedParks))
	s.push(t, "sched_wakes_total", Counter, float64(sm.SchedWakes))
	s.push(t, "progress_spin_polls_total", Counter, float64(sm.ProgressSpinPolls))
	s.push(t, "progress_parks_total", Counter, float64(sm.ProgressParks))
	s.push(t, "ofi_max_events", Gauge, float64(sm.OFIMaxEvents))
	s.push(t, "handler_streams", Gauge, float64(sm.HandlerStreams))
	s.push(t, "rpcs_in_flight", Gauge, float64(sm.RPCsInFlight))
	s.push(t, "heap_bytes", Gauge, float64(sm.HeapBytes))
	s.push(t, "goroutines", Gauge, float64(sm.Goroutines))
	s.push(t, "sys_refreshes", Counter, float64(sm.SysRefreshes))
	for _, pv := range sm.PVars {
		k := Gauge
		if pv.Counter {
			k = Counter
		}
		s.push(t, "pvar/"+pv.Name, k, float64(pv.Value))
	}
	for _, p := range sm.Pools {
		s.push(t, "pool/"+p.Name+"/runnable", Gauge, float64(p.Runnable))
		s.push(t, "pool/"+p.Name+"/blocked", Gauge, float64(p.Blocked))
		s.push(t, "pool/"+p.Name+"/created", Counter, float64(p.Created))
		s.push(t, "pool/"+p.Name+"/executed", Counter, float64(p.Executed))
	}
	return sm
}

// push must run with s.mu held.
func (s *Sampler) push(t int64, name string, kind Kind, v float64) {
	sr := s.series[name]
	if sr == nil {
		sr = NewSeries(kind, s.opts.WindowPoints)
		s.series[name] = sr
		s.order = append(s.order, name)
	}
	sr.Push(t, v)
}

// Ticks reports how many samples have been taken.
func (s *Sampler) Ticks() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Last returns the most recent sample, if one has been taken.
func (s *Sampler) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.ticks > 0
}

// SeriesNames returns the known series names in first-seen order.
func (s *Sampler) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// SeriesSnapshot returns an immutable copy of one series' window, with
// its kind, or ok=false if the series does not exist yet.
func (s *Sampler) SeriesSnapshot(name string) (kind Kind, pts []Point, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name]
	if sr == nil {
		return 0, nil, false
	}
	return sr.kind, sr.Points(), true
}

// Delta returns the newest per-tick increment of a series (zero if the
// series is unknown or has fewer than two points).
func (s *Sampler) Delta(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sr := s.series[name]; sr != nil {
		return sr.Delta()
	}
	return 0
}

// Rate returns the newest per-second rate of a series.
func (s *Sampler) Rate(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sr := s.series[name]; sr != nil {
		return sr.Rate()
	}
	return 0
}

// Callpaths fetches the per-callpath latency statistics from the
// source, sorted by cumulative time descending (dominant first).
func (s *Sampler) Callpaths() []CallpathStat {
	cps := s.src.CallpathStats()
	sort.Slice(cps, func(i, j int) bool {
		if cps[i].Stats.CumNanos != cps[j].Stats.CumNanos {
			return cps[i].Stats.CumNanos > cps[j].Stats.CumNanos
		}
		if cps[i].Side != cps[j].Side {
			return cps[i].Side < cps[j].Side
		}
		if cps[i].Path != cps[j].Path {
			return cps[i].Path < cps[j].Path
		}
		return cps[i].Peer < cps[j].Peer
	})
	return cps
}
