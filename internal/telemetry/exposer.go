package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"symbiosys/internal/core"
)

// metricPrefix namespaces every exported family.
const metricPrefix = "symbiosys_"

// Exposer aggregates per-instance samplers into one HTTP surface:
// Prometheus text exposition on GET /metrics and a JSON snapshot
// (samples, series windows, callpath stats) on GET /snapshot.
type Exposer struct {
	mu       sync.Mutex
	samplers []*Sampler
	ln       net.Listener
	srv      *http.Server
	// served closes when the serve goroutine exits, so Close can wait
	// for it instead of leaking the goroutine past teardown.
	served chan struct{}
}

// NewExposer returns an empty exposer; register samplers then Serve.
func NewExposer() *Exposer { return &Exposer{} }

// Register adds a sampler to the scrape surface.
func (e *Exposer) Register(s *Sampler) {
	e.mu.Lock()
	e.samplers = append(e.samplers, s)
	e.mu.Unlock()
}

// Samplers returns the registered samplers.
func (e *Exposer) Samplers() []*Sampler {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Sampler, len(e.samplers))
	copy(out, e.samplers)
	return out
}

// Handler returns the HTTP mux serving /metrics and /snapshot.
func (e *Exposer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		e.WriteMetrics(w)
	})
	mux.HandleFunc("GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		e.WriteSnapshot(w)
	})
	return mux
}

// Serve starts listening on addr (":0" picks a free port) and serves
// the exposition endpoints until Close. It returns the bound address.
func (e *Exposer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: e.Handler()}
	served := make(chan struct{})
	e.mu.Lock()
	e.ln, e.srv, e.served = ln, srv, served
	e.mu.Unlock()
	go func() {
		defer close(served)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close stops the HTTP listener and waits for the serve goroutine to
// exit, so tests and cluster teardown do not leak listeners or
// goroutines. It is idempotent and a no-op if Serve was never called.
func (e *Exposer) Close() error {
	e.mu.Lock()
	srv, served := e.srv, e.served
	e.srv, e.ln, e.served = nil, nil, nil
	e.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close()
	<-served
	return err
}

// family accumulates the samples of one metric family across instances.
type family struct {
	kind Kind
	rows []string // fully rendered sample lines
}

// WriteMetrics renders the Prometheus text exposition: one family per
// scalar series (latest value per instance) plus the per-callpath
// latency histogram family.
func (e *Exposer) WriteMetrics(w io.Writer) {
	fams := make(map[string]*family)
	var order []string
	add := func(name string, kind Kind, line string) {
		f := fams[name]
		if f == nil {
			f = &family{kind: kind}
			fams[name] = f
			order = append(order, name)
		}
		f.rows = append(f.rows, line)
	}

	var hist []string
	for _, s := range e.Samplers() {
		inst := s.Source().Addr()
		for _, name := range s.SeriesNames() {
			kind, pts, ok := s.SeriesSnapshot(name)
			if !ok || len(pts) == 0 {
				continue
			}
			last := pts[len(pts)-1]
			fam, labels := familyFor(name, inst)
			add(fam, kind, fmt.Sprintf("%s{%s} %s", fam, labels, formatFloat(last.Value)))
		}
		hist = append(hist, renderCallpathHistograms(inst, s.Callpaths())...)
	}

	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(w, "# HELP %s SYMBIOSYS live telemetry series %s.\n", name, strings.TrimPrefix(name, metricPrefix))
		fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind)
		sort.Strings(f.rows)
		for _, r := range f.rows {
			fmt.Fprintln(w, r)
		}
	}
	if len(hist) > 0 {
		const hf = metricPrefix + "callpath_latency_seconds"
		fmt.Fprintf(w, "# HELP %s Per-callpath RPC latency distribution (two-per-octave buckets).\n", hf)
		fmt.Fprintf(w, "# TYPE %s histogram\n", hf)
		for _, r := range hist {
			fmt.Fprintln(w, r)
		}
	}
}

// familyFor maps a series name to its metric family and label set.
// "pool/<name>/<stat>" becomes symbiosys_pool_<stat>{pool="<name>"},
// "pvar/<name>" becomes symbiosys_pvar_<name>, everything else is
// symbiosys_<series>.
func familyFor(series, instance string) (fam, labels string) {
	labels = `instance="` + escapeLabel(instance) + `"`
	switch {
	case strings.HasPrefix(series, "pool/"):
		rest := strings.TrimPrefix(series, "pool/")
		if i := strings.LastIndexByte(rest, '/'); i >= 0 {
			pool, stat := rest[:i], rest[i+1:]
			return metricPrefix + "pool_" + sanitizeName(stat),
				labels + `,pool="` + escapeLabel(pool) + `"`
		}
	case strings.HasPrefix(series, "pvar/"):
		return metricPrefix + "pvar_" + sanitizeName(strings.TrimPrefix(series, "pvar/")), labels
	case strings.HasPrefix(series, "batch_flush_reason/"):
		reason := strings.TrimPrefix(series, "batch_flush_reason/")
		return metricPrefix + "batch_flushes_by_reason_total",
			labels + `,reason="` + escapeLabel(reason) + `"`
	}
	return metricPrefix + sanitizeName(series), labels
}

// renderCallpathHistograms renders one Prometheus histogram per
// callpath: cumulative le buckets in seconds, then +Inf, _sum, _count.
func renderCallpathHistograms(instance string, cps []CallpathStat) []string {
	const hf = metricPrefix + "callpath_latency_seconds"
	var out []string
	for _, cp := range cps {
		if cp.Stats.Count == 0 {
			continue
		}
		base := fmt.Sprintf(`instance="%s",side="%s",path="%s",peer="%s"`,
			escapeLabel(instance), escapeLabel(cp.Side), escapeLabel(cp.Path), escapeLabel(cp.Peer))
		var cum uint64
		for i, c := range cp.Stats.Hist {
			cum += uint64(c)
			if i == core.HistBuckets-1 {
				break // rendered as +Inf below
			}
			if c == 0 && i != core.HistBuckets-2 {
				// Sparse rendering: skip empty interior buckets (the
				// cumulative count is unchanged); always keep the last
				// finite bucket so the +Inf step is explicit.
				continue
			}
			_, hi := core.HistBucketBounds(i)
			out = append(out, fmt.Sprintf(`%s_bucket{%s,le="%s"} %d`,
				hf, base, formatFloat(float64(hi)/1e9), cum))
		}
		out = append(out, fmt.Sprintf(`%s_bucket{%s,le="+Inf"} %d`, hf, base, cp.Stats.Count))
		out = append(out, fmt.Sprintf(`%s_sum{%s} %s`, hf, base, formatFloat(float64(cp.Stats.CumNanos)/1e9)))
		out = append(out, fmt.Sprintf(`%s_count{%s} %d`, hf, base, cp.Stats.Count))
	}
	return out
}

// SeriesDump is one series' window in the JSON snapshot.
type SeriesDump struct {
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// InstanceSnapshot is one instance's slice of the JSON snapshot.
type InstanceSnapshot struct {
	Addr      string                `json:"addr"`
	Interval  time.Duration         `json:"interval_nanos"`
	Ticks     uint64                `json:"ticks"`
	Last      Sample                `json:"last"`
	Series    map[string]SeriesDump `json:"series"`
	Callpaths []CallpathStat        `json:"callpaths,omitempty"`
}

// Snapshot is the GET /snapshot payload.
type Snapshot struct {
	UnixNanos int64              `json:"unix_nanos"`
	Instances []InstanceSnapshot `json:"instances"`
}

// BuildSnapshot assembles the JSON snapshot view.
func (e *Exposer) BuildSnapshot() Snapshot {
	snap := Snapshot{UnixNanos: time.Now().UnixNano()}
	for _, s := range e.Samplers() {
		inst := InstanceSnapshot{
			Addr:     s.Source().Addr(),
			Interval: s.Interval(),
			Ticks:    s.Ticks(),
			Series:   make(map[string]SeriesDump),
		}
		inst.Last, _ = s.Last()
		for _, name := range s.SeriesNames() {
			if kind, pts, ok := s.SeriesSnapshot(name); ok {
				inst.Series[name] = SeriesDump{Kind: kind.String(), Points: pts}
			}
		}
		inst.Callpaths = s.Callpaths()
		snap.Instances = append(snap.Instances, inst)
	}
	return snap
}

// WriteSnapshot writes the JSON snapshot.
func (e *Exposer) WriteSnapshot(w io.Writer) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(e.BuildSnapshot())
}

// sanitizeName coerces a series name into Prometheus metric-name
// characters.
func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
