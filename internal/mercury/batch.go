package mercury

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"symbiosys/internal/na"
)

// This file implements the vectored wire frame (ISSUE 6 tentpole, layer
// 1): one request frame carrying N sub-requests, answered by one
// response frame carrying N per-entry statuses. The margo coalescer
// builds batches with BatchBuilder, forwards them with ForwardBatch,
// and reads per-entry results through the BatchEntry* accessors. On the
// target every sub-request becomes an ordinary Handle delivered through
// the normal handler path — admission control, deadline checks, and the
// per-op t5–t10 instrumentation all apply per entry — and the shared
// batchTarget fans the N responses back into a single reply frame.

// BatchBuilder accumulates encoded sub-requests for one vectored
// forward. Builders are pooled; the internal buffer grows in place and
// is retained across uses, so steady-state Add calls do not allocate.
type BatchBuilder struct {
	buf   []byte
	count int
	// ent is the scratch entry header reused by Add: passing a local
	// through the Procable interface would heap-escape it per call.
	ent batchReqEntry
}

var batchBuilderPool = sync.Pool{New: func() any { return new(BatchBuilder) }}

// AcquireBatch returns an empty pooled builder.
func AcquireBatch() *BatchBuilder {
	return batchBuilderPool.Get().(*BatchBuilder)
}

// Release resets the builder and returns it to the pool. The builder
// must not be referenced afterwards; callers release only after the
// batch completed (or will never be retried), because retries re-send
// the builder's bytes.
func (b *BatchBuilder) Release() {
	if cap(b.buf) > arenaMaxRetain {
		b.buf = nil
	}
	b.Reset()
	batchBuilderPool.Put(b)
}

// Reset clears the builder for reuse without returning it to the pool.
func (b *BatchBuilder) Reset() {
	b.buf = b.buf[:0]
	b.count = 0
}

// Count reports the number of sub-requests added.
func (b *BatchBuilder) Count() int { return b.count }

// Bytes reports the encoded payload size so far.
func (b *BatchBuilder) Bytes() int { return len(b.buf) }

// Add encodes one sub-request with its per-op metadata. The entry
// header's length field is backfilled after the payload is encoded, so
// the input is serialized exactly once, directly into the builder.
func (b *BatchBuilder) Add(in Procable, meta Meta) error {
	b.ent = batchReqEntry{}
	if meta.HasTrace {
		b.ent.Flags |= flagTrace
		b.ent.Breadcrumb = meta.Breadcrumb
		b.ent.RequestID = meta.RequestID
		b.ent.Order = meta.Order
	}
	if meta.DeadlineNanos != 0 || meta.Priority != 0 {
		b.ent.Flags |= flagDeadline
		b.ent.DeadlineNanos = meta.DeadlineNanos
		b.ent.Priority = meta.Priority
	}
	mark := len(b.buf)
	buf, err := AppendEncode(b.buf, &b.ent)
	if err != nil {
		return err
	}
	lenPos := len(buf) - 4 // Len is the entry header's final field
	buf, err = AppendEncode(buf, in)
	if err != nil {
		b.buf = b.buf[:mark]
		return err
	}
	binary.LittleEndian.PutUint32(buf[lenPos:], uint32(len(buf)-lenPos-4))
	b.buf = buf
	b.count++
	return nil
}

// ForwardBatch posts the handle and sends the builder's sub-requests as
// one vectored frame. The per-entry results surface through the
// BatchEntry* accessors when cb fires. Batch frames skip the eager/RDMA
// split: the coalescer's byte budget bounds them, and keeping the whole
// frame eager means pooled arenas are never exposed as registered
// memory. The caller keeps ownership of the builder (for retries) and
// releases it after completion.
func (h *Handle) ForwardBatch(batchID uint64, b *BatchBuilder, cb ForwardCallback) error {
	if h.destroyed.Load() {
		return ErrDestroyed
	}
	if h.isTgt {
		return fmt.Errorf("mercury: ForwardBatch on a target-side handle")
	}
	if b.count == 0 {
		return fmt.Errorf("mercury: ForwardBatch with empty batch")
	}
	c := h.class
	c.rpcsInvoked.Inc()
	c.batchesForwarded.Inc()
	c.batchedOpsForwarded.Add(uint64(b.count))

	hdr := reqHeader{
		RPCID:   h.rpcID,
		Cookie:  h.cookie,
		Flags:   flagBatch,
		BatchID: batchID,
		Count:   uint32(b.count),
	}
	frame, err := packFrame(&hdr, b.buf)
	if err != nil {
		return err
	}

	h.cb = cb
	c.mu.Lock()
	c.posted[h.cookie] = h
	c.mu.Unlock()
	c.postedLevel.Add(1)

	c.ep.Send(h.target, na.TagUnexpected, frame, &forwardSendCtx{h: h})
	return nil
}

// batchRespView is one parsed entry of a vectored response; payload is
// a view into the response frame.
type batchRespView struct {
	status  uint8
	flags   uint8
	order   uint64
	payload []byte
}

// parseBatchResp splits a vectored response payload into entry views.
func parseBatchResp(payload []byte, count int) ([]batchRespView, error) {
	ents := make([]batchRespView, count)
	p := acquireDecoder(payload)
	for i := 0; i < count; i++ {
		var ent batchRespEntry
		if err := ent.Proc(p); err != nil {
			releaseProc(p)
			return nil, err
		}
		body, err := p.take(int(ent.Len))
		if err != nil {
			releaseProc(p)
			return nil, err
		}
		ents[i] = batchRespView{status: ent.Status, flags: ent.Flags, order: ent.Order, payload: body}
	}
	releaseProc(p)
	return ents, nil
}

// BatchLen reports the number of per-entry results carried by a
// completed vectored forward (origin side).
func (h *Handle) BatchLen() int { return len(h.batchEnts) }

// BatchEntryErr maps entry i's wire status to the error the equivalent
// unbatched Forward would have returned (nil for statusOK).
func (h *Handle) BatchEntryErr(i int) error {
	ent := &h.batchEnts[i]
	return h.statusErr(ent.status, ent.payload)
}

// BatchEntryOutput decodes entry i's response payload into v, charging
// the handle's output-deserialization timer.
func (h *Handle) BatchEntryOutput(i int, v Procable) error {
	h.OutputDeserTime.Start()
	err := Decode(h.batchEnts[i].payload, v)
	h.OutputDeserTime.Stop()
	if err != nil {
		return fmt.Errorf("mercury: decode batch output %d for %s: %w", i, h.rpcName, err)
	}
	return nil
}

// BatchEntryOrder returns the target-side Lamport order stamped on
// entry i's response (zero when the entry carried no trace metadata).
func (h *Handle) BatchEntryOrder(i int) uint64 { return h.batchEnts[i].order }

// handleBatchRequest fans a vectored request out into one target-side
// Handle per entry. Every sub-handle flows through the normal deliver
// path — per-entry admission, deadline checks, handler ULTs — and
// responds into the shared batchTarget, which sends one reply frame
// when the last member finishes.
func (c *Class) handleBatchRequest(from string, hdr *reqHeader, payload []byte) {
	count := int(hdr.Count)
	if count <= 0 {
		return // malformed; drop
	}
	arrived := time.Now()
	subs := make([]*Handle, 0, count)
	bt := &batchTarget{
		class:   c,
		cookie:  hdr.Cookie,
		peer:    from,
		batchID: hdr.BatchID,
		slots:   make([]batchSlot, count),
	}
	bt.pending.Store(int32(count))
	p := acquireDecoder(payload)
	for i := 0; i < count; i++ {
		var ent batchReqEntry
		if err := ent.Proc(p); err != nil {
			releaseProc(p)
			return // malformed; drop whole frame before any delivery
		}
		body, err := p.take(int(ent.Len))
		if err != nil {
			releaseProc(p)
			return
		}
		subs = append(subs, &Handle{
			class:  c,
			cookie: hdr.Cookie,
			rpcID:  hdr.RPCID,
			peer:   from,
			target: c.Addr(),
			isTgt:  true,
			meta: Meta{
				HasTrace:      ent.Flags&flagTrace != 0,
				Breadcrumb:    ent.Breadcrumb,
				RequestID:     ent.RequestID,
				Order:         ent.Order,
				DeadlineNanos: ent.DeadlineNanos,
				Priority:      ent.Priority,
				BatchID:       hdr.BatchID,
			},
			arrived:    arrived,
			reqPayload: body,
			batchTgt:   bt,
			batchSlot:  i,
		})
	}
	releaseProc(p)
	c.batchesHandled.Inc()
	c.batchedOpsHandled.Add(uint64(count))
	for _, sub := range subs {
		c.deliver(sub)
	}
}

// batchSlot is one entry of the in-progress batch reply. Each slot is
// written by exactly one handler ULT; visibility to the sender is
// provided by the pending counter's atomic decrement.
type batchSlot struct {
	status  uint8
	flags   uint8
	order   uint64
	payload []byte
	cb      func(error)
}

// batchTarget is the target-side fan-in state shared by the
// sub-handles of one vectored request.
type batchTarget struct {
	class   *Class
	cookie  uint64
	peer    string
	batchID uint64
	slots   []batchSlot
	pending atomic.Int32
}

// record stores one sub-response; the member that brings the pending
// count to zero packs and sends the combined reply.
func (bt *batchTarget) record(h *Handle, status uint8, out Procable, meta Meta, cb func(error)) error {
	slot := &bt.slots[h.batchSlot]
	if out != nil {
		h.OutputSerTime.Start()
		payload, err := Encode(out)
		h.OutputSerTime.Stop()
		if err != nil {
			// Surface the encode failure to the origin as a handler
			// error rather than stalling the whole batch.
			status = statusHandlerError
			raw := RawBytes(err.Error())
			payload, _ = Encode(&raw)
		}
		slot.payload = payload
	}
	slot.status = status
	if meta.HasTrace {
		slot.flags |= flagTrace
		slot.order = meta.Order
	}
	slot.cb = cb
	if bt.pending.Add(-1) == 0 {
		return bt.send()
	}
	return nil
}

// send packs the per-entry statuses into one response frame. All
// member callbacks share the batch reply's send completion (t13).
func (bt *batchTarget) send() error {
	c := bt.class
	arena := getArena()
	buf := *arena
	var err error
	for i := range bt.slots {
		slot := &bt.slots[i]
		ent := batchRespEntry{Status: slot.status, Flags: slot.flags, Order: slot.order, Len: uint32(len(slot.payload))}
		if buf, err = AppendEncode(buf, &ent); err != nil {
			putArena(arena, buf)
			return err
		}
		buf = append(buf, slot.payload...)
	}
	hdr := respHeader{Status: statusOK, Flags: flagBatch, Count: uint32(len(bt.slots))}
	frame, err := packFrame(&hdr, buf)
	putArena(arena, buf)
	if err != nil {
		return err
	}
	c.responsesSent.Inc()
	c.ep.Send(bt.peer, bt.cookie, frame, &batchRespondCtx{bt: bt})
	return nil
}

// complete runs every member callback with the reply send outcome.
func (bt *batchTarget) complete(err error) {
	for i := range bt.slots {
		if cb := bt.slots[i].cb; cb != nil {
			cb(err)
		}
	}
}

// batchRespondCtx tags the network send of a batch reply frame.
type batchRespondCtx struct{ bt *batchTarget }
