package mercury

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// everything exercises all field kinds in one Procable.
type everything struct {
	U8  uint8
	U16 uint16
	U32 uint32
	U64 uint64
	I64 int64
	I   int
	B   bool
	F   float64
	S   string
	Bs  []byte
	Ss  []string
	Bss [][]byte
	Us  []uint64
}

func (e *everything) Proc(p *Proc) error {
	p.Uint8(&e.U8)
	p.Uint16(&e.U16)
	p.Uint32(&e.U32)
	p.Uint64(&e.U64)
	p.Int64(&e.I64)
	p.Int(&e.I)
	p.Bool(&e.B)
	p.Float64(&e.F)
	p.String(&e.S)
	p.Bytes(&e.Bs)
	p.StringSlice(&e.Ss)
	p.BytesSlice(&e.Bss)
	p.Uint64Slice(&e.Us)
	return p.Err()
}

func TestProcRoundTrip(t *testing.T) {
	in := everything{
		U8: 7, U16: 300, U32: 70000, U64: 1 << 40,
		I64: -12345, I: -99, B: true, F: math.Pi,
		S:  "hello",
		Bs: []byte{1, 2, 3},
		Ss: []string{"a", "", "ccc"},
		Bss: [][]byte{
			{9}, {}, {8, 7},
		},
		Us: []uint64{0, 1, math.MaxUint64},
	}
	buf, err := Encode(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out everything
	if err := Decode(buf, &out); err != nil {
		t.Fatal(err)
	}
	// Decode materializes empty slices as non-nil; normalize for compare.
	if !reflect.DeepEqual(in.Ss, out.Ss) || in.S != out.S ||
		!bytes.Equal(in.Bs, out.Bs) || in.U64 != out.U64 ||
		in.I64 != out.I64 || in.I != out.I || in.B != out.B ||
		in.F != out.F || in.U8 != out.U8 || in.U16 != out.U16 ||
		in.U32 != out.U32 || !reflect.DeepEqual(in.Us, out.Us) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	for i := range in.Bss {
		if !bytes.Equal(in.Bss[i], out.Bss[i]) {
			t.Fatalf("Bss[%d] mismatch", i)
		}
	}
}

func TestProcRoundTripProperty(t *testing.T) {
	prop := func(u64 uint64, i64 int64, b bool, f float64, s string, bs []byte, ss []string) bool {
		if f != f { // NaN compares unequal; skip
			return true
		}
		in := everything{U64: u64, I64: i64, B: b, F: f, S: s, Bs: bs, Ss: ss}
		buf, err := Encode(&in)
		if err != nil {
			return false
		}
		var out everything
		if err := Decode(buf, &out); err != nil {
			return false
		}
		if out.U64 != u64 || out.I64 != i64 || out.B != b || out.F != f || out.S != s {
			return false
		}
		if !bytes.Equal(out.Bs, bs) {
			return false
		}
		if len(out.Ss) != len(ss) {
			return false
		}
		for i := range ss {
			if out.Ss[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProcShortBuffer(t *testing.T) {
	var v everything
	err := Decode([]byte{1, 2}, &v)
	if !errors.Is(err, ErrProcShort) {
		t.Fatalf("err = %v, want ErrProcShort", err)
	}
}

func TestProcCorruptLength(t *testing.T) {
	// A string length far beyond the buffer must fail cleanly.
	p := NewEncoder()
	n := uint32(math.MaxUint32)
	p.Uint32(&n)
	var s string
	if err := Decode(p.Buffer(), &stringOnly{&s}); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

type stringOnly struct{ s *string }

func (x *stringOnly) Proc(p *Proc) error { return p.String(x.s) }

func TestProcErrorSticky(t *testing.T) {
	p := NewDecoder(nil)
	var u uint64
	if err := p.Uint64(&u); err == nil {
		t.Fatal("expected error")
	}
	var s string
	if err := p.String(&s); err == nil {
		t.Fatal("error did not stick")
	}
	if p.Err() == nil {
		t.Fatal("Err() nil after failure")
	}
}

func TestFramePackUnpack(t *testing.T) {
	hdr := reqHeader{
		RPCID: 42, Cookie: 99,
		Flags:      flagTrace | flagMore,
		Breadcrumb: 0xABCD, RequestID: 7, Order: 3,
		TotalLen: 100,
	}
	hdr.Mem.Addr = "node0/x"
	hdr.Mem.ID = 5
	hdr.Mem.Len = 60
	payload := []byte("payload-bytes")
	frame, err := packFrame(&hdr, payload)
	if err != nil {
		t.Fatal(err)
	}
	var got reqHeader
	rest, err := unpackFrame(frame, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q", rest)
	}
	if got != hdr {
		t.Fatalf("header = %+v, want %+v", got, hdr)
	}
}

func TestFrameUnpackErrors(t *testing.T) {
	var hdr respHeader
	if _, err := unpackFrame([]byte{1, 2}, &hdr); err == nil {
		t.Fatal("short frame accepted")
	}
	// Header length pointing past the end.
	bad := []byte{255, 0, 0, 0, 1}
	if _, err := unpackFrame(bad, &hdr); err == nil {
		t.Fatal("oversized header length accepted")
	}
}

func TestRespHeaderTraceOptional(t *testing.T) {
	h := respHeader{Status: statusOK}
	buf, _ := Encode(&h)
	withTrace := respHeader{Status: statusOK, Flags: flagTrace, Order: 9}
	buf2, _ := Encode(&withTrace)
	if len(buf2) <= len(buf) {
		t.Fatal("trace fields not serialized")
	}
	var out respHeader
	if err := Decode(buf2, &out); err != nil || out.Order != 9 {
		t.Fatalf("decode: %+v %v", out, err)
	}
}

func TestRawBytesAndVoid(t *testing.T) {
	r := RawBytes("abc")
	buf, err := Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	var out RawBytes
	if err := Decode(buf, &out); err != nil || string(out) != "abc" {
		t.Fatalf("RawBytes: %q %v", out, err)
	}
	if b, err := Encode(Void{}); err != nil || len(b) != 0 {
		t.Fatalf("Void: %v %v", b, err)
	}
}

func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	// Wire-facing decoders must reject garbage gracefully.
	prop := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		var e everything
		Decode(data, &e)
		var rh reqHeader
		unpackFrame(data, &rh)
		var ph respHeader
		unpackFrame(data, &ph)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	prop := func(rpcID uint32, cookie, bcrumb, reqID, order uint64, trace bool, payload []byte) bool {
		hdr := reqHeader{RPCID: rpcID, Cookie: cookie}
		if trace {
			hdr.Flags |= flagTrace
			hdr.Breadcrumb = bcrumb
			hdr.RequestID = reqID
			hdr.Order = order
		}
		frame, err := packFrame(&hdr, payload)
		if err != nil {
			return false
		}
		var got reqHeader
		rest, err := unpackFrame(frame, &got)
		if err != nil {
			return false
		}
		return got == hdr && bytes.Equal(rest, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
