package mercury

import "symbiosys/internal/mercury/pvar"

// PVAR names exported by every Mercury instance (paper Table II plus
// supporting counters). Tools address PVARs by these names.
const (
	PVarNumPostedHandles     = "num_posted_handles"
	PVarCompletionQueueSize  = "completion_queue_size"
	PVarNumOFIEventsRead     = "num_ofi_events_read"
	PVarNumRPCsInvoked       = "num_rpcs_invoked"
	PVarNumRPCsHandled       = "num_rpcs_handled"
	PVarNumResponsesSent     = "num_responses_sent"
	PVarNumEagerOverflows    = "num_eager_overflows"
	PVarNumStaleResponses    = "num_stale_responses"
	PVarNumSendErrors        = "num_send_errors"
	PVarBulkBytesTransferred = "bulk_bytes_transferred"
	PVarPostedHandlesHWM     = "posted_handles_highwatermark"
	PVarCompletionQueueHWM   = "completion_queue_highwatermark"
	PVarInternalRDMATime     = "internal_rdma_transfer_time"
	PVarNumBatchesForwarded  = "num_batches_forwarded"
	PVarNumBatchedOpsFwd     = "num_batched_ops_forwarded"
	PVarNumBatchesHandled    = "num_batches_handled"
	PVarNumBatchedOpsHandled = "num_batched_ops_handled"
	PVarInputSerTime         = "input_serialization_time"
	PVarInputDeserTime       = "input_deserialization_time"
	PVarOutputSerTime        = "output_serialization_time"
	PVarOutputDeserTime      = "output_deserialization_time"
	PVarOriginCBTime         = "origin_completion_callback_time"
)

// registerPVars exports the instance's performance variables through the
// PVAR interface (paper §IV-B). Handle-bound variables read their value
// off the *Handle supplied at sampling time.
func (c *Class) registerPVars() {
	r := c.pvars

	r.RegisterGlobal(PVarNumPostedHandles,
		"Number of currently posted RPC handles",
		pvar.ClassLevel, func() uint64 { return uint64(c.postedLevel.Load()) })
	r.RegisterGlobal(PVarCompletionQueueSize,
		"Number of events in Mercury's completion queue",
		pvar.ClassState, func() uint64 { return uint64(c.cqLevel.Load()) })
	r.RegisterGlobal(PVarNumOFIEventsRead,
		"Number of OFI completion events last read",
		pvar.ClassLevel, func() uint64 { return uint64(c.ofiRead.Load()) })
	r.RegisterGlobal(PVarNumRPCsInvoked,
		"Number of RPCs invoked by instance",
		pvar.ClassCounter, c.rpcsInvoked.Load)
	r.RegisterGlobal(PVarNumRPCsHandled,
		"Number of RPC requests handled by instance",
		pvar.ClassCounter, c.rpcsHandled.Load)
	r.RegisterGlobal(PVarNumResponsesSent,
		"Number of RPC responses sent by instance",
		pvar.ClassCounter, c.responsesSent.Load)
	r.RegisterGlobal(PVarNumEagerOverflows,
		"Number of requests whose metadata overflowed the eager buffer",
		pvar.ClassCounter, c.eagerOverflows.Load)
	r.RegisterGlobal(PVarNumStaleResponses,
		"Number of responses that matched no posted handle",
		pvar.ClassCounter, c.staleResponses.Load)
	r.RegisterGlobal(PVarNumSendErrors,
		"Number of asynchronous network failures observed",
		pvar.ClassCounter, c.sendErrors.Load)
	r.RegisterGlobal(PVarNumBatchesForwarded,
		"Number of vectored (batched) forwards sent by instance",
		pvar.ClassCounter, c.batchesForwarded.Load)
	r.RegisterGlobal(PVarNumBatchedOpsFwd,
		"Number of sub-requests carried by vectored forwards",
		pvar.ClassCounter, c.batchedOpsForwarded.Load)
	r.RegisterGlobal(PVarNumBatchesHandled,
		"Number of vectored requests handled by instance",
		pvar.ClassCounter, c.batchesHandled.Load)
	r.RegisterGlobal(PVarNumBatchedOpsHandled,
		"Number of sub-requests fanned out from vectored requests",
		pvar.ClassCounter, c.batchedOpsHandled.Load)
	r.RegisterGlobal(PVarBulkBytesTransferred,
		"Bytes moved through the bulk interface",
		pvar.ClassCounter, c.bulkBytes.Load)
	r.RegisterGlobal(PVarPostedHandlesHWM,
		"Highest number of simultaneously posted handles",
		pvar.ClassHighWatermark, func() uint64 { return uint64(c.postedLevel.HighWatermark()) })
	r.RegisterGlobal(PVarCompletionQueueHWM,
		"Highest completion queue length observed",
		pvar.ClassHighWatermark, func() uint64 { return uint64(c.cqLevel.HighWatermark()) })

	handleTimer := func(pick func(*Handle) *pvar.Timer) pvar.HandleReader {
		return func(obj any) (uint64, bool) {
			h, ok := obj.(*Handle)
			if !ok {
				return 0, false
			}
			return pick(h).Nanos(), true
		}
	}
	r.RegisterHandle(PVarInternalRDMATime,
		"Time taken to transfer additional RPC metadata through RDMA",
		pvar.ClassTimer, handleTimer(func(h *Handle) *pvar.Timer { return &h.RDMATime }))
	r.RegisterHandle(PVarInputSerTime,
		"Time taken to serialize input on origin",
		pvar.ClassTimer, handleTimer(func(h *Handle) *pvar.Timer { return &h.InputSerTime }))
	r.RegisterHandle(PVarInputDeserTime,
		"Time taken to de-serialize input on target",
		pvar.ClassTimer, handleTimer(func(h *Handle) *pvar.Timer { return &h.InputDeserTime }))
	r.RegisterHandle(PVarOutputSerTime,
		"Time taken to serialize output on target",
		pvar.ClassTimer, handleTimer(func(h *Handle) *pvar.Timer { return &h.OutputSerTime }))
	r.RegisterHandle(PVarOutputDeserTime,
		"Time taken to de-serialize output on origin",
		pvar.ClassTimer, handleTimer(func(h *Handle) *pvar.Timer { return &h.OutputDeserTime }))
	r.RegisterHandle(PVarOriginCBTime,
		"Delay between the arrival of RPC response and invocation of completion callback",
		pvar.ClassTimer, handleTimer(func(h *Handle) *pvar.Timer { return &h.OriginCBTime }))
}
