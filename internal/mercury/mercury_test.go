package mercury

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"symbiosys/internal/na"
)

// progressLoop drives a Class from a plain goroutine until stopped.
type progressLoop struct {
	stop chan struct{}
	done chan struct{}
}

func drive(c *Class) *progressLoop {
	pl := &progressLoop{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(pl.done)
		for {
			select {
			case <-pl.stop:
				return
			default:
			}
			c.Progress(time.Millisecond)
			c.Trigger(64)
		}
	}()
	return pl
}

func (pl *progressLoop) Stop() {
	close(pl.stop)
	<-pl.done
}

type testPair struct {
	client, server *Class
}

// newRPCPair builds a driven client/server pair on separate nodes.
func newRPCPair(t *testing.T, cfg Config) testPair {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	cep, err := f.NewEndpoint("node0", "client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.NewEndpoint("node1", "server")
	if err != nil {
		t.Fatal(err)
	}
	client := NewClass(cep, cfg)
	server := NewClass(sep, cfg)
	cpl, spl := drive(client), drive(server)
	t.Cleanup(func() { cpl.Stop(); spl.Stop() })
	return testPair{client: client, server: server}
}

type echoArgs struct {
	Msg string
	N   uint64
}

func (a *echoArgs) Proc(p *Proc) error {
	p.String(&a.Msg)
	p.Uint64(&a.N)
	return p.Err()
}

// forwardWait forwards and blocks until the callback fires.
func forwardWait(t *testing.T, h *Handle, in Procable, meta Meta) error {
	t.Helper()
	done := make(chan error, 1)
	if err := h.Forward(in, meta, func(h *Handle, err error) { done <- err }); err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("forward timed out")
		return nil
	}
}

func registerEcho(t *testing.T, p testPair) {
	t.Helper()
	if err := p.server.Register("echo_rpc", func(h *Handle) {
		var in echoArgs
		if err := h.GetInput(&in); err != nil {
			h.RespondError(err.Error(), Meta{}, nil)
			return
		}
		out := echoArgs{Msg: strings.ToUpper(in.Msg), N: in.N + 1}
		if err := h.Respond(&out, Meta{}, nil); err != nil {
			t.Errorf("Respond: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Register("echo_rpc", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRPCEndToEnd(t *testing.T) {
	p := newRPCPair(t, Config{})
	registerEcho(t, p)

	h, err := p.client.Create(p.server.Addr(), "echo_rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Destroy()
	if err := forwardWait(t, h, &echoArgs{Msg: "hi", N: 41}, Meta{}); err != nil {
		t.Fatal(err)
	}
	var out echoArgs
	if err := h.GetOutput(&out); err != nil {
		t.Fatal(err)
	}
	if out.Msg != "HI" || out.N != 42 {
		t.Fatalf("out = %+v", out)
	}
}

func TestRPCManyConcurrent(t *testing.T) {
	p := newRPCPair(t, Config{})
	registerEcho(t, p)

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	outs := make([]echoArgs, n)
	for i := 0; i < n; i++ {
		h, err := p.client.Create(p.server.Addr(), "echo_rpc")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		idx := i
		err = h.Forward(&echoArgs{Msg: "m", N: uint64(idx)}, Meta{}, func(h *Handle, err error) {
			defer wg.Done()
			errs[idx] = err
			if err == nil {
				errs[idx] = h.GetOutput(&outs[idx])
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("rpc %d: %v", i, errs[i])
		}
		if outs[i].N != uint64(i)+1 {
			t.Fatalf("rpc %d: out = %+v", i, outs[i])
		}
	}
}

func TestUnknownRPCFailsFast(t *testing.T) {
	p := newRPCPair(t, Config{})
	if err := p.client.Register("ghost_rpc", nil); err != nil {
		t.Fatal(err)
	}
	h, err := p.client.Create(p.server.Addr(), "ghost_rpc")
	if err != nil {
		t.Fatal(err)
	}
	if err := forwardWait(t, h, &Void{}, Meta{}); !errors.Is(err, ErrUnknownRPC) {
		t.Fatalf("err = %v, want ErrUnknownRPC", err)
	}
}

func TestCreateUnregisteredFails(t *testing.T) {
	p := newRPCPair(t, Config{})
	if _, err := p.client.Create(p.server.Addr(), "never_registered"); !errors.Is(err, ErrUnknownRPC) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	p := newRPCPair(t, Config{})
	p.server.Register("fail_rpc", func(h *Handle) {
		h.RespondError("backend on fire", Meta{}, nil)
	})
	p.client.Register("fail_rpc", nil)
	h, _ := p.client.Create(p.server.Addr(), "fail_rpc")
	err := forwardWait(t, h, &Void{}, Meta{})
	if !errors.Is(err, ErrHandlerFail) || !strings.Contains(err.Error(), "backend on fire") {
		t.Fatalf("err = %v", err)
	}
}

func TestForwardToDeadAddressFails(t *testing.T) {
	p := newRPCPair(t, Config{})
	p.client.Register("echo_rpc", nil)
	h, _ := p.client.Create("node9/ghost", "echo_rpc")
	err := forwardWait(t, h, &Void{}, Meta{})
	if err == nil {
		t.Fatal("forward to dead address succeeded")
	}
}

func TestCancel(t *testing.T) {
	p := newRPCPair(t, Config{})
	// A handler that never responds.
	block := make(chan struct{})
	p.server.Register("slow_rpc", func(h *Handle) { <-block })
	defer close(block)
	p.client.Register("slow_rpc", nil)
	h, _ := p.client.Create(p.server.Addr(), "slow_rpc")
	done := make(chan error, 1)
	h.Forward(&Void{}, Meta{}, func(h *Handle, err error) { done <- err })
	time.Sleep(5 * time.Millisecond)
	h.Cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel callback never fired")
	}
}

func TestEagerOverflowUsesRDMA(t *testing.T) {
	p := newRPCPair(t, Config{EagerLimit: 256})
	var gotSize int
	var rdmaNanos uint64
	doneServer := make(chan struct{}, 1)
	p.server.Register("big_rpc", func(h *Handle) {
		var in echoArgs
		if err := h.GetInput(&in); err != nil {
			t.Errorf("GetInput: %v", err)
		}
		gotSize = len(in.Msg)
		rdmaNanos = h.RDMATime.Nanos()
		h.Respond(&Void{}, Meta{}, nil)
		doneServer <- struct{}{}
	})
	p.client.Register("big_rpc", nil)

	big := strings.Repeat("x", 10_000)
	h, _ := p.client.Create(p.server.Addr(), "big_rpc")
	if err := forwardWait(t, h, &echoArgs{Msg: big}, Meta{}); err != nil {
		t.Fatal(err)
	}
	<-doneServer
	if gotSize != len(big) {
		t.Fatalf("server saw %d bytes, want %d", gotSize, len(big))
	}
	if rdmaNanos == 0 {
		t.Fatal("internal RDMA timer is zero for overflowing request")
	}
	// The overflow counter must have fired on the origin.
	s := p.client.PVars().InitSession()
	defer s.Finalize()
	ph, _ := s.AllocHandleByName(PVarNumEagerOverflows)
	if v, _ := s.Read(ph, nil); v != 1 {
		t.Fatalf("num_eager_overflows = %d, want 1", v)
	}
}

func TestSmallRequestSkipsRDMA(t *testing.T) {
	p := newRPCPair(t, Config{EagerLimit: 4096})
	var rdmaNanos uint64 = 99
	p.server.Register("small_rpc", func(h *Handle) {
		rdmaNanos = h.RDMATime.Nanos()
		h.Respond(&Void{}, Meta{}, nil)
	})
	p.client.Register("small_rpc", nil)
	h, _ := p.client.Create(p.server.Addr(), "small_rpc")
	if err := forwardWait(t, h, &echoArgs{Msg: "tiny"}, Meta{}); err != nil {
		t.Fatal(err)
	}
	if rdmaNanos != 0 {
		t.Fatalf("RDMA timer = %d for eager-fit request", rdmaNanos)
	}
}

func TestMetaPropagation(t *testing.T) {
	p := newRPCPair(t, Config{})
	var got Meta
	p.server.Register("meta_rpc", func(h *Handle) {
		got = h.Meta()
		h.Respond(&Void{}, Meta{HasTrace: true, Order: 77}, nil)
	})
	p.client.Register("meta_rpc", nil)
	h, _ := p.client.Create(p.server.Addr(), "meta_rpc")
	meta := Meta{HasTrace: true, Breadcrumb: 0xBEEF, RequestID: 123, Order: 5}
	if err := forwardWait(t, h, &Void{}, meta); err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("target meta = %+v, want %+v", got, meta)
	}
	if rm := h.RespMeta(); !rm.HasTrace || rm.Order != 77 {
		t.Fatalf("resp meta = %+v", rm)
	}
}

func TestMetaAbsentWithoutTrace(t *testing.T) {
	p := newRPCPair(t, Config{})
	var got Meta
	p.server.Register("plain_rpc", func(h *Handle) {
		got = h.Meta()
		h.Respond(&Void{}, Meta{}, nil)
	})
	p.client.Register("plain_rpc", nil)
	h, _ := p.client.Create(p.server.Addr(), "plain_rpc")
	if err := forwardWait(t, h, &Void{}, Meta{Breadcrumb: 0xFF}); err != nil {
		t.Fatal(err)
	}
	if got.HasTrace || got.Breadcrumb != 0 {
		t.Fatalf("meta leaked without trace flag: %+v", got)
	}
}

func TestBulkPullPush(t *testing.T) {
	p := newRPCPair(t, Config{})
	// Client exposes data; server pulls it via an RPC carrying the bulk
	// descriptor, then pushes a transformed copy back.
	data := []byte("bulk-data-0123456789")
	clientBuf := make([]byte, len(data))
	copy(clientBuf, data)
	bulk := p.client.BulkCreate(clientBuf)
	defer p.client.BulkFree(bulk)

	type bulkArgs struct{ B Bulk }
	var _ = bulkArgs{}

	pulled := make(chan []byte, 1)
	p.server.Register("pull_rpc", func(h *Handle) {
		var in Bulk
		if err := h.GetInput(&in); err != nil {
			t.Errorf("GetInput: %v", err)
			return
		}
		local := make([]byte, in.Size())
		h.class.BulkPull(in, 0, local, func(err error) {
			if err != nil {
				t.Errorf("BulkPull: %v", err)
			}
			pulled <- local
			h.Respond(&Void{}, Meta{}, nil)
		})
	})
	p.client.Register("pull_rpc", nil)
	h, _ := p.client.Create(p.server.Addr(), "pull_rpc")
	if err := forwardWait(t, h, &bulk, Meta{}); err != nil {
		t.Fatal(err)
	}
	got := <-pulled
	if string(got) != string(data) {
		t.Fatalf("pulled %q, want %q", got, data)
	}
}

func TestPVarGlobalCounters(t *testing.T) {
	p := newRPCPair(t, Config{})
	registerEcho(t, p)
	for i := 0; i < 3; i++ {
		h, _ := p.client.Create(p.server.Addr(), "echo_rpc")
		if err := forwardWait(t, h, &echoArgs{Msg: "x"}, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	cs := p.client.PVars().InitSession()
	defer cs.Finalize()
	read := func(name string) uint64 {
		t.Helper()
		h, err := cs.AllocHandleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		v, err := cs.Read(h, nil)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := read(PVarNumRPCsInvoked); v != 3 {
		t.Fatalf("num_rpcs_invoked = %d, want 3", v)
	}
	if v := read(PVarNumPostedHandles); v != 0 {
		t.Fatalf("num_posted_handles = %d, want 0 at rest", v)
	}
	if v := read(PVarPostedHandlesHWM); v < 1 {
		t.Fatalf("posted HWM = %d, want >= 1", v)
	}

	ss := p.server.PVars().InitSession()
	defer ss.Finalize()
	sh, _ := ss.AllocHandleByName(PVarNumRPCsHandled)
	if v, _ := ss.Read(sh, nil); v != 3 {
		t.Fatalf("num_rpcs_handled = %d, want 3", v)
	}
}

func TestPVarHandleBoundTimers(t *testing.T) {
	p := newRPCPair(t, Config{})
	registerEcho(t, p)
	h, _ := p.client.Create(p.server.Addr(), "echo_rpc")
	if err := forwardWait(t, h, &echoArgs{Msg: strings.Repeat("y", 2000)}, Meta{}); err != nil {
		t.Fatal(err)
	}
	s := p.client.PVars().InitSession()
	defer s.Finalize()
	ser, _ := s.AllocHandleByName(PVarInputSerTime)
	v, err := s.Read(ser, h)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Fatal("input serialization time PVAR is zero")
	}
	ocb, _ := s.AllocHandleByName(PVarOriginCBTime)
	if _, err := s.Read(ocb, h); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterCollisionAndReplace(t *testing.T) {
	p := newRPCPair(t, Config{})
	if err := p.server.Register("dup", nil); err != nil {
		t.Fatal(err)
	}
	// nil -> handler upgrade is allowed.
	if err := p.server.Register("dup", func(h *Handle) {}); err != nil {
		t.Fatal(err)
	}
	// handler -> handler conflicts.
	if err := p.server.Register("dup", func(h *Handle) {}); !errors.Is(err, ErrRPCRegister) {
		t.Fatalf("err = %v", err)
	}
}

func TestRPCNameLookup(t *testing.T) {
	p := newRPCPair(t, Config{})
	p.server.Register("lookup_rpc", nil)
	name, ok := p.server.RPCName(hashRPC("lookup_rpc"))
	if !ok || name != "lookup_rpc" {
		t.Fatalf("RPCName = %q, %v", name, ok)
	}
	if _, ok := p.server.RPCName(12345); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestSetOFIMaxEvents(t *testing.T) {
	p := newRPCPair(t, Config{OFIMaxEvents: 16})
	p.client.SetOFIMaxEvents(64)
	if p.client.Config().OFIMaxEvents != 64 {
		t.Fatal("SetOFIMaxEvents did not apply")
	}
	p.client.SetOFIMaxEvents(0) // ignored
	if p.client.Config().OFIMaxEvents != 64 {
		t.Fatal("zero value overwrote setting")
	}
}

func TestForwardOnTargetHandleRejected(t *testing.T) {
	p := newRPCPair(t, Config{})
	errCh := make(chan error, 1)
	p.server.Register("bad_rpc", func(h *Handle) {
		errCh <- h.Forward(&Void{}, Meta{}, nil)
		h.Respond(&Void{}, Meta{}, nil)
	})
	p.client.Register("bad_rpc", nil)
	h, _ := p.client.Create(p.server.Addr(), "bad_rpc")
	if err := forwardWait(t, h, &Void{}, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("Forward on target handle accepted")
	}
}

func TestDestroyedHandleRejectsForward(t *testing.T) {
	p := newRPCPair(t, Config{})
	p.client.Register("echo_rpc", nil)
	h, _ := p.client.Create(p.server.Addr(), "echo_rpc")
	h.Destroy()
	if err := h.Forward(&Void{}, Meta{}, nil); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("err = %v", err)
	}
}
