package pvar

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

type fakeHandle struct{ serTime uint64 }

func newTestRegistry() (*Registry, *Counter, *Level) {
	r := NewRegistry()
	var rpcs Counter
	var cqLen Level
	r.RegisterGlobal("num_rpcs_invoked", "Number of RPCs invoked by instance",
		ClassCounter, rpcs.Load)
	r.RegisterGlobal("completion_queue_size", "Number of events in completion queue",
		ClassSize, func() uint64 { return uint64(cqLen.Load()) })
	r.RegisterHandle("input_serialization_time", "Time to serialize input on origin",
		ClassTimer, func(obj any) (uint64, bool) {
			h, ok := obj.(*fakeHandle)
			if !ok {
				return 0, false
			}
			return h.serTime, true
		})
	return r, &rpcs, &cqLen
}

func TestQueryListsAllVariables(t *testing.T) {
	r, _, _ := newTestRegistry()
	s := r.InitSession()
	defer s.Finalize()
	infos, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("Query = %d vars, want 3", len(infos))
	}
	if infos[0].Name != "num_rpcs_invoked" || infos[0].Class != ClassCounter ||
		infos[0].Binding != BindNoObject {
		t.Fatalf("infos[0] = %+v", infos[0])
	}
	if infos[2].Binding != BindHandle {
		t.Fatalf("infos[2] = %+v", infos[2])
	}
}

func TestReadGlobal(t *testing.T) {
	r, rpcs, _ := newTestRegistry()
	s := r.InitSession()
	defer s.Finalize()
	h, err := s.AllocHandleByName("num_rpcs_invoked")
	if err != nil {
		t.Fatal(err)
	}
	rpcs.Add(5)
	v, err := s.Read(h, nil)
	if err != nil || v != 5 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	rpcs.Inc()
	if v, _ := s.Read(h, nil); v != 6 {
		t.Fatalf("Read = %d, want 6", v)
	}
}

func TestReadHandleBound(t *testing.T) {
	r, _, _ := newTestRegistry()
	s := r.InitSession()
	defer s.Finalize()
	h, _ := s.AllocHandleByName("input_serialization_time")
	obj := &fakeHandle{serTime: 1234}
	v, err := s.Read(h, obj)
	if err != nil || v != 1234 {
		t.Fatalf("Read = %d, %v", v, err)
	}
}

func TestReadErrors(t *testing.T) {
	r, _, _ := newTestRegistry()
	s := r.InitSession()
	global, _ := s.AllocHandleByName("num_rpcs_invoked")
	bound, _ := s.AllocHandleByName("input_serialization_time")

	if _, err := s.Read(global, &fakeHandle{}); !errors.Is(err, ErrNoObjectBound) {
		t.Fatalf("global with obj: %v", err)
	}
	if _, err := s.Read(bound, nil); !errors.Is(err, ErrNeedBoundObj) {
		t.Fatalf("bound without obj: %v", err)
	}
	if _, err := s.Read(bound, "not a handle"); !errors.Is(err, ErrWrongBoundObj) {
		t.Fatalf("bound with wrong obj: %v", err)
	}

	s2 := r.InitSession()
	if _, err := s2.Read(global, nil); !errors.Is(err, ErrHandleMismatch) {
		t.Fatalf("cross-session read: %v", err)
	}
	s2.Finalize()

	s.FreeHandle(global)
	if _, err := s.Read(global, nil); !errors.Is(err, ErrHandleFreed) {
		t.Fatalf("freed read: %v", err)
	}
	s.Finalize()
	if _, err := s.Read(bound, &fakeHandle{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("closed-session read: %v", err)
	}
}

func TestLookupUnknown(t *testing.T) {
	r, _, _ := newTestRegistry()
	s := r.InitSession()
	defer s.Finalize()
	if _, err := s.Lookup("nope"); !errors.Is(err, ErrUnknownPVar) {
		t.Fatalf("Lookup: %v", err)
	}
	if _, err := s.AllocHandle(99); !errors.Is(err, ErrUnknownPVar) {
		t.Fatalf("AllocHandle: %v", err)
	}
	if _, err := s.AllocHandle(-1); !errors.Is(err, ErrUnknownPVar) {
		t.Fatalf("AllocHandle(-1): %v", err)
	}
}

func TestFinalizeReportsLeaks(t *testing.T) {
	r, _, _ := newTestRegistry()
	s := r.InitSession()
	s.AllocHandle(0)
	s.AllocHandle(1)
	h, _ := s.AllocHandle(2)
	s.FreeHandle(h)
	if leaked := s.Finalize(); leaked != 2 {
		t.Fatalf("Finalize leaked = %d, want 2", leaked)
	}
	if again := s.Finalize(); again != 0 {
		t.Fatalf("second Finalize = %d, want 0", again)
	}
}

func TestSessionCounting(t *testing.T) {
	r, _, _ := newTestRegistry()
	if r.ActiveSessions() != 0 {
		t.Fatal("initial sessions != 0")
	}
	s1, s2 := r.InitSession(), r.InitSession()
	if s1.ID() == s2.ID() {
		t.Fatal("session IDs collide")
	}
	if r.ActiveSessions() != 2 {
		t.Fatalf("ActiveSessions = %d", r.ActiveSessions())
	}
	s1.Finalize()
	s2.Finalize()
	if r.ActiveSessions() != 0 {
		t.Fatalf("ActiveSessions after finalize = %d", r.ActiveSessions())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.RegisterGlobal("x", "", ClassCounter, func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.RegisterGlobal("x", "", ClassCounter, func() uint64 { return 0 })
}

func TestClassAndBindingStrings(t *testing.T) {
	want := map[Class]string{
		ClassState: "STATE", ClassCounter: "COUNTER", ClassTimer: "TIMER",
		ClassLevel: "LEVEL", ClassSize: "SIZE",
		ClassHighWatermark: "HIGHWATERMARK", ClassLowWatermark: "LOWWATERMARK",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if BindNoObject.String() != "NO_OBJECT" || BindHandle.String() != "HANDLE" {
		t.Error("binding strings wrong")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("Counter = %d, want 8000", c.Load())
	}
}

func TestLevelTracksHighWatermark(t *testing.T) {
	var l Level
	l.Add(3)
	l.Add(4)
	l.Add(-5)
	if l.Load() != 2 {
		t.Fatalf("Load = %d, want 2", l.Load())
	}
	if l.HighWatermark() != 7 {
		t.Fatalf("HWM = %d, want 7", l.HighWatermark())
	}
	l.Set(100)
	if l.HighWatermark() != 100 {
		t.Fatalf("HWM after Set = %d", l.HighWatermark())
	}
}

func TestWatermark(t *testing.T) {
	var w Watermark
	for _, v := range []uint64{5, 2, 9, 7} {
		w.Record(v)
	}
	if w.High() != 9 || w.Low() != 2 {
		t.Fatalf("High/Low = %d/%d", w.High(), w.Low())
	}
}

func TestWatermarkProperty(t *testing.T) {
	prop := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		var w Watermark
		hi, lo := vals[0], vals[0]
		for _, v := range vals {
			w.Record(v)
			if v > hi {
				hi = v
			}
			if v < lo {
				lo = v
			}
		}
		return w.High() == hi && w.Low() == lo
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevelNeverExceedsHWMProperty(t *testing.T) {
	prop := func(deltas []int8) bool {
		var l Level
		var cur, hwm int64
		for _, d := range deltas {
			cur = l.Add(int64(d))
			if cur > hwm {
				hwm = cur
			}
		}
		return l.Load() == cur && l.HighWatermark() == hwm
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	if tm.Nanos() != 0 {
		t.Fatal("zero Timer reads nonzero")
	}
	tm.Start()
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	if tm.Duration() < time.Millisecond {
		t.Fatalf("Duration = %v, want >= 1ms", tm.Duration())
	}
	tm.Stop() // idempotent without Start
	d := tm.Duration()
	tm.SetDuration(42 * time.Nanosecond)
	if tm.Nanos() != 42 {
		t.Fatalf("SetDuration: %d", tm.Nanos())
	}
	_ = d
}
