package pvar

import (
	"sync/atomic"
	"time"
)

// The types below are the write-side primitives an exporting library
// uses to maintain PVAR values cheaply (lock-free) on its fast path.

// Counter backs a COUNTER-class PVAR: monotonically increasing.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load samples the counter.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Level backs a LEVEL- or SIZE-class PVAR: a gauge that can rise and
// fall, with an attached high watermark.
type Level struct {
	v   atomic.Int64
	hwm atomic.Int64
}

// Set stores an absolute value.
func (l *Level) Set(v int64) {
	l.v.Store(v)
	l.raise(v)
}

// Add adjusts the gauge by delta and returns the new value.
func (l *Level) Add(delta int64) int64 {
	v := l.v.Add(delta)
	l.raise(v)
	return v
}

func (l *Level) raise(v int64) {
	for {
		cur := l.hwm.Load()
		if v <= cur || l.hwm.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load samples the gauge.
func (l *Level) Load() int64 { return l.v.Load() }

// HighWatermark samples the largest value ever stored.
func (l *Level) HighWatermark() int64 { return l.hwm.Load() }

// Watermark backs HIGHWATERMARK/LOWWATERMARK-class PVARs.
type Watermark struct {
	init atomic.Bool
	hi   atomic.Uint64
	lo   atomic.Uint64
}

// Record folds a new observation into both watermarks.
func (w *Watermark) Record(v uint64) {
	if w.init.CompareAndSwap(false, true) {
		w.hi.Store(v)
		w.lo.Store(v)
		return
	}
	for {
		cur := w.hi.Load()
		if v <= cur || w.hi.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := w.lo.Load()
		if v >= cur || w.lo.CompareAndSwap(cur, v) {
			break
		}
	}
}

// High samples the highest recorded value.
func (w *Watermark) High() uint64 { return w.hi.Load() }

// Low samples the lowest recorded value.
func (w *Watermark) Low() uint64 { return w.lo.Load() }

// Timer backs a TIMER-class PVAR bound to a handle: one measured
// interval, stored as nanoseconds. The zero Timer reads as zero.
type Timer struct {
	start time.Time
	ns    atomic.Uint64
}

// Start marks the beginning of the interval.
func (t *Timer) Start() { t.start = time.Now() }

// Stop closes the interval, accumulating elapsed nanoseconds.
func (t *Timer) Stop() {
	if !t.start.IsZero() {
		t.ns.Add(uint64(time.Since(t.start)))
		t.start = time.Time{}
	}
}

// SetDuration records an externally measured interval.
func (t *Timer) SetDuration(d time.Duration) { t.ns.Store(uint64(d)) }

// Nanos samples the accumulated interval in nanoseconds.
func (t *Timer) Nanos() uint64 { return t.ns.Load() }

// Duration samples the accumulated interval.
func (t *Timer) Duration() time.Duration { return time.Duration(t.ns.Load()) }
