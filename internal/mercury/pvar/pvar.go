// Package pvar implements the performance-variable (PVAR) interface that
// SYMBIOSYS adds to the Mercury RPC library, modeled on the MPI Tools
// Information Interface (MPI_T). A PVAR is a named, typed performance
// metric exported by the communication library; external tools discover
// and sample PVARs through sessions without the library shipping data to
// them (paper §IV-B, Tables I and II).
//
// Two concepts organize the space:
//
//   - Class: what kind of quantity the PVAR is (Table I) — a state, a
//     monotonically increasing counter, an interval timer, a resource
//     utilization level, a size, or a high/low watermark.
//   - Binding: the scope of the PVAR (paper §IV-B1). NoObject PVARs are
//     library-global (e.g. the completion-queue length); Handle PVARs
//     live on an individual RPC handle and vanish when it completes
//     (e.g. the input serialization time of one call).
//
// The sampling flow mirrors the paper: initialize a session, query the
// exported variables, allocate handles for the ones of interest, sample
// them (supplying the bound object for Handle-bound PVARs), then free
// the handles and finalize the session.
package pvar

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Class categorizes a PVAR (paper Table I).
type Class int

// PVAR classes.
const (
	// ClassState represents any one of a set of discrete states.
	ClassState Class = iota
	// ClassCounter is a monotonically increasing value.
	ClassCounter
	// ClassTimer is an interval event timer (nanoseconds).
	ClassTimer
	// ClassLevel represents the utilization level of a resource.
	ClassLevel
	// ClassSize represents the size of a resource.
	ClassSize
	// ClassHighWatermark is the highest recorded value of a metric.
	ClassHighWatermark
	// ClassLowWatermark is the lowest recorded value of a metric.
	ClassLowWatermark
)

// String returns the Table I spelling of the class.
func (c Class) String() string {
	switch c {
	case ClassState:
		return "STATE"
	case ClassCounter:
		return "COUNTER"
	case ClassTimer:
		return "TIMER"
	case ClassLevel:
		return "LEVEL"
	case ClassSize:
		return "SIZE"
	case ClassHighWatermark:
		return "HIGHWATERMARK"
	case ClassLowWatermark:
		return "LOWWATERMARK"
	default:
		return fmt.Sprintf("CLASS(%d)", int(c))
	}
}

// Binding scopes a PVAR to the library or to an RPC handle.
type Binding int

// PVAR bindings.
const (
	// BindNoObject marks library-global PVARs.
	BindNoObject Binding = iota
	// BindHandle marks PVARs bound to an individual RPC handle; sampling
	// them requires passing that handle.
	BindHandle
)

// String returns the paper's spelling of the binding.
func (b Binding) String() string {
	if b == BindHandle {
		return "HANDLE"
	}
	return "NO_OBJECT"
}

// Errors returned by the PVAR interface.
var (
	ErrUnknownPVar    = errors.New("pvar: unknown variable")
	ErrNeedBoundObj   = errors.New("pvar: handle-bound variable requires a bound object")
	ErrWrongBoundObj  = errors.New("pvar: bound object does not export this variable")
	ErrSessionClosed  = errors.New("pvar: session finalized")
	ErrHandleFreed    = errors.New("pvar: handle freed")
	ErrNoObjectBound  = errors.New("pvar: variable is library-global; do not pass an object")
	ErrHandleMismatch = errors.New("pvar: handle belongs to a different session")
)

// Info describes one exported PVAR.
type Info struct {
	Index       int
	Name        string
	Description string
	Class       Class
	Binding     Binding
}

// HandleReader reads a handle-bound PVAR off the bound object. The
// object is whatever the exporting library associates per-RPC (Mercury
// passes its *Handle); the reader reports ok=false if the object does
// not carry this variable.
type HandleReader func(obj any) (value uint64, ok bool)

// GlobalReader reads a library-global PVAR.
type GlobalReader func() uint64

type variable struct {
	info   Info
	global GlobalReader
	bound  HandleReader
}

// Registry is the set of PVARs exported by one library instance. The
// exporting library registers variables at initialization; tools access
// them through sessions.
type Registry struct {
	mu       sync.RWMutex
	vars     []*variable
	byName   map[string]int
	sessions atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// RegisterGlobal exports a library-global (NO_OBJECT) PVAR.
func (r *Registry) RegisterGlobal(name, desc string, class Class, read GlobalReader) {
	r.register(Info{Name: name, Description: desc, Class: class, Binding: BindNoObject},
		&variable{global: read})
}

// RegisterHandle exports a handle-bound PVAR.
func (r *Registry) RegisterHandle(name, desc string, class Class, read HandleReader) {
	r.register(Info{Name: name, Description: desc, Class: class, Binding: BindHandle},
		&variable{bound: read})
}

func (r *Registry) register(info Info, v *variable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[info.Name]; dup {
		panic(fmt.Sprintf("pvar: duplicate variable %q", info.Name))
	}
	info.Index = len(r.vars)
	v.info = info
	r.vars = append(r.vars, v)
	r.byName[info.Name] = info.Index
}

// NumVars reports how many PVARs are exported.
func (r *Registry) NumVars() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.vars)
}

// ActiveSessions reports how many sessions are currently initialized.
func (r *Registry) ActiveSessions() int64 { return r.sessions.Load() }

// Session is a tool's connection to the PVAR interface, the analogue of
// the paper's session_handle.
type Session struct {
	reg    *Registry
	id     uint64
	closed atomic.Bool

	mu      sync.Mutex
	handles map[*Handle]struct{}
}

var sessionIDs atomic.Uint64

// InitSession starts a sampling session.
func (r *Registry) InitSession() *Session {
	r.sessions.Add(1)
	return &Session{
		reg:     r,
		id:      sessionIDs.Add(1),
		handles: make(map[*Handle]struct{}),
	}
}

// ID returns the unique session identifier.
func (s *Session) ID() uint64 { return s.id }

// Query lists all exported PVARs, sorted by index.
func (s *Session) Query() ([]Info, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	out := make([]Info, len(s.reg.vars))
	for i, v := range s.reg.vars {
		out[i] = v.info
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// Lookup finds a PVAR by name.
func (s *Session) Lookup(name string) (Info, error) {
	if s.closed.Load() {
		return Info{}, ErrSessionClosed
	}
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	idx, ok := s.reg.byName[name]
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrUnknownPVar, name)
	}
	return s.reg.vars[idx].info, nil
}

// Handle is an allocated accessor for one PVAR within a session.
type Handle struct {
	session *Session
	v       *variable
	freed   atomic.Bool
}

// Info returns the described variable.
func (h *Handle) Info() Info { return h.v.info }

// AllocHandle allocates a sampling handle for the PVAR at index.
func (s *Session) AllocHandle(index int) (*Handle, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	s.reg.mu.RLock()
	if index < 0 || index >= len(s.reg.vars) {
		s.reg.mu.RUnlock()
		return nil, fmt.Errorf("%w: index %d", ErrUnknownPVar, index)
	}
	v := s.reg.vars[index]
	s.reg.mu.RUnlock()
	h := &Handle{session: s, v: v}
	s.mu.Lock()
	s.handles[h] = struct{}{}
	s.mu.Unlock()
	return h, nil
}

// AllocHandleByName allocates a sampling handle for the named PVAR.
func (s *Session) AllocHandleByName(name string) (*Handle, error) {
	info, err := s.Lookup(name)
	if err != nil {
		return nil, err
	}
	return s.AllocHandle(info.Index)
}

// Read samples the PVAR. For handle-bound variables, obj must be the
// object the variable is bound to (e.g. the Mercury handle of the RPC);
// for library-global variables obj must be nil.
func (s *Session) Read(h *Handle, obj any) (uint64, error) {
	if s.closed.Load() {
		return 0, ErrSessionClosed
	}
	if h.freed.Load() {
		return 0, ErrHandleFreed
	}
	if h.session != s {
		return 0, ErrHandleMismatch
	}
	switch h.v.info.Binding {
	case BindNoObject:
		if obj != nil {
			return 0, ErrNoObjectBound
		}
		return h.v.global(), nil
	case BindHandle:
		if obj == nil {
			return 0, fmt.Errorf("%w: %s", ErrNeedBoundObj, h.v.info.Name)
		}
		val, ok := h.v.bound(obj)
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrWrongBoundObj, h.v.info.Name)
		}
		return val, nil
	default:
		return 0, fmt.Errorf("pvar: bad binding %d", h.v.info.Binding)
	}
}

// FreeHandle releases a handle. Reading a freed handle fails.
func (s *Session) FreeHandle(h *Handle) {
	if h.freed.CompareAndSwap(false, true) {
		s.mu.Lock()
		delete(s.handles, h)
		s.mu.Unlock()
	}
}

// Finalize ends the session, freeing any remaining handles. It returns
// the number of handles that were still allocated (a leak indicator).
func (s *Session) Finalize() int {
	if !s.closed.CompareAndSwap(false, true) {
		return 0
	}
	s.mu.Lock()
	leaked := len(s.handles)
	for h := range s.handles {
		h.freed.Store(true)
	}
	s.handles = nil
	s.mu.Unlock()
	s.reg.sessions.Add(-1)
	return leaked
}
