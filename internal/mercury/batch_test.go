package mercury

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// registerBatchEcho installs an echo handler that fails entries whose
// Msg is "fail", so per-entry statuses diverge inside one frame.
func registerBatchEcho(t *testing.T, p testPair) {
	t.Helper()
	if err := p.server.Register("batch_echo", func(h *Handle) {
		var in echoArgs
		if err := h.GetInput(&in); err != nil {
			h.RespondError(err.Error(), Meta{}, nil)
			return
		}
		if in.Msg == "fail" {
			h.RespondError("boom", Meta{}, nil)
			return
		}
		out := echoArgs{Msg: strings.ToUpper(in.Msg), N: in.N + 1}
		if err := h.Respond(&out, Meta{}, nil); err != nil {
			t.Errorf("Respond: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Register("batch_echo", nil); err != nil {
		t.Fatal(err)
	}
}

func forwardBatchWait(t *testing.T, h *Handle, id uint64, b *BatchBuilder) error {
	t.Helper()
	done := make(chan error, 1)
	if err := h.ForwardBatch(id, b, func(h *Handle, err error) { done <- err }); err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("batch forward timed out")
		return nil
	}
}

// TestBatchRoundTrip sends one vectored frame with three sub-requests
// and checks that each entry gets its own verdict: two echoes succeed,
// the middle one fails, and outputs decode per entry.
func TestBatchRoundTrip(t *testing.T) {
	p := newRPCPair(t, Config{})
	registerBatchEcho(t, p)

	h, err := p.client.Create(p.server.Addr(), "batch_echo")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Destroy()

	b := AcquireBatch()
	defer b.Release()
	for _, m := range []string{"one", "fail", "three"} {
		if err := b.Add(&echoArgs{Msg: m, N: 1}, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Count() != 3 || b.Bytes() == 0 {
		t.Fatalf("builder count=%d bytes=%d", b.Count(), b.Bytes())
	}
	if err := forwardBatchWait(t, h, 42, b); err != nil {
		t.Fatalf("batch forward: %v", err)
	}
	if h.BatchLen() != 3 {
		t.Fatalf("BatchLen = %d", h.BatchLen())
	}

	var out echoArgs
	if err := h.BatchEntryErr(0); err != nil {
		t.Fatalf("entry 0: %v", err)
	}
	if err := h.BatchEntryOutput(0, &out); err != nil || out.Msg != "ONE" || out.N != 2 {
		t.Fatalf("entry 0 output = %+v, %v", out, err)
	}
	if err := h.BatchEntryErr(1); !errors.Is(err, ErrHandlerFail) {
		t.Fatalf("entry 1 err = %v, want ErrHandlerFail", err)
	}
	if err := h.BatchEntryErr(2); err != nil {
		t.Fatalf("entry 2: %v", err)
	}
	if err := h.BatchEntryOutput(2, &out); err != nil || out.Msg != "THREE" {
		t.Fatalf("entry 2 output = %+v, %v", out, err)
	}
}

// TestBatchBuilderReuse verifies Reset clears state for the next window
// while retaining capacity, and that a reused builder round-trips.
func TestBatchBuilderReuse(t *testing.T) {
	p := newRPCPair(t, Config{})
	registerBatchEcho(t, p)

	b := AcquireBatch()
	defer b.Release()
	for round := 0; round < 3; round++ {
		b.Reset()
		if b.Count() != 0 || b.Bytes() != 0 {
			t.Fatalf("round %d: dirty builder after Reset", round)
		}
		if err := b.Add(&echoArgs{Msg: "ping", N: uint64(round)}, Meta{}); err != nil {
			t.Fatal(err)
		}
		h, err := p.client.Create(p.server.Addr(), "batch_echo")
		if err != nil {
			t.Fatal(err)
		}
		if err := forwardBatchWait(t, h, uint64(round+1), b); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var out echoArgs
		if err := h.BatchEntryOutput(0, &out); err != nil || out.N != uint64(round)+1 {
			t.Fatalf("round %d output = %+v, %v", round, out, err)
		}
		h.Destroy()
	}
}

// TestMalformedBatchFrameDropped corrupts an entry's length field so
// the target cannot parse the frame. The whole frame must be dropped
// before any sub-request is delivered — no partial fan-out — and the
// server must keep servicing well-formed batches afterwards.
func TestMalformedBatchFrameDropped(t *testing.T) {
	p := newRPCPair(t, Config{})
	registerBatchEcho(t, p)

	bad := AcquireBatch()
	defer bad.Release()
	if err := bad.Add(&echoArgs{Msg: "x", N: 1}, Meta{}); err != nil {
		t.Fatal(err)
	}
	// Truncate the encoded buffer mid-entry: the header still claims
	// one entry, but its payload length now overruns the frame.
	bad.buf = bad.buf[:len(bad.buf)-1]

	h1, err := p.client.Create(p.server.Addr(), "batch_echo")
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan error, 1)
	if err := h1.ForwardBatch(1, bad, func(h *Handle, err error) { fired <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-fired:
		t.Fatalf("corrupt batch completed (%v), want silent drop", err)
	case <-time.After(100 * time.Millisecond):
	}
	h1.Cancel()
	h1.Destroy()

	// The server survived and still answers a valid batch.
	good := AcquireBatch()
	defer good.Release()
	if err := good.Add(&echoArgs{Msg: "ok", N: 1}, Meta{}); err != nil {
		t.Fatal(err)
	}
	h2, err := p.client.Create(p.server.Addr(), "batch_echo")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Destroy()
	if err := forwardBatchWait(t, h2, 2, good); err != nil {
		t.Fatalf("batch after corrupt frame: %v", err)
	}
	if err := h2.BatchEntryErr(0); err != nil {
		t.Fatalf("entry err after recovery: %v", err)
	}
}

// TestAppendEncodeSteadyStateAllocs pins the hot encode path to zero
// allocations: encoding into a buffer with capacity reuses it in place
// (ISSUE 6 satellite c). String fields inherently allocate on encode,
// so the pin uses the bytes-only KV shape.
func TestAppendEncodeSteadyStateAllocs(t *testing.T) {
	in := &kvWire{Key: []byte("steady-state-key"), Value: make([]byte, 256)}
	buf, err := AppendEncode(make([]byte, 0, 1024), in)
	if err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(1000, func() {
		out, err := AppendEncode(buf[:0], in)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if n != 0 {
		t.Fatalf("AppendEncode allocates %v/op on the steady path, want 0", n)
	}
}

// TestDecodeReuseSteadyStateAllocs pins the hot decode path: decoding
// into a struct whose byte slices already have capacity reuses them in
// place (string fields always allocate, so the pin uses a bytes-only
// payload — the shape of the KV hot path).
func TestDecodeReuseSteadyStateAllocs(t *testing.T) {
	kv := &kvWire{Key: []byte("key-000"), Value: make([]byte, 256)}
	wire, err := Encode(kv)
	if err != nil {
		t.Fatal(err)
	}
	dst := &kvWire{Key: make([]byte, 0, 64), Value: make([]byte, 0, 512)}
	if err := Decode(wire, dst); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(1000, func() {
		if err := Decode(wire, dst); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("capacity-reusing Decode allocates %v/op, want 0", n)
	}
	if string(dst.Key) != "key-000" || len(dst.Value) != 256 {
		t.Fatalf("decode corrupted: key=%q len(value)=%d", dst.Key, len(dst.Value))
	}
}

// kvWire is a bytes-only payload for the zero-alloc decode pin.
type kvWire struct {
	Key, Value []byte
}

func (a *kvWire) Proc(p *Proc) error {
	p.Bytes(&a.Key)
	p.Bytes(&a.Value)
	return p.Err()
}

// TestBatchAddSteadyStateAllocs pins BatchBuilder.Add to zero
// allocations once the builder's buffer has grown to working size.
func TestBatchAddSteadyStateAllocs(t *testing.T) {
	b := AcquireBatch()
	defer b.Release()
	in := &kvWire{Key: []byte("key"), Value: make([]byte, 128)}
	meta := Meta{RequestID: 1, Breadcrumb: 2, Order: 3, HasTrace: true}
	// Warm: grow the buffer to one window's size.
	for i := 0; i < 64; i++ {
		if err := b.Add(in, meta); err != nil {
			t.Fatal(err)
		}
	}
	b.Reset()
	k := 0
	n := testing.AllocsPerRun(1000, func() {
		if err := b.Add(in, meta); err != nil {
			t.Fatal(err)
		}
		if k++; k%64 == 0 {
			b.Reset()
		}
	})
	if n != 0 {
		t.Fatalf("BatchBuilder.Add allocates %v/op, want 0", n)
	}
}
