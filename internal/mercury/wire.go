package mercury

import (
	"encoding/binary"
	"fmt"

	"symbiosys/internal/na"
)

// Header flag bits.
const (
	// flagTrace marks requests carrying SYMBIOSYS breadcrumb/trace
	// metadata (instrumentation Stage 1 and above).
	flagTrace uint8 = 1 << iota
	// flagMore marks requests whose serialized input overflowed the
	// eager buffer; the remainder is fetched by internal RDMA.
	flagMore
	// flagDeadline marks requests carrying overload-control metadata:
	// an absolute completion deadline and a scheduling priority. Unlike
	// the trace fields these are control-plane state, present whenever
	// the origin set them regardless of the measurement stage.
	flagDeadline
	// flagBatch marks a vectored frame: the payload carries Count
	// sub-requests (or, on a response, Count per-entry statuses), each
	// preceded by a batchReqEntry/batchRespEntry header. Batch frames
	// never set flagMore — the coalescer's byte budget keeps them under
	// the eager limit, so the RDMA overflow path and the arena pools
	// never alias the same memory.
	flagBatch
)

// Response status codes.
const (
	statusOK uint8 = iota
	statusUnknownRPC
	statusHandlerError
	// statusOverloaded reports a request shed by the target's admission
	// control before a handler executed it (safe to retry elsewhere or
	// after backoff).
	statusOverloaded
	// statusExpired reports a request rejected because its propagated
	// deadline had already passed when the target examined it.
	statusExpired
)

// Meta is the SYMBIOSYS metadata piggybacked on RPC messages: the 64-bit
// callpath breadcrumb, the globally unique request ID, the Lamport
// order counter (paper §IV-A), and the overload-control fields
// (absolute deadline, priority) every layer consults for drop/serve
// decisions.
type Meta struct {
	HasTrace   bool
	Breadcrumb uint64
	RequestID  uint64
	Order      uint64
	// DeadlineNanos is the absolute request deadline (Unix nanoseconds);
	// zero means no deadline. Targets reject requests whose deadline
	// already passed instead of burning an execution stream on them.
	DeadlineNanos int64
	// Priority is the request's admission class: higher values survive
	// load shedding longer (see margo.OverloadPolicy.HighPriority).
	Priority uint8
	// BatchID groups the sub-requests of one vectored forward: every
	// sub-request's t1–t14 chain carries the same BatchID so the
	// analysis plane can stitch per-op traces back to their batch.
	// Zero means the request was not batched.
	BatchID uint64
}

// reqHeader is the request wire header.
type reqHeader struct {
	RPCID      uint32
	Cookie     uint64
	Flags      uint8
	Breadcrumb uint64
	RequestID  uint64
	Order      uint64
	// DeadlineNanos and Priority are present when flagDeadline is set.
	DeadlineNanos int64
	Priority      uint8
	// TotalLen and Mem are present when flagMore is set.
	TotalLen uint32
	Mem      na.MemHandle
	// BatchID and Count are present when flagBatch is set.
	BatchID uint64
	Count   uint32
}

// Proc implements Procable.
func (r *reqHeader) Proc(p *Proc) error {
	p.Uint32(&r.RPCID)
	p.Uint64(&r.Cookie)
	p.Uint8(&r.Flags)
	if r.Flags&flagTrace != 0 {
		p.Uint64(&r.Breadcrumb)
		p.Uint64(&r.RequestID)
		p.Uint64(&r.Order)
	}
	if r.Flags&flagDeadline != 0 {
		p.Int64(&r.DeadlineNanos)
		p.Uint8(&r.Priority)
	}
	if r.Flags&flagMore != 0 {
		p.Uint32(&r.TotalLen)
		p.String(&r.Mem.Addr)
		p.Uint64(&r.Mem.ID)
		p.Int(&r.Mem.Len)
	}
	if r.Flags&flagBatch != 0 {
		p.Uint64(&r.BatchID)
		p.Uint32(&r.Count)
	}
	return p.Err()
}

// respHeader is the response wire header.
type respHeader struct {
	Status uint8
	Flags  uint8
	Order  uint64
	// Count is present when flagBatch is set: the payload carries that
	// many batchRespEntry records.
	Count uint32
}

// Proc implements Procable.
func (r *respHeader) Proc(p *Proc) error {
	p.Uint8(&r.Status)
	p.Uint8(&r.Flags)
	if r.Flags&flagTrace != 0 {
		p.Uint64(&r.Order)
	}
	if r.Flags&flagBatch != 0 {
		p.Uint32(&r.Count)
	}
	return p.Err()
}

// batchReqEntry precedes each sub-request payload inside a vectored
// request frame. It carries the per-op slice of the Meta fields so the
// target can reconstruct one independent t1–t14 chain per logical op.
type batchReqEntry struct {
	Flags         uint8 // flagTrace | flagDeadline, per entry
	Breadcrumb    uint64
	RequestID     uint64
	Order         uint64
	DeadlineNanos int64
	Priority      uint8
	Len           uint32 // sub-request payload length
}

// Proc implements Procable.
func (e *batchReqEntry) Proc(p *Proc) error {
	p.Uint8(&e.Flags)
	if e.Flags&flagTrace != 0 {
		p.Uint64(&e.Breadcrumb)
		p.Uint64(&e.RequestID)
		p.Uint64(&e.Order)
	}
	if e.Flags&flagDeadline != 0 {
		p.Int64(&e.DeadlineNanos)
		p.Uint8(&e.Priority)
	}
	p.Uint32(&e.Len)
	return p.Err()
}

// batchRespEntry precedes each sub-response payload inside a vectored
// response frame: per-entry status plus the target-side Lamport order.
type batchRespEntry struct {
	Status uint8
	Flags  uint8 // flagTrace
	Order  uint64
	Len    uint32
}

// Proc implements Procable.
func (e *batchRespEntry) Proc(p *Proc) error {
	p.Uint8(&e.Status)
	p.Uint8(&e.Flags)
	if e.Flags&flagTrace != 0 {
		p.Uint64(&e.Order)
	}
	p.Uint32(&e.Len)
	return p.Err()
}

// packFrame prefixes an encoded header with its length and appends the
// payload: [u32 hdrLen][header][payload]. The header is encoded into
// pooled scratch; the only allocation is the exact-size frame itself,
// which must be fresh because na.Endpoint.Send captures the slice (the
// in-process receiver aliases it), so sent frames can never come from a
// pool. One allocation per frame is therefore the steady-state floor —
// batching amortizes it across the sub-requests a frame carries.
func packFrame(hdr Procable, payload []byte) ([]byte, error) {
	arena := getArena()
	hb, err := AppendEncode(*arena, hdr)
	if err != nil {
		putArena(arena, hb)
		return nil, err
	}
	frame := make([]byte, 0, 4+len(hb)+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(hb)))
	frame = append(frame, hb...)
	frame = append(frame, payload...)
	putArena(arena, hb)
	return frame, nil
}

// unpackFrame splits a frame into its decoded header and payload view.
func unpackFrame(data []byte, hdr Procable) (payload []byte, err error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: frame too short", ErrProcShort)
	}
	hl := int(binary.LittleEndian.Uint32(data))
	if 4+hl > len(data) {
		return nil, fmt.Errorf("%w: header length %d exceeds frame", ErrProcShort, hl)
	}
	if err := Decode(data[4:4+hl], hdr); err != nil {
		return nil, err
	}
	return data[4+hl:], nil
}
