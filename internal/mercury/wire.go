package mercury

import (
	"encoding/binary"
	"fmt"

	"symbiosys/internal/na"
)

// Header flag bits.
const (
	// flagTrace marks requests carrying SYMBIOSYS breadcrumb/trace
	// metadata (instrumentation Stage 1 and above).
	flagTrace uint8 = 1 << iota
	// flagMore marks requests whose serialized input overflowed the
	// eager buffer; the remainder is fetched by internal RDMA.
	flagMore
	// flagDeadline marks requests carrying overload-control metadata:
	// an absolute completion deadline and a scheduling priority. Unlike
	// the trace fields these are control-plane state, present whenever
	// the origin set them regardless of the measurement stage.
	flagDeadline
)

// Response status codes.
const (
	statusOK uint8 = iota
	statusUnknownRPC
	statusHandlerError
	// statusOverloaded reports a request shed by the target's admission
	// control before a handler executed it (safe to retry elsewhere or
	// after backoff).
	statusOverloaded
	// statusExpired reports a request rejected because its propagated
	// deadline had already passed when the target examined it.
	statusExpired
)

// Meta is the SYMBIOSYS metadata piggybacked on RPC messages: the 64-bit
// callpath breadcrumb, the globally unique request ID, the Lamport
// order counter (paper §IV-A), and the overload-control fields
// (absolute deadline, priority) every layer consults for drop/serve
// decisions.
type Meta struct {
	HasTrace   bool
	Breadcrumb uint64
	RequestID  uint64
	Order      uint64
	// DeadlineNanos is the absolute request deadline (Unix nanoseconds);
	// zero means no deadline. Targets reject requests whose deadline
	// already passed instead of burning an execution stream on them.
	DeadlineNanos int64
	// Priority is the request's admission class: higher values survive
	// load shedding longer (see margo.OverloadPolicy.HighPriority).
	Priority uint8
}

// reqHeader is the request wire header.
type reqHeader struct {
	RPCID      uint32
	Cookie     uint64
	Flags      uint8
	Breadcrumb uint64
	RequestID  uint64
	Order      uint64
	// DeadlineNanos and Priority are present when flagDeadline is set.
	DeadlineNanos int64
	Priority      uint8
	// TotalLen and Mem are present when flagMore is set.
	TotalLen uint32
	Mem      na.MemHandle
}

// Proc implements Procable.
func (r *reqHeader) Proc(p *Proc) error {
	p.Uint32(&r.RPCID)
	p.Uint64(&r.Cookie)
	p.Uint8(&r.Flags)
	if r.Flags&flagTrace != 0 {
		p.Uint64(&r.Breadcrumb)
		p.Uint64(&r.RequestID)
		p.Uint64(&r.Order)
	}
	if r.Flags&flagDeadline != 0 {
		p.Int64(&r.DeadlineNanos)
		p.Uint8(&r.Priority)
	}
	if r.Flags&flagMore != 0 {
		p.Uint32(&r.TotalLen)
		p.String(&r.Mem.Addr)
		p.Uint64(&r.Mem.ID)
		p.Int(&r.Mem.Len)
	}
	return p.Err()
}

// respHeader is the response wire header.
type respHeader struct {
	Status uint8
	Flags  uint8
	Order  uint64
}

// Proc implements Procable.
func (r *respHeader) Proc(p *Proc) error {
	p.Uint8(&r.Status)
	p.Uint8(&r.Flags)
	if r.Flags&flagTrace != 0 {
		p.Uint64(&r.Order)
	}
	return p.Err()
}

// packFrame prefixes an encoded header with its length and appends the
// payload: [u32 hdrLen][header][payload].
func packFrame(hdr Procable, payload []byte) ([]byte, error) {
	hb, err := Encode(hdr)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 0, 4+len(hb)+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(hb)))
	frame = append(frame, hb...)
	frame = append(frame, payload...)
	return frame, nil
}

// unpackFrame splits a frame into its decoded header and payload view.
func unpackFrame(data []byte, hdr Procable) (payload []byte, err error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: frame too short", ErrProcShort)
	}
	hl := int(binary.LittleEndian.Uint32(data))
	if 4+hl > len(data) {
		return nil, fmt.Errorf("%w: header length %d exceeds frame", ErrProcShort, hl)
	}
	if err := Decode(data[4:4+hl], hdr); err != nil {
		return nil, err
	}
	return data[4+hl:], nil
}
