package mercury

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Op selects the direction of a Proc pass.
type Op int8

// Proc directions.
const (
	// OpEncode serializes fields into the wire buffer.
	OpEncode Op = iota
	// OpDecode parses fields from the wire buffer.
	OpDecode
)

// Proc errors.
var (
	ErrProcShort  = errors.New("mercury: proc buffer exhausted")
	ErrProcString = errors.New("mercury: string length out of range")
)

// Procable is the interface of RPC argument types. A single Proc method
// drives both serialization and deserialization, mirroring Mercury's
// hg_proc callbacks: the method visits each field in order and the Proc's
// direction decides whether the field is written or read.
type Procable interface {
	Proc(p *Proc) error
}

// Proc is a serialization cursor over a wire buffer.
type Proc struct {
	op  Op
	buf []byte
	off int
	err error
}

// NewEncoder returns a Proc that appends encoded fields to an internal
// buffer retrievable with Bytes.
func NewEncoder() *Proc { return &Proc{op: OpEncode} }

// NewDecoder returns a Proc that reads fields from buf.
func NewDecoder(buf []byte) *Proc { return &Proc{op: OpDecode, buf: buf} }

// procPool recycles Proc cursors so the per-call encode/decode on the
// RPC hot path (Forward, Respond, GetInput, GetOutput) does not allocate
// a cursor each time. Released Procs drop their buffer reference; arena
// buffers are pooled separately so they can grow in place and be handed
// between cursors.
var procPool = sync.Pool{New: func() any { return new(Proc) }}

// acquireEncoder returns a pooled Proc encoding by appending to dst
// (which may be nil or a recycled arena).
func acquireEncoder(dst []byte) *Proc {
	p := procPool.Get().(*Proc)
	p.op, p.buf, p.off, p.err = OpEncode, dst, 0, nil
	return p
}

// acquireDecoder returns a pooled Proc decoding from buf.
func acquireDecoder(buf []byte) *Proc {
	p := procPool.Get().(*Proc)
	p.op, p.buf, p.off, p.err = OpDecode, buf, 0, nil
	return p
}

// releaseProc returns a pooled Proc. The cursor must not be used after
// release; its buffer reference is cleared so pooled cursors never pin
// wire frames or arenas.
func releaseProc(p *Proc) {
	p.buf, p.off, p.err = nil, 0, nil
	procPool.Put(p)
}

// arenaMaxRetain bounds the capacity of buffers returned to the arena
// pool; occasional giant payloads are dropped to the GC rather than
// pinned forever by the pool.
const arenaMaxRetain = 1 << 20

// arenaPool recycles encode scratch buffers: grow-in-place during use,
// reset-on-put. Buffers are pooled as *[]byte to avoid the slice-header
// allocation a plain []byte interface conversion would cost.
var arenaPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// getArena returns a zero-length scratch buffer with retained capacity.
func getArena() *[]byte { return arenaPool.Get().(*[]byte) }

// putArena resets and recycles a scratch buffer. Pass the (possibly
// reallocated) slice back so grown capacity is retained for the next
// user. Must not be called while any live data aliases the buffer.
func putArena(a *[]byte, b []byte) {
	if cap(b) > arenaMaxRetain {
		return
	}
	*a = b[:0]
	arenaPool.Put(a)
}

// Op reports the direction of the pass.
func (p *Proc) Op() Op { return p.op }

// Err returns the first error encountered.
func (p *Proc) Err() error { return p.err }

// Buffer returns the encoded wire buffer (encode direction).
func (p *Proc) Buffer() []byte { return p.buf }

// Remaining reports unread bytes (decode direction).
func (p *Proc) Remaining() int { return len(p.buf) - p.off }

func (p *Proc) fail(err error) error {
	if p.err == nil {
		p.err = err
	}
	return p.err
}

func (p *Proc) take(n int) ([]byte, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.off+n > len(p.buf) {
		return nil, p.fail(fmt.Errorf("%w: need %d have %d", ErrProcShort, n, len(p.buf)-p.off))
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b, nil
}

// Uint64 processes a fixed-width 64-bit unsigned field.
func (p *Proc) Uint64(v *uint64) error {
	if p.op == OpEncode {
		if p.err != nil {
			return p.err
		}
		p.buf = binary.LittleEndian.AppendUint64(p.buf, *v)
		return nil
	}
	b, err := p.take(8)
	if err != nil {
		return err
	}
	*v = binary.LittleEndian.Uint64(b)
	return nil
}

// Uint32 processes a fixed-width 32-bit unsigned field.
func (p *Proc) Uint32(v *uint32) error {
	if p.op == OpEncode {
		if p.err != nil {
			return p.err
		}
		p.buf = binary.LittleEndian.AppendUint32(p.buf, *v)
		return nil
	}
	b, err := p.take(4)
	if err != nil {
		return err
	}
	*v = binary.LittleEndian.Uint32(b)
	return nil
}

// Uint16 processes a fixed-width 16-bit unsigned field.
func (p *Proc) Uint16(v *uint16) error {
	if p.op == OpEncode {
		if p.err != nil {
			return p.err
		}
		p.buf = binary.LittleEndian.AppendUint16(p.buf, *v)
		return nil
	}
	b, err := p.take(2)
	if err != nil {
		return err
	}
	*v = binary.LittleEndian.Uint16(b)
	return nil
}

// Uint8 processes a single byte field.
func (p *Proc) Uint8(v *uint8) error {
	if p.op == OpEncode {
		if p.err != nil {
			return p.err
		}
		p.buf = append(p.buf, *v)
		return nil
	}
	b, err := p.take(1)
	if err != nil {
		return err
	}
	*v = b[0]
	return nil
}

// Int64 processes a signed 64-bit field.
func (p *Proc) Int64(v *int64) error {
	u := uint64(*v)
	if err := p.Uint64(&u); err != nil {
		return err
	}
	*v = int64(u)
	return nil
}

// Int processes an int field as 64 bits.
func (p *Proc) Int(v *int) error {
	i := int64(*v)
	if err := p.Int64(&i); err != nil {
		return err
	}
	*v = int(i)
	return nil
}

// Bool processes a boolean field.
func (p *Proc) Bool(v *bool) error {
	var b uint8
	if *v {
		b = 1
	}
	if err := p.Uint8(&b); err != nil {
		return err
	}
	*v = b != 0
	return nil
}

// Float64 processes a 64-bit float field.
func (p *Proc) Float64(v *float64) error {
	u := math.Float64bits(*v)
	if err := p.Uint64(&u); err != nil {
		return err
	}
	*v = math.Float64frombits(u)
	return nil
}

// maxBlob bounds decoded variable-length fields so corrupt lengths fail
// instead of attempting enormous allocations.
const maxBlob = 1 << 30

// Bytes processes a length-prefixed byte slice.
func (p *Proc) Bytes(v *[]byte) error {
	if p.op == OpEncode {
		n := uint32(len(*v))
		if err := p.Uint32(&n); err != nil {
			return err
		}
		if p.err == nil {
			p.buf = append(p.buf, *v...)
		}
		return p.err
	}
	var n uint32
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if n > maxBlob {
		return p.fail(fmt.Errorf("%w: %d", ErrProcString, n))
	}
	b, err := p.take(int(n))
	if err != nil {
		return err
	}
	// Reuse the caller's capacity when it suffices: decoding into a
	// recycled struct is then allocation-free. Fresh (nil) destinations
	// allocate exactly as before, so decoded slices that the caller
	// retains (e.g. KV keys stored by a handler) are never aliased to a
	// pooled buffer unless the caller opted in by recycling the struct.
	if cap(*v) >= int(n) && *v != nil {
		out := (*v)[:n]
		copy(out, b)
		*v = out
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	*v = out
	return nil
}

// String processes a length-prefixed string.
func (p *Proc) String(v *string) error {
	if p.op == OpEncode {
		b := []byte(*v)
		return p.Bytes(&b)
	}
	var b []byte
	if err := p.Bytes(&b); err != nil {
		return err
	}
	*v = string(b)
	return nil
}

// StringSlice processes a slice of strings.
func (p *Proc) StringSlice(v *[]string) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.op == OpDecode {
		if n > maxBlob {
			return p.fail(fmt.Errorf("%w: %d", ErrProcString, n))
		}
		*v = make([]string, n)
	}
	for i := range *v {
		if err := p.String(&(*v)[i]); err != nil {
			return err
		}
	}
	return p.err
}

// BytesSlice processes a slice of byte slices.
func (p *Proc) BytesSlice(v *[][]byte) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.op == OpDecode {
		if n > maxBlob {
			return p.fail(fmt.Errorf("%w: %d", ErrProcString, n))
		}
		if cap(*v) >= int(n) && *v != nil {
			*v = (*v)[:n]
		} else {
			*v = make([][]byte, n)
		}
	}
	for i := range *v {
		if err := p.Bytes(&(*v)[i]); err != nil {
			return err
		}
	}
	return p.err
}

// Uint64Slice processes a slice of uint64 values.
func (p *Proc) Uint64Slice(v *[]uint64) error {
	n := uint32(len(*v))
	if err := p.Uint32(&n); err != nil {
		return err
	}
	if p.op == OpDecode {
		if n > maxBlob/8 {
			return p.fail(fmt.Errorf("%w: %d", ErrProcString, n))
		}
		if cap(*v) >= int(n) && *v != nil {
			*v = (*v)[:n]
		} else {
			*v = make([]uint64, n)
		}
	}
	for i := range *v {
		if err := p.Uint64(&(*v)[i]); err != nil {
			return err
		}
	}
	return p.err
}

// Encode serializes a Procable to a freshly allocated buffer. The
// cursor comes from the pool; only the exact-size result escapes.
func Encode(v Procable) ([]byte, error) {
	arena := getArena()
	out, err := AppendEncode(*arena, v)
	if err != nil {
		putArena(arena, out)
		return nil, err
	}
	buf := make([]byte, len(out))
	copy(buf, out)
	putArena(arena, out)
	return buf, nil
}

// AppendEncode serializes a Procable by appending to dst and returns the
// extended slice. When dst has sufficient capacity the call performs no
// allocations — this is the arena-backed hot-path entry point.
func AppendEncode(dst []byte, v Procable) ([]byte, error) {
	p := acquireEncoder(dst)
	err := v.Proc(p)
	if err == nil {
		err = p.Err()
	}
	out := p.buf
	releaseProc(p)
	if err != nil {
		return dst, err
	}
	return out, nil
}

// Decode parses a Procable from bytes using a pooled cursor.
func Decode(buf []byte, v Procable) error {
	p := acquireDecoder(buf)
	err := v.Proc(p)
	if err == nil {
		err = p.Err()
	}
	releaseProc(p)
	return err
}

// RawBytes adapts a plain byte payload to Procable.
type RawBytes []byte

// Proc implements Procable.
func (r *RawBytes) Proc(p *Proc) error {
	b := []byte(*r)
	if err := p.Bytes(&b); err != nil {
		return err
	}
	*r = RawBytes(b)
	return nil
}

// Void is an empty argument/response type.
type Void struct{}

// Proc implements Procable.
func (Void) Proc(*Proc) error { return nil }
