package mercury

import (
	"fmt"

	"symbiosys/internal/na"
)

// Bulk describes a registered memory region that can be transferred
// one-sidedly between processes, mirroring Mercury's bulk interface.
// Bulk handles are serializable and typically travel inside RPC inputs
// so the target can pull (or push) the data.
type Bulk struct {
	Mem na.MemHandle
}

// Proc implements Procable so bulk descriptors can ride in RPC args.
func (b *Bulk) Proc(p *Proc) error {
	p.String(&b.Mem.Addr)
	p.Uint64(&b.Mem.ID)
	p.Int(&b.Mem.Len)
	return p.Err()
}

// Size returns the registered region length in bytes.
func (b *Bulk) Size() int { return b.Mem.Len }

// BulkCreate registers buf for one-sided transfer and returns its
// descriptor. Free it with BulkFree when the transfer window closes.
func (c *Class) BulkCreate(buf []byte) Bulk {
	return Bulk{Mem: c.ep.RegisterMemory(buf)}
}

// BulkFree revokes a descriptor created by BulkCreate.
func (c *Class) BulkFree(b Bulk) {
	c.ep.DeregisterMemory(b.Mem)
}

// BulkPull reads remote[off:off+len(local)] into local. cb fires from
// Trigger when the transfer completes. This is the path a target uses to
// fetch key-value content after an sdskv_put_packed request (paper §V-C).
func (c *Class) BulkPull(remote Bulk, off int, local []byte, cb func(error)) error {
	return c.bulkOp(remote, off, local, cb, false)
}

// BulkPush writes local into remote[off:off+len(local)].
func (c *Class) BulkPush(remote Bulk, off int, local []byte, cb func(error)) error {
	return c.bulkOp(remote, off, local, cb, true)
}

func (c *Class) bulkOp(remote Bulk, off int, local []byte, cb func(error), push bool) error {
	if cb == nil {
		return fmt.Errorf("mercury: bulk transfer requires a callback")
	}
	c.bulkBytes.Add(uint64(len(local)))
	if push {
		c.ep.Put(remote.Mem, off, local, &bulkCtx{cb: cb})
	} else {
		c.ep.Get(remote.Mem, off, local, &bulkCtx{cb: cb})
	}
	return nil
}
