package mercury

import (
	"fmt"
	"sync/atomic"
	"time"

	"symbiosys/internal/na"

	"symbiosys/internal/mercury/pvar"
)

// Handle represents one RPC exchange, on either side: the origin creates
// a handle, forwards input through it and receives the response; the
// target receives a handle per incoming request and responds through it.
// Handle-bound PVARs (the per-RPC timers of Table II) live here and go
// out of scope with the handle, exactly as the paper describes.
type Handle struct {
	class   *Class
	cookie  uint64
	rpcID   uint32
	rpcName string

	// target is the service address; peer is the origin address (set on
	// the target side from the incoming message).
	target string
	peer   string
	isTgt  bool

	// Origin-side state.
	cb            ForwardCallback
	respPayload   []byte
	respStatus    uint8
	respMeta      Meta
	memRegistered bool
	memH          na.MemHandle
	completed     atomic.Bool
	// batchEnts holds the parsed per-entry views of a vectored
	// response (origin side of a ForwardBatch).
	batchEnts []batchRespView

	// Target-side state.
	reqPayload []byte
	meta       Meta
	arrived    time.Time
	// batchTgt links a sub-handle of a vectored request to the shared
	// fan-in state; batchSlot is this entry's index in the reply.
	batchTgt  *batchTarget
	batchSlot int

	destroyed atomic.Bool

	// Handle-bound PVARs (paper Table II).
	InputSerTime    pvar.Timer // t2→t3: serialize input on origin
	InputDeserTime  pvar.Timer // t6→t7: deserialize input on target
	OutputSerTime   pvar.Timer // t9→t10: serialize output on target
	OutputDeserTime pvar.Timer // deserialize output on origin
	RDMATime        pvar.Timer // t3→t4: internal RDMA metadata fetch
	OriginCBTime    pvar.Timer // t12→t14: response CQ residence
}

// Create prepares an origin-side handle for one invocation of the named
// RPC at the target address. The RPC must have been registered locally
// (a nil handler suffices on clients).
func (c *Class) Create(target, rpcName string) (*Handle, error) {
	id := hashRPC(rpcName)
	c.mu.Lock()
	def := c.rpcs[id]
	c.mu.Unlock()
	if def == nil || def.name != rpcName {
		return nil, fmt.Errorf("%w: %q not registered locally", ErrUnknownRPC, rpcName)
	}
	return &Handle{
		class:   c,
		cookie:  c.cookieSeq.Add(1),
		rpcID:   id,
		rpcName: rpcName,
		target:  target,
	}, nil
}

// RPCName returns the RPC the handle belongs to.
func (h *Handle) RPCName() string { return h.rpcName }

// Target returns the service address of the exchange.
func (h *Handle) Target() string { return h.target }

// Peer returns the origin address (target side only).
func (h *Handle) Peer() string { return h.peer }

// Meta returns the SYMBIOSYS metadata carried by the request (target
// side) — breadcrumb, request ID, Lamport order.
func (h *Handle) Meta() Meta { return h.meta }

// RespMeta returns the metadata carried by the response (origin side).
func (h *Handle) RespMeta() Meta { return h.respMeta }

// Arrived returns when the request arrived at the target (t3).
func (h *Handle) Arrived() time.Time { return h.arrived }

// Forward serializes in, posts the handle, and sends the request. cb is
// invoked from Trigger when the response (or a failure) arrives. meta is
// the instrumentation payload; with meta.HasTrace false nothing extra is
// sent (the measurement-off baseline).
func (h *Handle) Forward(in Procable, meta Meta, cb ForwardCallback) error {
	if h.destroyed.Load() {
		return ErrDestroyed
	}
	if h.isTgt {
		return fmt.Errorf("mercury: Forward on a target-side handle")
	}
	c := h.class
	c.rpcsInvoked.Inc()

	// Serialize into a pooled arena: the cursor and scratch buffer are
	// recycled, so the only allocation left on this path is the frame
	// handed to the fabric (see packFrame).
	h.InputSerTime.Start()
	arena := getArena()
	payload, err := AppendEncode(*arena, in)
	h.InputSerTime.Stop()
	if err != nil {
		putArena(arena, payload)
		return fmt.Errorf("mercury: encode input for %s: %w", h.rpcName, err)
	}

	hdr := reqHeader{RPCID: h.rpcID, Cookie: h.cookie}
	if meta.HasTrace {
		hdr.Flags |= flagTrace
		hdr.Breadcrumb = meta.Breadcrumb
		hdr.RequestID = meta.RequestID
		hdr.Order = meta.Order
	}
	if meta.DeadlineNanos != 0 || meta.Priority != 0 {
		hdr.Flags |= flagDeadline
		hdr.DeadlineNanos = meta.DeadlineNanos
		hdr.Priority = meta.Priority
	}
	eager := payload
	if len(payload) > c.cfg.EagerLimit {
		// Eager overflow: expose the tail for the target's internal
		// RDMA fetch and send only the head eagerly. The tail must be
		// copied out of the pooled arena first — registered memory is
		// held until the RDMA completes, long after the arena has been
		// recycled for another request.
		c.eagerOverflows.Inc()
		hdr.Flags |= flagMore
		hdr.TotalLen = uint32(len(payload))
		tail := make([]byte, len(payload)-c.cfg.EagerLimit)
		copy(tail, payload[c.cfg.EagerLimit:])
		h.memH = c.ep.RegisterMemory(tail)
		h.memRegistered = true
		hdr.Mem = h.memH
		eager = payload[:c.cfg.EagerLimit]
	}
	frame, err := packFrame(&hdr, eager)
	putArena(arena, payload)
	if err != nil {
		return err
	}

	h.cb = cb
	c.mu.Lock()
	c.posted[h.cookie] = h
	c.mu.Unlock()
	c.postedLevel.Add(1)

	c.ep.Send(h.target, na.TagUnexpected, frame, &forwardSendCtx{h: h})
	return nil
}

// completeForward finishes the origin side exactly once.
func (h *Handle) completeForward(err error) {
	if !h.completed.CompareAndSwap(false, true) {
		return
	}
	if h.memRegistered {
		h.class.ep.DeregisterMemory(h.memH)
		h.memRegistered = false
	}
	if err == nil {
		err = h.statusErr(h.respStatus, h.respPayload)
	}
	if h.cb != nil {
		h.cb(h, err)
	}
}

// statusErr maps a wire status (top-level or batch entry) to the error
// the Forward caller observes.
func (h *Handle) statusErr(status uint8, payload []byte) error {
	switch status {
	case statusOK:
		return nil
	case statusUnknownRPC:
		return fmt.Errorf("%w: %s", ErrUnknownRPC, h.rpcName)
	case statusHandlerError:
		var msg RawBytes
		if derr := Decode(payload, &msg); derr == nil && len(msg) > 0 {
			return fmt.Errorf("%w: %s: %s", ErrHandlerFail, h.rpcName, msg)
		}
		return fmt.Errorf("%w: %s", ErrHandlerFail, h.rpcName)
	case statusOverloaded:
		return fmt.Errorf("%w: %s", ErrOverloaded, h.rpcName)
	case statusExpired:
		return fmt.Errorf("%w: %s", ErrDeadlineExpired, h.rpcName)
	default:
		return fmt.Errorf("mercury: bad response status %d", status)
	}
}

// Cancel aborts a posted Forward; the callback fires with ErrCanceled.
// A response arriving later is dropped as stale.
func (h *Handle) Cancel() {
	c := h.class
	c.unpost(h)
	c.enqueue(func(time.Time) { h.completeForward(ErrCanceled) })
}

// GetInput deserializes the request payload into v (target side),
// charging the input_deserialization_time PVAR (t6→t7).
func (h *Handle) GetInput(v Procable) error {
	h.InputDeserTime.Start()
	err := Decode(h.reqPayload, v)
	h.InputDeserTime.Stop()
	if err != nil {
		return fmt.Errorf("mercury: decode input for rpc %#x: %w", h.rpcID, err)
	}
	return nil
}

// GetOutput deserializes the response payload into v (origin side).
func (h *Handle) GetOutput(v Procable) error {
	h.OutputDeserTime.Start()
	err := Decode(h.respPayload, v)
	h.OutputDeserTime.Stop()
	if err != nil {
		return fmt.Errorf("mercury: decode output for %s: %w", h.rpcName, err)
	}
	return nil
}

// InputSize reports the serialized request payload size at the target.
func (h *Handle) InputSize() int { return len(h.reqPayload) }

// Respond serializes out and sends it back to the origin. cb (optional)
// fires from Trigger when the response has been handed to the network —
// the paper's t13, closing the target completion callback interval.
func (h *Handle) Respond(out Procable, meta Meta, cb func(error)) error {
	return h.respondStatus(statusOK, out, meta, cb)
}

// RespondError reports a handler failure to the origin.
func (h *Handle) RespondError(msg string, meta Meta, cb func(error)) error {
	raw := RawBytes(msg)
	return h.respondStatus(statusHandlerError, &raw, meta, cb)
}

// RespondOverloaded reports that the target's admission control shed
// the request before any handler ran; the origin's Forward completes
// with ErrOverloaded.
func (h *Handle) RespondOverloaded(meta Meta, cb func(error)) error {
	return h.respondStatus(statusOverloaded, nil, meta, cb)
}

// RespondExpired reports that the request's propagated deadline had
// already passed when the target examined it; the origin's Forward
// completes with ErrDeadlineExpired.
func (h *Handle) RespondExpired(meta Meta, cb func(error)) error {
	return h.respondStatus(statusExpired, nil, meta, cb)
}

func (h *Handle) respondStatus(status uint8, out Procable, meta Meta, cb func(error)) error {
	if !h.isTgt {
		return fmt.Errorf("mercury: Respond on an origin-side handle")
	}
	if h.batchTgt != nil {
		// Sub-request of a vectored frame: record into the shared batch
		// reply instead of sending a frame of its own. The last member
		// to respond packs and sends the single batch response.
		return h.batchTgt.record(h, status, out, meta, cb)
	}
	c := h.class
	arena := getArena()
	payload := *arena
	var err error
	if out != nil {
		h.OutputSerTime.Start()
		payload, err = AppendEncode(payload, out)
		h.OutputSerTime.Stop()
		if err != nil {
			putArena(arena, payload)
			return fmt.Errorf("mercury: encode output for rpc %#x: %w", h.rpcID, err)
		}
	}
	hdr := respHeader{Status: status}
	if meta.HasTrace {
		hdr.Flags |= flagTrace
		hdr.Order = meta.Order
	}
	frame, err := packFrame(&hdr, payload)
	putArena(arena, payload)
	if err != nil {
		return err
	}
	c.responsesSent.Inc()
	c.ep.Send(h.peer, h.cookie, frame, &respondCtx{h: h, cb: cb})
	return nil
}

// Destroy releases handle resources. Safe to call multiple times.
func (h *Handle) Destroy() {
	if h.destroyed.CompareAndSwap(false, true) && h.memRegistered {
		h.class.ep.DeregisterMemory(h.memH)
		h.memRegistered = false
	}
}
