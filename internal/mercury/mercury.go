// Package mercury is an RPC framework modeled on Mercury, the RPC layer
// of the Mochi stack. It provides registered RPCs identified by name
// hash, a proc-based binary codec, an eager request path with an internal
// RDMA fallback when request metadata overflows the eager buffer, a bulk
// transfer interface for large data, and a callback-driven completion
// model progressed explicitly by the caller (Progress/Trigger).
//
// The package also exports the SYMBIOSYS performance-variable (PVAR)
// interface (see the pvar subpackage): library-global PVARs such as the
// completion-queue size and handle-bound PVARs such as per-RPC
// (de)serialization timers, per the paper's Tables I and II.
package mercury

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"symbiosys/internal/mercury/pvar"
	"symbiosys/internal/na"
)

// Errors returned by RPC operations.
var (
	ErrCanceled    = errors.New("mercury: operation canceled")
	ErrUnknownRPC  = errors.New("mercury: RPC not registered at target")
	ErrHandlerFail = errors.New("mercury: remote handler failed")
	ErrDestroyed   = errors.New("mercury: handle destroyed")
	ErrRPCRegister = errors.New("mercury: RPC registration conflict")
	// ErrOverloaded reports a request shed by the target's admission
	// control before any handler ran. The operation had no effect and is
	// safe to retry after backoff.
	ErrOverloaded = errors.New("mercury: target overloaded, request shed")
	// ErrDeadlineExpired reports a request the target rejected because
	// its propagated deadline had already passed.
	ErrDeadlineExpired = errors.New("mercury: request deadline expired at target")
)

// Config tunes a Mercury instance.
type Config struct {
	// EagerLimit is the number of request-metadata bytes sent eagerly;
	// larger serialized inputs trigger an internal RDMA transfer for the
	// remainder (paper §III-C1). Default 4096.
	EagerLimit int
	// OFIMaxEvents bounds how many network completion events one
	// Progress call reads — the paper's OFI_max_events, default 16
	// (paper §V-C4).
	OFIMaxEvents int
}

func (c *Config) fillDefaults() {
	if c.EagerLimit <= 0 {
		c.EagerLimit = 4096
	}
	if c.OFIMaxEvents <= 0 {
		c.OFIMaxEvents = 16
	}
}

// HandlerFunc services an incoming RPC. It runs inside Trigger on the
// caller's progress context; implementations that need concurrency (all
// real services) immediately hand the handle to a ULT.
type HandlerFunc func(h *Handle)

// ForwardCallback completes a Forward.
type ForwardCallback func(h *Handle, err error)

type rpcDef struct {
	id      uint32
	name    string
	handler HandlerFunc
}

// Class is one Mercury instance: an endpoint plus its registered RPCs,
// posted handles, completion queue, and PVAR registry. A virtual process
// owns exactly one Class.
type Class struct {
	ep  *na.Endpoint
	cfg Config

	// ofiMax is the live OFI_max_events bound. It lives outside cfg
	// because SetOFIMaxEvents retunes it from policy/monitor goroutines
	// while the progress loop reads it every iteration.
	ofiMax atomic.Int64

	mu     sync.Mutex
	rpcs   map[uint32]*rpcDef
	posted map[uint64]*Handle

	cookieSeq atomic.Uint64

	cmu         sync.Mutex
	completions []completion

	// evBuf is the reusable event buffer for Progress's bounded read,
	// guarded by progMu (one progress ULT drives Progress in practice,
	// but nothing enforces that at this layer).
	progMu sync.Mutex
	evBuf  []na.Event

	pvars *pvar.Registry

	// PVAR backing values (Table II).
	postedLevel    pvar.Level
	cqLevel        pvar.Level
	ofiRead        pvar.Level
	rpcsInvoked    pvar.Counter
	rpcsHandled    pvar.Counter
	responsesSent  pvar.Counter
	eagerOverflows pvar.Counter
	staleResponses pvar.Counter
	bulkBytes      pvar.Counter
	sendErrors     pvar.Counter

	// Vectored-frame counters (batching layer).
	batchesForwarded    pvar.Counter
	batchedOpsForwarded pvar.Counter
	batchesHandled      pvar.Counter
	batchedOpsHandled   pvar.Counter
}

// completion is a queued callback plus its enqueue instant (t12 for
// response completions; the residence until Trigger is the origin
// completion callback delay).
type completion struct {
	run func(enqueued time.Time)
	enq time.Time
}

// NewClass creates a Mercury instance bound to a fabric endpoint.
func NewClass(ep *na.Endpoint, cfg Config) *Class {
	cfg.fillDefaults()
	c := &Class{
		ep:     ep,
		cfg:    cfg,
		rpcs:   make(map[uint32]*rpcDef),
		posted: make(map[uint64]*Handle),
		pvars:  pvar.NewRegistry(),
	}
	c.ofiMax.Store(int64(cfg.OFIMaxEvents))
	c.registerPVars()
	return c
}

// Addr returns the instance's fabric address.
func (c *Class) Addr() string { return c.ep.Addr() }

// Config returns the instance configuration, with OFIMaxEvents
// reflecting any runtime retuning via SetOFIMaxEvents.
func (c *Class) Config() Config {
	cfg := c.cfg
	cfg.OFIMaxEvents = int(c.ofiMax.Load())
	return cfg
}

// PVars returns the instance's performance-variable registry.
func (c *Class) PVars() *pvar.Registry { return c.pvars }

// SetOFIMaxEvents adjusts the per-progress completion read bound at
// runtime (used by the paper's C5→C6 remediation).
func (c *Class) SetOFIMaxEvents(n int) {
	if n > 0 {
		c.ofiMax.Store(int64(n))
	}
}

// OFIMaxEvents reports the live per-progress completion read bound.
func (c *Class) OFIMaxEvents() int { return int(c.ofiMax.Load()) }

// hashRPC derives the stable 32-bit identifier of an RPC name.
func hashRPC(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// Register installs an RPC by name. Clients that only forward a given
// RPC pass a nil handler. Registering the same name twice replaces a nil
// handler but conflicts on a non-nil one; distinct names that collide in
// the 32-bit id space are rejected.
func (c *Class) Register(name string, handler HandlerFunc) error {
	id := hashRPC(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.rpcs[id]; ok {
		if old.name != name {
			return fmt.Errorf("%w: %q collides with %q", ErrRPCRegister, name, old.name)
		}
		if old.handler != nil && handler != nil {
			return fmt.Errorf("%w: %q already has a handler", ErrRPCRegister, name)
		}
		if handler != nil {
			old.handler = handler
		}
		return nil
	}
	c.rpcs[id] = &rpcDef{id: id, name: name, handler: handler}
	return nil
}

// RPCName resolves a registered RPC id to its name.
func (c *Class) RPCName(id uint32) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.rpcs[id]
	if !ok {
		return "", false
	}
	return d.name, true
}

// enqueue adds a ready callback to the internal completion queue.
func (c *Class) enqueue(fn func(enqueued time.Time)) {
	c.cmu.Lock()
	c.completions = append(c.completions, completion{run: fn, enq: time.Now()})
	n := int64(len(c.completions))
	c.cmu.Unlock()
	c.cqLevel.Set(n)
}

// Progress reads up to OFIMaxEvents network completion events and
// converts them into queued callbacks. If no events are immediately
// available it waits up to timeout for one. It returns the number of
// events read — the value of the num_ofi_events_read PVAR.
func (c *Class) Progress(timeout time.Duration) int {
	max := int(c.ofiMax.Load())
	c.progMu.Lock()
	defer c.progMu.Unlock()
	evs := c.ep.PollInto(c.evBuf, max)
	if len(evs) == 0 && timeout > 0 && c.ep.Wait(timeout) {
		evs = c.ep.PollInto(c.evBuf, max)
	}
	if cap(evs) > cap(c.evBuf) {
		c.evBuf = evs[:0]
	}
	c.ofiRead.Set(int64(len(evs)))
	for _, ev := range evs {
		c.dispatch(ev)
	}
	// Drop message and context references so the retained buffer does
	// not pin payloads of already-dispatched events.
	clear(evs)
	return len(evs)
}

// Trigger runs up to max queued callbacks, returning how many ran.
func (c *Class) Trigger(max int) int {
	ran := 0
	for ran < max {
		c.cmu.Lock()
		if len(c.completions) == 0 {
			c.cmu.Unlock()
			break
		}
		comp := c.completions[0]
		copy(c.completions, c.completions[1:])
		c.completions[len(c.completions)-1] = completion{}
		c.completions = c.completions[:len(c.completions)-1]
		n := int64(len(c.completions))
		c.cmu.Unlock()
		c.cqLevel.Set(n)
		comp.run(comp.enq)
		ran++
	}
	return ran
}

// CompletionQueueLen reports the instantaneous internal queue length.
func (c *Class) CompletionQueueLen() int {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return len(c.completions)
}

// NetworkPending reports completion events still waiting in the network
// layer (not yet read by Progress) — the paper's clogged-OFI-queue
// signal.
func (c *Class) NetworkPending() int { return c.ep.Pending() }

// dispatch converts one network event into completion-queue work.
func (c *Class) dispatch(ev na.Event) {
	switch ev.Kind {
	case na.EvRecv:
		if ev.Msg.Tag == na.TagUnexpected {
			c.handleRequest(ev.Msg)
		} else {
			c.handleResponse(ev.Msg)
		}
	case na.EvRDMADone:
		switch ctx := ev.Ctx.(type) {
		case *rdmaReqCtx:
			ctx.h.RDMATime.Stop()
			c.deliver(ctx.h)
		case *bulkCtx:
			cb := ctx.cb
			c.enqueue(func(time.Time) { cb(nil) })
		}
	case na.EvSendDone:
		switch ctx := ev.Ctx.(type) {
		case *respondCtx:
			cb := ctx.cb
			if cb != nil {
				c.enqueue(func(time.Time) { cb(nil) })
			}
		case *batchRespondCtx:
			// The batch reply hit the wire: every member's completion
			// callback shares this t13.
			bt := ctx.bt
			c.enqueue(func(time.Time) { bt.complete(nil) })
		case *forwardSendCtx:
			// Request hit the wire; completion comes with the response.
		}
	case na.EvError:
		c.sendErrors.Inc()
		switch ctx := ev.Ctx.(type) {
		case *forwardSendCtx:
			h, err := ctx.h, ev.Err
			c.unpost(h)
			c.enqueue(func(time.Time) { h.completeForward(err) })
		case *respondCtx:
			cb, err := ctx.cb, ev.Err
			if cb != nil {
				c.enqueue(func(time.Time) { cb(err) })
			}
		case *batchRespondCtx:
			bt, err := ctx.bt, ev.Err
			c.enqueue(func(time.Time) { bt.complete(err) })
		case *bulkCtx:
			cb, err := ctx.cb, ev.Err
			c.enqueue(func(time.Time) { cb(err) })
		case *rdmaReqCtx:
			// Request metadata fetch failed; drop the request. The
			// origin will observe a cancel/timeout at a higher layer.
		}
	}
}

// handleRequest processes an incoming unexpected message (a request).
func (c *Class) handleRequest(msg *na.Message) {
	var hdr reqHeader
	eager, err := unpackFrame(msg.Data, &hdr)
	if err != nil {
		return // malformed; drop
	}
	if hdr.Flags&flagBatch != 0 {
		c.handleBatchRequest(msg.From, &hdr, eager)
		return
	}
	h := &Handle{
		class:  c,
		cookie: hdr.Cookie,
		rpcID:  hdr.RPCID,
		peer:   msg.From,
		target: c.Addr(),
		isTgt:  true,
		meta: Meta{
			HasTrace:      hdr.Flags&flagTrace != 0,
			Breadcrumb:    hdr.Breadcrumb,
			RequestID:     hdr.RequestID,
			Order:         hdr.Order,
			DeadlineNanos: hdr.DeadlineNanos,
			Priority:      hdr.Priority,
		},
		arrived: time.Now(),
	}
	if hdr.Flags&flagMore == 0 {
		h.reqPayload = eager
		c.deliver(h)
		return
	}
	// Metadata overflowed the eager buffer: pull the remainder with an
	// internal RDMA get before the request is delivered (t3→t4).
	buf := make([]byte, int(hdr.TotalLen))
	copy(buf, eager)
	h.reqPayload = buf
	h.RDMATime.Start()
	c.ep.Get(hdr.Mem, 0, buf[len(eager):], &rdmaReqCtx{h: h})
}

// deliver queues handler invocation for a fully received request.
func (c *Class) deliver(h *Handle) {
	c.mu.Lock()
	def := c.rpcs[h.rpcID]
	c.mu.Unlock()
	if def == nil || def.handler == nil {
		// Unknown RPC: answer with an error status so the origin fails
		// fast instead of timing out.
		c.enqueue(func(time.Time) {
			h.respondStatus(statusUnknownRPC, nil, Meta{}, nil)
		})
		return
	}
	h.rpcName = def.name
	c.rpcsHandled.Inc()
	handler := def.handler
	c.enqueue(func(time.Time) { handler(h) })
}

// handleResponse matches a response message to its posted handle.
func (c *Class) handleResponse(msg *na.Message) {
	c.mu.Lock()
	h, ok := c.posted[msg.Tag]
	if ok {
		delete(c.posted, msg.Tag)
	}
	c.mu.Unlock()
	if !ok {
		c.staleResponses.Inc()
		return
	}
	c.postedLevel.Add(-1)
	var hdr respHeader
	payload, err := unpackFrame(msg.Data, &hdr)
	if err != nil {
		c.enqueue(func(time.Time) { h.completeForward(err) })
		return
	}
	if hdr.Flags&flagBatch != 0 {
		ents, perr := parseBatchResp(payload, int(hdr.Count))
		if perr != nil {
			c.enqueue(func(time.Time) { h.completeForward(perr) })
			return
		}
		h.batchEnts = ents
	}
	h.respStatus = hdr.Status
	h.respMeta = Meta{HasTrace: hdr.Flags&flagTrace != 0, Order: hdr.Order}
	h.respPayload = payload
	// t12: the completion enters the queue; the delay until the origin
	// callback runs at t14 is the origin completion callback time.
	c.enqueue(func(enq time.Time) {
		h.OriginCBTime.SetDuration(time.Since(enq))
		h.completeForward(nil)
	})
}

// CancelPosted cancels every posted handle addressed to target (or all
// posted handles when target is empty). Each canceled forward's
// callback fires with ErrCanceled; late responses are dropped as stale.
func (c *Class) CancelPosted(target string) int {
	c.mu.Lock()
	var victims []*Handle
	for _, h := range c.posted {
		if target == "" || h.target == target {
			victims = append(victims, h)
		}
	}
	c.mu.Unlock()
	for _, h := range victims {
		h.Cancel()
	}
	return len(victims)
}

func (c *Class) unpost(h *Handle) {
	c.mu.Lock()
	if _, ok := c.posted[h.cookie]; ok {
		delete(c.posted, h.cookie)
		c.postedLevel.Add(-1)
	}
	c.mu.Unlock()
}

// contexts attached to asynchronous network operations.
type forwardSendCtx struct{ h *Handle }
type respondCtx struct {
	h  *Handle
	cb func(error)
}
type rdmaReqCtx struct{ h *Handle }
type bulkCtx struct{ cb func(error) }
