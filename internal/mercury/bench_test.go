package mercury

import (
	"strings"
	"testing"
	"time"

	"symbiosys/internal/na"
)

// BenchmarkProcEncode measures serializing a mid-size argument struct.
func BenchmarkProcEncode(b *testing.B) {
	args := echoArgs{Msg: strings.Repeat("x", 1024), N: 42}
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := Encode(&args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcDecode measures the matching deserialization.
func BenchmarkProcDecode(b *testing.B) {
	args := echoArgs{Msg: strings.Repeat("x", 1024), N: 42}
	buf, _ := Encode(&args)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out echoArgs
		if err := Decode(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRoundTrip measures end-to-end small-RPC latency through
// the full stack: codec, fabric, progress, trigger, callbacks.
func BenchmarkRPCRoundTrip(b *testing.B) {
	f := na.NewFabric(na.DefaultConfig())
	cep, _ := f.NewEndpoint("n0", "cli")
	sep, _ := f.NewEndpoint("n1", "srv")
	client := NewClass(cep, Config{})
	server := NewClass(sep, Config{})
	server.Register("bench_rpc", func(h *Handle) {
		h.Respond(&Void{}, Meta{}, nil)
	})
	client.Register("bench_rpc", nil)
	cpl, spl := drive(client), drive(server)
	defer cpl.Stop()
	defer spl.Stop()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := client.Create(server.Addr(), "bench_rpc")
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		h.Forward(&Void{}, Meta{}, func(h *Handle, err error) { done <- err })
		select {
		case err := <-done:
			if err != nil {
				b.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			b.Fatal("rpc timed out")
		}
		h.Destroy()
	}
}

// BenchmarkPVarRead measures sampling one global PVAR through a session.
func BenchmarkPVarRead(b *testing.B) {
	f := na.NewFabric(na.DefaultConfig())
	ep, _ := f.NewEndpoint("n0", "x")
	c := NewClass(ep, Config{})
	s := c.PVars().InitSession()
	defer s.Finalize()
	h, err := s.AllocHandleByName(PVarNumRPCsInvoked)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(h, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFramePack measures wire-frame assembly.
func BenchmarkFramePack(b *testing.B) {
	hdr := reqHeader{RPCID: 1, Cookie: 2, Flags: flagTrace, Breadcrumb: 3, RequestID: 4, Order: 5}
	payload := make([]byte, 512)
	b.SetBytes(512)
	for i := 0; i < b.N; i++ {
		if _, err := packFrame(&hdr, payload); err != nil {
			b.Fatal(err)
		}
	}
}
