package ssg

import (
	"strings"
	"testing"
	"testing/quick"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
)

type env struct {
	root *margo.Instance
	host *Host
	cli  *margo.Instance
	sc   *Client
}

func newEnv(t *testing.T) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	root, err := margo.New(margo.Options{Mode: margo.ModeServer, Node: "n0", Name: "root", Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{Mode: margo.ModeClient, Node: "n1", Name: "cli", Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); root.Shutdown() })
	host, err := NewHost(root)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewClient(cli)
	if err != nil {
		t.Fatal(err)
	}
	return &env{root: root, host: host, cli: cli, sc: sc}
}

func (e *env) run(t *testing.T, fn func(self *abt.ULT) error) error {
	t.Helper()
	var err error
	u := e.cli.Run("t", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		t.Fatal(jerr)
	}
	return err
}

func TestCreateJoinObserveLeave(t *testing.T) {
	e := newEnv(t)
	g, err := e.host.Create("hepnos-servers", true)
	if err != nil {
		t.Fatal(err)
	}
	if v := g.View(); v.Size() != 1 || v.Members[0].Addr != e.root.Addr() {
		t.Fatalf("initial view = %+v", v)
	}
	err = e.run(t, func(self *abt.ULT) error {
		rank, view, err := e.sc.Join(self, e.root.Addr(), "hepnos-servers", "")
		if err != nil {
			return err
		}
		if rank != 1 {
			t.Errorf("rank = %d, want 1", rank)
		}
		if view.Size() != 2 || view.Version != 2 {
			t.Errorf("view = %+v", view)
		}
		// Observe sees the same membership.
		obs, err := e.sc.Observe(self, e.root.Addr(), "hepnos-servers")
		if err != nil {
			return err
		}
		if obs.Size() != 2 || obs.Version != view.Version {
			t.Errorf("observe = %+v", obs)
		}
		if obs.Addrs()[0] != e.root.Addr() || obs.Addrs()[1] != e.cli.Addr() {
			t.Errorf("addrs = %v", obs.Addrs())
		}
		// Leave and re-observe.
		if err := e.sc.Leave(self, e.root.Addr(), "hepnos-servers", ""); err != nil {
			return err
		}
		obs, err = e.sc.Observe(self, e.root.Addr(), "hepnos-servers")
		if err != nil {
			return err
		}
		if obs.Size() != 1 || obs.Version != 3 {
			t.Errorf("after leave = %+v", obs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinIdempotent(t *testing.T) {
	e := newEnv(t)
	if _, err := e.host.Create("g", false); err != nil {
		t.Fatal(err)
	}
	err := e.run(t, func(self *abt.ULT) error {
		r1, v1, err := e.sc.Join(self, e.root.Addr(), "g", "node9/extern")
		if err != nil {
			return err
		}
		r2, v2, err := e.sc.Join(self, e.root.Addr(), "g", "node9/extern")
		if err != nil {
			return err
		}
		if r1 != r2 {
			t.Errorf("re-join changed rank: %d vs %d", r1, r2)
		}
		if v2.Version != v1.Version {
			t.Errorf("re-join bumped version: %d vs %d", v2.Version, v1.Version)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownGroupAndNotMember(t *testing.T) {
	e := newEnv(t)
	e.host.Create("exists", false)
	err := e.run(t, func(self *abt.ULT) error {
		if _, _, err := e.sc.Join(self, e.root.Addr(), "ghost", ""); err == nil {
			t.Error("join unknown group accepted")
		} else if !strings.Contains(err.Error(), "unknown group") {
			t.Errorf("err = %v", err)
		}
		if _, err := e.sc.Observe(self, e.root.Addr(), "ghost"); err == nil {
			t.Error("observe unknown group accepted")
		}
		if err := e.sc.Leave(self, e.root.Addr(), "exists", ""); err == nil {
			t.Error("leave without join accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateDuplicateRejected(t *testing.T) {
	e := newEnv(t)
	if _, err := e.host.Create("dup", false); err != nil {
		t.Fatal(err)
	}
	if _, err := e.host.Create("dup", false); err == nil {
		t.Fatal("duplicate group accepted")
	}
}

func TestMemberForDeterministicAndCovering(t *testing.T) {
	v := View{Members: []Member{
		{Rank: 0, Addr: "a"}, {Rank: 1, Addr: "b"}, {Rank: 2, Addr: "c"},
	}}
	prop := func(key []byte) bool {
		m1, ok1 := v.MemberFor(key)
		m2, ok2 := v.MemberFor(key)
		return ok1 && ok2 && m1 == m2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	// All members reachable over many keys.
	hit := map[string]bool{}
	for i := 0; i < 200; i++ {
		m, _ := v.MemberFor([]byte{byte(i), byte(i >> 4)})
		hit[m.Addr] = true
	}
	if len(hit) != 3 {
		t.Fatalf("MemberFor covered %d of 3 members", len(hit))
	}
	// Empty view.
	empty := View{}
	if _, ok := empty.MemberFor([]byte("x")); ok {
		t.Fatal("empty view returned a member")
	}
}
