package ssg

import (
	"sync/atomic"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/mercury"
)

// notifyTimeout bounds each best-effort push RPC so one unreachable
// recipient cannot stall the notifier queue behind it.
const notifyTimeout = 250 * time.Millisecond

// DetectorConfig tunes the root-side failure detector.
type DetectorConfig struct {
	// Interval between ping rounds. Default 20ms.
	Interval time.Duration
	// PingTimeout bounds each ping RPC. Default 50ms.
	PingTimeout time.Duration
	// SuspectAfter consecutive missed pings raise EventSuspect.
	// Default 2.
	SuspectAfter int
	// FailAfter consecutive missed pings evict the member with
	// EventFail. Default 4.
	FailAfter int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = 50 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.FailAfter <= c.SuspectAfter {
		c.FailAfter = c.SuspectAfter + 2
	}
	return c
}

// Detector is a SWIM-style failure detector for one group: the root
// pings every member each round; consecutive misses first mark the
// member suspect (view unchanged, EventSuspect pushed), then evict it
// (EventFail pushed, version bumped). Recovery before eviction clears
// the miss count. The real SSG gossips pings peer-to-peer; rooting the
// detector keeps the reproduction single-writer over the view while
// exercising the same suspicion→eviction protocol against the fault
// plane.
type Detector struct {
	group *Group
	cfg   DetectorConfig

	stop atomic.Bool
	ult  *abt.ULT

	misses map[string]int
}

// StartDetector begins failure detection for the group. Stop it with
// Detector.Stop (Host.Close stops all detectors).
func (h *Host) StartDetector(g *Group, cfg DetectorConfig) *Detector {
	d := &Detector{group: g, cfg: cfg.withDefaults(), misses: make(map[string]int)}
	d.ult = h.inst.Run("ssg-detector-"+g.name, d.loop)
	h.detectMu.Lock()
	h.detectors = append(h.detectors, d)
	h.detectMu.Unlock()
	return d
}

// Stop halts the detector and waits for its ULT to exit.
func (d *Detector) Stop() {
	if d.stop.Swap(true) {
		return
	}
	d.ult.Join(nil)
}

func (d *Detector) loop(self *abt.ULT) {
	h := d.group.host
	selfAddr := h.inst.Addr()
	for !d.stop.Load() {
		self.Sleep(d.cfg.Interval)
		if d.stop.Load() {
			return
		}
		v := d.group.View()
		// Forget members that left between rounds.
		for addr := range d.misses {
			if !v.Has(addr) {
				delete(d.misses, addr)
			}
		}
		for _, m := range v.Members {
			if m.Addr == selfAddr {
				continue
			}
			err := h.inst.ForwardTimeout(self, m.Addr, RPCPing, mercury.Void{}, nil, d.cfg.PingTimeout)
			if err == nil {
				d.misses[m.Addr] = 0
				continue
			}
			d.misses[m.Addr]++
			switch n := d.misses[m.Addr]; {
			case n == d.cfg.SuspectAfter:
				d.group.Suspect(m.Addr)
			case n >= d.cfg.FailAfter:
				delete(d.misses, m.Addr)
				d.group.Fail(m.Addr)
			}
		}
	}
}
