// Package ssg reimplements SSG (Scalable Service Groups), the Mochi
// component for service group membership (paper §III-B). Server
// processes create or join named groups; clients observe a group to
// discover its members instead of being configured with addresses by
// hand. Views are versioned: every membership change bumps the version,
// and observers can cheaply refresh.
//
// The real SSG bootstraps over MPI/PMIx and maintains membership with
// SWIM gossip; this implementation roots each group at its creating
// process and runs join/leave/observe as ordinary RPCs over the fabric,
// which preserves the discovery API the services need.
package ssg

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// RPC names exported by a group root.
const (
	RPCJoin    = "ssg_join_rpc"
	RPCLeave   = "ssg_leave_rpc"
	RPCObserve = "ssg_observe_rpc"
)

// RPCNames lists the SSG RPCs (for client registration).
func RPCNames() []string { return []string{RPCJoin, RPCLeave, RPCObserve} }

// Errors returned by group operations.
var (
	ErrUnknownGroup = errors.New("ssg: unknown group")
	ErrNotMember    = errors.New("ssg: not a member")
)

// Member is one group participant.
type Member struct {
	Rank uint32
	Addr string
}

// View is a versioned membership snapshot.
type View struct {
	Name    string
	Version uint64
	Members []Member // sorted by rank
}

// Size returns the member count.
func (v *View) Size() int { return len(v.Members) }

// MemberFor deterministically maps a key onto a member (consistent
// addressing for clients that shard by key).
func (v *View) MemberFor(key []byte) (Member, bool) {
	if len(v.Members) == 0 {
		return Member{}, false
	}
	var h uint64 = 1469598103934665603
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	return v.Members[h%uint64(len(v.Members))], true
}

// Addrs lists member addresses in rank order.
func (v *View) Addrs() []string {
	out := make([]string, len(v.Members))
	for i, m := range v.Members {
		out[i] = m.Addr
	}
	return out
}

// Group is the root-side state of one service group.
type Group struct {
	name string

	mu      sync.Mutex
	members map[string]uint32 // addr -> rank
	next    uint32
	version uint64
}

// Host manages the groups rooted at one server process.
type Host struct {
	inst *margo.Instance

	mu     sync.Mutex
	groups map[string]*Group
}

// NewHost installs the SSG RPCs on a Margo server and returns the host.
func NewHost(inst *margo.Instance) (*Host, error) {
	h := &Host{inst: inst, groups: make(map[string]*Group)}
	handlers := map[string]margo.HandlerFunc{
		RPCJoin:    h.handleJoin,
		RPCLeave:   h.handleLeave,
		RPCObserve: h.handleObserve,
	}
	for name, fn := range handlers {
		if err := inst.Register(name, fn); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Create roots a new group containing (optionally) the host itself.
func (h *Host) Create(name string, includeSelf bool) (*Group, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.groups[name]; dup {
		return nil, fmt.Errorf("ssg: group %q exists", name)
	}
	g := &Group{name: name, members: make(map[string]uint32)}
	if includeSelf {
		g.members[h.inst.Addr()] = 0
		g.next = 1
		g.version = 1
	}
	h.groups[name] = g
	return g, nil
}

func (h *Host) group(name string) (*Group, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	g, ok := h.groups[name]
	return g, ok
}

// View snapshots the group's membership.
func (g *Group) View() View {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.viewLocked()
}

func (g *Group) viewLocked() View {
	v := View{Name: g.name, Version: g.version}
	for addr, rank := range g.members {
		v.Members = append(v.Members, Member{Rank: rank, Addr: addr})
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].Rank < v.Members[j].Rank })
	return v
}

// join adds a member, returning its rank and the new view.
func (g *Group) join(addr string) (uint32, View) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rank, already := g.members[addr]; already {
		return rank, g.viewLocked()
	}
	rank := g.next
	g.next++
	g.members[addr] = rank
	g.version++
	return rank, g.viewLocked()
}

// leave removes a member, reporting whether it was present.
func (g *Group) leave(addr string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[addr]; !ok {
		return false
	}
	delete(g.members, addr)
	g.version++
	return true
}

// Wire types.

type groupArgs struct {
	Group string
	Addr  string
}

func (a *groupArgs) Proc(p *mercury.Proc) error {
	p.String(&a.Group)
	p.String(&a.Addr)
	return p.Err()
}

type viewResp struct {
	Rank    uint32
	Version uint64
	Ranks   []uint64
	Addrs   []string
}

func (a *viewResp) Proc(p *mercury.Proc) error {
	p.Uint32(&a.Rank)
	p.Uint64(&a.Version)
	p.Uint64Slice(&a.Ranks)
	p.StringSlice(&a.Addrs)
	return p.Err()
}

func viewToResp(rank uint32, v View) viewResp {
	out := viewResp{Rank: rank, Version: v.Version}
	for _, m := range v.Members {
		out.Ranks = append(out.Ranks, uint64(m.Rank))
		out.Addrs = append(out.Addrs, m.Addr)
	}
	return out
}

func respToView(name string, r viewResp) View {
	v := View{Name: name, Version: r.Version}
	for i := range r.Addrs {
		v.Members = append(v.Members, Member{Rank: uint32(r.Ranks[i]), Addr: r.Addrs[i]})
	}
	return v
}

// Handlers.

func (h *Host) handleJoin(ctx *margo.Context) {
	var in groupArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ssg: %v", err)
		return
	}
	g, ok := h.group(in.Group)
	if !ok {
		ctx.RespondError("%v: %s", ErrUnknownGroup, in.Group)
		return
	}
	addr := in.Addr
	if addr == "" {
		addr = ctx.Origin()
	}
	rank, v := g.join(addr)
	out := viewToResp(rank, v)
	ctx.Respond(&out)
}

func (h *Host) handleLeave(ctx *margo.Context) {
	var in groupArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ssg: %v", err)
		return
	}
	g, ok := h.group(in.Group)
	if !ok {
		ctx.RespondError("%v: %s", ErrUnknownGroup, in.Group)
		return
	}
	addr := in.Addr
	if addr == "" {
		addr = ctx.Origin()
	}
	if !g.leave(addr) {
		ctx.RespondError("%v: %s", ErrNotMember, addr)
		return
	}
	ctx.Respond(mercury.Void{})
}

func (h *Host) handleObserve(ctx *margo.Context) {
	var in groupArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ssg: %v", err)
		return
	}
	g, ok := h.group(in.Group)
	if !ok {
		ctx.RespondError("%v: %s", ErrUnknownGroup, in.Group)
		return
	}
	out := viewToResp(0, g.View())
	ctx.Respond(&out)
}

// Client-side operations.

// Client performs group operations against a root.
type Client struct {
	inst *margo.Instance
}

// NewClient wires the SSG RPCs into a Margo instance.
func NewClient(inst *margo.Instance) (*Client, error) {
	if err := inst.RegisterClient(RPCNames()...); err != nil {
		return nil, err
	}
	return &Client{inst: inst}, nil
}

// Join adds this process (or addr, if non-empty) to the group rooted at
// root, returning the assigned rank and the membership view.
func (c *Client) Join(self *abt.ULT, root, group, addr string) (uint32, View, error) {
	var out viewResp
	in := groupArgs{Group: group, Addr: addr}
	if err := c.inst.Forward(self, root, RPCJoin, &in, &out); err != nil {
		return 0, View{}, err
	}
	return out.Rank, respToView(group, out), nil
}

// Leave removes this process (or addr) from the group.
func (c *Client) Leave(self *abt.ULT, root, group, addr string) error {
	in := groupArgs{Group: group, Addr: addr}
	return c.inst.Forward(self, root, RPCLeave, &in, nil)
}

// Observe fetches the group's current membership view without joining —
// the client-side discovery path.
func (c *Client) Observe(self *abt.ULT, root, group string) (View, error) {
	var out viewResp
	in := groupArgs{Group: group}
	if err := c.inst.Forward(self, root, RPCObserve, &in, &out); err != nil {
		return View{}, err
	}
	return respToView(group, out), nil
}
