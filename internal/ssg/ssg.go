// Package ssg reimplements SSG (Scalable Service Groups), the Mochi
// component for service group membership (paper §III-B). Server
// processes create or join named groups; clients observe a group to
// discover its members instead of being configured with addresses by
// hand. Views are versioned: every membership change bumps the version,
// and observers can cheaply refresh.
//
// The real SSG bootstraps over MPI/PMIx and maintains membership with
// SWIM gossip; this implementation roots each group at its creating
// process and runs join/leave/observe as ordinary RPCs over the fabric,
// which preserves the discovery API the services need. On top of the
// pull API the group is dynamic: membership changes are pushed as
// versioned view deltas to members and subscribed observers (Agent),
// and a SWIM-style failure detector on the root turns missed pings into
// suspicion and, eventually, eviction — so elasticity and fault
// handling ride the same event stream.
package ssg

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// RPC names exported by a group root (join/leave/observe/subscribe) and
// by group participants (notify/ping, see Agent).
const (
	RPCJoin      = "ssg_join_rpc"
	RPCLeave     = "ssg_leave_rpc"
	RPCObserve   = "ssg_observe_rpc"
	RPCSubscribe = "ssg_subscribe_rpc"
	RPCNotify    = "ssg_notify_rpc"
	RPCPing      = "ssg_ping_rpc"
)

// RPCNames lists the root-side SSG RPCs (for client registration).
func RPCNames() []string {
	return []string{RPCJoin, RPCLeave, RPCObserve, RPCSubscribe}
}

// Errors returned by group operations.
var (
	ErrUnknownGroup = errors.New("ssg: unknown group")
	ErrNotMember    = errors.New("ssg: not a member")
)

// Member is one group participant.
type Member struct {
	Rank uint32
	Addr string
}

// EventType classifies one membership change.
type EventType uint8

// Membership event types.
const (
	// EventJoin: a member entered the group.
	EventJoin EventType = iota + 1
	// EventLeave: a member left voluntarily.
	EventLeave
	// EventSuspect: the failure detector missed pings from a member;
	// the member is still in the view but may be about to fail.
	EventSuspect
	// EventFail: the failure detector evicted an unresponsive member.
	EventFail
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventSuspect:
		return "suspect"
	case EventFail:
		return "fail"
	}
	return "unknown"
}

// Event is one versioned membership delta: what changed, and the full
// view after the change (suspicion does not bump the version).
type Event struct {
	Type   EventType
	Member Member
	View   View
}

// View is a versioned membership snapshot. Members is copy-on-write:
// the slice is rebuilt on every membership change and never mutated
// afterwards, so a View handed out under one version can be read
// concurrently with later churn. Treat it as read-only.
type View struct {
	Name    string
	Version uint64
	Members []Member // sorted by rank; immutable once published
}

// Size returns the member count.
func (v *View) Size() int { return len(v.Members) }

// MemberFor deterministically maps a key onto a member (consistent
// addressing for clients that shard by key). An empty view has no
// member to return, so ok is false — callers must check it before
// using the member (routing against a drained-out group).
func (v *View) MemberFor(key []byte) (Member, bool) {
	if len(v.Members) == 0 {
		return Member{}, false
	}
	var h uint64 = 1469598103934665603
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	return v.Members[h%uint64(len(v.Members))], true
}

// Addrs lists member addresses in rank order.
func (v *View) Addrs() []string {
	out := make([]string, len(v.Members))
	for i, m := range v.Members {
		out[i] = m.Addr
	}
	return out
}

// Has reports whether addr is in the view.
func (v *View) Has(addr string) bool {
	for _, m := range v.Members {
		if m.Addr == addr {
			return true
		}
	}
	return false
}

// Group is the root-side state of one service group.
type Group struct {
	name string
	host *Host

	mu      sync.Mutex
	members map[string]uint32 // addr -> rank
	next    uint32
	version uint64
	cur     []Member        // copy-on-write sorted snapshot
	watch   map[string]bool // subscribed non-member observers
	subs    []func(Event)   // root-local subscribers
}

// Host manages the groups rooted at one server process.
type Host struct {
	inst *margo.Instance

	mu     sync.Mutex
	groups map[string]*Group

	// Push-notification queue, drained by a dedicated ULT so membership
	// handlers never block on fan-out RPCs.
	qmu      sync.Mutex
	queue    []push
	qsem     *abt.Semaphore
	notifier *abt.ULT
	stopped  bool

	detectMu  sync.Mutex
	detectors []*Detector
}

// push is one queued notification fan-out.
type push struct {
	group string
	ev    Event
}

// NewHost installs the SSG RPCs on a Margo server and returns the host.
func NewHost(inst *margo.Instance) (*Host, error) {
	h := &Host{inst: inst, groups: make(map[string]*Group)}
	handlers := map[string]margo.HandlerFunc{
		RPCJoin:      h.handleJoin,
		RPCLeave:     h.handleLeave,
		RPCObserve:   h.handleObserve,
		RPCSubscribe: h.handleSubscribe,
	}
	for name, fn := range handlers {
		if err := inst.Register(name, fn); err != nil {
			return nil, err
		}
	}
	// The root forwards notify/ping to participants.
	if err := inst.RegisterClient(RPCNotify, RPCPing); err != nil {
		return nil, err
	}
	h.qsem = abt.NewSemaphore(1)
	h.qsem.Acquire(nil) // consume the initial permit: queue starts empty
	h.notifier = inst.Run("ssg-notifier", h.notifyLoop)
	return h, nil
}

// Close stops the host's notifier ULT and any failure detectors. The
// margo instance is not touched.
func (h *Host) Close() {
	h.detectMu.Lock()
	dets := h.detectors
	h.detectors = nil
	h.detectMu.Unlock()
	for _, d := range dets {
		d.Stop()
	}
	h.qmu.Lock()
	if h.stopped {
		h.qmu.Unlock()
		return
	}
	h.stopped = true
	h.qmu.Unlock()
	h.qsem.Release() // wake the notifier so it observes stopped
	h.notifier.Join(nil)
}

// Create roots a new group containing (optionally) the host itself.
func (h *Host) Create(name string, includeSelf bool) (*Group, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.groups[name]; dup {
		return nil, fmt.Errorf("ssg: group %q exists", name)
	}
	g := &Group{name: name, host: h, members: make(map[string]uint32), watch: make(map[string]bool)}
	if includeSelf {
		g.members[h.inst.Addr()] = 0
		g.next = 1
		g.version = 1
		g.rebuildLocked()
	}
	h.groups[name] = g
	return g, nil
}

func (h *Host) group(name string) (*Group, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	g, ok := h.groups[name]
	return g, ok
}

// rebuildLocked refreshes the copy-on-write member snapshot. Must run
// with g.mu held.
func (g *Group) rebuildLocked() {
	cur := make([]Member, 0, len(g.members))
	for addr, rank := range g.members {
		cur = append(cur, Member{Rank: rank, Addr: addr})
	}
	sort.Slice(cur, func(i, j int) bool { return cur[i].Rank < cur[j].Rank })
	g.cur = cur
}

// View snapshots the group's membership. The returned member slice is
// the immutable copy-on-write snapshot: safe to read under concurrent
// churn, never mutated in place.
func (g *Group) View() View {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.viewLocked()
}

func (g *Group) viewLocked() View {
	return View{Name: g.name, Version: g.version, Members: g.cur}
}

// OnEvent subscribes a root-local callback to this group's membership
// events. Callbacks run on the host's notifier ULT, in event order.
func (g *Group) OnEvent(fn func(Event)) {
	g.mu.Lock()
	g.subs = append(g.subs, fn)
	g.mu.Unlock()
}

// join adds a member, returning its rank, the new view, and whether
// membership actually changed.
func (g *Group) join(addr string) (uint32, View, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rank, already := g.members[addr]; already {
		return rank, g.viewLocked(), false
	}
	rank := g.next
	g.next++
	g.members[addr] = rank
	g.version++
	g.rebuildLocked()
	return rank, g.viewLocked(), true
}

// leave removes a member, reporting whether it was present.
func (g *Group) leave(addr string) (View, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[addr]; !ok {
		return View{}, false
	}
	delete(g.members, addr)
	g.version++
	g.rebuildLocked()
	return g.viewLocked(), true
}

// Fail evicts an unresponsive member (failure-detector verdict),
// reporting whether it was present. The eviction is pushed to the
// survivors as an EventFail delta.
func (g *Group) Fail(addr string) bool {
	v, ok := g.leave(addr)
	if !ok {
		return false
	}
	g.host.enqueue(g.name, Event{Type: EventFail, Member: Member{Addr: addr}, View: v})
	return true
}

// Suspect pushes an EventSuspect delta for addr without changing the
// view (the member may still recover).
func (g *Group) Suspect(addr string) {
	g.mu.Lock()
	rank, ok := g.members[addr]
	v := g.viewLocked()
	g.mu.Unlock()
	if !ok {
		return
	}
	g.host.enqueue(g.name, Event{Type: EventSuspect, Member: Member{Rank: rank, Addr: addr}, View: v})
}

// subscribe registers a non-member observer for push notifications.
func (g *Group) subscribe(addr string) View {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.watch[addr] = true
	return g.viewLocked()
}

// recipients lists every address to push an event to: members plus
// subscribed observers, minus the event's own member (a joiner already
// holds the view from its join response; a left or failed member is
// gone).
func (g *Group) recipients(ev Event) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.cur)+len(g.watch))
	for _, m := range g.cur {
		if m.Addr != ev.Member.Addr && m.Addr != g.host.inst.Addr() {
			out = append(out, m.Addr)
		}
	}
	for addr := range g.watch {
		if addr != ev.Member.Addr && !g.hasLocked(addr) {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

func (g *Group) hasLocked(addr string) bool {
	_, ok := g.members[addr]
	return ok
}

// enqueue hands an event to the notifier ULT.
func (h *Host) enqueue(group string, ev Event) {
	h.qmu.Lock()
	if h.stopped {
		h.qmu.Unlock()
		return
	}
	h.queue = append(h.queue, push{group: group, ev: ev})
	h.qmu.Unlock()
	h.qsem.Release()
}

// notifyLoop drains the push queue: each event fans out to the group's
// members and subscribed observers as ssg_notify RPCs (short timeout —
// an unreachable recipient must not stall churn), and to root-local
// subscribers as direct calls.
func (h *Host) notifyLoop(self *abt.ULT) {
	for {
		h.qsem.Acquire(self)
		h.qmu.Lock()
		if h.stopped && len(h.queue) == 0 {
			h.qmu.Unlock()
			return
		}
		if len(h.queue) == 0 {
			h.qmu.Unlock()
			continue
		}
		p := h.queue[0]
		h.queue = h.queue[1:]
		h.qmu.Unlock()

		g, ok := h.group(p.group)
		if !ok {
			continue
		}
		g.mu.Lock()
		subs := append([]func(Event){}, g.subs...)
		g.mu.Unlock()
		for _, fn := range subs {
			fn(p.ev)
		}
		args := eventToArgs(p.group, p.ev)
		for _, addr := range g.recipients(p.ev) {
			// Best-effort push: a recipient that cannot be reached will
			// catch up from a later event or an explicit Observe. The
			// timeout keeps one dead observer from stalling the queue.
			_ = h.inst.ForwardTimeout(self, addr, RPCNotify, &args, nil, notifyTimeout)
		}
	}
}

// Wire types.

type groupArgs struct {
	Group string
	Addr  string
}

func (a *groupArgs) Proc(p *mercury.Proc) error {
	p.String(&a.Group)
	p.String(&a.Addr)
	return p.Err()
}

type viewResp struct {
	Rank    uint32
	Version uint64
	Ranks   []uint64
	Addrs   []string
}

func (a *viewResp) Proc(p *mercury.Proc) error {
	p.Uint32(&a.Rank)
	p.Uint64(&a.Version)
	p.Uint64Slice(&a.Ranks)
	p.StringSlice(&a.Addrs)
	return p.Err()
}

func viewToResp(rank uint32, v View) viewResp {
	out := viewResp{Rank: rank, Version: v.Version}
	for _, m := range v.Members {
		out.Ranks = append(out.Ranks, uint64(m.Rank))
		out.Addrs = append(out.Addrs, m.Addr)
	}
	return out
}

func respToView(name string, r viewResp) View {
	v := View{Name: name, Version: r.Version}
	for i := range r.Addrs {
		v.Members = append(v.Members, Member{Rank: uint32(r.Ranks[i]), Addr: r.Addrs[i]})
	}
	return v
}

// notifyArgs is one pushed membership delta: the event plus the full
// view after it, so recipients need no follow-up Observe.
type notifyArgs struct {
	Group      string
	Type       uint8
	MemberRank uint32
	MemberAddr string
	View       viewResp
}

func (a *notifyArgs) Proc(p *mercury.Proc) error {
	p.String(&a.Group)
	p.Uint8(&a.Type)
	p.Uint32(&a.MemberRank)
	p.String(&a.MemberAddr)
	return a.View.Proc(p)
}

func eventToArgs(group string, ev Event) notifyArgs {
	return notifyArgs{
		Group:      group,
		Type:       uint8(ev.Type),
		MemberRank: ev.Member.Rank,
		MemberAddr: ev.Member.Addr,
		View:       viewToResp(0, ev.View),
	}
}

func argsToEvent(a *notifyArgs) Event {
	return Event{
		Type:   EventType(a.Type),
		Member: Member{Rank: a.MemberRank, Addr: a.MemberAddr},
		View:   respToView(a.Group, a.View),
	}
}

// Handlers.

func (h *Host) handleJoin(ctx *margo.Context) {
	var in groupArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ssg: %v", err)
		return
	}
	g, ok := h.group(in.Group)
	if !ok {
		ctx.RespondError("%v: %s", ErrUnknownGroup, in.Group)
		return
	}
	addr := in.Addr
	if addr == "" {
		addr = ctx.Origin()
	}
	rank, v, changed := g.join(addr)
	if changed {
		h.enqueue(g.name, Event{Type: EventJoin, Member: Member{Rank: rank, Addr: addr}, View: v})
	}
	out := viewToResp(rank, v)
	ctx.Respond(&out)
}

func (h *Host) handleLeave(ctx *margo.Context) {
	var in groupArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ssg: %v", err)
		return
	}
	g, ok := h.group(in.Group)
	if !ok {
		ctx.RespondError("%v: %s", ErrUnknownGroup, in.Group)
		return
	}
	addr := in.Addr
	if addr == "" {
		addr = ctx.Origin()
	}
	v, ok := g.leave(addr)
	if !ok {
		ctx.RespondError("%v: %s", ErrNotMember, addr)
		return
	}
	h.enqueue(g.name, Event{Type: EventLeave, Member: Member{Addr: addr}, View: v})
	ctx.Respond(mercury.Void{})
}

func (h *Host) handleObserve(ctx *margo.Context) {
	var in groupArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ssg: %v", err)
		return
	}
	g, ok := h.group(in.Group)
	if !ok {
		ctx.RespondError("%v: %s", ErrUnknownGroup, in.Group)
		return
	}
	out := viewToResp(0, g.View())
	ctx.Respond(&out)
}

// handleSubscribe registers the caller (or the address it names) as a
// non-member observer: it receives every subsequent membership delta as
// a pushed ssg_notify RPC.
func (h *Host) handleSubscribe(ctx *margo.Context) {
	var in groupArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ssg: %v", err)
		return
	}
	g, ok := h.group(in.Group)
	if !ok {
		ctx.RespondError("%v: %s", ErrUnknownGroup, in.Group)
		return
	}
	addr := in.Addr
	if addr == "" {
		addr = ctx.Origin()
	}
	out := viewToResp(0, g.subscribe(addr))
	ctx.Respond(&out)
}

// Client-side operations.

// Client performs group operations against a root.
type Client struct {
	inst *margo.Instance
}

// NewClient wires the SSG RPCs into a Margo instance.
func NewClient(inst *margo.Instance) (*Client, error) {
	if err := inst.RegisterClient(RPCNames()...); err != nil {
		return nil, err
	}
	return &Client{inst: inst}, nil
}

// Join adds this process (or addr, if non-empty) to the group rooted at
// root, returning the assigned rank and the membership view.
func (c *Client) Join(self *abt.ULT, root, group, addr string) (uint32, View, error) {
	var out viewResp
	in := groupArgs{Group: group, Addr: addr}
	if err := c.inst.Forward(self, root, RPCJoin, &in, &out); err != nil {
		return 0, View{}, err
	}
	return out.Rank, respToView(group, out), nil
}

// Leave removes this process (or addr) from the group.
func (c *Client) Leave(self *abt.ULT, root, group, addr string) error {
	in := groupArgs{Group: group, Addr: addr}
	return c.inst.Forward(self, root, RPCLeave, &in, nil)
}

// Observe fetches the group's current membership view without joining —
// the client-side discovery path.
func (c *Client) Observe(self *abt.ULT, root, group string) (View, error) {
	var out viewResp
	in := groupArgs{Group: group}
	if err := c.inst.Forward(self, root, RPCObserve, &in, &out); err != nil {
		return View{}, err
	}
	return respToView(group, out), nil
}

// Subscribe registers this process (or addr) for pushed membership
// deltas without joining, returning the current view. The subscriber
// must be able to service ssg_notify RPCs (see Agent).
func (c *Client) Subscribe(self *abt.ULT, root, group, addr string) (View, error) {
	var out viewResp
	in := groupArgs{Group: group, Addr: addr}
	if err := c.inst.Forward(self, root, RPCSubscribe, &in, &out); err != nil {
		return View{}, err
	}
	return respToView(group, out), nil
}
