package ssg

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/na"
)

// TestViewSnapshotUnderChurn: the satellite -race stress test. Many
// client ULTs hammer join/leave/observe on one group while readers walk
// View().Members concurrently — the copy-on-write snapshot must never
// tear (a view's member slice is immutable once published), and every
// observed view must be internally consistent: ranks sorted, no
// duplicate addresses.
func TestViewSnapshotUnderChurn(t *testing.T) {
	e := newEnv(t)
	g, err := e.host.Create("churn", true)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)

	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		u := e.cli.Run(fmt.Sprintf("churn-%d", w), func(self *abt.ULT) {
			defer wg.Done()
			addr := fmt.Sprintf("node%d/member", w)
			for i := 0; i < iters; i++ {
				if _, _, err := e.sc.Join(self, e.root.Addr(), "churn", addr); err != nil {
					errs <- err
					return
				}
				if v, err := e.sc.Observe(self, e.root.Addr(), "churn"); err != nil {
					errs <- err
					return
				} else if err := checkView(v); err != nil {
					errs <- err
					return
				}
				if err := e.sc.Leave(self, e.root.Addr(), "churn", addr); err != nil {
					errs <- err
					return
				}
			}
		})
		defer u.Join(nil)
	}

	// Root-local readers race the churn directly against the group
	// state (no RPC serialization to hide a torn snapshot).
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := g.View()
				if err := checkView(v); err != nil {
					errs <- err
					return
				}
				if len(v.Members) > 0 {
					if _, ok := v.MemberFor([]byte("k")); !ok {
						errs <- fmt.Errorf("MemberFor failed on non-empty view")
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	rwg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if v := g.View(); v.Size() != 1 {
		t.Fatalf("final view = %+v, want only the root", v)
	}
}

func checkView(v View) error {
	seen := make(map[string]bool, len(v.Members))
	for i, m := range v.Members {
		if m.Addr == "" {
			return fmt.Errorf("view v%d has empty addr at %d: %+v", v.Version, i, v.Members)
		}
		if seen[m.Addr] {
			return fmt.Errorf("view v%d has duplicate addr %s", v.Version, m.Addr)
		}
		seen[m.Addr] = true
		if i > 0 && v.Members[i-1].Rank >= m.Rank {
			return fmt.Errorf("view v%d ranks unsorted: %+v", v.Version, v.Members)
		}
	}
	return nil
}

// agentEnv: a root host plus two server-mode agents on their own nodes.
type agentEnv struct {
	fabric *na.Fabric
	root   *margo.Instance
	host   *Host
	insts  []*margo.Instance
	agents []*Agent
}

func newAgentEnv(t *testing.T, n int) *agentEnv {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	root, err := margo.New(margo.Options{Mode: margo.ModeServer, Node: "n0", Name: "root", Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	e := &agentEnv{fabric: f, root: root}
	host, err := NewHost(root)
	if err != nil {
		t.Fatal(err)
	}
	e.host = host
	for i := 0; i < n; i++ {
		inst, err := margo.New(margo.Options{
			Mode: margo.ModeServer, Node: fmt.Sprintf("n%d", i+1),
			Name: fmt.Sprintf("agent%d", i), Fabric: f,
		})
		if err != nil {
			t.Fatal(err)
		}
		ag, err := NewAgent(inst)
		if err != nil {
			t.Fatal(err)
		}
		e.insts = append(e.insts, inst)
		e.agents = append(e.agents, ag)
	}
	t.Cleanup(func() {
		host.Close()
		for _, inst := range e.insts {
			inst.Shutdown()
		}
		root.Shutdown()
	})
	return e
}

func (e *agentEnv) run(t *testing.T, i int, fn func(self *abt.ULT) error) {
	t.Helper()
	var err error
	u := e.insts[i].Run("t", func(self *abt.ULT) { err = fn(self) })
	if jerr := u.Join(nil); jerr != nil {
		t.Fatal(jerr)
	}
	if err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAgentPushedDeltas: a watcher agent subscribes without joining; a
// member agent joins and leaves. The watcher must receive both deltas
// as pushes (no polling) with monotonically increasing versions, and
// its cached view must converge to each new membership.
func TestAgentPushedDeltas(t *testing.T) {
	e := newAgentEnv(t, 2)
	if _, err := e.host.Create("svc", true); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []Event
	e.agents[0].OnEvent("svc", func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	e.run(t, 0, func(self *abt.ULT) error {
		v, err := e.agents[0].Watch(self, e.root.Addr(), "svc")
		if err != nil {
			return err
		}
		if v.Size() != 1 {
			return fmt.Errorf("watch view = %+v", v)
		}
		return nil
	})

	e.run(t, 1, func(self *abt.ULT) error {
		_, _, err := e.agents[1].Join(self, e.root.Addr(), "svc")
		return err
	})
	waitFor(t, 2*time.Second, "join push", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) >= 1
	})

	e.run(t, 1, func(self *abt.ULT) error {
		return e.agents[1].Leave(self, e.root.Addr(), "svc")
	})
	waitFor(t, 2*time.Second, "leave push", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) >= 2
	})

	mu.Lock()
	defer mu.Unlock()
	if events[0].Type != EventJoin || events[0].Member.Addr != e.insts[1].Addr() {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Type != EventLeave || events[1].Member.Addr != e.insts[1].Addr() {
		t.Fatalf("event 1 = %+v", events[1])
	}
	if events[0].View.Version >= events[1].View.Version {
		t.Fatalf("versions not increasing: %d then %d", events[0].View.Version, events[1].View.Version)
	}
	if v, ok := e.agents[0].View("svc"); !ok || v.Size() != 1 || v.Version != events[1].View.Version {
		t.Fatalf("cached view = %+v ok=%v", v, ok)
	}
}

// TestDetectorSuspectsThenEvicts: the SWIM-style suspicion path. A
// member is partitioned from the root by the fault plane; the detector
// must first push EventSuspect (view unchanged) and then EventFail
// (member evicted, version bumped). The surviving member sees both
// pushes.
func TestDetectorSuspectsThenEvicts(t *testing.T) {
	e := newAgentEnv(t, 2)
	g, err := e.host.Create("svc", false)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []Event
	record := func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	e.agents[0].OnEvent("svc", record)

	for i := 0; i < 2; i++ {
		i := i
		e.run(t, i, func(self *abt.ULT) error {
			_, _, err := e.agents[i].Join(self, e.root.Addr(), "svc")
			return err
		})
	}
	if v := g.View(); v.Size() != 2 {
		t.Fatalf("view = %+v", v)
	}

	det := e.host.StartDetector(g, DetectorConfig{
		Interval:     5 * time.Millisecond,
		PingTimeout:  20 * time.Millisecond,
		SuspectAfter: 2,
		FailAfter:    4,
	})
	defer det.Stop()

	// Let a few clean ping rounds pass: no spurious suspicion.
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	for _, ev := range events {
		if ev.Type == EventSuspect || ev.Type == EventFail {
			mu.Unlock()
			t.Fatalf("spurious %v before partition: %+v", ev.Type, ev)
		}
	}
	mu.Unlock()

	// Partition agent 1 from the root: pings start missing.
	victim := e.insts[1].Addr()
	plan := na.NewFaultPlan(7)
	plan.Partition(e.root.Addr(), victim)
	e.fabric.SetFaultPlan(plan)
	waitFor(t, 5*time.Second, "suspect then fail", func() bool {
		mu.Lock()
		defer mu.Unlock()
		var sawSuspect, sawFail bool
		for _, ev := range events {
			if ev.Member.Addr != victim {
				continue
			}
			switch ev.Type {
			case EventSuspect:
				sawSuspect = true
				if !ev.View.Has(victim) {
					t.Errorf("suspect evicted the member early: %+v", ev.View)
				}
			case EventFail:
				sawFail = true
				if ev.View.Has(victim) {
					t.Errorf("fail view still has victim: %+v", ev.View)
				}
				if !sawSuspect {
					t.Errorf("fail before suspect")
				}
			}
		}
		return sawSuspect && sawFail
	})

	if v := g.View(); v.Size() != 1 || v.Has(victim) {
		t.Fatalf("post-eviction view = %+v", v)
	}
}
