package ssg

import (
	"sync"

	"symbiosys/internal/abt"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// Agent is the participant side of a dynamic group: a process (server
// mode — it must service RPCs) that joins or watches groups rooted
// elsewhere, receives pushed membership deltas, answers failure-
// detector pings, and keeps a locally cached view per group. Routing
// layers subscribe to the event stream to refresh their tables without
// polling Observe.
type Agent struct {
	inst *margo.Instance
	cli  *Client

	mu    sync.Mutex
	views map[string]View // group -> freshest view seen
	subs  map[string][]func(Event)
}

// NewAgent installs the participant-side SSG RPCs (notify, ping) on a
// Margo server instance and returns the agent.
func NewAgent(inst *margo.Instance) (*Agent, error) {
	cli, err := NewClient(inst)
	if err != nil {
		return nil, err
	}
	a := &Agent{inst: inst, cli: cli, views: make(map[string]View), subs: make(map[string][]func(Event))}
	if err := inst.Register(RPCNotify, a.handleNotify); err != nil {
		return nil, err
	}
	if err := inst.Register(RPCPing, a.handlePing); err != nil {
		return nil, err
	}
	return a, nil
}

// Client exposes the underlying pull-side client (Observe etc.).
func (a *Agent) Client() *Client { return a.cli }

// Join enters the group rooted at root as this process, caching the
// returned view. Returns the assigned rank.
func (a *Agent) Join(self *abt.ULT, root, group string) (uint32, View, error) {
	rank, v, err := a.cli.Join(self, root, group, a.inst.Addr())
	if err != nil {
		return 0, View{}, err
	}
	a.apply(group, v)
	return rank, v, nil
}

// Leave exits the group.
func (a *Agent) Leave(self *abt.ULT, root, group string) error {
	return a.cli.Leave(self, root, group, a.inst.Addr())
}

// Watch subscribes this process for pushed deltas without joining,
// caching the returned view.
func (a *Agent) Watch(self *abt.ULT, root, group string) (View, error) {
	v, err := a.cli.Subscribe(self, root, group, a.inst.Addr())
	if err != nil {
		return View{}, err
	}
	a.apply(group, v)
	return v, nil
}

// Refresh re-pulls the view from the root (recovery path when pushes
// were missed) and caches it.
func (a *Agent) Refresh(self *abt.ULT, root, group string) (View, error) {
	v, err := a.cli.Observe(self, root, group)
	if err != nil {
		return View{}, err
	}
	a.apply(group, v)
	return v, nil
}

// View returns the freshest cached view for the group.
func (a *Agent) View(group string) (View, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.views[group]
	return v, ok
}

// OnEvent subscribes a callback to the group's pushed membership
// events. Callbacks run on the notify handler ULT, one event at a
// time, after the cached view has been updated — so a callback reading
// Agent.View sees a view at least as new as the event's.
func (a *Agent) OnEvent(group string, fn func(Event)) {
	a.mu.Lock()
	a.subs[group] = append(a.subs[group], fn)
	a.mu.Unlock()
}

// apply caches v if it is newer than what we hold (pushes and pulls
// can race; versions are totally ordered by the root).
func (a *Agent) apply(group string, v View) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cur, ok := a.views[group]; ok && cur.Version >= v.Version && v.Version != 0 {
		return false
	}
	a.views[group] = v
	return true
}

func (a *Agent) handleNotify(ctx *margo.Context) {
	var in notifyArgs
	if err := ctx.GetInput(&in); err != nil {
		ctx.RespondError("ssg: %v", err)
		return
	}
	ev := argsToEvent(&in)
	// Suspicion does not bump the version; still deliver the event.
	a.apply(in.Group, ev.View)
	a.mu.Lock()
	subs := append([]func(Event){}, a.subs[in.Group]...)
	a.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
	ctx.Respond(mercury.Void{})
}

func (a *Agent) handlePing(ctx *margo.Context) {
	ctx.Respond(mercury.Void{})
}
