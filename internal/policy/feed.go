package policy

import (
	"time"

	"symbiosys/internal/mercury"
	"symbiosys/internal/telemetry"
)

// TelemetryFeed adapts a live telemetry sampler into a SnapshotFeed:
// the engine's windowed fractions are derived from the sampler's series
// instead of probing the instance, so monitoring cost is paid once per
// telemetry tick no matter how many consumers watch. The feed reports
// ok=false until the sampler has produced a new tick since the last
// evaluation (and at least two ticks overall, so deltas exist).
func TelemetryFeed(s *telemetry.Sampler) SnapshotFeed {
	var lastSeen uint64
	var prevHandler, prevExec float64
	return func() (Snapshot, bool) {
		ticks := s.Ticks()
		if ticks < 2 || ticks == lastSeen {
			return Snapshot{}, false
		}
		lastSeen = ticks
		last, _ := s.Last()

		snap := Snapshot{
			At:             time.Unix(0, last.UnixNanos),
			Entity:         s.Source().Addr(),
			HandlerStreams: last.HandlerStreams,
			OFIMaxEvents:   last.OFIMaxEvents,
			InFlight:       last.RPCsInFlight,
			NetworkPending: last.CQDepth,
		}
		snap.CompletionQueueLen = int(pvarValue(last, mercury.PVarCompletionQueueSize))

		for _, p := range last.Pools {
			if p.Name == "handlers" {
				snap.HandlerRunnable = p.Runnable
				snap.HandlerBlocked = p.Blocked
				break
			}
		}

		// Windowed handler fraction from cumulative-counter deltas since
		// the previous evaluation (the same Figure 9 diagnosis the
		// direct-probe path computes, fed from the series).
		handler, exec := float64(last.TargetHandlerNanos), float64(last.TargetTotalNanos)
		dh, de := handler-prevHandler, exec-prevExec
		prevHandler, prevExec = handler, exec
		snap.WindowTargetExec = time.Duration(de)
		if de > 0 {
			snap.HandlerFraction = dh / de
		}

		// OFI budget pressure: pointwise over the buffered window,
		// comparing the events-read PVAR against the live budget at each
		// tick (the budget series moves when a remediation fires).
		_, reads, okR := s.SeriesSnapshot("pvar/" + mercury.PVarNumOFIEventsRead)
		_, caps, okC := s.SeriesSnapshot("ofi_max_events")
		if okR && okC {
			n := len(reads)
			if len(caps) < n {
				n = len(caps)
			}
			atCap := 0
			for i := 0; i < n; i++ {
				if reads[len(reads)-1-i].Value >= caps[len(caps)-1-i].Value {
					atCap++
				}
			}
			if n > 0 {
				snap.OFIAtCapFraction = float64(atCap) / float64(n)
				snap.OFIAtCap = reads[len(reads)-1].Value >= caps[len(caps)-1].Value
			}
		}
		return snap, true
	}
}

// pvarValue extracts one PVAR from a sample by name (zero if absent).
func pvarValue(s telemetry.Sample, name string) uint64 {
	for _, pv := range s.PVars {
		if pv.Name == name {
			return pv.Value
		}
	}
	return 0
}
