package policy

import (
	"testing"
	"time"

	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
	"symbiosys/internal/telemetry"
)

// newTelemetryEnv is newEnv with a telemetry sampler attached to the
// server (manual ticks: the tests drive SampleOnce explicitly).
func newTelemetryEnv(t *testing.T, streams int) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "srv", Fabric: f,
		HandlerStreams: streams, Stage: core.StageFull,
		Telemetry: &telemetry.Options{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "cli", Fabric: f, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	srv.Register("work_rpc", func(ctx *margo.Context) {
		ctx.Compute(2 * time.Millisecond)
		ctx.Respond(mercury.Void{})
	})
	cli.RegisterClient("work_rpc")
	return &env{srv: srv, cli: cli}
}

func TestTelemetryFeedFreshness(t *testing.T) {
	e := newTelemetryEnv(t, 1)
	s := e.srv.Sampler()
	if s == nil {
		t.Fatal("no sampler attached despite Options.Telemetry")
	}
	feed := TelemetryFeed(s)

	// Wait for the sampler goroutine's initial sample so tick counts
	// below are deterministic.
	deadline := time.Now().Add(2 * time.Second)
	for s.Ticks() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// One tick is not enough for deltas.
	if _, ok := feed(); ok {
		t.Fatal("feed reported fresh with fewer than two ticks")
	}
	s.SampleOnce()
	if _, ok := feed(); !ok {
		t.Fatal("feed stale after two ticks")
	}
	// Same tick again: no new sample, so the feed must decline.
	if _, ok := feed(); ok {
		t.Fatal("feed re-served an already-evaluated tick")
	}
	s.SampleOnce()
	if _, ok := feed(); !ok {
		t.Fatal("feed stale after a new tick")
	}
}

func TestEngineLiveFeedRemediates(t *testing.T) {
	e := newTelemetryEnv(t, 1)
	s := e.srv.Sampler()
	eng := NewEngine(e.srv, time.Millisecond)
	eng.SetFeed(TelemetryFeed(s))
	eng.AddRule("grow-handlers",
		HandlerSaturated(0.3, time.Millisecond),
		AddHandlerStreams{N: 8, Max: 16},
		0)

	// Without a fresh telemetry tick the engine must not act.
	if d := eng.Tick(); len(d) != 0 {
		t.Fatalf("decisions without telemetry = %+v", d)
	}

	e.burst(t, 16)
	s.SampleOnce()
	decisions := eng.Tick()
	if len(decisions) != 1 {
		t.Fatalf("decisions = %+v", decisions)
	}
	d := decisions[0]
	if d.Rule != "grow-handlers" || d.Err != nil {
		t.Fatalf("decision = %+v", d)
	}
	if d.Snapshot.HandlerFraction <= 0.3 {
		t.Fatalf("snapshot fraction = %f", d.Snapshot.HandlerFraction)
	}
	if d.Snapshot.Entity != e.srv.Addr() {
		t.Fatalf("snapshot entity = %q", d.Snapshot.Entity)
	}
	if e.srv.HandlerStreams() != 9 {
		t.Fatalf("handler streams = %d, want 9", e.srv.HandlerStreams())
	}
	// The next sampler tick must see the remediation in the gauge.
	sm := s.SampleOnce()
	if sm.HandlerStreams != 9 {
		t.Fatalf("telemetry handler_streams = %d, want 9", sm.HandlerStreams)
	}
}

func TestTelemetryFeedPoolAndKnobFields(t *testing.T) {
	e := newTelemetryEnv(t, 2)
	s := e.srv.Sampler()
	e.burst(t, 4)
	s.SampleOnce()
	s.SampleOnce()
	feed := TelemetryFeed(s)
	snap, ok := feed()
	if !ok {
		t.Fatal("feed stale")
	}
	if snap.HandlerStreams != 2 {
		t.Fatalf("HandlerStreams = %d, want 2", snap.HandlerStreams)
	}
	if snap.OFIMaxEvents != e.srv.OFIMaxEvents() {
		t.Fatalf("OFIMaxEvents = %d, want %d", snap.OFIMaxEvents, e.srv.OFIMaxEvents())
	}
	if snap.WindowTargetExec <= 0 {
		t.Fatal("WindowTargetExec empty despite burst")
	}
}
