package policy

import (
	"testing"
	"time"

	"symbiosys/internal/abt"
	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
	"symbiosys/internal/na"
)

type env struct {
	srv, cli *margo.Instance
}

func newEnv(t *testing.T, streams int) *env {
	t.Helper()
	f := na.NewFabric(na.DefaultConfig())
	srv, err := margo.New(margo.Options{
		Mode: margo.ModeServer, Node: "n1", Name: "srv", Fabric: f,
		HandlerStreams: streams, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := margo.New(margo.Options{
		Mode: margo.ModeClient, Node: "n0", Name: "cli", Fabric: f, Stage: core.StageFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Shutdown(); srv.Shutdown() })
	srv.Register("work_rpc", func(ctx *margo.Context) {
		ctx.Compute(2 * time.Millisecond)
		ctx.Respond(mercury.Void{})
	})
	cli.RegisterClient("work_rpc")
	return &env{srv: srv, cli: cli}
}

// burst issues n concurrent RPCs and waits for them.
func (e *env) burst(t *testing.T, n int) {
	t.Helper()
	ults := make([]*abt.ULT, n)
	for i := range ults {
		ults[i] = e.cli.Run("w", func(self *abt.ULT) {
			e.cli.Forward(self, e.srv.Addr(), "work_rpc", &mercury.Void{}, nil)
		})
	}
	for _, u := range ults {
		u.Join(nil)
	}
	time.Sleep(20 * time.Millisecond) // let t13 callbacks land
}

func TestHandlerSaturationRuleFiresAndRemediates(t *testing.T) {
	e := newEnv(t, 1)
	eng := NewEngine(e.srv, time.Millisecond)
	eng.AddRule("grow-handlers",
		HandlerSaturated(0.3, time.Millisecond),
		AddHandlerStreams{N: 8, Max: 16},
		0)

	// Saturate: 16 concurrent 2ms requests on one stream.
	e.burst(t, 16)
	decisions := eng.Tick()
	if len(decisions) != 1 {
		t.Fatalf("decisions = %+v", decisions)
	}
	d := decisions[0]
	if d.Rule != "grow-handlers" || d.Err != nil {
		t.Fatalf("decision = %+v", d)
	}
	if d.Snapshot.HandlerFraction <= 0.3 {
		t.Fatalf("snapshot fraction = %f", d.Snapshot.HandlerFraction)
	}
	if e.srv.HandlerStreams() != 9 {
		t.Fatalf("handler streams = %d, want 9", e.srv.HandlerStreams())
	}

	// After remediation the same burst must show far less handler wait.
	e.burst(t, 16)
	snap := eng.Sample()
	if snap.HandlerFraction >= d.Snapshot.HandlerFraction/2 {
		t.Fatalf("post-remediation fraction %f not well below %f",
			snap.HandlerFraction, d.Snapshot.HandlerFraction)
	}
	if len(eng.Decisions()) != 1 {
		t.Fatalf("audit log = %+v", eng.Decisions())
	}
}

func TestRuleCooldownPreventsRefiring(t *testing.T) {
	e := newEnv(t, 1)
	eng := NewEngine(e.srv, time.Millisecond)
	eng.AddRule("grow", HandlerSaturated(0.1, time.Microsecond),
		AddHandlerStreams{N: 1, Max: 64}, time.Hour)
	e.burst(t, 8)
	if n := len(eng.Tick()); n != 1 {
		t.Fatalf("first tick decisions = %d", n)
	}
	e.burst(t, 8)
	if n := len(eng.Tick()); n != 0 {
		t.Fatalf("cooldown violated: %d decisions", n)
	}
}

func TestAddHandlerStreamsRespectsMax(t *testing.T) {
	e := newEnv(t, 4)
	a := AddHandlerStreams{N: 8, Max: 6}
	if err := a.Apply(e.srv); err != nil {
		t.Fatal(err)
	}
	if e.srv.HandlerStreams() != 6 {
		t.Fatalf("streams = %d, want clamped 6", e.srv.HandlerStreams())
	}
	if err := a.Apply(e.srv); err == nil {
		t.Fatal("apply beyond max accepted")
	}
}

func TestRaiseOFIMaxEvents(t *testing.T) {
	e := newEnv(t, 1)
	a := RaiseOFIMaxEvents{Factor: 4, Max: 64}
	if err := a.Apply(e.cli); err != nil {
		t.Fatal(err)
	}
	if e.cli.OFIMaxEvents() != 64 {
		t.Fatalf("OFI_max_events = %d, want 64", e.cli.OFIMaxEvents())
	}
	if err := a.Apply(e.cli); err == nil {
		t.Fatal("apply at limit accepted")
	}
}

func TestConditionCombinators(t *testing.T) {
	yes := func(Snapshot) bool { return true }
	no := func(Snapshot) bool { return false }
	if !And(yes, yes)(Snapshot{}) || And(yes, no)(Snapshot{}) {
		t.Fatal("And wrong")
	}
	if !Or(no, yes)(Snapshot{}) || Or(no, no)(Snapshot{}) {
		t.Fatal("Or wrong")
	}
	if !QueueBacklog(5)(Snapshot{NetworkPending: 6}) ||
		QueueBacklog(5)(Snapshot{NetworkPending: 2}) {
		t.Fatal("QueueBacklog wrong")
	}
	if !ProgressStarved(0.5)(Snapshot{OFIAtCapFraction: 0.9}) {
		t.Fatal("ProgressStarved wrong")
	}
}

func TestEngineStartStop(t *testing.T) {
	e := newEnv(t, 1)
	eng := NewEngine(e.srv, time.Millisecond)
	eng.AddRule("grow", HandlerSaturated(0.2, time.Microsecond),
		AddHandlerStreams{N: 2, Max: 8}, 5*time.Millisecond)
	eng.Start()
	e.burst(t, 12)
	time.Sleep(30 * time.Millisecond)
	eng.Stop()
	eng.Stop() // idempotent
	if len(eng.Decisions()) == 0 {
		t.Fatal("engine loop made no decisions under saturation")
	}
	if e.srv.HandlerStreams() <= 1 {
		t.Fatal("no streams added")
	}
}

func TestAddHandlerStreamsOnClientRejected(t *testing.T) {
	e := newEnv(t, 1)
	if err := e.cli.AddHandlerStreams(2); err == nil {
		t.Fatal("AddHandlerStreams on client accepted")
	}
	if err := e.srv.AddHandlerStreams(0); err == nil {
		t.Fatal("AddHandlerStreams(0) accepted")
	}
}
