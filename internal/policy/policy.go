// Package policy implements the dynamic-reconfiguration engine the
// paper sketches as future work (§VII): "policy-driven mechanisms
// whereby rules governing response to poor performance behavior can be
// formulated and applied based on performance monitoring". An Engine
// periodically samples a Margo instance's SYMBIOSYS measurements into a
// Snapshot, evaluates user-formulated Rules against it, and applies the
// matching remediations live — e.g. growing the handler pool when the
// target ULT handler time dominates (the C1→C2 move) or raising
// OFI_max_events when the progress loop keeps reading at its budget
// (the C5→C6 move).
package policy

import (
	"fmt"
	"sync"
	"time"

	"symbiosys/internal/core"
	"symbiosys/internal/margo"
	"symbiosys/internal/mercury"
)

// Snapshot is one monitoring sample of an instance's health, derived
// from the same SYMBIOSYS data the offline analyses use. Fractions are
// computed over the window since the previous sample.
type Snapshot struct {
	At     time.Time
	Entity string

	// HandlerFraction is the target-handler share of cumulative target
	// execution accumulated during the window (Figure 9's diagnosis).
	HandlerFraction float64
	// WindowTargetExec is the cumulative target execution observed in
	// the window (to gate decisions on having enough signal).
	WindowTargetExec time.Duration

	// OFIAtCap reports whether the most recent progress pass read the
	// full OFI_max_events budget; OFIAtCapFraction is the share of
	// sampled ticks at the budget within the window (Figure 12).
	OFIAtCap         bool
	OFIAtCapFraction float64

	// Pool pressure.
	HandlerRunnable int64
	HandlerBlocked  int64

	// Library pressure.
	CompletionQueueLen int
	NetworkPending     int
	InFlight           int64

	HandlerStreams int
	OFIMaxEvents   int
}

// Condition decides whether a rule matches a snapshot.
type Condition func(Snapshot) bool

// And combines conditions conjunctively.
func And(cs ...Condition) Condition {
	return func(s Snapshot) bool {
		for _, c := range cs {
			if !c(s) {
				return false
			}
		}
		return true
	}
}

// Or combines conditions disjunctively.
func Or(cs ...Condition) Condition {
	return func(s Snapshot) bool {
		for _, c := range cs {
			if c(s) {
				return true
			}
		}
		return false
	}
}

// HandlerSaturated matches when the handler-wait share of target
// execution exceeds frac with meaningful signal in the window.
func HandlerSaturated(frac float64, minSignal time.Duration) Condition {
	return func(s Snapshot) bool {
		return s.WindowTargetExec >= minSignal && s.HandlerFraction > frac
	}
}

// ProgressStarved matches when the progress loop keeps draining its
// full event budget (the clogged-OFI-queue signal).
func ProgressStarved(atCapFrac float64) Condition {
	return func(s Snapshot) bool { return s.OFIAtCapFraction >= atCapFrac }
}

// QueueBacklog matches when network events await beyond n.
func QueueBacklog(n int) Condition {
	return func(s Snapshot) bool { return s.NetworkPending > n || s.CompletionQueueLen > n }
}

// Action is one remediation applied to the instance.
type Action interface {
	Apply(inst *margo.Instance) error
	String() string
}

// AddHandlerStreams grows the handler pool by N, up to Max total.
type AddHandlerStreams struct {
	N   int
	Max int
}

// Apply implements Action.
func (a AddHandlerStreams) Apply(inst *margo.Instance) error {
	if a.Max > 0 && inst.HandlerStreams() >= a.Max {
		return fmt.Errorf("policy: handler streams already at limit %d", a.Max)
	}
	n := a.N
	if a.Max > 0 && inst.HandlerStreams()+n > a.Max {
		n = a.Max - inst.HandlerStreams()
	}
	return inst.AddHandlerStreams(n)
}

func (a AddHandlerStreams) String() string {
	return fmt.Sprintf("add %d handler streams (max %d)", a.N, a.Max)
}

// RaiseOFIMaxEvents multiplies the progress read budget, up to Max.
type RaiseOFIMaxEvents struct {
	Factor int
	Max    int
}

// Apply implements Action.
func (a RaiseOFIMaxEvents) Apply(inst *margo.Instance) error {
	cur := inst.OFIMaxEvents()
	f := a.Factor
	if f < 2 {
		f = 2
	}
	next := cur * f
	if a.Max > 0 && next > a.Max {
		next = a.Max
	}
	if next <= cur {
		return fmt.Errorf("policy: OFI_max_events already at limit %d", cur)
	}
	inst.SetOFIMaxEvents(next)
	return nil
}

func (a RaiseOFIMaxEvents) String() string {
	return fmt.Sprintf("raise OFI_max_events x%d (max %d)", a.Factor, a.Max)
}

// Rule binds a named condition to a remediation with a cooldown.
type Rule struct {
	Name     string
	When     Condition
	Do       Action
	Cooldown time.Duration

	lastFired time.Time
}

// Decision records one engine action for the audit log.
type Decision struct {
	At       time.Time
	Rule     string
	Action   string
	Err      error
	Snapshot Snapshot
}

// SnapshotFeed supplies monitoring snapshots from an external source —
// the live-feed mode. When installed via SetFeed, the engine evaluates
// rules against the feed's snapshots instead of probing the instance
// itself, so one telemetry sampler serves both scrapers and policy.
// ok=false means the feed has no fresh data yet; the engine skips that
// tick rather than acting on stale numbers.
type SnapshotFeed func() (Snapshot, bool)

// Engine monitors one instance and applies rules.
type Engine struct {
	inst     *margo.Instance
	interval time.Duration

	mu        sync.Mutex
	feed      SnapshotFeed
	rules     []*Rule
	decisions []Decision

	// Window state for fraction computations.
	prevHandler uint64
	prevExec    uint64
	ticks       int
	atCapTicks  int

	stop chan struct{}
	done chan struct{}
}

// NewEngine creates a monitoring engine sampling at the given interval
// (default 10ms).
func NewEngine(inst *margo.Instance, interval time.Duration) *Engine {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Engine{inst: inst, interval: interval}
}

// AddRule installs a rule.
func (e *Engine) AddRule(name string, when Condition, do Action, cooldown time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, &Rule{Name: name, When: when, Do: do, Cooldown: cooldown})
}

// SetFeed installs (or clears, with nil) a live snapshot feed. With a
// feed installed, Tick evaluates rules against the feed's snapshots
// instead of probing the instance directly.
func (e *Engine) SetFeed(f SnapshotFeed) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.feed = f
}

// Decisions returns the audit log of applied (or failed) remediations.
func (e *Engine) Decisions() []Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Decision, len(e.decisions))
	copy(out, e.decisions)
	return out
}

// Sample computes one monitoring snapshot (exported for tests and for
// callers embedding the engine in their own loops).
func (e *Engine) Sample() Snapshot {
	inst := e.inst
	s := Snapshot{
		At:             time.Now(),
		Entity:         inst.Addr(),
		HandlerStreams: inst.HandlerStreams(),
		OFIMaxEvents:   inst.OFIMaxEvents(),
		InFlight:       inst.InFlight(),
		NetworkPending: inst.Mercury().NetworkPending(),
	}
	s.CompletionQueueLen = inst.Mercury().CompletionQueueLen()

	hp := inst.HandlerPool()
	s.HandlerRunnable = int64(hp.Len())
	s.HandlerBlocked = hp.Blocked()

	// Windowed handler fraction from the target-side profile deltas.
	var handler, exec uint64
	for _, st := range inst.Profiler().TargetStats() {
		handler += st.Components[core.CompHandler]
		exec += st.Components[core.CompHandler] +
			st.Components[core.CompTargetExec] +
			st.Components[core.CompTargetCB]
	}
	dh := handler - e.prevHandler
	de := exec - e.prevExec
	e.prevHandler, e.prevExec = handler, exec
	s.WindowTargetExec = time.Duration(de)
	if de > 0 {
		s.HandlerFraction = float64(dh) / float64(de)
	}

	// OFI budget pressure from the live PVAR.
	if v, err := readOFIEventsRead(inst); err == nil {
		s.OFIAtCap = int(v) >= inst.OFIMaxEvents()
	}
	e.ticks++
	if s.OFIAtCap {
		e.atCapTicks++
	}
	if e.ticks > 0 {
		s.OFIAtCapFraction = float64(e.atCapTicks) / float64(e.ticks)
	}
	return s
}

// readOFIEventsRead samples the num_ofi_events_read PVAR through a
// short-lived session, exactly as an external tool would.
func readOFIEventsRead(inst *margo.Instance) (uint64, error) {
	sess := inst.Mercury().PVars().InitSession()
	defer sess.Finalize()
	h, err := sess.AllocHandleByName(mercury.PVarNumOFIEventsRead)
	if err != nil {
		return 0, err
	}
	return sess.Read(h, nil)
}

// resetWindow clears the at-cap window after a remediation so the next
// decisions reflect post-change behavior.
func (e *Engine) resetWindow() {
	e.ticks = 0
	e.atCapTicks = 0
}

// Tick evaluates all rules against a fresh sample, applying at most one
// action per rule whose cooldown has passed. It returns the decisions
// made this tick.
func (e *Engine) Tick() []Decision {
	e.mu.Lock()
	feed := e.feed
	rules := e.rules
	e.mu.Unlock()
	var snap Snapshot
	if feed != nil {
		var ok bool
		if snap, ok = feed(); !ok {
			return nil // no fresh telemetry yet; don't act on stale data
		}
	} else {
		snap = e.Sample()
	}
	var made []Decision
	for _, r := range rules {
		if r.Cooldown > 0 && !r.lastFired.IsZero() && time.Since(r.lastFired) < r.Cooldown {
			continue
		}
		if !r.When(snap) {
			continue
		}
		err := r.Do.Apply(e.inst)
		r.lastFired = time.Now()
		d := Decision{At: r.lastFired, Rule: r.Name, Action: r.Do.String(), Err: err, Snapshot: snap}
		made = append(made, d)
		e.mu.Lock()
		e.decisions = append(e.decisions, d)
		e.mu.Unlock()
		e.resetWindow()
	}
	return made
}

// Start runs the engine loop until Stop. The loop runs out-of-band (a
// plain goroutine): monitoring must not occupy the instance's streams.
func (e *Engine) Start() {
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.Tick()
			}
		}
	}()
}

// Stop halts the engine loop.
func (e *Engine) Stop() {
	if e.stop == nil {
		return
	}
	close(e.stop)
	<-e.done
	e.stop = nil
}
