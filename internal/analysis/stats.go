package analysis

import (
	"fmt"
	"io"
	"sort"

	"symbiosys/internal/core"
)

// EntityStats summarizes the system-level samples one process emitted.
type EntityStats struct {
	Entity string
	Events int
	// Dropped counts trace events this process discarded at its
	// capacity bound — nonzero means the stats below undercount.
	Dropped uint64

	MaxBlocked   int64
	MeanBlocked  float64
	MaxRunnable  int64
	MeanRunnable float64

	MaxOFIRead  uint64
	MeanOFIRead float64
	// OFIAtCap counts samples where the progress loop read its full
	// OFI_max_events budget — the clogged-queue signal of Figure 12.
	OFIAtCap int

	MaxCQ      uint64
	MaxHeap    uint64
	Goroutines int

	// BatchedOps counts completed origin chains that traveled inside a
	// coalesced (vectored) forward; BatchFlushes the distinct batch IDs
	// among them. Their ratio is the realized coalesce factor.
	BatchedOps   int
	BatchFlushes int
}

// CoalesceRatio reports ops per vectored flush (zero when nothing
// coalesced).
func (s *EntityStats) CoalesceRatio() float64 {
	if s.BatchFlushes == 0 {
		return 0
	}
	return float64(s.BatchedOps) / float64(s.BatchFlushes)
}

// SystemStats computes the per-entity system statistics summary (the
// third analysis script of Table V). capEvents is the configured
// OFI_max_events used to count at-capacity samples.
func SystemStats(ts *TraceSet, capEvents uint64) []EntityStats {
	agg := make(map[string]*EntityStats)
	type sums struct {
		blocked, runnable float64
		ofi               float64
		ofiCount          int
		batchIDs          map[uint64]bool
	}
	sum := make(map[string]*sums)
	for _, e := range ts.Events {
		s := agg[e.Entity]
		if s == nil {
			s = &EntityStats{Entity: e.Entity}
			agg[e.Entity] = s
			sum[e.Entity] = &sums{}
		}
		sm := sum[e.Entity]
		s.Events++
		if e.Sys.PoolBlocked > s.MaxBlocked {
			s.MaxBlocked = e.Sys.PoolBlocked
		}
		if e.Sys.PoolRunnable > s.MaxRunnable {
			s.MaxRunnable = e.Sys.PoolRunnable
		}
		sm.blocked += float64(e.Sys.PoolBlocked)
		sm.runnable += float64(e.Sys.PoolRunnable)
		if e.Sys.HeapBytes > s.MaxHeap {
			s.MaxHeap = e.Sys.HeapBytes
		}
		if e.Sys.Goroutines > s.Goroutines {
			s.Goroutines = e.Sys.Goroutines
		}
		if e.PVars != nil {
			if e.PVars.OFIEventsRead > s.MaxOFIRead {
				s.MaxOFIRead = e.PVars.OFIEventsRead
			}
			sm.ofi += float64(e.PVars.OFIEventsRead)
			sm.ofiCount++
			if capEvents > 0 && e.PVars.OFIEventsRead >= capEvents {
				s.OFIAtCap++
			}
			if e.PVars.CompletionQueue > s.MaxCQ {
				s.MaxCQ = e.PVars.CompletionQueue
			}
		}
		if e.Kind == core.EvOriginEnd && e.BatchID != 0 {
			s.BatchedOps++
			if sm.batchIDs == nil {
				sm.batchIDs = make(map[uint64]bool)
			}
			sm.batchIDs[e.BatchID] = true
		}
	}
	// Attribute drops even for entities whose every event was dropped.
	for ent, n := range ts.DroppedBy {
		s := agg[ent]
		if s == nil {
			s = &EntityStats{Entity: ent}
			agg[ent] = s
			sum[ent] = &sums{}
		}
		s.Dropped = n
	}
	out := make([]EntityStats, 0, len(agg))
	for ent, s := range agg {
		sm := sum[ent]
		if s.Events > 0 {
			s.MeanBlocked = sm.blocked / float64(s.Events)
			s.MeanRunnable = sm.runnable / float64(s.Events)
		}
		if sm.ofiCount > 0 {
			s.MeanOFIRead = sm.ofi / float64(sm.ofiCount)
		}
		s.BatchFlushes = len(sm.batchIDs)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entity < out[j].Entity })
	return out
}

// RenderSystemStats writes the system statistics summary as text.
func RenderSystemStats(w io.Writer, stats []EntityStats) {
	fmt.Fprintln(w, "SYMBIOSYS system statistics summary")
	for _, s := range stats {
		fmt.Fprintf(w, "\n%s (%d samples)\n", s.Entity, s.Events)
		fmt.Fprintf(w, "  pool blocked : max %d  mean %.2f\n", s.MaxBlocked, s.MeanBlocked)
		fmt.Fprintf(w, "  pool runnable: max %d  mean %.2f\n", s.MaxRunnable, s.MeanRunnable)
		if s.MaxOFIRead > 0 || s.MeanOFIRead > 0 {
			fmt.Fprintf(w, "  ofi events   : max %d  mean %.2f  at-cap %d\n",
				s.MaxOFIRead, s.MeanOFIRead, s.OFIAtCap)
		}
		if s.MaxCQ > 0 {
			fmt.Fprintf(w, "  completion q : max %d\n", s.MaxCQ)
		}
		if s.BatchFlushes > 0 {
			fmt.Fprintf(w, "  batching     : %d ops over %d flushes (coalesce %.1f ops/flush)\n",
				s.BatchedOps, s.BatchFlushes, s.CoalesceRatio())
		}
		if s.Dropped > 0 {
			fmt.Fprintf(w, "  trace dropped: %d (stats above undercount)\n", s.Dropped)
		}
	}
}
