package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"symbiosys/internal/core"
)

// TraceSet is the merged view over all per-process trace dumps.
type TraceSet struct {
	Events  []core.Event
	Dropped uint64
	// DroppedBy attributes dropped events to the process that dropped
	// them, so truncated traces are flagged per entity.
	DroppedBy map[string]uint64
}

// MergeTraces combines trace dumps from every process.
func MergeTraces(dumps []*core.TraceDump) *TraceSet {
	ts := &TraceSet{DroppedBy: make(map[string]uint64)}
	for _, d := range dumps {
		ts.Events = append(ts.Events, d.Events...)
		ts.Dropped += d.Dropped
		if d.Dropped > 0 {
			ts.DroppedBy[d.Entity] += d.Dropped
		}
	}
	return ts
}

// CollectSink is a core.TraceSink accumulating a live event stream into
// a TraceSet — the consumer side of the measurement pipeline's sink
// interface. Attach it to an instance (margo Options.TraceSinks) to
// build the analysis view on-line instead of from end-of-run dumps;
// exporters like Zipkin then read the TraceSet they consumed rather
// than reaching into the collector's buffers.
type CollectSink struct {
	mu sync.Mutex
	ts TraceSet
}

// WriteEvent implements core.TraceSink.
func (s *CollectSink) WriteEvent(ev core.Event) error {
	s.mu.Lock()
	s.ts.Events = append(s.ts.Events, ev)
	s.mu.Unlock()
	return nil
}

// Flush implements core.TraceSink.
func (s *CollectSink) Flush() error { return nil }

// TraceSet returns a snapshot of everything consumed so far.
func (s *CollectSink) TraceSet() *TraceSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &TraceSet{Events: make([]core.Event, len(s.ts.Events))}
	copy(out.Events, s.ts.Events)
	return out
}

// Requests groups events by request ID, each group sorted by Lamport
// order (the clock-skew-tolerant ordering of the paper §IV-A2).
func (ts *TraceSet) Requests() map[uint64][]core.Event {
	out := make(map[uint64][]core.Event)
	for _, e := range ts.Events {
		out[e.RequestID] = append(out[e.RequestID], e)
	}
	for id := range out {
		evs := out[id]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Order < evs[j].Order })
		out[id] = evs
	}
	return out
}

// RequestIDs returns all request IDs, sorted.
func (ts *TraceSet) RequestIDs() []uint64 {
	seen := make(map[uint64]bool)
	var ids []uint64
	for _, e := range ts.Events {
		if !seen[e.RequestID] {
			seen[e.RequestID] = true
			ids = append(ids, e.RequestID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Span is one reconstructed call interval within a distributed request.
type Span struct {
	RequestID  uint64
	Breadcrumb core.Breadcrumb
	RPCName    string
	Entity     string
	Kind       string // "CLIENT" (origin view) or "SERVER" (target view)
	StartNanos int64
	DurNanos   int64
	StartOrder uint64
	// Failed marks a span closed by an error terminal event (canceled
	// or failed origin attempt, error response / handler panic on the
	// target) — closed, but not a successful execution.
	Failed bool
	// QueueNanos is the handler-pool wait (t4→t5) carried on SERVER
	// spans; WindowNanos the coalescer window wait carried on batched
	// CLIENT spans. BatchID groups members of one vectored forward.
	QueueNanos  int64
	WindowNanos int64
	BatchID     uint64
	Sys         core.SysSample
	PVars       *core.PVarSample
}

// Spans reconstructs the call intervals of one request. Prefer
// SpansOf with pre-grouped events when iterating many requests.
func (ts *TraceSet) Spans(requestID uint64) []Span {
	var evs []core.Event
	for _, e := range ts.Events {
		if e.RequestID == requestID {
			evs = append(evs, e)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Order < evs[j].Order })
	return SpansOf(requestID, evs)
}

// SpansOf reconstructs the call intervals of one request from its
// Lamport-ordered events by pairing start and end events per (entity,
// breadcrumb, side): each end event closes the oldest unmatched start
// (calls from one ULT are sequential, so FIFO pairing is exact there
// and a close approximation for concurrent same-callpath calls).
func SpansOf(requestID uint64, evs []core.Event) []Span {
	type pairKey struct {
		entity string
		bc     core.Breadcrumb
		client bool
	}
	open := make(map[pairKey][]core.Event)
	var spans []Span
	for _, e := range evs {
		switch e.Kind {
		case core.EvOriginStart, core.EvTargetStart:
			k := pairKey{e.Entity, core.Breadcrumb(e.Breadcrumb), e.Kind == core.EvOriginStart}
			open[k] = append(open[k], e)
		case core.EvOriginEnd, core.EvTargetEnd:
			k := pairKey{e.Entity, core.Breadcrumb(e.Breadcrumb), e.Kind == core.EvOriginEnd}
			q := open[k]
			if len(q) == 0 {
				continue // unmatched end (dropped start)
			}
			start := q[0]
			open[k] = q[1:]
			kind := "SERVER"
			if e.Kind == core.EvOriginEnd {
				kind = "CLIENT"
			}
			dur := e.Duration
			if dur == 0 {
				dur = e.Timestamp - start.Timestamp
			}
			spans = append(spans, Span{
				RequestID:  requestID,
				Breadcrumb: core.Breadcrumb(e.Breadcrumb),
				RPCName:    e.RPCName,
				Entity:     e.Entity,
				Kind:       kind,
				StartNanos: start.Timestamp,
				DurNanos:   dur,
				StartOrder: start.Order,
				Failed:     e.Failed,
				// Queue wait rides the start (t5) event, window wait
				// and batch identity the end (t14) event.
				QueueNanos:  start.QueueNanos,
				WindowNanos: e.WindowNanos,
				BatchID:     e.BatchID,
				Sys:         e.Sys,
				PVars:       e.PVars,
			})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartOrder < spans[j].StartOrder })
	return spans
}

// ZipkinSpan is the Zipkin v2 JSON span format the paper's adapter
// module emits for visualization (§V-A3).
type ZipkinSpan struct {
	TraceID       string            `json:"traceId"`
	ID            string            `json:"id"`
	ParentID      string            `json:"parentId,omitempty"`
	Name          string            `json:"name"`
	Kind          string            `json:"kind,omitempty"`
	Timestamp     int64             `json:"timestamp"` // microseconds
	Duration      int64             `json:"duration"`  // microseconds
	LocalEndpoint map[string]string `json:"localEndpoint"`
	Tags          map[string]string `json:"tags,omitempty"`
}

// Zipkin converts one request's spans to Zipkin v2 JSON objects. Client
// spans parent the server spans of the same hop; nested hops parent on
// the client span of their caller, so the service structure renders as
// the Figure 5 Gantt chart.
func (ts *TraceSet) Zipkin(requestID uint64) []ZipkinSpan {
	spans := ts.Spans(requestID)
	traceID := fmt.Sprintf("%016x", requestID)

	// Assign IDs and remember the client span per breadcrumb (for
	// parenting); with repeated same-breadcrumb calls the k-th server
	// span pairs with the k-th client span.
	ids := make([]string, len(spans))
	clientSeen := make(map[core.Breadcrumb][]int)
	for i, s := range spans {
		ids[i] = fmt.Sprintf("%016x", spanIDHash(requestID, uint64(s.Breadcrumb), uint64(i)))
		if s.Kind == "CLIENT" {
			clientSeen[s.Breadcrumb] = append(clientSeen[s.Breadcrumb], i)
		}
	}
	parentOf := func(i int) string {
		s := spans[i]
		if s.Kind == "SERVER" {
			// Parent on the matching client span of the same hop.
			if idxs := clientSeen[s.Breadcrumb]; len(idxs) > 0 {
				best := idxs[0]
				for _, j := range idxs {
					if spans[j].StartOrder <= s.StartOrder {
						best = j
					}
				}
				return ids[best]
			}
			return ""
		}
		// Client span: parent on its caller's client span (the parent
		// breadcrumb), picking the most recent one issued before it.
		parentBC := s.Breadcrumb.Parent()
		if parentBC == 0 {
			return ""
		}
		if idxs := clientSeen[parentBC]; len(idxs) > 0 {
			best := -1
			for _, j := range idxs {
				if spans[j].StartOrder <= s.StartOrder {
					best = j
				}
			}
			if best >= 0 {
				return ids[best]
			}
		}
		return ""
	}

	out := make([]ZipkinSpan, 0, len(spans))
	for i, s := range spans {
		z := ZipkinSpan{
			TraceID:       traceID,
			ID:            ids[i],
			ParentID:      parentOf(i),
			Name:          s.RPCName,
			Kind:          s.Kind,
			Timestamp:     s.StartNanos / 1000,
			Duration:      s.DurNanos / 1000,
			LocalEndpoint: map[string]string{"serviceName": s.Entity},
			Tags: map[string]string{
				"breadcrumb":   s.Breadcrumb.String(),
				"pool_blocked": fmt.Sprint(s.Sys.PoolBlocked),
			},
		}
		if s.PVars != nil {
			z.Tags["ofi_events_read"] = fmt.Sprint(s.PVars.OFIEventsRead)
		}
		out = append(out, z)
	}
	return out
}

// WriteZipkin writes one request's trace as a Zipkin v2 JSON array.
func (ts *TraceSet) WriteZipkin(w io.Writer, requestID uint64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts.Zipkin(requestID))
}

func spanIDHash(a, b, c uint64) uint64 {
	v := a*0x9e3779b97f4a7c15 ^ b*0xff51afd7ed558ccd ^ c*0xc4ceb9fe1a85ec53
	v ^= v >> 31
	if v == 0 {
		v = 1
	}
	return v
}

// BlockedSample is one point of the Figure 10 scatter: when a request
// began executing on a target and how many ULTs were blocked there.
type BlockedSample struct {
	TimestampNanos int64
	Blocked        int64
	Runnable       int64
	Entity         string
}

// BlockedULTSeries extracts the Figure 10 scatter for one RPC name from
// target-start events (the t5 sample of the Argobots pool).
func (ts *TraceSet) BlockedULTSeries(rpcName string) []BlockedSample {
	var out []BlockedSample
	for _, e := range ts.Events {
		if e.Kind == core.EvTargetStart && (rpcName == "" || e.RPCName == rpcName) {
			out = append(out, BlockedSample{
				TimestampNanos: e.Timestamp,
				Blocked:        e.Sys.PoolBlocked,
				Runnable:       e.Sys.PoolRunnable,
				Entity:         e.Entity,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimestampNanos < out[j].TimestampNanos })
	return out
}

// OFISample is one point of the Figure 12 series: the number of OFI
// completion events read by the progress loop, sampled at t14.
type OFISample struct {
	TimestampNanos int64
	EventsRead     uint64
	Entity         string
}

// OFIEventsReadSeries extracts the Figure 12 series from origin-end
// events (entity == "" selects all origins).
func (ts *TraceSet) OFIEventsReadSeries(entity string) []OFISample {
	var out []OFISample
	for _, e := range ts.Events {
		if e.Kind != core.EvOriginEnd || e.PVars == nil {
			continue
		}
		if entity != "" && e.Entity != entity {
			continue
		}
		out = append(out, OFISample{
			TimestampNanos: e.Timestamp,
			EventsRead:     e.PVars.OFIEventsRead,
			Entity:         e.Entity,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimestampNanos < out[j].TimestampNanos })
	return out
}
