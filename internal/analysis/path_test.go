package analysis

import (
	"strings"
	"testing"
	"time"

	"symbiosys/internal/core"
)

// pathTraceBase is a fixed epoch so path tests are deterministic.
const pathTraceBase = int64(1_000_000_000)

// evseq builds Lamport orders implicitly: each event's Order is its
// position in the slice (the fabricated traces are sequential).
func evseq(evs []core.Event) []core.Event {
	for i := range evs {
		evs[i].Order = uint64(i + 1)
	}
	return evs
}

// twoHopEvents fabricates one clean two-hop request
// (cli -a_rpc-> mid -b_rpc-> leaf) with queue waits on both targets.
func twoHopEvents(reqID uint64, base int64) []core.Event {
	bcMid := core.Breadcrumb(0).Push("a_rpc")
	bcLeaf := bcMid.Push("b_rpc")
	return evseq([]core.Event{
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bcMid)},
		// net_out 60, queue 40 → t5 at +100.
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 100,
			Entity: "mid", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), QueueNanos: 40},
		// exec 100 before issuing the nested hop.
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base + 200,
			Entity: "mid", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf)},
		// net_out 70, queue 30 → leaf t5 at +300.
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 300,
			Entity: "leaf", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), QueueNanos: 30},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 400,
			Entity: "leaf", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), Duration: 100},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 500,
			Entity: "mid", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), Duration: 300},
		// exec 100 after the nested hop returns.
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 600,
			Entity: "mid", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), Duration: 500},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 700,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), Duration: 700},
	})
}

func kindsOf(p *CriticalPath) []SegKind {
	out := make([]SegKind, len(p.Segments))
	for i, s := range p.Segments {
		out[i] = s.Kind
	}
	return out
}

func eqKinds(got, want []SegKind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestExtractPathTwoHop(t *testing.T) {
	const reqID = 0x42
	p := ExtractPath(reqID, twoHopEvents(reqID, pathTraceBase))
	if p == nil {
		t.Fatal("no path")
	}
	want := []SegKind{
		SegNetOut, SegQueue, // cli -> mid
		SegExec,             // mid pre-forward
		SegNetOut, SegQueue, // mid -> leaf
		SegExec,    // leaf handler
		SegNetBack, // leaf -> mid
		SegExec,    // mid post-forward
		SegNetBack, // mid -> cli
	}
	if !eqKinds(kindsOf(p), want) {
		t.Fatalf("segment kinds = %v, want %v\npath: %+v", kindsOf(p), want, p.Segments)
	}
	if p.TotalNanos != 700 {
		t.Fatalf("total = %d", p.TotalNanos)
	}
	// The decomposition must cover the whole request: segments sum to
	// the root span duration.
	var sum int64
	for _, s := range p.Segments {
		sum += s.DurNanos
	}
	if sum != 700 {
		t.Fatalf("segment sum = %d, want 700 (%+v)", sum, p.Segments)
	}
	// Spot-check attribution: root net_out excludes the queue wait.
	if p.Segments[0].DurNanos != 60 || p.Segments[1].DurNanos != 40 {
		t.Fatalf("root net_out/queue = %d/%d, want 60/40",
			p.Segments[0].DurNanos, p.Segments[1].DurNanos)
	}
	if p.Attempts != 1 || p.Failed || p.Incomplete || p.Batched {
		t.Fatalf("flags = %+v", p)
	}
	// Depths: root segments at 1, nested hop at 2.
	if p.Segments[0].Depth != 1 || p.Segments[3].Depth != 2 || p.Segments[5].Depth != 2 {
		t.Fatalf("depths wrong: %+v", p.Segments)
	}
}

// retriedEvents fabricates a request whose first attempt is dropped in
// flight (no target view, Failed terminal) and whose retry succeeds
// after a backoff gap — the margo retry loop's trace signature.
func retriedEvents(reqID uint64, base int64) []core.Event {
	bc := core.Breadcrumb(0).Push("a_rpc")
	return evseq([]core.Event{
		// Attempt 1: t1 at base, failed t14 at +200 (timeout), no
		// server events (request dropped by the fabric).
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 200,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 200, Failed: true},
		// Backoff gap 100, then attempt 2 succeeds.
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base + 300,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 400,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc), QueueNanos: 20},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 500,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 100},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 600,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 300},
	})
}

func TestExtractPathRetried(t *testing.T) {
	const reqID = 0x77
	p := ExtractPath(reqID, retriedEvents(reqID, pathTraceBase))
	if p == nil {
		t.Fatal("no path")
	}
	want := []SegKind{
		SegUnmatched,                             // failed attempt 1 (dropped in flight)
		SegBackoff,                               // retry wait
		SegNetOut, SegQueue, SegExec, SegNetBack, // attempt 2
	}
	if !eqKinds(kindsOf(p), want) {
		t.Fatalf("segment kinds = %v, want %v", kindsOf(p), want)
	}
	if p.Attempts != 2 {
		t.Fatalf("attempts = %d", p.Attempts)
	}
	if p.Failed {
		t.Fatal("terminal attempt succeeded; path must not be Failed")
	}
	// A failed attempt without a target view is expected, not an
	// incomplete span set.
	if p.Incomplete {
		t.Fatal("retried path wrongly marked incomplete")
	}
	if p.Segments[0].DurNanos != 200 || !p.Segments[0].Failed {
		t.Fatalf("unmatched segment = %+v", p.Segments[0])
	}
	if p.Segments[1].DurNanos != 100 {
		t.Fatalf("backoff = %d, want 100", p.Segments[1].DurNanos)
	}
	if p.TotalNanos != 600 {
		t.Fatalf("total = %d", p.TotalNanos)
	}
}

// retriedWithStolenServerEvents reproduces the dropped-response retry:
// the first attempt's request DID execute on the server (its response
// was lost), so two server spans exist; each attempt must pair with its
// own execution, not steal the other's.
func retriedWithStolenServerEvents(reqID uint64, base int64) []core.Event {
	bc := core.Breadcrumb(0).Push("a_rpc")
	return evseq([]core.Event{
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 50,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 150,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 100},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 200,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 200, Failed: true},
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base + 300,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 350,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 450,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 100},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 500,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 200},
	})
}

func TestExtractPathRetriedDroppedResponse(t *testing.T) {
	const reqID = 0x78
	p := ExtractPath(reqID, retriedWithStolenServerEvents(reqID, pathTraceBase))
	if p == nil {
		t.Fatal("no path")
	}
	want := []SegKind{
		SegNetOut, SegExec, SegNetBack, // attempt 1: executed, response lost
		SegBackoff,
		SegNetOut, SegExec, SegNetBack, // attempt 2
	}
	if !eqKinds(kindsOf(p), want) {
		t.Fatalf("segment kinds = %v, want %v", kindsOf(p), want)
	}
	// Attempt 1's exec must be the FIRST server execution (starting at
	// +50), not the retry's.
	if p.Segments[1].StartNanos != pathTraceBase+50 {
		t.Fatalf("attempt 1 exec starts at %d, want base+50", p.Segments[1].StartNanos)
	}
	if p.Segments[5].StartNanos != pathTraceBase+350 {
		t.Fatalf("attempt 2 exec starts at %d, want base+350", p.Segments[5].StartNanos)
	}
}

// batchedEvents fabricates two ops of one coalesced flush sharing a
// request ID: both origin-ends carry the BatchID and the window wait.
func batchedEvents(reqID uint64, base int64) []core.Event {
	bc := core.Breadcrumb(0).Push("a_rpc")
	return evseq([]core.Event{
		// Both ops enter the window; op 1 waits 80ns for the flush.
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: reqID, Kind: core.EvOriginStart, Timestamp: base + 30,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 120,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc), QueueNanos: 10},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 220,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 100},
		{RequestID: reqID, Kind: core.EvTargetStart, Timestamp: base + 230,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc), QueueNanos: 5},
		{RequestID: reqID, Kind: core.EvTargetEnd, Timestamp: base + 300,
			Entity: "srv", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 70},
		// Vectored completions: both ops end when the frame returns.
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 350,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 350,
			BatchID: 9, WindowNanos: 80},
		{RequestID: reqID, Kind: core.EvOriginEnd, Timestamp: base + 360,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 330,
			BatchID: 9, WindowNanos: 50},
	})
}

func TestExtractPathBatched(t *testing.T) {
	const reqID = 0x99
	p := ExtractPath(reqID, batchedEvents(reqID, pathTraceBase))
	if p == nil {
		t.Fatal("no path")
	}
	if !p.Batched {
		t.Fatal("path not marked batched")
	}
	// Concurrent same-breadcrumb siblings reduce to the dominant span
	// (latest end bounds completion), so exactly one attempt remains.
	if p.Attempts != 1 {
		t.Fatalf("attempts = %d", p.Attempts)
	}
	if p.Segments[0].Kind != SegBatchWindow {
		t.Fatalf("first segment = %v, want batch_window (%+v)", p.Segments[0].Kind, p.Segments)
	}
	var hasQueue, hasExec bool
	for _, s := range p.Segments {
		hasQueue = hasQueue || s.Kind == SegQueue
		hasExec = hasExec || s.Kind == SegExec
	}
	if !hasQueue || !hasExec {
		t.Fatalf("batched path missing queue/exec decomposition: %v", kindsOf(p))
	}
}

func TestExtractPathsIncompleteCounting(t *testing.T) {
	// One clean request plus one with only origin events (its target's
	// dump was lost): the incomplete one must be counted, not dropped.
	bc := core.Breadcrumb(0).Push("a_rpc")
	orphan := evseq([]core.Event{
		{RequestID: 7, Kind: core.EvOriginStart, Timestamp: pathTraceBase,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc)},
		{RequestID: 7, Kind: core.EvOriginEnd, Timestamp: pathTraceBase + 100,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bc), Duration: 100},
	})
	ts := MergeTraces([]*core.TraceDump{
		{Entity: "a", Events: twoHopEvents(1, pathTraceBase)},
		{Entity: "b", Events: orphan},
	})
	paths, stats := ExtractPaths(ts)
	if stats.Requests != 2 || stats.Extracted != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Incomplete != 1 {
		t.Fatalf("incomplete = %d, want 1", stats.Incomplete)
	}
	if got := ts.IncompleteRequests(); got != 1 {
		t.Fatalf("IncompleteRequests() = %d, want 1", got)
	}
	// The orphan's path degrades to a single unmatched segment.
	var orphanPath *CriticalPath
	for i := range paths {
		if paths[i].RequestID == 7 {
			orphanPath = &paths[i]
		}
	}
	if orphanPath == nil || !orphanPath.Incomplete {
		t.Fatalf("orphan path = %+v", orphanPath)
	}
	if len(orphanPath.Segments) != 1 || orphanPath.Segments[0].Kind != SegUnmatched {
		t.Fatalf("orphan segments = %+v", orphanPath.Segments)
	}
}

func TestFoldPathsShapesAndPercentiles(t *testing.T) {
	var dumps []*core.TraceDump
	for i := 0; i < 8; i++ {
		dumps = append(dumps, &core.TraceDump{
			Entity: "d", Events: twoHopEvents(uint64(i+1), pathTraceBase+int64(i)*10_000),
		})
	}
	f := BuildFlame(MergeTraces(dumps))
	if len(f.Paths) != 1 {
		t.Fatalf("shapes = %d, want 1 (%v)", len(f.Paths), f.Paths)
	}
	fp := &f.Paths[0]
	if fp.Count != 8 {
		t.Fatalf("count = %d", fp.Count)
	}
	if len(fp.Segments) != 9 {
		t.Fatalf("segments = %d", len(fp.Segments))
	}
	// Identical requests: whole-path p50 and p99 estimate ~700ns (the
	// two-per-octave histogram is coarse; accept its bucket).
	p50, p99 := fp.Total.Percentile(50), fp.Total.Percentile(99)
	if p50 < 512 || p50 > 1024 || p99 < 512 || p99 > 1024 {
		t.Fatalf("p50/p99 = %v/%v, want within the 700ns bucket", p50, p99)
	}
	if fp.Shape == "" || !strings.Contains(fp.Shape, "a_rpc") {
		t.Fatalf("shape = %q", fp.Shape)
	}
	// The dominant segment of the fold must be one of the exec
	// segments (100ns each, the largest single positions are net/exec
	// ties — just assert it's valid).
	if d := fp.DominantSegment(); d < 0 || d >= len(fp.Segments) {
		t.Fatalf("dominant = %d", d)
	}
}

func TestDiffFlamesLocalizesRegression(t *testing.T) {
	mkRun := func(queueInflate int64, n int) *Flame {
		var dumps []*core.TraceDump
		for i := 0; i < n; i++ {
			evs := twoHopEvents(uint64(i+1), pathTraceBase+int64(i)*10_000)
			if queueInflate > 0 {
				// Inflate the mid-tier queue wait: the mid t5 and
				// everything after it shift later, exactly like a
				// saturated handler pool; only the root client span
				// (whose t1 stays put) covers the extra wait.
				for j := 1; j < len(evs); j++ {
					evs[j].Timestamp += queueInflate
				}
				for j := range evs {
					if evs[j].Kind == core.EvTargetStart && evs[j].Entity == "mid" {
						evs[j].QueueNanos += queueInflate
					}
					if evs[j].Kind == core.EvOriginEnd && evs[j].Entity == "cli" {
						evs[j].Duration += queueInflate
					}
				}
			}
			dumps = append(dumps, &core.TraceDump{Entity: "d", Events: evs})
		}
		return BuildFlame(MergeTraces(dumps))
	}
	before := mkRun(0, 8)
	after := mkRun(400, 8)
	d := DiffFlames(before, after)
	if len(d.Paths) != 1 {
		t.Fatalf("aligned shapes = %d (%v)", len(d.Paths), d.Paths)
	}
	pd := &d.Paths[0]
	if pd.New || pd.Gone {
		t.Fatalf("shape should align: %+v", pd)
	}
	if pd.DeltaNanos < 350 || pd.DeltaNanos > 450 {
		t.Fatalf("whole-path delta = %d, want ~400", pd.DeltaNanos)
	}
	dom := pd.DominantDelta()
	if dom < 0 {
		t.Fatal("no dominant delta")
	}
	seg := pd.Segments[dom]
	if seg.Kind != SegQueue {
		t.Fatalf("dominant delta segment = %v %s (Δ%d), want queue", seg.Kind, seg.RPC, seg.DeltaNanos)
	}
	if !seg.Significant {
		t.Fatalf("queue regression not flagged significant: %+v", seg)
	}
}

func TestDiffFlamesStructuralShapes(t *testing.T) {
	// A retry chain only exists in the "after" run: its shape must
	// surface as NEW, ranked before same-shape drift.
	cleanA := MergeTraces([]*core.TraceDump{{Entity: "d", Events: twoHopEvents(1, pathTraceBase)}})
	faulted := MergeTraces([]*core.TraceDump{
		{Entity: "d", Events: twoHopEvents(1, pathTraceBase)},
		{Entity: "d", Events: retriedEvents(2, pathTraceBase)},
	})
	d := DiffFlames(BuildFlame(cleanA), BuildFlame(faulted))
	if len(d.Paths) != 2 {
		t.Fatalf("shapes = %d", len(d.Paths))
	}
	if !d.Paths[0].New {
		t.Fatalf("structural shape not ranked first: %+v", d.Paths[0])
	}
	if !strings.Contains(d.Paths[0].Shape, "backoff") {
		t.Fatalf("new shape = %q, want a retry (backoff) shape", d.Paths[0].Shape)
	}
}

func TestPathFromSpansEmpty(t *testing.T) {
	if p := PathFromSpans(1, nil); p != nil {
		t.Fatalf("expected nil path, got %+v", p)
	}
}

var benchSinkPaths []CriticalPath

// BenchmarkExtractPaths is mirrored by the perfgate critical-path
// scenario; keep the workload shapes in sync.
func BenchmarkExtractPaths(b *testing.B) {
	var dumps []*core.TraceDump
	for i := 0; i < 64; i++ {
		dumps = append(dumps, &core.TraceDump{
			Entity: "d", Events: twoHopEvents(uint64(i+1), pathTraceBase+int64(i)*10_000),
		})
	}
	ts := MergeTraces(dumps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths, _ := ExtractPaths(ts)
		benchSinkPaths = paths
	}
}

func TestSegKindStrings(t *testing.T) {
	for k := SegKind(0); k < NumSegKinds; k++ {
		if k.String() == "?" {
			t.Fatalf("SegKind %d has no name", k)
		}
	}
	if time.Duration(0) != 0 { // keep the time import honest
		t.Fatal("unreachable")
	}
}
