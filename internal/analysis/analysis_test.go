package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"symbiosys/internal/core"
)

// mkDump builds a profile dump with one origin and one target entry.
func mkDump(entity string, bc core.Breadcrumb, peer string, count uint64, cum time.Duration) *core.ProfileDump {
	var comps [core.NumComponents]uint64
	comps[core.CompOriginExec] = uint64(cum)
	comps[core.CompHandler] = uint64(cum) / 10
	comps[core.CompTargetExec] = uint64(cum) / 2
	stats := core.CallStats{
		Count: count, CumNanos: uint64(cum),
		MinNanos: uint64(cum) / count, MaxNanos: uint64(cum) / count,
		Components: comps,
	}
	return &core.ProfileDump{
		Entity: entity,
		Names: map[uint16]string{
			core.Hash16("a_rpc"): "a_rpc",
			core.Hash16("b_rpc"): "b_rpc",
		},
		Origin: []core.DumpEntry{{BC: uint64(bc), Peer: peer, Stats: stats}},
		Target: []core.DumpEntry{{BC: uint64(bc), Peer: peer, Stats: stats}},
	}
}

func TestMergeAndDominantOrdering(t *testing.T) {
	bcA := core.Breadcrumb(0).Push("a_rpc")
	bcB := core.Breadcrumb(0).Push("b_rpc")
	dumps := []*core.ProfileDump{
		mkDump("p0", bcA, "srv", 10, 100*time.Millisecond),
		mkDump("p1", bcA, "srv", 10, 200*time.Millisecond),
		mkDump("p2", bcB, "srv", 50, 50*time.Millisecond),
	}
	m := Merge(dumps)
	rows := m.DominantCallpaths(0)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "a_rpc" || rows[0].CumNanos != uint64(300*time.Millisecond) {
		t.Fatalf("top row = %+v", rows[0])
	}
	if rows[0].Count != 20 {
		t.Fatalf("count = %d", rows[0].Count)
	}
	if rows[0].OriginDist["p0"] != 10 || rows[0].OriginDist["p1"] != 10 {
		t.Fatalf("origin dist = %v", rows[0].OriginDist)
	}
	// topN limiting.
	if got := m.DominantCallpaths(1); len(got) != 1 || got[0].Name != "a_rpc" {
		t.Fatalf("top1 = %+v", got)
	}
}

func TestRenderSummaryMentionsCallpaths(t *testing.T) {
	bc := core.Breadcrumb(0).Push("a_rpc").Push("b_rpc")
	m := Merge([]*core.ProfileDump{mkDump("p0", bc, "srv", 5, 10*time.Millisecond)})
	var buf bytes.Buffer
	m.RenderSummary(&buf, 5)
	out := buf.String()
	if !strings.Contains(out, "a_rpc => b_rpc") {
		t.Fatalf("summary missing callpath name:\n%s", out)
	}
	if !strings.Contains(out, "origins: p0:5") {
		t.Fatalf("summary missing origin distribution:\n%s", out)
	}
}

func TestCumulativeTargetExecution(t *testing.T) {
	bc := core.Breadcrumb(0).Push("a_rpc")
	m := Merge([]*core.ProfileDump{mkDump("p0", bc, "c0", 4, 40*time.Millisecond)})
	total, comps := m.CumulativeTargetExecution(bc)
	if comps[core.CompHandler] != uint64(4*time.Millisecond) {
		t.Fatalf("handler comp = %d", comps[core.CompHandler])
	}
	if total == 0 {
		t.Fatal("total zero")
	}
}

// buildTrace fabricates a two-hop request trace: client -> mid -> leaf.
func buildTrace() (*TraceSet, uint64) {
	const reqID = 0x100000001
	bcMid := core.Breadcrumb(0).Push("a_rpc")
	bcLeaf := bcMid.Push("b_rpc")
	base := time.Now().UnixNano()
	evs := []core.Event{
		{RequestID: reqID, Order: 1, Kind: core.EvOriginStart, Timestamp: base,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bcMid)},
		{RequestID: reqID, Order: 2, Kind: core.EvTargetStart, Timestamp: base + 100,
			Entity: "mid", RPCName: "a_rpc", Breadcrumb: uint64(bcMid),
			Sys: core.SysSample{PoolBlocked: 3}},
		{RequestID: reqID, Order: 3, Kind: core.EvOriginStart, Timestamp: base + 200,
			Entity: "mid", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf)},
		{RequestID: reqID, Order: 4, Kind: core.EvTargetStart, Timestamp: base + 300,
			Entity: "leaf", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf),
			Sys: core.SysSample{PoolBlocked: 7}},
		{RequestID: reqID, Order: 5, Kind: core.EvTargetEnd, Timestamp: base + 400,
			Entity: "leaf", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), Duration: 100},
		{RequestID: reqID, Order: 6, Kind: core.EvOriginEnd, Timestamp: base + 500,
			Entity: "mid", RPCName: "b_rpc", Breadcrumb: uint64(bcLeaf), Duration: 300,
			PVars: &core.PVarSample{OFIEventsRead: 16}},
		{RequestID: reqID, Order: 7, Kind: core.EvTargetEnd, Timestamp: base + 600,
			Entity: "mid", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), Duration: 500},
		{RequestID: reqID, Order: 8, Kind: core.EvOriginEnd, Timestamp: base + 700,
			Entity: "cli", RPCName: "a_rpc", Breadcrumb: uint64(bcMid), Duration: 700,
			PVars: &core.PVarSample{OFIEventsRead: 4}},
	}
	return MergeTraces([]*core.TraceDump{{Entity: "all", Events: evs}}), reqID
}

func TestSpansPairing(t *testing.T) {
	ts, reqID := buildTrace()
	spans := ts.Spans(reqID)
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	// Order: client a_rpc, server a_rpc, client b_rpc, server b_rpc by
	// start order.
	if spans[0].Kind != "CLIENT" || spans[0].RPCName != "a_rpc" {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if spans[1].Kind != "SERVER" || spans[1].Entity != "mid" {
		t.Fatalf("span1 = %+v", spans[1])
	}
	if spans[3].Kind != "SERVER" || spans[3].Entity != "leaf" || spans[3].DurNanos != 100 {
		t.Fatalf("span3 = %+v", spans[3])
	}
}

func TestZipkinStructure(t *testing.T) {
	ts, reqID := buildTrace()
	zs := ts.Zipkin(reqID)
	if len(zs) != 4 {
		t.Fatalf("zipkin spans = %d", len(zs))
	}
	byName := map[string][]ZipkinSpan{}
	for _, z := range zs {
		byName[z.Name+"/"+z.Kind] = append(byName[z.Name+"/"+z.Kind], z)
	}
	rootClient := byName["a_rpc/CLIENT"][0]
	if rootClient.ParentID != "" {
		t.Fatalf("root span has parent %q", rootClient.ParentID)
	}
	serverA := byName["a_rpc/SERVER"][0]
	if serverA.ParentID != rootClient.ID {
		t.Fatal("server a_rpc not parented on client a_rpc")
	}
	clientB := byName["b_rpc/CLIENT"][0]
	if clientB.ParentID != rootClient.ID {
		t.Fatal("nested client b_rpc not parented on client a_rpc")
	}
	serverB := byName["b_rpc/SERVER"][0]
	if serverB.ParentID != clientB.ID {
		t.Fatal("server b_rpc not parented on client b_rpc")
	}
	// All spans share the trace ID; JSON export is valid.
	var buf bytes.Buffer
	if err := ts.WriteZipkin(&buf, reqID); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid zipkin JSON: %v", err)
	}
	if len(decoded) != 4 {
		t.Fatalf("decoded %d spans", len(decoded))
	}
}

func TestBlockedULTSeries(t *testing.T) {
	ts, _ := buildTrace()
	all := ts.BlockedULTSeries("")
	if len(all) != 2 {
		t.Fatalf("series = %d", len(all))
	}
	only := ts.BlockedULTSeries("b_rpc")
	if len(only) != 1 || only[0].Blocked != 7 || only[0].Entity != "leaf" {
		t.Fatalf("filtered series = %+v", only)
	}
	// Sorted by timestamp.
	if all[0].TimestampNanos > all[1].TimestampNanos {
		t.Fatal("series unsorted")
	}
}

func TestOFIEventsReadSeries(t *testing.T) {
	ts, _ := buildTrace()
	all := ts.OFIEventsReadSeries("")
	if len(all) != 2 {
		t.Fatalf("series = %d", len(all))
	}
	mid := ts.OFIEventsReadSeries("mid")
	if len(mid) != 1 || mid[0].EventsRead != 16 {
		t.Fatalf("mid series = %+v", mid)
	}
}

func TestRequestsSortedByLamport(t *testing.T) {
	ts, reqID := buildTrace()
	reqs := ts.Requests()
	evs := reqs[reqID]
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Order > evs[i].Order {
			t.Fatal("events not lamport-sorted")
		}
	}
	ids := ts.RequestIDs()
	if len(ids) != 1 || ids[0] != reqID {
		t.Fatalf("ids = %v", ids)
	}
}

func TestUnaccountedComputation(t *testing.T) {
	bc := core.Breadcrumb(0).Push("a_rpc")
	var comps [core.NumComponents]uint64
	comps[core.CompOriginExec] = uint64(100 * time.Millisecond)
	comps[core.CompInputSer] = uint64(time.Millisecond)
	comps[core.CompOriginCB] = uint64(2 * time.Millisecond)
	originStats := core.CallStats{Count: 10, CumNanos: comps[core.CompOriginExec], Components: comps}

	var tcomps [core.NumComponents]uint64
	tcomps[core.CompHandler] = uint64(5 * time.Millisecond)
	tcomps[core.CompTargetExec] = uint64(40 * time.Millisecond)
	tcomps[core.CompTargetCB] = uint64(2 * time.Millisecond)
	targetStats := core.CallStats{Count: 10, CumNanos: tcomps[core.CompTargetExec], Components: tcomps}

	dump := &core.ProfileDump{
		Entity: "cli",
		Names:  map[uint16]string{core.Hash16("a_rpc"): "a_rpc"},
		Origin: []core.DumpEntry{{BC: uint64(bc), Peer: "srv", Stats: originStats}},
		Target: []core.DumpEntry{{BC: uint64(bc), Peer: "cli", Stats: targetStats}},
	}
	m := Merge([]*core.ProfileDump{dump})
	rep := m.Unaccounted(bc, time.Millisecond) // 10 calls x 1ms network
	wantAccounted := uint64(50 * time.Millisecond)
	if rep.Accounted != wantAccounted {
		t.Fatalf("accounted = %v", time.Duration(rep.Accounted))
	}
	wantUnaccounted := uint64(100*time.Millisecond) - wantAccounted - uint64(10*time.Millisecond)
	if rep.Unaccount != wantUnaccounted {
		t.Fatalf("unaccounted = %v, want %v",
			time.Duration(rep.Unaccount), time.Duration(wantUnaccounted))
	}
	if f := rep.UnaccountedFraction(); f < 0.39 || f > 0.41 {
		t.Fatalf("fraction = %f", f)
	}
}

func TestUnaccountedNeverNegative(t *testing.T) {
	bc := core.Breadcrumb(0).Push("a_rpc")
	var comps [core.NumComponents]uint64
	comps[core.CompOriginExec] = uint64(time.Millisecond)
	dump := &core.ProfileDump{
		Entity: "cli",
		Origin: []core.DumpEntry{{BC: uint64(bc), Peer: "srv",
			Stats: core.CallStats{Count: 1, CumNanos: comps[core.CompOriginExec], Components: comps}}},
	}
	m := Merge([]*core.ProfileDump{dump})
	rep := m.Unaccounted(bc, 10*time.Millisecond) // network estimate > total
	if rep.Unaccount != 0 {
		t.Fatalf("unaccounted = %d, want 0", rep.Unaccount)
	}
}

func TestSystemStats(t *testing.T) {
	ts, _ := buildTrace()
	stats := SystemStats(ts, 16)
	if len(stats) != 3 { // cli, mid, leaf
		t.Fatalf("entities = %d", len(stats))
	}
	byEnt := map[string]EntityStats{}
	for _, s := range stats {
		byEnt[s.Entity] = s
	}
	if byEnt["leaf"].MaxBlocked != 7 {
		t.Fatalf("leaf max blocked = %d", byEnt["leaf"].MaxBlocked)
	}
	if byEnt["mid"].OFIAtCap != 1 {
		t.Fatalf("mid at-cap = %d", byEnt["mid"].OFIAtCap)
	}
	var buf bytes.Buffer
	RenderSystemStats(&buf, stats)
	if !strings.Contains(buf.String(), "pool blocked : max 7") {
		t.Fatalf("render missing data:\n%s", buf.String())
	}
}

// TestSystemStatsBatching checks that origin-end events stamped with
// batch IDs surface as the per-entity coalescing view.
func TestSystemStatsBatching(t *testing.T) {
	ts := MergeTraces([]*core.TraceDump{{
		Entity: "cli",
		Events: []core.Event{
			{Entity: "cli", Kind: core.EvOriginEnd, RequestID: 1, BatchID: 10},
			{Entity: "cli", Kind: core.EvOriginEnd, RequestID: 2, BatchID: 10},
			{Entity: "cli", Kind: core.EvOriginEnd, RequestID: 3, BatchID: 11},
			{Entity: "cli", Kind: core.EvOriginEnd, RequestID: 4},                // unbatched
			{Entity: "cli", Kind: core.EvOriginStart, RequestID: 5, BatchID: 12}, // not an end
		},
	}})
	stats := SystemStats(ts, 16)
	if len(stats) != 1 {
		t.Fatalf("entities = %d", len(stats))
	}
	s := stats[0]
	if s.BatchedOps != 3 || s.BatchFlushes != 2 {
		t.Fatalf("batched ops=%d flushes=%d, want 3/2", s.BatchedOps, s.BatchFlushes)
	}
	if r := s.CoalesceRatio(); r != 1.5 {
		t.Fatalf("coalesce ratio = %v", r)
	}
	var buf bytes.Buffer
	RenderSystemStats(&buf, stats)
	if !strings.Contains(buf.String(), "3 ops over 2 flushes") {
		t.Fatalf("render missing batching line:\n%s", buf.String())
	}
}

func TestMergeTracesCountsDropped(t *testing.T) {
	ts := MergeTraces([]*core.TraceDump{
		{Dropped: 3}, {Dropped: 4},
	})
	if ts.Dropped != 7 {
		t.Fatalf("dropped = %d", ts.Dropped)
	}
}

func TestRenderGantt(t *testing.T) {
	ts, reqID := buildTrace()
	spans := ts.Spans(reqID)
	var buf bytes.Buffer
	RenderGantt(&buf, spans, 40)
	out := buf.String()
	for _, want := range []string{"a_rpc", "b_rpc", "4 spans"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	// Empty input doesn't panic.
	RenderGantt(&buf, nil, 40)
}

func TestRequestGaps(t *testing.T) {
	// Root client span 0..1000; server spans cover 100..300 and
	// 500..700 → gaps: 0..100 (start), 300..500, 700..1000.
	spans := []Span{
		{Kind: "CLIENT", RPCName: "root", StartNanos: 0, DurNanos: 1000},
		{Kind: "SERVER", RPCName: "s1", StartNanos: 100, DurNanos: 200},
		{Kind: "SERVER", RPCName: "s2", StartNanos: 500, DurNanos: 200},
	}
	gaps := RequestGaps(spans)
	if len(gaps) != 3 {
		t.Fatalf("gaps = %+v", gaps)
	}
	if gaps[0].After != "(start)" || gaps[0].DurNanos != 100 {
		t.Fatalf("gap0 = %+v", gaps[0])
	}
	if gaps[1].After != "s1" || gaps[1].DurNanos != 200 {
		t.Fatalf("gap1 = %+v", gaps[1])
	}
	if gaps[2].After != "s2" || gaps[2].DurNanos != 300 {
		t.Fatalf("gap2 = %+v", gaps[2])
	}
	if f := UncoveredFraction(spans); f < 0.59 || f > 0.61 {
		t.Fatalf("uncovered = %f, want 0.6", f)
	}
	// Overlapping server spans are merged, empty input is safe.
	if RequestGaps(nil) != nil {
		t.Fatal("nil spans produced gaps")
	}
	overlap := []Span{
		{Kind: "CLIENT", RPCName: "root", StartNanos: 0, DurNanos: 100},
		{Kind: "SERVER", RPCName: "a", StartNanos: 0, DurNanos: 60},
		{Kind: "SERVER", RPCName: "b", StartNanos: 40, DurNanos: 60},
	}
	if gaps := RequestGaps(overlap); len(gaps) != 0 {
		t.Fatalf("overlapping coverage produced gaps: %+v", gaps)
	}
}

func TestCompareProfiles(t *testing.T) {
	bcA := core.Breadcrumb(0).Push("a_rpc")
	bcB := core.Breadcrumb(0).Push("b_rpc")
	before := Merge([]*core.ProfileDump{
		mkDump("p0", bcA, "srv", 10, 100*time.Millisecond), // mean 10ms
		mkDump("p0", bcB, "srv", 10, 10*time.Millisecond),  // gone after
	})
	after := Merge([]*core.ProfileDump{
		mkDump("p0", bcA, "srv", 10, 200*time.Millisecond), // mean 20ms (2x)
		mkDump("p0", core.Breadcrumb(0).Push("a_rpc").Push("b_rpc"), "srv",
			5, 5*time.Millisecond), // new callpath
	})
	deltas := CompareProfiles(before, after)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d: %+v", len(deltas), deltas)
	}
	// Structural changes rank first.
	var sawNew, sawGone bool
	for _, d := range deltas[:2] {
		if d.New {
			sawNew = true
			if d.Name != "a_rpc => b_rpc" {
				t.Errorf("new = %q", d.Name)
			}
		}
		if d.Gone {
			sawGone = true
			if d.Name != "b_rpc" {
				t.Errorf("gone = %q", d.Name)
			}
		}
	}
	if !sawNew || !sawGone {
		t.Fatalf("structural changes not ranked first: %+v", deltas)
	}
	reg := deltas[2]
	if reg.Name != "a_rpc" || reg.MeanRatio < 1.9 || reg.MeanRatio > 2.1 {
		t.Fatalf("regression row = %+v", reg)
	}
	if reg.ComponentDeltas[core.CompOriginExec] <= 0 {
		t.Fatal("component delta missing")
	}

	var buf bytes.Buffer
	RenderDiff(&buf, deltas, 0)
	out := buf.String()
	for _, want := range []string{"[NEW]", "[GONE]", "2.00x", "biggest mover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	// topN limit.
	buf.Reset()
	RenderDiff(&buf, deltas, 1)
	if strings.Count(buf.String(), "\n[") != 1 {
		t.Fatalf("topN diff:\n%s", buf.String())
	}
}
