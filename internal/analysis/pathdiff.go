package analysis

import (
	"sort"
)

// Run diffing over critical paths: align two runs' flames by path
// shape and report per-segment deltas — the per-request generalization
// of CompareProfiles. Where the profile diff says "this callpath got
// slower", the path diff says "it got slower because the queue segment
// of hop 2 grew", localizing a regression to a segment without manual
// trace inspection.

// Significance thresholds (documented in DESIGN.md §10): a segment
// delta is flagged when both sides have at least sigMinCount samples
// and either the mean moved by more than sigRatio in ratio terms or the
// absolute delta exceeds sigShareOfPath of the before run's whole-path
// mean. The count floor suppresses single-sample noise; the share floor
// suppresses large ratios on segments too small to matter.
const (
	sigMinCount    = 5
	sigRatioHigh   = 1.4
	sigRatioLow    = 1.0 / sigRatioHigh
	sigShareOfPath = 0.10
)

// SegmentDelta is one aligned segment position's movement between runs.
type SegmentDelta struct {
	Kind  SegKind
	RPC   string
	Depth int

	MeanBefore, MeanAfter int64 // nanoseconds per request
	// DeltaNanos = MeanAfter - MeanBefore; Ratio = after/before
	// (0 when before is empty).
	DeltaNanos int64
	Ratio      float64
	// Significant marks deltas passing the thresholds above.
	Significant bool
}

// PathDelta is one path shape's movement between runs.
type PathDelta struct {
	Shape string
	// Segments aligns position-by-position; identical shapes guarantee
	// identical segment sequences.
	Segments []SegmentDelta

	CountBefore, CountAfter uint64
	MeanBefore, MeanAfter   int64 // whole-path nanoseconds per request
	DeltaNanos              int64
	Ratio                   float64

	// New / Gone mark shapes present in only one run — e.g. a retry
	// chain (backoff segments) that only exists under fault injection.
	New  bool
	Gone bool
}

// DominantDelta returns the index of the segment contributing the
// largest absolute mean movement (-1 when no aligned segments).
func (d *PathDelta) DominantDelta() int {
	best, bestAbs := -1, int64(-1)
	for i := range d.Segments {
		v := d.Segments[i].DeltaNanos
		if v < 0 {
			v = -v
		}
		if v > bestAbs {
			best, bestAbs = i, v
		}
	}
	return best
}

// FlameDiff is the full two-run comparison.
type FlameDiff struct {
	Before, After PathStats
	Paths         []PathDelta
}

// DiffFlames aligns two runs' dominant-path summaries by shape. Shapes
// present in both runs diff segment-by-segment; shapes unique to one
// run surface as New/Gone (structural changes — new retry chains, a
// vanished batch window). Ordered by |whole-path delta| weighted by
// after-run count, structural changes first.
func DiffFlames(before, after *Flame) *FlameDiff {
	out := &FlameDiff{Before: before.Stats, After: after.Stats}

	byShapeB := make(map[string]*FlamePath, len(before.Paths))
	for i := range before.Paths {
		byShapeB[before.Paths[i].Shape] = &before.Paths[i]
	}
	byShapeA := make(map[string]*FlamePath, len(after.Paths))
	for i := range after.Paths {
		byShapeA[after.Paths[i].Shape] = &after.Paths[i]
	}

	seen := make(map[string]bool)
	add := func(shape string) {
		if seen[shape] {
			return
		}
		seen[shape] = true
		b, hasB := byShapeB[shape]
		a, hasA := byShapeA[shape]
		d := PathDelta{Shape: shape, New: !hasB, Gone: !hasA}
		if hasB {
			d.CountBefore, d.MeanBefore = b.Count, b.MeanNanos()
		}
		if hasA {
			d.CountAfter, d.MeanAfter = a.Count, a.MeanNanos()
		}
		d.DeltaNanos = d.MeanAfter - d.MeanBefore
		if hasB && hasA {
			if d.MeanBefore > 0 {
				d.Ratio = float64(d.MeanAfter) / float64(d.MeanBefore)
			}
			d.Segments = diffSegments(b, a)
		}
		out.Paths = append(out.Paths, d)
	}
	for i := range before.Paths {
		add(before.Paths[i].Shape)
	}
	for i := range after.Paths {
		add(after.Paths[i].Shape)
	}

	sort.SliceStable(out.Paths, func(i, j int) bool {
		pi, pj := &out.Paths[i], &out.Paths[j]
		si, sj := pi.New || pi.Gone, pj.New || pj.Gone
		if si != sj {
			return si
		}
		wi := weightedAbsDelta(pi)
		wj := weightedAbsDelta(pj)
		if wi != wj {
			return wi > wj
		}
		return pi.Shape < pj.Shape
	})
	return out
}

// weightedAbsDelta ranks a shape's movement by |mean delta| × requests
// affected (after-run count, or before-run for Gone shapes) — a small
// per-request regression on a hot shape outranks a large one on a cold
// shape.
func weightedAbsDelta(d *PathDelta) int64 {
	v := d.DeltaNanos
	if v < 0 {
		v = -v
	}
	n := d.CountAfter
	if d.Gone {
		n = d.CountBefore
	}
	if n == 0 {
		n = 1
	}
	return v * int64(n)
}

func diffSegments(b, a *FlamePath) []SegmentDelta {
	n := len(b.Segments)
	if len(a.Segments) < n {
		n = len(a.Segments) // same shape ⇒ same length; guard anyway
	}
	segs := make([]SegmentDelta, n)
	pathMeanB := b.MeanNanos()
	for i := 0; i < n; i++ {
		sb, sa := &b.Segments[i], &a.Segments[i]
		d := SegmentDelta{Kind: sb.Kind, RPC: sb.RPC, Depth: sb.Depth}
		if sb.Stats.Count > 0 {
			d.MeanBefore = int64(sb.Stats.CumNanos / sb.Stats.Count)
		}
		if sa.Stats.Count > 0 {
			d.MeanAfter = int64(sa.Stats.CumNanos / sa.Stats.Count)
		}
		d.DeltaNanos = d.MeanAfter - d.MeanBefore
		if d.MeanBefore > 0 {
			d.Ratio = float64(d.MeanAfter) / float64(d.MeanBefore)
		}
		d.Significant = significant(&d, sb.Stats.Count, sa.Stats.Count, pathMeanB)
		segs[i] = d
	}
	return segs
}

func significant(d *SegmentDelta, countB, countA uint64, pathMeanB int64) bool {
	if countB < sigMinCount || countA < sigMinCount {
		return false
	}
	moved := d.MeanBefore > 0 && (d.Ratio > sigRatioHigh || d.Ratio < sigRatioLow)
	abs := d.DeltaNanos
	if abs < 0 {
		abs = -abs
	}
	big := pathMeanB > 0 && float64(abs) > sigShareOfPath*float64(pathMeanB)
	return moved || big
}
