package analysis

import (
	"time"

	"symbiosys/internal/core"
)

// UnaccountedReport decomposes a callpath's cumulative origin execution
// time into the instrumented components plus the nominal network
// transfer, exposing the *unaccounted* residual of the paper's
// Figure 11. In the paper that residual is dominated by completion
// events sitting unread in the OFI queue (the t11→t12 gap), which no
// RPC-API- or RPC-library-level timer covers.
type UnaccountedReport struct {
	BC    core.Breadcrumb
	Name  string
	Count uint64

	// Cumulative nanoseconds.
	OriginExec uint64
	Accounted  uint64
	Network    uint64
	Unaccount  uint64

	Components [core.NumComponents]uint64
}

// UnaccountedFraction returns the residual share of origin execution.
func (r *UnaccountedReport) UnaccountedFraction() float64 {
	if r.OriginExec == 0 {
		return 0
	}
	return float64(r.Unaccount) / float64(r.OriginExec)
}

// Unaccounted computes the report for one callpath. nominalRTT is the
// fabric's request+response transfer estimate charged per call.
func (m *MergedProfile) Unaccounted(bc core.Breadcrumb, nominalRTT time.Duration) UnaccountedReport {
	rep := UnaccountedReport{BC: bc, Name: core.FormatTable(m.Names, bc)}
	for key, s := range m.Origin {
		if key.BC != bc {
			continue
		}
		rep.Count += s.Count
		rep.OriginExec += s.Components[core.CompOriginExec]
		rep.Components[core.CompInputSer] += s.Components[core.CompInputSer]
		rep.Components[core.CompOriginCB] += s.Components[core.CompOriginCB]
	}
	for key, s := range m.Target {
		if key.BC != bc {
			continue
		}
		for _, c := range []core.Component{
			core.CompRDMA, core.CompHandler, core.CompInputDeser,
			core.CompTargetExec, core.CompOutputSer, core.CompTargetCB,
		} {
			rep.Components[c] += s.Components[c]
		}
	}
	// Input deserialization and output serialization happen inside the
	// target ULT execution interval, so they are not added again.
	rep.Accounted = rep.Components[core.CompInputSer] +
		rep.Components[core.CompRDMA] +
		rep.Components[core.CompHandler] +
		rep.Components[core.CompTargetExec] +
		rep.Components[core.CompTargetCB] +
		rep.Components[core.CompOriginCB]
	rep.Network = uint64(nominalRTT) * rep.Count
	if total := rep.Accounted + rep.Network; total < rep.OriginExec {
		rep.Unaccount = rep.OriginExec - total
	}
	return rep
}
