// Package analysis implements the SYMBIOSYS postprocessing tools: the
// profile summary that merges per-process callpath profiles and ranks
// dominant callpaths (paper §V-A2, Figure 6), the trace stitcher that
// reassembles distributed request traces and exports them in Zipkin v2
// JSON (Figure 5), derived time series for saturation diagnosis
// (Figures 10–12), and the system statistics summary (Table V).
package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"symbiosys/internal/core"
)

// MergedProfile is the global view over all per-process profile dumps.
type MergedProfile struct {
	Names map[uint16]string

	// Origin and Target aggregate stats by (callpath, peer); the
	// per-entity distributions are kept for the call-count breakdowns.
	Origin map[core.StatKey]*core.CallStats
	Target map[core.StatKey]*core.CallStats

	// OriginByEntity[bc][entity] counts calls issued per origin entity;
	// TargetByEntity[bc][entity] counts calls serviced per target.
	OriginByEntity map[core.Breadcrumb]map[string]uint64
	TargetByEntity map[core.Breadcrumb]map[string]uint64

	// TraceDropped totals the trace events the contributing processes
	// discarded at their capacity bounds (nonzero means the run's trace
	// view is truncated even though the profile itself is complete).
	TraceDropped uint64
}

// Merge performs the global aggregation of the profile summary script.
func Merge(dumps []*core.ProfileDump) *MergedProfile {
	m := &MergedProfile{
		Names:          make(map[uint16]string),
		Origin:         make(map[core.StatKey]*core.CallStats),
		Target:         make(map[core.StatKey]*core.CallStats),
		OriginByEntity: make(map[core.Breadcrumb]map[string]uint64),
		TargetByEntity: make(map[core.Breadcrumb]map[string]uint64),
	}
	for _, d := range dumps {
		m.TraceDropped += d.TraceDropped
		for h, n := range d.Names {
			m.Names[h] = n
		}
		for _, e := range d.Origin {
			key := core.StatKey{BC: core.Breadcrumb(e.BC), Peer: e.Peer}
			s := m.Origin[key]
			if s == nil {
				s = &core.CallStats{}
				m.Origin[key] = s
			}
			stats := e.Stats
			s.Merge(&stats)
			byEnt := m.OriginByEntity[key.BC]
			if byEnt == nil {
				byEnt = make(map[string]uint64)
				m.OriginByEntity[key.BC] = byEnt
			}
			byEnt[d.Entity] += e.Stats.Count
		}
		for _, e := range d.Target {
			key := core.StatKey{BC: core.Breadcrumb(e.BC), Peer: e.Peer}
			s := m.Target[key]
			if s == nil {
				s = &core.CallStats{}
				m.Target[key] = s
			}
			stats := e.Stats
			s.Merge(&stats)
			byEnt := m.TargetByEntity[key.BC]
			if byEnt == nil {
				byEnt = make(map[string]uint64)
				m.TargetByEntity[key.BC] = byEnt
			}
			byEnt[d.Entity] += e.Stats.Count
		}
	}
	return m
}

// CallpathRow is one ranked callpath in the profile summary.
type CallpathRow struct {
	BC   core.Breadcrumb
	Name string

	// Origin-side aggregate (end-to-end request latency).
	Count    uint64
	CumNanos uint64
	MinNanos uint64
	MaxNanos uint64

	// Component breakdown fused from both sides (indexed by Component).
	Components [core.NumComponents]uint64

	// Hist is the merged call-time distribution (log2 buckets).
	Hist [core.HistBuckets]uint32

	// Call-count distributions across participating entities.
	OriginDist map[string]uint64
	TargetDist map[string]uint64
}

// Mean returns the average end-to-end latency of the callpath.
func (r *CallpathRow) Mean() time.Duration {
	if r.Count == 0 {
		return 0
	}
	return time.Duration(r.CumNanos / r.Count)
}

// Percentile estimates the p-th percentile end-to-end latency from the
// merged call-time distribution.
func (r *CallpathRow) Percentile(p float64) time.Duration {
	s := core.CallStats{
		Count:    r.Count,
		MinNanos: r.MinNanos,
		MaxNanos: r.MaxNanos,
		Hist:     r.Hist,
	}
	return s.Percentile(p)
}

// TargetExecExclusive returns the target execution time excluding the
// PVAR-measured (de)serialization sub-intervals, the "(exclusive)" form
// of Table III.
func (r *CallpathRow) TargetExecExclusive() uint64 {
	excl := r.Components[core.CompTargetExec]
	sub := r.Components[core.CompInputDeser] + r.Components[core.CompOutputSer]
	if sub > excl {
		return 0
	}
	return excl - sub
}

// DominantCallpaths ranks callpaths by cumulative end-to-end request
// latency (the Figure 6 ordering) and returns the top n (n <= 0: all).
func (m *MergedProfile) DominantCallpaths(n int) []CallpathRow {
	byBC := make(map[core.Breadcrumb]*CallpathRow)
	for key, s := range m.Origin {
		row := byBC[key.BC]
		if row == nil {
			row = &CallpathRow{
				BC:         key.BC,
				Name:       core.FormatTable(m.Names, key.BC),
				OriginDist: m.OriginByEntity[key.BC],
				TargetDist: m.TargetByEntity[key.BC],
				MinNanos:   s.MinNanos,
			}
			byBC[key.BC] = row
		}
		row.Count += s.Count
		row.CumNanos += s.CumNanos
		if s.MinNanos < row.MinNanos {
			row.MinNanos = s.MinNanos
		}
		if s.MaxNanos > row.MaxNanos {
			row.MaxNanos = s.MaxNanos
		}
		for i, v := range s.Components {
			row.Components[i] += v
		}
		for i, v := range s.Hist {
			row.Hist[i] += v
		}
	}
	// Fuse target-side components for the same callpaths.
	for key, s := range m.Target {
		row := byBC[key.BC]
		if row == nil {
			// Target-only view (the origin may be unprofiled).
			row = &CallpathRow{
				BC:         key.BC,
				Name:       core.FormatTable(m.Names, key.BC),
				OriginDist: m.OriginByEntity[key.BC],
				TargetDist: m.TargetByEntity[key.BC],
			}
			row.Count = s.Count
			row.CumNanos = s.CumNanos
			byBC[key.BC] = row
		}
		for _, c := range []core.Component{
			core.CompRDMA, core.CompHandler, core.CompInputDeser,
			core.CompTargetExec, core.CompOutputSer, core.CompTargetCB,
		} {
			row.Components[c] += s.Components[c]
		}
	}
	rows := make([]CallpathRow, 0, len(byBC))
	for _, r := range byBC {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CumNanos != rows[j].CumNanos {
			return rows[i].CumNanos > rows[j].CumNanos
		}
		return rows[i].BC < rows[j].BC
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// CumulativeTargetExecution sums the target-side component times for one
// callpath — the stacked bar of the paper's Figure 9.
func (m *MergedProfile) CumulativeTargetExecution(bc core.Breadcrumb) (total time.Duration, comps [core.NumComponents]uint64) {
	for key, s := range m.Target {
		if key.BC != bc {
			continue
		}
		for i, v := range s.Components {
			comps[i] += v
		}
	}
	total = time.Duration(comps[core.CompRDMA] + comps[core.CompHandler] +
		comps[core.CompTargetExec] + comps[core.CompTargetCB])
	return total, comps
}

// RenderSummary writes the Figure 6-style dominant-callpath report.
func (m *MergedProfile) RenderSummary(w io.Writer, topN int) {
	rows := m.DominantCallpaths(topN)
	fmt.Fprintf(w, "SYMBIOSYS profile summary — top %d callpaths by cumulative latency\n", len(rows))
	if m.TraceDropped > 0 {
		fmt.Fprintf(w, "warning: %d trace events dropped at capacity (trace view truncated)\n", m.TraceDropped)
	}
	for i, r := range rows {
		fmt.Fprintf(w, "\n[%d] %s\n", i+1, r.Name)
		fmt.Fprintf(w, "    calls %d  cum %v  mean %v  min %v  max %v\n",
			r.Count, time.Duration(r.CumNanos), r.Mean(),
			time.Duration(r.MinNanos), time.Duration(r.MaxNanos))
		if r.Count > 1 {
			fmt.Fprintf(w, "    latency: p50 %v  p95 %v  p99 %v\n",
				r.Percentile(50), r.Percentile(95), r.Percentile(99))
		}
		fmt.Fprintf(w, "    breakdown:")
		for _, c := range core.Components() {
			v := r.Components[c]
			if c == core.CompTargetExec {
				v = r.TargetExecExclusive()
			}
			if v == 0 {
				continue
			}
			fmt.Fprintf(w, " %s=%v", shortName(c), time.Duration(v))
		}
		fmt.Fprintln(w)
		if len(r.OriginDist) > 0 {
			fmt.Fprintf(w, "    origins: %s\n", distString(r.OriginDist))
		}
		if len(r.TargetDist) > 0 {
			fmt.Fprintf(w, "    targets: %s\n", distString(r.TargetDist))
		}
	}
}

func shortName(c core.Component) string {
	switch c {
	case core.CompOriginExec:
		return "origin_exec"
	case core.CompInputSer:
		return "input_ser"
	case core.CompRDMA:
		return "rdma"
	case core.CompHandler:
		return "handler"
	case core.CompInputDeser:
		return "input_deser"
	case core.CompTargetExec:
		return "target_exec"
	case core.CompOutputSer:
		return "output_ser"
	case core.CompTargetCB:
		return "target_cb"
	case core.CompOriginCB:
		return "origin_cb"
	}
	return "?"
}

func distString(dist map[string]uint64) string {
	keys := make([]string, 0, len(dist))
	for k := range dist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, dist[k])
	}
	return strings.Join(parts, " ")
}
