package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderGantt draws one request's spans as an ASCII Gantt chart — a
// terminal rendition of the paper's Figure 5 visualization. width is
// the chart area in columns (default 64).
func RenderGantt(w io.Writer, spans []Span, width int) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	if width <= 0 {
		width = 64
	}
	start := spans[0].StartNanos
	end := start
	for _, s := range spans {
		if s.StartNanos < start {
			start = s.StartNanos
		}
		if e := s.StartNanos + s.DurNanos; e > end {
			end = e
		}
	}
	total := end - start
	if total <= 0 {
		total = 1
	}
	scale := func(ns int64) int {
		c := int(ns * int64(width) / total)
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}

	labelW := 0
	for _, s := range spans {
		if n := len(s.RPCName) + s.Breadcrumb.Depth()*2; n > labelW {
			labelW = n
		}
	}

	fmt.Fprintf(w, "request %#x — %d spans over %v\n",
		spans[0].RequestID, len(spans), time.Duration(total))
	for _, s := range spans {
		indent := strings.Repeat("  ", max(s.Breadcrumb.Depth()-1, 0))
		label := indent + s.RPCName
		lo := scale(s.StartNanos - start)
		hi := scale(s.StartNanos - start + s.DurNanos)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat(barChar(s.Kind), hi-lo)
		fmt.Fprintf(w, "  %-*s |%-*s| %v\n",
			labelW, label, width, bar, time.Duration(s.DurNanos).Round(time.Microsecond))
	}
}

func barChar(kind string) string {
	if kind == "CLIENT" {
		return "░"
	}
	return "█"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Gap is a stretch of a request's root span not covered by any nested
// server span — client-side waiting, network transit, and queueing: the
// per-request view of the paper's "unaccounted" time.
type Gap struct {
	StartNanos int64
	DurNanos   int64
	// After names the span that finished immediately before the gap
	// ("(start)" for a gap at the beginning of the request).
	After string
}

// RequestGaps computes the uncovered stretches of the root span.
// Spans must come from Spans/SpansOf for one request.
func RequestGaps(spans []Span) []Gap {
	if len(spans) == 0 {
		return nil
	}
	// Root = earliest client span.
	root := spans[0]
	for _, s := range spans {
		if s.Kind == "CLIENT" && s.StartNanos < root.StartNanos {
			root = s
		}
	}
	// Collect covered intervals from server spans nested under root.
	type iv struct {
		lo, hi int64
		name   string
	}
	var covered []iv
	for _, s := range spans {
		if s.Kind != "SERVER" {
			continue
		}
		covered = append(covered, iv{s.StartNanos, s.StartNanos + s.DurNanos, s.RPCName})
	}
	sort.Slice(covered, func(i, j int) bool { return covered[i].lo < covered[j].lo })

	var gaps []Gap
	cursor := root.StartNanos
	lastName := "(start)"
	rootEnd := root.StartNanos + root.DurNanos
	for _, c := range covered {
		if c.lo > cursor {
			gaps = append(gaps, Gap{StartNanos: cursor, DurNanos: c.lo - cursor, After: lastName})
		}
		if c.hi > cursor {
			cursor = c.hi
		}
		lastName = c.name
	}
	if rootEnd > cursor {
		gaps = append(gaps, Gap{StartNanos: cursor, DurNanos: rootEnd - cursor, After: lastName})
	}
	return gaps
}

// UncoveredFraction reports the share of the root span not covered by
// nested server execution.
func UncoveredFraction(spans []Span) float64 {
	if len(spans) == 0 {
		return 0
	}
	root := spans[0]
	for _, s := range spans {
		if s.Kind == "CLIENT" && s.StartNanos < root.StartNanos {
			root = s
		}
	}
	if root.DurNanos == 0 {
		return 0
	}
	var gapTotal int64
	for _, g := range RequestGaps(spans) {
		gapTotal += g.DurNanos
	}
	return float64(gapTotal) / float64(root.DurNanos)
}
