package report

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Mode selects the output renderer.
type Mode int

// Output modes of the -o flag.
const (
	// ModeCLI is plain text: pipe-safe, grep-friendly, golden-testable.
	ModeCLI Mode = iota
	// ModeTUI is ANSI-colored text for interactive terminals.
	ModeTUI
	// ModeHTML is a standalone self-styled HTML page.
	ModeHTML
)

// ParseMode parses a -o flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "cli":
		return ModeCLI, nil
	case "tui":
		return ModeTUI, nil
	case "html":
		return ModeHTML, nil
	}
	return ModeCLI, fmt.Errorf("report: unknown output mode %q (want cli, tui, or html)", s)
}

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeTUI:
		return "tui"
	case ModeHTML:
		return "html"
	}
	return "cli"
}

// Ext returns the file extension reports of this mode conventionally
// use.
func (m Mode) Ext() string {
	if m == ModeHTML {
		return ".html"
	}
	return ".txt"
}

// Render writes the model in the given mode.
func Render(w io.Writer, mode Mode, m *Model) error {
	switch mode {
	case ModeHTML:
		return WriteHTML(w, m)
	case ModeTUI:
		return WriteTUI(w, m)
	default:
		return WriteCLI(w, m)
	}
}

// WriteFile renders the model into path (creating it).
func WriteFile(path string, mode Mode, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Render(f, mode, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// barWidth is the text-mode bar budget in cells.
const barWidth = 28

// WriteCLI renders plain text.
func WriteCLI(w io.Writer, m *Model) error {
	return writeText(w, m, textStyle{})
}

// WriteTUI renders ANSI-colored text: the same layout as cli with
// per-segment-kind colors and eighth-block bar resolution.
func WriteTUI(w io.Writer, m *Model) error {
	return writeText(w, m, textStyle{ansi: true})
}

// textStyle parameterizes the shared text renderer.
type textStyle struct{ ansi bool }

// ANSI palette per bar class; text renders uncolored for unknown keys.
var ansiByClass = map[string]string{
	"net_out":      "36", // cyan
	"net_back":     "36",
	"queue":        "33", // yellow — the saturation signal
	"exec":         "32", // green
	"backoff":      "35", // magenta
	"batch_window": "34", // blue
	"unmatched":    "90", // bright black
	"delta+":       "31", // red — regression
	"delta-":       "32", // green — improvement
}

func (st textStyle) color(class, s string) string {
	if !st.ansi {
		return s
	}
	code, ok := ansiByClass[class]
	if !ok {
		return s
	}
	return "\x1b[" + code + "m" + s + "\x1b[0m"
}

func (st textStyle) bold(s string) string {
	if !st.ansi {
		return s
	}
	return "\x1b[1m" + s + "\x1b[0m"
}

// bar renders a width·frac cell bar. The tui variant sharpens the
// remainder with eighth blocks; the cli variant sticks to '#' so goldens
// stay ASCII.
func (st textStyle) bar(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if !st.ansi {
		n := int(frac*barWidth + 0.5)
		return strings.Repeat("#", n) + strings.Repeat(".", barWidth-n)
	}
	cells := frac * barWidth
	full := int(cells)
	rem := cells - float64(full)
	blocks := strings.Repeat("█", full)
	if eighth := int(rem * 8); eighth > 0 && full < barWidth {
		blocks += string([]rune("▏▎▍▌▋▊▉█")[eighth-1])
	}
	pad := barWidth - len([]rune(blocks))
	if pad < 0 {
		pad = 0
	}
	return blocks + strings.Repeat(" ", pad)
}

func writeText(w io.Writer, m *Model, st textStyle) error {
	bw := &errWriter{w: w}
	bw.printf("%s\n", st.bold(m.Title))
	bw.printf("%s\n", strings.Repeat("=", len([]rune(m.Title))))
	if m.Generated != "" {
		bw.printf("generated: %s\n", m.Generated)
	}
	for _, n := range m.Notes {
		bw.printf("note: %s\n", n)
	}
	for i := range m.Sections {
		sec := &m.Sections[i]
		bw.printf("\n%s\n", st.bold(sec.Title))
		for _, line := range sec.Body {
			bw.printf("  %s\n", line)
		}
		if sec.Table != nil {
			writeTable(bw, sec.Table)
		}
		if len(sec.Bars) > 0 {
			writeBars(bw, sec.Bars, st)
		}
	}
	return bw.err
}

func writeBars(bw *errWriter, bars []Bar, st textStyle) {
	labelW := 0
	for i := range bars {
		if n := len([]rune(bars[i].Label)) + 2*bars[i].Level; n > labelW {
			labelW = n
		}
	}
	for i := range bars {
		b := &bars[i]
		indent := strings.Repeat("  ", b.Level)
		label := indent + b.Label
		pad := strings.Repeat(" ", labelW-len([]rune(label)))
		bw.printf("  %s%s  |%s| %5.1f%%  %s\n",
			st.color(b.Class, label), pad,
			st.color(b.Class, st.bar(b.Frac)), 100*b.Frac, b.Detail)
	}
}

func writeTable(bw *errWriter, t *Table) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		sb.WriteString("  ")
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
			}
		}
		bw.printf("%s\n", strings.TrimRight(sb.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// errWriter folds the first write error, so renderers stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
