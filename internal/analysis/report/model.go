// Package report is the shared rendering layer of the SYMBIOSYS
// analysis plane: one report model, three output modes (cli, tui,
// html), consumed by symtrace, symprof, and symstats and emitted
// automatically by the experiment drivers. Analyses build a Model (a
// sequence of sections holding free text, aligned tables, and
// flame-style bars); the renderers share it, so every tool's -o flag
// behaves identically and golden tests pin one format per mode.
package report

import (
	"fmt"
	"sort"
	"time"

	"symbiosys/internal/analysis"
	"symbiosys/internal/core"
)

// Model is one renderable report.
type Model struct {
	Title string
	// Generated is a caller-stamped timestamp line (free-form). Kept a
	// plain string — never time.Now() inside renderers — so golden
	// tests are deterministic.
	Generated string
	// Notes are run-quality warnings surfaced above all sections:
	// dropped events, truncated JSONL tails, incomplete requests.
	Notes    []string
	Sections []Section
}

// Section is one titled block of a report.
type Section struct {
	Title string
	// Body lines render as plain text (cli idiom).
	Body []string
	// Table renders aligned in text modes, as <table> in html.
	Table *Table
	// Bars render as a flame-style bar chart: width ∝ Frac.
	Bars []Bar
}

// Table is a simple header + rows grid.
type Table struct {
	Header []string
	Rows   [][]string
}

// Bar is one flame bar.
type Bar struct {
	// Label names the bar; Detail carries the stats suffix.
	Label  string
	Detail string
	// Frac is the bar's share of its reference whole, in [0, 1].
	Frac float64
	// Level indents nested bars (flame depth).
	Level int
	// Class keys the color: a SegKind name ("queue", "exec", ...) or
	// "delta+"/"delta-" for diff bars.
	Class string
}

// FromFlame builds the dominant-path report of one run: the top path
// shapes by cumulative time, each expanded into per-segment bars with
// p50/p99, plus the extraction stats.
func FromFlame(title string, f *analysis.Flame, top int) *Model {
	m := &Model{Title: title}
	m.Notes = append(m.Notes, flameNotes(&f.Stats)...)

	var runCum uint64
	for i := range f.Paths {
		runCum += f.Paths[i].CumNanos
	}
	m.Sections = append(m.Sections, Section{
		Title: "Run",
		Body: []string{
			fmt.Sprintf("requests %d, paths extracted %d, path shapes %d, cumulative path time %v",
				f.Stats.Requests, f.Stats.Extracted, len(f.Paths), fmtNanos(int64(runCum))),
		},
	})

	paths := f.Paths
	if top > 0 && len(paths) > top {
		m.Notes = append(m.Notes, fmt.Sprintf("showing top %d of %d path shapes by cumulative time", top, len(paths)))
		paths = paths[:top]
	}
	for i := range paths {
		m.Sections = append(m.Sections, flameSection(&paths[i], i, runCum))
	}
	return m
}

func flameNotes(st *analysis.PathStats) []string {
	var notes []string
	if st.Incomplete > 0 {
		notes = append(notes, fmt.Sprintf(
			"%d of %d requests have incomplete span sets (missing target view); their paths carry unmatched segments",
			st.Incomplete, st.Requests))
	}
	if st.Failed > 0 {
		notes = append(notes, fmt.Sprintf("%d requests ended in failure", st.Failed))
	}
	if st.Retried > 0 {
		notes = append(notes, fmt.Sprintf("%d requests were retried", st.Retried))
	}
	return notes
}

func flameSection(p *analysis.FlamePath, rank int, runCum uint64) Section {
	share := 0.0
	if runCum > 0 {
		share = float64(p.CumNanos) / float64(runCum)
	}
	sec := Section{
		Title: fmt.Sprintf("#%d  %s", rank+1, shapeLabel(p)),
		Body: []string{
			fmt.Sprintf("count %d  cum %v (%.1f%% of run)  mean %v  p50 %v  p99 %v",
				p.Count, fmtNanos(int64(p.CumNanos)), 100*share,
				fmtNanos(p.MeanNanos()),
				fmtDur(p.Total.Percentile(50)), fmtDur(p.Total.Percentile(99))),
		},
	}
	if p.Failed > 0 || p.Retried > 0 || p.Incomplete > 0 {
		sec.Body = append(sec.Body, fmt.Sprintf("failed %d  retried %d  incomplete %d",
			p.Failed, p.Retried, p.Incomplete))
	}
	mean := p.MeanNanos()
	dom := p.DominantSegment()
	for i := range p.Segments {
		s := &p.Segments[i]
		var segMean int64
		if s.Stats.Count > 0 {
			segMean = int64(s.Stats.CumNanos / s.Stats.Count)
		}
		frac := 0.0
		if mean > 0 {
			frac = float64(segMean) / float64(mean)
		}
		label := fmt.Sprintf("%s.%s", s.RPC, s.Kind)
		if i == dom {
			label += " *"
		}
		sec.Bars = append(sec.Bars, Bar{
			Label: label,
			Detail: fmt.Sprintf("mean %v  p50 %v  p99 %v",
				fmtNanos(segMean), fmtDur(s.P50()), fmtDur(s.P99())),
			Frac:  frac,
			Level: s.Depth - 1,
			Class: s.Kind.String(),
		})
	}
	return sec
}

// shapeLabel compresses a shape string into a headline: the hop
// sequence with segment kinds elided, e.g. "put → forward(put)".
func shapeLabel(p *analysis.FlamePath) string {
	var hops []string
	last := ""
	for i := range p.Segments {
		s := &p.Segments[i]
		key := fmt.Sprintf("%d:%s", s.Depth, s.RPC)
		if key != last {
			hops = append(hops, fmt.Sprintf("%s@%d", s.RPC, s.Depth))
			last = key
		}
	}
	out := ""
	for i, h := range hops {
		if i > 0 {
			out += " → "
		}
		out += h
	}
	return out
}

// FromFlameDiff builds the two-run comparison report: structural
// changes first, then the biggest weighted movers, each expanded into
// per-segment delta bars with significance flags.
func FromFlameDiff(title string, d *analysis.FlameDiff, top int) *Model {
	m := &Model{Title: title}
	m.Sections = append(m.Sections, Section{
		Title: "Runs",
		Body: []string{
			fmt.Sprintf("before: %d requests (%d incomplete, %d failed, %d retried)",
				d.Before.Requests, d.Before.Incomplete, d.Before.Failed, d.Before.Retried),
			fmt.Sprintf("after:  %d requests (%d incomplete, %d failed, %d retried)",
				d.After.Requests, d.After.Incomplete, d.After.Failed, d.After.Retried),
		},
	})
	paths := d.Paths
	if top > 0 && len(paths) > top {
		m.Notes = append(m.Notes, fmt.Sprintf("showing top %d of %d path shapes by weighted delta", top, len(paths)))
		paths = paths[:top]
	}
	for i := range paths {
		m.Sections = append(m.Sections, diffSection(&paths[i], i))
	}
	if verdict := diffVerdict(d); verdict != "" {
		m.Sections = append(m.Sections, Section{Title: "Verdict", Body: []string{verdict}})
	}
	return m
}

func diffSection(p *analysis.PathDelta, rank int) Section {
	var sec Section
	switch {
	case p.New:
		sec.Title = fmt.Sprintf("#%d  [NEW]  %s", rank+1, p.Shape)
		sec.Body = []string{fmt.Sprintf("after only: count %d  mean %v", p.CountAfter, fmtNanos(p.MeanAfter))}
		return sec
	case p.Gone:
		sec.Title = fmt.Sprintf("#%d  [GONE] %s", rank+1, p.Shape)
		sec.Body = []string{fmt.Sprintf("before only: count %d  mean %v", p.CountBefore, fmtNanos(p.MeanBefore))}
		return sec
	}
	sec.Title = fmt.Sprintf("#%d  [%+.2fx] %s", rank+1, p.Ratio, p.Shape)
	sec.Body = []string{fmt.Sprintf("mean %v -> %v (%+v)  count %d -> %d",
		fmtNanos(p.MeanBefore), fmtNanos(p.MeanAfter), fmtNanos(p.DeltaNanos),
		p.CountBefore, p.CountAfter)}

	// Bars scale to the largest absolute segment delta in this shape.
	var maxAbs int64 = 1
	for i := range p.Segments {
		if v := absNanos(p.Segments[i].DeltaNanos); v > maxAbs {
			maxAbs = v
		}
	}
	for i := range p.Segments {
		s := &p.Segments[i]
		class := "delta+"
		if s.DeltaNanos < 0 {
			class = "delta-"
		}
		label := fmt.Sprintf("%s.%s", s.RPC, s.Kind)
		if s.Significant {
			label += " !"
		}
		sec.Bars = append(sec.Bars, Bar{
			Label: label,
			Detail: fmt.Sprintf("mean %v -> %v (%+v)",
				fmtNanos(s.MeanBefore), fmtNanos(s.MeanAfter), fmtNanos(s.DeltaNanos)),
			Frac:  float64(absNanos(s.DeltaNanos)) / float64(maxAbs),
			Level: s.Depth - 1,
			Class: class,
		})
	}
	return sec
}

// diffVerdict names the single segment position carrying the largest
// significant regression across all aligned shapes — the "where did the
// time go" one-liner.
func diffVerdict(d *analysis.FlameDiff) string {
	var worst *analysis.SegmentDelta
	var worstShape string
	var worstWeight int64
	for i := range d.Paths {
		p := &d.Paths[i]
		if p.New || p.Gone {
			continue
		}
		n := int64(p.CountAfter)
		if n == 0 {
			n = 1
		}
		for j := range p.Segments {
			s := &p.Segments[j]
			if !s.Significant || s.DeltaNanos <= 0 {
				continue
			}
			if w := s.DeltaNanos * n; worst == nil || w > worstWeight {
				worst, worstShape, worstWeight = s, p.Shape, w
			}
		}
	}
	if worst == nil {
		return "no significant per-segment regression localized"
	}
	return fmt.Sprintf("dominant regression: %s.%s at depth %d (%+v/request) on shape %s",
		worst.RPC, worst.Kind, worst.Depth, fmtNanos(worst.DeltaNanos), worstShape)
}

// FromProfile builds the dominant-callpath report (the symprof view)
// over the shared model.
func FromProfile(title string, mp *analysis.MergedProfile, top int) *Model {
	m := &Model{Title: title}
	all := mp.DominantCallpaths(0)
	var runCum uint64
	for i := range all {
		runCum += all[i].CumNanos
	}
	rows := all
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for i := range rows {
		r := &rows[i]
		share := 0.0
		if runCum > 0 {
			share = float64(r.CumNanos) / float64(runCum)
		}
		sec := Section{
			Title: fmt.Sprintf("#%d  %s", i+1, r.Name),
			Body: []string{fmt.Sprintf("calls %d  cum %v (%.1f%% of run)  mean %v  p50 %v  p99 %v",
				r.Count, fmtNanos(int64(r.CumNanos)), 100*share, fmtDur(r.Mean()),
				fmtDur(r.Percentile(50)), fmtDur(r.Percentile(99)))},
		}
		mean := int64(0)
		if r.Count > 0 {
			mean = int64(r.CumNanos / r.Count)
		}
		for c := 0; c < int(core.NumComponents); c++ {
			per := int64(0)
			if r.Count > 0 {
				per = int64(r.Components[c] / r.Count)
			}
			if per == 0 {
				continue
			}
			frac := 0.0
			if mean > 0 {
				frac = float64(per) / float64(mean)
			}
			sec.Bars = append(sec.Bars, Bar{
				Label:  core.Component(c).Name(),
				Detail: fmt.Sprintf("%v/call", fmtNanos(per)),
				Frac:   frac,
				Class:  "exec",
			})
		}
		m.Sections = append(m.Sections, sec)
	}
	return m
}

// FromSystemStats builds the per-entity saturation report (the symstats
// view) over the shared model.
func FromSystemStats(title string, stats []analysis.EntityStats, incomplete int) *Model {
	m := &Model{Title: title}
	if incomplete > 0 {
		m.Notes = append(m.Notes, fmt.Sprintf(
			"%d requests have incomplete span sets (origin events but no target view)", incomplete))
	}
	t := &Table{Header: []string{
		"entity", "events", "dropped", "blocked max/mean", "runnable max/mean",
		"ofi max/mean", "ofi@cap", "batch ops/flushes",
	}}
	sorted := make([]analysis.EntityStats, len(stats))
	copy(sorted, stats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Entity < sorted[j].Entity })
	for i := range sorted {
		s := &sorted[i]
		t.Rows = append(t.Rows, []string{
			s.Entity,
			fmt.Sprint(s.Events),
			fmt.Sprint(s.Dropped),
			fmt.Sprintf("%d/%.1f", s.MaxBlocked, s.MeanBlocked),
			fmt.Sprintf("%d/%.1f", s.MaxRunnable, s.MeanRunnable),
			fmt.Sprintf("%d/%.1f", s.MaxOFIRead, s.MeanOFIRead),
			fmt.Sprint(s.OFIAtCap),
			fmt.Sprintf("%d/%d", s.BatchedOps, s.BatchFlushes),
		})
	}
	m.Sections = append(m.Sections, Section{Title: "Entities", Table: t})
	return m
}

func absNanos(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// fmtNanos renders a nanosecond count as a rounded duration.
func fmtNanos(ns int64) string { return fmtDur(time.Duration(ns)) }

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second || d <= -time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond || d <= -time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
