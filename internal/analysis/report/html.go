package report

import (
	"html/template"
	"io"
)

// WriteHTML renders the model as one standalone HTML page: no external
// assets, flame bars as CSS-width divs colored by segment class, tables
// as real tables. The page is static — open the file, read the report.
func WriteHTML(w io.Writer, m *Model) error {
	return htmlTmpl.Execute(w, m)
}

// barPct is exposed to the template to turn Frac into a CSS width.
func barPct(f float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return 100 * f
}

func barIndent(level int) int { return 18 * level }

var htmlTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct":    barPct,
	"indent": barIndent,
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
  body { font: 14px/1.45 -apple-system, "Segoe UI", sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1c2128; }
  h1 { font-size: 1.35rem; border-bottom: 2px solid #d0d7de; padding-bottom: .4rem; }
  h2 { font-size: 1.02rem; margin: 1.4rem 0 .4rem; }
  .gen { color: #57606a; font-size: .85rem; }
  .note { background: #fff8c5; border: 1px solid #d4a72c66; border-radius: 6px; padding: .35rem .6rem; margin: .3rem 0; font-size: .9rem; }
  .body { margin: .15rem 0 .15rem .2rem; color: #24292f; }
  .bars { margin: .4rem 0 .2rem; }
  .barrow { display: flex; align-items: center; margin: 2px 0; font-size: .86rem; }
  .barlabel { flex: 0 0 17rem; font-family: ui-monospace, monospace; white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
  .bartrack { flex: 1 1 auto; background: #f0f2f5; border-radius: 3px; height: 14px; position: relative; }
  .barfill { height: 100%; border-radius: 3px; min-width: 1px; }
  .barpct { flex: 0 0 3.6rem; text-align: right; font-family: ui-monospace, monospace; padding: 0 .5rem; }
  .bardetail { flex: 0 0 22rem; color: #57606a; font-family: ui-monospace, monospace; font-size: .8rem; white-space: nowrap; }
  .c-net_out, .c-net_back { background: #54aeff; }
  .c-queue { background: #d4a72c; }
  .c-exec { background: #4ac26b; }
  .c-backoff { background: #c297ff; }
  .c-batch_window { background: #6e7781; }
  .c-unmatched { background: #afb8c1; }
  .c-delta\+ { background: #fa4549; }
  .c-delta- { background: #4ac26b; }
  table { border-collapse: collapse; margin: .5rem 0; font-size: .86rem; }
  th, td { border: 1px solid #d0d7de; padding: .25rem .55rem; text-align: left; font-family: ui-monospace, monospace; }
  th { background: #f6f8fa; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Generated}}<p class="gen">generated: {{.Generated}}</p>{{end}}
{{range .Notes}}<div class="note">{{.}}</div>{{end}}
{{range .Sections}}
<h2>{{.Title}}</h2>
{{range .Body}}<p class="body">{{.}}</p>{{end}}
{{with .Table}}
<table>
<tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{end}}
{{if .Bars}}
<div class="bars">
{{range .Bars}}  <div class="barrow" style="padding-left: {{indent .Level}}px">
    <span class="barlabel" title="{{.Label}}">{{.Label}}</span>
    <span class="bartrack"><span class="barfill c-{{.Class}}" style="width: {{printf "%.1f" (pct .Frac)}}%"></span></span>
    <span class="barpct">{{printf "%.1f" (pct .Frac)}}%</span>
    <span class="bardetail">{{.Detail}}</span>
  </div>
{{end}}</div>
{{end}}
{{end}}
</body>
</html>
`))
